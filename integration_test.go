// Cross-module integration tests: these exercise whole pipelines (live
// structure -> trace -> witness; simulator vs sequential process; STM over
// the relaxed oracle) rather than single packages.
package repro

import (
	"math"
	"sync"
	"testing"

	"repro/internal/balance"
	"repro/internal/core"
	"repro/internal/dlin"
	"repro/internal/sched"
	"repro/internal/stm"
	"repro/internal/trace"
)

// TestSchedSingleThreadMatchesBalanceExactly: with one thread and a benign
// schedule, the adversarial simulator *is* the sequential two-choice process.
// Both consume the same PRNG stream (two bounded draws per operation) and
// break ties the same way, so for equal seeds the final states must be
// bit-identical — a strong check that the simulator's update rule implements
// the paper's process.
func TestSchedSingleThreadMatchesBalanceExactly(t *testing.T) {
	const m, steps, seed = 64, 100_000, 1234
	simRes := sched.Run(sched.Config{
		N: 1, M: m, Ops: steps, Seed: seed, Adversary: &sched.RoundRobin{}, C: 4,
	})
	balRes := balance.Run(balance.RunConfig{
		M: m, Steps: steps, Seed: seed, Process: balance.DChoice{D: 2},
	})
	for i := 0; i < m; i++ {
		if simRes.Final.Weight(i) != balRes.Final.Weight(i) {
			t.Fatalf("bin %d: simulator %v != sequential process %v",
				i, simRes.Final.Weight(i), balRes.Final.Weight(i))
		}
	}
}

// TestCounterWitnessCostMatchesProcessGap: the cost distribution extracted
// from a live concurrent run must agree in scale with the sequential
// process's gap: cost <= m * gap-envelope. This ties together core, trace,
// dlin and balance.
func TestCounterWitnessCostMatchesProcessGap(t *testing.T) {
	const workers, per, m = 4, 8000, 64
	mc := core.NewMultiCounter(m)
	rec := trace.NewRecorder(workers, per+per/4+1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := mc.NewHandle(uint64(w) + 7)
			log := rec.Log(w)
			for i := 0; i < per; i++ {
				h.IncrementTraced(rec, log)
				if i%4 == 0 {
					h.ReadTraced(rec, log)
				}
			}
		}(w)
	}
	wg.Wait()
	w, err := dlin.Replay(&dlin.CounterSpec{}, rec.Merge())
	if err != nil {
		t.Fatal(err)
	}
	// Sequential-process envelope for the same m: gap stays O(log m); allow
	// a 4x constant over m*2log2(m).
	seq := balance.Run(balance.RunConfig{
		M: m, Steps: int64(workers * per), Seed: 99, Process: balance.DChoice{D: 2},
		SampleEvery: 10_000,
	})
	bound := 4 * float64(m) * (seq.MaxGap() + 2*math.Log2(m))
	if max := w.Costs.Max(); max > bound {
		t.Fatalf("live max cost %v exceeds process-derived bound %v", max, bound)
	}
}

// TestMultiQueueNearlySortedDrain: after concurrent timestamped enqueues, a
// single-threaded drain must come out "nearly sorted": each dequeued
// priority may precede at most O(m log m) smaller ones (displacement bound
// implied by Theorem 7.1's rank bound).
func TestMultiQueueNearlySortedDrain(t *testing.T) {
	const producers, per, m = 4, 4000, 32
	q := core.NewMultiQueue(core.MultiQueueConfig{Queues: m, Seed: 5})
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			h := q.NewHandle(uint64(p) + 60)
			for i := 0; i < per; i++ {
				h.Enqueue(uint64(i))
			}
		}(p)
	}
	wg.Wait()

	h := q.NewHandle(61)
	var seq []uint64
	for {
		it, ok := h.Dequeue()
		if !ok {
			break
		}
		seq = append(seq, it.Priority)
	}
	if len(seq) != producers*per {
		t.Fatalf("drained %d, want %d", len(seq), producers*per)
	}
	// Max displacement: for each position, how many later elements are
	// smaller. O(n log n) via coordinate-compressed Fenwick.
	fw := dlin.NewFenwick(len(seq) + producers*per + 10)
	var maxDisp int64
	// Walk from the end: count elements already seen (later in drain order)
	// that are smaller than the current one.
	for i := len(seq) - 1; i >= 0; i-- {
		d := fw.PrefixSum(int(seq[i]))
		if d > maxDisp {
			maxDisp = d
		}
		fw.Add(int(seq[i]), 1)
	}
	envelope := int64(8 * dlin.Envelope(m))
	if maxDisp > envelope {
		t.Fatalf("drain displacement %d exceeds 8x envelope %d", maxDisp, envelope)
	}
}

// TestTL2OverRelaxedOracleEndToEnd ties stm + core + counters together and
// checks abort-cause accounting is populated under the relaxed clock.
func TestTL2OverRelaxedOracleEndToEnd(t *testing.T) {
	res := stm.RunIncrement(stm.WorkloadConfig{
		Objects: 32768, Workers: 4, Clock: stm.NewMCClock(64, 512),
		OpsPerWorker: 4000, Seed: 77,
	})
	if !res.Verified {
		t.Fatalf("verification failed: %s", res.String())
	}
	if res.Commits != 4*4000 {
		t.Fatalf("commits %d != requested ops", res.Commits)
	}
}

// TestExactVsRelaxedClockSameWorkload: under identical fixed work, both
// clocks must produce the identical final array sum (2 per committed tx) —
// the paper's exactness check, run as a differential test.
func TestExactVsRelaxedClockSameWorkload(t *testing.T) {
	for _, clk := range []stm.Clock{stm.NewFAAClock(), stm.NewTickClock(128), stm.NewMCClock(32, 256)} {
		res := stm.RunIncrement(stm.WorkloadConfig{
			Objects: 16384, Workers: 2, Clock: clk, OpsPerWorker: 3000, Seed: 88,
		})
		if !res.Verified {
			t.Fatalf("%s: verification failed: %s", clk.Name(), res.String())
		}
		if res.Commits != 2*3000 {
			t.Fatalf("%s: commits %d", clk.Name(), res.Commits)
		}
	}
}
