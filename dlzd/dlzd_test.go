package dlzd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testClient wraps an httptest server with JSON helpers; every method
// returns the HTTP status and decodes 2xx bodies into out when non-nil.
type testClient struct {
	t   *testing.T
	srv *httptest.Server
}

func newTestClient(t *testing.T, cfg Config) (*Server, *testClient) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return s, &testClient{t: t, srv: hs}
}

func (c *testClient) post(path string, body, out any) int {
	c.t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		c.t.Fatalf("marshal %s: %v", path, err)
	}
	resp, err := http.Post(c.srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		c.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func (c *testClient) get(path string, out any) int {
	c.t.Helper()
	resp, err := http.Get(c.srv.URL + path)
	if err != nil {
		c.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func (c *testClient) metrics() string {
	c.t.Helper()
	resp, err := http.Get(c.srv.URL + "/metrics")
	if err != nil {
		c.t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("read /metrics: %v", err)
	}
	return string(body)
}

func wireItems(prios ...uint64) []WireItem {
	items := make([]WireItem, len(prios))
	for i, p := range prios {
		items[i] = WireItem{Priority: p, Value: p ^ 0xD1CE}
	}
	return items
}

func TestDaemonRoundTrip(t *testing.T) {
	_, c := newTestClient(t, Config{Queues: 4, Batch: 4, Stickiness: 8, Seed: 7})

	if code := c.get("/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	var enq EnqueueBatchResponse
	items := wireItems(5, 3, 9, 1, 7, 2, 8, 4, 6, 10)
	if code := c.post("/v1/acme/enqueue-batch", EnqueueBatchRequest{Session: "s1", Items: items}, &enq); code != http.StatusOK {
		t.Fatalf("enqueue = %d", code)
	}
	if enq.Enqueued != len(items) {
		t.Fatalf("Enqueued = %d, want %d", enq.Enqueued, len(items))
	}

	var deq DeleteMinResponse
	got := 0
	for got < len(items) {
		if code := c.post("/v1/acme/delete-min-up-to", DeleteMinRequest{Session: "s1", Max: 4}, &deq); code != http.StatusOK {
			t.Fatalf("delete-min = %d", code)
		}
		if len(deq.Items) == 0 {
			break
		}
		for _, it := range deq.Items {
			if it.Value != it.Priority^0xD1CE {
				t.Fatalf("value corrupted on the wire: %+v", it)
			}
		}
		got += len(deq.Items)
	}
	if got != len(items) {
		t.Fatalf("drained %d elements, want %d", got, len(items))
	}

	var add CounterAddResponse
	if code := c.post("/v1/acme/counter/add-batch", CounterAddRequest{Session: "s1", Deltas: []uint64{1, 2, 3}}, &add); code != http.StatusOK {
		t.Fatalf("counter add = %d", code)
	}
	if add.Added != 3 {
		t.Fatalf("Added = %d, want 3", add.Added)
	}
	var read CounterReadResponse
	if code := c.get("/v1/acme/counter/read?session=s1", &read); code != http.StatusOK {
		t.Fatalf("counter read = %d", code)
	}

	var closed SessionCloseResponse
	if code := c.post("/v1/acme/session/close", SessionCloseRequest{Session: "s1"}, &closed); code != http.StatusOK || !closed.Closed {
		t.Fatalf("session close = %d closed=%v", code, closed.Closed)
	}
	// Closing again finds no live lease.
	if code := c.post("/v1/acme/session/close", SessionCloseRequest{Session: "s1"}, &closed); code != http.StatusOK || closed.Closed {
		t.Fatalf("second close = %d closed=%v, want false", code, closed.Closed)
	}

	var st StatsResponse
	if code := c.get("/v1/acme/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if st.QueueLen != 0 || st.CounterExact != 6 || st.Leases != 0 {
		t.Fatalf("post-close stats: %+v", st)
	}
}

// TestPrio48WireDifferential is the wire-boundary half of the top-word
// truncation differential: priorities straddling both 2^48 (the TopWord
// truncation boundary) and 2^53 (the float64 exactness boundary a sloppy
// JSON layer would corrupt) must dequeue through the daemon in exact
// full-resolution order, proving the pubMin mirror — not the truncated top
// word — ranks candidates, and that uint64 priorities survive JSON intact.
func TestPrio48WireDifferential(t *testing.T) {
	_, c := newTestClient(t, Config{Queues: 1, Batch: 4, Seed: 5})

	base48 := uint64(1) << 48
	base53 := uint64(1) << 53
	prios := []uint64{
		base48 + 2, 3, base53 + 1, base48 - 1, base48, 7,
		base53 - 1, base48 + 1, base48 - 2, base53 + 3, 5, base53,
	}
	var enq EnqueueBatchResponse
	if code := c.post("/v1/diff/enqueue-batch", EnqueueBatchRequest{Session: "w", Items: wireItems(prios...)}, &enq); code != http.StatusOK {
		t.Fatalf("enqueue = %d", code)
	}
	// Disconnect: the buffered tail publishes through the lease close path.
	if code := c.post("/v1/diff/session/close", SessionCloseRequest{Session: "w"}, nil); code != http.StatusOK {
		t.Fatalf("close = %d", code)
	}

	var got []uint64
	for {
		var deq DeleteMinResponse
		if code := c.post("/v1/diff/delete-min-up-to", DeleteMinRequest{Session: "r", Max: 5}, &deq); code != http.StatusOK {
			t.Fatalf("delete-min = %d", code)
		}
		if len(deq.Items) == 0 {
			break
		}
		for _, it := range deq.Items {
			if it.Value != it.Priority^0xD1CE {
				t.Fatalf("value corrupted: %+v", it)
			}
			got = append(got, it.Priority)
		}
	}
	if len(got) != len(prios) {
		t.Fatalf("drained %d priorities, want %d: %v", len(got), len(prios), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("m=1 wire drain must be exactly sorted at full resolution: %v", got)
		}
	}
}

func TestBackpressure429(t *testing.T) {
	s, c := newTestClient(t, Config{Queues: 2, MaxInFlight: 1})
	tn, ok := s.tenant("bp")
	if !ok {
		t.Fatal("tenant create failed")
	}
	// Occupy the whole in-flight budget from the outside; the next request
	// must bounce without touching a lease.
	tn.inflight.Add(1)
	code := c.post("/v1/bp/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(1)}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-budget request = %d, want 429", code)
	}
	tn.inflight.Add(-1)
	if code := c.post("/v1/bp/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(1)}, nil); code != http.StatusOK {
		t.Fatalf("in-budget request = %d, want 200", code)
	}
	if !strings.Contains(c.metrics(), `dlzd_rejected_inflight_total{tenant="bp"} 1`) {
		t.Fatal("rejection not visible in /metrics")
	}
}

func TestQuotaExhaustion429(t *testing.T) {
	_, c := newTestClient(t, Config{Queues: 2, QuotaOps: 10})
	// Quota admission is check-then-meter: a request admitted under the limit
	// may push the meter past it (bounded overshoot of one wire batch), and
	// the next request is refused.
	if code := c.post("/v1/q/counter/add-batch", CounterAddRequest{Session: "s", Deltas: make([]uint64, 8)}, nil); code != http.StatusOK {
		t.Fatalf("first batch = %d, want 200", code)
	}
	if code := c.post("/v1/q/counter/add-batch", CounterAddRequest{Session: "s", Deltas: make([]uint64, 8)}, nil); code != http.StatusOK {
		t.Fatalf("second batch (meter at 8 < 10) = %d, want 200", code)
	}
	if code := c.post("/v1/q/counter/add-batch", CounterAddRequest{Session: "s", Deltas: []uint64{1}}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("exhausted batch = %d, want 429", code)
	}
	var st StatsResponse
	if code := c.get("/v1/q/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if st.QuotaUsed != 16 {
		t.Fatalf("QuotaUsed = %d, want 16", st.QuotaUsed)
	}
	if !strings.Contains(c.metrics(), `dlzd_rejected_quota_total{tenant="q"} 1`) {
		t.Fatal("quota rejection not visible in /metrics")
	}
}

// TestLeaseExpiryFlushes is the daemon half of the abandoned-handle bugfix
// regression: a session that vanishes without closing holds buffered
// elements and increments; the idle sweep must publish every one of them.
func TestLeaseExpiryFlushes(t *testing.T) {
	s, c := newTestClient(t, Config{Queues: 2, Batch: 8, Seed: 11})

	if code := c.post("/v1/ten/enqueue-batch", EnqueueBatchRequest{Session: "gone", Items: wireItems(4, 2, 9)}, nil); code != http.StatusOK {
		t.Fatalf("enqueue = %d", code)
	}
	if code := c.post("/v1/ten/counter/add-batch", CounterAddRequest{Session: "gone", Deltas: []uint64{2, 3}}, nil); code != http.StatusOK {
		t.Fatalf("counter add = %d", code)
	}
	var st StatsResponse
	if code := c.get("/v1/ten/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if st.Leases != 1 || st.QueueLen+st.BufferedEnqueues != 3 || st.CounterExact+st.BufferedCounterWeight != 5 {
		t.Fatalf("pre-expiry stats: %+v", st)
	}
	if st.BufferedEnqueues == 0 && st.BufferedCounterOps == 0 {
		t.Fatalf("test setup should leave handle-buffered state: %+v", st)
	}

	// The session disappears without session/close: only the idle sweep can
	// recover its buffered operations.
	if n := s.ExpireIdle(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("ExpireIdle reaped %d leases, want 1", n)
	}
	if code := c.get("/v1/ten/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if st.Leases != 0 || st.QueueLen != 3 || st.CounterExact != 5 || st.BufferedEnqueues != 0 || st.BufferedCounterOps != 0 {
		t.Fatalf("post-expiry stats must show everything published: %+v", st)
	}
	m := c.metrics()
	if !strings.Contains(m, `dlzd_leases_expired_total{tenant="ten"} 1`) {
		t.Fatal("expiry not visible in /metrics")
	}

	// The token is not poisoned: the next request mints a fresh lease.
	if code := c.post("/v1/ten/enqueue-batch", EnqueueBatchRequest{Session: "gone", Items: wireItems(1)}, nil); code != http.StatusOK {
		t.Fatalf("re-use after expiry = %d", code)
	}
}

func TestMetricsZeroTenants(t *testing.T) {
	_, c := newTestClient(t, Config{})
	m := c.metrics()
	for _, want := range []string{
		"dlzd_queue_elisions_total 0",
		"dlzd_queue_publications_total 0",
		"dlzd_spin_backoff_total 0",
		"dlzd_sampler_rerolls_total 0",
		"dlzd_leases_active 0",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics with zero tenants must still emit %q:\n%s", want, m)
		}
	}
}

func TestMetricsAfterTraffic(t *testing.T) {
	_, c := newTestClient(t, Config{Queues: 2, Batch: 4, Stickiness: 4, Seed: 13})
	items := make([]WireItem, 64)
	for i := range items {
		items[i] = WireItem{Priority: uint64(i), Value: uint64(i)}
	}
	if code := c.post("/v1/mt/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: items}, nil); code != http.StatusOK {
		t.Fatalf("enqueue = %d", code)
	}
	for {
		var deq DeleteMinResponse
		if code := c.post("/v1/mt/delete-min-up-to", DeleteMinRequest{Session: "s", Max: 64}, &deq); code != http.StatusOK {
			t.Fatalf("delete-min = %d", code)
		}
		if len(deq.Items) == 0 {
			break
		}
	}
	m := c.metrics()
	for _, header := range []string{
		`dlzd_queue_publications_total{tenant="mt"}`,
		`dlzd_queue_elisions_total{tenant="mt"}`,
		`dlzd_sampler_rerolls_total{tenant="mt"}`,
		`dlzd_ops_enqueued_total{tenant="mt"} 64`,
		`dlzd_ops_dequeued_total{tenant="mt"} 64`,
	} {
		if !strings.Contains(m, header) {
			t.Fatalf("after traffic /metrics must contain %q:\n%s", header, m)
		}
	}
	var pubs uint64
	if _, err := fmt.Sscanf(lineValue(t, m, `dlzd_queue_publications_total{tenant="mt"}`), "%d", &pubs); err != nil || pubs == 0 {
		t.Fatalf("publications for mt should be positive: %q err=%v", lineValue(t, m, `dlzd_queue_publications_total{tenant="mt"}`), err)
	}
}

// lineValue extracts the sample value following the given series name.
func lineValue(t *testing.T, metrics, series string) string {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, series+" ") {
			return strings.TrimPrefix(line, series+" ")
		}
	}
	t.Fatalf("series %q not found", series)
	return ""
}

func TestRequestValidation(t *testing.T) {
	_, c := newTestClient(t, Config{Queues: 2})
	tooMany := make([]WireItem, MaxWireBatch+1)

	cases := []struct {
		name string
		code int
		do   func() int
	}{
		{"unknown path", http.StatusNotFound, func() int { return c.get("/nope", nil) }},
		{"bad tenant name", http.StatusNotFound, func() int {
			return c.post("/v1/bad.name/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(1)}, nil)
		}},
		{"missing op", http.StatusNotFound, func() int { return c.get("/v1/solo", nil) }},
		{"unknown op", http.StatusNotFound, func() int {
			return c.post("/v1/ok/frobnicate", EnqueueBatchRequest{Session: "s"}, nil)
		}},
		{"GET on POST op", http.StatusMethodNotAllowed, func() int { return c.get("/v1/ok/enqueue-batch", nil) }},
		{"POST on stats", http.StatusMethodNotAllowed, func() int {
			return c.post("/v1/ok/stats", struct{}{}, nil)
		}},
		{"empty items", http.StatusBadRequest, func() int {
			return c.post("/v1/ok/enqueue-batch", EnqueueBatchRequest{Session: "s"}, nil)
		}},
		{"oversized batch", http.StatusBadRequest, func() int {
			return c.post("/v1/ok/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: tooMany}, nil)
		}},
		{"missing session", http.StatusBadRequest, func() int {
			return c.post("/v1/ok/enqueue-batch", EnqueueBatchRequest{Items: wireItems(1)}, nil)
		}},
		{"zero max", http.StatusBadRequest, func() int {
			return c.post("/v1/ok/delete-min-up-to", DeleteMinRequest{Session: "s"}, nil)
		}},
		{"read without session", http.StatusBadRequest, func() int { return c.get("/v1/ok/counter/read", nil) }},
	}
	for _, tc := range cases {
		if code := tc.do(); code != tc.code {
			t.Errorf("%s: got %d, want %d", tc.name, code, tc.code)
		}
	}
}

func TestTenantLimit403(t *testing.T) {
	_, c := newTestClient(t, Config{Queues: 2, MaxTenants: 1})
	if code := c.get("/v1/first/stats", nil); code != http.StatusOK {
		t.Fatalf("first tenant = %d", code)
	}
	if code := c.get("/v1/second/stats", nil); code != http.StatusForbidden {
		t.Fatalf("over-limit tenant = %d, want 403", code)
	}
	// The existing tenant keeps working.
	if code := c.get("/v1/first/stats", nil); code != http.StatusOK {
		t.Fatalf("existing tenant after limit = %d", code)
	}
}

func TestServerClose503(t *testing.T) {
	s, c := newTestClient(t, Config{Queues: 2, Batch: 8})
	if code := c.post("/v1/x/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(1, 2)}, nil); code != http.StatusOK {
		t.Fatalf("enqueue = %d", code)
	}
	s.Close()
	// Liveness stays green after Close (the process is alive and draining);
	// readiness and the API go 503.
	if code := c.get("/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz after Close = %d, want 200", code)
	}
	if code := c.get("/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after Close = %d, want 503", code)
	}
	if code := c.get("/v1/x/stats", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("request after Close = %d, want 503", code)
	}
	// Close flushed the lease: the buffered elements are in the structure.
	tn, ok := s.tenant("x")
	if !ok {
		t.Fatal("tenant lookup failed")
	}
	if got := tn.mq.Len(); got != 2 {
		t.Fatalf("Close must flush leases: Len=%d want 2", got)
	}
}

func TestJanitorExpires(t *testing.T) {
	s, c := newTestClient(t, Config{Queues: 2, Batch: 8, IdleTimeout: 10 * time.Millisecond})
	stop := s.StartJanitor(5 * time.Millisecond)
	defer stop()
	if code := c.post("/v1/j/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(1, 2, 3)}, nil); code != http.StatusOK {
		t.Fatalf("enqueue = %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st StatsResponse
		if code := c.get("/v1/j/stats", &st); code != http.StatusOK {
			t.Fatalf("stats = %d", code)
		}
		if st.Leases == 0 && st.QueueLen == 3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("janitor never reaped the idle lease: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
