//go:build dlzfail

package dlzd

import (
	"net/http"
	"strconv"
	"testing"

	"repro/internal/fail"
	"repro/internal/wal"
)

// TestWALAppendRefusedPoisonsAck pins the journal-before-ack contract under
// an injected append failure: the request answers 500 (never a false ack),
// the failure is counted, the daemon keeps serving, and a recovery sees only
// what was journaled — the refused request's items exist in the live server
// (applied-but-unacknowledged) but are absent after reboot, which is exactly
// the documented semantics of a 500: not durable, may or may not have
// applied.
func TestWALAppendRefusedPoisonsAck(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	dir := t.TempDir()
	s, c := newDurableClient(t, dir, Config{Queues: 2, Batch: 4, Seed: 7})

	if code := c.post("/v1/w/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(1, 2)}, nil); code != http.StatusOK {
		t.Fatalf("pre-fault enqueue = %d", code)
	}

	fail.Arm(fail.SiteWALAppend, fail.Policy{Kind: fail.KindError, Count: 1})
	if code := c.post("/v1/w/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(3, 4, 5)}, nil); code != http.StatusInternalServerError {
		t.Fatalf("enqueue with refused append = %d, want 500", code)
	}
	if got := fail.Fires(fail.SiteWALAppend); got != 1 {
		t.Fatalf("append failpoint fired %d times, want 1", got)
	}
	fail.Reset()

	// The daemon keeps serving and the failure is visible on /metrics.
	if code := c.post("/v1/w/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(6)}, nil); code != http.StatusOK {
		t.Fatalf("post-fault enqueue = %d", code)
	}
	errs, err := strconv.ParseUint(lineValue(t, c.metrics(), "dlzd_wal_append_errors_total"), 10, 64)
	if err != nil || errs != 1 {
		t.Errorf("dlzd_wal_append_errors_total = %d (%v), want 1", errs, err)
	}
	// Live state holds all 6 items (the refused batch DID apply in memory);
	// close the session so the lease buffer publishes before counting.
	if code := c.post("/v1/w/session/close", SessionCloseRequest{Session: "s"}, nil); code != http.StatusOK {
		t.Fatalf("close = %d", code)
	}
	tw, _ := s.tenant("w")
	if got := tw.mq.Len(); got != 6 {
		t.Errorf("live queue = %d, want 6", got)
	}

	// Reboot: only the journaled (acked) operations survive.
	s2 := New(Config{Queues: 2, Batch: 4, Seed: 9, Durability: &Durability{Dir: dir}})
	if _, err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer s2.Close()
	tw2, ok := s2.tenant("w")
	if !ok {
		t.Fatal("tenant w missing after reboot")
	}
	if got := tw2.mq.Len(); got != 3 {
		t.Errorf("recovered queue = %d, want 3 (acked items only)", got)
	}
	if got := tw2.opsEnqueued.Load(); got != 3 {
		t.Errorf("recovered OpsEnqueued = %d, want 3", got)
	}
}

// TestWALFsyncDelayInjected arms the fsync delay site under the always
// policy: acks stall through the widened window but still land, and the
// journal stays intact — this is the site the chaos soak uses to widen the
// SIGKILL-mid-fsync race.
func TestWALFsyncDelayInjected(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	dir := t.TempDir()
	_, c := newDurableClient(t, dir, Config{Queues: 2, Batch: 4, Seed: 7,
		Durability: &Durability{Dir: dir, Fsync: wal.FsyncAlways}})

	fail.Arm(fail.SiteWALFsync, fail.Policy{Kind: fail.KindDelay, Delay: 0, Count: 8})
	for i := 0; i < 4; i++ {
		if code := c.post("/v1/f/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(uint64(i))}, nil); code != http.StatusOK {
			t.Fatalf("enqueue %d under fsync delay = %d", i, code)
		}
	}
	if fail.Fires(fail.SiteWALFsync) == 0 {
		t.Fatal("fsync failpoint never fired under FsyncAlways")
	}
	fail.Reset()

	states, _, err := wal.Replay(dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(states) != 1 || len(states[0].Items) != 4 {
		t.Fatalf("journal holds %+v, want 1 tenant with 4 items", states)
	}
}
