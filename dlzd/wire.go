package dlzd

// Wire types of the dlzd HTTP/JSON protocol. Priorities and values are full
// uint64s: Go's JSON encoder emits them as exact integer literals and the
// decoder parses literals directly into uint64 fields, so priorities beyond
// 2^53 (including the 2^48 top-word truncation boundary the differential
// tests straddle) survive the wire round trip at full resolution.

// WireItem is one (priority, value) element as it crosses the wire.
type WireItem struct {
	Priority uint64 `json:"priority"`
	Value    uint64 `json:"value"`
}

// EnqueueBatchRequest is the body of POST /v1/{tenant}/enqueue-batch: insert
// Items into the tenant's MultiQueue through the session's leased handle.
// Elements ride the handle's buffered insert path and become visible to
// other sessions in AddBatch lumps; Buffered in the response reports how
// many are still staged in the handle.
type EnqueueBatchRequest struct {
	// Session is the caller's session token; the daemon leases one handle
	// pair per token, so the sticky/affine sampler state survives across
	// requests carrying the same token.
	Session string `json:"session"`
	// Items are enqueued in order with their explicit priorities (the
	// relaxed priority-queue mode; clients wanting FIFO semantics pass
	// their own monotone stamps).
	Items []WireItem `json:"items"`
}

// EnqueueBatchResponse reports an enqueue-batch outcome.
type EnqueueBatchResponse struct {
	// Enqueued is the number of items accepted (always len(Items) on 200).
	Enqueued int `json:"enqueued"`
	// Buffered is the number of elements still staged in the session's
	// insert buffer after this request — published on the next full batch,
	// session close, or lease expiry.
	Buffered int `json:"buffered"`
}

// DeleteMinRequest is the body of POST /v1/{tenant}/delete-min-up-to:
// remove up to Max relaxed minima through the session's leased handle (the
// cpq.Queue DeleteMinUpTo path end-to-end).
type DeleteMinRequest struct {
	Session string `json:"session"`
	// Max bounds the number of returned items; fewer are returned only when
	// the structure ran empty. Must be in [1, MaxWireBatch].
	Max int `json:"max"`
}

// DeleteMinResponse carries the removed elements in the order the relaxed
// dequeue produced them (each of rank O(m) in expectation, Theorem 7.1).
type DeleteMinResponse struct {
	Items []WireItem `json:"items"`
	// Truncated is set when the request deadline expired mid-drain: Items
	// holds what was removed before the deadline (they are already out of
	// the structure, so a partial 200 — not an error — is what preserves
	// delivered-exactly-once). Fewer than Max items with Truncated false
	// means the structure ran empty.
	Truncated bool `json:"truncated,omitempty"`
}

// CounterAddRequest is the body of POST /v1/{tenant}/counter/add-batch:
// apply the weighted increments Deltas to the tenant's MultiCounter through
// the session's leased handle (buffered, published in batch lumps).
type CounterAddRequest struct {
	Session string   `json:"session"`
	Deltas  []uint64 `json:"deltas"`
}

// CounterAddResponse reports a counter add-batch outcome.
type CounterAddResponse struct {
	// Added is the number of deltas applied (always len(Deltas) on 200).
	Added int `json:"added"`
	// BufferedOps and BufferedWeight report what the session's handle still
	// holds locally after this request — invisible to reads until the next
	// batch publish, session close, or lease expiry.
	BufferedOps    int    `json:"buffered_ops"`
	BufferedWeight uint64 `json:"buffered_weight"`
}

// CounterReadResponse is the body of GET /v1/{tenant}/counter/read: the
// approximate total (Algorithm 1's read, within O(m·log m) of the true
// published count).
type CounterReadResponse struct {
	Value uint64 `json:"value"`
}

// SessionCloseRequest is the body of POST /v1/{tenant}/session/close: flush
// and retire the session's leased handles. The disconnect half of the lease
// lifecycle; idle leases are expired by the janitor with the same path.
type SessionCloseRequest struct {
	Session string `json:"session"`
}

// SessionCloseResponse reports a session close outcome. Closed is false
// when the token had no live lease (already expired or never used).
type SessionCloseResponse struct {
	Closed bool `json:"closed"`
}

// ResizeRequest is the body of POST /v1/{tenant}/resize: move the tenant's
// live shard count (queue and counter together) to M, clamped to the
// server's [MinQueues, MaxQueues] range.
type ResizeRequest struct {
	M int `json:"m"`
}

// ResizeResponse reports a resize outcome: the shard count actually in
// effect after clamping (a clamped request is a success), plus the queue's
// resize epoch counter and completed-resize count.
type ResizeResponse struct {
	M       int    `json:"m"`
	Epoch   uint64 `json:"epoch"`
	Resizes uint64 `json:"resizes"`
}

// StatsResponse is the body of GET /v1/{tenant}/stats — the quiescent audit
// surface the soak test's conservation check reads. QueueLen and
// CounterExact count only published state; the Buffered/Prefetched fields
// report what live leases still hold, so the logical totals even mid-run
// are QueueLen+BufferedEnqueues+PrefetchedDequeues (elements not yet
// delivered to any client) and CounterExact+BufferedCounterWeight.
// The applied-operation ledger (OpsEnqueued, OpsDequeued, CounterDeltaSum,
// OpsMetered) is defer-committed inside the handlers, so it stays exact
// through injected faults; at quiescence (all leases closed) conservation
// demands QueueLen == OpsEnqueued − OpsDequeued, CounterExact ==
// CounterDeltaSum and QuotaUsed == OpsMetered — the chaos soak's exit
// criteria.
type StatsResponse struct {
	Tenant                string `json:"tenant"`
	QueueLen              int    `json:"queue_len"`
	CounterExact          uint64 `json:"counter_exact"`
	QuotaUsed             uint64 `json:"quota_used"`
	Leases                int    `json:"leases"`
	BufferedEnqueues      int    `json:"buffered_enqueues"`
	PrefetchedDequeues    int    `json:"prefetched_dequeues"`
	BufferedCounterOps    int    `json:"buffered_counter_ops"`
	BufferedCounterWeight uint64 `json:"buffered_counter_weight"`
	OpsEnqueued           uint64 `json:"ops_enqueued"`
	OpsDequeued           uint64 `json:"ops_dequeued"`
	OpsMetered            uint64 `json:"ops_metered"`
	CounterDeltaSum       uint64 `json:"counter_delta_sum"`
	// ShedLevel is the tenant's current adaptive shed level (0..3).
	ShedLevel int `json:"shed_level"`
	// PanicsRecovered counts handler panics absorbed by the recovery
	// envelope; RepairFailures counts lease retirements that exhausted the
	// repair ladder (0 under any Count-bounded fault schedule).
	PanicsRecovered uint64 `json:"panics_recovered"`
	RepairFailures  uint64 `json:"repair_failures"`
	// Invalidations/Reclaimed mirror the MultiQueue tombstone counters; at
	// quiescence they are equal (no tombstone outlives the drain that would
	// have surfaced it).
	Invalidations uint64 `json:"invalidations"`
	Reclaimed     uint64 `json:"reclaimed"`
	// CurrentM/Epoch/Resizes report the tenant queue's elastic topology:
	// the live shard count, the resize epoch counter and the number of
	// completed resize epochs (the counter tracks the queue's m).
	CurrentM int    `json:"current_m"`
	Epoch    uint64 `json:"epoch"`
	Resizes  uint64 `json:"resizes"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
