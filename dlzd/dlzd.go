// Package dlzd is the multi-tenant relaxed-structure daemon: an HTTP/JSON
// front end that serves the repository's distributionally linearizable
// MultiQueue and MultiCounter to network clients — the "millions of users"
// direction of ROADMAP.md, with the paper's per-thread handle discipline
// mapped onto session leases (DESIGN.md §8).
//
// Each tenant namespace owns one dlz.MultiQueue and one dlz.MultiCounter
// (created on first use, bounded by Config.MaxTenants). Clients carry a
// session token; the daemon leases a handle pair per token and keeps it
// across requests, so the sticky d-choice sampler, the shard-affine home
// stripe and the batch buffers survive request boundaries exactly as they
// survive operation boundaries in-process — which is what preserves the
// paper's distributional argument under request traffic. Leases are flushed
// and retired on explicit session close or idle expiry (the janitor), riding
// the handle Close contract so an abandoned connection can never strand
// buffered elements.
//
// The wire batch API (enqueue-batch, delete-min-up-to, counter/add-batch)
// rides the zero-alloc AddBatch/DeleteMinUpTo fast path end-to-end: wire
// batches land in the leased handle's fixed buffers and publish in Batch-size
// lumps with one lock acquisition each. Backpressure is a bounded per-tenant
// in-flight budget (429 on overflow); per-tenant quotas are metered by a
// MultiCounter themselves. GET /metrics exports the publication-elision,
// spin-backoff and sampler-reroll counters the internals already maintain.
//
// Run it with cmd/dlzd; drive it with cmd/dlzd-load.
package dlzd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/dlz"
	"repro/internal/cpq"
	"repro/internal/fail"
	"repro/internal/wal"
)

// MaxWireBatch bounds the item count of a single wire request (enqueue
// items, dequeue max, counter deltas), keeping one request's handler time
// and response size bounded regardless of client behavior.
const MaxWireBatch = 4096

// Config configures New. The zero value of every optional field selects a
// serviceable default; Queues is the only field without one that matters
// (it defaults to 64).
type Config struct {
	// Queues is the initial m for each tenant's MultiQueue and MultiCounter
	// (default 64). For the paper's guarantees it should be a large constant
	// multiple of the expected concurrent session count per tenant.
	Queues int
	// MinQueues and MaxQueues bound each tenant's live shard count for
	// manual resizes (POST /v1/{tenant}/resize) and the AutoScale
	// controller. 0 pins the bound to Queues — both zero is the fixed-m
	// pre-elastic behavior. Must satisfy 1 <= MinQueues <= Queues <=
	// MaxQueues when set.
	MinQueues int
	MaxQueues int
	// AutoScale enables the per-tenant contention-driven resize controller
	// (dlz.AutoScale semantics): the janitor ticks each tenant queue's
	// controller once per sweep, and the tenant counter's shard count
	// tracks the queue's. nil leaves resizing under manual control.
	AutoScale *dlz.AutoScale
	// Backing selects the per-queue sequential structure (default binary;
	// cpq.BackingDAry is the fastest for the batched wire path).
	Backing cpq.Backing
	// Capacity is the per-queue preallocation hint (default 1024).
	Capacity int
	// Choices, Stickiness, Batch and Affinity configure the fast path of
	// every tenant structure, with the same semantics and defaults as
	// dlz.MultiQueueConfig / dlz.MultiCounterConfig.
	Choices    int
	Stickiness int
	Batch      int
	Affinity   float64
	// MaxTenants bounds the number of live namespaces (default 64); further
	// tenant names are rejected with 403.
	MaxTenants int
	// MaxInFlight bounds the number of requests concurrently inside one
	// tenant's handlers — the backpressure budget; overflow is rejected
	// with 429. 0 means unlimited.
	MaxInFlight int
	// QuotaOps caps the total operations (enqueued items + dequeued items +
	// counter deltas) a tenant may admit over its lifetime, metered by a
	// per-tenant quota MultiCounter; exhaustion is rejected with 429.
	// 0 means unlimited.
	QuotaOps uint64
	// IdleTimeout is the lease idle expiry: a session untouched for this
	// long is flushed and retired by the janitor (StartJanitor) or by an
	// explicit ExpireIdle sweep. 0 disables time-based expiry (leases then
	// live until session close or server Close).
	IdleTimeout time.Duration
	// RequestTimeout is the per-request deadline, propagated to the handlers
	// through the request context: a handler that cannot acquire its session
	// lease within the deadline answers 503 busy, an enqueue loop that
	// overruns it aborts with its partial count committed, and a dequeue loop
	// returns the elements drained so far as a truncated 200. 0 disables
	// per-request deadlines (handlers then block as long as the work takes,
	// the pre-hardening behavior).
	RequestTimeout time.Duration
	// ShedTarget enables adaptive load shedding (DESIGN.md §10): when a
	// tenant's EWMA of mutating-request latency exceeds this target, its shed
	// level escalates one step (up to 3), and level/4 of subsequent mutating
	// requests are rejected with 429 plus a Retry-After header of 2^(level−1)
	// seconds; the level steps back down once the EWMA falls below half the
	// target. 0 disables adaptive shedding, leaving MaxInFlight as the only
	// (static) backpressure.
	ShedTarget time.Duration
	// ShedHold is the minimum dwell between shed level changes, damping
	// oscillation (default 100ms).
	ShedHold time.Duration
	// Seed feeds the structure and handle seed sequence (default 1).
	Seed uint64
	// Durability enables the write-ahead journal + snapshot rung (DESIGN.md
	// §12): every acknowledged mutating request is journaled before its 200
	// and Recover rebuilds the tenant namespaces on boot. nil (the default)
	// keeps the daemon purely in-memory with zero added work on any path.
	Durability *Durability
}

// Server is the daemon: an http.Handler serving the wire API plus the
// lease-lifecycle entry points the binary and the tests drive directly.
// Create with New.
type Server struct {
	cfg Config

	mu      sync.RWMutex // guards tenants
	tenants map[string]*tenant

	seeds  atomic.Uint64
	closed atomic.Bool

	// Durability state (all quiescent without Config.Durability). ready
	// gates /v1 traffic: false from New until Recover completes on a
	// durable server, true from New otherwise. sweepMu serializes the
	// idle-expiry sweep against the snapshotter's capture; snapMu
	// serializes snapshotters against each other.
	walPtr          atomic.Pointer[wal.Log]
	ready           atomic.Bool
	sweepMu         sync.Mutex
	snapMu          sync.Mutex
	recoveryRecords atomic.Uint64
	recoveryNanos   atomic.Int64
	walAppendErrors atomic.Uint64
	snapshotsTaken  atomic.Uint64
}

// New returns a Server with cfg's zero values normalized to defaults. The
// relaxed-structure configuration is validated eagerly (panicking like the
// dlz constructors) so a misconfigured daemon fails at startup, not at first
// request.
func New(cfg Config) *Server {
	if cfg.Queues <= 0 {
		cfg.Queues = 64
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Choices < 0 {
		panic("dlzd: Config.Choices must be >= 0")
	}
	minQ, maxQ := cfg.MinQueues, cfg.MaxQueues
	if minQ == 0 {
		minQ = cfg.Queues
	}
	if maxQ == 0 {
		maxQ = cfg.Queues
	}
	if minQ < 1 || minQ > cfg.Queues || cfg.Queues > maxQ {
		panic("dlzd: Config needs 1 <= MinQueues <= Queues <= MaxQueues")
	}
	if cfg.ShedTarget > 0 && cfg.ShedHold <= 0 {
		cfg.ShedHold = 100 * time.Millisecond
	}
	if !(cfg.Affinity >= 0 && cfg.Affinity <= 1) { // rejects NaN too
		panic("dlzd: Config.Affinity must be in [0, 1]")
	}
	if d := cfg.Durability; d != nil {
		if d.Dir == "" {
			panic("dlzd: Config.Durability.Dir is required")
		}
		dd := *d // normalize a copy so the caller's struct is not mutated
		if dd.SnapshotBytes == 0 {
			dd.SnapshotBytes = 64 << 20
		}
		cfg.Durability = &dd
	}
	s := &Server{cfg: cfg, tenants: map[string]*tenant{}}
	s.seeds.Store(cfg.Seed)
	// A durable server is born not-ready: Recover must replay the journal
	// before /v1 traffic is admitted.
	s.ready.Store(cfg.Durability == nil)
	return s
}

// nextSeed returns the next handle/structure seed. Seeds are distinct, which
// is all the per-goroutine generators require.
func (s *Server) nextSeed() uint64 { return s.seeds.Add(1) }

// Config returns the server's normalized configuration.
func (s *Server) Config() Config { return s.cfg }

// tenant returns the named tenant, creating it on first use; ok is false
// when the tenant does not exist and the MaxTenants budget refuses a new
// one.
func (s *Server) tenant(name string) (*tenant, bool) {
	s.mu.RLock()
	t, ok := s.tenants[name]
	s.mu.RUnlock()
	if ok {
		return t, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok = s.tenants[name]; ok {
		return t, true
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, false
	}
	t = newTenant(name, s)
	s.tenants[name] = t
	return t, true
}

// tenantSnapshot returns the live tenants (for sweeps and metrics).
func (s *Server) tenantSnapshot() []*tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	return ts
}

// ExpireIdle flushes and retires every lease across all tenants whose last
// use is before cutoff, returning the number expired. The janitor calls it
// on a timer; tests call it directly for deterministic expiry. sweepMu
// excludes the snapshotter's capture window: a lease the sweep has delinked
// but not yet closed would be invisible to the capture's flush pass, and
// its close publishes buffered elements.
func (s *Server) ExpireIdle(cutoff time.Time) int {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	n := 0
	for _, t := range s.tenantSnapshot() {
		n += t.expireIdle(cutoff)
	}
	return n
}

// AutoScaleTick advances every tenant's contention-driven controller one
// tick (queue first, counter tracking the queue's shard count), returning
// the number of tenants that resized. A no-op unless Config.AutoScale is
// set. The janitor calls it on its sweep timer; tests call it directly for
// deterministic resize epochs.
func (s *Server) AutoScaleTick() int {
	if s.cfg.AutoScale == nil {
		return 0
	}
	journaled := s.log() != nil
	n := 0
	for _, t := range s.tenantSnapshot() {
		// A journaled autoscale resize runs under the tenant's ops gate so
		// its record cannot interleave with a snapshot capture (which would
		// strand the resize on the wrong side of the cut).
		if journaled {
			t.ops.RLock()
		}
		if t.autoScaleTick() {
			n++
			if journaled {
				_ = s.journal(&wal.Record{Type: wal.RecResize, Tenant: t.name, M: t.mq.M()})
			}
		}
		if journaled {
			t.ops.RUnlock()
		}
	}
	return n
}

// StartJanitor launches the maintenance loop — every interval it expires
// leases idle for Config.IdleTimeout, ticks every tenant's resize
// controller (with Config.AutoScale set), and writes a snapshot once the
// journal has grown Durability.SnapshotBytes since the last one — and
// returns its stop function. With no duty configured it returns a no-op
// stop without launching anything. interval <= 0 defaults to
// IdleTimeout / 4 (1s when only autoscaling or snapshotting).
func (s *Server) StartJanitor(interval time.Duration) (stop func()) {
	if s.cfg.IdleTimeout <= 0 && s.cfg.AutoScale == nil && s.cfg.Durability == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = s.cfg.IdleTimeout / 4
		if interval <= 0 {
			interval = time.Second
		}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if s.cfg.IdleTimeout > 0 {
					s.ExpireIdle(time.Now().Add(-s.cfg.IdleTimeout))
				}
				s.AutoScaleTick()
				if d := s.cfg.Durability; d != nil && d.SnapshotBytes > 0 {
					if l := s.log(); l != nil && l.BytesSinceSnapshot() >= d.SnapshotBytes {
						_ = s.Snapshot()
					}
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Close flushes and retires every lease and marks the server closed (further
// /v1 requests get 503; /healthz and /metrics stay up). The final-flush half
// of the conservation contract: after Close every buffered element has been
// published, so quiescent audits (tenant stats, direct structure reads) are
// exact. With durability on, Close then writes a final snapshot and seals
// the journal, so a clean restart replays zero records.
func (s *Server) Close() {
	s.closed.Store(true)
	s.ExpireIdle(time.Now().Add(time.Hour))
	if l := s.log(); l != nil {
		_ = s.Snapshot()
		_ = l.Close()
	}
}

// ServeHTTP routes the wire API. The path grammar is Go 1.21-compatible
// manual parsing: /healthz, /readyz, /metrics, and /v1/{tenant}/{op} where
// op is one of enqueue-batch, delete-min-up-to, counter/add-batch,
// counter/read, session/close, resize, stats.
//
// /healthz is liveness: 200 for the whole process lifetime, including WAL
// replay and graceful drain — restarting a recovering daemon only makes it
// recover again. /readyz is readiness: 503 until recovery completes and 503
// again once drain begins, so orchestrators stop routing without killing
// the process. /metrics stays scrapeable throughout; only /v1 traffic is
// refused while not ready or draining.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	case r.URL.Path == "/readyz":
		s.serveReadyz(w)
	case r.URL.Path == "/metrics":
		s.serveMetrics(w)
	case strings.HasPrefix(r.URL.Path, "/v1/"):
		if s.closed.Load() {
			writeError(w, http.StatusServiceUnavailable, "server closed")
			return
		}
		if !s.ready.Load() {
			writeError(w, http.StatusServiceUnavailable, "recovering: journal replay in progress")
			return
		}
		s.serveTenantOp(w, r, strings.TrimPrefix(r.URL.Path, "/v1/"))
	default:
		writeError(w, http.StatusNotFound, "unknown path")
	}
}

// validTenantName bounds tenant names to a filesystem/metrics-safe alphabet.
func validTenantName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// opCtx threads the lease a handler acquired back to serveTenantOp's
// recovery envelope: handlers set l right after acquisition and never
// release it themselves, so exactly one place — the envelope — decides
// between a normal release (done) and a post-panic repair, and lease.mu can
// never be left held by a faulting handler.
type opCtx struct {
	l *lease
}

// serveTenantOp dispatches one /v1/{tenant}/{op} request through the
// degradation ladder (DESIGN.md §10): static in-flight backpressure, then
// adaptive load shedding, then the per-request deadline, with the handler
// itself running under a panic-recovery envelope that repairs the session
// lease (flush-or-close) before answering 500.
func (s *Server) serveTenantOp(w http.ResponseWriter, r *http.Request, rest string) {
	name, op, ok := strings.Cut(rest, "/")
	if !ok || !validTenantName(name) {
		writeError(w, http.StatusNotFound, "bad tenant path")
		return
	}
	t, ok := s.tenant(name)
	if !ok {
		writeError(w, http.StatusForbidden, "tenant limit reached")
		return
	}
	if !t.acquire() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "tenant in-flight budget exceeded")
		return
	}
	defer t.release()
	mutating := op == "enqueue-batch" || op == "delete-min-up-to" || op == "counter/add-batch"
	if s.log() != nil {
		switch op {
		case "enqueue-batch", "delete-min-up-to", "counter/add-batch", "session/close", "resize":
			// The tenant's ops gate (read side). The snapshotter takes the
			// write side, so a capture sees no journaled operation in
			// flight. Registered before the recovery envelope: defers run
			// LIFO, so the gate is still held while the envelope repairs a
			// panicked lease — the repair flush publishes elements, which
			// must not interleave with a capture either.
			t.ops.RLock()
			defer t.ops.RUnlock()
		}
	}
	if mutating {
		if retryAfter, shed := t.shed(); shed {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			writeError(w, http.StatusTooManyRequests, "load shed")
			return
		}
	}
	if d := s.cfg.RequestTimeout; d > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
	}
	start := time.Now()
	oc := &opCtx{}
	defer func() {
		rec := recover()
		if oc.l != nil {
			if rec != nil {
				t.repair(oc.l)
			} else {
				oc.l.done()
			}
		}
		if mutating {
			t.observeLatency(time.Since(start))
		}
		if rec != nil {
			site, injected := fail.IsInjectedPanic(rec)
			if !injected {
				// A genuine bug: the lease is repaired and released, but the
				// panic is re-raised so it is reported, not absorbed.
				panic(rec)
			}
			t.panicsRecovered.Add(1)
			writeError(w, http.StatusInternalServerError, "handler fault at "+site+"; session repaired")
		}
	}()
	if fail.Enabled {
		if err := fail.Inject(fail.SiteDlzdHandlerPre); err != nil {
			writeError(w, http.StatusInternalServerError, "injected fault before handler")
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	switch op {
	case "enqueue-batch":
		s.handleEnqueueBatch(w, r, t, oc)
	case "delete-min-up-to":
		s.handleDeleteMinUpTo(w, r, t, oc)
	case "counter/add-batch":
		s.handleCounterAdd(w, r, t, oc)
	case "counter/read":
		s.handleCounterRead(w, r, t, oc)
	case "session/close":
		s.handleSessionClose(w, r, t)
	case "resize":
		s.handleResize(w, r, t)
	case "stats":
		s.handleStats(w, r, t)
	default:
		writeError(w, http.StatusNotFound, "unknown operation")
	}
}

// finish writes a mutating handler's success response through the
// dlzd/handler/post failpoint: an injected error or panic there models the
// classic applied-but-unacknowledged fault — the operations are committed
// (their counters are defer-committed by the handler) but the client sees a
// 500 instead of the success body.
func (s *Server) finish(w http.ResponseWriter, v any) {
	if fail.Enabled {
		if err := fail.Inject(fail.SiteDlzdHandlerPost); err != nil {
			writeError(w, http.StatusInternalServerError, "injected fault before response")
			return
		}
	}
	writeJSON(w, v)
}

// writeBusy answers a request whose session lease could not be locked within
// the request deadline: 503 with a Retry-After hint. The token's current
// holder is stalled or long-running; the lease itself stays live.
func writeBusy(w http.ResponseWriter, t *tenant) {
	t.rejectedBusy.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "session busy")
}

// decode parses a JSON body into v, writing a 400/405 on failure and
// reporting whether the handler should continue.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}

func (s *Server) handleEnqueueBatch(w http.ResponseWriter, r *http.Request, t *tenant, oc *opCtx) {
	var req EnqueueBatchRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Session == "" {
		writeError(w, http.StatusBadRequest, "session token required")
		return
	}
	if len(req.Items) == 0 || len(req.Items) > MaxWireBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("items must number in [1, %d]", MaxWireBatch))
		return
	}
	l, ok := t.lease(r.Context(), req.Session)
	if !ok {
		writeBusy(w, t)
		return
	}
	oc.l = l
	if !t.admitQuota(l, len(req.Items)) {
		writeError(w, http.StatusTooManyRequests, "tenant operation quota exhausted")
		return
	}
	// The applied count commits by defer so it is exact on every exit — a
	// clean 200, an injected mid-batch abort, a deadline overrun, or a panic
	// unwinding to the recovery envelope. Conservation audits rely on it:
	// OpsEnqueued counts exactly the items that entered the leased handle.
	// The journal record mirrors the same discipline: appended explicitly
	// before the 200 on the ack path, and by defer on every other exit, so
	// the journal records exactly the applied operations (an error or panic
	// exit journals applied-but-unacknowledged work — the documented
	// at-least-once overshoot a restart may resurface).
	applied := 0
	metered := uint64(len(req.Items))
	logged := false
	journal := func() error {
		if logged {
			return nil
		}
		logged = true
		return s.journal(&wal.Record{Type: wal.RecEnqueue, Tenant: t.name, Session: req.Session,
			Items: wireToWalItems(req.Items, applied), Metered: metered})
	}
	defer func() {
		t.opsEnqueued.Add(uint64(applied))
		if s.log() != nil {
			_ = journal()
		}
	}()
	ctx := r.Context()
	for _, it := range req.Items {
		if fail.Enabled {
			if err := fail.Inject(fail.SiteDlzdEnqueueItem); err != nil {
				writeError(w, http.StatusInternalServerError,
					fmt.Sprintf("injected abort after %d items", applied))
				return
			}
		}
		if ctx.Err() != nil {
			t.deadlineAborts.Add(1)
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("deadline exceeded after %d items", applied))
			return
		}
		// Count before the call: EnqueuePriority's only fault point (the core
		// flush failpoint) fires with the element already in the handle
		// buffer, where the repair flush will publish it — counting after
		// would leak exactly the elements that ride a faulted auto-publish.
		applied++
		l.mqh.EnqueuePriority(it.Priority, it.Value)
	}
	if s.log() != nil {
		if err := journal(); err != nil {
			writeError(w, http.StatusInternalServerError, "journal append failed")
			return
		}
	}
	s.finish(w, EnqueueBatchResponse{Enqueued: applied, Buffered: l.mqh.Buffered()})
}

func (s *Server) handleDeleteMinUpTo(w http.ResponseWriter, r *http.Request, t *tenant, oc *opCtx) {
	var req DeleteMinRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Session == "" {
		writeError(w, http.StatusBadRequest, "session token required")
		return
	}
	if req.Max < 1 || req.Max > MaxWireBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("max must be in [1, %d]", MaxWireBatch))
		return
	}
	l, ok := t.lease(r.Context(), req.Session)
	if !ok {
		writeBusy(w, t)
		return
	}
	oc.l = l
	if !t.admitQuota(l, req.Max) {
		writeError(w, http.StatusTooManyRequests, "tenant operation quota exhausted")
		return
	}
	// Defer-committed like the enqueue count: elements drained out of the
	// structure are counted even when a later fault turns the response into
	// a 500 (at-most-once delivery — the server ledger stays exact).
	items := make([]WireItem, 0, req.Max)
	metered := uint64(req.Max)
	logged := false
	journal := func() error {
		if logged {
			return nil
		}
		logged = true
		out := make([]wal.Item, len(items))
		for i, it := range items {
			out[i] = wal.Item{Priority: it.Priority, Value: it.Value}
		}
		return s.journal(&wal.Record{Type: wal.RecDeleteMin, Tenant: t.name, Session: req.Session,
			Items: out, Metered: metered})
	}
	defer func() {
		t.opsDequeued.Add(uint64(len(items)))
		if s.log() != nil {
			_ = journal()
		}
	}()
	ctx := r.Context()
	truncated := false
	for len(items) < req.Max {
		if ctx.Err() != nil {
			// Deadline mid-drain: answer 200 with what was obtained — the
			// elements are already removed, so a partial success is the
			// response that keeps delivered-exactly-once intact.
			t.deadlineAborts.Add(1)
			truncated = true
			break
		}
		it, ok := l.mqh.Dequeue()
		if !ok {
			break
		}
		items = append(items, WireItem{Priority: it.Priority, Value: it.Value})
	}
	if s.log() != nil {
		if err := journal(); err != nil {
			// The elements are already removed; the journal defer would not
			// retry (logged is set). A 500 here means the journal refused —
			// the record was never written, so a restart resurfaces the
			// drained elements: at-most-once delivery still holds, the
			// client just cannot know which. The failure counter surfaces it.
			writeError(w, http.StatusInternalServerError, "journal append failed")
			return
		}
	}
	s.finish(w, DeleteMinResponse{Items: items, Truncated: truncated})
}

func (s *Server) handleCounterAdd(w http.ResponseWriter, r *http.Request, t *tenant, oc *opCtx) {
	var req CounterAddRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Session == "" {
		writeError(w, http.StatusBadRequest, "session token required")
		return
	}
	if len(req.Deltas) == 0 || len(req.Deltas) > MaxWireBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("deltas must number in [1, %d]", MaxWireBatch))
		return
	}
	l, ok := t.lease(r.Context(), req.Session)
	if !ok {
		writeBusy(w, t)
		return
	}
	oc.l = l
	if !t.admitQuota(l, len(req.Deltas)) {
		writeError(w, http.StatusTooManyRequests, "tenant operation quota exhausted")
		return
	}
	// Both the op count and the delta weight commit by defer, so
	// CounterDeltaSum equals the counter's exact value at quiescence even
	// when a fault interrupts the apply loop.
	applied, weight := 0, uint64(0)
	metered := uint64(len(req.Deltas))
	logged := false
	journal := func() error {
		if logged {
			return nil
		}
		logged = true
		return s.journal(&wal.Record{Type: wal.RecCounterAdd, Tenant: t.name, Session: req.Session,
			Count: uint64(applied), Weight: weight, Metered: metered})
	}
	defer func() {
		t.opsCounterAdds.Add(uint64(applied))
		t.counterDeltaSum.Add(weight)
		if s.log() != nil {
			_ = journal()
		}
	}()
	ctx := r.Context()
	for _, d := range req.Deltas {
		if ctx.Err() != nil {
			t.deadlineAborts.Add(1)
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("deadline exceeded after %d deltas", applied))
			return
		}
		l.ch.Add(d)
		applied++
		weight += d
	}
	if s.log() != nil {
		if err := journal(); err != nil {
			writeError(w, http.StatusInternalServerError, "journal append failed")
			return
		}
	}
	s.finish(w, CounterAddResponse{
		Added:          applied,
		BufferedOps:    l.ch.Buffered(),
		BufferedWeight: l.ch.BufferedWeight(),
	})
}

func (s *Server) handleCounterRead(w http.ResponseWriter, r *http.Request, t *tenant, oc *opCtx) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	session := r.URL.Query().Get("session")
	if session == "" {
		writeError(w, http.StatusBadRequest, "session query parameter required")
		return
	}
	l, ok := t.lease(r.Context(), session)
	if !ok {
		writeBusy(w, t)
		return
	}
	oc.l = l
	writeJSON(w, CounterReadResponse{Value: l.ch.Read()})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req SessionCloseRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Session == "" {
		writeError(w, http.StatusBadRequest, "session token required")
		return
	}
	closed := t.closeSession(req.Session)
	if closed && s.log() != nil {
		// The close published the lease's buffered work into the shared
		// structures; the record exists so two journal replays agree on when
		// that publish became visible (the replayed enqueues are already in
		// their own records — close carries no payload).
		if err := s.journal(&wal.Record{Type: wal.RecSessionClose, Tenant: t.name, Session: req.Session}); err != nil {
			writeError(w, http.StatusInternalServerError, "journal append failed")
			return
		}
	}
	writeJSON(w, SessionCloseResponse{Closed: closed})
}

// handleResize serves POST /v1/{tenant}/resize: move the tenant's live
// shard count to the requested m, clamped to the server's
// [MinQueues, MaxQueues] range, with the counter tracking the queue. The
// response reports the count actually in effect — administrative clients
// treat a clamped result as success, not an error.
func (s *Server) handleResize(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req ResizeRequest
	if !decode(w, r, &req) {
		return
	}
	if req.M < 1 {
		writeError(w, http.StatusBadRequest, "m must be >= 1")
		return
	}
	m := t.mq.Resize(req.M)
	t.mc.Resize(m)
	if s.log() != nil {
		if err := s.journal(&wal.Record{Type: wal.RecResize, Tenant: t.name, M: m}); err != nil {
			writeError(w, http.StatusInternalServerError, "journal append failed")
			return
		}
	}
	st := t.mq.Stats()
	writeJSON(w, ResizeResponse{M: m, Epoch: st.Epoch, Resizes: st.Resizes})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, t *tenant) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	agg := t.liveLeaseStats()
	mqs := t.mq.Stats()
	writeJSON(w, StatsResponse{
		Tenant:                t.name,
		QueueLen:              t.mq.Len(),
		CounterExact:          t.mc.Exact(),
		QuotaUsed:             t.quota.Exact(),
		Leases:                agg.leases,
		BufferedEnqueues:      agg.bufferedEnqueues,
		PrefetchedDequeues:    agg.prefetchedDequeues,
		BufferedCounterOps:    agg.bufferedCounterOps,
		BufferedCounterWeight: agg.bufferedCounterWeight,
		OpsEnqueued:           t.opsEnqueued.Load(),
		OpsDequeued:           t.opsDequeued.Load(),
		OpsMetered:            t.opsMetered.Load(),
		CounterDeltaSum:       t.counterDeltaSum.Load(),
		ShedLevel:             int(t.shedLevel.Load()),
		PanicsRecovered:       t.panicsRecovered.Load(),
		RepairFailures:        t.repairFailures.Load(),
		Invalidations:         mqs.Invalidations,
		Reclaimed:             mqs.Reclaimed,
		CurrentM:              mqs.CurrentM,
		Epoch:                 mqs.Epoch,
		Resizes:               mqs.Resizes,
	})
}
