// Package dlzd is the multi-tenant relaxed-structure daemon: an HTTP/JSON
// front end that serves the repository's distributionally linearizable
// MultiQueue and MultiCounter to network clients — the "millions of users"
// direction of ROADMAP.md, with the paper's per-thread handle discipline
// mapped onto session leases (DESIGN.md §8).
//
// Each tenant namespace owns one dlz.MultiQueue and one dlz.MultiCounter
// (created on first use, bounded by Config.MaxTenants). Clients carry a
// session token; the daemon leases a handle pair per token and keeps it
// across requests, so the sticky d-choice sampler, the shard-affine home
// stripe and the batch buffers survive request boundaries exactly as they
// survive operation boundaries in-process — which is what preserves the
// paper's distributional argument under request traffic. Leases are flushed
// and retired on explicit session close or idle expiry (the janitor), riding
// the handle Close contract so an abandoned connection can never strand
// buffered elements.
//
// The wire batch API (enqueue-batch, delete-min-up-to, counter/add-batch)
// rides the zero-alloc AddBatch/DeleteMinUpTo fast path end-to-end: wire
// batches land in the leased handle's fixed buffers and publish in Batch-size
// lumps with one lock acquisition each. Backpressure is a bounded per-tenant
// in-flight budget (429 on overflow); per-tenant quotas are metered by a
// MultiCounter themselves. GET /metrics exports the publication-elision,
// spin-backoff and sampler-reroll counters the internals already maintain.
//
// Run it with cmd/dlzd; drive it with cmd/dlzd-load.
package dlzd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cpq"
)

// MaxWireBatch bounds the item count of a single wire request (enqueue
// items, dequeue max, counter deltas), keeping one request's handler time
// and response size bounded regardless of client behavior.
const MaxWireBatch = 4096

// Config configures New. The zero value of every optional field selects a
// serviceable default; Queues is the only field without one that matters
// (it defaults to 64).
type Config struct {
	// Queues is m for each tenant's MultiQueue and MultiCounter (default
	// 64). For the paper's guarantees it should be a large constant multiple
	// of the expected concurrent session count per tenant.
	Queues int
	// Backing selects the per-queue sequential structure (default binary;
	// cpq.BackingDAry is the fastest for the batched wire path).
	Backing cpq.Backing
	// Capacity is the per-queue preallocation hint (default 1024).
	Capacity int
	// Choices, Stickiness, Batch and Affinity configure the fast path of
	// every tenant structure, with the same semantics and defaults as
	// dlz.MultiQueueConfig / dlz.MultiCounterConfig.
	Choices    int
	Stickiness int
	Batch      int
	Affinity   float64
	// MaxTenants bounds the number of live namespaces (default 64); further
	// tenant names are rejected with 403.
	MaxTenants int
	// MaxInFlight bounds the number of requests concurrently inside one
	// tenant's handlers — the backpressure budget; overflow is rejected
	// with 429. 0 means unlimited.
	MaxInFlight int
	// QuotaOps caps the total operations (enqueued items + dequeued items +
	// counter deltas) a tenant may admit over its lifetime, metered by a
	// per-tenant quota MultiCounter; exhaustion is rejected with 429.
	// 0 means unlimited.
	QuotaOps uint64
	// IdleTimeout is the lease idle expiry: a session untouched for this
	// long is flushed and retired by the janitor (StartJanitor) or by an
	// explicit ExpireIdle sweep. 0 disables time-based expiry (leases then
	// live until session close or server Close).
	IdleTimeout time.Duration
	// Seed feeds the structure and handle seed sequence (default 1).
	Seed uint64
}

// Server is the daemon: an http.Handler serving the wire API plus the
// lease-lifecycle entry points the binary and the tests drive directly.
// Create with New.
type Server struct {
	cfg Config

	mu      sync.RWMutex // guards tenants
	tenants map[string]*tenant

	seeds  atomic.Uint64
	closed atomic.Bool
}

// New returns a Server with cfg's zero values normalized to defaults. The
// relaxed-structure configuration is validated eagerly (panicking like the
// dlz constructors) so a misconfigured daemon fails at startup, not at first
// request.
func New(cfg Config) *Server {
	if cfg.Queues <= 0 {
		cfg.Queues = 64
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Choices < 0 {
		panic("dlzd: Config.Choices must be >= 0")
	}
	if !(cfg.Affinity >= 0 && cfg.Affinity <= 1) { // rejects NaN too
		panic("dlzd: Config.Affinity must be in [0, 1]")
	}
	s := &Server{cfg: cfg, tenants: map[string]*tenant{}}
	s.seeds.Store(cfg.Seed)
	return s
}

// nextSeed returns the next handle/structure seed. Seeds are distinct, which
// is all the per-goroutine generators require.
func (s *Server) nextSeed() uint64 { return s.seeds.Add(1) }

// Config returns the server's normalized configuration.
func (s *Server) Config() Config { return s.cfg }

// tenant returns the named tenant, creating it on first use; ok is false
// when the tenant does not exist and the MaxTenants budget refuses a new
// one.
func (s *Server) tenant(name string) (*tenant, bool) {
	s.mu.RLock()
	t, ok := s.tenants[name]
	s.mu.RUnlock()
	if ok {
		return t, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok = s.tenants[name]; ok {
		return t, true
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, false
	}
	t = newTenant(name, s)
	s.tenants[name] = t
	return t, true
}

// tenantSnapshot returns the live tenants (for sweeps and metrics).
func (s *Server) tenantSnapshot() []*tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	return ts
}

// ExpireIdle flushes and retires every lease across all tenants whose last
// use is before cutoff, returning the number expired. The janitor calls it
// on a timer; tests call it directly for deterministic expiry.
func (s *Server) ExpireIdle(cutoff time.Time) int {
	n := 0
	for _, t := range s.tenantSnapshot() {
		n += t.expireIdle(cutoff)
	}
	return n
}

// StartJanitor launches the idle-expiry loop (every interval, expire leases
// idle for Config.IdleTimeout) and returns its stop function. With
// IdleTimeout 0 it returns a no-op stop without launching anything.
// interval <= 0 defaults to IdleTimeout / 4.
func (s *Server) StartJanitor(interval time.Duration) (stop func()) {
	if s.cfg.IdleTimeout <= 0 {
		return func() {}
	}
	if interval <= 0 {
		interval = s.cfg.IdleTimeout / 4
		if interval <= 0 {
			interval = time.Second
		}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s.ExpireIdle(time.Now().Add(-s.cfg.IdleTimeout))
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Close flushes and retires every lease and marks the server closed (further
// requests get 503). The final-flush half of the conservation contract: after
// Close every buffered element has been published, so quiescent audits
// (tenant stats, direct structure reads) are exact.
func (s *Server) Close() {
	s.closed.Store(true)
	for _, t := range s.tenantSnapshot() {
		t.expireIdle(time.Now().Add(time.Hour))
	}
}

// ServeHTTP routes the wire API. The path grammar is Go 1.21-compatible
// manual parsing: /healthz, /metrics, and /v1/{tenant}/{op} where op is one
// of enqueue-batch, delete-min-up-to, counter/add-batch, counter/read,
// session/close, stats.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "server closed")
		return
	}
	switch {
	case r.URL.Path == "/healthz":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	case r.URL.Path == "/metrics":
		s.serveMetrics(w)
	case strings.HasPrefix(r.URL.Path, "/v1/"):
		s.serveTenantOp(w, r, strings.TrimPrefix(r.URL.Path, "/v1/"))
	default:
		writeError(w, http.StatusNotFound, "unknown path")
	}
}

// validTenantName bounds tenant names to a filesystem/metrics-safe alphabet.
func validTenantName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// serveTenantOp dispatches one /v1/{tenant}/{op} request through the
// backpressure gate.
func (s *Server) serveTenantOp(w http.ResponseWriter, r *http.Request, rest string) {
	name, op, ok := strings.Cut(rest, "/")
	if !ok || !validTenantName(name) {
		writeError(w, http.StatusNotFound, "bad tenant path")
		return
	}
	t, ok := s.tenant(name)
	if !ok {
		writeError(w, http.StatusForbidden, "tenant limit reached")
		return
	}
	if !t.acquire() {
		writeError(w, http.StatusTooManyRequests, "tenant in-flight budget exceeded")
		return
	}
	defer t.release()
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	switch op {
	case "enqueue-batch":
		s.handleEnqueueBatch(w, r, t)
	case "delete-min-up-to":
		s.handleDeleteMinUpTo(w, r, t)
	case "counter/add-batch":
		s.handleCounterAdd(w, r, t)
	case "counter/read":
		s.handleCounterRead(w, r, t)
	case "session/close":
		s.handleSessionClose(w, r, t)
	case "stats":
		s.handleStats(w, r, t)
	default:
		writeError(w, http.StatusNotFound, "unknown operation")
	}
}

// decode parses a JSON body into v, writing a 400/405 on failure and
// reporting whether the handler should continue.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}

func (s *Server) handleEnqueueBatch(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req EnqueueBatchRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Session == "" {
		writeError(w, http.StatusBadRequest, "session token required")
		return
	}
	if len(req.Items) == 0 || len(req.Items) > MaxWireBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("items must number in [1, %d]", MaxWireBatch))
		return
	}
	l := t.lease(req.Session)
	defer l.done()
	if !t.admitQuota(l, len(req.Items)) {
		writeError(w, http.StatusTooManyRequests, "tenant operation quota exhausted")
		return
	}
	for _, it := range req.Items {
		l.mqh.EnqueuePriority(it.Priority, it.Value)
	}
	t.opsEnqueued.Add(uint64(len(req.Items)))
	writeJSON(w, EnqueueBatchResponse{Enqueued: len(req.Items), Buffered: l.mqh.Buffered()})
}

func (s *Server) handleDeleteMinUpTo(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req DeleteMinRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Session == "" {
		writeError(w, http.StatusBadRequest, "session token required")
		return
	}
	if req.Max < 1 || req.Max > MaxWireBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("max must be in [1, %d]", MaxWireBatch))
		return
	}
	l := t.lease(req.Session)
	defer l.done()
	if !t.admitQuota(l, req.Max) {
		writeError(w, http.StatusTooManyRequests, "tenant operation quota exhausted")
		return
	}
	items := make([]WireItem, 0, req.Max)
	for len(items) < req.Max {
		it, ok := l.mqh.Dequeue()
		if !ok {
			break
		}
		items = append(items, WireItem{Priority: it.Priority, Value: it.Value})
	}
	t.opsDequeued.Add(uint64(len(items)))
	writeJSON(w, DeleteMinResponse{Items: items})
}

func (s *Server) handleCounterAdd(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req CounterAddRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Session == "" {
		writeError(w, http.StatusBadRequest, "session token required")
		return
	}
	if len(req.Deltas) == 0 || len(req.Deltas) > MaxWireBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("deltas must number in [1, %d]", MaxWireBatch))
		return
	}
	l := t.lease(req.Session)
	defer l.done()
	if !t.admitQuota(l, len(req.Deltas)) {
		writeError(w, http.StatusTooManyRequests, "tenant operation quota exhausted")
		return
	}
	for _, d := range req.Deltas {
		l.ch.Add(d)
	}
	t.opsCounterAdds.Add(uint64(len(req.Deltas)))
	writeJSON(w, CounterAddResponse{
		Added:          len(req.Deltas),
		BufferedOps:    l.ch.Buffered(),
		BufferedWeight: l.ch.BufferedWeight(),
	})
}

func (s *Server) handleCounterRead(w http.ResponseWriter, r *http.Request, t *tenant) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	session := r.URL.Query().Get("session")
	if session == "" {
		writeError(w, http.StatusBadRequest, "session query parameter required")
		return
	}
	l := t.lease(session)
	defer l.done()
	writeJSON(w, CounterReadResponse{Value: l.ch.Read()})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req SessionCloseRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Session == "" {
		writeError(w, http.StatusBadRequest, "session token required")
		return
	}
	writeJSON(w, SessionCloseResponse{Closed: t.closeSession(req.Session)})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, t *tenant) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	agg := t.liveLeaseStats()
	writeJSON(w, StatsResponse{
		Tenant:                t.name,
		QueueLen:              t.mq.Len(),
		CounterExact:          t.mc.Exact(),
		QuotaUsed:             t.quota.Exact(),
		Leases:                agg.leases,
		BufferedEnqueues:      agg.bufferedEnqueues,
		PrefetchedDequeues:    agg.prefetchedDequeues,
		BufferedCounterOps:    agg.bufferedCounterOps,
		BufferedCounterWeight: agg.bufferedCounterWeight,
	})
}
