package dlzd

// Durability rung (DESIGN.md §12): an optional write-ahead journal plus
// point-in-time snapshots behind Config.Durability. Default off — with the
// field nil every hook in this file is a nil check and the daemon is
// byte-for-byte the in-memory daemon.
//
// The protocol: every acknowledged mutating request appends one record
// describing the operations it APPLIED before its 200 is written (append
// failure turns the ack into a 500; the defer'd append on error/panic exits
// keeps the journal a superset of applied-but-unacknowledged work, exactly
// mirroring the defer-committed ledger counters). The snapshotter quiesces
// each tenant behind its ops gate, flushes every lease (including returning
// prefetched elements), captures queue contents / counter values / ledger
// counters, reads the cut LSN, and releases the gates before touching disk —
// records appended during the disk write have LSN > cut and replay on top.
// Recovery is Open → Rebuild → restoreTenant, and only then does the server
// flip ready.

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/wal"
)

// Durability configures the optional WAL rung; nil (the default) disables
// it entirely.
type Durability struct {
	// Dir is the journal directory (required).
	Dir string
	// Fsync is the fsync policy for acknowledged records (default never:
	// records still survive process SIGKILL once written; interval/always
	// buy machine-crash durability).
	Fsync wal.FsyncPolicy
	// FsyncInterval is the interval-policy flusher period (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rolls journal segments at this size (default 4MiB).
	SegmentBytes int64
	// SnapshotBytes triggers a janitor-driven snapshot once the journal has
	// grown this much since the last one (default 64MiB; negative disables
	// auto-snapshotting — snapshots then happen only at Close).
	SnapshotBytes int64
}

// RecoveryStats summarizes one Recover call for logging and tests.
type RecoveryStats struct {
	// Records is the number of journal records replayed on top of the
	// snapshot (zero after a clean shutdown).
	Records int
	// Tenants is the number of tenant namespaces restored.
	Tenants int
	// SnapshotCut is the cut LSN of the snapshot recovery started from
	// (0 when no snapshot existed).
	SnapshotCut uint64
	// Head is the last valid LSN on disk.
	Head uint64
	// TornBytes counts bytes truncated off a torn segment tail.
	TornBytes int64
	// Duration is the wall time of recovery including state restoration.
	Duration time.Duration
}

// log returns the journal, nil when durability is off or recovery has not
// run yet. An atomic pointer because /metrics can race Recover.
func (s *Server) log() *wal.Log { return s.walPtr.Load() }

// Recover opens the journal, replays the durable state into fresh tenant
// namespaces, and flips the server ready. It must be called exactly once,
// before traffic, on a server configured with Durability; without
// Durability it is a ready-flipping no-op so callers can invoke it
// unconditionally. Sessions are not recovered — leases are connection
// state, and every element they buffered was journaled (and is replayed)
// as applied operations.
func (s *Server) Recover() (*RecoveryStats, error) {
	d := s.cfg.Durability
	if d == nil {
		s.ready.Store(true)
		return &RecoveryStats{}, nil
	}
	start := time.Now()
	l, rec, err := wal.Open(wal.Options{
		Dir:          d.Dir,
		Policy:       d.Fsync,
		Interval:     d.FsyncInterval,
		SegmentBytes: d.SegmentBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("dlzd: journal open: %w", err)
	}
	states := wal.Rebuild(rec.Snapshot, rec.Records)
	if len(states) > s.cfg.MaxTenants {
		_ = l.Close()
		return nil, fmt.Errorf("dlzd: journal holds %d tenants, MaxTenants is %d", len(states), s.cfg.MaxTenants)
	}
	for _, st := range states {
		if err := s.restoreTenant(st); err != nil {
			_ = l.Close()
			return nil, err
		}
	}
	stats := &RecoveryStats{
		Records:     len(rec.Records),
		Tenants:     len(states),
		SnapshotCut: rec.SnapshotCut,
		Head:        rec.Head,
		TornBytes:   rec.TornBytes,
		Duration:    time.Since(start),
	}
	s.recoveryRecords.Store(uint64(stats.Records))
	s.recoveryNanos.Store(int64(stats.Duration))
	s.walPtr.Store(l)
	s.ready.Store(true)
	return stats, nil
}

// restoreTenant materializes one rebuilt tenant state through the normal
// structure paths: resize to the journaled m, bulk re-enqueue through a
// throwaway handle (the same batched AddBatch path the wire rides), seed
// the counter and quota meters, and store the ledger counters directly.
func (s *Server) restoreTenant(st wal.TenantState) error {
	t, ok := s.tenant(st.Name)
	if !ok {
		return fmt.Errorf("dlzd: tenant %q refused during recovery", st.Name)
	}
	if st.M > 0 {
		m := t.mq.Resize(st.M)
		t.mc.Resize(m)
	}
	if len(st.Items) > 0 {
		h := t.mq.NewHandle(s.nextSeed())
		for _, it := range st.Items {
			h.EnqueuePriority(it.Priority, it.Value)
		}
		h.Close()
	}
	if st.CounterSum > 0 {
		ch := t.mc.NewHandle(s.nextSeed())
		ch.Add(st.CounterSum)
		ch.Close()
	}
	if st.OpsMetered > 0 {
		qh := t.quota.NewHandle(s.nextSeed())
		qh.Add(st.OpsMetered)
		qh.Close()
	}
	t.opsEnqueued.Store(st.OpsEnqueued)
	t.opsDequeued.Store(st.OpsDequeued)
	t.opsCounterAdds.Store(st.OpsCounterAdds)
	t.counterDeltaSum.Store(st.CounterDeltaSum)
	t.opsMetered.Store(st.OpsMetered)
	return nil
}

// journal appends one record, counting failures for /metrics. The caller
// decides whether a failure poisons the ack (mutating handlers answer 500)
// or is advisory.
func (s *Server) journal(rec *wal.Record) error {
	l := s.log()
	if l == nil {
		return nil
	}
	if _, err := l.Append(rec); err != nil {
		s.walAppendErrors.Add(1)
		return err
	}
	return nil
}

// wireToWalItems converts an applied prefix of wire items to journal items.
func wireToWalItems(items []WireItem, n int) []wal.Item {
	out := make([]wal.Item, n)
	for i := 0; i < n; i++ {
		out[i] = wal.Item{Priority: items[i].Priority, Value: items[i].Value}
	}
	return out
}

// Snapshot captures every tenant at one consistent cut and persists it,
// truncating journal segments the snapshot covers. Safe to call any time;
// a no-op without durability. The janitor calls it on the SnapshotBytes
// trigger and Close writes a final one.
func (s *Server) Snapshot() error {
	if s.log() == nil {
		return nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	snap := s.captureSnapshot()
	if err := s.log().WriteSnapshot(snap); err != nil {
		return err
	}
	s.snapshotsTaken.Add(1)
	return nil
}

// captureSnapshot quiesces and captures all tenants, returning a snapshot
// whose cut LSN covers everything captured. Gates are released before the
// caller writes to disk: every mutator admitted after release journals with
// LSN > cut, so the disk write needs no exclusion.
func (s *Server) captureSnapshot() *wal.Snapshot {
	// sweepMu excludes the idle-expiry sweep: a lease the sweep has
	// delinked but not yet closed is invisible to the flush pass below, and
	// its close would publish buffered elements mid-capture.
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	// Hold s.mu (read) for the whole capture so no tenant is created
	// between gate acquisition and the cut.
	s.mu.RLock()
	defer s.mu.RUnlock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	// Take every ops gate: journaled handlers (and their panic repair) are
	// all behind RLocks, so after this loop the tenant states are frozen.
	for _, t := range tenants {
		t.ops.Lock()
	}
	defer func() {
		for _, t := range tenants {
			t.ops.Unlock()
		}
	}()

	snap := &wal.Snapshot{}
	for _, t := range tenants {
		// Quiesce the leases: publish buffered inserts and increments, and
		// return unconsumed prefetched elements so the capture sees them.
		t.mu.Lock()
		live := make([]*lease, 0, len(t.leases))
		for _, l := range t.leases {
			live = append(live, l)
		}
		t.mu.Unlock()
		for _, l := range live {
			l.mu.Lock()
			if !l.closed {
				l.mqh.Flush()
				l.mqh.ReturnPrefetched()
				l.ch.Flush()
			}
			l.mu.Unlock()
		}
		items := t.mq.SnapshotElements(nil)
		st := wal.TenantState{
			Name:            t.name,
			M:               t.mq.M(),
			Items:           make([]wal.Item, len(items)),
			CounterSum:      t.mc.Exact(),
			OpsEnqueued:     t.opsEnqueued.Load(),
			OpsDequeued:     t.opsDequeued.Load(),
			OpsCounterAdds:  t.opsCounterAdds.Load(),
			CounterDeltaSum: t.counterDeltaSum.Load(),
			OpsMetered:      t.opsMetered.Load(),
		}
		for i, it := range items {
			st.Items[i] = wal.Item{Priority: it.Priority, Value: it.Value}
		}
		st.SortItems()
		snap.Tenants = append(snap.Tenants, st)
	}
	if l := s.log(); l != nil {
		snap.CutLSN = l.Head()
	}
	return snap
}

// serveReadyz answers GET /readyz: 200 only when recovery has completed
// and the server is not draining. Liveness stays on /healthz, which is 200
// for the whole process lifetime — the split lets an orchestrator stop
// routing traffic during replay and drain without restarting the process.
func (s *Server) serveReadyz(w http.ResponseWriter) {
	switch {
	case s.closed.Load():
		writeError(w, http.StatusServiceUnavailable, "draining")
	case !s.ready.Load():
		writeError(w, http.StatusServiceUnavailable, "recovering: journal replay in progress")
	default:
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ready":true}`)
	}
}
