package dlzd

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/dlz"
	"repro/internal/fail"
)

// quotaShards is m for the per-tenant quota MultiCounter. Quota metering is
// deliberately served by the structure under test — the "quotas metered by
// MultiCounters themselves" requirement — but with a small m and per-op
// publishing so Exact scans stay cheap and enforcement is deterministic at
// request boundaries.
const quotaShards = 8

// tenant is one namespace: a MultiQueue plus a MultiCounter, the session
// leases bound to them, and the tenant-scoped accounting /metrics exports.
type tenant struct {
	name string
	srv  *Server
	mq   *dlz.MultiQueue
	mc   *dlz.MultiCounter
	// quota meters admitted operations for this tenant. Every admitted wire
	// operation adds its op count through the lease's per-op quota handle,
	// and admission checks Exact against Config.QuotaOps.
	quota *dlz.MultiCounter

	mu     sync.Mutex // guards leases
	leases map[string]*lease

	// ops is the durability gate (DESIGN.md §12): journaled handlers hold
	// it shared for their whole request, the snapshotter takes it exclusive,
	// freezing the tenant so a capture sits at one consistent cut LSN.
	// Untouched when durability is off.
	ops sync.RWMutex

	// inflight is the backpressure gauge: requests currently inside this
	// tenant's handlers. Bounded by Config.MaxInFlight.
	inflight atomic.Int64

	// Monotonic tenant counters for /metrics.
	retiredRerolls  atomic.Uint64 // sampler rerolls harvested from closed leases
	leasesOpened    atomic.Uint64
	leasesExpired   atomic.Uint64
	rejectedInflite atomic.Uint64
	rejectedQuota   atomic.Uint64
	opsEnqueued     atomic.Uint64
	opsDequeued     atomic.Uint64
	opsCounterAdds  atomic.Uint64
	// counterDeltaSum is the total weight applied through counter/add-batch
	// (defer-committed per request), the value CounterExact must equal at
	// quiescence; opsMetered is the total operation count charged against the
	// quota meter, the value QuotaUsed must equal at quiescence.
	counterDeltaSum atomic.Uint64
	opsMetered      atomic.Uint64
	// Degradation-ladder counters (DESIGN.md §10).
	rejectedBusy    atomic.Uint64 // 503: session lease not lockable in time
	rejectedShed    atomic.Uint64 // 429: adaptive load shedding
	deadlineAborts  atomic.Uint64 // request deadlines hit inside handlers
	panicsRecovered atomic.Uint64 // handler panics absorbed by the envelope
	repairFailures  atomic.Uint64 // lease retirements that exhausted the ladder

	// Adaptive shed state: an EWMA of mutating-request latency (microseconds)
	// drives a level in 0..3; at level L, L out of every 4 mutating requests
	// are shed. All four words are advisory — racy updates only make the
	// ladder react a request early or late, never corrupt state.
	latEWMA   atomic.Uint64
	shedLevel atomic.Int32
	shedShift atomic.Int64 // unix-nano of the last level change
	shedSeq   atomic.Uint64
}

// lease binds one session token to a handle pair (queue + counter) plus the
// quota-metering handle. The lease's mutex serializes requests carrying the
// same token, honoring the handles' one-goroutine-at-a-time contract while
// letting the sticky/affine sampler state survive across requests.
type lease struct {
	t     *tenant
	token string

	mu     sync.Mutex
	mqh    *dlz.MQHandle
	ch     *dlz.Handle
	qh     *dlz.Handle // quota handle: per-op publish on the quota counter
	closed bool

	// lastUsed is the unix-nano stamp of the last completed request, read
	// by the idle-expiry sweep without taking the lease lock.
	lastUsed atomic.Int64
}

func newTenant(name string, srv *Server) *tenant {
	cfg := srv.cfg
	// The queue owns the AutoScale controller (it has the contention
	// signal); the counter gets the same [MinQueues, MaxQueues] range but no
	// controller of its own — autoScaleTick keeps its shard count tracking
	// the queue's, so the paired structures always agree on m.
	qTopo := dlz.Topology{
		InitialM:  cfg.Queues,
		MinM:      cfg.MinQueues,
		MaxM:      cfg.MaxQueues,
		AutoScale: cfg.AutoScale,
	}
	cTopo := qTopo
	cTopo.AutoScale = nil
	return &tenant{
		name: name,
		srv:  srv,
		mq: dlz.NewMultiQueue(dlz.MultiQueueConfig{
			Topology:   qTopo,
			Backing:    cfg.Backing,
			Capacity:   cfg.Capacity,
			Seed:       srv.nextSeed(),
			Choices:    cfg.Choices,
			Stickiness: cfg.Stickiness,
			Batch:      cfg.Batch,
			Affinity:   cfg.Affinity,
		}),
		mc: dlz.NewMultiCounterConfig(dlz.MultiCounterConfig{
			Topology:   cTopo,
			Choices:    cfg.Choices,
			Stickiness: cfg.Stickiness,
			Batch:      cfg.Batch,
			Affinity:   cfg.Affinity,
		}),
		quota:  dlz.NewMultiCounter(quotaShards),
		leases: map[string]*lease{},
	}
}

// autoScaleTick advances the tenant queue's contention-driven controller one
// tick and, when it resized, moves the counter's shard count to match.
func (t *tenant) autoScaleTick() bool {
	m, resized := t.mq.AutoScaleTick()
	if resized {
		t.mc.Resize(m)
	}
	return resized
}

// lease returns the live lease for token, creating one on first use. The
// returned lease is locked; serveTenantOp's recovery envelope releases it
// with l.done (normal return) or t.repair (panic). A lease that lost a race
// with the expiry sweep is closed by the time its lock is acquired; the
// lookup retries so the caller always gets a live one.
//
// The lock wait is bounded by ctx: when the context carries a deadline
// (Config.RequestTimeout) and the token's current holder does not release in
// time — stalled, descheduled, or serving a long drain — ok is false and the
// caller answers 503 busy instead of joining an unbounded convoy on one
// session token.
func (t *tenant) lease(ctx context.Context, token string) (*lease, bool) {
	for {
		t.mu.Lock()
		l, ok := t.leases[token]
		if !ok {
			l = &lease{
				t:     t,
				token: token,
				mqh:   t.mq.NewHandle(t.srv.nextSeed()),
				ch:    t.mc.NewHandle(t.srv.nextSeed()),
				qh:    t.quota.NewHandle(t.srv.nextSeed()),
			}
			l.lastUsed.Store(time.Now().UnixNano())
			t.leases[token] = l
			t.leasesOpened.Add(1)
		}
		t.mu.Unlock()
		if !l.lockWithin(ctx) {
			return nil, false
		}
		if !l.closed {
			return l, true
		}
		l.mu.Unlock()
	}
}

// lockWithin acquires the lease lock, giving up when ctx expires first. A
// context without a deadline blocks unconditionally (the pre-hardening
// behavior, and the cheap path: no timers, one Lock).
func (l *lease) lockWithin(ctx context.Context) bool {
	if ctx.Done() == nil {
		l.mu.Lock()
		return true
	}
	for {
		if l.mu.TryLock() {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// done releases a lease taken with tenant.lease, stamping it as just used.
func (l *lease) done() {
	l.lastUsed.Store(time.Now().UnixNano())
	l.mu.Unlock()
}

// closeLocked flushes and retires the lease's handles; callers must hold
// l.mu and have already delinked the lease from the tenant map. The handle
// Close contract does the heavy lifting: buffered inserts and increments are
// published and unconsumed prefetched elements are returned to the shared
// queue, so an abandoned session loses nothing.
//
// Retirement runs as a ladder of retireAttempts tries, each absorbing an
// injected fault and retrying: the core Flush failpoint fires before any
// element publishes and handle Close is a no-op once complete, so a retry
// after an injected panic resumes with all buffered state intact and any
// Count-bounded fault schedule converges well inside the ladder. Reports
// whether the handles retired cleanly; on exhaustion the lease is still
// marked closed (so lookups stop handing it out) and the failure is counted
// in repairFailures.
func (l *lease) closeLocked() bool {
	if l.closed {
		return true
	}
	l.t.retiredRerolls.Add(l.mqh.Rerolls())
	ok := false
	for i := 0; i < retireAttempts; i++ {
		if l.tryRetire() {
			ok = true
			break
		}
	}
	if !ok {
		l.t.repairFailures.Add(1)
	}
	l.closed = true
	return ok
}

// retireAttempts bounds the lease retirement ladder. Chaos schedules arm
// their close-path fault policies with Count well below this, so the ladder
// converges deterministically; a genuine panic is re-raised on first touch.
const retireAttempts = 8

// tryRetire makes one retirement attempt: pass the dlzd/lease/close
// failpoint, then close the three handles. Injected errors report a failed
// attempt; injected panics are absorbed into the same outcome; genuine
// panics propagate.
func (l *lease) tryRetire() (ok bool) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, injected := fail.IsInjectedPanic(rec); !injected {
				panic(rec)
			}
			ok = false
		}
	}()
	if fail.Enabled {
		if err := fail.Inject(fail.SiteDlzdLeaseClose); err != nil {
			return false
		}
	}
	l.mqh.Close()
	l.ch.Close()
	l.qh.Close()
	return true
}

// tryFlush attempts to publish the lease's buffered operations without
// retiring it, absorbing an injected fault; callers must hold l.mu. The
// cheap half of repair's flush-or-close.
func (l *lease) tryFlush() (ok bool) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, injected := fail.IsInjectedPanic(rec); !injected {
				panic(rec)
			}
			ok = false
		}
	}()
	l.mqh.Flush()
	l.ch.Flush()
	return true
}

// repair restores a lease after its handler panicked, with l.mu still held
// by the faulted request: flush the buffered operations so nothing the
// server already counted as applied is stranded in handle buffers, or — if
// the handles themselves keep faulting — delink and retire the lease through
// the close ladder. Either way l.mu is released and the token is immediately
// serviceable again (same lease if flushed, a fresh one if retired).
func (t *tenant) repair(l *lease) {
	defer l.done()
	if l.closed {
		return
	}
	if l.tryFlush() {
		return
	}
	t.mu.Lock()
	if t.leases[l.token] == l {
		delete(t.leases, l.token)
	}
	t.mu.Unlock()
	l.closeLocked()
}

// closeSession closes the lease for token, reporting whether a live lease
// was found. The explicit-disconnect half of the lease lifecycle.
func (t *tenant) closeSession(token string) bool {
	t.mu.Lock()
	l, ok := t.leases[token]
	if ok {
		delete(t.leases, token)
	}
	t.mu.Unlock()
	if !ok {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock() // deferred so even a genuine close-path panic cannot strand l.mu
	l.closeLocked()
	return true
}

// expireIdle closes every lease whose last use is before cutoff, returning
// the number expired. Leases are delinked under the tenant lock first, then
// closed under their own locks, so a request racing the sweep either
// finishes before the close (its elements flush with the lease) or retries
// its lookup and gets a fresh lease.
func (t *tenant) expireIdle(cutoff time.Time) int {
	var stale []*lease
	t.mu.Lock()
	for token, l := range t.leases {
		if l.lastUsed.Load() < cutoff.UnixNano() {
			delete(t.leases, token)
			stale = append(stale, l)
		}
	}
	t.mu.Unlock()
	for _, l := range stale {
		if fail.Enabled {
			// Between delink and close: a delay here widens the window in
			// which a request that looked the lease up before the delink
			// races the retirement (the lookup-retry path under test).
			_ = fail.Inject(fail.SiteDlzdJanitor)
		}
		func() {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.closeLocked()
		}()
	}
	t.leasesExpired.Add(uint64(len(stale)))
	return len(stale)
}

// acquire admits one request under the tenant's in-flight budget, reporting
// false (and counting the rejection) on overflow. Release with release.
func (t *tenant) acquire() bool {
	max := t.srv.cfg.MaxInFlight
	if max <= 0 {
		t.inflight.Add(1)
		return true
	}
	if t.inflight.Add(1) > int64(max) {
		t.inflight.Add(-1)
		t.rejectedInflite.Add(1)
		return false
	}
	return true
}

func (t *tenant) release() { t.inflight.Add(-1) }

// admitQuota checks the tenant's metered quota before an n-operation
// request and meters the operations through the lease's quota handle on
// admission. Enforcement reads the quota MultiCounter's exact sum — m is
// small and the handle publishes per op, so the meter is deterministic at
// request boundaries even though the structure itself is relaxed.
func (t *tenant) admitQuota(l *lease, n int) bool {
	limit := t.srv.cfg.QuotaOps
	if limit > 0 && t.quota.Exact() >= limit {
		t.rejectedQuota.Add(1)
		return false
	}
	l.qh.Add(uint64(n))
	t.opsMetered.Add(uint64(n))
	return true
}

// liveLeaseStats sums the handle-local buffers and sampler rerolls across
// live leases, briefly taking each lease lock (the same order the request
// path uses, so no deadlock). Used by /stats and /metrics.
type leaseAggregate struct {
	leases                int
	bufferedEnqueues      int
	prefetchedDequeues    int
	bufferedCounterOps    int
	bufferedCounterWeight uint64
	rerolls               uint64
}

// shed is the adaptive-admission decision for one mutating request: at shed
// level L (0..3), L out of every 4 are rejected, and the Retry-After hint
// doubles with each level (1s, 2s, 4s) so shed traffic spreads out instead
// of hammering a tenant that is already past its latency target. Level 0 —
// the permanent state when Config.ShedTarget is unset — costs one atomic
// load.
func (t *tenant) shed() (retryAfterSeconds int, shed bool) {
	lvl := t.shedLevel.Load()
	if lvl <= 0 {
		return 0, false
	}
	if t.shedSeq.Add(1)%4 < uint64(lvl) {
		t.rejectedShed.Add(1)
		return 1 << (lvl - 1), true
	}
	return 0, false
}

// observeLatency feeds one mutating request's wall time into the shed
// EWMA (α = 1/8) and moves the shed level: up one step while the EWMA
// exceeds ShedTarget, down one step once it falls below half the target,
// never more often than ShedHold. The CAS on shedShift makes concurrent
// observers agree on at most one step per dwell; everything else tolerates
// racy updates (a lost EWMA store skews the estimate by one sample).
func (t *tenant) observeLatency(d time.Duration) {
	target := t.srv.cfg.ShedTarget
	if target <= 0 {
		return
	}
	us := uint64(d.Microseconds())
	if us == 0 {
		us = 1
	}
	old := t.latEWMA.Load()
	ewma := us
	if old != 0 {
		ewma = old - old/8 + us/8
	}
	t.latEWMA.Store(ewma)

	now := time.Now().UnixNano()
	last := t.shedShift.Load()
	if now-last < int64(t.srv.cfg.ShedHold) {
		return
	}
	lvl := t.shedLevel.Load()
	tgt := uint64(target.Microseconds())
	switch {
	case ewma > tgt && lvl < 3:
		if t.shedShift.CompareAndSwap(last, now) {
			t.shedLevel.Store(lvl + 1)
		}
	case ewma < tgt/2 && lvl > 0:
		if t.shedShift.CompareAndSwap(last, now) {
			t.shedLevel.Store(lvl - 1)
		}
	}
}

func (t *tenant) liveLeaseStats() leaseAggregate {
	t.mu.Lock()
	live := make([]*lease, 0, len(t.leases))
	for _, l := range t.leases {
		live = append(live, l)
	}
	t.mu.Unlock()
	agg := leaseAggregate{leases: len(live)}
	for _, l := range live {
		l.mu.Lock()
		if !l.closed {
			agg.bufferedEnqueues += l.mqh.Buffered()
			agg.prefetchedDequeues += l.mqh.Prefetched()
			agg.bufferedCounterOps += l.ch.Buffered()
			agg.bufferedCounterWeight += l.ch.BufferedWeight()
			agg.rerolls += l.mqh.Rerolls()
		}
		l.mu.Unlock()
	}
	return agg
}
