package dlzd

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/dlz"
)

// quotaShards is m for the per-tenant quota MultiCounter. Quota metering is
// deliberately served by the structure under test — the "quotas metered by
// MultiCounters themselves" requirement — but with a small m and per-op
// publishing so Exact scans stay cheap and enforcement is deterministic at
// request boundaries.
const quotaShards = 8

// tenant is one namespace: a MultiQueue plus a MultiCounter, the session
// leases bound to them, and the tenant-scoped accounting /metrics exports.
type tenant struct {
	name string
	srv  *Server
	mq   *dlz.MultiQueue
	mc   *dlz.MultiCounter
	// quota meters admitted operations for this tenant. Every admitted wire
	// operation adds its op count through the lease's per-op quota handle,
	// and admission checks Exact against Config.QuotaOps.
	quota *dlz.MultiCounter

	mu     sync.Mutex // guards leases
	leases map[string]*lease

	// inflight is the backpressure gauge: requests currently inside this
	// tenant's handlers. Bounded by Config.MaxInFlight.
	inflight atomic.Int64

	// Monotonic tenant counters for /metrics.
	retiredRerolls  atomic.Uint64 // sampler rerolls harvested from closed leases
	leasesOpened    atomic.Uint64
	leasesExpired   atomic.Uint64
	rejectedInflite atomic.Uint64
	rejectedQuota   atomic.Uint64
	opsEnqueued     atomic.Uint64
	opsDequeued     atomic.Uint64
	opsCounterAdds  atomic.Uint64
}

// lease binds one session token to a handle pair (queue + counter) plus the
// quota-metering handle. The lease's mutex serializes requests carrying the
// same token, honoring the handles' one-goroutine-at-a-time contract while
// letting the sticky/affine sampler state survive across requests.
type lease struct {
	t     *tenant
	token string

	mu     sync.Mutex
	mqh    *dlz.MQHandle
	ch     *dlz.Handle
	qh     *dlz.Handle // quota handle: per-op publish on the quota counter
	closed bool

	// lastUsed is the unix-nano stamp of the last completed request, read
	// by the idle-expiry sweep without taking the lease lock.
	lastUsed atomic.Int64
}

func newTenant(name string, srv *Server) *tenant {
	cfg := srv.cfg
	return &tenant{
		name: name,
		srv:  srv,
		mq: dlz.NewMultiQueue(dlz.MultiQueueConfig{
			Queues:     cfg.Queues,
			Backing:    cfg.Backing,
			Capacity:   cfg.Capacity,
			Seed:       srv.nextSeed(),
			Choices:    cfg.Choices,
			Stickiness: cfg.Stickiness,
			Batch:      cfg.Batch,
			Affinity:   cfg.Affinity,
		}),
		mc: dlz.NewMultiCounterConfig(dlz.MultiCounterConfig{
			Counters:   cfg.Queues,
			Choices:    cfg.Choices,
			Stickiness: cfg.Stickiness,
			Batch:      cfg.Batch,
			Affinity:   cfg.Affinity,
		}),
		quota:  dlz.NewMultiCounter(quotaShards),
		leases: map[string]*lease{},
	}
}

// lease returns the live lease for token, creating one on first use. The
// returned lease is locked; the caller must release it with l.done (which
// also refreshes the idle stamp). A lease that lost a race with the expiry
// sweep is closed by the time its lock is acquired; the lookup retries so
// the caller always gets a live one.
func (t *tenant) lease(token string) *lease {
	for {
		t.mu.Lock()
		l, ok := t.leases[token]
		if !ok {
			l = &lease{
				t:     t,
				token: token,
				mqh:   t.mq.NewHandle(t.srv.nextSeed()),
				ch:    t.mc.NewHandle(t.srv.nextSeed()),
				qh:    t.quota.NewHandle(t.srv.nextSeed()),
			}
			l.lastUsed.Store(time.Now().UnixNano())
			t.leases[token] = l
			t.leasesOpened.Add(1)
		}
		t.mu.Unlock()
		l.mu.Lock()
		if !l.closed {
			return l
		}
		l.mu.Unlock()
	}
}

// done releases a lease taken with tenant.lease, stamping it as just used.
func (l *lease) done() {
	l.lastUsed.Store(time.Now().UnixNano())
	l.mu.Unlock()
}

// closeLocked flushes and retires the lease's handles; callers must hold
// l.mu and have already delinked the lease from the tenant map. The handle
// Close contract does the heavy lifting: buffered inserts and increments are
// published and unconsumed prefetched elements are returned to the shared
// queue, so an abandoned session loses nothing.
func (l *lease) closeLocked() {
	if l.closed {
		return
	}
	l.t.retiredRerolls.Add(l.mqh.Rerolls())
	l.mqh.Close()
	l.ch.Close()
	l.qh.Close()
	l.closed = true
}

// closeSession closes the lease for token, reporting whether a live lease
// was found. The explicit-disconnect half of the lease lifecycle.
func (t *tenant) closeSession(token string) bool {
	t.mu.Lock()
	l, ok := t.leases[token]
	if ok {
		delete(t.leases, token)
	}
	t.mu.Unlock()
	if !ok {
		return false
	}
	l.mu.Lock()
	l.closeLocked()
	l.mu.Unlock()
	return true
}

// expireIdle closes every lease whose last use is before cutoff, returning
// the number expired. Leases are delinked under the tenant lock first, then
// closed under their own locks, so a request racing the sweep either
// finishes before the close (its elements flush with the lease) or retries
// its lookup and gets a fresh lease.
func (t *tenant) expireIdle(cutoff time.Time) int {
	var stale []*lease
	t.mu.Lock()
	for token, l := range t.leases {
		if l.lastUsed.Load() < cutoff.UnixNano() {
			delete(t.leases, token)
			stale = append(stale, l)
		}
	}
	t.mu.Unlock()
	for _, l := range stale {
		l.mu.Lock()
		l.closeLocked()
		l.mu.Unlock()
	}
	t.leasesExpired.Add(uint64(len(stale)))
	return len(stale)
}

// acquire admits one request under the tenant's in-flight budget, reporting
// false (and counting the rejection) on overflow. Release with release.
func (t *tenant) acquire() bool {
	max := t.srv.cfg.MaxInFlight
	if max <= 0 {
		t.inflight.Add(1)
		return true
	}
	if t.inflight.Add(1) > int64(max) {
		t.inflight.Add(-1)
		t.rejectedInflite.Add(1)
		return false
	}
	return true
}

func (t *tenant) release() { t.inflight.Add(-1) }

// admitQuota checks the tenant's metered quota before an n-operation
// request and meters the operations through the lease's quota handle on
// admission. Enforcement reads the quota MultiCounter's exact sum — m is
// small and the handle publishes per op, so the meter is deterministic at
// request boundaries even though the structure itself is relaxed.
func (t *tenant) admitQuota(l *lease, n int) bool {
	limit := t.srv.cfg.QuotaOps
	if limit > 0 && t.quota.Exact() >= limit {
		t.rejectedQuota.Add(1)
		return false
	}
	l.qh.Add(uint64(n))
	return true
}

// liveLeaseStats sums the handle-local buffers and sampler rerolls across
// live leases, briefly taking each lease lock (the same order the request
// path uses, so no deadlock). Used by /stats and /metrics.
type leaseAggregate struct {
	leases                int
	bufferedEnqueues      int
	prefetchedDequeues    int
	bufferedCounterOps    int
	bufferedCounterWeight uint64
	rerolls               uint64
}

func (t *tenant) liveLeaseStats() leaseAggregate {
	t.mu.Lock()
	live := make([]*lease, 0, len(t.leases))
	for _, l := range t.leases {
		live = append(live, l)
	}
	t.mu.Unlock()
	agg := leaseAggregate{leases: len(live)}
	for _, l := range live {
		l.mu.Lock()
		if !l.closed {
			agg.bufferedEnqueues += l.mqh.Buffered()
			agg.prefetchedDequeues += l.mqh.Prefetched()
			agg.bufferedCounterOps += l.ch.Buffered()
			agg.bufferedCounterWeight += l.ch.BufferedWeight()
			agg.rerolls += l.mqh.Rerolls()
		}
		l.mu.Unlock()
	}
	return agg
}
