package dlzd

import (
	"net/http"
	"strings"
	"testing"

	"repro/dlz"
)

// TestResizeEndpointRoundTrip drives POST /v1/{tenant}/resize through grow,
// clamp and shrink, and checks the audit surfaces agree: ResizeResponse
// reports the clamped count and epoch, /stats mirrors it, elements enqueued
// before the resizes all drain afterwards, and the counter's shard count
// tracks the queue's.
func TestResizeEndpointRoundTrip(t *testing.T) {
	_, c := newTestClient(t, Config{Queues: 4, MinQueues: 2, MaxQueues: 16, Seed: 9})

	items := wireItems(5, 3, 9, 1, 7, 2, 8, 4, 6, 10)
	var enq EnqueueBatchResponse
	if code := c.post("/v1/acme/enqueue-batch", EnqueueBatchRequest{Session: "s1", Items: items}, &enq); code != http.StatusOK {
		t.Fatalf("enqueue = %d", code)
	}

	var rz ResizeResponse
	if code := c.post("/v1/acme/resize", ResizeRequest{M: 16}, &rz); code != http.StatusOK {
		t.Fatalf("resize = %d", code)
	}
	if rz.M != 16 || rz.Epoch != 1 || rz.Resizes != 1 {
		t.Fatalf("grow response = %+v, want M 16, Epoch 1, Resizes 1", rz)
	}
	// Out-of-range requests clamp — a clamped resize is a success, and
	// landing on the current count burns no epoch.
	if code := c.post("/v1/acme/resize", ResizeRequest{M: 64}, &rz); code != http.StatusOK {
		t.Fatalf("clamped resize = %d", code)
	}
	if rz.M != 16 || rz.Resizes != 1 {
		t.Fatalf("clamp response = %+v, want M 16, Resizes still 1", rz)
	}
	if code := c.post("/v1/acme/resize", ResizeRequest{M: 1}, &rz); code != http.StatusOK {
		t.Fatalf("shrink = %d", code)
	}
	if rz.M != 2 || rz.Resizes != 2 {
		t.Fatalf("shrink response = %+v, want clamp to MinQueues 2, Resizes 2", rz)
	}

	var st StatsResponse
	if code := c.get("/v1/acme/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if st.CurrentM != 2 || st.Epoch != 2 || st.Resizes != 2 {
		t.Fatalf("stats elasticity = m %d epoch %d resizes %d, want 2/2/2", st.CurrentM, st.Epoch, st.Resizes)
	}
	if st.QueueLen != len(items) {
		t.Fatalf("QueueLen = %d after resizes, want %d — the drain-and-donate hop lost elements", st.QueueLen, len(items))
	}

	// Every element admitted before the resizes drains after them.
	var deq DeleteMinResponse
	got := 0
	for {
		if code := c.post("/v1/acme/delete-min-up-to", DeleteMinRequest{Session: "s1", Max: 16}, &deq); code != http.StatusOK {
			t.Fatalf("delete-min = %d", code)
		}
		if len(deq.Items) == 0 {
			break
		}
		got += len(deq.Items)
	}
	if got != len(items) {
		t.Fatalf("drained %d elements across resize epochs, want %d", got, len(items))
	}
}

// TestResizeEndpointValidation rejects non-positive targets and leaves a
// fixed-topology daemon (no Min/MaxQueues) pinned.
func TestResizeEndpointValidation(t *testing.T) {
	_, c := newTestClient(t, Config{Queues: 4, Seed: 9})
	var rz ResizeResponse
	if code := c.post("/v1/acme/resize", ResizeRequest{M: 0}, &rz); code != http.StatusBadRequest {
		t.Fatalf("resize m=0 = %d, want 400", code)
	}
	if code := c.post("/v1/acme/resize", ResizeRequest{M: 32}, &rz); code != http.StatusOK {
		t.Fatalf("fixed-topology resize = %d", code)
	}
	if rz.M != 4 || rz.Resizes != 0 {
		t.Fatalf("fixed-topology response = %+v, want pinned M 4, Resizes 0", rz)
	}
}

// TestAutoScaleTickShrinksIdleTenants pins the janitor-driven half of the
// elastic API: with Config.AutoScale set, idle tenants (zero contention
// delta between ticks) walk down to MinQueues, each step visible through
// /stats and the /metrics elasticity surfaces.
func TestAutoScaleTickShrinksIdleTenants(t *testing.T) {
	s, c := newTestClient(t, Config{
		Queues: 8, MinQueues: 2, MaxQueues: 32, Seed: 11,
		AutoScale: &dlz.AutoScale{Dwell: 1},
	})

	// Touch two tenants into existence with a little traffic.
	for _, tn := range []string{"acme", "globex"} {
		var enq EnqueueBatchResponse
		if code := c.post("/v1/"+tn+"/enqueue-batch", EnqueueBatchRequest{Session: "s1", Items: wireItems(3, 1, 2)}, &enq); code != http.StatusOK {
			t.Fatalf("enqueue %s = %d", tn, code)
		}
	}

	resized := 0
	for i := 0; i < 12; i++ {
		resized += s.AutoScaleTick()
	}
	if resized < 4 {
		t.Fatalf("idle ticks resized %d tenant-steps, want >= 4 (two tenants, 8 -> 4 -> 2)", resized)
	}
	for _, tn := range []string{"acme", "globex"} {
		var st StatsResponse
		if code := c.get("/v1/"+tn+"/stats", &st); code != http.StatusOK {
			t.Fatalf("stats %s = %d", tn, code)
		}
		if st.CurrentM != 2 {
			t.Fatalf("%s CurrentM = %d after idle ticks, want MinQueues 2", tn, st.CurrentM)
		}
		if st.Resizes < 2 {
			t.Fatalf("%s Resizes = %d, want >= 2", tn, st.Resizes)
		}
		if st.QueueLen != 3 {
			t.Fatalf("%s QueueLen = %d after autoscale shrink, want 3", tn, st.QueueLen)
		}
	}

	body := c.metrics()
	for _, want := range []string{
		"dlzd_queue_current_m",
		"dlzd_resize_epochs_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
}
