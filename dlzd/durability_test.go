package dlzd

import (
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

// newDurableClient builds a server journaling into dir, runs recovery (the
// caller's traffic needs the ready flip), and returns it with a test client.
func newDurableClient(t *testing.T, dir string, cfg Config) (*Server, *testClient) {
	t.Helper()
	if cfg.Durability == nil {
		cfg.Durability = &Durability{Dir: dir}
	}
	s, c := newTestClient(t, cfg)
	if _, err := s.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return s, c
}

// TestDurableRoundTrip is the basic crash-free cycle: traffic, clean Close
// (final snapshot), reboot from the same directory, and the recovered stats
// must match the pre-shutdown ledger exactly — with zero journal records
// replayed, because the shutdown snapshot covered everything.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, c := newDurableClient(t, dir, Config{Queues: 4, Batch: 4, Seed: 7})

	if code := c.post("/v1/a/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(5, 3, 9, 1)}, nil); code != http.StatusOK {
		t.Fatalf("enqueue = %d", code)
	}
	var deq DeleteMinResponse
	if code := c.post("/v1/a/delete-min-up-to", DeleteMinRequest{Session: "s", Max: 2}, &deq); code != http.StatusOK {
		t.Fatalf("delete-min = %d", code)
	}
	if code := c.post("/v1/a/counter/add-batch", CounterAddRequest{Session: "s", Deltas: []uint64{10, 20}}, nil); code != http.StatusOK {
		t.Fatalf("counter = %d", code)
	}
	if code := c.post("/v1/b/enqueue-batch", EnqueueBatchRequest{Session: "s2", Items: wireItems(7)}, nil); code != http.StatusOK {
		t.Fatalf("enqueue b = %d", code)
	}
	s.Close()

	s2 := New(Config{Queues: 4, Batch: 4, Seed: 8, Durability: &Durability{Dir: dir}})
	stats, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover after Close: %v", err)
	}
	defer s2.Close()
	if stats.Records != 0 {
		t.Errorf("clean shutdown must replay zero records, got %d", stats.Records)
	}
	if stats.Tenants != 2 {
		t.Errorf("recovered %d tenants, want 2", stats.Tenants)
	}
	ta, _ := s2.tenant("a")
	if got := ta.mq.Len(); got != 4-len(deq.Items) {
		t.Errorf("tenant a queue = %d, want %d", got, 4-len(deq.Items))
	}
	if got := ta.mc.Exact(); got != 30 {
		t.Errorf("tenant a counter = %d, want 30", got)
	}
	if got := ta.opsEnqueued.Load(); got != 4 {
		t.Errorf("tenant a OpsEnqueued = %d, want 4", got)
	}
	if got := ta.opsDequeued.Load(); got != uint64(len(deq.Items)) {
		t.Errorf("tenant a OpsDequeued = %d, want %d", got, len(deq.Items))
	}
	if got := ta.quota.Exact(); got != ta.opsMetered.Load() {
		t.Errorf("quota meter drifted after recovery: %d vs metered %d", got, ta.opsMetered.Load())
	}
	tb, _ := s2.tenant("b")
	if got := tb.mq.Len(); got != 1 {
		t.Errorf("tenant b queue = %d, want 1", got)
	}
}

// TestCrashRecoveryReplaysJournal abandons the first server without Close —
// the in-process stand-in for SIGKILL: no shutdown snapshot, no segment
// seal — and recovers purely from the journal tail. Everything acknowledged
// must be there, exactly once.
func TestCrashRecoveryReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	_, c := newDurableClient(t, dir, Config{Queues: 4, MinQueues: 1, MaxQueues: 8, Batch: 4, Seed: 7})

	enq, deq := 0, 0
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		switch r.Intn(3) {
		case 0, 1:
			n := 1 + r.Intn(4)
			items := make([]WireItem, n)
			for j := range items {
				items[j] = WireItem{Priority: r.Uint64() % 1000, Value: r.Uint64()}
			}
			if code := c.post("/v1/x/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: items}, nil); code != http.StatusOK {
				t.Fatalf("enqueue = %d", code)
			}
			enq += n
		case 2:
			var resp DeleteMinResponse
			if code := c.post("/v1/x/delete-min-up-to", DeleteMinRequest{Session: "s", Max: 1 + r.Intn(4)}, &resp); code != http.StatusOK {
				t.Fatalf("delete-min = %d", code)
			}
			deq += len(resp.Items)
		}
	}
	if code := c.post("/v1/x/resize", ResizeRequest{M: 2}, nil); code != http.StatusOK {
		t.Fatalf("resize = %d", code)
	}
	// No Close: the wal.Log keeps its segment open, like a killed process.
	// Every acked op was journaled with a synchronous write, so a fresh
	// reader sees all of it.
	s2 := New(Config{Queues: 4, MinQueues: 1, MaxQueues: 8, Batch: 4, Seed: 9, Durability: &Durability{Dir: dir}})
	stats, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover after crash: %v", err)
	}
	defer s2.Close()
	if stats.Records == 0 {
		t.Fatal("crash recovery replayed zero records despite no shutdown snapshot")
	}
	tx, _ := s2.tenant("x")
	if got := tx.mq.Len(); got != enq-deq {
		t.Errorf("recovered queue = %d, want %d (enq %d deq %d)", got, enq-deq, enq, deq)
	}
	if got := tx.opsEnqueued.Load(); got != uint64(enq) {
		t.Errorf("OpsEnqueued = %d, want %d", got, enq)
	}
	if got := tx.mq.M(); got != 2 {
		t.Errorf("resize not recovered: m = %d, want 2", got)
	}
}

// TestRecoveryDeterministic pins the replay function: two independent replays
// of the same journal produce deep-equal state, and a server booted from that
// journal agrees with the offline Replay.
func TestRecoveryDeterministic(t *testing.T) {
	dir := t.TempDir()
	_, c := newDurableClient(t, dir, Config{Queues: 4, Batch: 4, Seed: 7})
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		tn := fmt.Sprintf("/v1/d%d", r.Intn(3))
		switch r.Intn(3) {
		case 0, 1:
			c.post(tn+"/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(uint64(r.Intn(100)), uint64(r.Intn(100)))}, nil)
		case 2:
			c.post(tn+"/delete-min-up-to", DeleteMinRequest{Session: "s", Max: 1 + r.Intn(3)}, nil)
		}
	}
	// Flush lease buffers through the journal by closing the session on
	// every touched tenant, then abandon the server mid-flight (no Close).
	for i := 0; i < 3; i++ {
		c.post(fmt.Sprintf("/v1/d%d/session/close", i), SessionCloseRequest{Session: "s"}, nil)
	}

	one, _, err := wal.Replay(dir)
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	two, _, err := wal.Replay(dir)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if !reflect.DeepEqual(one, two) {
		t.Fatalf("two replays of one journal diverged:\n%+v\n%+v", one, two)
	}
	s2 := New(Config{Queues: 4, Batch: 4, Seed: 21, Durability: &Durability{Dir: dir}})
	if _, err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer s2.Close()
	for _, st := range one {
		tn, ok := s2.tenant(st.Name)
		if !ok {
			t.Fatalf("tenant %q missing after boot", st.Name)
		}
		if got := tn.mq.Len(); got != len(st.Items) {
			t.Errorf("tenant %s: booted queue = %d, offline replay = %d", st.Name, got, len(st.Items))
		}
		if got := tn.mc.Exact(); got != st.CounterSum {
			t.Errorf("tenant %s: booted counter = %d, offline replay = %d", st.Name, got, st.CounterSum)
		}
	}
}

// TestReadyzGating pins the probe split: before Recover a durable server is
// alive (/healthz 200, /metrics 200) but not ready (/readyz 503, /v1 503);
// after Recover everything opens up.
func TestReadyzGating(t *testing.T) {
	s, c := newTestClient(t, Config{Queues: 2, Durability: &Durability{Dir: t.TempDir()}})
	if code := c.get("/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz before Recover = %d, want 200", code)
	}
	if code := c.get("/metrics", nil); code != http.StatusOK {
		t.Errorf("metrics before Recover = %d, want 200", code)
	}
	if code := c.get("/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz before Recover = %d, want 503", code)
	}
	if code := c.post("/v1/t/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(1)}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("v1 before Recover = %d, want 503", code)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if code := c.get("/readyz", nil); code != http.StatusOK {
		t.Errorf("readyz after Recover = %d, want 200", code)
	}
	if code := c.post("/v1/t/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(1)}, nil); code != http.StatusOK {
		t.Errorf("v1 after Recover = %d, want 200", code)
	}
	s.Close()
	if code := c.get("/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after Close = %d, want 503", code)
	}
}

// TestWALMetricsSeries drives a few journaled requests under the always-fsync
// policy and checks every durability series exports with sane values.
func TestWALMetricsSeries(t *testing.T) {
	dir := t.TempDir()
	s, c := newDurableClient(t, dir, Config{Queues: 2,
		Durability: &Durability{Dir: dir, Fsync: wal.FsyncAlways}})
	for i := 0; i < 8; i++ {
		if code := c.post("/v1/m/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(uint64(i))}, nil); code != http.StatusOK {
			t.Fatalf("enqueue = %d", code)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	m := c.metrics()
	mustPos := func(series string) uint64 {
		v, err := strconv.ParseUint(lineValue(t, m, series), 10, 64)
		if err != nil {
			t.Fatalf("series %s: %v", series, err)
		}
		if v == 0 {
			t.Errorf("series %s = 0, want > 0", series)
		}
		return v
	}
	mustPos("dlzd_wal_bytes_total")
	mustPos("dlzd_wal_fsyncs_total")
	mustPos("dlzd_snapshots_total")
	if v := lineValue(t, m, "dlzd_wal_append_errors_total"); v != "0" {
		t.Errorf("append errors = %s, want 0", v)
	}
	// The recovery series exist from boot (zero on a fresh dir).
	if v := lineValue(t, m, "dlzd_recovery_replayed_records"); v != "0" {
		t.Errorf("replayed records on fresh dir = %s, want 0", v)
	}
	if v := lineValue(t, m, "dlzd_recovery_duration_seconds"); v == "" {
		t.Error("recovery duration series missing")
	}

	// Reboot after a crash-style abandon: the replay count goes live.
	s2 := New(Config{Queues: 2, Durability: &Durability{Dir: dir}})
	if _, err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer s2.Close()
}

// TestSnapshotUnderTraffic interleaves snapshots with live wire traffic and
// then recovers from whatever the journal holds, asserting exact conservation
// — the ops-gate quiesce must make every snapshot a consistent cut, with
// records past the cut replaying on top.
func TestSnapshotUnderTraffic(t *testing.T) {
	dir := t.TempDir()
	s, c := newDurableClient(t, dir, Config{Queues: 4, Batch: 8, Seed: 7})

	const workers = 4
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		enq, deq int
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) + 100))
			session := fmt.Sprintf("w%d", w)
			for i := 0; i < 60; i++ {
				if r.Intn(3) < 2 {
					n := 1 + r.Intn(4)
					items := make([]WireItem, n)
					for j := range items {
						items[j] = WireItem{Priority: r.Uint64() % 512, Value: r.Uint64()}
					}
					if code := c.post("/v1/hot/enqueue-batch", EnqueueBatchRequest{Session: session, Items: items}, nil); code == http.StatusOK {
						mu.Lock()
						enq += n
						mu.Unlock()
					}
				} else {
					var resp DeleteMinResponse
					if code := c.post("/v1/hot/delete-min-up-to", DeleteMinRequest{Session: session, Max: 1 + r.Intn(4)}, &resp); code == http.StatusOK {
						mu.Lock()
						deq += len(resp.Items)
						mu.Unlock()
					}
				}
			}
			c.post("/v1/hot/session/close", SessionCloseRequest{Session: session}, nil)
		}(w)
	}
	snapErrs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		time.Sleep(2 * time.Millisecond)
		if err := s.Snapshot(); err != nil {
			snapErrs <- err
		}
	}
	wg.Wait()
	close(snapErrs)
	for err := range snapErrs {
		t.Fatalf("Snapshot under traffic: %v", err)
	}

	// Crash-style abandon, then recover and audit the ledger.
	s2 := New(Config{Queues: 4, Batch: 8, Seed: 31, Durability: &Durability{Dir: dir}})
	if _, err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer s2.Close()
	th, ok := s2.tenant("hot")
	if !ok {
		t.Fatal("tenant hot missing")
	}
	if got, want := th.mq.Len(), enq-deq; got != want {
		t.Errorf("recovered queue = %d, want %d (enq %d deq %d)", got, want, enq, deq)
	}
	if got := th.opsEnqueued.Load(); got != uint64(enq) {
		t.Errorf("OpsEnqueued = %d, want %d", got, enq)
	}
	if got := th.opsDequeued.Load(); got != uint64(deq) {
		t.Errorf("OpsDequeued = %d, want %d", got, deq)
	}
}

// TestJanitorSnapshotTrigger pins the SnapshotBytes rung: once the journal
// outgrows the trigger, a janitor tick writes a snapshot and truncates dead
// segments, and a clean reboot replays only the records past the last cut.
func TestJanitorSnapshotTrigger(t *testing.T) {
	dir := t.TempDir()
	s, c := newDurableClient(t, dir, Config{Queues: 2, Batch: 4, Seed: 7,
		Durability: &Durability{Dir: dir, SegmentBytes: 4 << 10, SnapshotBytes: 8 << 10}})
	stop := s.StartJanitor(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for s.snapshotsTaken.Load() == 0 {
		if code := c.post("/v1/j/enqueue-batch", EnqueueBatchRequest{Session: "s", Items: wireItems(1, 2, 3, 4)}, nil); code != http.StatusOK {
			t.Fatalf("enqueue = %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatalf("janitor never snapshotted: %d wal bytes", s.log().BytesAppended())
		}
	}
}
