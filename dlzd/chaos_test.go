//go:build dlzfail

package dlzd

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/dlz"
	"repro/internal/fail"
)

// chaosSeed seeds both the failpoint schedule (fail.SetSeed) and the chaos
// conductor's round sequence. The CI chaos job runs the fixed default plus a
// randomized seed; any failing seed reproduces its schedule exactly.
var chaosSeed = flag.Int64("chaosseed", 1, "seed for the chaos fault schedule")

// TestChaosSoak drives 4 tenants of live wire traffic while a seeded
// conductor cycles fault regimes over the failpoint layer — injected handler
// panics, critical-section and publication delays, a handler stall, try-path
// refusal storms, close-ladder faults and forced lease expiry sweeps — then
// runs a deterministic coverage pass that provably fires every fault kind,
// quiesces, and asserts exact conservation from the server's defer-committed
// ledger: QueueLen == OpsEnqueued − OpsDequeued, CounterExact ==
// CounterDeltaSum, QuotaUsed == OpsMetered, zero surviving leases, zero
// repair failures. A final stage exercises interior removal under the same
// structural faults and asserts Invalidations == Reclaimed after the drain.
// Run with -race; reproduce a failure with its printed -chaosseed.
func TestChaosSoak(t *testing.T) {
	const (
		tenants          = 4
		workersPerTenant = 2
		itersPerWorker   = 150
	)
	t.Logf("chaos schedule seed %d", *chaosSeed)
	fail.Reset()
	defer fail.Reset()
	fail.SetSeed(uint64(*chaosSeed))

	s := New(Config{
		Queues:         8,
		Batch:          8,
		Stickiness:     16,
		Choices:        2,
		Seed:           42,
		RequestTimeout: 500 * time.Millisecond,
		ShedTarget:     5 * time.Millisecond,
	})
	hs := httptest.NewServer(s)
	defer hs.Close()
	c := &testClient{t: t, srv: hs}

	// Conductor: one fault regime per round while the workers run. Fires are
	// accumulated per kind for the log; coverage is *proven* afterwards by
	// the deterministic pass, so the random phase never flakes on timing.
	var (
		stop        = make(chan struct{})
		conductorWG sync.WaitGroup
		kindFires   = map[string]uint64{} // conductor-goroutine-local until joined
	)
	conductorWG.Add(1)
	go func() {
		defer conductorWG.Done()
		r := rand.New(rand.NewSource(*chaosSeed))
		collect := func(kind string, sites ...string) {
			for _, site := range sites {
				kindFires[kind] += fail.Fires(site)
			}
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch r.Intn(5) {
			case 0: // handler and flush panics (repaired by the envelope)
				fail.Arm(fail.SiteDlzdEnqueueItem, fail.Policy{Kind: fail.KindPanic, After: uint64(r.Intn(16)), Count: 2})
				fail.Arm(fail.SiteCoreFlush, fail.Policy{Kind: fail.KindPanic, Count: 1})
				time.Sleep(15 * time.Millisecond)
				collect("panic", fail.SiteDlzdEnqueueItem, fail.SiteCoreFlush)
			case 1: // critical-section, publication and response delays
				fail.Arm(fail.SitePadLockHold, fail.Policy{Kind: fail.KindDelay, Delay: time.Millisecond, Count: 16})
				fail.Arm(fail.SiteCPQTopPublish, fail.Policy{Kind: fail.KindDelay, Delay: time.Millisecond, Count: 16})
				fail.Arm(fail.SiteDlzdHandlerPost, fail.Policy{Kind: fail.KindDelay, Delay: 8 * time.Millisecond, Count: 4})
				time.Sleep(15 * time.Millisecond)
				collect("delay", fail.SitePadLockHold, fail.SiteCPQTopPublish, fail.SiteDlzdHandlerPost)
			case 2: // stall one admitted request, release at round end
				fail.Arm(fail.SiteDlzdHandlerPre, fail.Policy{Kind: fail.KindStall, Count: 1})
				time.Sleep(15 * time.Millisecond)
				fail.Release(fail.SiteDlzdHandlerPre)
				collect("stall", fail.SiteDlzdHandlerPre)
			case 3: // refusal/reroll storms plus close-ladder faults
				fail.Arm(fail.SiteCPQTryRefuse, fail.Policy{Kind: fail.KindError, Prob: 0.3})
				fail.Arm(fail.SiteCoreReroll, fail.Policy{Kind: fail.KindError, Prob: 0.3})
				fail.Arm(fail.SiteDlzdLeaseClose, fail.Policy{Kind: fail.KindError, Count: 3})
				time.Sleep(15 * time.Millisecond)
				collect("error", fail.SiteCPQTryRefuse, fail.SiteCoreReroll, fail.SiteDlzdLeaseClose)
			case 4: // forced expiry sweep racing live requests
				fail.Arm(fail.SiteDlzdJanitor, fail.Policy{Kind: fail.KindDelay, Delay: 2 * time.Millisecond, Count: 8})
				kindFires["expiry"] += uint64(s.ExpireIdle(time.Now()))
				time.Sleep(5 * time.Millisecond)
				collect("delay", fail.SiteDlzdJanitor)
			}
			fail.Reset()
		}
	}()

	// Workers: live traffic that tolerates every rung of the degradation
	// ladder (429 shed, 503 busy/deadline, 500 injected) — only transport
	// failures and corrupted payloads are errors.
	var wg sync.WaitGroup
	workers := tenants * workersPerTenant
	wg.Add(workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			tenantID := w % tenants
			base := fmt.Sprintf("/v1/chaos%d", tenantID)
			r := rand.New(rand.NewSource(*chaosSeed ^ int64(w)<<32))
			session := fmt.Sprintf("w%d", w)
			for i := 0; i < itersPerWorker; i++ {
				switch r.Intn(6) {
				case 0, 1:
					n := 1 + r.Intn(8)
					items := make([]WireItem, n)
					for j := range items {
						p := r.Uint64()
						items[j] = WireItem{Priority: p, Value: p ^ 0xD1CE}
					}
					c.post(base+"/enqueue-batch", EnqueueBatchRequest{Session: session, Items: items}, nil)
				case 2:
					var deq DeleteMinResponse
					if code := c.post(base+"/delete-min-up-to", DeleteMinRequest{Session: session, Max: 1 + r.Intn(8)}, &deq); code == http.StatusOK {
						for _, it := range deq.Items {
							if it.Value != it.Priority^0xD1CE {
								select {
								case errs <- fmt.Errorf("worker %d: corrupted element %+v", w, it):
								default:
								}
								return
							}
						}
					}
				case 3:
					n := 1 + r.Intn(4)
					deltas := make([]uint64, n)
					for j := range deltas {
						deltas[j] = uint64(1 + r.Intn(100))
					}
					c.post(base+"/counter/add-batch", CounterAddRequest{Session: session, Deltas: deltas}, nil)
				case 4:
					c.get(base+"/counter/read?session="+session, nil)
				case 5:
					if r.Intn(8) == 0 {
						c.post(base+"/session/close", SessionCloseRequest{Session: session}, nil)
					} else {
						c.get(base+"/stats", nil)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	conductorWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	t.Logf("random phase fires: %v", kindFires)

	// Deterministic coverage pass: fire every fault kind at least once with
	// targeted requests, independent of how the random phase was scheduled.
	coverageFires := chaosCoveragePass(t, c)

	// Quiesce: no armed faults, every lease reaped through the close ladder.
	fail.Reset()
	expired := s.ExpireIdle(time.Now().Add(time.Hour))
	kindFires["expiry"] += uint64(expired)
	if kindFires["expiry"] == 0 {
		t.Error("no lease was ever force-expired — the forced-expiry fault kind lost coverage")
	}
	for kind, n := range coverageFires {
		if n == 0 {
			t.Errorf("fault kind %q did not fire in the deterministic coverage pass", kind)
		}
	}

	var totalPanics uint64
	for i := 0; i < tenants; i++ {
		var st StatsResponse
		if code := c.get(fmt.Sprintf("/v1/chaos%d/stats", i), &st); code != http.StatusOK {
			t.Fatalf("tenant %d stats = %d", i, code)
		}
		if st.Leases != 0 {
			t.Errorf("tenant %d: %d leases survived the sweep", i, st.Leases)
		}
		if st.RepairFailures != 0 {
			t.Errorf("tenant %d: %d lease retirements exhausted the repair ladder", i, st.RepairFailures)
		}
		if int64(st.QueueLen) != int64(st.OpsEnqueued)-int64(st.OpsDequeued) {
			t.Errorf("tenant %d: queue conservation violated: Len=%d, applied enq-deq=%d-%d",
				i, st.QueueLen, st.OpsEnqueued, st.OpsDequeued)
		}
		if st.CounterExact != st.CounterDeltaSum {
			t.Errorf("tenant %d: counter conservation violated: Exact=%d, applied delta sum=%d",
				i, st.CounterExact, st.CounterDeltaSum)
		}
		if st.QuotaUsed != st.OpsMetered {
			t.Errorf("tenant %d: quota meter drifted: QuotaUsed=%d, metered=%d",
				i, st.QuotaUsed, st.OpsMetered)
		}
		if st.Invalidations != st.Reclaimed {
			t.Errorf("tenant %d: tombstones leaked: armed=%d, reclaimed=%d",
				i, st.Invalidations, st.Reclaimed)
		}
		if st.BufferedEnqueues != 0 || st.BufferedCounterOps != 0 || st.PrefetchedDequeues != 0 {
			t.Errorf("tenant %d: handle-local state survived the sweep: %+v", i, st)
		}
		totalPanics += st.PanicsRecovered
	}
	if totalPanics == 0 {
		t.Error("no handler panic was recovered despite injected panic policies")
	}

	// Final stage: interior removal under structural chaos. The wire API has
	// no remove endpoint, so this stage drives the dlz layer directly with
	// the cpq/pad fault regime armed, preserving the ElemRef residency
	// contract (each goroutine removes only its own refs, and nothing
	// dequeues until removals are done).
	removeChaosStage(t)
}

// chaosCoveragePass arms one Count-bounded policy per fault kind and drives a
// request guaranteed to traverse it, returning observed fires per kind. It
// runs against tenant chaos0 with a dedicated session token.
func chaosCoveragePass(t *testing.T, c *testClient) map[string]uint64 {
	t.Helper()
	fires := map[string]uint64{}
	const base = "/v1/chaos0"
	batch := EnqueueBatchRequest{Session: "coverage", Items: wireItems(1, 2, 3)}

	// panic: first enqueued item faults, envelope answers 500 and repairs.
	fail.Reset()
	fail.Arm(fail.SiteDlzdEnqueueItem, fail.Policy{Kind: fail.KindPanic, Count: 1})
	if code := c.post(base+"/enqueue-batch", batch, nil); code != http.StatusInternalServerError {
		t.Errorf("coverage panic request = %d, want 500", code)
	}
	fires["panic"] = fail.Fires(fail.SiteDlzdEnqueueItem)

	// delay: response path sleeps once.
	fail.Reset()
	fail.Arm(fail.SiteDlzdHandlerPost, fail.Policy{Kind: fail.KindDelay, Delay: 2 * time.Millisecond, Count: 1})
	c.post(base+"/enqueue-batch", batch, nil)
	fires["delay"] = fail.Fires(fail.SiteDlzdHandlerPost)

	// stall: one request parks at admission until released.
	fail.Reset()
	fail.Arm(fail.SiteDlzdHandlerPre, fail.Policy{Kind: fail.KindStall, Count: 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.get(base+"/stats", nil)
	}()
	for i := 0; fail.Fires(fail.SiteDlzdHandlerPre) == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	fires["stall"] = fail.Fires(fail.SiteDlzdHandlerPre)
	fail.Release(fail.SiteDlzdHandlerPre)
	<-done

	// error: the close ladder's first retirement attempt is refused once,
	// the second succeeds.
	fail.Reset()
	fail.Arm(fail.SiteDlzdLeaseClose, fail.Policy{Kind: fail.KindError, Count: 1})
	if code := c.post(base+"/session/close", SessionCloseRequest{Session: "coverage"}, nil); code != http.StatusOK {
		t.Errorf("coverage close = %d, want 200", code)
	}
	fires["error"] = fail.Fires(fail.SiteDlzdLeaseClose)
	fail.Reset()
	return fires
}

// removeChaosStage is TestChaosSoak's Invalidations == Reclaimed stage: G
// goroutines insert located elements and remove half of them while try-path
// refusals, reroll storms and critical-section delays are armed, then a
// drain empties the structure and the tombstone ledger must balance exactly.
func removeChaosStage(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	fail.SetSeed(uint64(*chaosSeed))
	fail.Arm(fail.SiteCPQTryRefuse, fail.Policy{Kind: fail.KindError, Prob: 0.3})
	fail.Arm(fail.SiteCoreReroll, fail.Policy{Kind: fail.KindError, Prob: 0.3})
	fail.Arm(fail.SitePadLockHold, fail.Policy{Kind: fail.KindDelay, Delay: 100 * time.Microsecond, Count: 64})
	fail.Arm(fail.SiteCPQTopPublish, fail.Policy{Kind: fail.KindDelay, Delay: 100 * time.Microsecond, Count: 64})

	q := dlz.NewMultiQueue(dlz.MultiQueueConfig{Queues: 4, Seed: uint64(*chaosSeed) | 1, Capacity: 256})
	const goroutines, perG = 4, 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	removed := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			h := q.NewHandle(uint64(g) + 100)
			defer h.Close()
			refs := make([]dlz.ElemRef, 0, perG)
			for i := 0; i < perG; i++ {
				v := uint64(g*perG + i + 1) // unique values, per the ElemRef contract
				refs = append(refs, h.EnqueuePriorityRef(uint64(1+i), v))
			}
			for i := 0; i < perG/2; i++ {
				if h.Remove(refs[i*2]) {
					removed[g]++
				}
			}
		}(g)
	}
	wg.Wait()

	totalRemoved := 0
	for _, n := range removed {
		totalRemoved += n
	}
	drained := 0
	h := q.NewHandle(1)
	defer h.Close()
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
		drained++
	}
	if want := goroutines*perG - totalRemoved; drained != want {
		t.Errorf("remove stage conservation violated: drained %d, want %d (removed %d)", drained, want, totalRemoved)
	}
	st := q.Stats()
	if st.Invalidations != uint64(totalRemoved) || st.Invalidations != st.Reclaimed {
		t.Errorf("tombstone ledger imbalanced: armed=%d reclaimed=%d removed=%d",
			st.Invalidations, st.Reclaimed, totalRemoved)
	}
}

// TestHandlerPanicMidBatch is the regression pin for the repair envelope: a
// handler panicking halfway through an enqueue batch must (a) answer 500,
// (b) commit exactly the items applied before the fault, (c) strand no
// buffered element — the repair flush publishes them, (d) leak no in-flight
// budget, and (e) leave the session token immediately serviceable.
func TestHandlerPanicMidBatch(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	// MaxInFlight 1: a leaked in-flight slot would make every later request
	// fail 429, so (d) is load-bearing for the rest of the test.
	_, c := newTestClient(t, Config{Queues: 4, Batch: 8, Stickiness: 8, MaxInFlight: 1, Seed: 7})

	const applyBefore = 5
	fail.Arm(fail.SiteDlzdEnqueueItem, fail.Policy{Kind: fail.KindPanic, After: applyBefore, Count: 1})
	code := c.post("/v1/t/enqueue-batch",
		EnqueueBatchRequest{Session: "s1", Items: wireItems(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)}, nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("mid-batch panic answered %d, want 500", code)
	}

	// (e)+(d): the same token serves the very next request.
	var enq EnqueueBatchResponse
	if code := c.post("/v1/t/enqueue-batch",
		EnqueueBatchRequest{Session: "s1", Items: wireItems(11, 12)}, &enq); code != http.StatusOK {
		t.Fatalf("request after repaired panic = %d, want 200", code)
	}

	var st StatsResponse
	if code := c.get("/v1/t/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if st.PanicsRecovered != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", st.PanicsRecovered)
	}
	if want := uint64(applyBefore + 2); st.OpsEnqueued != want {
		t.Errorf("OpsEnqueued = %d, want %d (items before the panic plus the follow-up)", st.OpsEnqueued, want)
	}
	// (c): nothing stranded — after closing the session every applied item
	// is published and conservation is exact.
	if code := c.post("/v1/t/session/close", SessionCloseRequest{Session: "s1"}, nil); code != http.StatusOK {
		t.Fatalf("close = %d", code)
	}
	if code := c.get("/v1/t/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if int64(st.QueueLen) != int64(st.OpsEnqueued)-int64(st.OpsDequeued) {
		t.Errorf("conservation violated after repair: Len=%d enq=%d deq=%d",
			st.QueueLen, st.OpsEnqueued, st.OpsDequeued)
	}
	if st.RepairFailures != 0 {
		t.Errorf("RepairFailures = %d, want 0", st.RepairFailures)
	}
}

// TestJanitorExpiryRace pins the expiry sweep against live traffic: with the
// janitor's delink-to-close window stretched by an injected delay and close
// ladders faulting, concurrent requests keep using the tokens being expired.
// Every race resolution is legal (a request lands on the old lease before
// its close, or opens a fresh lease); what must hold afterwards is exact
// conservation and a clean lease ledger.
func TestJanitorExpiryRace(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	fail.SetSeed(uint64(*chaosSeed))
	s, c := newTestClient(t, Config{Queues: 4, Batch: 8, Stickiness: 8, Seed: 11})

	fail.Arm(fail.SiteDlzdJanitor, fail.Policy{Kind: fail.KindDelay, Delay: 500 * time.Microsecond})
	// Every-other-attempt refusal: a retirement ladder can lose at most
	// half its retireAttempts tries, so it always converges — a Prob-based
	// policy could (rarely) fire 8 straight times and exhaust the ladder.
	fail.Arm(fail.SiteDlzdLeaseClose, fail.Policy{Kind: fail.KindError, Every: 2, Count: 40})
	fail.Arm(fail.SiteCoreFlush, fail.Policy{Kind: fail.KindPanic, Every: 7, Count: 10})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the janitor, sweeping everything it sees, continuously
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.ExpireIdle(time.Now())
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	const workers = 4
	var workerWG sync.WaitGroup
	workerWG.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer workerWG.Done()
			session := fmt.Sprintf("race%d", w)
			for i := 0; i < 120; i++ {
				c.post("/v1/janitor/enqueue-batch",
					EnqueueBatchRequest{Session: session, Items: wireItems(uint64(i + 1))}, nil)
				if i%3 == 0 {
					c.post("/v1/janitor/delete-min-up-to", DeleteMinRequest{Session: session, Max: 2}, nil)
				}
			}
			if w == 0 { // one worker also closes explicitly, racing the sweeps
				c.post("/v1/janitor/session/close", SessionCloseRequest{Session: session}, nil)
			}
		}(w)
	}
	workerWG.Wait()
	close(stop)
	wg.Wait()

	fail.Reset()
	s.ExpireIdle(time.Now().Add(time.Hour))
	var st StatsResponse
	if code := c.get("/v1/janitor/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if st.Leases != 0 {
		t.Errorf("%d leases survived the final sweep", st.Leases)
	}
	if st.RepairFailures != 0 {
		t.Errorf("RepairFailures = %d, want 0", st.RepairFailures)
	}
	if int64(st.QueueLen) != int64(st.OpsEnqueued)-int64(st.OpsDequeued) {
		t.Errorf("conservation violated under expiry races: Len=%d enq=%d deq=%d",
			st.QueueLen, st.OpsEnqueued, st.OpsDequeued)
	}
	if st.BufferedEnqueues != 0 || st.PrefetchedDequeues != 0 {
		t.Errorf("handle-local state survived the sweep: %+v", st)
	}
}
