package dlzd

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// serveMetrics writes the Prometheus-style text exposition for GET /metrics.
//
// The aggregate lines are emitted unconditionally — even with zero tenants —
// so monitoring (and the CI smoke check) can assert their presence without
// priming traffic first. Per-tenant lines carry a tenant label and are sorted
// by tenant name for stable scrapes.
//
// The three internals counters the issue calls out surface here:
//
//   - dlzd_queue_elisions_total: publication elisions in the lock-free
//     top-word cache (cpq covered-insert and empty-pop fast paths);
//   - dlzd_spin_backoff_total: slow-path lock acquisitions, i.e. acquires
//     that engaged the adaptive spin/yield backoff schedule;
//   - dlzd_sampler_rerolls_total: sticky d-choice sampler rerolls, live
//     leases plus rerolls harvested from retired leases.
func (s *Server) serveMetrics(w http.ResponseWriter) {
	tenants := s.tenantSnapshot()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })

	type tenantRow struct {
		t   *tenant
		mq  MQStatsView
		agg leaseAggregate
	}
	var (
		rows                                     []tenantRow
		elisions, publications, backoff, rerolls uint64
		leases                                   int
	)
	for _, t := range tenants {
		st := t.mq.Stats()
		agg := t.liveLeaseStats()
		row := tenantRow{
			t: t,
			mq: MQStatsView{
				Elisions:      st.Elisions,
				Publications:  st.Publications,
				LockContended: st.LockContended,
				Invalidations: st.Invalidations,
				Reclaimed:     st.Reclaimed,
				CurrentM:      st.CurrentM,
				Epoch:         st.Epoch,
				Resizes:       st.Resizes,
			},
			agg: agg,
		}
		rows = append(rows, row)
		elisions += st.Elisions
		publications += st.Publications
		backoff += st.LockContended
		rerolls += agg.rerolls + t.retiredRerolls.Load()
		leases += agg.leases
	}

	var b strings.Builder
	counter := func(name, help string, total uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, total)
	}
	gauge := func(name, help string, total int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, total)
	}
	perTenant := func(name string, value func(tenantRow) uint64) {
		for _, r := range rows {
			fmt.Fprintf(&b, "%s{tenant=%q} %d\n", name, r.t.name, value(r))
		}
	}

	counter("dlzd_queue_elisions_total", "Top-word cache publication elisions across tenant MultiQueues.", elisions)
	perTenant("dlzd_queue_elisions_total", func(r tenantRow) uint64 { return r.mq.Elisions })
	counter("dlzd_queue_publications_total", "Top-word cache publications across tenant MultiQueues.", publications)
	perTenant("dlzd_queue_publications_total", func(r tenantRow) uint64 { return r.mq.Publications })
	counter("dlzd_spin_backoff_total", "Slow-path lock acquisitions that engaged the adaptive spin backoff.", backoff)
	perTenant("dlzd_spin_backoff_total", func(r tenantRow) uint64 { return r.mq.LockContended })
	counter("dlzd_sampler_rerolls_total", "Sticky d-choice sampler rerolls (live leases plus retired).", rerolls)
	perTenant("dlzd_sampler_rerolls_total", func(r tenantRow) uint64 { return r.agg.rerolls + r.t.retiredRerolls.Load() })

	gauge("dlzd_leases_active", "Live session leases.", leases)
	perTenant("dlzd_leases_active", func(r tenantRow) uint64 { return uint64(r.agg.leases) })
	sumCounter := func(name, help string, value func(tenantRow) uint64) {
		var total uint64
		for _, r := range rows {
			total += value(r)
		}
		counter(name, help, total)
		perTenant(name, value)
	}
	sumCounter("dlzd_leases_opened_total", "Session leases ever opened.",
		func(r tenantRow) uint64 { return r.t.leasesOpened.Load() })
	sumCounter("dlzd_leases_expired_total", "Session leases retired by idle expiry.",
		func(r tenantRow) uint64 { return r.t.leasesExpired.Load() })
	sumCounter("dlzd_rejected_inflight_total", "Requests rejected by the in-flight backpressure budget.",
		func(r tenantRow) uint64 { return r.t.rejectedInflite.Load() })
	sumCounter("dlzd_rejected_quota_total", "Requests rejected by the tenant operation quota.",
		func(r tenantRow) uint64 { return r.t.rejectedQuota.Load() })
	sumCounter("dlzd_ops_enqueued_total", "Elements accepted by enqueue-batch.",
		func(r tenantRow) uint64 { return r.t.opsEnqueued.Load() })
	sumCounter("dlzd_ops_dequeued_total", "Elements returned by delete-min-up-to.",
		func(r tenantRow) uint64 { return r.t.opsDequeued.Load() })
	sumCounter("dlzd_ops_counter_adds_total", "Deltas accepted by counter/add-batch.",
		func(r tenantRow) uint64 { return r.t.opsCounterAdds.Load() })

	// Degradation-ladder series (DESIGN.md §10).
	sumCounter("dlzd_rejected_shed_total", "Mutating requests rejected by adaptive load shedding.",
		func(r tenantRow) uint64 { return r.t.rejectedShed.Load() })
	sumCounter("dlzd_rejected_busy_total", "Requests that could not lock their session lease within the deadline.",
		func(r tenantRow) uint64 { return r.t.rejectedBusy.Load() })
	sumCounter("dlzd_deadline_aborts_total", "Handler loops cut short by the per-request deadline.",
		func(r tenantRow) uint64 { return r.t.deadlineAborts.Load() })
	sumCounter("dlzd_panics_recovered_total", "Handler panics absorbed by the recovery envelope.",
		func(r tenantRow) uint64 { return r.t.panicsRecovered.Load() })
	sumCounter("dlzd_repair_failures_total", "Lease retirements that exhausted the repair ladder.",
		func(r tenantRow) uint64 { return r.t.repairFailures.Load() })
	sumCounter("dlzd_tombstones_armed_total", "MultiQueue interior removals armed (lazy tombstones).",
		func(r tenantRow) uint64 { return r.mq.Invalidations })
	sumCounter("dlzd_tombstones_reclaimed_total", "MultiQueue tombstones physically reclaimed.",
		func(r tenantRow) uint64 { return r.mq.Reclaimed })
	var shedTotal int
	for _, row := range rows {
		shedTotal += int(row.t.shedLevel.Load())
	}
	gauge("dlzd_shed_level", "Adaptive shed level (0-3), summed across tenants.", shedTotal)
	perTenant("dlzd_shed_level", func(r tenantRow) uint64 { return uint64(r.t.shedLevel.Load()) })

	// Elastic-topology series (DESIGN.md §11).
	var mTotal int
	for _, row := range rows {
		mTotal += row.mq.CurrentM
	}
	gauge("dlzd_queue_current_m", "Live shard count of tenant MultiQueues, summed across tenants.", mTotal)
	perTenant("dlzd_queue_current_m", func(r tenantRow) uint64 { return uint64(r.mq.CurrentM) })
	sumCounter("dlzd_resize_epochs_total", "Completed resize epochs across tenant MultiQueues.",
		func(r tenantRow) uint64 { return r.mq.Resizes })

	// Durability series (DESIGN.md §12). Emitted unconditionally — all zero
	// when the WAL is off — so dashboards and the CI smoke check never need
	// to special-case the configuration.
	floatGauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	var fsyncs, walBytes uint64
	if l := s.log(); l != nil {
		fsyncs = l.Fsyncs()
		walBytes = l.BytesAppended()
	}
	counter("dlzd_wal_fsyncs_total", "Journal fsync calls issued (group commits count once).", fsyncs)
	counter("dlzd_wal_bytes_total", "Bytes appended to the write-ahead journal.", walBytes)
	counter("dlzd_wal_append_errors_total", "Journal appends that failed (each poisons its request's ack).",
		s.walAppendErrors.Load())
	counter("dlzd_snapshots_total", "Point-in-time snapshots written.", s.snapshotsTaken.Load())
	counter("dlzd_recovery_replayed_records", "Journal records replayed on top of the snapshot at last boot.",
		s.recoveryRecords.Load())
	floatGauge("dlzd_recovery_duration_seconds", "Wall time of journal recovery at last boot.",
		float64(s.recoveryNanos.Load())/1e9)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// MQStatsView mirrors the core MultiQueue stats counters for metrics
// assembly without importing the internal package into every metrics
// consumer.
type MQStatsView struct {
	Elisions      uint64
	Publications  uint64
	LockContended uint64
	Invalidations uint64
	Reclaimed     uint64
	CurrentM      int
	Epoch         uint64
	Resizes       uint64
}
