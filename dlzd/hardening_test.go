package dlzd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// These tests pin the degradation ladder's behavior without the dlzfail tag:
// per-request deadlines, bounded lease waits, static and adaptive
// backpressure, and the /metrics surface for all of it. They run in both
// build modes, so the chaos CI job and the default suite cover them.

// TestRequestDeadline pins the per-request deadline semantics with an
// already-expired deadline: enqueue and counter add-batch abort with 503 and
// zero applied operations, while delete-min-up-to answers a truncated 200 —
// a dequeue loop cut short has removed nothing it can put back, so partial
// success is the response that preserves delivered-exactly-once (here the
// partial result is empty).
func TestRequestDeadline(t *testing.T) {
	_, c := newTestClient(t, Config{Queues: 4, Batch: 4, RequestTimeout: time.Nanosecond, Seed: 3})

	if code := c.post("/v1/dead/enqueue-batch",
		EnqueueBatchRequest{Session: "s", Items: wireItems(1, 2, 3)}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("enqueue under expired deadline = %d, want 503", code)
	}
	if code := c.post("/v1/dead/counter/add-batch",
		CounterAddRequest{Session: "s", Deltas: []uint64{5}}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("counter add under expired deadline = %d, want 503", code)
	}
	var deq DeleteMinResponse
	if code := c.post("/v1/dead/delete-min-up-to",
		DeleteMinRequest{Session: "s", Max: 4}, &deq); code != http.StatusOK {
		t.Errorf("delete-min under expired deadline = %d, want truncated 200", code)
	}
	if !deq.Truncated || len(deq.Items) != 0 {
		t.Errorf("delete-min under expired deadline = %+v, want empty truncated response", deq)
	}

	var st StatsResponse
	if code := c.get("/v1/dead/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if st.OpsEnqueued != 0 || st.OpsDequeued != 0 || st.CounterDeltaSum != 0 {
		t.Errorf("aborted requests leaked applied ops: %+v", st)
	}
	// The quota meter charges at admission (before the deadline check), so
	// the conservation pair still agrees.
	if st.QuotaUsed != st.OpsMetered {
		t.Errorf("QuotaUsed = %d, OpsMetered = %d, want equal", st.QuotaUsed, st.OpsMetered)
	}
	if m := c.metrics(); lineValue(t, m, "dlzd_deadline_aborts_total") == "0" {
		t.Error("dlzd_deadline_aborts_total = 0 after three deadline aborts")
	}
}

// TestLeaseBusy503 pins the bounded lease wait: while another holder keeps a
// session's lease locked past the request deadline, a request carrying the
// same token answers 503 with a Retry-After hint instead of joining an
// unbounded convoy — and the lease survives for the holder.
func TestLeaseBusy503(t *testing.T) {
	s, c := newTestClient(t, Config{Queues: 4, RequestTimeout: 20 * time.Millisecond, Seed: 5})
	tn, ok := s.tenant("busy")
	if !ok {
		t.Fatal("tenant refused")
	}
	l, ok := tn.lease(context.Background(), "tok")
	if !ok {
		t.Fatal("white-box lease acquisition failed")
	}
	// The lease lock is held; the wire request must give up at its deadline.
	resp := rawPost(t, c, "/v1/busy/enqueue-batch",
		EnqueueBatchRequest{Session: "tok", Items: wireItems(1)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request against held lease = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("busy Retry-After = %q, want \"1\"", got)
	}
	l.done()
	if code := c.post("/v1/busy/enqueue-batch",
		EnqueueBatchRequest{Session: "tok", Items: wireItems(1)}, nil); code != http.StatusOK {
		t.Errorf("request after release = %d, want 200", code)
	}
	if m := c.metrics(); lineValue(t, m, "dlzd_rejected_busy_total") != "1" {
		t.Errorf("dlzd_rejected_busy_total = %s, want 1", lineValue(t, m, "dlzd_rejected_busy_total"))
	}
}

// TestInFlightRetryAfter pins the static backpressure rung: a request over
// the in-flight budget answers 429 with a Retry-After header.
func TestInFlightRetryAfter(t *testing.T) {
	s, c := newTestClient(t, Config{Queues: 4, MaxInFlight: 1, Seed: 9})
	tn, ok := s.tenant("full")
	if !ok {
		t.Fatal("tenant refused")
	}
	if !tn.acquire() { // white-box: consume the whole budget
		t.Fatal("budget acquire failed")
	}
	defer tn.release()
	resp := rawPost(t, c, "/v1/full/enqueue-batch",
		EnqueueBatchRequest{Session: "s", Items: wireItems(1)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-budget request = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("in-flight Retry-After = %q, want \"1\"", got)
	}
}

// TestAdaptiveShedGate pins the shed admission pattern: at level L, L of
// every 4 mutating requests are rejected with 429 and a Retry-After of
// 2^(L−1) seconds, and reads are never shed.
func TestAdaptiveShedGate(t *testing.T) {
	s, c := newTestClient(t, Config{Queues: 4, ShedTarget: time.Second, Seed: 13})
	tn, ok := s.tenant("shed")
	if !ok {
		t.Fatal("tenant refused")
	}
	tn.shedLevel.Store(2)
	// Stamp the dwell clock so the controller itself (observing these fast
	// requests) cannot step the level down inside the ShedHold window.
	tn.shedShift.Store(time.Now().UnixNano())

	sheds := 0
	for i := 0; i < 8; i++ {
		resp := rawPost(t, c, "/v1/shed/enqueue-batch",
			EnqueueBatchRequest{Session: "s", Items: wireItems(uint64(i + 1))})
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			sheds++
			if got := resp.Header.Get("Retry-After"); got != "2" {
				t.Errorf("shed Retry-After at level 2 = %q, want \"2\"", got)
			}
		case http.StatusOK:
		default:
			t.Fatalf("mutating request = %d, want 200 or 429", resp.StatusCode)
		}
	}
	if sheds != 4 {
		t.Errorf("shed %d of 8 mutating requests at level 2, want 4", sheds)
	}
	for i := 0; i < 4; i++ { // reads bypass the shed gate entirely
		if code := c.get("/v1/shed/stats", nil); code != http.StatusOK {
			t.Errorf("read under shed = %d, want 200", code)
		}
	}
	var st StatsResponse
	if code := c.get("/v1/shed/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if st.ShedLevel != 2 {
		t.Errorf("stats ShedLevel = %d, want 2", st.ShedLevel)
	}
	if m := c.metrics(); lineValue(t, m, "dlzd_rejected_shed_total") != "4" {
		t.Errorf("dlzd_rejected_shed_total = %s, want 4", lineValue(t, m, "dlzd_rejected_shed_total"))
	}
}

// TestShedLevelTracksLatency pins the adaptive controller white-box: the
// EWMA escalates the level one step per dwell while latency exceeds the
// target, saturates at 3, and steps back down to 0 once the EWMA decays
// below half the target.
func TestShedLevelTracksLatency(t *testing.T) {
	s := New(Config{Queues: 4, ShedTarget: time.Millisecond, ShedHold: time.Nanosecond, Seed: 17})
	tn, ok := s.tenant("ctl")
	if !ok {
		t.Fatal("tenant refused")
	}
	for i := 0; i < 5; i++ {
		tn.observeLatency(10 * time.Millisecond)
	}
	if lvl := tn.shedLevel.Load(); lvl != 3 {
		t.Errorf("shed level after sustained overload = %d, want saturation at 3", lvl)
	}
	for i := 0; i < 400 && tn.shedLevel.Load() > 0; i++ {
		tn.observeLatency(time.Microsecond)
	}
	if lvl := tn.shedLevel.Load(); lvl != 0 {
		t.Errorf("shed level after sustained recovery = %d, want 0", lvl)
	}
	// With ShedTarget unset observeLatency is inert: no level movement.
	s2 := New(Config{Queues: 4, Seed: 19})
	tn2, _ := s2.tenant("off")
	for i := 0; i < 10; i++ {
		tn2.observeLatency(time.Second)
	}
	if lvl := tn2.shedLevel.Load(); lvl != 0 {
		t.Errorf("shed level moved to %d with shedding disabled", lvl)
	}
}

// TestHardeningMetricsSurface asserts the degradation-ladder series are all
// present in /metrics from the very first scrape (monitoring can alert on
// them without priming traffic).
func TestHardeningMetricsSurface(t *testing.T) {
	_, c := newTestClient(t, Config{Queues: 4, Seed: 21})
	m := c.metrics()
	for _, series := range []string{
		"dlzd_rejected_shed_total",
		"dlzd_rejected_busy_total",
		"dlzd_deadline_aborts_total",
		"dlzd_panics_recovered_total",
		"dlzd_repair_failures_total",
		"dlzd_tombstones_armed_total",
		"dlzd_tombstones_reclaimed_total",
		"dlzd_shed_level",
	} {
		if lineValue(t, m, series) != "0" {
			t.Errorf("series %s = %s on a fresh server, want 0", series, lineValue(t, m, series))
		}
	}
}

// rawPost is testClient.post without the helper's decoding, for tests that
// need response headers; the body is closed before returning.
func rawPost(t *testing.T, c *testClient, path string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal %s: %v", path, err)
	}
	resp, err := http.Post(c.srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	resp.Body.Close()
	return resp
}
