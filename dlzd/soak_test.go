package dlzd

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// soakOps scales the soak workload (total wire operations across all
// workers). CI runs the race-enabled soak with a reduced count; the default
// suits a laptop `go test ./dlzd`.
var soakOps = flag.Int("soakops", 6000, "total wire operations for TestDaemonSoak")

// tenantLedger is the client-side ground truth the conservation check
// compares against: every element and delta a worker pushed through the
// wire, counted at the moment the daemon acknowledged the request.
type tenantLedger struct {
	enqueued   atomic.Int64  // elements accepted by enqueue-batch
	dequeued   atomic.Int64  // elements returned by delete-min-up-to
	counterSum atomic.Uint64 // sum of deltas accepted by counter/add-batch
	metered    atomic.Uint64 // operations metered into the quota counter
}

// TestDaemonSoak drives ≥4 tenants with concurrent sessions through the wire
// API, disconnects sessions mid-run — half cleanly (session/close), half by
// abandonment (reaped by ExpireIdle) — and then asserts exact conservation:
// after the final flush every tenant's published queue length equals
// enqueues minus dequeues, the counter's exact sum equals the delta total,
// and the quota meter equals the operations admitted. Run it with -race;
// the lease lifecycle, backpressure gate and handle buffers are all on the
// hot path here.
func TestDaemonSoak(t *testing.T) {
	const (
		tenants          = 4
		workersPerTenant = 3
	)
	s := New(Config{
		Queues:     8,
		Batch:      8,
		Stickiness: 16,
		Choices:    2,
		Affinity:   0.5,
		Seed:       42,
	})
	hs := httptest.NewServer(s)
	defer hs.Close()
	c := &testClient{t: t, srv: hs}

	ledgers := make([]*tenantLedger, tenants)
	for i := range ledgers {
		ledgers[i] = &tenantLedger{}
	}

	workers := tenants * workersPerTenant
	iters := *soakOps / workers
	if iters < 10 {
		iters = 10
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			tenantID := w % tenants
			led := ledgers[tenantID]
			base := fmt.Sprintf("/v1/soak%d", tenantID)
			r := rand.New(rand.NewSource(int64(1000 + w)))
			session := fmt.Sprintf("w%d-a", w)

			fail := func(format string, args ...any) {
				select {
				case errs <- fmt.Errorf(format, args...):
				default:
				}
			}
			for i := 0; i < iters; i++ {
				// Mid-run disconnect: halfway through, every worker drops its
				// first session — even workers close it over the wire, odd
				// workers abandon it with whatever it still buffers.
				if i == iters/2 {
					if w%2 == 0 {
						if code := c.post(base+"/session/close", SessionCloseRequest{Session: session}, nil); code != http.StatusOK {
							fail("worker %d: mid-run close = %d", w, code)
							return
						}
					}
					session = fmt.Sprintf("w%d-b", w)
				}
				switch r.Intn(4) {
				case 0, 1: // enqueue a small batch
					n := 1 + r.Intn(8)
					items := make([]WireItem, n)
					for j := range items {
						p := r.Uint64()
						items[j] = WireItem{Priority: p, Value: p ^ 0xD1CE}
					}
					if code := c.post(base+"/enqueue-batch", EnqueueBatchRequest{Session: session, Items: items}, nil); code != http.StatusOK {
						fail("worker %d: enqueue = %d", w, code)
						return
					}
					led.enqueued.Add(int64(n))
					led.metered.Add(uint64(n))
				case 2: // dequeue a small batch
					max := 1 + r.Intn(8)
					var deq DeleteMinResponse
					if code := c.post(base+"/delete-min-up-to", DeleteMinRequest{Session: session, Max: max}, &deq); code != http.StatusOK {
						fail("worker %d: delete-min = %d", w, code)
						return
					}
					for _, it := range deq.Items {
						if it.Value != it.Priority^0xD1CE {
							fail("worker %d: corrupted element %+v", w, it)
							return
						}
					}
					led.dequeued.Add(int64(len(deq.Items)))
					led.metered.Add(uint64(max))
				case 3: // counter adds
					n := 1 + r.Intn(6)
					deltas := make([]uint64, n)
					var sum uint64
					for j := range deltas {
						deltas[j] = uint64(1 + r.Intn(100))
						sum += deltas[j]
					}
					if code := c.post(base+"/counter/add-batch", CounterAddRequest{Session: session, Deltas: deltas}, nil); code != http.StatusOK {
						fail("worker %d: counter add = %d", w, code)
						return
					}
					led.counterSum.Add(sum)
					led.metered.Add(uint64(n))
				}
			}
			// End of run: even workers disconnect cleanly, odd workers
			// abandon their second session too.
			if w%2 == 0 {
				if code := c.post(base+"/session/close", SessionCloseRequest{Session: session}, nil); code != http.StatusOK {
					fail("worker %d: final close = %d", w, code)
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Final flush: reap every abandoned session. Nothing may be lost.
	s.ExpireIdle(time.Now().Add(time.Hour))

	for i := 0; i < tenants; i++ {
		led := ledgers[i]
		var st StatsResponse
		if code := c.get(fmt.Sprintf("/v1/soak%d/stats", i), &st); code != http.StatusOK {
			t.Fatalf("tenant %d stats = %d", i, code)
		}
		if st.Leases != 0 {
			t.Errorf("tenant %d: %d leases survived the sweep", i, st.Leases)
		}
		wantLen := led.enqueued.Load() - led.dequeued.Load()
		if int64(st.QueueLen) != wantLen {
			t.Errorf("tenant %d: queue conservation violated: Len=%d, enqueued-dequeued=%d",
				i, st.QueueLen, wantLen)
		}
		if st.CounterExact != led.counterSum.Load() {
			t.Errorf("tenant %d: counter conservation violated: Exact=%d, delta sum=%d",
				i, st.CounterExact, led.counterSum.Load())
		}
		if st.QuotaUsed != led.metered.Load() {
			t.Errorf("tenant %d: quota meter drifted: QuotaUsed=%d, metered=%d",
				i, st.QuotaUsed, led.metered.Load())
		}
		if st.BufferedEnqueues != 0 || st.BufferedCounterOps != 0 || st.PrefetchedDequeues != 0 {
			t.Errorf("tenant %d: handle-local state survived the final flush: %+v", i, st)
		}
	}

	// The instrumented internals moved under load and export cleanly.
	m := c.metrics()
	for _, series := range []string{
		"dlzd_queue_elisions_total", "dlzd_queue_publications_total",
		"dlzd_spin_backoff_total", "dlzd_sampler_rerolls_total",
		"dlzd_leases_expired_total",
	} {
		if v := lineValue(t, m, series); v == "" {
			t.Errorf("series %s missing a value", series)
		}
	}
	var pubs uint64
	if _, err := fmt.Sscanf(lineValue(t, m, "dlzd_queue_publications_total"), "%d", &pubs); err != nil || pubs == 0 {
		t.Errorf("soak should have published batches: %v", err)
	}
}
