package dlzd

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os/exec"
	"reflect"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/wal"
)

// Kill-restart soak knobs. CI runs the fixed default seed plus a randomized
// one; any failing seed reproduces its kill schedule exactly.
var (
	killCycles = flag.Int("killcycles", 4, "SIGKILL cycles for TestKillRestartSoak")
	killSeed   = flag.Int64("killseed", 1, "kill-timing seed for TestKillRestartSoak")
)

// TestKillRestartSoak is the chaos proof for DESIGN.md §12: a real dlzd
// process journaling under live dlzd-load traffic is SIGKILLed mid-flight
// -killcycles times — with a short fsync interval, so kills land inside or
// around fsync windows — and restarted each time. The -expect-restart load
// client tracks acked vs maybe-applied ledgers and must print RECOVERY PASS:
// zero acked-op loss, unacked overshoot bounded by in-flight requests. A
// final SIGTERM restart must replay zero records (the shutdown snapshot
// covered everything), and two offline replays of the surviving journal must
// be identical.
func TestKillRestartSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess soak skipped in -short")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/dlzd", "./cmd/dlzd-load")
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	walDir := t.TempDir()

	var daemonLogs []*bytes.Buffer
	startDaemon := func() *exec.Cmd {
		log := &bytes.Buffer{}
		daemonLogs = append(daemonLogs, log)
		cmd := exec.Command(bin+"/dlzd",
			"-addr", addr,
			"-wal-dir", walDir,
			"-wal-fsync", "interval",
			"-wal-fsync-interval", "5ms",
			"-wal-segment-bytes", strconv.Itoa(256<<10),
			"-wal-snapshot-bytes", strconv.Itoa(1<<20),
			"-queues", "8")
		cmd.Stdout = log
		cmd.Stderr = log
		if err := cmd.Start(); err != nil {
			t.Fatalf("start daemon: %v", err)
		}
		return cmd
	}
	dumpLogs := func() {
		for i, l := range daemonLogs {
			t.Logf("daemon incarnation %d:\n%s", i, l.String())
		}
	}
	waitReady := func(timeout time.Duration) bool {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			resp, err := http.Get("http://" + addr + "/readyz")
			if err == nil {
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusOK {
					return true
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
		return false
	}

	daemon := startDaemon()
	if !waitReady(10 * time.Second) {
		dumpLogs()
		t.Fatal("daemon never became ready")
	}

	loadOut := &bytes.Buffer{}
	load := exec.Command(bin+"/dlzd-load",
		"-addr", "http://"+addr,
		"-expect-restart",
		"-ops", strconv.Itoa(*killCycles*8000),
		"-workers", "4",
		"-tenants", "4",
		"-seed", strconv.FormatInt(*killSeed, 10))
	load.Stdout = loadOut
	load.Stderr = loadOut
	if err := load.Start(); err != nil {
		t.Fatalf("start load: %v", err)
	}
	loadDone := make(chan error, 1)
	go func() { loadDone <- load.Wait() }()

	t.Logf("kill schedule seed %d, %d cycles", *killSeed, *killCycles)
	r := rand.New(rand.NewSource(*killSeed))
	kills := 0
	for i := 0; i < *killCycles; i++ {
		select {
		case <-loadDone:
			// The op budget drained before the schedule finished; the cycles
			// that did run still verified. Resignal for the join below.
			loadDone <- nil
			i = *killCycles
			continue
		case <-time.After(time.Duration(250+r.Intn(400)) * time.Millisecond):
		}
		if err := daemon.Process.Kill(); err != nil {
			t.Fatalf("SIGKILL cycle %d: %v", i, err)
		}
		_ = daemon.Wait()
		kills++
		daemon = startDaemon()
	}

	select {
	case err := <-loadDone:
		if err != nil {
			dumpLogs()
			t.Fatalf("load client failed: %v\n%s", err, loadOut.String())
		}
	case <-time.After(5 * time.Minute):
		dumpLogs()
		t.Fatalf("load client hung\n%s", loadOut.String())
	}
	out := loadOut.String()
	if !bytes.Contains([]byte(out), []byte("RECOVERY PASS")) {
		dumpLogs()
		t.Fatalf("no RECOVERY PASS verdict after %d kills:\n%s", kills, out)
	}
	t.Logf("%d SIGKILL cycles survived; load verdict:\n%s", kills, out)

	// Clean shutdown: SIGTERM writes a final snapshot, so the next boot must
	// replay exactly zero journal records.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := daemon.Wait(); err != nil {
		dumpLogs()
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
	daemon = startDaemon()
	if !waitReady(10 * time.Second) {
		dumpLogs()
		t.Fatal("daemon not ready after clean restart")
	}
	finalLog := daemonLogs[len(daemonLogs)-1].String()
	m := regexp.MustCompile(`\((\d+) records`).FindStringSubmatch(finalLog)
	if m == nil {
		t.Fatalf("no recovery line in clean-restart log:\n%s", finalLog)
	}
	if m[1] != "0" {
		t.Errorf("clean restart replayed %s records, want 0:\n%s", m[1], finalLog)
	}
	_ = daemon.Process.Signal(syscall.SIGTERM)
	_ = daemon.Wait()

	// Determinism: two offline replays of the surviving journal agree.
	one, _, err := wal.Replay(walDir)
	if err != nil {
		t.Fatalf("offline replay: %v", err)
	}
	two, _, err := wal.Replay(walDir)
	if err != nil {
		t.Fatalf("second offline replay: %v", err)
	}
	if !reflect.DeepEqual(one, two) {
		t.Fatal("two replays of the post-soak journal diverged")
	}
	var total int
	for _, st := range one {
		total += len(st.Items)
	}
	fmt.Printf("kill-restart soak: %d kills, %d tenants, %d surviving elements\n", kills, len(one), total)
}
