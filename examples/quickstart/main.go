// Quickstart: a scalable approximate counter in ten lines.
//
// Eight goroutines hammer a MultiCounter with 64 shards; the main goroutine
// then compares an approximate read against the exact total and the
// theoretical deviation envelope.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"repro/dlz"
)

func main() {
	const (
		workers   = 8
		perWorker = 200_000
		shards    = 64 // m; keep m >= C * workers for the paper's guarantee
	)
	// The Topology form of the constructor; dlz.NewMultiCounter(shards) is
	// the fixed-m shorthand, and adding MinM/MaxM + dlz.WithAutoScale here
	// would let the shard count track contention at runtime.
	mc := dlz.NewMultiCounter(shards, dlz.WithTopology(dlz.Topology{InitialM: shards}))

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			h := mc.NewHandle(uint64(id) + 1) // one handle (and seed) per goroutine
			for i := 0; i < perWorker; i++ {
				h.Increment()
			}
		}(w)
	}
	wg.Wait()

	reader := mc.NewHandle(999)
	approx := reader.Read()
	exact := mc.Exact()
	gap := mc.Gap()

	fmt.Printf("exact count:        %d\n", exact)
	fmt.Printf("approximate read:   %d\n", approx)
	diff := int64(approx) - int64(exact)
	if diff < 0 {
		diff = -diff
	}
	fmt.Printf("absolute deviation: %d\n", diff)
	fmt.Printf("max-min shard gap:  %d (Theorem 6.1 keeps this O(log m))\n", gap)
	fmt.Printf("deviation bound:    m * gap = %d\n", uint64(shards)*gap)
	if uint64(diff) > uint64(shards)*gap {
		fmt.Println("WARNING: deviation exceeded m*gap — this should not happen at quiescence")
	}
}
