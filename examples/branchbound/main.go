// Branchbound: parallel best-first branch-and-bound over a MultiQueue —
// the application domain (Karp & Zhang's parallel branch-and-bound) that the
// paper's related work traces relaxed priority scheduling back to.
//
// The instance is a 0/1 knapsack. Nodes are partial decisions; the queue
// orders them by an optimistic upper bound (best-first), inverted into a
// min-priority because the MultiQueue dequeues small priorities first.
// Workers expand nodes, prune against the best complete solution found so
// far (an atomic), and push children. The *relaxation* means a worker may
// expand a node that is not the globally best-bounded one — which costs
// wasted expansions, never correctness: the search is exhaustive modulo
// sound pruning, so the final answer must equal the exact DP optimum.
//
// Run with:
//
//	go run ./examples/branchbound
package main

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/dlz"
	"repro/internal/rng"
)

type item struct {
	weight, value int64
}

// instance generates a random knapsack instance with correlated weights and
// values (the classic hard-ish family).
func instance(n int, seed uint64) ([]item, int64) {
	r := rng.NewXoshiro256(seed)
	items := make([]item, n)
	var total int64
	for i := range items {
		w := int64(r.Uint64n(900)) + 100
		items[i] = item{weight: w, value: w + int64(r.Uint64n(200))}
		total += w
	}
	return items, total / 2
}

// dpOptimum is the exact reference (O(n·W) dynamic program).
func dpOptimum(items []item, cap int64) int64 {
	best := make([]int64, cap+1)
	for _, it := range items {
		for w := cap; w >= it.weight; w-- {
			if v := best[w-it.weight] + it.value; v > best[w] {
				best[w] = v
			}
		}
	}
	return best[cap]
}

// node is a packed partial solution: next item index, used weight, value so
// far. Packed into the queue's 64-bit payload via an arena.
type node struct {
	idx    int32
	weight int64
	value  int64
}

// upperBound is the fractional-knapsack relaxation for a node, assuming
// items are sorted by value density.
func upperBound(items []item, cap int64, nd node) int64 {
	ub := nd.value
	w := nd.weight
	for i := int(nd.idx); i < len(items) && w < cap; i++ {
		it := items[i]
		if w+it.weight <= cap {
			w += it.weight
			ub += it.value
		} else {
			// Fractional fill.
			ub += it.value * (cap - w) / it.weight
			break
		}
	}
	return ub
}

func main() {
	const nItems = 48
	items, cap := instance(nItems, 7)
	// Best-first needs density order for tight fractional bounds.
	sort.Slice(items, func(a, b int) bool {
		return items[a].value*items[b].weight > items[b].value*items[a].weight
	})
	want := dpOptimum(items, cap)

	workers := runtime.GOMAXPROCS(0)
	q := dlz.NewMultiQueue(dlz.MultiQueueConfig{
		Topology: dlz.Topology{InitialM: 8 * workers},
		Capacity: 1 << 14, Seed: 3,
	})

	// Node arena: the queue carries 64-bit values, so nodes live in a
	// mutex-guarded grow-only arena and the queue carries indices.
	var arenaMu sync.Mutex
	arena := make([]node, 0, 1<<16)
	alloc := func(nd node) uint64 {
		arenaMu.Lock()
		arena = append(arena, nd)
		id := uint64(len(arena) - 1)
		arenaMu.Unlock()
		return id
	}
	get := func(id uint64) node {
		arenaMu.Lock()
		nd := arena[id]
		arenaMu.Unlock()
		return nd
	}

	var best atomic.Int64    // best complete value found
	var pending atomic.Int64 // nodes in flight
	var expanded, pruned atomic.Int64

	maxPrio := int64(1) << 40
	push := func(h *dlz.MQHandle, nd node) {
		ub := upperBound(items, cap, nd)
		if ub <= best.Load() {
			pruned.Add(1)
			return
		}
		pending.Add(1)
		h.EnqueuePriority(uint64(maxPrio-ub), alloc(nd))
	}

	seed := q.NewHandle(4)
	pending.Add(1)
	seed.EnqueuePriority(uint64(maxPrio), alloc(node{}))

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			h := q.NewHandle(uint64(id) + 10)
			for {
				it, ok := h.TryDequeue(8)
				if !ok {
					if pending.Load() == 0 {
						return
					}
					if it, ok = h.Dequeue(); !ok {
						if pending.Load() == 0 {
							return
						}
						continue
					}
				}
				nd := get(it.Value)
				expanded.Add(1)
				// Re-check the bound against the current best (it may have
				// improved since this node was pushed).
				if upperBound(items, cap, nd) <= best.Load() {
					pruned.Add(1)
					pending.Add(-1)
					continue
				}
				if int(nd.idx) == len(items) {
					for {
						cur := best.Load()
						if nd.value <= cur || best.CompareAndSwap(cur, nd.value) {
							break
						}
					}
					pending.Add(-1)
					continue
				}
				next := items[nd.idx]
				// Child 1: take the item (if it fits).
				if nd.weight+next.weight <= cap {
					push(h, node{idx: nd.idx + 1, weight: nd.weight + next.weight, value: nd.value + next.value})
				}
				// Child 2: skip the item.
				push(h, node{idx: nd.idx + 1, weight: nd.weight, value: nd.value})
				pending.Add(-1)
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("items: %d, capacity: %d, workers: %d\n", nItems, cap, workers)
	fmt.Printf("expanded: %d nodes, pruned: %d\n", expanded.Load(), pruned.Load())
	fmt.Printf("branch-and-bound optimum: %d\n", best.Load())
	fmt.Printf("dynamic-program optimum:  %d\n", want)
	if best.Load() != want {
		panic("branch-and-bound over the relaxed queue missed the optimum")
	}
	fmt.Println("OK: relaxed best-first search found the exact optimum")
}
