// Stmbank: money transfers over the TL2 software transactional memory, run
// once with the exact fetch-and-add global clock and once with the paper's
// MultiCounter relaxed clock (Section 8).
//
// Workers repeatedly move one unit between two random accounts inside a
// transaction. At the end, the total balance must be exactly conserved under
// both clocks (update transactions always revalidate their read sets), and
// the example prints throughput and abort breakdowns so the two clocks can
// be compared.
//
// Run with:
//
//	go run ./examples/stmbank
package main

import (
	"fmt"
	"sync"

	"repro/internal/rng"
	"repro/internal/stm"
)

const (
	accounts     = 65_536
	initBalance  = 100
	workers      = 4
	opsPerWorker = 20_000
	delta        = 1024 // Δ ≪ accounts/2, per the Section 8 efficiency rule
)

func run(clk stm.Clock) (total uint64, commits, aborts uint64) {
	arr := stm.NewArray(accounts)
	// Fund the accounts transactionally.
	funder := stm.NewTx(arr, clk.NewHandle(1), 1)
	for i := 0; i < accounts; i++ {
		i := i
		if err := funder.Run(func(tx *stm.Tx) error {
			tx.Store(i, initBalance)
			return nil
		}); err != nil {
			panic(err)
		}
	}

	txs := make([]*stm.Tx, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		txs[w] = stm.NewTx(arr, clk.NewHandle(uint64(w)+2), uint64(w)+2)
		go func(w int) {
			defer wg.Done()
			r := rng.NewXoshiro256(uint64(w) + 100)
			tx := txs[w]
			for i := 0; i < opsPerWorker; i++ {
				from, to := r.Intn(accounts), r.Intn(accounts)
				for to == from {
					to = r.Intn(accounts)
				}
				err := tx.Run(func(tx *stm.Tx) error {
					a, err := tx.Load(from)
					if err != nil {
						return err
					}
					b, err := tx.Load(to)
					if err != nil {
						return err
					}
					if a == 0 {
						return nil // insufficient funds; commit as no-op
					}
					tx.Store(from, a-1)
					tx.Store(to, b+1)
					return nil
				})
				if err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()

	for _, tx := range txs {
		commits += tx.Stats.Commits
		aborts += tx.Stats.TotalAborts()
	}
	return arr.Sum(), commits, aborts
}

func main() {
	want := uint64(accounts * initBalance)
	for _, clk := range []stm.Clock{
		stm.NewFAAClock(),
		stm.NewMCClock(64, delta),
	} {
		total, commits, aborts := run(clk)
		status := "OK"
		if total != want {
			status = "VIOLATION"
		}
		fmt.Printf("%-18s total=%d (want %d, %s)  commits=%d aborts=%d (rate %.3f)\n",
			clk.Name(), total, want, status, commits, aborts,
			float64(aborts)/float64(commits+aborts))
		if total != want {
			panic("balance not conserved")
		}
	}
	fmt.Println("Both clocks conserved the total balance; compare abort rates above.")
}
