// Timestamps: using the MultiCounter as a scalable relaxed timestamp oracle
// (the Section 8 use case, stripped of the STM).
//
// Concurrent workers repeatedly draw timestamps while advancing the clock.
// The example measures the oracle's *skew* — how far apart the values
// observed by concurrent readers can be — which is the quantity the TL2
// integration must cover with its Δ slack: any Δ comfortably above the
// observed skew makes the relaxed TL2 safe w.h.p.
//
// Run with:
//
//	go run ./examples/timestamps
package main

import (
	"fmt"
	"sync"

	"repro/dlz"
	"repro/internal/stats"
)

func main() {
	const (
		workers = 8
		rounds  = 50_000
		shards  = 64
	)
	ts := dlz.NewTimestamps(shards)

	var mu sync.Mutex
	skews := stats.NewSample(rounds)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			h := ts.NewHandle(uint64(id) + 1)
			local := stats.NewSample(rounds / workers)
			for i := 0; i < rounds/workers; i++ {
				// Advance the clock, then measure how two back-to-back
				// samples disagree — a lower bound on concurrent skew.
				h.Tick()
				a := h.Sample()
				b := h.Sample()
				d := int64(a) - int64(b)
				if d < 0 {
					d = -d
				}
				local.AddInt(int(d))
			}
			mu.Lock()
			skews.Merge(local)
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	exact := ts.Counter().Exact()
	gap := ts.Counter().Gap()
	fmt.Printf("clock advanced:        %d ticks\n", exact)
	fmt.Printf("shard gap at the end:  %d\n", gap)
	fmt.Printf("sample skew    mean:   %.1f\n", skews.Mean())
	fmt.Printf("sample skew    p99:    %.0f\n", skews.Quantile(0.99))
	fmt.Printf("sample skew    max:    %.0f\n", skews.Max())
	fmt.Printf("suggested TL2 delta:   %d (≥ 4x max observed skew)\n", 4*uint64(skews.Max())+uint64(shards))
}
