// Scheduler: parallel single-source shortest paths with a MultiQueue used as
// a relaxed concurrent priority scheduler — the workload class (graph
// processing) that motivates relaxed priority queues in the paper's
// introduction.
//
// The algorithm is label-correcting Dijkstra: workers pop (distance, node)
// entries from the relaxed queue, skip stale ones, relax outgoing edges with
// a CAS on the distance array, and push improved entries. Correctness does
// not depend on the queue's exactness — every pushed entry is eventually
// popped — but *work efficiency* does: the relaxation makes some pops stale
// (their distance has already been improved), and the O(m log m) rank bound
// keeps that waste small. The example verifies the parallel distances
// against a sequential Dijkstra and reports the wasted-pop rate.
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/dlz"
	"repro/internal/heap"
	"repro/internal/rng"
)

type edge struct {
	to uint32
	w  uint32
}

// randomGraph builds a connected directed graph: a random spine 0→1→…→n-1
// plus extra uniformly random edges, with weights in [1, maxW].
func randomGraph(n, extraEdges int, maxW uint32, seed uint64) [][]edge {
	r := rng.NewXoshiro256(seed)
	adj := make([][]edge, n)
	for v := 1; v < n; v++ {
		adj[v-1] = append(adj[v-1], edge{to: uint32(v), w: uint32(r.Uint64n(uint64(maxW))) + 1})
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		adj[u] = append(adj[u], edge{to: uint32(v), w: uint32(r.Uint64n(uint64(maxW))) + 1})
	}
	return adj
}

// sequentialDijkstra is the exact reference.
func sequentialDijkstra(adj [][]edge, src int) []uint64 {
	dist := make([]uint64, len(adj))
	for i := range dist {
		dist[i] = math.MaxUint64
	}
	dist[src] = 0
	pq := heap.NewBinary(len(adj))
	pq.Push(heap.Item{Priority: 0, Value: uint64(src)})
	for {
		it, ok := pq.Pop()
		if !ok {
			break
		}
		u := int(it.Value)
		if it.Priority > dist[u] {
			continue
		}
		for _, e := range adj[u] {
			if nd := dist[u] + uint64(e.w); nd < dist[e.to] {
				dist[e.to] = nd
				pq.Push(heap.Item{Priority: nd, Value: uint64(e.to)})
			}
		}
	}
	return dist
}

func main() {
	const (
		n          = 100_000
		extraEdges = 400_000
		maxW       = 1000
		src        = 0
	)
	workers := runtime.GOMAXPROCS(0)
	adj := randomGraph(n, extraEdges, maxW, 1)

	// Parallel label-correcting SSSP over the relaxed queue.
	dist := make([]atomic.Uint64, n)
	for i := range dist {
		dist[i].Store(math.MaxUint64)
	}
	dist[src].Store(0)

	q := dlz.NewMultiQueue(dlz.MultiQueueConfig{
		Topology: dlz.Topology{InitialM: 8 * workers},
		Capacity: 4096, Seed: 2,
	})
	var pending atomic.Int64
	var pops, stale atomic.Int64

	seedQ := q.NewHandle(3)
	pending.Add(1)
	seedQ.EnqueuePriority(0, uint64(src))

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			h := q.NewHandle(uint64(id) + 10)
			for {
				it, ok := h.TryDequeue(8)
				if !ok {
					if pending.Load() == 0 {
						return
					}
					it, ok = h.Dequeue()
					if !ok {
						if pending.Load() == 0 {
							return
						}
						continue
					}
				}
				pops.Add(1)
				u := int(it.Value & 0xffffffff)
				d := it.Priority
				if d > dist[u].Load() {
					stale.Add(1)
					pending.Add(-1)
					continue
				}
				for _, e := range adj[u] {
					nd := d + uint64(e.w)
					for {
						cur := dist[e.to].Load()
						if nd >= cur {
							break
						}
						if dist[e.to].CompareAndSwap(cur, nd) {
							pending.Add(1)
							h.EnqueuePriority(nd, uint64(e.to))
							break
						}
					}
				}
				pending.Add(-1)
			}
		}(w)
	}
	wg.Wait()

	// Verify against the exact sequential result.
	ref := sequentialDijkstra(adj, src)
	mismatches := 0
	for v := 0; v < n; v++ {
		if dist[v].Load() != ref[v] {
			mismatches++
		}
	}
	fmt.Printf("nodes: %d, edges: ~%d, workers: %d\n", n, n-1+extraEdges, workers)
	fmt.Printf("pops: %d (stale/wasted: %d = %.2f%%)\n",
		pops.Load(), stale.Load(), 100*float64(stale.Load())/float64(pops.Load()))
	fmt.Printf("distance mismatches vs sequential Dijkstra: %d\n", mismatches)
	if mismatches != 0 {
		panic("relaxed SSSP produced wrong distances")
	}
	fmt.Println("OK: relaxed scheduling preserved exact shortest paths")
}
