// Package repro reproduces "Distributionally Linearizable Data Structures"
// (Alistarh, Brown, Kopinsky, Li, Nadiradze, SPAA 2018): the MultiCounter
// and MultiQueue relaxed concurrent data structures, the distributional
// linearizability framework, the concurrent two-choice load-balancing
// analysis apparatus, and the TL2 software transactional memory application.
//
// The public API lives in repro/dlz. Substrates live under repro/internal
// (one package per subsystem; see DESIGN.md for the inventory). Benchmarks
// regenerating every figure of the paper's evaluation are in bench_test.go
// and the cmd/ tools; EXPERIMENTS.md records paper-vs-measured results.
package repro
