package dlz_test

import (
	"sync"
	"testing"

	"repro/dlz"
)

// The dlz tests exercise the public API exactly the way the README tells a
// downstream user to use it.

func TestMultiCounterPublicAPI(t *testing.T) {
	mc := dlz.NewMultiCounter(64)
	var wg sync.WaitGroup
	const workers, per = 4, 10_000
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			h := mc.NewHandle(uint64(id) + 1)
			for i := 0; i < per; i++ {
				h.Increment()
			}
		}(w)
	}
	wg.Wait()
	if mc.Exact() != workers*per {
		t.Fatalf("Exact = %d", mc.Exact())
	}
	h := mc.NewHandle(999)
	v := h.Read()
	diff := int64(v) - int64(workers*per)
	if diff < 0 {
		diff = -diff
	}
	if uint64(diff) > uint64(64)*mc.Gap()+64 {
		t.Fatalf("read %d deviates beyond m*gap from %d", v, workers*per)
	}
}

func TestMultiCounterChoicesOption(t *testing.T) {
	mc := dlz.NewMultiCounter(16, dlz.WithChoices(4))
	h := mc.NewHandle(1)
	for i := 0; i < 1000; i++ {
		h.Increment()
	}
	if mc.Exact() != 1000 {
		t.Fatal("increments lost")
	}
}

func TestMultiCounterConfigPublicAPI(t *testing.T) {
	// The amortised fast-path knobs must be reachable through the public
	// config, and the batched contract (Flush before quiescent audits) must
	// hold end to end.
	mc := dlz.NewMultiCounterConfig(dlz.MultiCounterConfig{
		Counters: 32, Choices: 4, Stickiness: 8, Batch: 8,
	})
	if mc.Choices() != 4 || mc.Stickiness() != 8 || mc.Batch() != 8 {
		t.Fatalf("knobs not plumbed: d=%d s=%d k=%d", mc.Choices(), mc.Stickiness(), mc.Batch())
	}
	h := mc.NewHandle(1)
	const n = 1003 // not a multiple of the batch: Flush publishes a partial
	for i := 0; i < n; i++ {
		h.Increment()
	}
	if got := int(mc.Exact()) + h.Buffered(); got != n {
		t.Fatalf("Exact+Buffered = %d mid-run, want %d", got, n)
	}
	h.Flush()
	if h.Buffered() != 0 || h.BufferedWeight() != 0 {
		t.Fatal("buffer not empty after Flush")
	}
	if mc.Exact() != n {
		t.Fatalf("Exact = %d after Flush, want %d", mc.Exact(), n)
	}
}

func TestMultiCounterOptionsPublicAPI(t *testing.T) {
	mc := dlz.NewMultiCounter(16, dlz.WithStickiness(4), dlz.WithBatch(4))
	if mc.Stickiness() != 4 || mc.Batch() != 4 {
		t.Fatalf("options not plumbed: s=%d k=%d", mc.Stickiness(), mc.Batch())
	}
	h := mc.NewHandle(2)
	for i := 0; i < 100; i++ {
		h.Increment()
	}
	h.Flush()
	if mc.Exact() != 100 {
		t.Fatalf("Exact = %d", mc.Exact())
	}
}

func TestMultiQueueChoicesPublicAPI(t *testing.T) {
	q := dlz.NewMultiQueue(dlz.MultiQueueConfig{Queues: 8, Seed: 11, Choices: 4})
	if q.Choices() != 4 {
		t.Fatalf("Choices = %d", q.Choices())
	}
	h := q.NewHandle(1)
	for v := uint64(0); v < 200; v++ {
		h.Enqueue(v)
	}
	drained := 0
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
		drained++
	}
	if drained != 200 {
		t.Fatalf("drained %d", drained)
	}
}

func TestMultiQueuePublicAPI(t *testing.T) {
	for _, backing := range []dlz.MultiQueueConfig{
		{Queues: 8, Backing: dlz.BackingBinary},
		{Queues: 8, Backing: dlz.BackingPairing},
		{Queues: 8, Backing: dlz.BackingSkiplist},
		{Queues: 8, Backing: dlz.BackingDAry},
		{Queues: 8, Backing: dlz.BackingDAry, Stickiness: 4, Batch: 4},
	} {
		q := dlz.NewMultiQueue(backing)
		h := q.NewHandle(7)
		for v := uint64(0); v < 300; v++ {
			h.Enqueue(v)
		}
		drained := 0
		for {
			if _, ok := h.Dequeue(); !ok {
				break
			}
			drained++
		}
		if drained != 300 {
			t.Fatalf("drained %d", drained)
		}
	}
}

func TestTimestampsPublicAPI(t *testing.T) {
	ts := dlz.NewTimestamps(32)
	h := ts.NewHandle(3)
	before := h.Sample()
	for i := 0; i < 3200; i++ {
		h.Tick()
	}
	if h.Sample() <= before {
		t.Fatal("oracle did not advance")
	}
}

func TestMultiQueueStickyBatchedPublicAPI(t *testing.T) {
	// The sticky/batched fast-path knobs must be reachable through the
	// public config, and the batched contract (Flush before quiescent
	// audits) must hold end to end.
	q := dlz.NewMultiQueue(dlz.MultiQueueConfig{
		Queues: 8, Seed: 5, Stickiness: 8, Batch: 8,
	})
	if q.Stickiness() != 8 || q.Batch() != 8 {
		t.Fatalf("knobs not plumbed: stickiness=%d batch=%d", q.Stickiness(), q.Batch())
	}
	h := q.NewHandle(7)
	const n = 300
	for v := uint64(0); v < n; v++ {
		h.Enqueue(v)
	}
	h.Flush()
	if h.Buffered() != 0 {
		t.Fatalf("Buffered = %d after Flush", h.Buffered())
	}
	if q.Len() != n {
		t.Fatalf("Len = %d after Flush, want %d", q.Len(), n)
	}
	drainer := q.NewHandle(9)
	seen := map[uint64]bool{}
	for {
		it, ok := drainer.Dequeue()
		if !ok {
			break
		}
		if seen[it.Value] {
			t.Fatalf("value %d dequeued twice", it.Value)
		}
		seen[it.Value] = true
	}
	if len(seen) != n {
		t.Fatalf("drained %d, want %d", len(seen), n)
	}
}

func TestAffinityPublicAPI(t *testing.T) {
	// The shard-affinity axis must be reachable through both public config
	// surfaces, and conservation must hold end to end with stripe-local
	// choices: every increment published, every element drained.
	mc := dlz.NewMultiCounter(32, dlz.WithAffinity(0.25), dlz.WithStickiness(8), dlz.WithBatch(8))
	if mc.Affinity() != 0.25 {
		t.Fatalf("Affinity = %v, want 0.25", mc.Affinity())
	}
	h := mc.NewHandle(1)
	for i := 0; i < 1000; i++ {
		h.Increment()
	}
	h.Flush()
	if mc.Exact() != 1000 {
		t.Fatalf("Exact = %d after flush, want 1000", mc.Exact())
	}

	q := dlz.NewMultiQueue(dlz.MultiQueueConfig{
		Queues: 32, Stickiness: 8, Batch: 8, Affinity: 0.25, Seed: 9,
	})
	if q.Affinity() != 0.25 {
		t.Fatalf("queue Affinity = %v, want 0.25", q.Affinity())
	}
	qh := q.NewHandle(1)
	const n = 500
	for v := uint64(0); v < n; v++ {
		qh.Enqueue(v)
	}
	seen := map[uint64]bool{}
	for {
		it, ok := qh.Dequeue()
		if !ok {
			break
		}
		if seen[it.Value] {
			t.Fatalf("value %d drained twice", it.Value)
		}
		seen[it.Value] = true
	}
	if len(seen) != n {
		t.Fatalf("drained %d values, want %d", len(seen), n)
	}
}
