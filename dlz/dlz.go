// Package dlz is the public API of this repository: distributionally
// linearizable relaxed concurrent data structures from "Distributionally
// Linearizable Data Structures" (Alistarh, Brown, Kopinsky, Li, Nadiradze,
// SPAA 2018).
//
// Three structures are exported:
//
//   - MultiCounter — a scalable approximate counter (Algorithm 1). Reads are
//     within O(m·log m) of the true increment count, in expectation and
//     w.h.p., provided the shard count m is a large constant multiple of the
//     thread count (Theorem 6.1). MultiCounterConfig{Choices, Stickiness,
//     Batch} enables d-choice sampling and the amortised fast path: handles
//     stick to their sampled shards for Stickiness consecutive increments
//     and publish Batch increments with one shared atomic add. Batched
//     handles must call Handle.Flush before quiescent audits (Exact, Gap,
//     Snapshot); cmd/quality re-measures the deviation of any setting
//     against the envelope.
//   - MultiQueue — a relaxed FIFO/priority queue (Algorithm 2). Dequeues
//     return an element of rank O(m) in expectation and O(m·log m) w.h.p.
//     (Theorem 7.1). MultiQueueConfig.Choices generalizes the two-choice
//     dequeue to d choices, and Stickiness and Batch enable the
//     sticky/batched fast path: a handle re-uses its random queue choices
//     for Stickiness consecutive operations and moves elements in and out in
//     batches of Batch with one lock acquisition per batch. Affinity biases
//     each handle's dequeue choices toward a per-handle home stripe of
//     queues for cache/NUMA locality (0 = uniform). Located inserts
//     (MQHandle.EnqueuePriorityRef) return an ElemRef for later
//     Remove/Replace — lazy-tombstone interior removal for policies like
//     replace-by-fee and capacity eviction (repro/internal/mempool is the
//     worked example). Batched handles
//     must call MQHandle.Flush before quiescent audits (Len, Sizes,
//     cross-handle drains); cmd/quality -queue re-measures the rank-error
//     distribution for any (Choices, Stickiness, Batch, Affinity) setting
//     against the O(m·log m) envelope.
//   - Timestamps — a relaxed timestamp oracle built on the MultiCounter,
//     the drop-in replacement for fetch-and-add global clocks evaluated on
//     TL2 in the paper's Section 8 (see repro/internal/stm for the STM).
//
// # Usage
//
// All structures are driven through per-goroutine handles carrying private
// PRNG state; create one handle per worker with a distinct seed:
//
//	mc := dlz.NewMultiCounter(64 * runtime.GOMAXPROCS(0))
//	go func(id int) {
//		h := mc.NewHandle(uint64(id) + 1)
//		h.Increment()
//		approx := h.Read()
//		_ = approx
//	}(0)
//
// # Elastic capacity (migrating from fixed m)
//
// Both structures now size themselves through a shared Topology — initial,
// minimum and maximum live shard counts plus an optional contention-driven
// AutoScale controller — instead of a frozen constructor argument. The
// fixed-m forms keep working unchanged (a zero Topology pins
// MinM = MaxM = m), so existing code needs no edits; code that wants
// elasticity migrates like this:
//
//	// before: frozen shard count
//	q := dlz.NewMultiQueue(dlz.MultiQueueConfig{Queues: 64})
//	// after: start at 64, resizable in [16, 256], manual control
//	q = dlz.NewMultiQueue(dlz.MultiQueueConfig{
//		Topology: dlz.Topology{InitialM: 64, MinM: 16, MaxM: 256},
//	})
//	q.Resize(128) // returns the count actually in effect
//	// or hand control to the contention-driven controller:
//	q = dlz.NewMultiQueue(dlz.MultiQueueConfig{
//		Topology: dlz.Topology{InitialM: 64, MinM: 16, MaxM: 256,
//			AutoScale: &dlz.AutoScale{}}, // zero value = default policy
//	})
//	go func() { // a pacer goroutine ticks the controller
//		for range time.Tick(100 * time.Millisecond) {
//			q.AutoScaleTick()
//		}
//	}()
//
// The MultiCounter mirrors this with dlz.WithTopology/dlz.WithAutoScale
// options (its AutoScaleTick takes the caller's pressure signal — counter
// updates are wait-free and expose no contention of their own). Resizes are
// epoch-published: handles notice a flip with one atomic load and re-seed
// in place, outstanding ElemRefs survive shrinks through an internal
// forwarding table, and MultiQueue.Stats/MultiCounter.Stats report
// CurrentM/Epoch/Resizes (DESIGN.md §11).
//
// The implementation lives in repro/internal/core; this package pins the
// stable names a downstream user imports.
package dlz

import (
	"repro/internal/core"
	"repro/internal/cpq"
)

// MultiCounter is the relaxed approximate counter of Algorithm 1.
type MultiCounter = core.MultiCounter

// MultiCounterConfig configures NewMultiCounterConfig: shard count m plus
// the Choices/Stickiness/Batch fast-path axes (zero values select the
// paper's per-op two-choice defaults).
type MultiCounterConfig = core.MultiCounterConfig

// MultiCounterOption adjusts the convenience constructor NewMultiCounter.
type MultiCounterOption = core.MultiCounterOption

// Handle is a per-goroutine view of a MultiCounter. In batched mode it owns
// the increment buffer; call Handle.Flush at quiescence.
type Handle = core.Handle

// MultiQueue is the relaxed queue of Algorithm 2.
type MultiQueue = core.MultiQueue

// MQHandle is a per-goroutine view of a MultiQueue.
type MQHandle = core.MQHandle

// ElemRef locates one resident MultiQueue element for later
// MQHandle.Remove/Replace (lazy-tombstone interior removal, DESIGN.md §9):
// issued by MQHandle.EnqueuePriorityRef, valid until the element leaves the
// structure. Callers must track residency themselves — see the ElemRef
// contract in repro/internal/core and the mempool package for the canonical
// usage.
type ElemRef = core.ElemRef

// MultiQueueConfig configures NewMultiQueue.
type MultiQueueConfig = core.MultiQueueConfig

// Topology is the shared elastic capacity surface of both structures:
// initial/min/max live shard counts plus the optional AutoScale controller.
// Embedded in MultiQueueConfig and MultiCounterConfig; the zero value keeps
// the deprecated fixed-m behavior.
type Topology = core.Topology

// AutoScale configures the contention-driven resize controller (thresholds
// and dwell; the zero value selects the default policy).
type AutoScale = core.AutoScale

// MQStats aggregates a MultiQueue's event counters and elasticity signals
// (CurrentM/Epoch/Resizes) — the snapshot dlzd exports per tenant.
type MQStats = core.MQStats

// MCStats carries a MultiCounter's elasticity signals.
type MCStats = core.MCStats

// Timestamps is the MultiCounter-backed relaxed timestamp oracle.
type Timestamps = core.Timestamps

// TSHandle is a per-goroutine view of a Timestamps oracle.
type TSHandle = core.TSHandle

// Queue backings for MultiQueueConfig.Backing (ablation A4).
const (
	// BackingBinary stores each internal queue in a binary heap (default).
	BackingBinary = cpq.BackingBinary
	// BackingPairing stores each internal queue in a pairing heap.
	BackingPairing = cpq.BackingPairing
	// BackingSkiplist stores each internal queue in a skiplist.
	BackingSkiplist = cpq.BackingSkiplist
	// BackingDAry stores each internal queue in a cache-line-aligned 4-ary
	// heap with bulk batch operations — the fastest backing for the batched
	// fast path (DESIGN.md §5).
	BackingDAry = cpq.BackingDAry
)

// NewMultiCounter returns a MultiCounter over m atomic counters with the
// paper's per-op two-choice defaults, adjusted by opts. For the paper's
// guarantees m should be a large constant multiple of the number of
// concurrent threads; in practice m ≈ 4–8× threads already balances well
// (Figure 1a).
func NewMultiCounter(m int, opts ...MultiCounterOption) *MultiCounter {
	return core.NewMultiCounter(m, opts...)
}

// NewMultiCounterConfig returns a MultiCounter with the full configuration,
// including the d-choice and sticky/batched fast-path axes.
func NewMultiCounterConfig(cfg MultiCounterConfig) *MultiCounter {
	return core.NewMultiCounterConfig(cfg)
}

// WithChoices sets the number of random choices d per increment (default 2).
var WithChoices = core.WithChoices

// WithStickiness sets the sticky sampling window s (default 1: fresh choices
// every increment).
var WithStickiness = core.WithStickiness

// WithBatch sets the number of increments a handle buffers per shared atomic
// publish (default 1: per-operation publishing).
var WithBatch = core.WithBatch

// WithAffinity sets the shard-affinity fraction a ∈ [0, 1]: each handle's
// sticky d-choice sampler draws d−1 candidates from its own home stripe of
// max(d, ⌈a·m⌉) contiguous shards (plus one uniform escape candidate), so
// repeated choices stay on warm cache/NUMA-local lines. Default 0: uniform
// choices, the paper's assumption. The MultiQueue counterpart is
// MultiQueueConfig.Affinity.
var WithAffinity = core.WithAffinity

// WithTopology sets the MultiCounter's elastic capacity surface (see the
// package comment's migration note). The MultiQueue counterpart is
// MultiQueueConfig.Topology.
var WithTopology = core.WithTopology

// WithAutoScale bounds the MultiCounter's live shard count to [minM, maxM]
// and enables the contention-driven controller. The MultiQueue counterpart
// is Topology.AutoScale in MultiQueueConfig.Topology.
var WithAutoScale = core.WithAutoScale

// NewMultiQueue returns a MultiQueue with the given configuration.
func NewMultiQueue(cfg MultiQueueConfig) *MultiQueue { return core.NewMultiQueue(cfg) }

// NewTimestamps returns a relaxed timestamp oracle over m shards.
func NewTimestamps(m int) *Timestamps { return core.NewTimestamps(m) }
