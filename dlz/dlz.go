// Package dlz is the public API of this repository: distributionally
// linearizable relaxed concurrent data structures from "Distributionally
// Linearizable Data Structures" (Alistarh, Brown, Kopinsky, Li, Nadiradze,
// SPAA 2018).
//
// Three structures are exported:
//
//   - MultiCounter — a scalable approximate counter (Algorithm 1). Reads are
//     within O(m·log m) of the true increment count, in expectation and
//     w.h.p., provided the shard count m is a large constant multiple of the
//     thread count (Theorem 6.1).
//   - MultiQueue — a relaxed FIFO/priority queue (Algorithm 2). Dequeues
//     return an element of rank O(m) in expectation and O(m·log m) w.h.p.
//     (Theorem 7.1). MultiQueueConfig.Stickiness and MultiQueueConfig.Batch
//     enable the sticky/batched fast path: a handle re-uses its random queue
//     choices for Stickiness consecutive operations and moves elements in
//     and out in batches of Batch with one lock acquisition per batch.
//     Batched handles must call MQHandle.Flush before quiescent audits
//     (Len, Sizes, cross-handle drains); cmd/quality -queue re-measures the
//     rank-error distribution for any (Stickiness, Batch) setting against
//     the O(m·log m) envelope.
//   - Timestamps — a relaxed timestamp oracle built on the MultiCounter,
//     the drop-in replacement for fetch-and-add global clocks evaluated on
//     TL2 in the paper's Section 8 (see repro/internal/stm for the STM).
//
// # Usage
//
// All structures are driven through per-goroutine handles carrying private
// PRNG state; create one handle per worker with a distinct seed:
//
//	mc := dlz.NewMultiCounter(64 * runtime.GOMAXPROCS(0))
//	go func(id int) {
//		h := mc.NewHandle(uint64(id) + 1)
//		h.Increment()
//		approx := h.Read()
//		_ = approx
//	}(0)
//
// The implementation lives in repro/internal/core; this package pins the
// stable names a downstream user imports.
package dlz

import (
	"repro/internal/core"
	"repro/internal/cpq"
)

// MultiCounter is the relaxed approximate counter of Algorithm 1.
type MultiCounter = core.MultiCounter

// Handle is a per-goroutine view of a MultiCounter.
type Handle = core.Handle

// MultiQueue is the relaxed queue of Algorithm 2.
type MultiQueue = core.MultiQueue

// MQHandle is a per-goroutine view of a MultiQueue.
type MQHandle = core.MQHandle

// MultiQueueConfig configures NewMultiQueue.
type MultiQueueConfig = core.MultiQueueConfig

// Timestamps is the MultiCounter-backed relaxed timestamp oracle.
type Timestamps = core.Timestamps

// TSHandle is a per-goroutine view of a Timestamps oracle.
type TSHandle = core.TSHandle

// Queue backings for MultiQueueConfig.Backing (ablation A4).
const (
	// BackingBinary stores each internal queue in a binary heap (default).
	BackingBinary = cpq.BackingBinary
	// BackingPairing stores each internal queue in a pairing heap.
	BackingPairing = cpq.BackingPairing
	// BackingSkiplist stores each internal queue in a skiplist.
	BackingSkiplist = cpq.BackingSkiplist
)

// NewMultiCounter returns a MultiCounter over m atomic counters. For the
// paper's guarantees m should be a large constant multiple of the number of
// concurrent threads; in practice m ≈ 4–8× threads already balances well
// (Figure 1a).
func NewMultiCounter(m int, opts ...core.MultiCounterOption) *MultiCounter {
	return core.NewMultiCounter(m, opts...)
}

// WithChoices sets the number of random choices d per increment (default 2).
var WithChoices = core.WithChoices

// NewMultiQueue returns a MultiQueue with the given configuration.
func NewMultiQueue(cfg MultiQueueConfig) *MultiQueue { return core.NewMultiQueue(cfg) }

// NewTimestamps returns a relaxed timestamp oracle over m shards.
func NewTimestamps(m int) *Timestamps { return core.NewTimestamps(m) }
