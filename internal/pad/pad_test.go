package pad

import (
	"runtime"
	"sync"
	"testing"
	"unsafe"
)

func TestPaddedSizes(t *testing.T) {
	if s := unsafe.Sizeof(Uint64{}); s != CacheLine {
		t.Fatalf("Uint64 size %d, want %d", s, CacheLine)
	}
	if s := unsafe.Sizeof(Int64{}); s != CacheLine {
		t.Fatalf("Int64 size %d, want %d", s, CacheLine)
	}
	if s := unsafe.Sizeof(Bool{}); s != CacheLine {
		t.Fatalf("Bool size %d, want %d", s, CacheLine)
	}
	if s := unsafe.Sizeof(SpinLock{}); s != CacheLine {
		t.Fatalf("SpinLock size %d, want %d", s, CacheLine)
	}
	if s := unsafe.Sizeof(Seq64{}); s != CacheLine {
		t.Fatalf("Seq64 size %d, want %d", s, CacheLine)
	}
}

func TestUint64Ops(t *testing.T) {
	var u Uint64
	if u.Load() != 0 {
		t.Fatal("zero value not 0")
	}
	u.Store(5)
	if u.Load() != 5 {
		t.Fatal("Store/Load mismatch")
	}
	if u.Add(3) != 8 {
		t.Fatal("Add result wrong")
	}
	if !u.CompareAndSwap(8, 10) || u.Load() != 10 {
		t.Fatal("CAS should succeed")
	}
	if u.CompareAndSwap(8, 11) {
		t.Fatal("CAS with stale old should fail")
	}
}

func TestInt64Ops(t *testing.T) {
	var v Int64
	v.Store(-4)
	if v.Add(1) != -3 {
		t.Fatal("Add on negative failed")
	}
	if !v.CompareAndSwap(-3, 7) || v.Load() != 7 {
		t.Fatal("CAS failed")
	}
}

func TestBoolOps(t *testing.T) {
	var b Bool
	if b.Load() {
		t.Fatal("zero value not false")
	}
	b.Store(true)
	if !b.Load() {
		t.Fatal("Store(true) not visible")
	}
	if !b.CompareAndSwap(true, false) || b.Load() {
		t.Fatal("CAS failed")
	}
}

func TestUint64ConcurrentAdd(t *testing.T) {
	var u Uint64
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u.Add(1)
			}
		}()
	}
	wg.Wait()
	if u.Load() != workers*perWorker {
		t.Fatalf("lost updates: %d != %d", u.Load(), workers*perWorker)
	}
}

func TestSeq64Protocol(t *testing.T) {
	var s Seq64
	if p, inflight := s.Load(); p != 0 || inflight {
		t.Fatalf("zero value = (%d, %v), want stable 0", p, inflight)
	}
	s.Init(42)
	if p, inflight := s.Load(); p != 42 || inflight {
		t.Fatalf("after Init = (%d, %v), want stable 42", p, inflight)
	}
	if s.Seq() != 0 {
		t.Fatalf("Init left seq %d, want 0", s.Seq())
	}
	s.Begin()
	if p, inflight := s.Load(); p != 42 || !inflight {
		t.Fatalf("after Begin = (%d, %v), want in-flight 42 (stale payload retained)", p, inflight)
	}
	s.Begin() // double Begin is harmless: still mid-update, payload intact
	if p, inflight := s.Load(); p != 42 || !inflight {
		t.Fatalf("after double Begin = (%d, %v)", p, inflight)
	}
	s.Publish(7)
	if p, inflight := s.Load(); p != 7 || inflight {
		t.Fatalf("after Publish = (%d, %v), want stable 7", p, inflight)
	}
	if s.Seq() != 2 {
		t.Fatalf("one Begin/Publish pair advanced seq to %d, want 2", s.Seq())
	}
	// Publish without Begin still lands on an even sequence.
	s.Publish(9)
	if p, inflight := s.Load(); p != 9 || inflight {
		t.Fatalf("Publish without Begin = (%d, %v), want stable 9", p, inflight)
	}
	if s.Seq() != 4 {
		t.Fatalf("seq = %d, want 4", s.Seq())
	}
}

func TestSeq64PayloadWidthAndWrap(t *testing.T) {
	var s Seq64
	// The full 49-bit payload round-trips.
	max := uint64(1)<<(64-SeqBits) - 1
	s.Publish(max)
	if p, _ := s.Load(); p != max {
		t.Fatalf("payload %d round-tripped as %d", max, p)
	}
	// The sequence wraps inside its field without corrupting the payload.
	for i := 0; i < (1<<SeqBits)/2+3; i++ {
		s.Begin()
		s.Publish(max)
	}
	if p, inflight := s.Load(); p != max || inflight {
		t.Fatalf("after wrap = (%d, %v), want stable %d", p, inflight, max)
	}
	if s.Seq()&1 != 0 {
		t.Fatalf("wrapped seq %d is odd", s.Seq())
	}
}

// TestSeq64ReadersNeverTear hammers a Seq64 with one writer republishing a
// recognizable payload and many readers: a reader must only ever observe
// published payloads (never a mixture), and an in-flight load must still
// carry the previous payload.
func TestSeq64ReadersNeverTear(t *testing.T) {
	var s Seq64
	const readers = 4
	const rounds = 20000
	s.Init(1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, _ := s.Load()
				// Payloads are always odd numbers; an even observation is a
				// torn or invented value.
				if p%2 == 0 {
					panic("torn payload")
				}
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		s.Begin()
		s.Publish(uint64(2*i + 3))
	}
	close(stop)
	wg.Wait()
}

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	counter := 0
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Lock()
				counter++ // unsynchronized except for the lock
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*perWorker {
		t.Fatalf("mutual exclusion violated: %d != %d", counter, workers*perWorker)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	if !l.Locked() {
		t.Fatal("Locked() false while held")
	}
	l.Unlock()
	if l.Locked() {
		t.Fatal("Locked() true after Unlock")
	}
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestSpinLockUnlockPanics(t *testing.T) {
	var l SpinLock
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked SpinLock did not panic")
		}
	}()
	l.Unlock()
}

func TestBackoffSchedule(t *testing.T) {
	var b Backoff
	if b.Yielding() {
		t.Fatal("zero-value Backoff already yielding")
	}
	// The spin budget doubles from backoffMinSpins and must saturate into
	// the yield stage within a handful of pauses, then stay there.
	for i := 0; i < 12 && !b.Yielding(); i++ {
		b.Pause()
	}
	if !b.Yielding() {
		t.Fatal("Backoff never escalated to yielding")
	}
	b.Pause() // yield path must not panic or reset
	if !b.Yielding() {
		t.Fatal("Backoff left the yield stage without Reset")
	}
	b.Reset()
	if b.Yielding() {
		t.Fatal("Reset did not rewind the schedule")
	}
}

func TestSpinLockContendedHandoff(t *testing.T) {
	// A held lock forces Lock through the full backoff schedule (spin
	// stage, then Gosched escalation) before the release lets it through.
	var l SpinLock
	l.Lock()
	done := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		close(done)
	}()
	// Give the waiter time to reach the yield stage even on one CPU.
	for i := 0; i < 1000; i++ {
		runtime.Gosched()
	}
	l.Unlock()
	<-done
}

func TestSpinLockContendedCounter(t *testing.T) {
	var l SpinLock
	l.Lock()
	l.Unlock()
	if got := l.Contended(); got != 0 {
		t.Fatalf("uncontended acquire must not count: Contended=%d", got)
	}
	if !l.TryLock() {
		t.Fatal("TryLock on a free lock failed")
	}
	done := make(chan struct{})
	go func() {
		l.Lock() // held by the main goroutine: must enter the slow path
		l.Unlock()
		close(done)
	}()
	for l.Contended() == 0 {
		runtime.Gosched()
	}
	l.Unlock()
	<-done
	if got := l.Contended(); got != 1 {
		t.Fatalf("exactly one acquire entered the slow path: Contended=%d", got)
	}
}

func BenchmarkSpinLockUncontended(b *testing.B) {
	var l SpinLock
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}
