package pad

import (
	"runtime"
	"sync"
	"testing"
	"unsafe"
)

func TestPaddedSizes(t *testing.T) {
	if s := unsafe.Sizeof(Uint64{}); s != CacheLine {
		t.Fatalf("Uint64 size %d, want %d", s, CacheLine)
	}
	if s := unsafe.Sizeof(Int64{}); s != CacheLine {
		t.Fatalf("Int64 size %d, want %d", s, CacheLine)
	}
	if s := unsafe.Sizeof(Bool{}); s != CacheLine {
		t.Fatalf("Bool size %d, want %d", s, CacheLine)
	}
	if s := unsafe.Sizeof(SpinLock{}); s != CacheLine {
		t.Fatalf("SpinLock size %d, want %d", s, CacheLine)
	}
}

func TestUint64Ops(t *testing.T) {
	var u Uint64
	if u.Load() != 0 {
		t.Fatal("zero value not 0")
	}
	u.Store(5)
	if u.Load() != 5 {
		t.Fatal("Store/Load mismatch")
	}
	if u.Add(3) != 8 {
		t.Fatal("Add result wrong")
	}
	if !u.CompareAndSwap(8, 10) || u.Load() != 10 {
		t.Fatal("CAS should succeed")
	}
	if u.CompareAndSwap(8, 11) {
		t.Fatal("CAS with stale old should fail")
	}
}

func TestInt64Ops(t *testing.T) {
	var v Int64
	v.Store(-4)
	if v.Add(1) != -3 {
		t.Fatal("Add on negative failed")
	}
	if !v.CompareAndSwap(-3, 7) || v.Load() != 7 {
		t.Fatal("CAS failed")
	}
}

func TestBoolOps(t *testing.T) {
	var b Bool
	if b.Load() {
		t.Fatal("zero value not false")
	}
	b.Store(true)
	if !b.Load() {
		t.Fatal("Store(true) not visible")
	}
	if !b.CompareAndSwap(true, false) || b.Load() {
		t.Fatal("CAS failed")
	}
}

func TestUint64ConcurrentAdd(t *testing.T) {
	var u Uint64
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u.Add(1)
			}
		}()
	}
	wg.Wait()
	if u.Load() != workers*perWorker {
		t.Fatalf("lost updates: %d != %d", u.Load(), workers*perWorker)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	counter := 0
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.Lock()
				counter++ // unsynchronized except for the lock
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*perWorker {
		t.Fatalf("mutual exclusion violated: %d != %d", counter, workers*perWorker)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	if !l.Locked() {
		t.Fatal("Locked() false while held")
	}
	l.Unlock()
	if l.Locked() {
		t.Fatal("Locked() true after Unlock")
	}
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestSpinLockUnlockPanics(t *testing.T) {
	var l SpinLock
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked SpinLock did not panic")
		}
	}()
	l.Unlock()
}

func TestBackoffSchedule(t *testing.T) {
	var b Backoff
	if b.Yielding() {
		t.Fatal("zero-value Backoff already yielding")
	}
	// The spin budget doubles from backoffMinSpins and must saturate into
	// the yield stage within a handful of pauses, then stay there.
	for i := 0; i < 12 && !b.Yielding(); i++ {
		b.Pause()
	}
	if !b.Yielding() {
		t.Fatal("Backoff never escalated to yielding")
	}
	b.Pause() // yield path must not panic or reset
	if !b.Yielding() {
		t.Fatal("Backoff left the yield stage without Reset")
	}
	b.Reset()
	if b.Yielding() {
		t.Fatal("Reset did not rewind the schedule")
	}
}

func TestSpinLockContendedHandoff(t *testing.T) {
	// A held lock forces Lock through the full backoff schedule (spin
	// stage, then Gosched escalation) before the release lets it through.
	var l SpinLock
	l.Lock()
	done := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		close(done)
	}()
	// Give the waiter time to reach the yield stage even on one CPU.
	for i := 0; i < 1000; i++ {
		runtime.Gosched()
	}
	l.Unlock()
	<-done
}

func BenchmarkSpinLockUncontended(b *testing.B) {
	var l SpinLock
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}
