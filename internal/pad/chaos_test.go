//go:build dlzfail

package pad

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fail"
)

// TestLockFailpointsWired proves both SpinLock sites sit on the contended
// path: with a hold delay armed, a herd of lockers records hits at both
// sites and the contended counter moves, while the uncontended TryLock fast
// path (exercised after Reset) records nothing.
func TestLockFailpointsWired(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	fail.Arm(fail.SitePadLockHold, fail.Policy{Kind: fail.KindDelay, Delay: 200 * time.Microsecond, Count: 8})

	var l SpinLock
	var wg sync.WaitGroup
	const workers = 4
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Lock()
				time.Sleep(10 * time.Microsecond) // hold long enough to force slow paths
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if l.Contended() == 0 {
		t.Fatal("herd never entered the slow path — test exercised nothing")
	}
	if fail.Hits(fail.SitePadLockAcquire) == 0 || fail.Hits(fail.SitePadLockHold) == 0 {
		t.Errorf("contended acquisitions missed the failpoints: acquire=%d hold=%d",
			fail.Hits(fail.SitePadLockAcquire), fail.Hits(fail.SitePadLockHold))
	}

	fail.Reset()
	var free SpinLock
	free.Lock()
	free.Unlock()
	if fail.Hits(fail.SitePadLockAcquire) != 0 {
		t.Error("uncontended Lock hit the slow-path failpoint")
	}
}

// TestLockAcquireStall pins the stall semantics: a waiter parks at
// pad/lock/acquire until Release, then completes the acquisition.
func TestLockAcquireStall(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	fail.Arm(fail.SitePadLockAcquire, fail.Policy{Kind: fail.KindStall, Count: 1})

	var l SpinLock
	l.Lock() // force the next Lock onto the slow path
	done := make(chan struct{})
	go func() {
		l.Lock()
		l.Unlock()
		close(done)
	}()
	for fail.Fires(fail.SitePadLockAcquire) == 0 {
		time.Sleep(time.Millisecond)
	}
	l.Unlock() // lock is free, but the waiter is still parked at the failpoint
	select {
	case <-done:
		t.Fatal("waiter acquired the lock while stalled")
	case <-time.After(20 * time.Millisecond):
	}
	fail.Release(fail.SitePadLockAcquire)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("released waiter never acquired the lock")
	}
}
