package pad

import (
	"testing"
	"time"
)

func TestRetryBackoffWindowsGrowAndCap(t *testing.T) {
	r := NewRetryBackoff(10*time.Millisecond, 80*time.Millisecond, 1)
	// Draw many delays per attempt index by resetting; the max observed per
	// window must respect min(Cap, Base<<attempt) and the windows must grow.
	maxFor := func(attempt int) time.Duration {
		var max time.Duration
		for trial := 0; trial < 200; trial++ {
			r.Reset()
			var d time.Duration
			for i := 0; i <= attempt; i++ {
				d = r.Next(0)
			}
			if d > max {
				max = d
			}
		}
		return max
	}
	if m := maxFor(0); m >= 10*time.Millisecond {
		t.Errorf("attempt 0 drew %v, want < Base", m)
	}
	if m := maxFor(4); m >= 80*time.Millisecond {
		t.Errorf("attempt 4 drew %v, want < Cap", m)
	}
	if maxFor(3) <= maxFor(0) {
		t.Error("window did not grow with attempts")
	}
}

func TestRetryBackoffHonorsFloor(t *testing.T) {
	r := NewRetryBackoff(time.Millisecond, 4*time.Millisecond, 7)
	for i := 0; i < 50; i++ {
		if d := r.Next(25 * time.Millisecond); d < 25*time.Millisecond {
			t.Fatalf("draw %d: %v below the Retry-After floor", i, d)
		}
	}
}

func TestRetryBackoffDeterministicAndSeeded(t *testing.T) {
	draw := func(seed uint64) []time.Duration {
		r := NewRetryBackoff(0, 0, seed) // defaults: 5ms base, 1s cap
		out := make([]time.Duration, 16)
		for i := range out {
			out[i] = r.Next(0)
		}
		return out
	}
	a, b, c := draw(3), draw(3), draw(4)
	diff := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical jitter")
	}
}

func TestRetryBackoffReset(t *testing.T) {
	r := NewRetryBackoff(10*time.Millisecond, time.Second, 9)
	for i := 0; i < 6; i++ {
		r.Next(0)
	}
	if r.Attempt() != 6 {
		t.Fatalf("Attempt = %d, want 6", r.Attempt())
	}
	r.Reset()
	if r.Attempt() != 0 {
		t.Fatalf("Attempt after Reset = %d, want 0", r.Attempt())
	}
	if d := r.Next(0); d >= 10*time.Millisecond {
		t.Errorf("post-Reset draw %v outside the first window", d)
	}
}
