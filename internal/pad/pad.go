// Package pad provides cache-line padded synchronization cells.
//
// Every shared mutable word in this repository's hot paths lives in one of
// these types. The MultiCounter's whole point is to spread contention across
// m independent memory locations; if those locations shared cache lines, the
// hardware would re-serialize them through coherence traffic and the
// experiment would measure false sharing instead of the algorithm. The
// padding size is 128 bytes: one 64-byte line plus a second line to defeat
// the adjacent-line spatial prefetcher on Intel parts like the paper's
// E7-4830 v3.
package pad

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/fail"
)

// CacheLine is the padding granularity in bytes.
const CacheLine = 128

// Uint64 is a cache-line padded atomic uint64. The zero value is 0.
type Uint64 struct {
	v atomic.Uint64
	_ [CacheLine - 8]byte
}

// Load atomically reads the value.
func (p *Uint64) Load() uint64 { return p.v.Load() }

// Store atomically writes the value.
func (p *Uint64) Store(x uint64) { p.v.Store(x) }

// Add atomically adds delta and returns the new value.
func (p *Uint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// Swap atomically installs x and returns the previous value.
func (p *Uint64) Swap(x uint64) uint64 { return p.v.Swap(x) }

// CompareAndSwap executes the CAS and reports whether it succeeded.
func (p *Uint64) CompareAndSwap(old, new uint64) bool { return p.v.CompareAndSwap(old, new) }

// Int64 is a cache-line padded atomic int64. The zero value is 0.
type Int64 struct {
	v atomic.Int64
	_ [CacheLine - 8]byte
}

// Load atomically reads the value.
func (p *Int64) Load() int64 { return p.v.Load() }

// Store atomically writes the value.
func (p *Int64) Store(x int64) { p.v.Store(x) }

// Add atomically adds delta and returns the new value.
func (p *Int64) Add(delta int64) int64 { return p.v.Add(delta) }

// CompareAndSwap executes the CAS and reports whether it succeeded.
func (p *Int64) CompareAndSwap(old, new int64) bool { return p.v.CompareAndSwap(old, new) }

// Bool is a cache-line padded atomic bool. The zero value is false.
type Bool struct {
	v atomic.Bool // wraps a uint32
	_ [CacheLine - 4]byte
}

// Load atomically reads the value.
func (p *Bool) Load() bool { return p.v.Load() }

// Store atomically writes the value.
func (p *Bool) Store(x bool) { p.v.Store(x) }

// CompareAndSwap executes the CAS and reports whether it succeeded.
func (p *Bool) CompareAndSwap(old, new bool) bool { return p.v.CompareAndSwap(old, new) }

// SeqBits is the width of the Seq64 sequence field. The remaining
// 64 − SeqBits high bits carry the payload.
const SeqBits = 15

// seqMask selects the Seq64 sequence field.
const seqMask = 1<<SeqBits - 1

// Seq64 is a cache-line padded single-word seqlock: one atomic uint64 whose
// high 64−SeqBits bits carry a published payload and whose low SeqBits bits
// carry a publication sequence number. An odd sequence marks the payload as
// mid-update — the writer has entered a mutating section and will republish —
// while the payload bits retain the last published (stale but previously
// true) value, so readers always get something usable from a single load.
//
// The writer side is not itself synchronized: exactly one writer at a time
// may call Begin/Publish, which in this repository means the holder of the
// cell's guarding lock. Readers need no synchronization at all — Load is one
// atomic load, and the sequence parity tells them whether the payload is
// stable or in-flight. This is the seqlock discipline collapsed into a single
// word: because payload and sequence share one atomic, readers never need the
// classic read-seq/read-data/re-read-seq dance, and a torn read is
// impossible.
//
// The zero value is stable (sequence 0) with payload 0.
type Seq64 struct {
	w atomic.Uint64
	// shadow mirrors w for the exclusive writer, so Begin/Publish assemble
	// the next word from a private plain field instead of atomically
	// re-loading a cache line that readers keep in Shared state. Only the
	// writer side (Init/Begin/Publish, under the guarding lock) touches it.
	shadow uint64
	_      [CacheLine - 16]byte
}

// Load returns the current payload and whether the word is mid-update (the
// sequence is odd). A mid-update payload is the last published value, not
// garbage.
func (s *Seq64) Load() (payload uint64, inflight bool) {
	w := s.w.Load()
	return w >> SeqBits, w&1 == 1
}

// LoadWord returns the raw word (payload and sequence packed) with one atomic
// load, for callers that decode the fields themselves.
func (s *Seq64) LoadWord() uint64 { return s.w.Load() }

// Seq returns the current sequence number. It advances by exactly 2 per
// Begin/Publish pair (modulo 2^SeqBits), so tests can use it as a mutation
// counter; an odd value means a writer is mid-update.
func (s *Seq64) Seq() uint64 { return s.w.Load() & seqMask }

// Init stores payload with a stable (even, zeroed) sequence. Call before the
// cell is shared; it is not safe against concurrent Begin/Publish.
func (s *Seq64) Init(payload uint64) {
	s.shadow = payload << SeqBits
	s.w.Store(s.shadow)
}

// Begin marks the word mid-update: the sequence becomes odd while the payload
// bits keep the last published value. Only the exclusive writer (the guarding
// lock's holder) may call it, at the top of a mutating section; calling Begin
// twice without an intervening Publish leaves the word mid-update and is
// harmless.
func (s *Seq64) Begin() {
	s.shadow |= 1
	s.w.Store(s.shadow)
}

// Publish installs a new payload and returns the word to stable: the
// sequence becomes the next even value, whether or not Begin was called.
// Only the exclusive writer may call it, at the end of a mutating section
// before releasing the guarding lock.
func (s *Seq64) Publish(payload uint64) {
	seq := ((s.shadow | 1) + 1) & seqMask
	s.shadow = payload<<SeqBits | seq
	s.w.Store(s.shadow)
}

// EpochWord is a cache-line padded atomic word publishing a structure's
// resize topology: the current live shard count m in the low 32 bits and a
// monotone epoch counter in the high 32. One atomic load delivers both, so a
// handle's staleness check on every operation entry is a single load plus a
// word compare against its cached copy — the seqlock-style "epoch word" of
// the elastic resize protocol (DESIGN.md §11). Writers (the resize path,
// serialized by the structure's resize mutex) publish with Store; the
// epoch half only ever grows, so a reader comparing raw words can never
// confuse two distinct topologies.
//
// The zero value is epoch 0 with m 0; call Init before sharing.
type EpochWord struct {
	w atomic.Uint64
	_ [CacheLine - 8]byte
}

// PackEpoch assembles a raw epoch word from an epoch counter and a live
// shard count.
func PackEpoch(epoch uint32, m int) uint64 { return uint64(epoch)<<32 | uint64(uint32(m)) }

// UnpackEpoch splits a raw epoch word into its epoch counter and live shard
// count.
func UnpackEpoch(w uint64) (epoch uint32, m int) { return uint32(w >> 32), int(uint32(w)) }

// Init stores the initial topology before the word is shared.
func (e *EpochWord) Init(epoch uint32, m int) { e.w.Store(PackEpoch(epoch, m)) }

// Load returns the raw word with one atomic load; decode with UnpackEpoch
// (or compare raw against a cached copy — the hot-path staleness check).
func (e *EpochWord) Load() uint64 { return e.w.Load() }

// Store publishes a new topology. Only the exclusive resize writer may call
// it, and epoch must exceed every previously published epoch.
func (e *EpochWord) Store(epoch uint32, m int) { e.w.Store(PackEpoch(epoch, m)) }

// SpinLock is a cache-line padded test-and-test-and-set spinlock with
// adaptive spin-then-yield backoff (see Backoff). MultiQueue priority
// queues use TryLock so that a
// dequeuer can simply re-draw its random choices instead of waiting behind a
// contended queue — the "lock-free usage of locks" idiom from the MultiQueue
// literature.
type SpinLock struct {
	state atomic.Uint32
	_     [4]byte
	// contended counts Lock acquisitions that missed the TryLock fast path
	// and entered the backoff slow path — the spin-backoff pressure signal
	// monitoring surfaces (dlzd's /metrics). It shares the lock's padded
	// line, so the slow-path increment touches no extra cache line, and the
	// uncontended fast path never writes it.
	contended atomic.Uint64
	_         [CacheLine - 16]byte
}

// TryLock attempts to acquire the lock without blocking and reports whether
// it succeeded.
func (l *SpinLock) TryLock() bool {
	return l.state.Load() == 0 && l.state.CompareAndSwap(0, 1)
}

// Lock acquires the lock with adaptive spin-then-yield backoff: an
// uncontended acquire is a single CAS (the TryLock fast path, kept apart so
// it inlines); under contention the slow path spins read-only on the state
// word — no CAS traffic while the lock is held, so the holder's release
// write is not fighting invalidations — pausing between probes with
// Backoff's bounded exponential schedule and escalating to runtime.Gosched
// once the pause budget saturates (essential on oversubscribed runs, where
// the lock holder may be descheduled).
func (l *SpinLock) Lock() {
	if l.TryLock() {
		return
	}
	if fail.Enabled {
		l.lockSlowChaos()
		return
	}
	l.lockSlow()
}

// lockSlowChaos brackets the contended path with the pad failpoints: a delay
// or stall at pad/lock/acquire piles waiters up behind the lock (forced
// contention), one at pad/lock/hold stretches the just-entered critical
// section so the other waiters escalate through their backoff schedule. Only
// compiled in under the dlzfail tag; the fast TryLock path above is never
// perturbed, so armed policies bite exactly the acquisitions that were
// already contended.
func (l *SpinLock) lockSlowChaos() {
	_ = fail.Inject(fail.SitePadLockAcquire)
	l.lockSlow()
	_ = fail.Inject(fail.SitePadLockHold)
}

func (l *SpinLock) lockSlow() {
	l.contended.Add(1)
	var b Backoff
	for {
		for l.state.Load() != 0 {
			b.Pause()
		}
		if l.state.CompareAndSwap(0, 1) {
			return
		}
		// Lost the race to another waiter: back off before re-probing so
		// the winner's critical section isn't slowed by our coherence
		// traffic.
		b.Pause()
	}
}

// Unlock releases the lock. Calling Unlock on an unlocked SpinLock is a
// programming error and panics.
func (l *SpinLock) Unlock() {
	if l.state.Swap(0) != 1 {
		panic("pad: Unlock of unlocked SpinLock")
	}
}

// Locked reports whether the lock is currently held (racy; for stats only).
func (l *SpinLock) Locked() bool { return l.state.Load() != 0 }

// Contended returns the number of Lock calls that found the lock held and
// entered the spin-backoff slow path since creation. TryLock refusals are
// not counted — callers that re-draw on refusal already account for those
// outcomes themselves (Sampler.Reroll). Monotonic; safe to read concurrently.
func (l *SpinLock) Contended() uint64 { return l.contended.Load() }

// Backoff is an adaptive spin-then-yield pause schedule for contended
// retry loops: successive Pause calls double a bounded busy-wait (starting
// at backoffMinSpins hint iterations, capped at backoffMaxSpins so one
// waiter can never burn unbounded cycles between probes), then escalate to
// runtime.Gosched so a descheduled lock holder gets the CPU back. The zero
// value is ready to use; a Backoff is single-goroutine state and is not
// safe for concurrent use.
type Backoff struct {
	spins int
}

const (
	// backoffMinSpins is the first pause's busy-wait length — short enough
	// that a briefly-held lock is re-probed within tens of nanoseconds.
	backoffMinSpins = 4
	// backoffMaxSpins bounds the exponential growth (the "bounded" in
	// bounded exponential pause); past it every Pause yields instead.
	backoffMaxSpins = 1 << 8
)

// Pause blocks the calling goroutine for the next step of the schedule:
// a bounded exponentially growing busy-wait while cheap, a scheduler yield
// once saturated.
func (b *Backoff) Pause() {
	if b.spins < backoffMaxSpins {
		if b.spins == 0 {
			b.spins = backoffMinSpins
		} else {
			b.spins <<= 1
		}
		for i := 0; i < b.spins; i++ {
			spinHint()
		}
		return
	}
	runtime.Gosched()
}

// Reset rewinds the schedule to the initial short pause. Retry loops that
// made progress (acquired the lock, drained an element) call it before
// re-entering a wait, so one long contention episode does not condemn the
// next to starting at the yield stage.
func (b *Backoff) Reset() { b.spins = 0 }

// Yielding reports whether the schedule has saturated its spin budget and
// is now yielding to the scheduler on every Pause.
func (b *Backoff) Yielding() bool { return b.spins >= backoffMaxSpins }

// spinHint burns a few cycles without touching memory. Go exposes no PAUSE
// intrinsic; an empty loop iteration plus the call overhead approximates it
// closely enough for backoff purposes.
//
//go:noinline
func spinHint() {}

// RetryBackoff is the sleep-scale sibling of Backoff for request-level retry
// loops (HTTP 429/503 handling in dlzd clients): each Next returns a
// full-jitter exponential delay — uniform in [0, min(Cap, Base·2^attempt)) —
// so a fleet of clients retrying after the same shed event does not
// resynchronize into the thundering herd that caused the shedding. The floor
// argument carries the server's Retry-After hint and is honored as a lower
// bound on the returned delay.
//
// The jitter stream is a private splitmix64 seeded by NewRetryBackoff, so
// load generators get reproducible schedules from a fixed seed. Like Backoff,
// a RetryBackoff is single-goroutine state.
type RetryBackoff struct {
	// Base is the first retry's maximum delay; 0 means 5ms.
	Base time.Duration
	// Cap bounds the exponential growth; 0 means 1s.
	Cap time.Duration

	attempt int
	rng     uint64
}

// NewRetryBackoff returns a RetryBackoff with the given delay bounds and
// jitter seed (0 is a valid seed).
func NewRetryBackoff(base, cap time.Duration, seed uint64) *RetryBackoff {
	return &RetryBackoff{Base: base, Cap: cap, rng: seed}
}

// Next advances the schedule and returns the next delay: a jittered draw from
// the current exponential window, raised to floor if the draw came in under
// it. Pass the server's Retry-After as floor (0 when absent).
func (r *RetryBackoff) Next(floor time.Duration) time.Duration {
	base, max := r.Base, r.Cap
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	ceil := max
	// base<<attempt with shift-overflow protection: past ~30 doublings the
	// window is certainly saturated.
	if r.attempt < 30 {
		if w := base << uint(r.attempt); w > 0 && w < max {
			ceil = w
		}
		r.attempt++
	}
	// splitmix64 step for the jitter draw.
	r.rng += 0x9E3779B97F4A7C15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	d := time.Duration(z % uint64(ceil))
	if d < floor {
		d = floor
	}
	return d
}

// Reset rewinds the exponential window to Base after a successful request,
// keeping the jitter stream position.
func (r *RetryBackoff) Reset() { r.attempt = 0 }

// Attempt returns the number of Next calls since creation or the last Reset.
func (r *RetryBackoff) Attempt() int { return r.attempt }
