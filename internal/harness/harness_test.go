package harness

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestThreadCounts(t *testing.T) {
	cases := map[int][]int{
		1:  {1},
		2:  {1, 2},
		3:  {1, 2, 3},
		8:  {1, 2, 4, 8},
		24: {1, 2, 4, 8, 16, 24},
	}
	for max, want := range cases {
		got := ThreadCounts(max)
		if len(got) != len(want) {
			t.Fatalf("ThreadCounts(%d) = %v, want %v", max, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ThreadCounts(%d) = %v, want %v", max, got, want)
			}
		}
	}
}

func TestRunTimed(t *testing.T) {
	ops, elapsed := RunTimed(4, 50*time.Millisecond, func(id int, stop *atomic.Bool) int64 {
		var n int64
		for !stop.Load() {
			n++
		}
		return n
	})
	if ops <= 0 {
		t.Fatal("no ops counted")
	}
	if elapsed < 50*time.Millisecond {
		t.Fatalf("elapsed %v shorter than the window", elapsed)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "threads", "mops")
	tb.Add(1, 2.5)
	tb.Add(2, 4.25)
	var sb strings.Builder
	tb.WriteMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{"### Demo", "| threads | mops |", "| --- | --- |", "| 1 | 2.5 |", "| 2 | 4.25 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add("x", 1)
	var sb strings.Builder
	tb.WriteCSV(&sb)
	if sb.String() != "a,b\nx,1\n" {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.Add(3.14159265)
	if tb.Rows[0][0] != "3.142" {
		t.Fatalf("float cell = %q", tb.Rows[0][0])
	}
}
