// Package harness provides the experiment plumbing shared by the cmd/ tools
// and the benchmark suite: duration-boxed worker pools, thread-count sweeps,
// and table emission in the formats EXPERIMENTS.md consumes.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ThreadCounts returns the sweep 1, 2, 4, … up to and including max (max is
// appended if not already a power of two). The paper sweeps 1..24 hardware
// threads; on smaller machines the doubling sweep preserves the curve shape
// with fewer points.
func ThreadCounts(max int) []int {
	var out []int
	for t := 1; t <= max; t *= 2 {
		out = append(out, t)
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	sort.Ints(out)
	return out
}

// RunTimed launches workers goroutines running body until duration elapses,
// then returns the total number of operations reported and the elapsed time.
// body receives the worker id and the stop flag and returns its operation
// count; it must poll stop reasonably often.
func RunTimed(workers int, duration time.Duration, body func(id int, stop *atomic.Bool) int64) (ops int64, elapsed time.Duration) {
	var stop atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			total.Add(body(id, &stop))
		}(w)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	return total.Load(), time.Since(start)
}

// Table is an ordered grid of experiment output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteMarkdown renders the table as GitHub-flavored markdown.
func (t *Table) WriteMarkdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as CSV (header row first).
func (t *Table) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}
