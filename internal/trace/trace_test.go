package trace

import (
	"sync"
	"testing"
)

func TestStampsMonotone(t *testing.T) {
	r := NewRecorder(1, 4)
	prev := r.Stamp()
	for i := 0; i < 100; i++ {
		s := r.Stamp()
		if s <= prev {
			t.Fatal("stamps not strictly increasing")
		}
		prev = s
	}
}

func TestRecordAndMergeSorted(t *testing.T) {
	r := NewRecorder(2, 8)
	l0, l1 := r.Log(0), r.Log(1)
	// Interleave stamps across logs.
	for i := 0; i < 10; i++ {
		s := r.Stamp()
		l0.Record(Event{Kind: KindInc, Start: s, Lin: s, End: s})
		s = r.Stamp()
		l1.Record(Event{Kind: KindInc, Start: s, Lin: s, End: s})
	}
	if l0.Len() != 10 || l1.Len() != 10 {
		t.Fatalf("log lengths %d/%d", l0.Len(), l1.Len())
	}
	merged := r.Merge()
	if len(merged) != 20 {
		t.Fatalf("merged %d events", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Lin < merged[i-1].Lin {
			t.Fatal("merge not sorted by Lin")
		}
	}
	// Thread ids filled in.
	for _, e := range merged {
		if e.Th != 0 && e.Th != 1 {
			t.Fatalf("bad thread id %d", e.Th)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	const threads, per = 4, 5000
	r := NewRecorder(threads, per)
	var wg sync.WaitGroup
	wg.Add(threads)
	for th := 0; th < threads; th++ {
		go func(th int) {
			defer wg.Done()
			log := r.Log(th)
			for i := 0; i < per; i++ {
				start := r.Stamp()
				lin := r.Stamp()
				log.Record(Event{Kind: KindInc, Start: start, Lin: lin, End: lin})
			}
		}(th)
	}
	wg.Wait()
	merged := r.Merge()
	if len(merged) != threads*per {
		t.Fatalf("merged %d, want %d", len(merged), threads*per)
	}
	seen := map[uint64]bool{}
	for i := 1; i < len(merged); i++ {
		if merged[i].Lin < merged[i-1].Lin {
			t.Fatal("merge not sorted")
		}
		if seen[merged[i].Lin] {
			t.Fatal("duplicate lin stamp")
		}
		seen[merged[i].Lin] = true
		if merged[i].Start > merged[i].Lin {
			t.Fatal("start after lin")
		}
	}
}
