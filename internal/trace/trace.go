// Package trace records concurrent operation histories so that internal/dlin
// can map them onto relaxed sequential executions (Section 5's witness
// mapping).
//
// Each worker owns a ThreadLog and records one Event per completed operation
// with three stamps drawn from a shared atomic tick clock: Start (operation
// invocation), Lin (the operation's candidate linearization point, taken
// adjacent to its atomic step), and End (response). Per-thread logs avoid
// synchronization on the recording path beyond the stamp fetches themselves;
// Merge interleaves them afterwards.
//
// The stamp clock serializes recording runs through one cache line, which
// perturbs timing. That is acceptable — and unavoidable: as the paper notes
// for its own quality experiments, "recording quality accurately in a
// concurrent execution appears complicated, as it is not clear how to order
// the concurrent read steps". The stamps make the ordering decision explicit
// and auditable instead of implicit.
package trace

import (
	"sort"

	"repro/internal/clock"
)

// Kind identifies the recorded operation.
type Kind uint8

// Operation kinds recorded by the experiments.
const (
	// KindInc is a counter increment.
	KindInc Kind = iota
	// KindRead is a counter read; Ret holds the returned (scaled) value.
	KindRead
	// KindEnq is a queue enqueue; Arg holds the element label.
	KindEnq
	// KindDeq is a queue dequeue; Ret holds the removed label, OK whether an
	// element was found.
	KindDeq
)

// Event is one completed operation.
type Event struct {
	Start uint64 // invocation stamp
	Lin   uint64 // candidate linearization stamp, Start <= Lin <= End
	End   uint64 // response stamp
	Arg   uint64 // input value (enqueue label)
	Ret   uint64 // output value (read result, dequeued label)
	Th    int32  // recording thread
	Kind  Kind
	OK    bool // operation found a value (dequeue on non-empty)
}

// Recorder owns the stamp clock and the per-thread logs.
type Recorder struct {
	stamps *clock.Tick
	logs   []ThreadLog
}

// NewRecorder returns a recorder for the given number of threads, with each
// thread log preallocated to capacity events.
func NewRecorder(threads, capacity int) *Recorder {
	r := &Recorder{stamps: clock.NewTick(), logs: make([]ThreadLog, threads)}
	for i := range r.logs {
		r.logs[i] = ThreadLog{id: int32(i), events: make([]Event, 0, capacity)}
	}
	return r
}

// Stamp returns the next global stamp.
func (r *Recorder) Stamp() uint64 { return r.stamps.Now() }

// Log returns thread t's log. Each ThreadLog must be used by one goroutine.
func (r *Recorder) Log(t int) *ThreadLog { return &r.logs[t] }

// Merge returns all events from all threads ordered by Lin stamp. Call only
// after all recording goroutines have finished.
func (r *Recorder) Merge() []Event {
	total := 0
	for i := range r.logs {
		total += len(r.logs[i].events)
	}
	out := make([]Event, 0, total)
	for i := range r.logs {
		out = append(out, r.logs[i].events...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Lin < out[b].Lin })
	return out
}

// ThreadLog is a single goroutine's event buffer.
type ThreadLog struct {
	id     int32
	events []Event
}

// Record appends a completed event, filling in the thread id.
func (l *ThreadLog) Record(ev Event) {
	ev.Th = l.id
	l.events = append(l.events, ev)
}

// Len returns the number of recorded events.
func (l *ThreadLog) Len() int { return len(l.events) }
