package cpq

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/heap"
	"repro/internal/rng"
)

// driveTopCache runs a byte-decoded operation stream over one backing and
// checks the decoded top word against a sorted-slice model after every
// operation: the word must be stable (this driver is single-threaded, so a
// surviving mid-update sentinel is a protocol bug), its empty bit must match
// the model, its minimum must be the model's minimum reduced to TopPrioMask,
// and its sequence must have advanced by exactly 2 per word-changing
// critical section and 0 otherwise — pinning both halves of the publication
// protocol: the Begin/Publish pair where the word can change, and the
// elision rule (covered inserts, deletes on a published-empty queue) where
// it cannot. Priorities mix small values with values above 2^TopPrioBits so
// the truncation path and the full-resolution covered check are both
// exercised.
func driveTopCache(t *testing.T, b Backing, data []byte) {
	t.Helper()
	q := New(b, 4, uint64(len(data))+3)
	r := rng.NewXoshiro256(uint64(len(data)) + 5)
	var ref []uint64
	pushRef := func(p uint64) {
		i := sort.Search(len(ref), func(i int) bool { return ref[i] >= p })
		ref = append(ref, 0)
		copy(ref[i+1:], ref[i:])
		ref[i] = p
	}
	prio := func(op byte) uint64 {
		p := r.Uint64n(512)
		if op&0x40 != 0 {
			// High bits beyond the word's priority field: published
			// minima must come back reduced to TopPrioMask.
			p |= r.Next() << TopPrioBits
		}
		return p
	}
	var seq uint64
	// addPublishes models the insert-side elision: a publication happens
	// only when the insert's minimum undercuts the modeled minimum or the
	// queue was empty (full-resolution comparison, like topCovers).
	addPublishes := func(insMin uint64) {
		if len(ref) == 0 || insMin < ref[0] {
			seq += 2
		}
	}
	// delPublishes models the delete side: any drain attempt on a non-empty
	// queue removes the minimum and republishes; a published-empty queue
	// elides the whole pair.
	delPublishes := func() {
		if len(ref) > 0 {
			seq += 2
		}
	}
	var batch []heap.Item
	for opIdx, op := range data {
		switch op % 7 {
		case 0, 1:
			p := prio(op)
			addPublishes(p)
			q.Add(p, r.Next())
			pushRef(p)
		case 2:
			delPublishes()
			it, ok := q.DeleteMin()
			if ok != (len(ref) > 0) {
				t.Fatalf("%v: op %d DeleteMin ok=%v with %d modeled", b, opIdx, ok, len(ref))
			}
			if ok {
				if it.Priority != ref[0] {
					t.Fatalf("%v: op %d DeleteMin = %d, want %d", b, opIdx, it.Priority, ref[0])
				}
				ref = ref[1:]
			}
		case 3:
			k := int(op / 7 % 9)
			batch = batch[:0]
			for i := 0; i < k; i++ {
				p := prio(op + byte(i))
				batch = append(batch, heap.Item{Priority: p, Value: r.Next()})
			}
			if k > 0 {
				bmin := batch[0].Priority
				for _, it := range batch[1:] {
					if it.Priority < bmin {
						bmin = it.Priority
					}
				}
				addPublishes(bmin)
			}
			q.AddBatch(batch)
			for _, it := range batch {
				pushRef(it.Priority)
			}
		case 4:
			k := int(op / 7 % 9)
			if k > 0 {
				delPublishes()
			}
			got := q.DeleteMinUpTo(k, batch[:0])
			batch = got[:0]
			for i, it := range got {
				if it.Priority != ref[i] {
					t.Fatalf("%v: op %d DeleteMinUpTo[%d] = %d, want %d", b, opIdx, i, it.Priority, ref[i])
				}
			}
			ref = ref[len(got):]
		case 5:
			p := prio(op)
			addPublishes(p)
			if !q.TryAdd(p, r.Next()) {
				t.Fatalf("%v: op %d TryAdd refused without contention", b, opIdx)
			}
			pushRef(p)
		case 6:
			delPublishes()
			it, ok, acquired := q.TryDeleteMin()
			if !acquired {
				t.Fatalf("%v: op %d TryDeleteMin refused without contention", b, opIdx)
			}
			if ok {
				if it.Priority != ref[0] {
					t.Fatalf("%v: op %d TryDeleteMin = %d, want %d", b, opIdx, it.Priority, ref[0])
				}
				ref = ref[1:]
			}
		}
		w := q.ReadTop()
		if w.InFlight() {
			t.Fatalf("%v: op %d word still mid-update at quiescence", b, opIdx)
		}
		if w.Empty() != (len(ref) == 0) {
			t.Fatalf("%v: op %d empty bit %v with %d modeled items", b, opIdx, w.Empty(), len(ref))
		}
		wantMin := uint64(EmptyTop)
		if len(ref) > 0 {
			wantMin = ref[0] & TopPrioMask
		}
		if w.Min() != wantMin {
			t.Fatalf("%v: op %d cached min %d, want %d", b, opIdx, w.Min(), wantMin)
		}
		if wantSeq := seq % (topSeqMask + 1); w.Seq() != wantSeq {
			t.Fatalf("%v: op %d seq %d, want %d (mutating sections must advance it by exactly 2)",
				b, opIdx, w.Seq(), wantSeq)
		}
		if len(ref) > 0 && w.Key() != ref[0]&TopPrioMask {
			t.Fatalf("%v: op %d key %d, want %d", b, opIdx, w.Key(), ref[0]&TopPrioMask)
		}
		if len(ref) == 0 && w.Key() != TopKeyEmpty {
			t.Fatalf("%v: op %d key %d on empty, want TopKeyEmpty", b, opIdx, w.Key())
		}
	}
}

// TestTopWordTracksModelAllBackings is the property-test complement of the
// fuzz target: long pseudo-random streams over every backing, so the word's
// publication protocol is pinned for the skiplist and pairing paths the
// heap-package fuzzer cannot reach.
func TestTopWordTracksModelAllBackings(t *testing.T) {
	for _, b := range Backings() {
		t.Run(b.String(), func(t *testing.T) {
			r := rng.NewXoshiro256(uint64(b)*17 + 1)
			for round := 0; round < 10; round++ {
				data := make([]byte, 300)
				for i := range data {
					data[i] = byte(r.Next())
				}
				driveTopCache(t, b, data)
			}
		})
	}
}

// FuzzTopCacheDifferential is the coverage-guided entry point over the same
// driver; its seed corpus runs on every plain `go test`, and the CI fuzz
// smoke step explores further on every push.
func FuzzTopCacheDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{3, 10, 4, 66, 2, 2, 0x41, 0x80, 255, 254})
	seed := make([]byte, 128)
	for i := range seed {
		seed[i] = byte(i * 11)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			data = data[:2048]
		}
		for _, b := range Backings() {
			driveTopCache(t, b, data)
		}
	})
}

// TestTopWordCoherenceUnderRace is the interloper test of the top-word
// publication protocol: writers churn a queue while maintaining a rising
// watermark (the largest priority already removed — every live element is
// strictly greater, because inserts are drawn from a monotone counter and
// removals take minima). Readers repeatedly snapshot the watermark and then
// load the word: a stable word observed after the lock's release must never
// carry a minimum at or below the snapshot — the "reader never observes a
// value smaller than the true minimum" guarantee the seqlock parity plus
// publish-before-unlock ordering provides. Mid-update words are exempt:
// they advertise their staleness via the sentinel. Run under -race in CI.
func TestTopWordCoherenceUnderRace(t *testing.T) {
	for _, b := range Backings() {
		t.Run(b.String(), func(t *testing.T) {
			q := New(b, 1024, 21)
			var next, watermark atomic.Uint64
			// Standing buffer so the queue never empties mid-run (the
			// writers add two per removal).
			for i := 0; i < 64; i++ {
				q.Add(next.Add(1), 0)
			}

			const writers, readers, rounds = 2, 2, 4000
			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(writers)
			for w := 0; w < writers; w++ {
				go func(w int) {
					defer wg.Done()
					buf := make([]heap.Item, 0, 2)
					for i := 0; i < rounds; i++ {
						if i%2 == 0 {
							q.Add(next.Add(1), 0)
							q.Add(next.Add(1), 0)
						} else {
							buf = append(buf[:0],
								heap.Item{Priority: next.Add(1)},
								heap.Item{Priority: next.Add(1)})
							q.AddBatch(buf)
						}
						it, ok := q.DeleteMin()
						if !ok {
							t.Error("queue emptied despite standing buffer")
							return
						}
						// CAS-max: publish the removal only after DeleteMin
						// returned, so the watermark invariant holds from the
						// reader's point of view.
						for {
							cur := watermark.Load()
							if it.Priority <= cur || watermark.CompareAndSwap(cur, it.Priority) {
								break
							}
						}
					}
				}(w)
			}

			var readerWG sync.WaitGroup
			readerWG.Add(readers)
			for rd := 0; rd < readers; rd++ {
				go func() {
					defer readerWG.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						wm := watermark.Load()
						w := q.ReadTop()
						if w.InFlight() {
							continue // advertised stale; nothing to assert
						}
						if w.Empty() {
							t.Error("stable-empty word on a never-empty queue")
							return
						}
						if w.Min() <= wm&TopPrioMask {
							t.Errorf("stable word min %d not above watermark %d", w.Min(), wm)
							return
						}
					}
				}()
			}

			wg.Wait()
			close(stop)
			readerWG.Wait()

			// Quiescence: the word equals a locked Peek exactly.
			w := q.ReadTop()
			it, ok := q.PeekMin()
			if !ok || w.InFlight() || w.Empty() || w.Min() != it.Priority&TopPrioMask {
				t.Fatalf("quiescent word (min %d, empty %v, inflight %v) != true min %d",
					w.Min(), w.Empty(), w.InFlight(), it.Priority)
			}
		})
	}
}
