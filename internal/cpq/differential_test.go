package cpq

import (
	"sort"
	"testing"

	"repro/internal/heap"
	"repro/internal/rng"
)

// TestDifferentialAllBackings drives every backing — including the skiplist,
// which the heap-package differential tests cannot reach, and the bulk
// dispatch paths of the array heaps — through randomized single and batch
// operation streams against a sorted-slice reference model. Every removal
// order, every ReadMin publish and every Len must match the model exactly.
func TestDifferentialAllBackings(t *testing.T) {
	for _, b := range Backings() {
		t.Run(b.String(), func(t *testing.T) {
			r := rng.NewXoshiro256(uint64(b) + 11)
			for round := 0; round < 10; round++ {
				q := New(b, 4, r.Next())
				var ref []uint64
				pushRef := func(p uint64) {
					i := sort.Search(len(ref), func(i int) bool { return ref[i] >= p })
					ref = append(ref, 0)
					copy(ref[i+1:], ref[i:])
					ref[i] = p
				}
				var batch []heap.Item
				for op := 0; op < 600; op++ {
					switch r.Uint64n(5) {
					case 0, 1:
						p := r.Uint64n(128)
						q.Add(p, r.Next())
						pushRef(p)
					case 2:
						it, ok := q.DeleteMin()
						if ok != (len(ref) > 0) {
							t.Fatalf("op %d: DeleteMin ok=%v with %d modeled items", op, ok, len(ref))
						}
						if ok {
							if it.Priority != ref[0] {
								t.Fatalf("op %d: DeleteMin = %d, want %d", op, it.Priority, ref[0])
							}
							ref = ref[1:]
						}
					case 3:
						k := int(r.Uint64n(17))
						batch = batch[:0]
						for i := 0; i < k; i++ {
							p := r.Uint64n(128)
							batch = append(batch, heap.Item{Priority: p, Value: r.Next()})
							pushRef(p)
						}
						q.AddBatch(batch)
					case 4:
						k := int(r.Uint64n(17))
						got := q.DeleteMinUpTo(k, batch[:0])
						batch = got[:0]
						for i, it := range got {
							if it.Priority != ref[i] {
								t.Fatalf("op %d: DeleteMinUpTo[%d] = %d, want %d", op, i, it.Priority, ref[i])
							}
						}
						wantN := k
						if wantN > len(ref) {
							wantN = len(ref)
						}
						if len(got) != wantN {
							t.Fatalf("op %d: DeleteMinUpTo drained %d, want %d", op, len(got), wantN)
						}
						ref = ref[len(got):]
					}
					if n := q.Len(); n != len(ref) {
						t.Fatalf("op %d: Len = %d, want %d", op, n, len(ref))
					}
					// Single-threaded, so the cached top must be exact, not
					// merely stale-but-previously-true.
					wantTop := uint64(EmptyTop)
					if len(ref) > 0 {
						wantTop = ref[0]
					}
					if top := q.ReadMin(); top != wantTop {
						t.Fatalf("op %d: ReadMin = %d, want %d", op, top, wantTop)
					}
				}
			}
		})
	}
}
