package cpq

import (
	"sync"
	"testing"

	"repro/internal/heap"
	"repro/internal/rng"
)

// backings is every selectable backing; backing-parameterized tests sweep it
// so a new backing is covered the moment Backings() lists it.
var backings = Backings()

func TestSequentialSemantics(t *testing.T) {
	for _, b := range backings {
		q := New(b, 16, 1)
		if q.ReadMin() != EmptyTop {
			t.Fatalf("%v: fresh ReadMin != EmptyTop", b)
		}
		q.Add(5, 50)
		q.Add(2, 20)
		q.Add(9, 90)
		if q.ReadMin() != 2 {
			t.Fatalf("%v: ReadMin = %d, want 2", b, q.ReadMin())
		}
		if it, ok := q.PeekMin(); !ok || it.Priority != 2 || it.Value != 20 {
			t.Fatalf("%v: PeekMin = %+v", b, it)
		}
		it, ok := q.DeleteMin()
		if !ok || it.Priority != 2 || it.Value != 20 {
			t.Fatalf("%v: DeleteMin = %+v", b, it)
		}
		if q.ReadMin() != 5 {
			t.Fatalf("%v: ReadMin after delete = %d", b, q.ReadMin())
		}
		if q.Len() != 2 {
			t.Fatalf("%v: Len = %d", b, q.Len())
		}
	}
}

func TestEmptyDelete(t *testing.T) {
	q := New(BackingBinary, 4, 1)
	if _, ok := q.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty returned ok")
	}
	it, ok, acquired := q.TryDeleteMin()
	if !acquired {
		t.Fatal("TryDeleteMin on uncontended queue did not acquire")
	}
	if ok {
		t.Fatalf("TryDeleteMin on empty returned item %+v", it)
	}
}

func TestTryAdd(t *testing.T) {
	q := New(BackingBinary, 4, 1)
	if !q.TryAdd(1, 10) {
		t.Fatal("TryAdd on free queue failed")
	}
	if q.ReadMin() != 1 {
		t.Fatal("TryAdd did not publish top")
	}
}

func TestReadMinTracksTopAtQuiescence(t *testing.T) {
	for _, b := range backings {
		q := New(b, 16, 2)
		r := rng.NewXoshiro256(3)
		min := uint64(1 << 62)
		for i := 0; i < 100; i++ {
			p := r.Uint64n(1000)
			if p < min {
				min = p
			}
			q.Add(p, 0)
			if q.ReadMin() != min {
				t.Fatalf("%v: cached top %d != true min %d", b, q.ReadMin(), min)
			}
		}
		// Drain: cached top must track the heap top exactly.
		prev := uint64(0)
		for {
			top := q.ReadMin()
			it, ok := q.DeleteMin()
			if !ok {
				if top != EmptyTop {
					t.Fatalf("%v: top %d on empty queue", b, top)
				}
				break
			}
			if it.Priority != top {
				t.Fatalf("%v: deleted %d but cached top was %d", b, it.Priority, top)
			}
			if it.Priority < prev {
				t.Fatalf("%v: out of order", b)
			}
			prev = it.Priority
		}
	}
}

// TestConcurrentNoLossNoDup hammers one queue from multiple goroutines and
// checks that every pushed value is popped exactly once.
func TestConcurrentNoLossNoDup(t *testing.T) {
	for _, b := range backings {
		const producers, consumers, perProducer = 4, 4, 5000
		q := New(b, 1024, 4)
		var wg sync.WaitGroup
		popped := make([][]uint64, consumers)
		var remaining sync.WaitGroup
		remaining.Add(producers)

		wg.Add(producers)
		for p := 0; p < producers; p++ {
			go func(p int) {
				defer wg.Done()
				defer remaining.Done()
				r := rng.NewXoshiro256(uint64(100 + p))
				for i := 0; i < perProducer; i++ {
					v := uint64(p*perProducer + i)
					q.Add(r.Uint64n(1<<32), v)
				}
			}(p)
		}
		done := make(chan struct{})
		go func() { remaining.Wait(); close(done) }()

		wg.Add(consumers)
		for c := 0; c < consumers; c++ {
			go func(c int) {
				defer wg.Done()
				for {
					it, ok := q.DeleteMin()
					if ok {
						popped[c] = append(popped[c], it.Value)
						continue
					}
					select {
					case <-done:
						// Producers finished; one more sweep then exit.
						if it, ok := q.DeleteMin(); ok {
							popped[c] = append(popped[c], it.Value)
							continue
						}
						return
					default:
					}
				}
			}(c)
		}
		wg.Wait()

		seen := make(map[uint64]bool, producers*perProducer)
		total := 0
		for _, vs := range popped {
			for _, v := range vs {
				if seen[v] {
					t.Fatalf("%v: value %d popped twice", b, v)
				}
				seen[v] = true
				total++
			}
		}
		if total != producers*perProducer {
			t.Fatalf("%v: popped %d values, want %d", b, total, producers*perProducer)
		}
	}
}

func TestConcurrentOrderIsLocallySorted(t *testing.T) {
	// A single consumer draining a queue concurrently filled by producers
	// still observes non-decreasing priorities *per DeleteMin linearization*
	// only at quiescence; here we check the drain-after-fill case.
	q := New(BackingBinary, 1024, 5)
	var wg sync.WaitGroup
	const producers, per = 8, 2000
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			r := rng.NewXoshiro256(uint64(p) + 7)
			for i := 0; i < per; i++ {
				q.Add(r.Uint64n(1<<40), 1)
			}
		}(p)
	}
	wg.Wait()
	prev := uint64(0)
	count := 0
	for {
		it, ok := q.DeleteMin()
		if !ok {
			break
		}
		if it.Priority < prev {
			t.Fatal("drain out of order")
		}
		prev = it.Priority
		count++
	}
	if count != producers*per {
		t.Fatalf("drained %d, want %d", count, producers*per)
	}
}

func TestBackingString(t *testing.T) {
	names := map[Backing]string{BackingBinary: "binary", BackingPairing: "pairing", BackingSkiplist: "skiplist", BackingDAry: "dary", Backing(99): "unknown"}
	for b, want := range names {
		if b.String() != want {
			t.Fatalf("String() = %q, want %q", b.String(), want)
		}
	}
	for _, b := range Backings() {
		got, err := ParseBacking(b.String())
		if err != nil || got != b {
			t.Fatalf("ParseBacking(%q) = %v, %v", b.String(), got, err)
		}
	}
	if _, err := ParseBacking("unknown"); err == nil {
		t.Fatal("ParseBacking accepted an unknown name")
	}
}

func TestNewPanicsOnUnknownBacking(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown backing did not panic")
		}
	}()
	New(Backing(42), 1, 1)
}

func TestAddBatchDeleteMinUpTo(t *testing.T) {
	for _, b := range backings {
		q := New(b, 16, 3)
		q.AddBatch(nil) // empty batch: no lock, no effect
		if q.Len() != 0 || q.ReadMin() != EmptyTop {
			t.Fatalf("%v: empty AddBatch changed state", b)
		}
		batch := []heap.Item{{Priority: 7, Value: 70}, {Priority: 3, Value: 30}, {Priority: 5, Value: 50}}
		q.AddBatch(batch)
		if q.Len() != 3 {
			t.Fatalf("%v: Len after AddBatch = %d", b, q.Len())
		}
		if q.ReadMin() != 3 {
			t.Fatalf("%v: ReadMin after AddBatch = %d, want 3", b, q.ReadMin())
		}
		// Drain two with one call; ascending order required.
		got := q.DeleteMinUpTo(2, nil)
		if len(got) != 2 || got[0].Priority != 3 || got[1].Priority != 5 {
			t.Fatalf("%v: DeleteMinUpTo(2) = %+v", b, got)
		}
		if q.ReadMin() != 7 {
			t.Fatalf("%v: ReadMin after partial drain = %d, want 7", b, q.ReadMin())
		}
		// Asking for more than remain returns the remainder and publishes empty.
		got = q.DeleteMinUpTo(10, got[:0])
		if len(got) != 1 || got[0].Priority != 7 {
			t.Fatalf("%v: final DeleteMinUpTo = %+v", b, got)
		}
		if q.ReadMin() != EmptyTop || q.Len() != 0 {
			t.Fatalf("%v: queue not empty after full drain", b)
		}
		// k <= 0 and empty-queue calls leave dst untouched.
		if out := q.DeleteMinUpTo(0, got); len(out) != len(got) {
			t.Fatalf("%v: DeleteMinUpTo(0) appended", b)
		}
		if out := q.DeleteMinUpTo(4, nil); len(out) != 0 {
			t.Fatalf("%v: DeleteMinUpTo on empty = %+v", b, out)
		}
	}
}

func TestTryAddBatch(t *testing.T) {
	q := New(BackingBinary, 16, 4)
	if !q.TryAddBatch(nil) {
		t.Fatal("empty TryAddBatch reported contention")
	}
	if !q.LockForTest() {
		t.Fatal("could not take test lock")
	}
	if q.TryAddBatch([]heap.Item{{Priority: 1}}) {
		t.Fatal("TryAddBatch succeeded against a held lock")
	}
	q.UnlockForTest()
	if !q.TryAddBatch([]heap.Item{{Priority: 2, Value: 20}, {Priority: 1, Value: 10}}) {
		t.Fatal("TryAddBatch failed on a free lock")
	}
	if q.Len() != 2 || q.ReadMin() != 1 {
		t.Fatalf("Len=%d ReadMin=%d after TryAddBatch", q.Len(), q.ReadMin())
	}
}

func TestBatchConcurrentConservation(t *testing.T) {
	// Batched producers and batched consumers must neither lose nor
	// duplicate elements, for every backing.
	for _, b := range backings {
		q := New(b, 64, 5)
		const producers, batches, k = 4, 200, 8
		var wg sync.WaitGroup
		wg.Add(producers)
		for p := 0; p < producers; p++ {
			go func(p int) {
				defer wg.Done()
				r := rng.NewXoshiro256(uint64(p) + 1)
				buf := make([]heap.Item, k)
				for i := 0; i < batches; i++ {
					for j := range buf {
						v := uint64(p*batches*k + i*k + j)
						buf[j] = heap.Item{Priority: r.Next(), Value: v}
					}
					q.AddBatch(buf)
				}
			}(p)
		}
		wg.Wait()
		want := producers * batches * k
		if q.Len() != want {
			t.Fatalf("%v: Len = %d, want %d", b, q.Len(), want)
		}
		const consumers = 4
		out := make([][]heap.Item, consumers)
		wg.Add(consumers)
		for c := 0; c < consumers; c++ {
			go func(c int) {
				defer wg.Done()
				for {
					got := q.DeleteMinUpTo(k, nil)
					if len(got) == 0 {
						return
					}
					out[c] = append(out[c], got...)
				}
			}(c)
		}
		wg.Wait()
		seen := make(map[uint64]bool, want)
		total := 0
		for _, run := range out {
			for _, it := range run {
				if seen[it.Value] {
					t.Fatalf("%v: value %d dequeued twice", b, it.Value)
				}
				seen[it.Value] = true
				total++
			}
		}
		if total != want {
			t.Fatalf("%v: drained %d, want %d", b, total, want)
		}
	}
}

// TestStatsElisionAndPublicationCounters pins the publication-protocol
// counters Stats exports: a covered insert elides, a word-changing section
// publishes, and an empty delete elides — per backing, since the bulk and
// per-element paths increment at different sites.
func TestStatsElisionAndPublicationCounters(t *testing.T) {
	for _, b := range backings {
		q := New(b, 16, 1)
		if s := q.Stats(); s != (QueueStats{}) {
			t.Fatalf("%v: fresh queue stats %+v, want zero", b, s)
		}
		if _, ok := q.DeleteMin(); ok {
			t.Fatalf("%v: empty queue returned an element", b)
		}
		s := q.Stats()
		if s.Elisions != 1 || s.Publications != 0 {
			t.Fatalf("%v: published-empty delete must elide: %+v", b, s)
		}
		q.Add(5, 5) // changes the word: publishes
		q.Add(9, 9) // covered by published min 5: elides
		s = q.Stats()
		if s.Publications != 1 {
			t.Fatalf("%v: first insert must publish exactly once: %+v", b, s)
		}
		if s.Elisions != 2 {
			t.Fatalf("%v: covered insert must elide: %+v", b, s)
		}
		q.AddBatch([]heap.Item{{Priority: 6, Value: 6}, {Priority: 7, Value: 7}})
		s = q.Stats()
		if s.Elisions != 3 {
			t.Fatalf("%v: covered batch insert must elide: %+v", b, s)
		}
		q.AddBatch([]heap.Item{{Priority: 1, Value: 1}})
		s = q.Stats()
		if s.Publications != 2 {
			t.Fatalf("%v: new-minimum batch must publish: %+v", b, s)
		}
		q.DeleteMinUpTo(16, nil)
		s = q.Stats()
		if s.Publications != 3 {
			t.Fatalf("%v: draining delete must publish: %+v", b, s)
		}
		if s.LockContended != 0 {
			t.Fatalf("%v: single-threaded run must never contend: %+v", b, s)
		}
	}
}

// TestStatsLockContended drives two goroutines through blocking Adds on one
// queue long enough that at least one Lock call observes the lock held.
func TestStatsLockContended(t *testing.T) {
	q := New(BackingBinary, 1024, 1)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50_000; i++ {
				q.Add(uint64(i), uint64(g))
			}
		}(g)
	}
	wg.Wait()
	// Contention is probabilistic but two tight Add loops over one lock
	// reliably collide within 100k acquisitions on any scheduler; treat the
	// count as informational if it stays zero on a single-CPU runner.
	if s := q.Stats(); s.LockContended == 0 {
		t.Logf("no contended acquisitions observed (single CPU?): %+v", s)
	}
}
