package cpq

import (
	"sync"
	"testing"

	"repro/internal/rng"
)

var backings = []Backing{BackingBinary, BackingPairing, BackingSkiplist}

func TestSequentialSemantics(t *testing.T) {
	for _, b := range backings {
		q := New(b, 16, 1)
		if q.ReadMin() != EmptyTop {
			t.Fatalf("%v: fresh ReadMin != EmptyTop", b)
		}
		q.Add(5, 50)
		q.Add(2, 20)
		q.Add(9, 90)
		if q.ReadMin() != 2 {
			t.Fatalf("%v: ReadMin = %d, want 2", b, q.ReadMin())
		}
		if it, ok := q.PeekMin(); !ok || it.Priority != 2 || it.Value != 20 {
			t.Fatalf("%v: PeekMin = %+v", b, it)
		}
		it, ok := q.DeleteMin()
		if !ok || it.Priority != 2 || it.Value != 20 {
			t.Fatalf("%v: DeleteMin = %+v", b, it)
		}
		if q.ReadMin() != 5 {
			t.Fatalf("%v: ReadMin after delete = %d", b, q.ReadMin())
		}
		if q.Len() != 2 {
			t.Fatalf("%v: Len = %d", b, q.Len())
		}
	}
}

func TestEmptyDelete(t *testing.T) {
	q := New(BackingBinary, 4, 1)
	if _, ok := q.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty returned ok")
	}
	it, ok, acquired := q.TryDeleteMin()
	if !acquired {
		t.Fatal("TryDeleteMin on uncontended queue did not acquire")
	}
	if ok {
		t.Fatalf("TryDeleteMin on empty returned item %+v", it)
	}
}

func TestTryAdd(t *testing.T) {
	q := New(BackingBinary, 4, 1)
	if !q.TryAdd(1, 10) {
		t.Fatal("TryAdd on free queue failed")
	}
	if q.ReadMin() != 1 {
		t.Fatal("TryAdd did not publish top")
	}
}

func TestReadMinTracksTopAtQuiescence(t *testing.T) {
	for _, b := range backings {
		q := New(b, 16, 2)
		r := rng.NewXoshiro256(3)
		min := uint64(1 << 62)
		for i := 0; i < 100; i++ {
			p := r.Uint64n(1000)
			if p < min {
				min = p
			}
			q.Add(p, 0)
			if q.ReadMin() != min {
				t.Fatalf("%v: cached top %d != true min %d", b, q.ReadMin(), min)
			}
		}
		// Drain: cached top must track the heap top exactly.
		prev := uint64(0)
		for {
			top := q.ReadMin()
			it, ok := q.DeleteMin()
			if !ok {
				if top != EmptyTop {
					t.Fatalf("%v: top %d on empty queue", b, top)
				}
				break
			}
			if it.Priority != top {
				t.Fatalf("%v: deleted %d but cached top was %d", b, it.Priority, top)
			}
			if it.Priority < prev {
				t.Fatalf("%v: out of order", b)
			}
			prev = it.Priority
		}
	}
}

// TestConcurrentNoLossNoDup hammers one queue from multiple goroutines and
// checks that every pushed value is popped exactly once.
func TestConcurrentNoLossNoDup(t *testing.T) {
	for _, b := range backings {
		const producers, consumers, perProducer = 4, 4, 5000
		q := New(b, 1024, 4)
		var wg sync.WaitGroup
		popped := make([][]uint64, consumers)
		var remaining sync.WaitGroup
		remaining.Add(producers)

		wg.Add(producers)
		for p := 0; p < producers; p++ {
			go func(p int) {
				defer wg.Done()
				defer remaining.Done()
				r := rng.NewXoshiro256(uint64(100 + p))
				for i := 0; i < perProducer; i++ {
					v := uint64(p*perProducer + i)
					q.Add(r.Uint64n(1<<32), v)
				}
			}(p)
		}
		done := make(chan struct{})
		go func() { remaining.Wait(); close(done) }()

		wg.Add(consumers)
		for c := 0; c < consumers; c++ {
			go func(c int) {
				defer wg.Done()
				for {
					it, ok := q.DeleteMin()
					if ok {
						popped[c] = append(popped[c], it.Value)
						continue
					}
					select {
					case <-done:
						// Producers finished; one more sweep then exit.
						if it, ok := q.DeleteMin(); ok {
							popped[c] = append(popped[c], it.Value)
							continue
						}
						return
					default:
					}
				}
			}(c)
		}
		wg.Wait()

		seen := make(map[uint64]bool, producers*perProducer)
		total := 0
		for _, vs := range popped {
			for _, v := range vs {
				if seen[v] {
					t.Fatalf("%v: value %d popped twice", b, v)
				}
				seen[v] = true
				total++
			}
		}
		if total != producers*perProducer {
			t.Fatalf("%v: popped %d values, want %d", b, total, producers*perProducer)
		}
	}
}

func TestConcurrentOrderIsLocallySorted(t *testing.T) {
	// A single consumer draining a queue concurrently filled by producers
	// still observes non-decreasing priorities *per DeleteMin linearization*
	// only at quiescence; here we check the drain-after-fill case.
	q := New(BackingBinary, 1024, 5)
	var wg sync.WaitGroup
	const producers, per = 8, 2000
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			r := rng.NewXoshiro256(uint64(p) + 7)
			for i := 0; i < per; i++ {
				q.Add(r.Uint64n(1<<40), 1)
			}
		}(p)
	}
	wg.Wait()
	prev := uint64(0)
	count := 0
	for {
		it, ok := q.DeleteMin()
		if !ok {
			break
		}
		if it.Priority < prev {
			t.Fatal("drain out of order")
		}
		prev = it.Priority
		count++
	}
	if count != producers*per {
		t.Fatalf("drained %d, want %d", count, producers*per)
	}
}

func TestBackingString(t *testing.T) {
	names := map[Backing]string{BackingBinary: "binary", BackingPairing: "pairing", BackingSkiplist: "skiplist", Backing(99): "unknown"}
	for b, want := range names {
		if b.String() != want {
			t.Fatalf("String() = %q, want %q", b.String(), want)
		}
	}
}

func TestNewPanicsOnUnknownBacking(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown backing did not panic")
		}
	}()
	New(Backing(42), 1, 1)
}
