package cpq

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/heap"
	"repro/internal/rng"
)

// TestTryPathsAgainstHeldLock pins the contract of every try-operation under
// contention, for every backing: with the lock held (LockForTest simulating
// a stalled or crashed holder) each try-path must refuse without mutating
// anything — dst unchanged, nothing inserted, nothing lost — and after
// release the exact multiset of offered items must be recoverable with no
// loss and no duplication.
func TestTryPathsAgainstHeldLock(t *testing.T) {
	for _, b := range Backings() {
		t.Run(b.String(), func(t *testing.T) {
			q := New(b, 16, 7)
			q.AddBatch([]heap.Item{{Priority: 4, Value: 40}, {Priority: 6, Value: 60}})

			if !q.LockForTest() {
				t.Fatal("could not take test lock")
			}
			wordBefore := q.ReadTop()

			if q.TryAdd(1, 10) {
				t.Fatal("TryAdd succeeded against a held lock")
			}
			if q.TryAddBatch([]heap.Item{{Priority: 2, Value: 20}}) {
				t.Fatal("TryAddBatch succeeded against a held lock")
			}
			if !q.TryAddBatch(nil) {
				t.Fatal("empty TryAddBatch must report true without the lock")
			}
			if _, _, acquired := q.TryDeleteMin(); acquired {
				t.Fatal("TryDeleteMin acquired a held lock")
			}
			sentinel := []heap.Item{{Priority: 99, Value: 990}}
			out, acquired := q.TryDeleteMinUpTo(8, sentinel)
			if acquired {
				t.Fatal("TryDeleteMinUpTo acquired a held lock")
			}
			if len(out) != 1 || out[0] != sentinel[0] {
				t.Fatalf("TryDeleteMinUpTo mutated dst under contention: %+v", out)
			}
			if q.ReadMin() != 4 {
				t.Fatalf("contended try-paths mutated the cached top: ReadMin=%d", q.ReadMin())
			}
			// Refused try-paths must not have touched the word at all: same
			// minimum, same publication sequence, no stray sentinel. A held
			// lock without mutating intent (a crashed holder) leaves the word
			// stable — the property the MultiQueue's empty scan trusts.
			if w := q.ReadTop(); w != wordBefore || w.InFlight() {
				t.Fatalf("contended try-paths moved the top word: %#x -> %#x", uint64(wordBefore), uint64(w))
			}

			q.UnlockForTest()

			// Len takes the queue lock, so audit it only after release.
			if q.Len() != 2 {
				t.Fatalf("contended try-paths mutated the queue: Len=%d", q.Len())
			}

			// Every refused insert is retried now; the queue must end up with
			// exactly the original plus the retried items, each once.
			if !q.TryAdd(1, 10) {
				t.Fatal("TryAdd failed on a free lock")
			}
			if !q.TryAddBatch([]heap.Item{{Priority: 2, Value: 20}}) {
				t.Fatal("TryAddBatch failed on a free lock")
			}
			got, acquired := q.TryDeleteMinUpTo(8, nil)
			if !acquired {
				t.Fatal("TryDeleteMinUpTo failed on a free lock")
			}
			want := []heap.Item{{Priority: 1, Value: 10}, {Priority: 2, Value: 20}, {Priority: 4, Value: 40}, {Priority: 6, Value: 60}}
			if len(got) != len(want) {
				t.Fatalf("drained %d items, want %d: %+v", len(got), len(want), got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("drain[%d] = %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestTryPathsConcurrentConservation hammers the try-paths while a lock
// holder stalls each queue on and off: writers that get refused keep their
// batch and retry, so at quiescence every offered item must be present in
// the drain exactly once — the no-loss/no-duplication property the
// MultiQueue's lock-avoiding dequeue depends on.
func TestTryPathsConcurrentConservation(t *testing.T) {
	for _, b := range Backings() {
		q := New(b, 64, 9)
		const writers, perWriter, drainers, k = 4, 500, 2, 4

		// The interloper repeatedly stalls the queue the way a descheduled
		// (or crashed-and-recovered) lock holder would, forcing the try-paths
		// down their refusal branch.
		stop := make(chan struct{})
		var interloperWG sync.WaitGroup
		interloperWG.Add(1)
		go func() {
			defer interloperWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if q.LockForTest() {
					q.UnlockForTest()
				}
				// Yield so single-CPU runs interleave instead of starving
				// the writers behind this tight loop.
				runtime.Gosched()
			}
		}()

		var writersWG sync.WaitGroup
		writersWG.Add(writers)
		for w := 0; w < writers; w++ {
			go func(w int) {
				defer writersWG.Done()
				r := rng.NewXoshiro256(uint64(w) + 31)
				batch := make([]heap.Item, 0, k)
				for i := 0; i < perWriter; i++ {
					v := uint64(w*perWriter + i)
					if i%2 == 0 {
						for !q.TryAdd(r.Uint64n(1000), v) {
							runtime.Gosched()
						}
						continue
					}
					batch = append(batch, heap.Item{Priority: r.Uint64n(1000), Value: v})
					if len(batch) == k || i == perWriter-1 {
						for !q.TryAddBatch(batch) {
							runtime.Gosched()
						}
						batch = batch[:0]
					}
				}
			}(w)
		}

		// Concurrent try-drainers: refused attempts retry; a drainer exits
		// only after the writers are done and it observes the queue truly
		// empty under an acquired lock (once writers stop, the queue only
		// shrinks, so acquired-and-empty is a sound exit condition).
		doneCh := make(chan struct{})
		go func() {
			writersWG.Wait()
			close(doneCh)
		}()
		seen := make([]map[uint64]int, drainers)
		var drainWG sync.WaitGroup
		drainWG.Add(drainers)
		for c := 0; c < drainers; c++ {
			go func(c int) {
				defer drainWG.Done()
				local := map[uint64]int{}
				for {
					out, acquired := q.TryDeleteMinUpTo(k, nil)
					if acquired && len(out) > 0 {
						for _, it := range out {
							local[it.Value]++
						}
						continue
					}
					if acquired {
						select {
						case <-doneCh:
							seen[c] = local
							return
						default:
						}
					}
					runtime.Gosched()
				}
			}(c)
		}

		drainWG.Wait()
		close(stop)
		interloperWG.Wait()

		merged := map[uint64]int{}
		for _, m := range seen {
			for v, n := range m {
				merged[v] += n
			}
		}
		want := writers * perWriter
		if len(merged) != want {
			t.Fatalf("%v: %d distinct values drained, want %d", b, len(merged), want)
		}
		for v, n := range merged {
			if n != 1 {
				t.Fatalf("%v: value %d drained %d times", b, v, n)
			}
		}
	}
}
