//go:build dlzfail

package cpq

import (
	"testing"
	"time"

	"repro/internal/fail"
	"repro/internal/heap"
)

// TestTryPathsRefuseUnderInjection proves all four try entry points route
// through cpq/try/refuse: with an every-other-hit error policy armed they
// alternate refusal and success, and refused calls leave the queue's state
// untouched (the lock was never taken).
func TestTryPathsRefuseUnderInjection(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	q := New(BackingBinary, 16, 1)
	fail.Arm(fail.SiteCPQTryRefuse, fail.Policy{Kind: fail.KindError, Every: 2})

	// Every=2 fires on hits 2, 4, ... — first call of each pair succeeds.
	if !q.TryAdd(5, 100) {
		t.Fatal("hit 1: TryAdd refused")
	}
	if q.TryAdd(6, 101) {
		t.Fatal("hit 2: TryAdd succeeded through an armed refusal")
	}
	if !q.TryAddBatch([]heap.Item{{Priority: 7, Value: 102}}) {
		t.Fatal("hit 3: TryAddBatch refused")
	}
	if q.TryAddBatch([]heap.Item{{Priority: 8, Value: 103}}) {
		t.Fatal("hit 4: TryAddBatch succeeded through an armed refusal")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d after 2 accepted inserts, want 2", q.Len())
	}

	if it, ok, acquired := q.TryDeleteMin(); !acquired || !ok || it.Value != 100 {
		t.Fatalf("hit 5: TryDeleteMin = (%v, %v, %v), want element 100", it, ok, acquired)
	}
	if _, _, acquired := q.TryDeleteMin(); acquired {
		t.Fatal("hit 6: TryDeleteMin acquired through an armed refusal")
	}
	if out, acquired := q.TryDeleteMinUpTo(4, nil); !acquired || len(out) != 1 {
		t.Fatalf("hit 7: TryDeleteMinUpTo = (%d items, %v), want the last element", len(out), acquired)
	}
	if _, acquired := q.TryDeleteMinUpTo(4, nil); acquired {
		t.Fatal("hit 8: TryDeleteMinUpTo acquired through an armed refusal")
	}
	if got := fail.Fires(fail.SiteCPQTryRefuse); got != 4 {
		t.Errorf("refusal fires = %d, want 4", got)
	}
}

// TestTopPublishDelayWidensInFlightWindow arms a delay at cpq/top/publish
// and observes, from a lock-free reader, the mid-update sentinel that is
// normally visible only for a few instructions: the delayed publisher holds
// the word in-flight long enough for readers to see it, and the word returns
// to stable with the exact new minimum afterwards.
func TestTopPublishDelayWidensInFlightWindow(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	q := New(BackingBinary, 16, 1)
	q.Add(50, 1) // non-empty, published min 50

	fail.Arm(fail.SiteCPQTopPublish, fail.Policy{Kind: fail.KindDelay, Delay: 50 * time.Millisecond, Count: 1})
	done := make(chan struct{})
	go func() {
		q.Add(10, 2) // changes the minimum: Begin → [delay] → Publish
		close(done)
	}()

	sawInFlight := false
	deadline := time.Now().Add(2 * time.Second)
	for !sawInFlight && time.Now().Before(deadline) {
		w := q.ReadTop()
		if w.InFlight() {
			sawInFlight = true
			// The stale payload is the previously published minimum.
			if w.Min() != 50 {
				t.Errorf("mid-update payload = %d, want stale 50", w.Min())
			}
		}
	}
	<-done
	if !sawInFlight {
		t.Fatal("reader never observed the widened mid-update window")
	}
	if w := q.ReadTop(); w.InFlight() || w.Min() != 10 {
		t.Errorf("post-publish word = (min %d, inflight %v), want stable 10", w.Min(), w.InFlight())
	}
}
