package cpq

import (
	"testing"

	"repro/internal/heap"
	"repro/internal/rng"
)

// tombModel is the exact sequential reference the tombstone driver checks
// against: a priority-sorted slice of live items where Invalidate is applied
// as an immediate removal. The queue's lazy tombstones must be externally
// indistinguishable from that eager model — Len, the published top word and
// every delivered element have to match it after every operation.
type tombModel struct {
	items []heap.Item
}

func (m *tombModel) push(it heap.Item) {
	i := 0
	for i < len(m.items) && m.items[i].Priority <= it.Priority {
		i++
	}
	m.items = append(m.items, heap.Item{})
	copy(m.items[i+1:], m.items[i:])
	m.items[i] = it
}

// popValue removes the tied entry matching value from the minimum-priority
// run (heap backings break priority ties arbitrarily, so the model matches
// on the delivered value within the tied prefix). Reports whether the
// delivered item was a legal minimum.
func (m *tombModel) popValue(it heap.Item) bool {
	if len(m.items) == 0 || m.items[0].Priority != it.Priority {
		return false
	}
	for i, cand := range m.items {
		if cand.Priority != it.Priority {
			return false // value not found within the tied minimum run
		}
		if cand.Value == it.Value {
			m.items = append(m.items[:i], m.items[i+1:]...)
			return true
		}
	}
	return false
}

func (m *tombModel) removeValue(v uint64) (heap.Item, bool) {
	for i, it := range m.items {
		if it.Value == v {
			m.items = append(m.items[:i], m.items[i+1:]...)
			return it, true
		}
	}
	return heap.Item{}, false
}

// driveTombstone runs a byte-decoded add/invalidate/delete-min stream over
// one backing and checks the queue against the eager-removal model after
// every operation: Len must exclude tombstones the moment Invalidate
// returns, the top word must always publish the live minimum (stable,
// correct empty bit, minimum reduced to TopPrioMask), no pop path may ever
// deliver an invalidated element, and the tombstone counters must conserve.
// Priorities mix small values with values above 2^TopPrioBits so truncation
// and the full-resolution compaction decision are both exercised; values are
// drawn from a monotone counter, matching the uniqueness contract.
func driveTombstone(t *testing.T, b Backing, data []byte) {
	t.Helper()
	q := New(b, 4, uint64(len(data))+11)
	r := rng.NewXoshiro256(uint64(len(data)) + 13)
	model := &tombModel{}
	var nextVal uint64
	// invalidated records every value ever passed to Invalidate, so the
	// never-deliver-a-dead-element assertion covers the whole run.
	invalidated := make(map[uint64]bool)
	prio := func(op byte) uint64 {
		p := r.Uint64n(512)
		if op&0x40 != 0 {
			p |= r.Next() << TopPrioBits
		}
		return p
	}
	newItem := func(op byte) heap.Item {
		nextVal++
		return heap.Item{Priority: prio(op), Value: nextVal}
	}
	checkDelivered := func(opIdx int, it heap.Item) {
		if invalidated[it.Value] {
			t.Fatalf("%v: op %d delivered invalidated element (p=%d v=%d)", b, opIdx, it.Priority, it.Value)
		}
		if !model.popValue(it) {
			t.Fatalf("%v: op %d delivered (p=%d v=%d), not a legal minimum (model min %+v of %d)",
				b, opIdx, it.Priority, it.Value, model.items, len(model.items))
		}
	}
	var batch []heap.Item
	for opIdx, op := range data {
		switch op % 8 {
		case 0, 1:
			it := newItem(op)
			q.Add(it.Priority, it.Value)
			model.push(it)
		case 2:
			it, ok := q.DeleteMin()
			if ok != (len(model.items) > 0) {
				t.Fatalf("%v: op %d DeleteMin ok=%v with %d live modeled", b, opIdx, ok, len(model.items))
			}
			if ok {
				checkDelivered(opIdx, it)
			}
		case 3:
			k := int(op / 8 % 7)
			batch = batch[:0]
			for i := 0; i < k; i++ {
				batch = append(batch, newItem(op+byte(i)))
			}
			q.AddBatch(batch)
			for _, it := range batch {
				model.push(it)
			}
		case 4:
			k := int(op / 8 % 9)
			want := k
			if want > len(model.items) {
				want = len(model.items)
			}
			got := q.DeleteMinUpTo(k, batch[:0])
			batch = got[:0]
			if len(got) != want {
				t.Fatalf("%v: op %d DeleteMinUpTo(%d) returned %d live, want %d", b, opIdx, k, len(got), want)
			}
			for _, it := range got {
				checkDelivered(opIdx, it)
			}
		case 5:
			// Invalidate one random live element (possibly the minimum).
			if len(model.items) == 0 {
				continue
			}
			victim := model.items[r.Intn(len(model.items))]
			if !q.Invalidate(victim.Priority, victim.Value) {
				t.Fatalf("%v: op %d Invalidate(%d,%d) of a live element returned false", b, opIdx, victim.Priority, victim.Value)
			}
			invalidated[victim.Value] = true
			model.removeValue(victim.Value)
		case 6:
			// InvalidateBatch over up to 3 random live elements (duplicates
			// allowed in the request — only the first arms).
			if len(model.items) == 0 {
				continue
			}
			n := 1 + int(op/8%3)
			batch = batch[:0]
			for i := 0; i < n; i++ {
				batch = append(batch, model.items[r.Intn(len(model.items))])
			}
			wantArmed := 0
			seen := map[uint64]bool{}
			for _, it := range batch {
				if !seen[it.Value] {
					seen[it.Value] = true
					wantArmed++
				}
			}
			if armed := q.InvalidateBatch(batch); armed != wantArmed {
				t.Fatalf("%v: op %d InvalidateBatch armed %d, want %d", b, opIdx, armed, wantArmed)
			}
			for _, it := range batch {
				invalidated[it.Value] = true
				model.removeValue(it.Value)
			}
		case 7:
			it, ok, acquired := q.TryDeleteMin()
			if !acquired {
				t.Fatalf("%v: op %d TryDeleteMin refused without contention", b, opIdx)
			}
			if ok != (len(model.items) > 0) {
				t.Fatalf("%v: op %d TryDeleteMin ok=%v with %d live modeled", b, opIdx, ok, len(model.items))
			}
			if ok {
				checkDelivered(opIdx, it)
			}
		}
		if n := q.Len(); n != len(model.items) {
			t.Fatalf("%v: op %d Len=%d, want %d live (tombstones must be excluded)", b, opIdx, n, len(model.items))
		}
		w := q.ReadTop()
		if w.InFlight() {
			t.Fatalf("%v: op %d word still mid-update at quiescence", b, opIdx)
		}
		if w.Empty() != (len(model.items) == 0) {
			t.Fatalf("%v: op %d empty bit %v with %d live modeled", b, opIdx, w.Empty(), len(model.items))
		}
		if len(model.items) > 0 {
			if want := model.items[0].Priority & TopPrioMask; w.Min() != want {
				t.Fatalf("%v: op %d published min %d, want live min %d", b, opIdx, w.Min(), want)
			}
		}
		st := q.Stats()
		if st.Reclaimed > st.Invalidations {
			t.Fatalf("%v: op %d reclaimed %d > invalidations %d", b, opIdx, st.Reclaimed, st.Invalidations)
		}
	}
	// Drain to empty: every element still delivered must be live and every
	// tombstone must be reclaimed by the time the queue empties.
	for opIdx := 0; ; opIdx++ {
		it, ok := q.DeleteMin()
		if !ok {
			break
		}
		checkDelivered(-1-opIdx, it)
	}
	if len(model.items) != 0 {
		t.Fatalf("%v: drain ended with %d live modeled elements undelivered", b, len(model.items))
	}
	if st := q.Stats(); st.Reclaimed != st.Invalidations {
		t.Fatalf("%v: drained queue reclaimed %d of %d tombstones", b, st.Reclaimed, st.Invalidations)
	}
	if q.Len() != 0 {
		t.Fatalf("%v: drained queue Len=%d", b, q.Len())
	}
}

// TestTombstoneTracksModelAllBackings is the property-test complement of
// FuzzCPQTombstone: long pseudo-random streams over every backing, so the
// skip-and-compact paths are pinned for the pairing and skiplist backings
// (per-element loops) as well as the bulk binary/dary paths.
func TestTombstoneTracksModelAllBackings(t *testing.T) {
	for _, b := range Backings() {
		t.Run(b.String(), func(t *testing.T) {
			r := rng.NewXoshiro256(uint64(b)*23 + 7)
			for round := 0; round < 10; round++ {
				data := make([]byte, 300)
				for i := range data {
					data[i] = byte(r.Next())
				}
				driveTombstone(t, b, data)
			}
		})
	}
}

// FuzzCPQTombstone is the coverage-guided differential fuzzer over the
// add/invalidate/delete-min driver: byte-driven operation streams across all
// four backings against the eager-removal sorted-slice model, with
// priorities straddling 2^TopPrioBits. Its seed corpus runs on every plain
// `go test`; CI's fuzz-smoke step discovers and mutates it per push.
func FuzzCPQTombstone(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 5, 2, 5, 4, 6, 7, 3, 1})
	f.Add([]byte{3, 3, 5, 5, 6, 4, 4, 0x45, 0x42, 255, 13})
	seed := make([]byte, 160)
	for i := range seed {
		seed[i] = byte(i * 29)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			data = data[:2048]
		}
		for _, b := range Backings() {
			driveTombstone(t, b, data)
		}
	})
}

// TestInvalidateLenExcludesTombstones is the regression pin for the
// Len/Sizes satellite: an interior invalidation must drop Len immediately —
// before any pop reclaims the element — and the published top word must not
// move; invalidating the minimum must recompact and republish the next live
// minimum in the same call.
func TestInvalidateLenExcludesTombstones(t *testing.T) {
	for _, b := range Backings() {
		t.Run(b.String(), func(t *testing.T) {
			q := New(b, 8, 3)
			q.Add(10, 1)
			q.Add(20, 2)
			q.Add(30, 3)
			if q.Len() != 3 {
				t.Fatalf("Len=%d, want 3", q.Len())
			}
			// Interior tombstone: Len drops, word untouched (elided).
			pubBefore := q.Stats().Publications
			if !q.Invalidate(20, 2) {
				t.Fatal("Invalidate(20,2) returned false")
			}
			if q.Len() != 2 {
				t.Fatalf("Len=%d after interior Invalidate, want 2", q.Len())
			}
			if got := q.ReadTop().Min(); got != 10 {
				t.Fatalf("min %d after interior Invalidate, want 10", got)
			}
			if pubs := q.Stats().Publications; pubs != pubBefore {
				t.Fatalf("interior Invalidate republished (%d -> %d); want elision", pubBefore, pubs)
			}
			// While the tombstone is uncollected, re-arming is refused.
			if q.Invalidate(20, 2) {
				t.Fatal("re-Invalidate of an uncollected tombstone armed again")
			}
			// Minimum tombstone: word recompacts to the next live minimum.
			if !q.Invalidate(10, 1) {
				t.Fatal("Invalidate(10,1) returned false")
			}
			if q.Len() != 1 {
				t.Fatalf("Len=%d after min Invalidate, want 1", q.Len())
			}
			if got := q.ReadTop().Min(); got != 30 {
				t.Fatalf("min %d after min Invalidate, want 30 (compacted)", got)
			}
			it, ok := q.DeleteMin()
			if !ok || it.Priority != 30 || it.Value != 3 {
				t.Fatalf("DeleteMin = (%+v, %v), want the live (30,3)", it, ok)
			}
			if it, ok := q.DeleteMin(); ok {
				t.Fatalf("DeleteMin on logically empty queue delivered %+v", it)
			}
			if st := q.Stats(); st.Invalidations != 2 || st.Reclaimed != 2 {
				t.Fatalf("stats %+v, want 2 invalidations and 2 reclaimed", st)
			}
		})
	}
}
