// Package cpq provides the linearizable concurrent priority queue that
// Algorithm 2 assumes as its building block: "a set of m linearizable
// priority queues such that each supports Add(e, p), DeleteMin, ReadMin".
//
// Each Queue is a sequential priority queue (binary heap, pairing heap,
// skiplist, or cache-shaped 4-ary heap — selectable for ablation A4) guarded
// by a cache-line padded spinlock, plus a lock-free top word: a single
// atomic uint64 (pad.Seq64) packing the truncated minimum priority, an empty
// bit and a publication sequence whose parity is the mid-update sentinel
// (see TopWord). Backings that implement heap.BulkInterface get their
// whole-batch entry points used by AddBatch/DeleteMinUpTo, so the batched
// fast path's critical sections avoid per-element interface calls and hand
// back the post-batch minimum the publish step needs.
//
// The top word is what makes the MultiQueue's d-choice comparison and its
// empty-queue scan cheap: a dequeuer inspects d queues' cached tops with one
// atomic load each — no lock, ever — then locks only the winner. A lock
// holder about to change the published state marks the word mid-update on
// entry (Seq64.Begin, retaining the stale payload) and republishes the
// exact new minimum before release (Seq64.Publish); critical sections that
// provably cannot change the word — an insert at or above the published
// minimum of a non-empty queue, a delete on a published-empty queue — elide
// the pair entirely, leaving the word exact without a single store. Either
// way a stable word — even sequence — equals the queue's true minimum at
// the instant of the load, and a mid-update word is the "stale but
// previously true" information the paper's analysis models.
// Readers that cannot use a possibly-stale answer (TryDequeue skipping
// contended queues, the drain sweep trusting emptiness) dispatch on the
// sentinel instead of taking the lock.
//
// Queues additionally support lazy interior removal: Invalidate marks an
// element dead by generation stamp without searching for it, pop paths
// skip-and-compact tombstoned elements instead of delivering them, and Len,
// the top word and the publication-elision rule all account for tombstones
// exactly (DESIGN.md §9) — the Remove/Replace substrate of the mempool
// scenario.
package cpq

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/fail"
	"repro/internal/heap"
	"repro/internal/pad"
	"repro/internal/skiplist"
)

// EmptyTop is the ReadMin value published by an empty queue. It compares
// greater than every real priority, so two-choice comparisons naturally
// avoid empty queues.
const EmptyTop = math.MaxUint64

// Top-word encoding. The cached top is one pad.Seq64 word:
//
//	bits 63..16  prio48 — the minimum priority truncated to its low
//	             TopPrioBits bits (exact for every priority below 2^48;
//	             clock stamps reach 2^48 after ~2.8·10^14 enqueues)
//	bit  15      empty  — set when the queue was empty at publication
//	             (prio48 is all-ones then, so Key ordering needs no branch
//	             on real priorities)
//	bits 14..0   seq    — publication sequence; odd = mid-update sentinel
//
// The lock holder calls Begin at the top of every critical section that can
// change the published state (sequence goes odd, payload keeps the last
// published value) and Publish with the exact new minimum before release
// (sequence goes even); sections that provably cannot change the word elide
// both calls (see topCovers). Readers decode all of it from a single atomic
// load via TopWord.
const (
	// TopPrioBits is the width of the truncated priority field: 64 bits
	// minus the sequence field minus the empty bit.
	TopPrioBits = 63 - pad.SeqBits
	// TopPrioMask selects the priority bits a published word can carry;
	// ReadMin returns priorities reduced to this mask.
	TopPrioMask = 1<<TopPrioBits - 1
	// TopKeyInFlight is the comparison key of a mid-update word: it loses to
	// every real minimum, so d-choice comparisons skip queues whose lock
	// holder is mid-mutation (their lock would refuse a try anyway).
	TopKeyInFlight = 1 << TopPrioBits
	// TopKeyEmpty is the comparison key of a stable empty word: it loses
	// even to mid-update queues, which at least might hold elements.
	TopKeyEmpty = 1<<TopPrioBits + 1
)

// topSeqMask selects the sequence field of a raw top word.
const topSeqMask = 1<<pad.SeqBits - 1

// topPayload packs (truncated minimum, empty bit) into a Seq64 payload.
func topPayload(min uint64, empty bool) uint64 {
	if empty {
		return TopPrioMask<<1 | 1
	}
	return (min & TopPrioMask) << 1
}

// TopWord is a decoded view of a queue's cached top — the raw Seq64 word,
// read with one atomic load and carrying everything the lock-free read paths
// need: the truncated minimum, the empty bit and the mid-update sentinel.
type TopWord uint64

// InFlight reports the mid-update sentinel: a lock holder has entered a
// mutating critical section and not yet republished. Min still returns the
// last published (stale but previously true) value.
func (w TopWord) InFlight() bool { return w&1 == 1 }

// Empty reports the empty bit: the queue held nothing when the word was
// published.
func (w TopWord) Empty() bool { return w>>pad.SeqBits&1 == 1 }

// StableEmpty reports a trustworthy emptiness observation: the word is not
// mid-update and its empty bit is set, so the queue was truly empty at the
// load's linearization point. The MultiQueue's drain sweep skips such queues
// without touching their locks.
func (w TopWord) StableEmpty() bool { return w&1 == 0 && w.Empty() }

// Seq returns the word's publication sequence. It advances by exactly 2 per
// word-changing critical section (modulo 2^pad.SeqBits; covered inserts and
// empty deletes elide publication — see topCovers), which makes it a
// publication counter the coherence tests read; an odd value is the
// mid-update sentinel.
func (w TopWord) Seq() uint64 { return uint64(w) & topSeqMask }

// Min returns the cached minimum priority reduced to TopPrioMask (exact for
// priorities below 2^TopPrioBits), or EmptyTop when the empty bit is set.
// For a mid-update word this is the last published value.
func (w TopWord) Min() uint64 {
	if w.Empty() {
		return EmptyTop
	}
	return uint64(w) >> (pad.SeqBits + 1)
}

// Key returns the d-choice comparison key: the truncated minimum for stable
// non-empty words, TopKeyInFlight for mid-update words and TopKeyEmpty for
// stable empty ones, so argmin over keys prefers real minima, then
// possibly-full contended queues, then known-empty queues.
func (w TopWord) Key() uint64 {
	if w.InFlight() {
		return TopKeyInFlight
	}
	if w.Empty() {
		return TopKeyEmpty
	}
	return uint64(w) >> (pad.SeqBits + 1)
}

// Backing selects the sequential structure under each queue's lock.
type Backing int

const (
	// BackingBinary uses an array binary heap (default; best cache locality
	// among the per-element backings).
	BackingBinary Backing = iota
	// BackingPairing uses a pairing heap (O(1) insert).
	BackingPairing
	// BackingSkiplist uses a skiplist (O(1) expected delete-min).
	BackingSkiplist
	// BackingDAry uses a 4-ary array heap whose sibling groups align to
	// cache lines and whose heap.BulkInterface batch operations AddBatch and
	// DeleteMinUpTo dispatch to — the fastest backing for the batched fast
	// path (ablation A4; DESIGN.md §5).
	BackingDAry
)

// String returns the backing's name for benchmark labels.
func (b Backing) String() string {
	switch b {
	case BackingBinary:
		return "binary"
	case BackingPairing:
		return "pairing"
	case BackingSkiplist:
		return "skiplist"
	case BackingDAry:
		return "dary"
	default:
		return "unknown"
	}
}

// ParseBacking maps a backing's String name back to its constant, for
// command-line flags. It returns an error naming the valid values on
// unknown input.
func ParseBacking(name string) (Backing, error) {
	for _, b := range Backings() {
		if b.String() == name {
			return b, nil
		}
	}
	return 0, fmt.Errorf("cpq: unknown backing %q (want binary, pairing, skiplist or dary)", name)
}

// Backings returns every selectable backing, in declaration order — the
// sweep axis of ablation A4 and the differential tests.
func Backings() []Backing {
	return []Backing{BackingBinary, BackingPairing, BackingSkiplist, BackingDAry}
}

// slAdapter bridges skiplist.List to heap.Interface.
type slAdapter struct{ l *skiplist.List }

func (a slAdapter) Push(it heap.Item) {
	a.l.Push(skiplist.Item{Priority: it.Priority, Value: it.Value})
}

func (a slAdapter) Pop() (heap.Item, bool) {
	it, ok := a.l.Pop()
	return heap.Item{Priority: it.Priority, Value: it.Value}, ok
}

func (a slAdapter) Peek() (heap.Item, bool) {
	it, ok := a.l.Peek()
	return heap.Item{Priority: it.Priority, Value: it.Value}, ok
}

func (a slAdapter) Len() int { return a.l.Len() }

// Queue is one linearizable priority queue. Create with New.
type Queue struct {
	top  pad.Seq64 // lock-free top word; see the TopWord encoding
	lock pad.SpinLock
	pq   heap.Interface
	// bulk is pq's optional batch extension, detected once at construction;
	// nil for backings that only implement per-element operations. AddBatch
	// and DeleteMinUpTo dispatch through it when present, keeping their
	// critical sections monomorphic (one call per batch instead of one
	// interface call per element) and returning the post-batch minimum the
	// top-word publish consumes directly.
	bulk heap.BulkInterface
	// lockedRead disables the lock-free top cache for ablation A5: ReadMin
	// and ReadTop then take the lock and Peek, measuring what every cached
	// read would cost if it went through the critical section.
	lockedRead bool
	// pubMin/pubEmpty mirror the published word at full 64-bit resolution.
	// They are lock-holder-owned plain fields (written only inside
	// publishing critical sections, read only under the lock) and exist so
	// the publication-elision check topCovers can compare full priorities —
	// the truncated word alone cannot prove an insert harmless when
	// priorities above 2^TopPrioBits are in play.
	pubMin   uint64
	pubEmpty bool
	// elisions/publications count the publication protocol's two outcomes:
	// critical sections that proved the word unchanged and skipped the
	// Begin/Publish pair, and sections that republished. Incremented only
	// while the lock is held — the line is already exclusive, so the atomic
	// add costs a handful of cycles — and read lock-free by Stats for
	// monitoring (dlzd's /metrics).
	elisions     atomic.Uint64
	publications atomic.Uint64

	// Lazy tombstone state (DESIGN.md §9). dead maps the value of each
	// invalidated-but-not-yet-reclaimed element to the generation stamp its
	// Invalidate drew from epoch; it is nil until the first Invalidate, so
	// structures that never remove interior elements pay nothing beyond one
	// empty-map length check per pop. Both fields are lock-holder-owned.
	//
	// The invariant every critical section restores before unlock: the
	// backing's minimum is never a tombstoned element (compactTopLocked pops
	// dead minima, consuming their tombstones), so pubMin/pubEmpty — and
	// therefore the published top word and the ReadMin elision rule — always
	// describe the live minimum, and tombstoned elements are physically
	// reclaimed no later than the pop that would have surfaced them.
	dead  map[uint64]uint64
	epoch uint64
	// invalidations/reclaimed count tombstones armed and tombstones consumed
	// (by pop-path skipping or top compaction); their difference is the
	// current tombstone population Len subtracts. Incremented under the lock,
	// read lock-free by Stats.
	invalidations atomic.Uint64
	reclaimed     atomic.Uint64

	// sealed marks a queue retired from its MultiQueue's live range by a
	// shrink epoch (SealAndDrain) or parked beyond the initial topology at
	// construction. A sealed queue refuses every insert and invalidation —
	// reporting refusal so the caller re-syncs its epoch and re-targets — and
	// is permanently empty until Unseal. Lock-holder-owned, like pubMin.
	sealed bool
}

// New returns an empty queue with the given backing and capacity hint.
// seed feeds the skiplist's level generator and is ignored by the other
// backings.
func New(backing Backing, capacity int, seed uint64) *Queue {
	q := &Queue{}
	switch backing {
	case BackingBinary:
		q.pq = heap.NewBinary(capacity)
	case BackingPairing:
		q.pq = heap.NewPairing(capacity)
	case BackingSkiplist:
		q.pq = slAdapter{skiplist.New(seed)}
	case BackingDAry:
		q.pq = heap.NewDAry(capacity)
	default:
		panic("cpq: unknown backing")
	}
	q.bulk, _ = q.pq.(heap.BulkInterface)
	q.top.Init(topPayload(0, true))
	q.pubEmpty = true
	return q
}

// SetLockedRead switches the queue to locked top reads (ablation A5): every
// ReadMin/ReadTop takes the lock and Peeks instead of loading the cached
// word. Call before the queue is shared; the flag is not synchronized. The
// mutating sections keep publishing the word either way, so flipping the
// ablation does not desynchronize the cache.
func (q *Queue) SetLockedRead(locked bool) { q.lockedRead = locked }

// beginTop marks the top word mid-update; callers must hold the lock and be
// about to change the published state. Readers that land between beginTop
// and publishTop see the sentinel plus the last published minimum.
func (q *Queue) beginTop() { q.top.Begin() }

// topCovers reports whether the published top already covers an insert whose
// minimum priority is p: the queue is non-empty with published minimum <= p,
// so the insert cannot change the word's value or emptiness and the whole
// Begin/Publish pair is elided — the stable word stays exact without a
// single atomic store. Under the MultiQueue's monotone clock stamps nearly
// every steady-state insert is covered, which makes the enqueue-side
// critical section store-free. Callers must hold the lock; the comparison
// uses the full-resolution mirror, so priorities beyond the word's truncated
// field cannot fool it.
func (q *Queue) topCovers(p uint64) bool { return !q.pubEmpty && p >= q.pubMin }

// publishTop republishes the exact current minimum from a Peek; callers must
// hold the lock. The per-element paths use it; the bulk paths publish the
// minimum their batch call already reported via publishTopItem.
func (q *Queue) publishTop() {
	it, ok := q.pq.Peek()
	q.publishTopItem(it, ok)
}

// publishTopItem republishes the top word from an already-known minimum
// (ok false meaning empty), maintaining the full-resolution mirror; callers
// must hold the lock.
func (q *Queue) publishTopItem(it heap.Item, ok bool) {
	if fail.Enabled {
		// We are between Begin and Publish inside a spinlock critical
		// section: a delay here stretches the window in which readers see
		// the mid-update sentinel. Error returns are ignored and panic
		// policies must not be armed at this site (the lock would be
		// stranded) — see the site taxonomy in package fail.
		_ = fail.Inject(fail.SiteCPQTopPublish)
	}
	q.pubMin, q.pubEmpty = it.Priority, !ok
	q.top.Publish(topPayload(it.Priority, !ok))
	q.publications.Add(1)
}

// addLocked inserts one item under the held lock with the publication
// protocol applied: elided when the published top covers the priority,
// Begin/Publish bracketing otherwise. The four insert entry points share it
// so the elision rule lives in one place.
func (q *Queue) addLocked(priority, value uint64) {
	if q.topCovers(priority) {
		q.elisions.Add(1)
		q.pq.Push(heap.Item{Priority: priority, Value: value})
		return
	}
	q.beginTop()
	q.pq.Push(heap.Item{Priority: priority, Value: value})
	q.publishTop()
}

// addBatchLocked inserts a non-empty batch under the held lock with the
// publication protocol applied, dispatching through pushBatchLocked.
func (q *Queue) addBatchLocked(items []heap.Item) {
	if q.topCovers(batchMin(items)) {
		q.elisions.Add(1)
		q.pushBatchLocked(items)
		return
	}
	q.beginTop()
	min, ok := q.pushBatchLocked(items)
	q.publishTopItem(min, ok)
}

// compactTopLocked pops tombstoned minima off the backing until the minimum
// is live (or the backing is empty), consuming each tombstone it reclaims;
// callers must hold the lock. This is what maintains the tombstone invariant
// — the backing's minimum is never dead at unlock — so the published top
// word, the full-resolution pubMin mirror, and the ReadMin elision rule stay
// exact without any pop path ever delivering a dead element. A queue with no
// live tombstones returns after one length check.
func (q *Queue) compactTopLocked() {
	for len(q.dead) > 0 {
		it, ok := q.pq.Peek()
		if !ok {
			return
		}
		if _, dead := q.dead[it.Value]; !dead {
			return
		}
		q.pq.Pop()
		delete(q.dead, it.Value)
		q.reclaimed.Add(1)
	}
}

// filterDeadFrom removes tombstoned elements from dst[start:] in place,
// consuming their tombstones, and returns the shortened slice; callers must
// hold the lock. The bulk drain path runs it over each PopBatch chunk — the
// skip half of skip-and-compact — so interior tombstones are reclaimed by
// the same drain that would have surfaced them.
func (q *Queue) filterDeadFrom(dst []heap.Item, start int) []heap.Item {
	w := start
	for _, it := range dst[start:] {
		if _, dead := q.dead[it.Value]; dead {
			delete(q.dead, it.Value)
			q.reclaimed.Add(1)
			continue
		}
		dst[w] = it
		w++
	}
	return dst[:w]
}

// popLocked removes the minimum under the held lock with the publication
// protocol applied: a published-empty queue elides the whole pair. The
// tombstone invariant guarantees the popped minimum is live; the compaction
// pass afterwards reclaims any dead elements the removal uncovered before
// the new minimum is published.
func (q *Queue) popLocked() (heap.Item, bool) {
	if q.pubEmpty {
		q.elisions.Add(1)
		return heap.Item{}, false
	}
	q.beginTop()
	it, ok := q.pq.Pop()
	q.compactTopLocked()
	q.publishTop()
	return it, ok
}

// drainLocked removes up to k live minima into dst under the held lock with
// the publication protocol applied, dispatching through popUpToLocked.
// Tombstoned elements inside a drained chunk are skipped and reclaimed
// rather than delivered, and the drain re-fills until k live elements are
// obtained or the backing runs out; the published minimum is compacted to
// the next live element before release.
func (q *Queue) drainLocked(k int, dst []heap.Item) []heap.Item {
	if q.pubEmpty {
		q.elisions.Add(1)
		return dst
	}
	q.beginTop()
	start := len(dst)
	for {
		var min heap.Item
		var ok bool
		dst, min, ok = q.popUpToLocked(k-(len(dst)-start), dst)
		if len(q.dead) != 0 {
			dst = q.filterDeadFrom(dst, start)
			if len(dst)-start < k && ok {
				continue // dead elements displaced live ones; keep draining
			}
			q.compactTopLocked()
			min, ok = q.pq.Peek()
		}
		q.publishTopItem(min, ok)
		return dst
	}
}

// Add inserts (priority, value), blocking on the queue's lock. It reports
// whether the insert was accepted: false means the queue is sealed (retired
// by a shrink epoch) and the element was NOT inserted — the caller must
// re-sync its epoch and re-target a live queue.
func (q *Queue) Add(priority, value uint64) bool {
	q.lock.Lock()
	if q.sealed {
		q.lock.Unlock()
		return false
	}
	q.addLocked(priority, value)
	q.lock.Unlock()
	return true
}

// batchMin returns the smallest priority in a non-empty batch — the value
// the publication-elision check compares against the published minimum.
func batchMin(items []heap.Item) uint64 {
	min := items[0].Priority
	for _, it := range items[1:] {
		if it.Priority < min {
			min = it.Priority
		}
	}
	return min
}

// pushBatchLocked inserts the batch through the backing's bulk entry point
// when it has one, or per element otherwise, and returns the post-batch
// minimum; callers must hold the lock.
func (q *Queue) pushBatchLocked(items []heap.Item) (heap.Item, bool) {
	if q.bulk != nil {
		return q.bulk.PushBatch(items)
	}
	for _, it := range items {
		q.pq.Push(it)
	}
	return q.pq.Peek()
}

// popUpToLocked drains up to k items into dst through the backing's bulk
// entry point when it has one, or per element otherwise, and returns the
// post-drain minimum; callers must hold the lock.
func (q *Queue) popUpToLocked(k int, dst []heap.Item) ([]heap.Item, heap.Item, bool) {
	if q.bulk != nil {
		return q.bulk.PopBatch(k, dst)
	}
	for n := 0; n < k; n++ {
		it, ok := q.pq.Pop()
		if !ok {
			break
		}
		dst = append(dst, it)
	}
	min, ok := q.pq.Peek()
	return dst, min, ok
}

// AddBatch inserts all items under one lock acquisition with one cached-top
// publish, amortising the lock hand-off and the top-store cache-line write
// over len(items) elements — through the backing's PushBatch when it offers
// one. It is the insert half of the MultiQueue's sticky/batched fast path;
// an empty batch is a no-op that takes no lock. Like Add it reports whether
// the batch was accepted: false means the queue is sealed and NO item was
// inserted.
func (q *Queue) AddBatch(items []heap.Item) bool {
	if len(items) == 0 {
		return true
	}
	q.lock.Lock()
	if q.sealed {
		q.lock.Unlock()
		return false
	}
	q.addBatchLocked(items)
	q.lock.Unlock()
	return true
}

// TryAddBatch is AddBatch's non-blocking variant: it inserts the batch only
// if the lock is free and the queue is unsealed, reporting whether the
// insert happened. An empty batch reports true without touching the lock.
func (q *Queue) TryAddBatch(items []heap.Item) bool {
	if len(items) == 0 {
		return true
	}
	if fail.Enabled && fail.Inject(fail.SiteCPQTryRefuse) != nil {
		return false
	}
	if !q.lock.TryLock() {
		return false
	}
	if q.sealed {
		q.lock.Unlock()
		return false
	}
	q.addBatchLocked(items)
	q.lock.Unlock()
	return true
}

// DeleteMinUpTo removes up to k minimum items under one lock acquisition,
// appending them to dst in ascending priority order and returning the
// extended slice. Fewer than k items are returned only when the queue runs
// empty; dst is returned unchanged when the queue is empty or k <= 0. This
// is the remove half of the MultiQueue's sticky/batched fast path: one lock
// and one cached-top publish per k elements instead of per element.
func (q *Queue) DeleteMinUpTo(k int, dst []heap.Item) []heap.Item {
	if k <= 0 {
		return dst
	}
	q.lock.Lock()
	dst = q.drainLocked(k, dst)
	q.lock.Unlock()
	return dst
}

// TryDeleteMinUpTo is DeleteMinUpTo's non-blocking variant: acquired
// reports whether the lock was obtained; when it is false the queue was
// contended and dst is returned unchanged. With the lock held it drains up
// to k items exactly like DeleteMinUpTo (so fewer than k with acquired true
// means the queue ran empty).
func (q *Queue) TryDeleteMinUpTo(k int, dst []heap.Item) (out []heap.Item, acquired bool) {
	if k <= 0 {
		return dst, true
	}
	if fail.Enabled && fail.Inject(fail.SiteCPQTryRefuse) != nil {
		return dst, false
	}
	if !q.lock.TryLock() {
		return dst, false
	}
	dst = q.drainLocked(k, dst)
	q.lock.Unlock()
	return dst, true
}

// TryAdd inserts (priority, value) only if the lock is free and the queue is
// unsealed, reporting whether the insert happened. MultiQueue enqueues use it
// to skip contended queues and re-draw.
func (q *Queue) TryAdd(priority, value uint64) bool {
	if fail.Enabled && fail.Inject(fail.SiteCPQTryRefuse) != nil {
		return false
	}
	if !q.lock.TryLock() {
		return false
	}
	if q.sealed {
		q.lock.Unlock()
		return false
	}
	q.addLocked(priority, value)
	q.lock.Unlock()
	return true
}

// DeleteMin removes and returns the minimum item, blocking on the lock.
// ok is false when the queue is empty.
func (q *Queue) DeleteMin() (it heap.Item, ok bool) {
	q.lock.Lock()
	it, ok = q.popLocked()
	q.lock.Unlock()
	return it, ok
}

// TryDeleteMin attempts DeleteMin without blocking. acquired reports whether
// the lock was obtained; when acquired is false the queue was contended and
// (it, ok) are meaningless.
func (q *Queue) TryDeleteMin() (it heap.Item, ok, acquired bool) {
	if fail.Enabled && fail.Inject(fail.SiteCPQTryRefuse) != nil {
		return heap.Item{}, false, false
	}
	if !q.lock.TryLock() {
		return heap.Item{}, false, false
	}
	it, ok = q.popLocked()
	q.lock.Unlock()
	return it, ok, true
}

// invalidateLocked arms one tombstone under the held lock and returns
// whether it was newly armed (false for a value already tombstoned). It does
// not touch the top word; callers run the publication decision once per
// critical section.
func (q *Queue) invalidateLocked(value uint64) bool {
	if _, dup := q.dead[value]; dup {
		return false
	}
	if q.dead == nil {
		q.dead = make(map[uint64]uint64)
	}
	q.epoch++
	q.dead[value] = q.epoch
	q.invalidations.Add(1)
	return true
}

// finishInvalidateLocked applies the publication protocol after one or more
// tombstones were armed: only a tombstone covering the published minimum can
// change the word (minPrio is the smallest priority armed this section), and
// even then only when the visible minimum is in fact one of the newly dead
// elements — a same-priority live twin keeps the word exact as published.
// Every other invalidation elides the Begin/Publish pair entirely, exactly
// like a covered insert; callers must hold the lock.
func (q *Queue) finishInvalidateLocked(minPrio uint64) {
	if !q.pubEmpty && minPrio <= q.pubMin {
		if it, ok := q.pq.Peek(); ok {
			if _, dead := q.dead[it.Value]; dead {
				q.beginTop()
				q.compactTopLocked()
				q.publishTop()
				return
			}
		}
	}
	q.elisions.Add(1)
}

// Invalidate marks the element (priority, value) dead with a fresh
// generation stamp — the lazy Remove the mempool scenario's replace-by-fee
// and eviction paths ride (DESIGN.md §9). The element is not searched for:
// it is reclaimed by the first pop path that would have surfaced it, or
// immediately when it is the published minimum (the top word is recompacted
// so ReadMin and its elision rule stay exact). Len excludes it from the
// moment Invalidate returns, so conservation audits see the removal as
// already applied.
//
// The caller must guarantee the element is resident in this queue: priority
// must be the priority it was inserted with, value its insert value, and
// values must be unique among this queue's live and tombstoned elements (the
// core layer's ElemRef plumbing and the mempool's residency index provide
// exactly this). Invalidating an absent element permanently corrupts the
// queue's length accounting. Returns false — arming nothing — when value is
// already tombstoned, or when the queue is sealed (a shrink drained its
// residents elsewhere; the core layer's forwarding table re-targets the ref).
func (q *Queue) Invalidate(priority, value uint64) bool {
	q.lock.Lock()
	if q.sealed {
		q.lock.Unlock()
		return false
	}
	armed := q.invalidateLocked(value)
	if armed {
		q.finishInvalidateLocked(priority)
	}
	q.lock.Unlock()
	return armed
}

// InvalidateBatch arms one tombstone per item under a single lock
// acquisition with a single publication decision — the remove-side analogue
// of AddBatch, and the entry point MQHandle.RemoveBatch's per-queue runs
// dispatch to. Items carry (Priority, Value) exactly as inserted, under the
// same residency contract as Invalidate. It returns the number of tombstones
// newly armed (already-dead values arm nothing); an empty batch takes no
// lock.
func (q *Queue) InvalidateBatch(items []heap.Item) int {
	if len(items) == 0 {
		return 0
	}
	q.lock.Lock()
	if q.sealed {
		q.lock.Unlock()
		return 0
	}
	armed := 0
	minPrio := uint64(0)
	for _, it := range items {
		if !q.invalidateLocked(it.Value) {
			continue
		}
		if armed == 0 || it.Priority < minPrio {
			minPrio = it.Priority
		}
		armed++
	}
	if armed > 0 {
		q.finishInvalidateLocked(minPrio)
	}
	q.lock.Unlock()
	return armed
}

// ReadTop returns the queue's decoded top word from a single atomic load —
// zero lock acquisitions, the steady-state read path of the MultiQueue's
// d-choice comparison and empty-queue scan. A stable word (even sequence)
// equals the queue's true state at the load's linearization point; a
// mid-update word carries the sentinel plus the last published minimum.
// Under SetLockedRead (ablation A5) it instead takes the lock and Peeks,
// synthesizing an always-stable word.
func (q *Queue) ReadTop() TopWord {
	if q.lockedRead {
		q.lock.Lock()
		it, ok := q.pq.Peek()
		q.lock.Unlock()
		return TopWord(topPayload(it.Priority, !ok) << pad.SeqBits)
	}
	return TopWord(q.top.LoadWord())
}

// ReadMin returns the cached minimum priority without locking: the true
// minimum reduced to TopPrioMask (exact for priorities below 2^TopPrioBits),
// or EmptyTop when the queue was last seen empty. Mid-update words report
// the last published value — the paper's stale-but-previously-true read.
// This is Algorithm 2's ReadMin specialized to the priority, which is all
// the two-choice comparison consumes.
func (q *Queue) ReadMin() uint64 { return q.ReadTop().Min() }

// PeekMin returns the current minimum item under the lock; ok is false when
// empty. Used by tests and the exact-drain verifier, not by the hot path.
func (q *Queue) PeekMin() (it heap.Item, ok bool) {
	q.lock.Lock()
	it, ok = q.pq.Peek()
	q.lock.Unlock()
	return it, ok
}

// Len returns the number of live elements under the lock (exact at
// quiescence): tombstoned elements still awaiting physical reclamation are
// excluded, so drain and conservation audits see an Invalidate as applied
// the moment it returns.
func (q *Queue) Len() int {
	q.lock.Lock()
	n := q.pq.Len() - len(q.dead)
	q.lock.Unlock()
	return n
}

// QueueStats is a point-in-time snapshot of one queue's internal event
// counters — the observability surface dlzd's /metrics aggregates per
// tenant. All counters are monotonic since construction.
type QueueStats struct {
	// Elisions counts critical sections that proved the published top word
	// unchanged and skipped the Begin/Publish pair entirely: covered inserts
	// (batch minimum at or above the published minimum of a non-empty queue)
	// and deletes on a published-empty queue. Steady-state monotone-stamp
	// enqueues are almost all elisions (DESIGN.md §6).
	Elisions uint64
	// Publications counts critical sections that republished the top word.
	Publications uint64
	// LockContended counts blocking Lock acquisitions that found the lock
	// held and entered the spin-backoff slow path (pad.SpinLock.Contended).
	LockContended uint64
	// Invalidations counts tombstones armed by Invalidate/InvalidateBatch
	// since construction; it doubles as the generation-stamp high-water mark.
	Invalidations uint64
	// Reclaimed counts tombstones consumed — dead elements physically
	// removed by pop-path skipping or top compaction. Invalidations −
	// Reclaimed is the current tombstone population Len subtracts.
	Reclaimed uint64
}

// Stats returns the queue's event counters without taking the lock. Each
// counter is individually exact; the snapshot as a whole is racy under
// concurrency, which monitoring tolerates.
func (q *Queue) Stats() QueueStats {
	return QueueStats{
		Elisions:      q.elisions.Load(),
		Publications:  q.publications.Load(),
		LockContended: q.lock.Contended(),
		Invalidations: q.invalidations.Load(),
		Reclaimed:     q.reclaimed.Load(),
	}
}

// LockForTest acquires the queue's lock without performing an operation and
// reports whether it succeeded. Failure-injection tests use it to simulate a
// thread that crashed while holding the lock — the liveness hazard of
// lock-based MultiQueues that the try-operations are designed to route
// around.
func (q *Queue) LockForTest() bool { return q.lock.TryLock() }

// UnlockForTest releases a lock taken with LockForTest.
func (q *Queue) UnlockForTest() { q.lock.Unlock() }

// Seal retires the queue without draining it: set at construction for shard
// slots beyond the initial topology (the parked tail of a MaxM-sized array).
// Call only before the queue is shared or under external serialization; a
// shared live queue is retired with SealAndDrain instead.
func (q *Queue) Seal() {
	q.lock.Lock()
	q.sealed = true
	q.lock.Unlock()
}

// SealAndDrain retires a live queue in one critical section — the victim
// half of a shrink epoch: mark the queue sealed, remove every live element
// into dst (tombstoned elements are skipped and their tombstones consumed,
// so Invalidations == Reclaimed for this queue afterwards), and publish a
// stable empty top word. Because seal and drain are atomic under the queue's
// lock, an insert racing the shrink either lands before the seal (its
// element is drained and donated with the rest) or is refused after it —
// no element can slip into a retired shard. Returns dst extended with the
// drained live elements, in ascending priority order.
//
// Sealing an already-sealed queue drains nothing and returns dst unchanged.
func (q *Queue) SealAndDrain(dst []heap.Item) []heap.Item {
	q.lock.Lock()
	if q.sealed {
		q.lock.Unlock()
		return dst
	}
	q.sealed = true
	if q.pubEmpty {
		// The tombstone invariant means a published-empty queue has an empty
		// backing (and therefore no tombstones): seal is the only change.
		q.elisions.Add(1)
		q.lock.Unlock()
		return dst
	}
	q.beginTop()
	start := len(dst)
	for {
		var ok bool
		dst, _, ok = q.popUpToLocked(1<<30, dst)
		if len(q.dead) != 0 {
			dst = q.filterDeadFrom(dst, start)
		}
		if !ok {
			break
		}
	}
	q.publishTopItem(heap.Item{}, false)
	q.lock.Unlock()
	return dst
}

// Drain removes every live element into dst without retiring the queue —
// the snapshot half of the durability rung: the shard stays in service and
// keeps accepting inserts the moment the lock releases, so a concurrent
// flush is refused by nothing and loses nothing (unlike a seal, whose
// refusal the flush fallback path does not check). Tombstoned elements are
// skipped and their tombstones consumed, and a stable empty top word is
// published before the lock releases. Returns dst extended with the drained
// live elements in ascending priority order. The caller re-adds the drained
// frame (snapshotters quiesce mutators first, so the empty window is
// invisible); draining a sealed queue returns dst unchanged — sealed shards
// hold no elements.
func (q *Queue) Drain(dst []heap.Item) []heap.Item {
	q.lock.Lock()
	if q.sealed {
		q.lock.Unlock()
		return dst
	}
	if q.pubEmpty {
		// Tombstone invariant: published-empty means empty backing.
		q.elisions.Add(1)
		q.lock.Unlock()
		return dst
	}
	q.beginTop()
	start := len(dst)
	for {
		var ok bool
		dst, _, ok = q.popUpToLocked(1<<30, dst)
		if len(q.dead) != 0 {
			dst = q.filterDeadFrom(dst, start)
		}
		if !ok {
			break
		}
	}
	q.publishTopItem(heap.Item{}, false)
	q.lock.Unlock()
	return dst
}

// Unseal returns a sealed queue to service — the grow half of a resize
// epoch, run on parked tail slots before the new topology is published so
// every queue inside the new live range accepts inserts by the time any
// handle can target it.
func (q *Queue) Unseal() {
	q.lock.Lock()
	q.sealed = false
	q.lock.Unlock()
}

// Sealed reports whether the queue is currently sealed (taking the lock;
// not a hot-path operation).
func (q *Queue) Sealed() bool {
	q.lock.Lock()
	s := q.sealed
	q.lock.Unlock()
	return s
}
