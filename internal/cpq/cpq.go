// Package cpq provides the linearizable concurrent priority queue that
// Algorithm 2 assumes as its building block: "a set of m linearizable
// priority queues such that each supports Add(e, p), DeleteMin, ReadMin".
//
// Each Queue is a sequential priority queue (binary heap, pairing heap,
// skiplist, or cache-shaped 4-ary heap — selectable for ablation A4) guarded
// by a cache-line padded spinlock, plus an atomically published cached copy
// of the minimum priority. Backings that implement heap.BulkInterface get
// their whole-batch entry points used by AddBatch/DeleteMinUpTo, so the
// batched fast path's critical sections avoid per-element interface calls.
// The cache is what makes the MultiQueue's two-choice comparison cheap:
// a dequeuer inspects two queues' ReadMin values without taking either lock,
// then locks only the winner. The cached top is updated inside the lock's
// critical section before release, so any ReadMin value observed corresponds
// to an actual minimum at some point during the last critical section —
// exactly the "stale but previously true" information the paper's analysis
// models.
package cpq

import (
	"fmt"
	"math"

	"repro/internal/heap"
	"repro/internal/pad"
	"repro/internal/skiplist"
)

// EmptyTop is the ReadMin value published by an empty queue. It compares
// greater than every real priority, so two-choice comparisons naturally
// avoid empty queues.
const EmptyTop = math.MaxUint64

// Backing selects the sequential structure under each queue's lock.
type Backing int

const (
	// BackingBinary uses an array binary heap (default; best cache locality
	// among the per-element backings).
	BackingBinary Backing = iota
	// BackingPairing uses a pairing heap (O(1) insert).
	BackingPairing
	// BackingSkiplist uses a skiplist (O(1) expected delete-min).
	BackingSkiplist
	// BackingDAry uses a 4-ary array heap whose sibling groups align to
	// cache lines and whose heap.BulkInterface batch operations AddBatch and
	// DeleteMinUpTo dispatch to — the fastest backing for the batched fast
	// path (ablation A4; DESIGN.md §5).
	BackingDAry
)

// String returns the backing's name for benchmark labels.
func (b Backing) String() string {
	switch b {
	case BackingBinary:
		return "binary"
	case BackingPairing:
		return "pairing"
	case BackingSkiplist:
		return "skiplist"
	case BackingDAry:
		return "dary"
	default:
		return "unknown"
	}
}

// ParseBacking maps a backing's String name back to its constant, for
// command-line flags. It returns an error naming the valid values on
// unknown input.
func ParseBacking(name string) (Backing, error) {
	for _, b := range Backings() {
		if b.String() == name {
			return b, nil
		}
	}
	return 0, fmt.Errorf("cpq: unknown backing %q (want binary, pairing, skiplist or dary)", name)
}

// Backings returns every selectable backing, in declaration order — the
// sweep axis of ablation A4 and the differential tests.
func Backings() []Backing {
	return []Backing{BackingBinary, BackingPairing, BackingSkiplist, BackingDAry}
}

// slAdapter bridges skiplist.List to heap.Interface.
type slAdapter struct{ l *skiplist.List }

func (a slAdapter) Push(it heap.Item) {
	a.l.Push(skiplist.Item{Priority: it.Priority, Value: it.Value})
}

func (a slAdapter) Pop() (heap.Item, bool) {
	it, ok := a.l.Pop()
	return heap.Item{Priority: it.Priority, Value: it.Value}, ok
}

func (a slAdapter) Peek() (heap.Item, bool) {
	it, ok := a.l.Peek()
	return heap.Item{Priority: it.Priority, Value: it.Value}, ok
}

func (a slAdapter) Len() int { return a.l.Len() }

// Queue is one linearizable priority queue. Create with New.
type Queue struct {
	top  pad.Uint64 // cached minimum priority, EmptyTop when empty
	lock pad.SpinLock
	pq   heap.Interface
	// bulk is pq's optional batch extension, detected once at construction;
	// nil for backings that only implement per-element operations. AddBatch
	// and DeleteMinUpTo dispatch through it when present, keeping their
	// critical sections monomorphic (one call per batch instead of one
	// interface call per element).
	bulk heap.BulkInterface
}

// New returns an empty queue with the given backing and capacity hint.
// seed feeds the skiplist's level generator and is ignored by the other
// backings.
func New(backing Backing, capacity int, seed uint64) *Queue {
	q := &Queue{}
	switch backing {
	case BackingBinary:
		q.pq = heap.NewBinary(capacity)
	case BackingPairing:
		q.pq = heap.NewPairing(capacity)
	case BackingSkiplist:
		q.pq = slAdapter{skiplist.New(seed)}
	case BackingDAry:
		q.pq = heap.NewDAry(capacity)
	default:
		panic("cpq: unknown backing")
	}
	q.bulk, _ = q.pq.(heap.BulkInterface)
	q.top.Store(EmptyTop)
	return q
}

// publishTop refreshes the cached minimum; callers must hold the lock.
func (q *Queue) publishTop() {
	if it, ok := q.pq.Peek(); ok {
		q.top.Store(it.Priority)
	} else {
		q.top.Store(EmptyTop)
	}
}

// Add inserts (priority, value), blocking on the queue's lock.
func (q *Queue) Add(priority, value uint64) {
	q.lock.Lock()
	q.pq.Push(heap.Item{Priority: priority, Value: value})
	q.publishTop()
	q.lock.Unlock()
}

// pushBatchLocked inserts the batch through the backing's bulk entry point
// when it has one, or per element otherwise; callers must hold the lock.
func (q *Queue) pushBatchLocked(items []heap.Item) {
	if q.bulk != nil {
		q.bulk.PushBatch(items)
		return
	}
	for _, it := range items {
		q.pq.Push(it)
	}
}

// popUpToLocked drains up to k items into dst through the backing's bulk
// entry point when it has one, or per element otherwise; callers must hold
// the lock.
func (q *Queue) popUpToLocked(k int, dst []heap.Item) []heap.Item {
	if q.bulk != nil {
		return q.bulk.PopBatch(k, dst)
	}
	for n := 0; n < k; n++ {
		it, ok := q.pq.Pop()
		if !ok {
			break
		}
		dst = append(dst, it)
	}
	return dst
}

// AddBatch inserts all items under one lock acquisition with one cached-top
// publish, amortising the lock hand-off and the top-store cache-line write
// over len(items) elements — through the backing's PushBatch when it offers
// one. It is the insert half of the MultiQueue's sticky/batched fast path;
// an empty batch is a no-op that takes no lock.
func (q *Queue) AddBatch(items []heap.Item) {
	if len(items) == 0 {
		return
	}
	q.lock.Lock()
	q.pushBatchLocked(items)
	q.publishTop()
	q.lock.Unlock()
}

// TryAddBatch is AddBatch's non-blocking variant: it inserts the batch only
// if the lock is free, reporting whether the insert happened. An empty batch
// reports true without touching the lock.
func (q *Queue) TryAddBatch(items []heap.Item) bool {
	if len(items) == 0 {
		return true
	}
	if !q.lock.TryLock() {
		return false
	}
	q.pushBatchLocked(items)
	q.publishTop()
	q.lock.Unlock()
	return true
}

// DeleteMinUpTo removes up to k minimum items under one lock acquisition,
// appending them to dst in ascending priority order and returning the
// extended slice. Fewer than k items are returned only when the queue runs
// empty; dst is returned unchanged when the queue is empty or k <= 0. This
// is the remove half of the MultiQueue's sticky/batched fast path: one lock
// and one cached-top publish per k elements instead of per element.
func (q *Queue) DeleteMinUpTo(k int, dst []heap.Item) []heap.Item {
	if k <= 0 {
		return dst
	}
	q.lock.Lock()
	dst = q.popUpToLocked(k, dst)
	q.publishTop()
	q.lock.Unlock()
	return dst
}

// TryDeleteMinUpTo is DeleteMinUpTo's non-blocking variant: acquired
// reports whether the lock was obtained; when it is false the queue was
// contended and dst is returned unchanged. With the lock held it drains up
// to k items exactly like DeleteMinUpTo (so fewer than k with acquired true
// means the queue ran empty).
func (q *Queue) TryDeleteMinUpTo(k int, dst []heap.Item) (out []heap.Item, acquired bool) {
	if k <= 0 {
		return dst, true
	}
	if !q.lock.TryLock() {
		return dst, false
	}
	dst = q.popUpToLocked(k, dst)
	q.publishTop()
	q.lock.Unlock()
	return dst, true
}

// TryAdd inserts (priority, value) only if the lock is free, reporting
// whether the insert happened. MultiQueue enqueues use it to skip contended
// queues and re-draw.
func (q *Queue) TryAdd(priority, value uint64) bool {
	if !q.lock.TryLock() {
		return false
	}
	q.pq.Push(heap.Item{Priority: priority, Value: value})
	q.publishTop()
	q.lock.Unlock()
	return true
}

// DeleteMin removes and returns the minimum item, blocking on the lock.
// ok is false when the queue is empty.
func (q *Queue) DeleteMin() (it heap.Item, ok bool) {
	q.lock.Lock()
	it, ok = q.pq.Pop()
	q.publishTop()
	q.lock.Unlock()
	return it, ok
}

// TryDeleteMin attempts DeleteMin without blocking. acquired reports whether
// the lock was obtained; when acquired is false the queue was contended and
// (it, ok) are meaningless.
func (q *Queue) TryDeleteMin() (it heap.Item, ok, acquired bool) {
	if !q.lock.TryLock() {
		return heap.Item{}, false, false
	}
	it, ok = q.pq.Pop()
	q.publishTop()
	q.lock.Unlock()
	return it, ok, true
}

// ReadMin returns the cached minimum priority without locking (EmptyTop when
// the queue was last seen empty). This is Algorithm 2's ReadMin specialized
// to the priority, which is all the two-choice comparison consumes.
func (q *Queue) ReadMin() uint64 { return q.top.Load() }

// PeekMin returns the current minimum item under the lock; ok is false when
// empty. Used by tests and the exact-drain verifier, not by the hot path.
func (q *Queue) PeekMin() (it heap.Item, ok bool) {
	q.lock.Lock()
	it, ok = q.pq.Peek()
	q.lock.Unlock()
	return it, ok
}

// Len returns the current size under the lock (exact at quiescence).
func (q *Queue) Len() int {
	q.lock.Lock()
	n := q.pq.Len()
	q.lock.Unlock()
	return n
}

// LockForTest acquires the queue's lock without performing an operation and
// reports whether it succeeded. Failure-injection tests use it to simulate a
// thread that crashed while holding the lock — the liveness hazard of
// lock-based MultiQueues that the try-operations are designed to route
// around.
func (q *Queue) LockForTest() bool { return q.lock.TryLock() }

// UnlockForTest releases a lock taken with LockForTest.
func (q *Queue) UnlockForTest() { q.lock.Unlock() }
