// Package counters provides the atomic counter substrates that the
// MultiCounter algorithm distributes its updates over, plus the exact and
// statistical baselines the experiments compare against.
//
// Three shapes are implemented:
//
//   - Exact: one fetch-and-increment cell — the linearizable baseline whose
//     scalability collapse motivates the paper.
//   - Sharded: m independent padded cells with indexed read/increment — the
//     "bins" of the two-choice process. Sharded deliberately has no policy;
//     the MultiCounter in internal/core owns the two-choice logic.
//   - Striped: per-thread stripes summed on read (a Dice–Lev–Moir style
//     statistical counter) — the related-work baseline: fast increments,
//     linear-cost reads, no per-read relaxation guarantee.
package counters

import "repro/internal/pad"

// Exact is a single linearizable fetch-and-increment counter.
type Exact struct {
	c pad.Uint64
}

// NewExact returns a zeroed exact counter.
func NewExact() *Exact { return &Exact{} }

// Inc atomically increments the counter and returns the value before the
// increment (fetch-and-increment semantics, matching the paper's model).
func (e *Exact) Inc() uint64 { return e.c.Add(1) - 1 }

// Read returns the current value.
func (e *Exact) Read() uint64 { return e.c.Load() }

// Sharded is an array of m independent padded atomic counters.
type Sharded struct {
	cells []pad.Uint64
}

// NewSharded returns m zeroed counters. m must be positive.
func NewSharded(m int) *Sharded {
	if m <= 0 {
		panic("counters: NewSharded needs m > 0")
	}
	return &Sharded{cells: make([]pad.Uint64, m)}
}

// Len returns the number of counters.
func (s *Sharded) Len() int { return len(s.cells) }

// Read returns the current value of counter i.
func (s *Sharded) Read(i int) uint64 { return s.cells[i].Load() }

// Inc atomically increments counter i by 1 and returns the new value.
func (s *Sharded) Inc(i int) uint64 { return s.cells[i].Add(1) }

// Add atomically adds delta to counter i and returns the new value.
func (s *Sharded) Add(i int, delta uint64) uint64 { return s.cells[i].Add(delta) }

// Swap atomically installs x into counter i and returns the previous value.
// The elastic MultiCounter's re-leveling uses it to collect every cell's
// weight without losing increments that race the scan.
func (s *Sharded) Swap(i int, x uint64) uint64 { return s.cells[i].Swap(x) }

// Sum returns the sum of all counters. The scan is not atomic; in concurrent
// runs it is a lower bound on the true total at return time. Experiments use
// it only at quiescence, where it is exact.
func (s *Sharded) Sum() uint64 {
	var total uint64
	for i := range s.cells {
		total += s.cells[i].Load()
	}
	return total
}

// MinMax returns the smallest and largest counter values in one scan
// (non-atomic; used at quiescence or for monitoring).
func (s *Sharded) MinMax() (min, max uint64) {
	return s.MinMaxRange(0, len(s.cells))
}

// MinMaxRange returns the smallest and largest values among counters
// [lo, hi) in one non-atomic scan — the live-range variant the elastic
// MultiCounter's Gap uses (cells beyond the live boundary are parked at 0
// and would fake the minimum). hi must exceed lo.
func (s *Sharded) MinMaxRange(lo, hi int) (min, max uint64) {
	min = s.cells[lo].Load()
	max = min
	for i := lo + 1; i < hi; i++ {
		v := s.cells[i].Load()
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Snapshot copies all counter values into dst, which must have length
// Len(). The copy is per-cell atomic but not globally atomic.
func (s *Sharded) Snapshot(dst []uint64) {
	if len(dst) != len(s.cells) {
		panic("counters: Snapshot dst length mismatch")
	}
	s.SnapshotRange(dst, 0)
}

// SnapshotRange copies the values of counters [lo, lo+len(dst)) into dst —
// the live-range variant of Snapshot.
func (s *Sharded) SnapshotRange(dst []uint64, lo int) {
	for i := range dst {
		dst[i] = s.cells[lo+i].Load()
	}
}

// Striped is a statistical counter: each thread increments its own stripe
// and Read sums all stripes. Increments never contend, but Read costs O(p)
// and the value returned has no per-operation deviation bound under
// concurrency — exactly the trade-off the MultiCounter's distributional
// guarantee improves on.
type Striped struct {
	stripes []pad.Uint64
}

// NewStriped returns a counter with p stripes (one per thread).
func NewStriped(p int) *Striped {
	if p <= 0 {
		panic("counters: NewStriped needs p > 0")
	}
	return &Striped{stripes: make([]pad.Uint64, p)}
}

// Inc increments the stripe owned by thread id.
func (s *Striped) Inc(id int) { s.stripes[id].Add(1) }

// Read sums all stripes.
func (s *Striped) Read() uint64 {
	var total uint64
	for i := range s.stripes {
		total += s.stripes[i].Load()
	}
	return total
}
