package counters

import (
	"sync"
	"testing"
)

func TestExactSequential(t *testing.T) {
	e := NewExact()
	if e.Read() != 0 {
		t.Fatal("fresh counter not zero")
	}
	if got := e.Inc(); got != 0 {
		t.Fatalf("first Inc returned %d, want 0 (fetch-and-increment)", got)
	}
	if got := e.Inc(); got != 1 {
		t.Fatalf("second Inc returned %d, want 1", got)
	}
	if e.Read() != 2 {
		t.Fatalf("Read = %d, want 2", e.Read())
	}
}

func TestExactConcurrent(t *testing.T) {
	e := NewExact()
	const workers, per = 8, 20000
	seen := make([]map[uint64]bool, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		seen[w] = make(map[uint64]bool, per)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen[w][e.Inc()] = true
			}
		}(w)
	}
	wg.Wait()
	if e.Read() != workers*per {
		t.Fatalf("total %d, want %d", e.Read(), workers*per)
	}
	// Fetch-and-increment returns must be globally unique.
	all := make(map[uint64]bool, workers*per)
	for _, m := range seen {
		for v := range m {
			if all[v] {
				t.Fatalf("duplicate fetch-and-increment return %d", v)
			}
			all[v] = true
		}
	}
}

func TestShardedBasics(t *testing.T) {
	s := NewSharded(4)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Inc(0)
	s.Inc(0)
	s.Add(3, 10)
	if s.Read(0) != 2 || s.Read(1) != 0 || s.Read(3) != 10 {
		t.Fatal("per-shard reads wrong")
	}
	if s.Sum() != 12 {
		t.Fatalf("Sum = %d", s.Sum())
	}
	min, max := s.MinMax()
	if min != 0 || max != 10 {
		t.Fatalf("MinMax = %d,%d", min, max)
	}
	snap := make([]uint64, 4)
	s.Snapshot(snap)
	if snap[0] != 2 || snap[3] != 10 {
		t.Fatal("Snapshot wrong")
	}
}

func TestShardedPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewSharded(0) did not panic")
			}
		}()
		NewSharded(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Snapshot with wrong length did not panic")
			}
		}()
		NewSharded(2).Snapshot(make([]uint64, 3))
	}()
}

func TestShardedConcurrentSum(t *testing.T) {
	s := NewSharded(16)
	const workers, per = 8, 20000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Inc((w + i) % 16)
			}
		}(w)
	}
	wg.Wait()
	if s.Sum() != workers*per {
		t.Fatalf("Sum = %d, want %d", s.Sum(), workers*per)
	}
}

func TestStripedConcurrent(t *testing.T) {
	const workers, per = 8, 20000
	s := NewStriped(workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Inc(w)
			}
		}(w)
	}
	wg.Wait()
	if s.Read() != workers*per {
		t.Fatalf("Read = %d, want %d", s.Read(), workers*per)
	}
}

func TestStripedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStriped(0) did not panic")
		}
	}()
	NewStriped(0)
}
