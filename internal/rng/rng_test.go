package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for seed 0 from the SplitMix64 reference
	// implementation.
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	for i, w := range want {
		if g := s.Next(); g != w {
			t.Fatalf("SplitMix64(0) output %d = %#x, want %#x", i, g, w)
		}
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed SplitMix64 streams diverged")
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a, b := NewXoshiro256(7), NewXoshiro256(7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed Xoshiro256 streams diverged")
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a, b := NewXoshiro256(1), NewXoshiro256(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds matched %d/100 outputs", same)
	}
}

func TestXoshiroZeroSeedValid(t *testing.T) {
	x := NewXoshiro256(0)
	var acc uint64
	for i := 0; i < 100; i++ {
		acc |= x.Next()
	}
	if acc == 0 {
		t.Fatal("seed-0 generator emitted only zeros")
	}
}

func TestUint64nBounds(t *testing.T) {
	x := NewXoshiro256(1)
	for _, n := range []uint64{1, 2, 3, 7, 64, 1000, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nBoundsQuick(t *testing.T) {
	x := NewXoshiro256(99)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return x.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewXoshiro256(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			NewXoshiro256(1).Intn(n)
		}()
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square-style tolerance: 10 buckets, 100k draws; each bucket
	// expects 10k with std ~95, so ±5% is ~5 sigma.
	x := NewXoshiro256(3)
	const buckets, draws = 10, 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[x.Uint64n(buckets)]++
	}
	for b, c := range counts {
		if c < draws/buckets*95/100 || c > draws/buckets*105/100 {
			t.Fatalf("bucket %d count %d deviates more than 5%% from %d", b, c, draws/buckets)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(4)
	for i := 0; i < 100000; i++ {
		v := x.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := NewXoshiro256(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestExpMeanOne(t *testing.T) {
	x := NewXoshiro256(6)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := x.Exp()
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean %v too far from 1", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	x := NewXoshiro256(7)
	for i := 0; i < 100; i++ {
		if x.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !x.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	x := NewXoshiro256(8)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if x.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %v", rate)
	}
}

func TestTwoDistinct(t *testing.T) {
	x := NewXoshiro256(9)
	for i := 0; i < 10000; i++ {
		a, b := x.TwoDistinct(5)
		if a == b {
			t.Fatal("TwoDistinct returned equal indices")
		}
		if a < 0 || a >= 5 || b < 0 || b >= 5 {
			t.Fatalf("TwoDistinct out of range: %d, %d", a, b)
		}
	}
}

func TestTwoDistinctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TwoDistinct(1) did not panic")
		}
	}()
	NewXoshiro256(1).TwoDistinct(1)
}

func TestPermIsPermutation(t *testing.T) {
	x := NewXoshiro256(10)
	f := func(sz uint8) bool {
		n := int(sz%64) + 1
		out := make([]int, n)
		x.Perm(out)
		seen := make([]bool, n)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJumpDisjoint(t *testing.T) {
	a := NewXoshiro256(11)
	b := NewXoshiro256(11)
	b.Jump()
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			t.Fatal("jumped stream collided with base stream")
		}
	}
}

func TestStreams(t *testing.T) {
	ss := Streams(12, 4)
	if len(ss) != 4 {
		t.Fatalf("Streams returned %d generators", len(ss))
	}
	// All pairwise first outputs differ.
	outs := map[uint64]bool{}
	for _, s := range ss {
		v := s.Next()
		if outs[v] {
			t.Fatal("two streams produced the same first output")
		}
		outs[v] = true
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 1, 0, math.MaxUint64},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64Quick(t *testing.T) {
	// Cross-check the low word (hi is checked by the fixed cases; the low
	// word must match plain wrap-around multiplication).
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	x := NewXoshiro256(13)
	z := NewZipf(x, 100, 0.99)
	var counts [100]int
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 50 heavily under theta ~ 1.
	if counts[0] < 10*counts[50] {
		t.Fatalf("Zipf insufficiently skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Broad monotonicity: first decile outweighs last decile.
	var first, last int
	for i := 0; i < 10; i++ {
		first += counts[i]
		last += counts[90+i]
	}
	if first <= last {
		t.Fatalf("Zipf head %d not heavier than tail %d", first, last)
	}
}

func TestZipfHigherThetaMoreSkewed(t *testing.T) {
	xa, xb := NewXoshiro256(14), NewXoshiro256(14)
	za, zb := NewZipf(xa, 1000, 0.5), NewZipf(xb, 1000, 1.5)
	const draws = 100000
	hitsA, hitsB := 0, 0
	for i := 0; i < draws; i++ {
		if za.Next() == 0 {
			hitsA++
		}
		if zb.Next() == 0 {
			hitsB++
		}
	}
	if hitsB <= hitsA {
		t.Fatalf("theta=1.5 head hits %d not above theta=0.5 head hits %d", hitsB, hitsA)
	}
}

func TestZipfPanics(t *testing.T) {
	x := NewXoshiro256(1)
	for _, fn := range []func(){
		func() { NewZipf(x, 0, 1) },
		func() { NewZipf(x, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("NewZipf with invalid args did not panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkXoshiroNext(b *testing.B) {
	x := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Next()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	x := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64n(1000)
	}
	_ = sink
}
