package rng

import "math"

// Zipf draws values in [0, n) with probability proportional to
// 1/(rank+1)^theta. The TL2 experiments in the paper use uniform object
// selection; Zipf is provided for the skewed-contention ablations, where a
// small hot set stresses both the relaxed clock's Δ rule and the abort path.
//
// The implementation uses the rejection-inversion sampler of Hörmann and
// Derflinger ("Rejection-inversion to generate variates from monotone
// discrete distributions"), the same algorithm behind math/rand.Zipf,
// re-derived here so that it runs on this package's generators.
type Zipf struct {
	r            *Xoshiro256
	n            float64
	theta        float64
	q            float64 // 1 - theta
	oneOverQ     float64
	hIntegralX1  float64
	hIntegralNum float64
	s            float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent theta > 0,
// theta != 1 handled via the general transform and theta == 1 via logs.
func NewZipf(r *Xoshiro256, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf needs n > 0")
	}
	if theta <= 0 {
		panic("rng: NewZipf needs theta > 0")
	}
	z := &Zipf{r: r, n: float64(n), theta: theta, q: 1 - theta}
	if z.q != 0 {
		z.oneOverQ = 1 / z.q
	}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNum = z.hIntegral(z.n + 0.5)
	z.s = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

// hIntegral is the antiderivative of h(x) = x^-theta.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.q*logX) * logX
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.theta * math.Log(x)) }

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.q
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a series fallback near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x/2 + x*x/3 - x*x*x/4
}

// helper2 computes expm1(x)/x with a series fallback near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x/2 + x*x/6 + x*x*x/24
}

// Next returns the next Zipf variate in [0, n).
func (z *Zipf) Next() int {
	for {
		u := z.hIntegralNum + z.r.Float64()*(z.hIntegralX1-z.hIntegralNum)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.s || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int(k) - 1
		}
	}
}
