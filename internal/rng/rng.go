// Package rng provides fast, allocation-free pseudo-random number generators
// for the hot paths of the relaxed data structures in this repository.
//
// The package exists because the two-choice processes at the heart of the
// paper (MultiCounter increments, MultiQueue dequeues) draw two random
// indices per operation; any locking or allocation inside the generator would
// dominate the very contention effects the experiments measure. Every
// generator here is a plain value type that the caller owns (typically one
// per worker goroutine), so there is no shared state and no synchronization.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny 64-bit generator used to seed others and for
//     non-critical decisions. It passes BigCrush on its own but has only 64
//     bits of state.
//   - Xoshiro256: xoshiro256** with 256 bits of state, the workhorse for all
//     experiment workloads.
//
// Bounded integers use Lemire's multiply-shift rejection method, which avoids
// the modulo bias and the division of the textbook approach.
package rng

import "math"

// SplitMix64 is the 64-bit SplitMix generator of Steele, Lea and Flood.
// The zero value is a valid generator (seeded with 0). It is primarily used
// to expand a single seed into the larger state of Xoshiro256.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna.
// It must be created with NewXoshiro256; the zero value is invalid because
// the all-zero state is a fixed point of the transition function.
type Xoshiro256 struct {
	s0, s1, s2, s3 uint64
}

// NewXoshiro256 returns a generator whose 256-bit state is expanded from
// seed via SplitMix64, as recommended by the xoshiro authors. Distinct seeds
// yield statistically independent streams for the purposes of this
// repository's experiments.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	x := &Xoshiro256{s0: sm.Next(), s1: sm.Next(), s2: sm.Next(), s3: sm.Next()}
	if x.s0|x.s1|x.s2|x.s3 == 0 {
		x.s0 = 0x9e3779b97f4a7c15 // escape the invalid all-zero state
	}
	return x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Next returns the next 64-bit value in the sequence.
func (x *Xoshiro256) Next() uint64 {
	result := rotl(x.s1*5, 7) * 9
	t := x.s1 << 17
	x.s2 ^= x.s0
	x.s3 ^= x.s1
	x.s1 ^= x.s2
	x.s0 ^= x.s3
	x.s2 ^= t
	x.s3 = rotl(x.s3, 45)
	return result
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// method. n must be positive; n == 0 panics.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path: multiply-high gives an unbiased sample when the low word
	// clears the rejection threshold; the loop is entered with probability
	// n / 2^64, which is negligible for the bin counts used here.
	v := x.Next()
	hi, lo := mul64(v, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			v = x.Next()
			hi, lo = mul64(v, n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + lo1>>32
	lo = a * b
	return hi, lo
}

// Intn returns a uniform value in [0, n) as an int. n must be positive.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Exp returns an Exponential(1) variate (mean 1) via inverse transform.
// Theorem 7.1's weighted process inserts weights drawn from this
// distribution.
func (x *Xoshiro256) Exp() float64 {
	// 1-Float64() is in (0,1], so the logarithm is finite.
	return -math.Log(1 - x.Float64())
}

// Bool returns a fair coin flip.
func (x *Xoshiro256) Bool() bool { return x.Next()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (x *Xoshiro256) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return x.Float64() < p
}

// TwoDistinct returns two uniform values in [0, n), re-drawing the second
// until it differs from the first. n must be at least 2. The two-choice
// processes in the paper sample with replacement; this helper exists for the
// "distinct choices" process variant exercised in the ablations.
func (x *Xoshiro256) TwoDistinct(n int) (int, int) {
	if n < 2 {
		panic("rng: TwoDistinct needs n >= 2")
	}
	i := x.Intn(n)
	j := x.Intn(n)
	for j == i {
		j = x.Intn(n)
	}
	return i, j
}

// Perm fills out with a uniform random permutation of [0, len(out)) using
// Fisher–Yates. It allocates nothing.
func (x *Xoshiro256) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Jump advances the generator by 2^128 steps, providing a disjoint
// subsequence; used to derive per-thread streams from a common seed.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var t0, t1, t2, t3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				t0 ^= x.s0
				t1 ^= x.s1
				t2 ^= x.s2
				t3 ^= x.s3
			}
			x.Next()
		}
	}
	x.s0, x.s1, x.s2, x.s3 = t0, t1, t2, t3
}

// Streams returns k generators with pairwise-disjoint subsequences derived
// from seed, one per worker thread.
func Streams(seed uint64, k int) []*Xoshiro256 {
	base := NewXoshiro256(seed)
	out := make([]*Xoshiro256, k)
	for i := 0; i < k; i++ {
		cp := *base
		out[i] = &cp
		base.Jump()
	}
	return out
}
