package skiplist

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEmpty(t *testing.T) {
	l := New(1)
	if l.Len() != 0 {
		t.Fatal("fresh list not empty")
	}
	if _, ok := l.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
	if _, ok := l.Peek(); ok {
		t.Fatal("Peek on empty returned ok")
	}
}

func TestSortedPops(t *testing.T) {
	l := New(2)
	in := []uint64{9, 1, 8, 2, 7, 3, 6, 4, 5, 0}
	for _, p := range in {
		l.Push(Item{Priority: p, Value: p + 100})
	}
	for want := uint64(0); want < 10; want++ {
		it, ok := l.Pop()
		if !ok || it.Priority != want || it.Value != want+100 {
			t.Fatalf("Pop = %+v ok=%v, want %d", it, ok, want)
		}
	}
	if l.Len() != 0 {
		t.Fatal("list not empty after draining")
	}
}

func TestPeek(t *testing.T) {
	l := New(3)
	l.Push(Item{Priority: 5})
	l.Push(Item{Priority: 2})
	it, ok := l.Peek()
	if !ok || it.Priority != 2 {
		t.Fatalf("Peek = %+v", it)
	}
	if l.Len() != 2 {
		t.Fatal("Peek removed an item")
	}
}

func TestDuplicates(t *testing.T) {
	l := New(4)
	for i := 0; i < 5; i++ {
		l.Push(Item{Priority: 3, Value: uint64(i)})
	}
	seen := map[uint64]bool{}
	for i := 0; i < 5; i++ {
		it, ok := l.Pop()
		if !ok || it.Priority != 3 {
			t.Fatalf("pop %d = %+v", i, it)
		}
		if seen[it.Value] {
			t.Fatalf("value %d popped twice", it.Value)
		}
		seen[it.Value] = true
	}
}

func TestAgainstReferenceQuick(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		l := New(seed)
		var ref []uint64
		for _, op := range ops {
			if op%3 != 0 || len(ref) == 0 {
				p := uint64(op) >> 2
				l.Push(Item{Priority: p})
				ref = append(ref, p)
				sort.Slice(ref, func(a, b int) bool { return ref[a] < ref[b] })
			} else {
				it, ok := l.Pop()
				if !ok || it.Priority != ref[0] {
					return false
				}
				ref = ref[1:]
			}
			if l.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyAfterRandomOps(t *testing.T) {
	l := New(5)
	r := rng.NewXoshiro256(6)
	for i := 0; i < 5000; i++ {
		if r.Bool() || l.Len() == 0 {
			l.Push(Item{Priority: r.Uint64n(1000)})
		} else {
			l.Pop()
		}
		if i%500 == 0 && !l.Verify() {
			t.Fatalf("structure invariant violated after %d ops", i)
		}
	}
	if !l.Verify() {
		t.Fatal("final verify failed")
	}
}

func TestNodeRecycling(t *testing.T) {
	l := New(7)
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			l.Push(Item{Priority: uint64(i * round)})
		}
		for i := 0; i < 20; i++ {
			if _, ok := l.Pop(); !ok {
				t.Fatal("pop failed during recycling stress")
			}
		}
	}
	if l.Len() != 0 || !l.Verify() {
		t.Fatal("list corrupt after recycling stress")
	}
}

func TestLargeScaleOrder(t *testing.T) {
	l := New(8)
	r := rng.NewXoshiro256(9)
	const n = 20000
	for i := 0; i < n; i++ {
		l.Push(Item{Priority: r.Next()})
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		it, ok := l.Pop()
		if !ok {
			t.Fatalf("ran out at %d", i)
		}
		if it.Priority < prev {
			t.Fatalf("out of order at %d: %d < %d", i, it.Priority, prev)
		}
		prev = it.Priority
	}
}

func BenchmarkPushPop(b *testing.B) {
	l := New(1)
	r := rng.NewXoshiro256(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Push(Item{Priority: r.Next()})
		if l.Len() > 1000 {
			l.Pop()
		}
	}
}
