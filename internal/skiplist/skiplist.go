// Package skiplist provides a sequential skiplist ordered by priority, the
// third backing store for MultiQueue per-queue storage (ablation A4).
//
// Skiplists are the classic substrate for concurrent priority queues (Shavit
// & Lotan; the SprayList), which is why the paper's related work revolves
// around them. Here the skiplist is sequential — internal/cpq adds the lock —
// but it keeps the min element at the head, making Peek O(1) and DeleteMin
// O(1) expected, the operations Algorithm 2's two-choice dequeue performs
// most.
package skiplist

import "repro/internal/rng"

const maxLevel = 24 // supports ~16M elements at p = 1/2

// Item mirrors heap.Item to avoid a dependency cycle; internal/cpq converts.
type Item struct {
	Priority uint64
	Value    uint64
}

type node struct {
	item Item
	next [maxLevel]*node
}

// List is a sequential skiplist priority queue. Create with New.
type List struct {
	head  *node // sentinel; head.next[0] is the minimum
	level int   // highest level in use
	n     int
	r     *rng.Xoshiro256
	free  *node // recycled nodes, chained through next[0]
}

// New returns an empty skiplist whose level coin flips are drawn from the
// given seed.
func New(seed uint64) *List {
	return &List{head: &node{}, level: 1, r: rng.NewXoshiro256(seed)}
}

// Len returns the number of stored items.
func (l *List) Len() int { return l.n }

func (l *List) alloc(it Item) *node {
	nd := l.free
	if nd == nil {
		nd = &node{}
	} else {
		l.free = nd.next[0]
	}
	nd.item = it
	for i := range nd.next {
		nd.next[i] = nil
	}
	return nd
}

func (l *List) randomLevel() int {
	lvl := 1
	// Geometric(1/2) levels, one random word per insert.
	bits := l.r.Next()
	for lvl < maxLevel && bits&1 == 1 {
		lvl++
		bits >>= 1
	}
	return lvl
}

// Push inserts an item in O(log n) expected time.
func (l *List) Push(it Item) {
	var update [maxLevel]*node
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].item.Priority < it.Priority {
			x = x.next[i]
		}
		update[i] = x
	}
	lvl := l.randomLevel()
	if lvl > l.level {
		for i := l.level; i < lvl; i++ {
			update[i] = l.head
		}
		l.level = lvl
	}
	nd := l.alloc(it)
	for i := 0; i < lvl; i++ {
		nd.next[i] = update[i].next[i]
		update[i].next[i] = nd
	}
	l.n++
}

// Peek returns the minimum item without removing it.
func (l *List) Peek() (Item, bool) {
	if l.head.next[0] == nil {
		return Item{}, false
	}
	return l.head.next[0].item, true
}

// Pop removes and returns the minimum item in O(1) expected time (the head
// node is unlinked from every level it occupies).
func (l *List) Pop() (Item, bool) {
	nd := l.head.next[0]
	if nd == nil {
		return Item{}, false
	}
	for i := 0; i < l.level; i++ {
		if l.head.next[i] == nd {
			l.head.next[i] = nd.next[i]
		}
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	it := nd.item
	nd.next[0] = l.free
	l.free = nd
	l.n--
	return it, true
}

// Verify checks that every level is sorted and that level i+1 is a
// subsequence of level i; tests call it after randomized workloads.
func (l *List) Verify() bool {
	for i := 0; i < l.level; i++ {
		prev := uint64(0)
		first := true
		for x := l.head.next[i]; x != nil; x = x.next[i] {
			if !first && x.item.Priority < prev {
				return false
			}
			prev = x.item.Priority
			first = false
		}
	}
	// Subsequence property: every node at level i>0 must be reachable at
	// level 0.
	at0 := map[*node]bool{}
	for x := l.head.next[0]; x != nil; x = x.next[0] {
		at0[x] = true
	}
	for i := 1; i < l.level; i++ {
		for x := l.head.next[i]; x != nil; x = x.next[i] {
			if !at0[x] {
				return false
			}
		}
	}
	return true
}
