package stm

import (
	"strings"
	"testing"
)

func TestClockNames(t *testing.T) {
	names := map[string]Clock{
		"tl2-faa":          NewFAAClock(),
		"tl2-multicounter": NewMCClock(8, 64),
		"tl2-faa-delta":    NewTickClock(64),
	}
	for want, c := range names {
		if c.Name() != want {
			t.Fatalf("Name() = %q, want %q", c.Name(), want)
		}
	}
}

func TestMCClockAccessors(t *testing.T) {
	c := NewMCClock(16, 128)
	if c.Delta() != 128 {
		t.Fatalf("Delta = %d", c.Delta())
	}
	if c.Counter().M() != 16 {
		t.Fatalf("Counter.M = %d", c.Counter().M())
	}
}

func TestMCClockPanicsOnZeroDelta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMCClock(8, 0) did not panic")
		}
	}()
	NewMCClock(8, 0)
}

func TestFAAHelpIsNoop(t *testing.T) {
	c := NewFAAClock()
	h := c.NewHandle(0)
	h.Help()
	if h.Sample() != 0 {
		t.Fatal("FAA Help advanced the clock")
	}
}

func TestTickClockHelpAdvances(t *testing.T) {
	c := NewTickClock(10)
	h := c.NewHandle(0)
	before := h.Sample()
	h.Help()
	if h.Sample() != before+1 {
		t.Fatalf("TickClock Help: %d -> %d", before, h.Sample())
	}
	// CommitVersion stamps tmax + Δ and advances the clock.
	wv := h.CommitVersion(100)
	if wv != 110 {
		t.Fatalf("CommitVersion = %d, want 110", wv)
	}
	if h.Sample() != before+2 {
		t.Fatalf("clock after commit = %d", h.Sample())
	}
}

func TestMCClockHelpAdvances(t *testing.T) {
	c := NewMCClock(4, 16)
	h := c.NewHandle(1)
	for i := 0; i < 400; i++ {
		h.Help()
	}
	if c.Counter().Exact() != 400 {
		t.Fatalf("helps applied %d increments, want 400", c.Counter().Exact())
	}
	// CommitVersion ticks once more and stamps tmax + Δ.
	if wv := h.CommitVersion(50); wv != 66 {
		t.Fatalf("CommitVersion = %d, want 66", wv)
	}
	if c.Counter().Exact() != 401 {
		t.Fatalf("commit tick missing: %d", c.Counter().Exact())
	}
}

func TestArrayAccessors(t *testing.T) {
	arr := NewArray(4)
	if arr.Len() != 4 {
		t.Fatalf("Len = %d", arr.Len())
	}
	if arr.MaxVersion() != 0 {
		t.Fatalf("fresh MaxVersion = %d", arr.MaxVersion())
	}
	tx := NewTx(arr, NewTickClock(7).NewHandle(0), 1)
	if err := tx.Run(func(tx *Tx) error { tx.Store(2, 5); return nil }); err != nil {
		t.Fatal(err)
	}
	// The written slot's version is tmax(=0) + Δ(=7).
	if arr.MaxVersion() != 7 {
		t.Fatalf("MaxVersion = %d, want 7", arr.MaxVersion())
	}
}

func TestNewArrayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewArray(0) did not panic")
		}
	}()
	NewArray(0)
}

func TestTryLockFailsOnChangedWord(t *testing.T) {
	var l vlock
	stale := l.load()
	l.unlockTo(5) // word changes
	if l.tryLock(stale) {
		t.Fatal("tryLock succeeded with a stale observation")
	}
	cur := l.load()
	if !l.tryLock(cur) {
		t.Fatal("tryLock failed with a fresh observation")
	}
	if l.tryLock(cur | 1) {
		t.Fatal("tryLock succeeded on a locked word")
	}
}

func TestWorkloadResultString(t *testing.T) {
	res := WorkloadResult{Commits: 10, Aborts: 2, Mops: 1.5, Verified: true}
	s := res.String()
	for _, want := range []string{"commits=10", "aborts=2", "verified=true"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
