package stm

import (
	"repro/internal/core"
	"repro/internal/pad"
)

// Clock is the global version clock abstraction — the single component the
// Section 8 experiment varies. A Clock hands out per-thread handles so that
// relaxed implementations can keep thread-local PRNG state.
type Clock interface {
	// NewHandle returns a handle for one worker goroutine.
	NewHandle(seed uint64) ClockHandle
	// Name labels the clock in experiment output.
	Name() string
}

// ClockHandle is a single thread's view of the global clock.
type ClockHandle interface {
	// Sample returns the clock value a beginning transaction uses as its
	// read version rv.
	Sample() uint64
	// CommitVersion advances the clock and returns the write version wv for
	// a committing transaction that has observed maximum timestamp tmax
	// (rv and every slot version it encountered).
	CommitVersion(tmax uint64) uint64
	// Help advances the clock without committing. The STM calls it when a
	// read aborts on a slot whose version lies in the future (relaxed
	// clocks stamp writes tmax+Δ ahead). Without helping, the protocol has
	// an absorbing livelock: if every in-flight transaction simultaneously
	// reads a future-stamped slot, no one commits, the clock never
	// advances, and no read can ever succeed again. Helping bounds the wait
	// at ~Δ aborts. Exact clocks never stamp the future and implement Help
	// as a no-op.
	Help()
}

// FAAClock is TL2's standard global clock: one fetch-and-add word. It is
// exact — wv values are unique and totally ordered — and it is the
// scalability bottleneck the paper's Figure 1(c)–(e) baseline exhibits.
type FAAClock struct {
	g pad.Uint64
}

// NewFAAClock returns a zeroed exact clock.
func NewFAAClock() *FAAClock { return &FAAClock{} }

// Name implements Clock.
func (c *FAAClock) Name() string { return "tl2-faa" }

// NewHandle implements Clock. FAA handles are stateless views.
func (c *FAAClock) NewHandle(uint64) ClockHandle { return faaHandle{c} }

type faaHandle struct{ c *FAAClock }

// Sample implements ClockHandle.
func (h faaHandle) Sample() uint64 { return h.c.g.Load() }

// CommitVersion implements ClockHandle: the classic GV1 rule wv = FAA(G)+1.
// tmax is ignored — exact clocks dominate every observed timestamp by
// construction.
func (h faaHandle) CommitVersion(uint64) uint64 { return h.c.g.Add(1) }

// Help implements ClockHandle as a no-op: FAA versions never lie in the
// future, so a retry with a fresh rv always observes them.
func (h faaHandle) Help() {}

// MCClock is the paper's relaxed clock: a MultiCounter global clock plus the
// "write in the future" rule. Sample reads the approximate counter;
// CommitVersion advances the counter by one relaxed increment and returns
// tmax + Δ, so every write moves an object's timestamp at least Δ ahead of
// anything its writer observed. Δ must exceed the counter's expected skew
// (O(m·log m), Theorem 6.1) for the protocol to be safe w.h.p. (Section 8).
type MCClock struct {
	ts    *core.Timestamps
	delta uint64
}

// NewMCClock returns a relaxed clock over m counter shards with slack Δ. It
// is the fixed-m convenience form of NewMCClockTopology.
func NewMCClock(m int, delta uint64) *MCClock {
	return NewMCClockTopology(core.Topology{InitialM: m}, delta)
}

// NewMCClockTopology returns a relaxed clock whose backing counter sizes
// itself through the elastic Topology surface. Δ must still exceed the
// expected skew at the topology's LARGEST reachable shard count (MaxM), since
// a grow mid-run widens the O(m·log m) envelope the slack has to cover.
func NewMCClockTopology(t core.Topology, delta uint64) *MCClock {
	if delta == 0 {
		panic("stm: NewMCClock needs delta > 0")
	}
	return &MCClock{ts: core.NewTimestampsTopology(t), delta: delta}
}

// Name implements Clock.
func (c *MCClock) Name() string { return "tl2-multicounter" }

// Delta returns the configured slack Δ.
func (c *MCClock) Delta() uint64 { return c.delta }

// Counter exposes the backing MultiCounter for skew instrumentation.
func (c *MCClock) Counter() *core.MultiCounter { return c.ts.Counter() }

// NewHandle implements Clock.
func (c *MCClock) NewHandle(seed uint64) ClockHandle {
	return &mcHandle{h: c.ts.NewHandle(seed), delta: c.delta}
}

type mcHandle struct {
	h     *core.TSHandle
	delta uint64
}

// Sample implements ClockHandle.
func (h *mcHandle) Sample() uint64 { return h.h.Sample() }

// CommitVersion implements ClockHandle: advance the relaxed clock, then
// stamp the write Δ beyond everything this transaction has observed.
func (h *mcHandle) CommitVersion(tmax uint64) uint64 {
	h.h.Tick()
	return tmax + h.delta
}

// Help implements ClockHandle by pushing the relaxed clock forward one
// relaxed increment, so readers blocked on future-stamped slots make the
// time they are waiting for actually pass.
func (h *mcHandle) Help() { h.h.Advance() }

// TickClock is an exact clock that, like MCClock, writes in the future by Δ
// but advances an exact counter. It isolates the contribution of the Δ rule
// from the contribution of the relaxed counter in ablation A3.
type TickClock struct {
	g     pad.Uint64
	delta uint64
}

// NewTickClock returns the exact future-writing clock with slack Δ.
func NewTickClock(delta uint64) *TickClock { return &TickClock{delta: delta} }

// Name implements Clock.
func (c *TickClock) Name() string { return "tl2-faa-delta" }

// NewHandle implements Clock.
func (c *TickClock) NewHandle(uint64) ClockHandle { return tickHandle{c} }

type tickHandle struct{ c *TickClock }

// Sample implements ClockHandle.
func (h tickHandle) Sample() uint64 { return h.c.g.Load() }

// CommitVersion implements ClockHandle.
func (h tickHandle) CommitVersion(tmax uint64) uint64 {
	h.c.g.Add(1)
	return tmax + h.c.delta
}

// Help implements ClockHandle: the exact future-writing clock has the same
// livelock hazard as the relaxed one, so it helps the same way.
func (h tickHandle) Help() { h.c.g.Add(1) }

// Interface checks.
var (
	_ Clock = (*FAAClock)(nil)
	_ Clock = (*MCClock)(nil)
	_ Clock = (*TickClock)(nil)
)
