package stm

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func newFAATx(arr *Array, seed uint64) *Tx {
	clk := NewFAAClock()
	return NewTx(arr, clk.NewHandle(0), seed)
}

func TestCommitStoreLoad(t *testing.T) {
	arr := NewArray(8)
	tx := newFAATx(arr, 1)
	err := tx.Run(func(tx *Tx) error {
		tx.Store(3, 42)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if arr.ReadDirect(3) != 42 {
		t.Fatalf("slot 3 = %d", arr.ReadDirect(3))
	}
	var got uint64
	err = tx.Run(func(tx *Tx) error {
		v, err := tx.Load(3)
		got = v
		return err
	})
	if err != nil || got != 42 {
		t.Fatalf("transactional load = %d, err %v", got, err)
	}
	if tx.Stats.Commits != 2 {
		t.Fatalf("commits = %d", tx.Stats.Commits)
	}
}

func TestReadYourWrites(t *testing.T) {
	arr := NewArray(4)
	tx := newFAATx(arr, 2)
	err := tx.Run(func(tx *Tx) error {
		tx.Store(0, 7)
		v, err := tx.Load(0)
		if err != nil {
			return err
		}
		if v != 7 {
			t.Fatalf("read-your-writes saw %d", v)
		}
		tx.Store(0, v+1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if arr.ReadDirect(0) != 8 {
		t.Fatalf("slot = %d", arr.ReadDirect(0))
	}
}

func TestReadOnlyCommitsWithoutClockAdvance(t *testing.T) {
	arr := NewArray(4)
	clk := NewFAAClock()
	tx := NewTx(arr, clk.NewHandle(0), 3)
	if err := tx.Run(func(tx *Tx) error {
		_, err := tx.Load(1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if clk.g.Load() != 0 {
		t.Fatalf("read-only transaction advanced the clock to %d", clk.g.Load())
	}
}

func TestConflictAbortsAndRetries(t *testing.T) {
	arr := NewArray(4)
	clk := NewFAAClock()
	t1 := NewTx(arr, clk.NewHandle(0), 4)
	t2 := NewTx(arr, clk.NewHandle(0), 5)

	// t1 reads slot 0, then t2 commits a write to slot 0, then t1 tries to
	// commit a write based on its stale read: must abort on validation.
	t1.Begin()
	v, err := t1.Load(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.Run(func(tx *Tx) error {
		tx.Store(0, 99)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	t1.Store(1, v+1)
	if err := t1.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("stale commit returned %v, want ErrAborted", err)
	}
	if t1.Stats.Aborts[AbortValidation] != 1 {
		t.Fatalf("abort not classified as validation: %+v", t1.Stats.Aborts)
	}
}

func TestLoadSeesCommittedVersionAborts(t *testing.T) {
	arr := NewArray(4)
	clk := NewFAAClock()
	t1 := NewTx(arr, clk.NewHandle(0), 6)
	t2 := NewTx(arr, clk.NewHandle(0), 7)

	t1.Begin() // rv = 0
	if err := t2.Run(func(tx *Tx) error {
		tx.Store(0, 5)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Slot 0 now has version 1 > t1.rv: the read must abort.
	if _, err := t1.Load(0); !errors.Is(err, ErrAborted) {
		t.Fatalf("Load of newer version returned %v", err)
	}
	if t1.Stats.Aborts[AbortReadVersion] != 1 {
		t.Fatalf("abort cause wrong: %+v", t1.Stats.Aborts)
	}
}

func TestLockedSlotAbortsReadAndWrite(t *testing.T) {
	arr := NewArray(4)
	// Hold slot 2's lock directly.
	w := arr.locks[2].load()
	if !arr.locks[2].tryLock(w) {
		t.Fatal("setup tryLock failed")
	}
	tx := newFAATx(arr, 8)
	tx.Begin()
	if _, err := tx.Load(2); !errors.Is(err, ErrAborted) {
		t.Fatalf("Load of locked slot returned %v", err)
	}
	if tx.Stats.Aborts[AbortReadLocked] != 1 {
		t.Fatalf("cause: %+v", tx.Stats.Aborts)
	}
	tx.Begin()
	tx.Store(2, 1)
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("Commit on locked slot returned %v", err)
	}
	if tx.Stats.Aborts[AbortWriteLocked] != 1 {
		t.Fatalf("cause: %+v", tx.Stats.Aborts)
	}
	arr.locks[2].unlockRestore(w)
}

func TestAbortReleasesLocks(t *testing.T) {
	arr := NewArray(4)
	clk := NewFAAClock()
	t1 := NewTx(arr, clk.NewHandle(0), 9)
	t2 := NewTx(arr, clk.NewHandle(0), 10)

	// t1 reads slot 0 then writes slots 1,2. t2 invalidates slot 0.
	t1.Begin()
	if _, err := t1.Load(0); err != nil {
		t.Fatal(err)
	}
	if err := t2.Run(func(tx *Tx) error { tx.Store(0, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	t1.Store(1, 1)
	t1.Store(2, 1)
	if err := t1.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatal("expected validation abort")
	}
	// Locks on 1,2 must be free again.
	for _, i := range []int{1, 2} {
		if lockedBit(arr.locks[i].load()) {
			t.Fatalf("slot %d still locked after abort", i)
		}
	}
	// And a retry must succeed.
	if err := t1.Run(func(tx *Tx) error { tx.Store(1, 5); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesNonAbortErrors(t *testing.T) {
	arr := NewArray(2)
	tx := newFAATx(arr, 11)
	sentinel := errors.New("user error")
	if err := tx.Run(func(tx *Tx) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Run returned %v", err)
	}
}

func TestStoreOverwriteInWriteSet(t *testing.T) {
	arr := NewArray(2)
	tx := newFAATx(arr, 12)
	if err := tx.Run(func(tx *Tx) error {
		tx.Store(0, 1)
		tx.Store(0, 2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if arr.ReadDirect(0) != 2 {
		t.Fatalf("slot = %d", arr.ReadDirect(0))
	}
}

func TestStatsAccessors(t *testing.T) {
	var s Stats
	s.Commits = 3
	s.Aborts[AbortValidation] = 1
	if s.TotalAborts() != 1 {
		t.Fatal("TotalAborts")
	}
	if r := s.AbortRate(); r != 0.25 {
		t.Fatalf("AbortRate = %v", r)
	}
	if !strings.Contains(s.String(), "commits=3") {
		t.Fatalf("String = %q", s.String())
	}
	var empty Stats
	if empty.AbortRate() != 0 {
		t.Fatal("empty AbortRate")
	}
}

func TestAbortCauseStrings(t *testing.T) {
	for c := AbortCause(0); c < numAbortCauses; c++ {
		if c.String() == "unknown" {
			t.Fatalf("cause %d has no name", c)
		}
	}
	if AbortCause(99).String() != "unknown" {
		t.Fatal("out-of-range cause")
	}
}

// TestWorkloadVerifiedFAA is the paper's correctness check under the exact
// clock: array contents must equal exactly 2 increments per commit.
func TestWorkloadVerifiedFAA(t *testing.T) {
	res := RunIncrement(WorkloadConfig{
		Objects: 512, Workers: 4, Clock: NewFAAClock(), OpsPerWorker: 5000, Seed: 13,
	})
	if !res.Verified {
		t.Fatalf("verification failed: sum=%d expected=%d", res.ArraySum, res.Expected)
	}
	if res.Commits < 4*5000 {
		t.Fatalf("commits = %d, want >= %d", res.Commits, 4*5000)
	}
}

// TestWorkloadVerifiedMCClock: update transactions always detect conflicts
// via recorded-version validation, so the array exactness check must hold
// even under the relaxed clock (what can break w.h.p. is read-only snapshot
// consistency, which this workload does not exercise).
//
// Parameters respect the paper's efficiency precondition: each object must
// be written less often than once per Δ global ticks, i.e. 2·Δ ≪ M
// (Section 8: "once an object is written, at least Δ operations should occur
// without accessing this object"). Violating it livelocks reads on
// future-stamped objects — the Figure 1(e) collapse regime.
func TestWorkloadVerifiedMCClock(t *testing.T) {
	res := RunIncrement(WorkloadConfig{
		Objects: 16384, Workers: 4, Clock: NewMCClock(64, 1024), OpsPerWorker: 5000, Seed: 14,
	})
	if !res.Verified {
		t.Fatalf("verification failed: sum=%d expected=%d", res.ArraySum, res.Expected)
	}
}

func TestWorkloadVerifiedTickClock(t *testing.T) {
	res := RunIncrement(WorkloadConfig{
		Objects: 8192, Workers: 4, Clock: NewTickClock(256), OpsPerWorker: 2000, Seed: 15,
	})
	if !res.Verified {
		t.Fatalf("verification failed: sum=%d expected=%d", res.ArraySum, res.Expected)
	}
}

func TestWorkloadZipf(t *testing.T) {
	res := RunIncrement(WorkloadConfig{
		Objects: 256, Workers: 2, Clock: NewFAAClock(), OpsPerWorker: 2000, Seed: 16, ZipfTheta: 0.99,
	})
	if !res.Verified {
		t.Fatal("zipf workload verification failed")
	}
}

func TestWorkloadPanics(t *testing.T) {
	for _, cfg := range []WorkloadConfig{
		{Objects: 1, Workers: 1, Clock: NewFAAClock()},
		{Objects: 4, Workers: 0, Clock: NewFAAClock()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid workload config did not panic")
				}
			}()
			RunIncrement(cfg)
		}()
	}
}

// TestOpacityInvariantFAA: concurrent transfers preserve per-pair sums under
// the exact clock; read-only transactions must always observe consistent
// pairs. (Under the relaxed clock this is only w.h.p.; see Section 8.)
func TestOpacityInvariantFAA(t *testing.T) {
	const pairs = 64
	arr := NewArray(2 * pairs)
	clk := NewFAAClock()
	// Initialize each pair to (1000, 1000) transactionally.
	init := NewTx(arr, clk.NewHandle(0), 17)
	for i := 0; i < pairs; i++ {
		i := i
		if err := init.Run(func(tx *Tx) error {
			tx.Store(2*i, 1000)
			tx.Store(2*i+1, 1000)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	var violations int32
	var mu sync.Mutex
	// Writers transfer within pairs until told to stop.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			tx := NewTx(arr, clk.NewHandle(0), uint64(100+w))
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				p := (k*7 + w*13) % pairs
				_ = tx.Run(func(tx *Tx) error {
					a, err := tx.Load(2 * p)
					if err != nil {
						return err
					}
					b, err := tx.Load(2*p + 1)
					if err != nil {
						return err
					}
					tx.Store(2*p, a-1)
					tx.Store(2*p+1, b+1)
					return nil
				})
			}
		}(w)
	}
	// Readers verify the invariant transactionally for a bounded number of
	// rounds.
	for rdr := 0; rdr < 2; rdr++ {
		readers.Add(1)
		go func(rd int) {
			defer readers.Done()
			tx := NewTx(arr, clk.NewHandle(0), uint64(200+rd))
			for k := 0; k < 20000; k++ {
				p := (k*3 + rd) % pairs
				var a, b uint64
				err := tx.Run(func(tx *Tx) error {
					var err error
					a, err = tx.Load(2 * p)
					if err != nil {
						return err
					}
					b, err = tx.Load(2*p + 1)
					return err
				})
				if err == nil && a+b != 2000 {
					mu.Lock()
					violations++
					mu.Unlock()
					return
				}
			}
		}(rdr)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	if violations != 0 {
		t.Fatalf("%d read-only transactions observed inconsistent pairs under the exact clock", violations)
	}
}
