package stm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// WorkloadConfig describes the paper's TL2 microbenchmark (Section 8): an
// array of Objects transactional slots; each transaction picks two uniformly
// random slots, reads and increments both, and commits.
type WorkloadConfig struct {
	// Objects is M, the array size (10K / 100K / 1M in Figures 1(c)–(e)).
	Objects int
	// Workers is the number of concurrent transaction-executing goroutines.
	Workers int
	// Clock is the global version clock under test.
	Clock Clock
	// Duration is the measured wall-clock window (duration mode).
	Duration time.Duration
	// OpsPerWorker, when positive, switches to fixed-work mode (used by
	// tests for deterministic verification) and ignores Duration.
	OpsPerWorker int64
	// Seed derives all worker streams.
	Seed uint64
	// ZipfTheta, when positive, draws slots from a Zipf(theta) distribution
	// instead of uniform (skew ablation).
	ZipfTheta float64
}

// WorkloadResult aggregates a run.
type WorkloadResult struct {
	Commits       uint64
	Aborts        uint64
	AbortsByCause [numAbortCauses]uint64
	Elapsed       time.Duration
	// Mops is committed transactions per second, in millions.
	Mops float64
	// Verified reports the paper's post-run exactness check: the array sum
	// must equal exactly 2 increments per committed transaction.
	Verified bool
	// ArraySum and Expected expose the verification operands.
	ArraySum uint64
	Expected uint64
}

// String renders a one-line summary.
func (r WorkloadResult) String() string {
	return fmt.Sprintf("commits=%d aborts=%d mops=%.3f verified=%v",
		r.Commits, r.Aborts, r.Mops, r.Verified)
}

// RunIncrement executes the microbenchmark and verifies the result. The
// verification is the paper's: "we verify correctness by checking that the
// array contents are consistent with the number of executed operations at
// the end of the run".
func RunIncrement(cfg WorkloadConfig) WorkloadResult {
	if cfg.Objects < 2 {
		panic("stm: workload needs at least 2 objects")
	}
	if cfg.Workers < 1 {
		panic("stm: workload needs at least 1 worker")
	}
	arr := NewArray(cfg.Objects)
	var stop atomic.Bool
	txs := make([]*Tx, cfg.Workers)
	streams := rng.Streams(cfg.Seed, 2*cfg.Workers)
	var wg sync.WaitGroup

	body := func(w int) {
		defer wg.Done()
		tx := txs[w]
		draws := streams[2*w]
		var zipf *rng.Zipf
		if cfg.ZipfTheta > 0 {
			zipf = rng.NewZipf(draws, cfg.Objects, cfg.ZipfTheta)
		}
		pick := func() int {
			if zipf != nil {
				return zipf.Next()
			}
			return draws.Intn(cfg.Objects)
		}
		var done int64
		for {
			if cfg.OpsPerWorker > 0 {
				if done >= cfg.OpsPerWorker {
					return
				}
			} else if stop.Load() {
				return
			}
			a, b := pick(), pick()
			for b == a {
				b = pick()
			}
			err := tx.Run(func(t *Tx) error {
				va, err := t.Load(a)
				if err != nil {
					return err
				}
				vb, err := t.Load(b)
				if err != nil {
					return err
				}
				t.Store(a, va+1)
				t.Store(b, vb+1)
				return nil
			})
			if err != nil {
				panic("stm: workload transaction returned non-abort error: " + err.Error())
			}
			done++
		}
	}

	for w := 0; w < cfg.Workers; w++ {
		txs[w] = NewTx(arr, cfg.Clock.NewHandle(streams[2*w+1].Next()), streams[2*w+1].Next())
	}
	start := time.Now()
	wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go body(w)
	}
	if cfg.OpsPerWorker <= 0 {
		time.Sleep(cfg.Duration)
		stop.Store(true)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var res WorkloadResult
	res.Elapsed = elapsed
	for _, tx := range txs {
		res.Commits += tx.Stats.Commits
		for c, n := range tx.Stats.Aborts {
			res.AbortsByCause[c] += n
			res.Aborts += n
		}
	}
	res.Mops = float64(res.Commits) / elapsed.Seconds() / 1e6
	res.ArraySum = arr.Sum()
	res.Expected = 2 * res.Commits
	res.Verified = res.ArraySum == res.Expected
	return res
}
