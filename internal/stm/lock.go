// Package stm is a from-scratch implementation of Transactional Locking II
// (Dice, Shalev, Shavit, DISC 2006), the software transactional memory the
// paper accelerates in Section 8 by replacing its global version clock with
// a MultiCounter.
//
// The implementation follows the original commit-time-locking design:
//
//   - every transactional slot is protected by a versioned write-lock: a
//     single word holding a version number and a lock bit;
//   - a transaction samples the global clock at begin (read version rv),
//     validates every read against rv (postvalidated two-load reads),
//     acquires its write locks at commit, obtains a write version wv from
//     the clock, revalidates the read set, publishes values, and releases
//     the locks at version wv;
//   - the global clock is pluggable (the experiment's only variable):
//     FAAClock is TL2's standard fetch-and-add clock, MCClock is the
//     paper's MultiCounter clock with the "write Δ in the future" rule.
//
// The unit of transactional data is Array, a vector of uint64 slots —
// exactly the paper's benchmark shape (M transactional objects, transactions
// increment two random slots).
package stm

import (
	"errors"
	"sync/atomic"
)

// ErrAborted is returned by transactional operations when the transaction
// must be retried. Tx.Run retries automatically.
var ErrAborted = errors.New("stm: transaction aborted")

// vlock is a TL2 versioned write-lock: bit 0 is the lock bit, bits 1..63
// hold the version (the global-clock value at the last write).
type vlock struct {
	w atomic.Uint64
}

func (l *vlock) load() uint64 { return l.w.Load() }

// tryLock CASes the lock bit on, failing if the word is locked or changed.
func (l *vlock) tryLock(observed uint64) bool {
	if observed&1 == 1 {
		return false
	}
	return l.w.CompareAndSwap(observed, observed|1)
}

// unlockTo releases the lock, installing version v.
func (l *vlock) unlockTo(v uint64) { l.w.Store(v << 1) }

// unlockRestore releases the lock, restoring the pre-lock word (abort path).
func (l *vlock) unlockRestore(observed uint64) { l.w.Store(observed) }

func lockedBit(w uint64) bool   { return w&1 == 1 }
func versionOf(w uint64) uint64 { return w >> 1 }

// Array is a vector of transactional uint64 slots with one versioned lock
// per slot. Slots and locks are deliberately unpadded: with M up to 10⁶
// objects the paper's benchmark relies on sparse uniform access, not
// padding, to avoid false sharing — padding 10⁶ locks would blow the cache
// footprint the experiment depends on.
type Array struct {
	vals  []atomic.Uint64
	locks []vlock
}

// NewArray returns an Array of n zeroed slots.
func NewArray(n int) *Array {
	if n <= 0 {
		panic("stm: NewArray needs n > 0")
	}
	return &Array{vals: make([]atomic.Uint64, n), locks: make([]vlock, n)}
}

// Len returns the number of slots.
func (a *Array) Len() int { return len(a.vals) }

// ReadDirect returns slot i without transactional protection; valid only at
// quiescence (the post-run verifier).
func (a *Array) ReadDirect(i int) uint64 { return a.vals[i].Load() }

// Sum returns the sum of all slots; valid only at quiescence.
func (a *Array) Sum() uint64 {
	var s uint64
	for i := range a.vals {
		s += a.vals[i].Load()
	}
	return s
}

// MaxVersion returns the largest slot version; valid only at quiescence.
// Used to confirm the Δ future-writing rule advanced object timestamps.
func (a *Array) MaxVersion() uint64 {
	var m uint64
	for i := range a.locks {
		if v := versionOf(a.locks[i].load()); v > m {
			m = v
		}
	}
	return m
}
