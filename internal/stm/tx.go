package stm

import (
	"fmt"
	"runtime"

	"repro/internal/rng"
)

// AbortCause classifies why a transaction aborted, for the experiment's
// abort-rate breakdowns.
type AbortCause int

// Abort causes.
const (
	// AbortReadLocked: a read found the slot write-locked.
	AbortReadLocked AbortCause = iota
	// AbortReadVersion: a read found a slot version newer than rv — with the
	// relaxed clock this includes reads of objects stamped "in the future".
	AbortReadVersion
	// AbortReadRace: the two-load postvalidation saw the lock word change.
	AbortReadRace
	// AbortWriteLocked: commit could not acquire a write lock.
	AbortWriteLocked
	// AbortValidation: commit-time read-set revalidation failed.
	AbortValidation
	numAbortCauses
)

// String names the cause.
func (c AbortCause) String() string {
	switch c {
	case AbortReadLocked:
		return "read-locked"
	case AbortReadVersion:
		return "read-version"
	case AbortReadRace:
		return "read-race"
	case AbortWriteLocked:
		return "write-locked"
	case AbortValidation:
		return "validation"
	default:
		return "unknown"
	}
}

// Stats counts one worker's transaction outcomes.
type Stats struct {
	Commits uint64
	Aborts  [numAbortCauses]uint64
}

// TotalAborts sums all abort causes.
func (s *Stats) TotalAborts() uint64 {
	var t uint64
	for _, a := range s.Aborts {
		t += a
	}
	return t
}

// AbortRate returns aborts / (commits + aborts).
func (s *Stats) AbortRate() float64 {
	a := float64(s.TotalAborts())
	tot := a + float64(s.Commits)
	if tot == 0 {
		return 0
	}
	return a / tot
}

// String renders the stats on one line.
func (s *Stats) String() string {
	return fmt.Sprintf("commits=%d aborts=%d (rate=%.3f)", s.Commits, s.TotalAborts(), s.AbortRate())
}

type readEntry struct {
	idx int
	ver uint64
}

type writeEntry struct {
	idx int
	val uint64
}

// Tx is a TL2 transaction context owned by a single goroutine and reused
// across transactions (read/write sets keep their capacity, so steady-state
// transactions allocate nothing).
type Tx struct {
	arr      *Array
	clk      ClockHandle
	r        *rng.Xoshiro256
	rv       uint64
	tmax     uint64
	cause    AbortCause
	readOnly bool
	reads    []readEntry
	wset     []writeEntry
	locks    []int // indices of acquired write locks, in lock order
	Stats    Stats
}

// NewTx returns a transaction context for arr using the given clock handle.
// seed feeds the backoff jitter.
func NewTx(arr *Array, clk ClockHandle, seed uint64) *Tx {
	return &Tx{
		arr:   arr,
		clk:   clk,
		r:     rng.NewXoshiro256(seed),
		reads: make([]readEntry, 0, 32),
		wset:  make([]writeEntry, 0, 8),
		locks: make([]int, 0, 8),
	}
}

// Begin starts a new transaction: sample the global clock for rv and clear
// the read and write sets.
func (t *Tx) Begin() {
	t.rv = t.clk.Sample()
	t.tmax = t.rv
	t.readOnly = false
	t.reads = t.reads[:0]
	t.wset = t.wset[:0]
}

// abort records the cause and returns ErrAborted. Read-version aborts help
// the clock forward (see ClockHandle.Help): the slot we failed to read is
// stamped in the future, and waiting for the future only terminates if the
// clock keeps moving.
func (t *Tx) abort(cause AbortCause) error {
	t.cause = cause
	t.Stats.Aborts[cause]++
	if cause == AbortReadVersion {
		t.clk.Help()
	}
	return ErrAborted
}

// Load transactionally reads slot i. It returns ErrAborted if the slot is
// locked, was written after rv, or changed under the two-load
// postvalidation — TL2's invisible-reader protocol.
func (t *Tx) Load(i int) (uint64, error) {
	// Read-your-writes: the write set is small (the paper's workload writes
	// two slots), so a linear scan beats a map.
	for k := len(t.wset) - 1; k >= 0; k-- {
		if t.wset[k].idx == i {
			return t.wset[k].val, nil
		}
	}
	w1 := t.arr.locks[i].load()
	if lockedBit(w1) {
		return 0, t.abort(AbortReadLocked)
	}
	val := t.arr.vals[i].Load()
	w2 := t.arr.locks[i].load()
	if w1 != w2 {
		return 0, t.abort(AbortReadRace)
	}
	ver := versionOf(w1)
	if ver > t.rv {
		return 0, t.abort(AbortReadVersion)
	}
	if ver > t.tmax {
		t.tmax = ver
	}
	if !t.readOnly {
		t.reads = append(t.reads, readEntry{idx: i, ver: ver})
	}
	return val, nil
}

// Store buffers a transactional write of val to slot i (redo-log style; the
// memory is untouched until commit). Store inside RunReadOnly panics.
func (t *Tx) Store(i int, val uint64) {
	if t.readOnly {
		panic("stm: Store inside a read-only transaction")
	}
	for k := range t.wset {
		if t.wset[k].idx == i {
			t.wset[k].val = val
			return
		}
	}
	t.wset = append(t.wset, writeEntry{idx: i, val: val})
}

// inWriteSet reports whether slot i is in the write set.
func (t *Tx) inWriteSet(i int) bool {
	for k := range t.wset {
		if t.wset[k].idx == i {
			return true
		}
	}
	return false
}

// Commit attempts to commit. Read-only transactions commit immediately
// (their reads were validated against rv as they happened). Update
// transactions lock the write set in index order, obtain wv from the clock,
// revalidate the read set, publish, and release locks at version wv.
func (t *Tx) Commit() error {
	if len(t.wset) == 0 {
		t.Stats.Commits++
		return nil
	}
	// Lock acquisition in global index order prevents deadlock between
	// concurrent committers; TL2's bounded-spin acquisition is replaced by
	// immediate abort + randomized backoff in Run, which behaves better on
	// oversubscribed schedulers. Write sets are tiny (two entries in the
	// paper's workload), so insertion sort avoids sort.Slice's allocation.
	t.locks = t.locks[:0]
	for k := 1; k < len(t.wset); k++ {
		e := t.wset[k]
		j := k - 1
		for j >= 0 && t.wset[j].idx > e.idx {
			t.wset[j+1] = t.wset[j]
			j--
		}
		t.wset[j+1] = e
	}
	for k := range t.wset {
		i := t.wset[k].idx
		w := t.arr.locks[i].load()
		if lockedBit(w) || !t.arr.locks[i].tryLock(w) {
			t.releaseLocks()
			return t.abort(AbortWriteLocked)
		}
		t.locks = append(t.locks, i)
		if v := versionOf(w); v > t.tmax {
			t.tmax = v
		}
	}
	wv := t.clk.CommitVersion(t.tmax)
	// TL2 fast path: with an exact clock, wv == rv+1 implies no concurrent
	// commit intervened, so the read set is still valid. The relaxed clock
	// never takes this path (wv jumps by Δ).
	if wv != t.rv+1 {
		for _, re := range t.reads {
			w := t.arr.locks[re.idx].load()
			if lockedBit(w) && !t.inWriteSet(re.idx) {
				t.releaseLocks()
				return t.abort(AbortValidation)
			}
			if versionOf(w) != re.ver {
				// Re-written since we read it. Comparing against the
				// recorded version (rather than rv) also catches relaxed-
				// clock writers whose wv landed at or below our rv, and
				// self-locked slots keep their pre-lock version, so they
				// pass.
				t.releaseLocks()
				return t.abort(AbortValidation)
			}
		}
	}
	for k := range t.wset {
		t.arr.vals[t.wset[k].idx].Store(t.wset[k].val)
	}
	for _, i := range t.locks {
		t.arr.locks[i].unlockTo(wv)
	}
	t.locks = t.locks[:0]
	t.Stats.Commits++
	return nil
}

// releaseLocks restores the pre-lock words of all acquired locks (abort
// path). The pre-lock version is the current word minus the lock bit.
func (t *Tx) releaseLocks() {
	for _, i := range t.locks {
		w := t.arr.locks[i].load()
		t.arr.locks[i].unlockRestore(w &^ 1)
	}
	t.locks = t.locks[:0]
}

// Run executes fn as a transaction, retrying on ErrAborted with randomized
// bounded backoff. fn must perform all access through Load/Store and return
// any Load error unchanged. Any other error cancels the transaction without
// retry.
func (t *Tx) Run(fn func(tx *Tx) error) error {
	for attempt := 0; ; attempt++ {
		t.Begin()
		err := fn(t)
		if err == nil {
			err = t.Commit()
		}
		if err == nil {
			return nil
		}
		if err != ErrAborted {
			return err
		}
		t.backoff(attempt)
	}
}

// RunReadOnly executes fn as a read-only transaction using TL2's read-only
// fast path: per-read rv validation only, no read-set bookkeeping, no
// commit-time work, no allocation. Retries on ErrAborted like Run. fn must
// not call Store.
//
// With an exact clock the snapshot observed is always consistent; with the
// relaxed MultiCounter clock consistency holds w.h.p. only (Section 8's
// trade-off) — the Δ slack must exceed the clock skew for a concurrent
// writer's version to be unable to slip at or below this transaction's rv.
func (t *Tx) RunReadOnly(fn func(tx *Tx) error) error {
	for attempt := 0; ; attempt++ {
		t.Begin()
		t.readOnly = true
		err := fn(t)
		if err == nil {
			t.Stats.Commits++
			return nil
		}
		if err != ErrAborted {
			return err
		}
		t.backoff(attempt)
	}
}

// backoff spins for a randomized, exponentially growing number of PRNG
// draws (cheap, memory-free work the compiler cannot elide), yielding once
// saturated.
func (t *Tx) backoff(attempt int) {
	if attempt > 10 {
		attempt = 10
		runtime.Gosched()
	}
	max := uint64(1) << uint(attempt)
	n := t.r.Uint64n(max + 1)
	for i := uint64(0); i < n; i++ {
		t.r.Next()
	}
}
