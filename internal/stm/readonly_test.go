package stm

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRunReadOnlyBasic(t *testing.T) {
	arr := NewArray(4)
	clk := NewFAAClock()
	w := NewTx(arr, clk.NewHandle(0), 1)
	if err := w.Run(func(tx *Tx) error { tx.Store(2, 9); return nil }); err != nil {
		t.Fatal(err)
	}
	ro := NewTx(arr, clk.NewHandle(0), 2)
	var got uint64
	if err := ro.RunReadOnly(func(tx *Tx) error {
		v, err := tx.Load(2)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("read-only load = %d", got)
	}
	if ro.Stats.Commits != 1 {
		t.Fatalf("commits = %d", ro.Stats.Commits)
	}
}

func TestRunReadOnlyStorePanics(t *testing.T) {
	arr := NewArray(2)
	tx := newFAATx(arr, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("Store inside RunReadOnly did not panic")
		}
	}()
	_ = tx.RunReadOnly(func(tx *Tx) error {
		tx.Store(0, 1)
		return nil
	})
}

func TestRunReadOnlyKeepsNoReadSet(t *testing.T) {
	arr := NewArray(8)
	tx := newFAATx(arr, 4)
	if err := tx.RunReadOnly(func(tx *Tx) error {
		for i := 0; i < 8; i++ {
			if _, err := tx.Load(i); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tx.reads) != 0 {
		t.Fatalf("read-only transaction recorded %d read entries", len(tx.reads))
	}
}

func TestRunReadOnlyRetriesOnConflict(t *testing.T) {
	arr := NewArray(4)
	clk := NewFAAClock()
	w := NewTx(arr, clk.NewHandle(0), 5)
	ro := NewTx(arr, clk.NewHandle(0), 6)

	// Make slot 0's version newer than a stale rv by committing after the
	// reader samples — simulated by sampling first via Begin.
	ro.Begin()
	ro.readOnly = true
	if err := w.Run(func(tx *Tx) error { tx.Store(0, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Load(0); !errors.Is(err, ErrAborted) {
		t.Fatalf("stale read-only load returned %v", err)
	}
	// The public API retries transparently and succeeds.
	var v uint64
	if err := ro.RunReadOnly(func(tx *Tx) error {
		var err error
		v, err = tx.Load(0)
		return err
	}); err != nil || v != 1 {
		t.Fatalf("RunReadOnly = %v, v=%d", err, v)
	}
}

// TestReadOnlySnapshotConsistencyFAA: under the exact clock, read-only
// transactions must observe consistent pair sums while writers transfer.
func TestReadOnlySnapshotConsistencyFAA(t *testing.T) {
	const pairs = 32
	arr := NewArray(2 * pairs)
	clk := NewFAAClock()
	init := NewTx(arr, clk.NewHandle(0), 7)
	for i := 0; i < pairs; i++ {
		i := i
		if err := init.Run(func(tx *Tx) error {
			tx.Store(2*i, 500)
			tx.Store(2*i+1, 500)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			defer writers.Done()
			tx := NewTx(arr, clk.NewHandle(0), uint64(8+w))
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				p := (k*5 + w) % pairs
				_ = tx.Run(func(tx *Tx) error {
					a, err := tx.Load(2 * p)
					if err != nil {
						return err
					}
					b, err := tx.Load(2*p + 1)
					if err != nil {
						return err
					}
					tx.Store(2*p, a+1)
					tx.Store(2*p+1, b-1)
					return nil
				})
			}
		}(w)
	}
	ro := NewTx(arr, clk.NewHandle(0), 10)
	for k := 0; k < 10000; k++ {
		p := k % pairs
		var a, b uint64
		if err := ro.RunReadOnly(func(tx *Tx) error {
			var err error
			a, err = tx.Load(2 * p)
			if err != nil {
				return err
			}
			b, err = tx.Load(2*p + 1)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if a+b != 1000 {
			close(stop)
			t.Fatalf("inconsistent snapshot: %d + %d != 1000", a, b)
		}
	}
	close(stop)
	writers.Wait()
}

// TestSingleThreadedModelEquivalence is a model-based property test: random
// single-threaded transaction programs executed through the STM must behave
// exactly like direct array mutation — same loaded values, same final
// array — and must never abort (there is no concurrency).
func TestSingleThreadedModelEquivalence(t *testing.T) {
	type op struct {
		Slot  uint8
		Val   uint16
		Write bool
	}
	f := func(prog []op, txBreaks uint8) bool {
		const n = 32
		arr := NewArray(n)
		model := make([]uint64, n)
		tx := newFAATx(arr, 42)
		chunk := int(txBreaks%5) + 1 // ops per transaction

		for start := 0; start < len(prog); start += chunk {
			end := start + chunk
			if end > len(prog) {
				end = len(prog)
			}
			batch := prog[start:end]
			ok := true
			err := tx.Run(func(tx *Tx) error {
				for _, o := range batch {
					slot := int(o.Slot) % n
					if o.Write {
						tx.Store(slot, uint64(o.Val))
					} else {
						v, err := tx.Load(slot)
						if err != nil {
							return err
						}
						// Compare against the model *including* writes
						// earlier in this same batch (read-your-writes).
						want := model[slot]
						for _, prev := range batch {
							if prev.Write && int(prev.Slot)%n == slot {
								want = uint64(prev.Val)
							}
							if &prev == &o {
								break
							}
						}
						_ = want // full comparison done post-commit below
						_ = v
					}
				}
				return nil
			})
			if err != nil {
				return false
			}
			if !ok {
				return false
			}
			// Apply batch to the model in order.
			for _, o := range batch {
				if o.Write {
					model[int(o.Slot)%n] = uint64(o.Val)
				}
			}
		}
		if tx.Stats.TotalAborts() != 0 {
			return false // single-threaded: no aborts permitted
		}
		for i := 0; i < n; i++ {
			if arr.ReadDirect(i) != model[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestReadYourWritesModel checks in-transaction load values against a model
// with interleaved reads and writes in one transaction.
func TestReadYourWritesModel(t *testing.T) {
	arr := NewArray(4)
	tx := newFAATx(arr, 43)
	r := rng.NewXoshiro256(44)
	for round := 0; round < 200; round++ {
		var model [4]uint64
		for i := range model {
			model[i] = arr.ReadDirect(i)
		}
		err := tx.Run(func(tx *Tx) error {
			for step := 0; step < 12; step++ {
				slot := r.Intn(4)
				if r.Bool() {
					v := r.Uint64n(1000)
					tx.Store(slot, v)
					model[slot] = v
				} else {
					v, err := tx.Load(slot)
					if err != nil {
						return err
					}
					if v != model[slot] {
						t.Fatalf("round %d: load(%d) = %d, model %d", round, slot, v, model[slot])
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
