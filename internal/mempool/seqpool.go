package mempool

import (
	"fmt"

	"repro/internal/heap"
)

// SeqPool is the exact sequential reference pool: identical admission
// policy to Pool (nonce contiguity, replace-by-fee bump, capacity eviction
// of the lowest-fee resident with sender-tail cascade), but delivery is
// exact — Pop always returns the highest-fee transaction among the
// deliverable heads (each sender's nextDeliver nonce), the order an ideal
// block builder would use. The differential tests replay one trace against
// SeqPool and Pool; the revenue gap between the two is the fee cost of rank
// relaxation that quality.MeasureMempoolRevenue reports.
//
// SeqPool is single-threaded and unsynchronized: it exists as a model, not
// a service.
type SeqPool struct {
	senders  map[uint64]*senderState
	byID     map[TxID]*txEntry // state field unused; ref unused
	bySerial map[uint64]*txEntry
	// heads indexes the deliverable frontier by complemented fee: one
	// (feePriority(fee), serial) entry per sender whose nextDeliver nonce
	// is resident. Lazy like Pool.evict: serials gone from bySerial, or
	// carrying outdated fees, are skipped on pop.
	heads *heap.Binary
	// evict is the same lazy min-fee index over all residents as Pool's.
	evict      *heap.Binary
	nextSerial uint64

	capacity         int
	bumpNum, bumpDen uint64
	st               Stats
}

// NewSeq returns an empty exact pool with the same policy knobs as New
// (cfg.Queue and cfg.Seed are ignored — there is no relaxed structure
// underneath).
func NewSeq(cfg Config) *SeqPool {
	if cfg.BumpNum == 0 || cfg.BumpDen == 0 {
		cfg.BumpNum, cfg.BumpDen = 110, 100
	}
	if cfg.BumpNum < cfg.BumpDen {
		panic("mempool: bump factor must be >= 1")
	}
	return &SeqPool{
		senders:  make(map[uint64]*senderState),
		byID:     make(map[TxID]*txEntry),
		bySerial: make(map[uint64]*txEntry),
		heads:    heap.NewBinary(1024),
		evict:    heap.NewBinary(1024),
		capacity: cfg.Capacity,
		bumpNum:  cfg.BumpNum,
		bumpDen:  cfg.BumpDen,
	}
}

func (p *SeqPool) bumped(oldFee, newFee uint64) bool {
	// Same 128-bit threshold as Pool.bumped.
	tmp := &Pool{bumpNum: p.bumpNum, bumpDen: p.bumpDen}
	return tmp.bumped(oldFee, newFee)
}

func (p *SeqPool) sender(s uint64) *senderState {
	ss := p.senders[s]
	if ss == nil {
		ss = &senderState{}
		p.senders[s] = ss
	}
	return ss
}

// pushHead (re)indexes the sender's current deliverable head, if resident.
func (p *SeqPool) pushHead(ss *senderState, sender uint64) {
	if e := p.byID[TxID{sender, ss.nextDeliver}]; e != nil {
		p.heads.Push(heap.Item{Priority: feePriority(e.tx.Fee), Value: e.tx.Serial})
	}
}

// Admit mirrors Handle.Admit exactly, against the exact pool.
func (p *SeqPool) Admit(sender, nonce, fee uint64) error {
	if fee == 0 || fee > MaxFee {
		p.st.RejectedFee++
		return ErrFeeOutOfRange
	}
	ss := p.sender(sender)
	switch {
	case nonce < ss.nextDeliver:
		p.st.RejectedStale++
		return ErrStaleNonce
	case nonce > ss.nextAdmit:
		p.st.RejectedGap++
		return ErrNonceGap
	case nonce < ss.nextAdmit:
		e := p.byID[TxID{sender, nonce}]
		if !p.bumped(e.tx.Fee, fee) {
			p.st.RejectedFee++
			return ErrFeeTooLow
		}
		delete(p.bySerial, e.tx.Serial)
		e.tx.Serial = p.nextSerial
		p.nextSerial++
		e.tx.Fee = fee
		p.bySerial[e.tx.Serial] = e
		p.evict.Push(heap.Item{Priority: fee, Value: e.tx.Serial})
		if nonce == ss.nextDeliver {
			p.pushHead(ss, sender)
		}
		p.st.Replaced++
		p.st.Admitted++
		return nil
	}
	if p.capacity > 0 && len(p.byID) >= p.capacity {
		if err := p.evictFor(sender, fee); err != nil {
			p.st.RejectedFull++
			return err
		}
	}
	e := &txEntry{tx: Tx{Sender: sender, Nonce: nonce, Fee: fee, Serial: p.nextSerial}}
	p.nextSerial++
	p.byID[TxID{sender, nonce}] = e
	p.bySerial[e.tx.Serial] = e
	p.evict.Push(heap.Item{Priority: fee, Value: e.tx.Serial})
	ss.nextAdmit++
	if nonce == ss.nextDeliver {
		p.pushHead(ss, sender)
	}
	p.st.Admitted++
	return nil
}

func (p *SeqPool) evictFor(sender, fee uint64) error {
	var victim *txEntry
	for {
		it, ok := p.evict.Peek()
		if !ok {
			return ErrPoolFull
		}
		e := p.bySerial[it.Value]
		if e == nil || e.tx.Fee != it.Priority {
			p.evict.Pop()
			continue
		}
		victim = e
		break
	}
	if victim.tx.Sender == sender || !p.bumped(victim.tx.Fee, fee) {
		return ErrPoolFull
	}
	ss := p.senders[victim.tx.Sender]
	for n := ss.nextAdmit; n > victim.tx.Nonce; n-- {
		id := TxID{victim.tx.Sender, n - 1}
		e := p.byID[id]
		delete(p.byID, id)
		delete(p.bySerial, e.tx.Serial)
		p.st.Evicted++
		p.st.EvictedFee += e.tx.Fee
	}
	ss.nextAdmit = victim.tx.Nonce
	// The evicted head's heap entry goes stale via bySerial; nothing to do.
	return nil
}

// Pop delivers the highest-fee deliverable head. ok is false only when the
// pool is empty.
func (p *SeqPool) Pop() (Tx, bool) {
	for {
		it, ok := p.heads.Pop()
		if !ok {
			if len(p.byID) != 0 {
				panic("mempool: seq pool has residents but no deliverable head")
			}
			return Tx{}, false
		}
		e := p.bySerial[it.Value]
		if e == nil || feePriority(e.tx.Fee) != it.Priority {
			continue // stale: evicted, replaced, or re-priced
		}
		ss := p.senders[e.tx.Sender]
		if e.tx.Nonce != ss.nextDeliver {
			continue // stale: superseded head entry
		}
		ss.nextDeliver = e.tx.Nonce + 1
		delete(p.byID, TxID{e.tx.Sender, e.tx.Nonce})
		delete(p.bySerial, e.tx.Serial)
		p.st.Popped++
		p.st.Revenue += e.tx.Fee
		p.pushHead(ss, e.tx.Sender)
		return e.tx, true
	}
}

// NextAdmit returns the sender's next admission nonce.
func (p *SeqPool) NextAdmit(sender uint64) uint64 {
	if ss := p.senders[sender]; ss != nil {
		return ss.nextAdmit
	}
	return 0
}

// ResidentRange returns the sender's resident nonce window [lo, hi).
func (p *SeqPool) ResidentRange(sender uint64) (lo, hi uint64) {
	if ss := p.senders[sender]; ss != nil {
		return ss.nextDeliver, ss.nextAdmit
	}
	return 0, 0
}

// Fee returns the resident fee of (sender, nonce), if resident.
func (p *SeqPool) Fee(sender, nonce uint64) (uint64, bool) {
	if e := p.byID[TxID{sender, nonce}]; e != nil {
		return e.tx.Fee, true
	}
	return 0, false
}

// Len returns the number of resident transactions.
func (p *SeqPool) Len() int { return len(p.byID) }

// Stats snapshots the ledger.
func (p *SeqPool) Stats() Stats {
	st := p.st
	st.Resident = uint64(len(p.byID))
	return st
}

// CheckConservation audits the exact pool's ledger.
func (p *SeqPool) CheckConservation() error {
	st := p.st
	resident := uint64(len(p.byID))
	if st.Admitted != st.Popped+st.Evicted+st.Replaced+resident {
		return fmt.Errorf("mempool: seq ledger violated: admitted %d != popped %d + evicted %d + replaced %d + resident %d",
			st.Admitted, st.Popped, st.Evicted, st.Replaced, resident)
	}
	if len(p.byID) != len(p.bySerial) {
		return fmt.Errorf("mempool: seq id/serial index mismatch: %d vs %d", len(p.byID), len(p.bySerial))
	}
	for id := range p.byID {
		ss := p.senders[id.Sender]
		if ss == nil || id.Nonce < ss.nextDeliver || id.Nonce >= ss.nextAdmit {
			return fmt.Errorf("mempool: seq resident %+v outside its sender window", id)
		}
	}
	return nil
}
