package mempool

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func newTestPool(t *testing.T, capacity int) (*Pool, *Handle) {
	t.Helper()
	p := New(Config{
		Queue:    core.MultiQueueConfig{Queues: 8, Choices: 2, Stickiness: 4, Batch: 4, Seed: 9},
		Capacity: capacity,
		Seed:     5,
	})
	return p, p.NewHandle(1)
}

func mustAdmit(t *testing.T, h *Handle, sender, nonce, fee uint64) {
	t.Helper()
	if err := h.Admit(sender, nonce, fee); err != nil {
		t.Fatalf("Admit(%d,%d,%d): %v", sender, nonce, fee, err)
	}
}

func checkConservation(t *testing.T, p *Pool) {
	t.Helper()
	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestNonceOrderBeatsFeeOrder: one sender's chain delivers strictly in
// nonce order even when later nonces pay far higher fees — the
// park-and-promote path in action (the high-fee nonce pops first from the
// fee-ordered structure and must wait).
func TestNonceOrderBeatsFeeOrder(t *testing.T) {
	p, h := newTestPool(t, 0)
	fees := []uint64{5, 50000, 7, 90000}
	for n, fee := range fees {
		mustAdmit(t, h, 1, uint64(n), fee)
	}
	for want := uint64(0); want < 4; want++ {
		tx, ok := p.Pop()
		if !ok || tx.Nonce != want || tx.Fee != fees[want] {
			t.Fatalf("pop %d = (%+v, %v), want nonce %d fee %d", want, tx, ok, want, fees[want])
		}
	}
	if _, ok := p.Pop(); ok {
		t.Fatal("pool should be empty")
	}
	st := p.Stats()
	if st.Revenue != 5+50000+7+90000 {
		t.Fatalf("revenue %d", st.Revenue)
	}
	checkConservation(t, p)
}

// TestAdmissionValidation covers the rejection matrix: zero/oversized fees,
// nonce gaps, stale nonces, and the dedupe/RBF threshold.
func TestAdmissionValidation(t *testing.T) {
	p, h := newTestPool(t, 0)
	if err := h.Admit(1, 0, 0); !errors.Is(err, ErrFeeOutOfRange) {
		t.Fatalf("zero fee: %v", err)
	}
	if err := h.Admit(1, 0, MaxFee+1); !errors.Is(err, ErrFeeOutOfRange) {
		t.Fatalf("oversized fee: %v", err)
	}
	if err := h.Admit(1, 1, 100); !errors.Is(err, ErrNonceGap) {
		t.Fatalf("gap: %v", err)
	}
	mustAdmit(t, h, 1, 0, 100)
	// Dedupe: same (sender, nonce) again with the same fee is a rejected
	// replacement, not a second admission.
	if err := h.Admit(1, 0, 100); !errors.Is(err, ErrFeeTooLow) {
		t.Fatalf("duplicate: %v", err)
	}
	// +10% default bump: 109 rejected, 110 accepted.
	if err := h.Admit(1, 0, 109); !errors.Is(err, ErrFeeTooLow) {
		t.Fatalf("under-bump: %v", err)
	}
	mustAdmit(t, h, 1, 0, 110)
	if tx, ok := p.Pop(); !ok || tx.Fee != 110 {
		t.Fatalf("pop = (%+v, %v), want the replacement fee 110", tx, ok)
	}
	if err := h.Admit(1, 0, 500); !errors.Is(err, ErrStaleNonce) {
		t.Fatalf("stale: %v", err)
	}
	st := p.Stats()
	if st.Admitted != 2 || st.Replaced != 1 || st.Popped != 1 {
		t.Fatalf("stats %+v", st)
	}
	checkConservation(t, p)
}

// TestReplacedNeverPops: after a successful replace-by-fee, only the new
// version (new fee, new serial) is ever delivered.
func TestReplacedNeverPops(t *testing.T) {
	p, h := newTestPool(t, 0)
	mustAdmit(t, h, 1, 0, 1000)
	mustAdmit(t, h, 2, 0, 5)
	mustAdmit(t, h, 1, 0, 2000) // RBF while queued
	seen := map[TxID]Tx{}
	for {
		tx, ok := p.Pop()
		if !ok {
			break
		}
		id := TxID{tx.Sender, tx.Nonce}
		if prev, dup := seen[id]; dup {
			t.Fatalf("delivered %+v twice (first %+v) — replaced version surfaced", id, prev)
		}
		seen[id] = tx
	}
	if got := seen[TxID{1, 0}]; got.Fee != 2000 {
		t.Fatalf("delivered fee %d for the replaced slot, want 2000", got.Fee)
	}
	checkConservation(t, p)
}

// TestRBFOnParkedTx: replacing a transaction that was already popped out of
// nonce order (parked) re-prices it in place; the parked version delivers
// with the new fee. A single internal queue makes the parking sequence
// deterministic: the fee-ordered pop surfaces nonce 1 first, parks it, and
// delivers sender 2 instead.
func TestRBFOnParkedTx(t *testing.T) {
	p := New(Config{Queue: core.MultiQueueConfig{Queues: 1, Seed: 9}, Seed: 5})
	h := p.NewHandle(1)
	mustAdmit(t, h, 1, 0, 10)
	mustAdmit(t, h, 1, 1, 90000)
	mustAdmit(t, h, 2, 0, 50000)
	tx, ok := p.Pop() // pops (1,1): parks; pops (2,0): delivers
	if !ok || tx.Sender != 2 {
		t.Fatalf("first pop = (%+v, %v), want sender 2", tx, ok)
	}
	if st := p.Stats(); st.Parked != 1 {
		t.Fatalf("parked %d, want 1", st.Parked)
	}
	mustAdmit(t, h, 1, 1, 99001) // RBF on the parked version: re-price in place
	tx, ok = p.Pop()
	if !ok || tx.Sender != 1 || tx.Nonce != 0 {
		t.Fatalf("second pop = (%+v, %v), want (1,0)", tx, ok)
	}
	tx, ok = p.Pop()
	if !ok || tx.Nonce != 1 || tx.Fee != 99001 {
		t.Fatalf("third pop = (%+v, %v), want nonce 1 fee 99001", tx, ok)
	}
	checkConservation(t, p)
}

// TestEvictionCascade: at capacity, the lowest-fee resident is evicted
// together with its sender's higher nonces, and the newcomer must outbid
// the victim by the bump factor.
func TestEvictionCascade(t *testing.T) {
	p, h := newTestPool(t, 4)
	mustAdmit(t, h, 1, 0, 100) // victim: lowest fee
	mustAdmit(t, h, 1, 1, 9000)
	mustAdmit(t, h, 1, 2, 9000)
	mustAdmit(t, h, 2, 0, 5000)
	// Newcomer under the bump bar over the victim: rejected.
	if err := h.Admit(3, 0, 105); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("under-bid admission: %v", err)
	}
	// Newcomer clearing the bar: evicts sender 1's whole chain (nonces
	// 0..2 — the cascade keeps contiguity).
	mustAdmit(t, h, 3, 0, 200)
	st := p.Stats()
	if st.Evicted != 3 {
		t.Fatalf("evicted %d, want 3 (victim + 2 cascade)", st.Evicted)
	}
	if st.EvictedFee != 100+9000+9000 {
		t.Fatalf("evicted fee %d", st.EvictedFee)
	}
	if p.Len() != 2 {
		t.Fatalf("resident %d, want 2", p.Len())
	}
	// Sender 1's frontier rolled back: nonce 0 is admittable again.
	if got := p.NextAdmit(1); got != 0 {
		t.Fatalf("sender 1 NextAdmit %d, want 0 after cascade", got)
	}
	mustAdmit(t, h, 1, 0, 30000)
	// Fill back to capacity, then check the own-sender guard: sender 3
	// cannot evict its own chain to append a nonce.
	mustAdmit(t, h, 3, 1, 250)
	for p.Len() < 4 {
		mustAdmit(t, h, 4, p.NextAdmit(4), 40000)
	}
	if err := h.Admit(3, 2, MaxFee); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("own-sender eviction must be refused: %v", err)
	}
	checkConservation(t, p)
	// Drain respects nonce order per sender throughout.
	last := map[uint64]uint64{}
	for {
		tx, ok := p.Pop()
		if !ok {
			break
		}
		if n, seen := last[tx.Sender]; seen && tx.Nonce != n+1 {
			t.Fatalf("sender %d delivered nonce %d after %d", tx.Sender, tx.Nonce, n)
		}
		last[tx.Sender] = tx.Nonce
	}
	checkConservation(t, p)
}

// TestBumpFee pins the helper's ceiling/saturation arithmetic.
func TestBumpFee(t *testing.T) {
	cases := []struct{ old, num, den, want uint64 }{
		{100, 110, 100, 110},
		{101, 110, 100, 112}, // ceil(111.1)
		{1, 110, 100, 2},     // max(old+1, ceil(1.1))
		{MaxFee, 110, 100, MaxFee},
		{MaxFee - 1, 100, 100, MaxFee},
		{1000, 3, 2, 1500},
	}
	for _, c := range cases {
		if got := BumpFee(c.old, c.num, c.den); got != c.want {
			t.Fatalf("BumpFee(%d,%d/%d) = %d, want %d", c.old, c.num, c.den, got, c.want)
		}
	}
	// The computed fee always clears the pool's own acceptance check.
	p := &Pool{bumpNum: 117, bumpDen: 100}
	for old := uint64(1); old < 3000; old += 7 {
		f := BumpFee(old, 117, 100)
		if !p.bumped(old, f) {
			t.Fatalf("BumpFee(%d) = %d does not clear the 117/100 bar", old, f)
		}
		if f > old+1 && p.bumped(old, f-1) {
			t.Fatalf("BumpFee(%d) = %d is not minimal", old, f)
		}
	}
}

// TestSeqPoolMirrorsPolicy runs the validation matrix against the exact
// reference: same errors, same ledger shape.
func TestSeqPoolMirrorsPolicy(t *testing.T) {
	p := NewSeq(Config{Capacity: 2})
	if err := p.Admit(1, 1, 10); !errors.Is(err, ErrNonceGap) {
		t.Fatalf("gap: %v", err)
	}
	if err := p.Admit(1, 0, 0); !errors.Is(err, ErrFeeOutOfRange) {
		t.Fatalf("fee: %v", err)
	}
	if err := p.Admit(1, 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := p.Admit(1, 0, 105); !errors.Is(err, ErrFeeTooLow) {
		t.Fatalf("under-bump: %v", err)
	}
	if err := p.Admit(1, 0, 110); err != nil {
		t.Fatal(err)
	}
	if err := p.Admit(2, 0, 500); err != nil {
		t.Fatal(err)
	}
	// Full: newcomer must outbid lowest-fee resident (110 of sender 1).
	if err := p.Admit(3, 0, 115); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("under-bid: %v", err)
	}
	if err := p.Admit(3, 0, 200); err != nil {
		t.Fatal(err)
	}
	// Exact delivery: highest-fee head first.
	want := []struct{ sender, fee uint64 }{{2, 500}, {3, 200}}
	for _, w := range want {
		tx, ok := p.Pop()
		if !ok || tx.Sender != w.sender || tx.Fee != w.fee {
			t.Fatalf("pop = (%+v, %v), want sender %d fee %d", tx, ok, w.sender, w.fee)
		}
	}
	if _, ok := p.Pop(); ok {
		t.Fatal("seq pool should be empty")
	}
	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Admitted != 4 || st.Replaced != 1 || st.Evicted != 1 || st.Popped != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSeqPoolNonceOrder: the exact pool also delivers a sender's chain in
// nonce order — its heads index only ever exposes the frontier.
func TestSeqPoolNonceOrder(t *testing.T) {
	p := NewSeq(Config{})
	fees := []uint64{5, 50000, 7, 90000}
	for n, fee := range fees {
		if err := p.Admit(1, uint64(n), fee); err != nil {
			t.Fatal(err)
		}
	}
	for want := uint64(0); want < 4; want++ {
		tx, ok := p.Pop()
		if !ok || tx.Nonce != want {
			t.Fatalf("pop = (%+v, %v), want nonce %d", tx, ok, want)
		}
	}
}
