// Package mempool is a fee-priority transaction pool served from the
// relaxed MultiQueue — the first workload in this repository that mutates
// queued elements (replace-by-fee, capacity eviction) instead of only
// inserting and removing minima, built on the lazy-tombstone interior
// removal that core.MQHandle.Remove/Replace expose (DESIGN.md §9).
//
// Transactions are keyed by (sender, nonce). The pool enforces:
//
//   - per-sender nonce contiguity: the resident nonces of a sender are
//     exactly [nextDeliver, nextAdmit); admissions must use nonce ==
//     nextAdmit (gaps are rejected), and delivery hands a sender's
//     transactions out in nonce order regardless of fee order;
//   - dedupe + replace-by-fee: re-admitting a resident (sender, nonce) is a
//     replacement and must bump the fee by the configured factor, or it is
//     rejected;
//   - capacity-bounded eviction: when full, the lowest-fee resident is
//     evicted together with every higher nonce of its sender (contiguity
//     would otherwise break), and the newcomer must outbid the victim.
//
// Pop serves the highest-fee deliverable transaction the relaxed structure
// surfaces: fees map to MultiQueue priorities by bitwise complement (the
// fee bound MaxFee keeps the complement's truncation to the 48-bit top word
// order-exact), and a popped transaction whose nonce predecessor has not
// been delivered yet parks until promotion. Rank relaxation therefore never
// reorders one sender's chain; it only perturbs fee order across senders —
// the revenue cost of that perturbation is the quality metric
// quality.MeasureMempoolRevenue reports and cmd/mempool-sim audits.
//
// SeqPool implements the same admission policy over an exact max-fee
// delivery rule; the differential tests replay identical traces against
// both and cmd/quality -mempool reports the fee-revenue gap.
package mempool

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/core"
	"repro/internal/cpq"
	"repro/internal/heap"
)

// MaxFee bounds admissible fees to 2^48 − 1 so that the complemented
// priority ^fee keeps its high 16 bits constant and the MultiQueue's 48-bit
// truncated top-word comparisons order fees exactly (cpq.TopPrioBits).
const MaxFee = (uint64(1) << 48) - 1

// Admission errors. All are sticky-free: a rejected admission leaves the
// pool unchanged.
var (
	// ErrFeeOutOfRange rejects fee == 0 or fee > MaxFee.
	ErrFeeOutOfRange = errors.New("mempool: fee out of range")
	// ErrStaleNonce rejects a nonce below the sender's delivery frontier —
	// that slot was already delivered (or never admitted and passed over).
	ErrStaleNonce = errors.New("mempool: nonce already delivered")
	// ErrNonceGap rejects a nonce above the sender's next admission slot;
	// residency stays contiguous per sender.
	ErrNonceGap = errors.New("mempool: nonce gap")
	// ErrFeeTooLow rejects a replacement whose fee does not exceed the
	// resident fee by the configured bump factor (this is also the dedupe
	// path: re-admitting an identical transaction lands here).
	ErrFeeTooLow = errors.New("mempool: replacement fee below bump threshold")
	// ErrPoolFull rejects an admission that cannot fund an eviction: the
	// pool is at capacity and the newcomer does not outbid the lowest-fee
	// resident, or the victim would be the newcomer's own sender.
	ErrPoolFull = errors.New("mempool: pool full")
)

// TxID identifies a transaction by (sender, nonce).
type TxID struct {
	Sender uint64
	Nonce  uint64
}

// Tx is one admitted transaction. Serial is the pool-assigned admission
// serial — unique for every admitted version (replacements get a fresh
// one), and the value the MultiQueue carries.
type Tx struct {
	Sender uint64
	Nonce  uint64
	Fee    uint64
	Serial uint64
}

// Config configures New. The zero value of optional fields selects
// defaults.
type Config struct {
	// Queue configures the underlying relaxed MultiQueue (Topology, Choices,
	// Stickiness, Batch, Backing, Affinity...). Queue.Topology.InitialM (or
	// the deprecated Queue.Queues) is required. An elastic Topology works
	// here: outstanding ElemRefs survive resize epochs through the queue's
	// forwarding table, so Remove/Replace keep landing after a shrink.
	// The pool installs its own Clock-free priority scheme.
	Queue core.MultiQueueConfig
	// Capacity bounds the number of resident (admitted, undelivered)
	// transactions; 0 means unbounded. At capacity, admissions evict the
	// lowest-fee resident (plus its sender's higher nonces) or are refused.
	Capacity int
	// BumpNum/BumpDen set the replace-by-fee factor: a replacement needs
	// newFee > oldFee and newFee·BumpDen ≥ oldFee·BumpNum (compared in 128
	// bits, so no overflow). Zero values select 110/100 (+10%).
	BumpNum, BumpDen uint64
	// Seed seeds the pool's internal pop handle.
	Seed uint64
}

// txState tracks where a resident transaction physically lives.
type txState uint8

const (
	// stateQueued: in the shared MultiQueue (or the pop handle's prefetch
	// buffer, which DropPrefetched disambiguates at removal time).
	stateQueued txState = iota
	// stateParked: popped by fee order before its nonce predecessor was
	// delivered; waiting for promotion.
	stateParked
	// stateReady: promoted — next Pop calls deliver ready transactions
	// first, in promotion order.
	stateReady
)

type txEntry struct {
	tx    Tx
	ref   core.ElemRef // valid while state == stateQueued
	state txState
}

type senderState struct {
	// Resident nonces are exactly [nextDeliver, nextAdmit).
	nextDeliver uint64
	nextAdmit   uint64
}

// Stats is a point-in-time snapshot of the pool's ledger. The conservation
// identity Admitted = Popped + Evicted + Replaced + Resident holds exactly
// at quiescence (CheckConservation asserts it plus the physical placement
// of every resident transaction).
type Stats struct {
	Admitted uint64 // successful admissions, including replacements
	Popped   uint64 // transactions delivered by Pop
	Replaced uint64 // old versions displaced by replace-by-fee
	Evicted  uint64 // residents removed by capacity eviction (incl. cascades)
	Resident uint64 // admitted, not yet delivered/evicted/replaced

	Parked uint64 // residents popped out of nonce order, awaiting promotion
	Ready  uint64 // promoted residents awaiting delivery

	Revenue    uint64 // sum of delivered fees
	EvictedFee uint64 // sum of fees lost to eviction (victims + cascades)

	RejectedFee   uint64 // ErrFeeTooLow + ErrFeeOutOfRange outcomes
	RejectedGap   uint64 // ErrNonceGap outcomes
	RejectedStale uint64 // ErrStaleNonce outcomes
	RejectedFull  uint64 // ErrPoolFull outcomes
}

// Pool is the relaxed fee-priority transaction pool. All methods are safe
// for concurrent use: policy state is guarded by one mutex, and the
// MultiQueue underneath supplies the relaxed fee ordering that makes pop
// decisions cheap. Create per-worker admission handles with NewHandle.
type Pool struct {
	mu sync.Mutex
	mq *core.MultiQueue
	// popH performs every dequeue and physical removal under mu. Routing
	// all removals through the one handle that prefetches keeps the ElemRef
	// residency contract local: a transaction is either in the shared
	// structure or in popH's prefetch buffer, never in a third place.
	popH *core.MQHandle

	senders  map[uint64]*senderState
	byID     map[TxID]*txEntry
	bySerial map[uint64]*txEntry
	// evict is the lazy min-fee index over residents: entries are
	// (fee, serial) pushed at admission/replacement and validated against
	// bySerial at pop time (a serial that is gone, or whose current fee
	// differs, is stale and skipped).
	evict      *heap.Binary
	ready      []*txEntry
	parked     int
	queued     int
	nextSerial uint64

	capacity         int
	bumpNum, bumpDen uint64
	st               Stats
}

// New returns an empty pool over a fresh relaxed MultiQueue built from
// cfg.Queue.
func New(cfg Config) *Pool {
	if cfg.BumpNum == 0 || cfg.BumpDen == 0 {
		cfg.BumpNum, cfg.BumpDen = 110, 100
	}
	if cfg.BumpNum < cfg.BumpDen {
		panic("mempool: bump factor must be >= 1")
	}
	mq := core.NewMultiQueue(cfg.Queue)
	return &Pool{
		mq:       mq,
		popH:     mq.NewHandle(cfg.Seed*2 + 1),
		senders:  make(map[uint64]*senderState),
		byID:     make(map[TxID]*txEntry),
		bySerial: make(map[uint64]*txEntry),
		evict:    heap.NewBinary(1024),
		capacity: cfg.Capacity,
		bumpNum:  cfg.BumpNum,
		bumpDen:  cfg.BumpDen,
	}
}

// Handle is a per-worker admission front end: it carries its own MultiQueue
// insert handle so concurrent admitters spread across the sticky uniform
// insert rule, while policy decisions serialize on the pool mutex. A Handle
// must be used by one goroutine at a time.
type Handle struct {
	p   *Pool
	mqh *core.MQHandle
}

// NewHandle returns an admission handle seeded with seed.
func (p *Pool) NewHandle(seed uint64) *Handle {
	return &Handle{p: p, mqh: p.mq.NewHandle(seed)}
}

// Close retires the handle's MultiQueue state. Located inserts never
// buffer, so nothing is lost if Close is skipped; it exists for symmetry
// with core handle hygiene.
func (h *Handle) Close() { h.mqh.Close() }

// Pool returns the pool this handle admits into.
func (h *Handle) Pool() *Pool { return h.p }

// bumped reports whether newFee clears the replace-by-fee threshold over
// oldFee: newFee > oldFee and newFee·bumpDen ≥ oldFee·bumpNum, compared in
// 128 bits so MaxFee-scale fees cannot overflow.
func (p *Pool) bumped(oldFee, newFee uint64) bool {
	if newFee <= oldFee {
		return false
	}
	nhi, nlo := bits.Mul64(newFee, p.bumpDen)
	ohi, olo := bits.Mul64(oldFee, p.bumpNum)
	return nhi > ohi || (nhi == ohi && nlo >= olo)
}

func (p *Pool) sender(s uint64) *senderState {
	ss := p.senders[s]
	if ss == nil {
		ss = &senderState{}
		p.senders[s] = ss
	}
	return ss
}

// feePriority maps a fee to its MultiQueue priority: complement, so higher
// fees pop first. With fee ≤ MaxFee the top 16 bits are constant ones and
// the 48-bit truncated top-word order equals fee order exactly.
func feePriority(fee uint64) uint64 { return ^fee }

// Admit admits (sender, nonce, fee) through this handle. nonce must be the
// sender's next admission slot (NextAdmit) for a new transaction, or an
// undelivered resident nonce for a replace-by-fee. Returns nil on success.
func (h *Handle) Admit(sender, nonce, fee uint64) error {
	p := h.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if fee == 0 || fee > MaxFee {
		p.st.RejectedFee++
		return ErrFeeOutOfRange
	}
	ss := p.sender(sender)
	switch {
	case nonce < ss.nextDeliver:
		p.st.RejectedStale++
		return ErrStaleNonce
	case nonce > ss.nextAdmit:
		p.st.RejectedGap++
		return ErrNonceGap
	case nonce < ss.nextAdmit:
		return p.replaceLocked(h, sender, nonce, fee)
	}
	// New admission at the contiguity frontier.
	if p.capacity > 0 && len(p.byID) >= p.capacity {
		if err := p.evictForLocked(sender, fee); err != nil {
			p.st.RejectedFull++
			return err
		}
	}
	e := &txEntry{tx: Tx{Sender: sender, Nonce: nonce, Fee: fee, Serial: p.nextSerial}}
	p.nextSerial++
	e.ref = h.mqh.EnqueuePriorityRef(feePriority(fee), e.tx.Serial)
	p.queued++
	p.byID[TxID{sender, nonce}] = e
	p.bySerial[e.tx.Serial] = e
	p.evict.Push(heap.Item{Priority: fee, Value: e.tx.Serial})
	ss.nextAdmit++
	p.st.Admitted++
	return nil
}

// replaceLocked applies replace-by-fee to the resident (sender, nonce).
func (p *Pool) replaceLocked(h *Handle, sender, nonce, fee uint64) error {
	e := p.byID[TxID{sender, nonce}]
	if !p.bumped(e.tx.Fee, fee) {
		p.st.RejectedFee++
		return ErrFeeTooLow
	}
	if e.state == stateQueued {
		// The old version must never surface from a pop: remove it
		// physically (from the prefetch buffer if the pop handle already
		// staged it, else by tombstone) and insert the replacement as a
		// fresh element with a fresh serial.
		p.removePhysicalLocked(e)
		delete(p.bySerial, e.tx.Serial)
		e.tx.Serial = p.nextSerial
		p.nextSerial++
		e.ref = h.mqh.EnqueuePriorityRef(feePriority(fee), e.tx.Serial)
		p.bySerial[e.tx.Serial] = e
		p.queued++ // removePhysicalLocked decremented
	}
	// Parked/ready versions were already popped by fee order; their
	// delivery slot is fixed by nonce now, so the fee just updates in
	// place (the evict index entry for the old fee goes stale).
	e.tx.Fee = fee
	p.evict.Push(heap.Item{Priority: fee, Value: e.tx.Serial})
	p.st.Replaced++
	p.st.Admitted++
	return nil
}

// removePhysicalLocked removes a queued entry from wherever it physically
// lives: the pop handle's prefetch buffer, or the shared structure by
// tombstone. The ElemRef residency contract is exactly why both are probed
// here and nowhere else.
func (p *Pool) removePhysicalLocked(e *txEntry) {
	if !p.popH.DropPrefetched(e.tx.Serial) {
		if !p.popH.Remove(e.ref) {
			panic(fmt.Sprintf("mempool: resident tx %+v not removable", e.tx))
		}
	}
	p.queued--
}

// evictForLocked frees one admission slot for a newcomer paying fee: the
// lowest-fee resident is the victim, and contiguity evicts the victim's
// whole tail [victim.Nonce, nextAdmit) of its sender. The newcomer must
// outbid the victim, and must not be the victim's own sender (evicting
// one's own tail to append a higher nonce would break contiguity).
func (p *Pool) evictForLocked(sender, fee uint64) error {
	victim := p.minFeeResidentLocked()
	if victim == nil {
		return ErrPoolFull // capacity 0 edge: nothing evictable
	}
	if victim.tx.Sender == sender || !p.bumped(victim.tx.Fee, fee) {
		// The newcomer must clear the same bump bar over the victim as a
		// replacement would — otherwise eviction churn is free and two
		// equal-fee streams could thrash each other out of the pool.
		return ErrPoolFull
	}
	ss := p.senders[victim.tx.Sender]
	for n := ss.nextAdmit; n > victim.tx.Nonce; n-- {
		p.evictOneLocked(TxID{victim.tx.Sender, n - 1})
	}
	ss.nextAdmit = victim.tx.Nonce
	return nil
}

// minFeeResidentLocked pops the lazy eviction index down to the current
// lowest-fee resident, discarding stale entries (gone serials, outdated
// fees) as it goes.
func (p *Pool) minFeeResidentLocked() *txEntry {
	for {
		it, ok := p.evict.Peek()
		if !ok {
			return nil
		}
		e := p.bySerial[it.Value]
		if e == nil || e.tx.Fee != it.Priority {
			p.evict.Pop()
			continue
		}
		return e
	}
}

// evictOneLocked removes one resident by id, wherever it lives.
func (p *Pool) evictOneLocked(id TxID) {
	e := p.byID[id]
	switch e.state {
	case stateQueued:
		p.removePhysicalLocked(e)
	case stateParked:
		p.parked--
	case stateReady:
		for i, re := range p.ready {
			if re == e {
				p.ready = append(p.ready[:i], p.ready[i+1:]...)
				break
			}
		}
	}
	delete(p.byID, id)
	delete(p.bySerial, e.tx.Serial)
	p.st.Evicted++
	p.st.EvictedFee += e.tx.Fee
}

// Pop delivers the next transaction: the highest-fee resident the relaxed
// structure surfaces whose sender chain allows it (nonce order per sender
// is absolute — an out-of-order pop parks until its predecessor delivers).
// ok is false only when the pool is empty.
func (p *Pool) Pop() (Tx, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.popLocked()
}

func (p *Pool) popLocked() (Tx, bool) {
	for {
		if len(p.ready) > 0 {
			e := p.ready[0]
			p.ready = p.ready[1:]
			return p.deliverLocked(e), true
		}
		it, ok := p.popH.Dequeue()
		if !ok {
			if p.parked > 0 {
				// Unreachable by construction: a parked nonce's predecessor
				// is resident and not parked/ready, hence queued, hence
				// obtainable above.
				panic("mempool: parked transactions with empty backing structure")
			}
			return Tx{}, false
		}
		e := p.bySerial[it.Value]
		if e == nil {
			// Every removal is physical (tombstone or prefetch drop), so a
			// popped serial always resolves.
			panic(fmt.Sprintf("mempool: popped unknown serial %d", it.Value))
		}
		p.queued--
		ss := p.senders[e.tx.Sender]
		if e.tx.Nonce == ss.nextDeliver {
			return p.deliverLocked(e), true
		}
		e.state = stateParked
		p.parked++
	}
}

// deliverLocked finalizes delivery of e and promotes its parked successor,
// if any, into the ready queue.
func (p *Pool) deliverLocked(e *txEntry) Tx {
	ss := p.senders[e.tx.Sender]
	ss.nextDeliver = e.tx.Nonce + 1
	delete(p.byID, TxID{e.tx.Sender, e.tx.Nonce})
	delete(p.bySerial, e.tx.Serial)
	p.st.Popped++
	p.st.Revenue += e.tx.Fee
	if succ := p.byID[TxID{e.tx.Sender, ss.nextDeliver}]; succ != nil && succ.state == stateParked {
		succ.state = stateReady
		p.parked--
		p.ready = append(p.ready, succ)
	}
	return e.tx
}

// NextAdmit returns the sender's next admission nonce.
func (p *Pool) NextAdmit(sender uint64) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ss := p.senders[sender]; ss != nil {
		return ss.nextAdmit
	}
	return 0
}

// ResidentRange returns the sender's resident nonce window [lo, hi);
// lo == hi means no resident transactions.
func (p *Pool) ResidentRange(sender uint64) (lo, hi uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ss := p.senders[sender]; ss != nil {
		return ss.nextDeliver, ss.nextAdmit
	}
	return 0, 0
}

// Fee returns the resident fee of (sender, nonce), if resident.
func (p *Pool) Fee(sender, nonce uint64) (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.byID[TxID{sender, nonce}]; e != nil {
		return e.tx.Fee, true
	}
	return 0, false
}

// Len returns the number of resident transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.byID)
}

// Stats snapshots the ledger.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.st
	st.Resident = uint64(len(p.byID))
	st.Parked = uint64(p.parked)
	st.Ready = uint64(len(p.ready))
	return st
}

// MQStats exposes the underlying MultiQueue's event counters (tombstone
// invalidations/reclamations among them).
func (p *Pool) MQStats() core.MQStats { return p.mq.Stats() }

// CheckConservation audits the pool against its ledger and its physical
// placement: Admitted = Popped + Evicted + Replaced + Resident, the three
// residency states partition the resident set, the relaxed structure plus
// the pop handle's prefetch hold exactly the queued transactions, and no
// tombstone leaked (armed − reclaimed tombstones all correspond to... none:
// every tombstone this pool arms is still awaiting physical compaction
// inside the structure, which mq.Len already excludes). Requires
// quiescence (no concurrent pool calls).
func (p *Pool) CheckConservation() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.st
	resident := uint64(len(p.byID))
	if st.Admitted != st.Popped+st.Evicted+st.Replaced+resident {
		return fmt.Errorf("mempool: ledger violated: admitted %d != popped %d + evicted %d + replaced %d + resident %d",
			st.Admitted, st.Popped, st.Evicted, st.Replaced, resident)
	}
	if len(p.byID) != len(p.bySerial) {
		return fmt.Errorf("mempool: id/serial index mismatch: %d vs %d", len(p.byID), len(p.bySerial))
	}
	if p.queued+p.parked+len(p.ready) != len(p.byID) {
		return fmt.Errorf("mempool: states leak: queued %d + parked %d + ready %d != resident %d",
			p.queued, p.parked, len(p.ready), len(p.byID))
	}
	if got := p.mq.Len() + p.popH.Prefetched(); got != p.queued {
		return fmt.Errorf("mempool: physical placement violated: mq.Len %d + prefetched %d != queued %d",
			p.mq.Len(), p.popH.Prefetched(), p.queued)
	}
	for id, e := range p.byID {
		ss := p.senders[id.Sender]
		if ss == nil || id.Nonce < ss.nextDeliver || id.Nonce >= ss.nextAdmit {
			return fmt.Errorf("mempool: resident %+v outside its sender window", id)
		}
		if p.bySerial[e.tx.Serial] != e {
			return fmt.Errorf("mempool: serial index stale for %+v", id)
		}
	}
	return nil
}

// Compile-time pin: MaxFee's order-exact truncation argument assumes the
// top word carries 48 priority bits; this fails to build if that changes.
var _ = [1]struct{}{}[cpq.TopPrioBits-48]
