package mempool

import (
	"flag"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cpq"
	"repro/internal/rng"
)

// diffops scales the differential/concurrent soaks so CI's -race leg can
// run them reduced (the CI mempool job passes -diffops 4000).
var diffops = flag.Int("diffops", 20000, "operations per differential mempool trace")

// deliveryAuditor checks the two pop-stream invariants every pool must
// uphold regardless of relaxation: per-sender nonces deliver in exactly
// ascending order with no slot delivered twice, and the delivered fee for a
// slot is the last accepted fee (a replaced version never surfaces).
type deliveryAuditor struct {
	next map[uint64]uint64 // sender -> next expected nonce
	fees map[TxID]uint64   // last accepted fee per slot
}

func newDeliveryAuditor() *deliveryAuditor {
	return &deliveryAuditor{next: map[uint64]uint64{}, fees: map[TxID]uint64{}}
}

// accept records a successful admission/replacement of (sender,nonce,fee).
func (a *deliveryAuditor) accept(ap Applied) {
	if ap.OK && ap.Kind != OpPop {
		a.fees[TxID{ap.Sender, ap.Nonce}] = ap.Fee
	}
}

func (a *deliveryAuditor) delivered(t *testing.T, label string, tx Tx) {
	t.Helper()
	id := TxID{tx.Sender, tx.Nonce}
	if want := a.next[tx.Sender]; tx.Nonce != want {
		t.Fatalf("%s: sender %d delivered nonce %d, want %d (nonce monotonicity)", label, tx.Sender, tx.Nonce, want)
	}
	a.next[tx.Sender] = tx.Nonce + 1
	if fee, ok := a.fees[id]; ok && fee != tx.Fee {
		t.Fatalf("%s: slot %+v delivered fee %d, want last accepted %d (replaced version surfaced)", label, id, tx.Fee, fee)
	}
	delete(a.fees, id)
}

// replayAudited replays ops against p with full delivery auditing. A slot
// evicted by a cascade either never delivers (its stale fee expectation is
// never consulted) or is re-admitted first (the expectation is overwritten),
// so the auditor needs no eviction hook. Returns the number of delivered
// transactions and the delivered fee sum.
func replayAudited(t *testing.T, label string, p PoolAPI, ops []Op) (uint64, uint64) {
	t.Helper()
	aud := newDeliveryAuditor()
	var popped, revenue uint64
	for _, op := range ops {
		ap := Apply(p, op, 110, 100)
		aud.accept(ap)
		if ap.Kind == OpPop && ap.OK {
			aud.delivered(t, label, ap.Tx)
			popped++
			revenue += ap.Tx.Fee
		}
	}
	// Drain completely; every remaining delivery stays audited.
	for {
		tx, ok := p.Pop()
		if !ok {
			break
		}
		aud.delivered(t, label, tx)
		popped++
		revenue += tx.Fee
	}
	return popped, revenue
}

// TestDifferentialRelaxedVsSeq replays identical seeded intent traces
// against the relaxed pool and the exact sequential reference, across
// backings and capacity regimes, asserting on both: exact conservation,
// nonce monotonicity, replaced-never-popped. In the divergence-free regime
// (no bumps, no capacity) the two pools must deliver the identical
// transaction multiset with identical total revenue.
func TestDifferentialRelaxedVsSeq(t *testing.T) {
	type regime struct {
		name     string
		capacity int
		bumpFrac float64
	}
	regimes := []regime{
		{"pure", 0, -1},      // no bumps, no capacity: exact equality holds
		{"rbf", 0, 0.15},     // replacements, unbounded
		{"evict", 600, 0.1},  // capacity pressure: cascades fire
		{"churn", 200, 0.25}, // heavy churn, small pool
	}
	for _, b := range []cpq.Backing{cpq.BackingBinary, cpq.BackingDAry} {
		for _, rg := range regimes {
			t.Run(b.String()+"/"+rg.name, func(t *testing.T) {
				bump := rg.bumpFrac
				if bump < 0 {
					bump = 0
				}
				ops := GenOps(WorkloadConfig{
					Ops: *diffops, Senders: 64, PopFrac: 0.35,
					BumpFrac: bump, Seed: 77 + uint64(len(rg.name)),
				})
				if rg.bumpFrac < 0 {
					// Strip bump ops entirely for the equality regime.
					kept := ops[:0]
					for _, op := range ops {
						if op.Kind != OpBump {
							kept = append(kept, op)
						}
					}
					ops = kept
				}
				cfg := Config{
					Queue: core.MultiQueueConfig{
						Queues: 16, Choices: 2, Stickiness: 8, Batch: 8,
						Backing: b, Seed: 3, Capacity: 4096,
					},
					Capacity: rg.capacity,
					Seed:     9,
				}
				relaxed := New(cfg)
				h := relaxed.NewHandle(21)
				seq := NewSeq(cfg)
				rp, rrev := replayAudited(t, "relaxed", h, ops)
				sp, srev := replayAudited(t, "seq", seq, ops)

				if err := relaxed.CheckConservation(); err != nil {
					t.Fatal(err)
				}
				if err := seq.CheckConservation(); err != nil {
					t.Fatal(err)
				}
				if relaxed.Len() != 0 || seq.Len() != 0 {
					t.Fatalf("drain incomplete: relaxed %d, seq %d resident", relaxed.Len(), seq.Len())
				}
				if rg.name == "pure" {
					// Same admissions, full drain: identical delivery ledger.
					if rp != sp || rrev != srev {
						t.Fatalf("pure regime diverged: relaxed %d pops / %d revenue, seq %d / %d", rp, rrev, sp, srev)
					}
					rst, sst := relaxed.Stats(), seq.Stats()
					if rst.Admitted != sst.Admitted || rst.Popped != sst.Popped {
						t.Fatalf("pure regime ledgers diverged: %+v vs %+v", rst, sst)
					}
				}
				mqs := relaxed.MQStats()
				if mqs.Invalidations != mqs.Reclaimed {
					t.Fatalf("tombstones leaked after full drain: armed %d, reclaimed %d", mqs.Invalidations, mqs.Reclaimed)
				}
			})
		}
	}
}

// TestConcurrentPoolConservation is the -race soak: workers admit, bump and
// pop concurrently through their own handles against one relaxed pool; at
// quiescence the pool must conserve exactly, and the interleaved delivery
// stream must still be nonce-monotone per sender (checked post-hoc from the
// collected pops — fee/slot expectations are not asserted here because
// cross-worker races make the last-accepted-fee relation unobservable).
func TestConcurrentPoolConservation(t *testing.T) {
	const workers = 4
	p := New(Config{
		Queue: core.MultiQueueConfig{
			Queues: 16, Choices: 2, Stickiness: 8, Batch: 8, Seed: 13, Capacity: 4096,
		},
		Capacity: 2000,
		Seed:     17,
	})
	opsPer := *diffops / workers
	var wg sync.WaitGroup
	delivered := make([][]Tx, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := p.NewHandle(uint64(w)*31 + 7)
			defer h.Close()
			r := rng.NewXoshiro256(uint64(w)*101 + 3)
			for i := 0; i < opsPer; i++ {
				switch {
				case r.Bernoulli(0.4):
					if tx, ok := p.Pop(); ok {
						delivered[w] = append(delivered[w], tx)
					}
				case r.Bernoulli(0.1):
					// Bump a random resident of a random sender.
					s := r.Uint64n(32)
					lo, hi := p.ResidentRange(s)
					if lo == hi {
						continue
					}
					nonce := lo + r.Uint64n(hi-lo)
					if old, ok := p.Fee(s, nonce); ok {
						h.Admit(s, nonce, BumpFee(old, 110, 100)+r.Uint64n(500))
					}
				default:
					s := r.Uint64n(32)
					h.Admit(s, p.NextAdmit(s), 1+uint64(r.Exp()*1000))
				}
			}
		}(w)
	}
	wg.Wait()
	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Drain and stitch the global delivery order per sender: each worker's
	// own stream is ordered by its append order; across workers we can only
	// assert the multiset forms exactly [0, finalNextDeliver) per sender.
	var tail []Tx
	for {
		tx, ok := p.Pop()
		if !ok {
			break
		}
		tail = append(tail, tx)
	}
	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	seen := map[TxID]bool{}
	maxNonce := map[uint64]uint64{}
	count := map[uint64]uint64{}
	for _, stream := range append(delivered, tail) {
		for _, tx := range stream {
			id := TxID{tx.Sender, tx.Nonce}
			if seen[id] {
				t.Fatalf("slot %+v delivered twice", id)
			}
			seen[id] = true
			if tx.Nonce+1 > maxNonce[tx.Sender] {
				maxNonce[tx.Sender] = tx.Nonce + 1
			}
			count[tx.Sender]++
		}
	}
	for s, n := range count {
		if maxNonce[s] != n {
			t.Fatalf("sender %d delivered %d slots but max nonce %d — a gap was delivered out of order", s, n, maxNonce[s])
		}
	}
	st := p.Stats()
	if st.Resident != 0 {
		t.Fatalf("resident %d after drain", st.Resident)
	}
	if got := uint64(len(seen)); got != st.Popped {
		t.Fatalf("collected %d deliveries, ledger says %d", got, st.Popped)
	}
	mqs := p.MQStats()
	if mqs.Invalidations != mqs.Reclaimed {
		t.Fatalf("tombstones leaked: armed %d, reclaimed %d", mqs.Invalidations, mqs.Reclaimed)
	}
}
