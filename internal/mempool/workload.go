package mempool

import (
	"math/bits"

	"repro/internal/rng"
)

// The workload layer generates pool-independent intent traces and replays
// them against any pool implementation. Ops carry intent, not absolute
// state: an admission targets "the sender's next nonce" and a bump targets
// "the k-th undelivered nonce", both resolved against the replayed pool's
// own frontier at apply time. That keeps one seeded trace meaningful for
// the relaxed pool and the exact reference even after their states diverge
// (pop order, and with a capacity bound, eviction choices differ), which is
// exactly the comparison the fee-loss metric wants.

// OpKind discriminates trace operations.
type OpKind uint8

const (
	// OpAdmit admits a new transaction at the sender's admission frontier.
	OpAdmit OpKind = iota
	// OpBump replaces a resident transaction of the sender with a bumped
	// fee (replace-by-fee); applied as a no-op if the sender has no
	// resident transactions.
	OpBump
	// OpPop delivers one transaction.
	OpPop
)

// Op is one trace operation. Fee is the admission fee for OpAdmit and the
// extra fee on top of the minimum bump for OpBump; Arg selects the bump
// target among the sender's residents.
type Op struct {
	Kind   OpKind
	Sender uint64
	Fee    uint64
	Arg    uint64
}

// WorkloadConfig parameterizes GenOps. Zero values select the defaults
// noted per field.
type WorkloadConfig struct {
	// Ops is the trace length (default 10000).
	Ops int
	// Senders is the sender population (default 256), visited with Zipf
	// exponent Theta (default 0.9 — a few hot senders with long nonce
	// chains, a long tail of one-shot senders, the shape real fee markets
	// have).
	Senders int
	Theta   float64
	// PopFrac is the fraction of operations that deliver (default 0.4:
	// admissions outpace delivery, so the pool grows and eviction pressure
	// builds when a capacity is set).
	PopFrac float64
	// BumpFrac is the fraction of non-pop operations that are
	// replace-by-fee attempts (default 0.1).
	BumpFrac float64
	// FeeMean is the mean of the exponential fee distribution (default
	// 1000; fees are 1 + round(Exp·FeeMean), clamped to MaxFee — a heavy
	// enough tail that rank relaxation has revenue to lose).
	FeeMean float64
	// Seed seeds the trace generator (default 1).
	Seed uint64
}

// WithDefaults returns the configuration GenOps actually runs, zero fields
// resolved — callers recording a workload's shape (cmd/mempool-sim's JSON
// point) normalize through this so the record cannot disagree with the
// trace.
func (c WorkloadConfig) WithDefaults() WorkloadConfig {
	if c.Ops == 0 {
		c.Ops = 10000
	}
	if c.Senders == 0 {
		c.Senders = 256
	}
	if c.Theta == 0 {
		c.Theta = 0.9
	}
	if c.PopFrac == 0 {
		c.PopFrac = 0.4
	}
	if c.BumpFrac == 0 {
		c.BumpFrac = 0.1
	}
	if c.FeeMean == 0 {
		c.FeeMean = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// GenOps generates a seeded intent trace.
func GenOps(cfg WorkloadConfig) []Op {
	cfg = cfg.WithDefaults()
	r := rng.NewXoshiro256(cfg.Seed)
	zipf := rng.NewZipf(r, cfg.Senders, cfg.Theta)
	ops := make([]Op, 0, cfg.Ops)
	fee := func() uint64 {
		f := 1 + uint64(r.Exp()*cfg.FeeMean)
		if f > MaxFee {
			f = MaxFee
		}
		return f
	}
	for i := 0; i < cfg.Ops; i++ {
		switch {
		case r.Bernoulli(cfg.PopFrac):
			ops = append(ops, Op{Kind: OpPop})
		case r.Bernoulli(cfg.BumpFrac):
			ops = append(ops, Op{Kind: OpBump, Sender: uint64(zipf.Next()), Fee: fee() / 4, Arg: r.Next()})
		default:
			ops = append(ops, Op{Kind: OpAdmit, Sender: uint64(zipf.Next()), Fee: fee()})
		}
	}
	return ops
}

// PoolAPI is the replay surface both Pool (through a Handle) and SeqPool
// provide.
type PoolAPI interface {
	Admit(sender, nonce, fee uint64) error
	Pop() (Tx, bool)
	NextAdmit(sender uint64) uint64
	ResidentRange(sender uint64) (lo, hi uint64)
	Fee(sender, nonce uint64) (uint64, bool)
}

// Admit on a Handle targets the handle's pool; these forwards complete the
// PoolAPI surface so a Handle replays traces directly.
func (h *Handle) Pop() (Tx, bool)                      { return h.p.Pop() }
func (h *Handle) NextAdmit(s uint64) uint64            { return h.p.NextAdmit(s) }
func (h *Handle) ResidentRange(s uint64) (a, b uint64) { return h.p.ResidentRange(s) }
func (h *Handle) Fee(s, n uint64) (uint64, bool)       { return h.p.Fee(s, n) }

// BumpFee computes the minimal accepted replacement fee over old for the
// given bump factor, saturating at MaxFee: the smallest f with f > old and
// f·den ≥ old·num, i.e. max(old+1, ⌈old·num/den⌉).
func BumpFee(old, num, den uint64) uint64 {
	hi, lo := bits.Mul64(old, num)
	if hi >= den {
		return MaxFee // quotient exceeds 64 bits; saturate
	}
	f, rem := bits.Div64(hi, lo, den)
	if rem > 0 {
		f++
	}
	if f <= old {
		f = old + 1
	}
	if f > MaxFee {
		f = MaxFee
	}
	return f
}

// Applied reports how one intent op resolved against a particular pool:
// the concrete (Sender, Nonce, Fee) an admission or bump used, the
// delivered transaction for a pop, and whether the op changed pool state
// (admission accepted, bump accepted, pop delivered).
type Applied struct {
	Kind   OpKind
	Sender uint64
	Nonce  uint64
	Fee    uint64
	Tx     Tx // delivered transaction, for an applied OpPop
	OK     bool
}

// Apply resolves one intent op against p and applies it.
func Apply(p PoolAPI, op Op, bumpNum, bumpDen uint64) Applied {
	switch op.Kind {
	case OpPop:
		tx, ok := p.Pop()
		return Applied{Kind: OpPop, Tx: tx, OK: ok}
	case OpBump:
		lo, hi := p.ResidentRange(op.Sender)
		if lo == hi {
			return Applied{Kind: OpBump, Sender: op.Sender} // nothing resident
		}
		nonce := lo + op.Arg%(hi-lo)
		old, ok := p.Fee(op.Sender, nonce)
		if !ok {
			return Applied{Kind: OpBump, Sender: op.Sender}
		}
		fee := BumpFee(old, bumpNum, bumpDen)
		if fee <= MaxFee-op.Fee {
			fee += op.Fee
		}
		err := p.Admit(op.Sender, nonce, fee)
		return Applied{Kind: OpBump, Sender: op.Sender, Nonce: nonce, Fee: fee, OK: err == nil}
	default:
		nonce := p.NextAdmit(op.Sender)
		err := p.Admit(op.Sender, nonce, op.Fee)
		return Applied{Kind: OpAdmit, Sender: op.Sender, Nonce: nonce, Fee: op.Fee, OK: err == nil}
	}
}
