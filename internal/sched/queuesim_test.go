package sched

import (
	"testing"
)

func TestQueueSimDeterministic(t *testing.T) {
	mk := func() QueueSimResult {
		return RunQueue(QueueSimConfig{
			N: 4, M: 32, Ops: 20_000, Seed: 1, Adversary: NewUniform(2), Buffer: 512,
		})
	}
	a := mk()
	b := mk()
	if a.Ranks.Mean() != b.Ranks.Mean() || a.WrongQueue != b.WrongQueue {
		t.Fatal("same-seed queue simulations diverged")
	}
}

func TestQueueSimConservation(t *testing.T) {
	res := RunQueue(QueueSimConfig{
		N: 4, M: 16, Ops: 10_000, Seed: 3, Adversary: &RoundRobin{}, Buffer: 256,
	})
	if res.Dequeues != 10_000 {
		t.Fatalf("dequeues = %d", res.Dequeues)
	}
	if got := int(res.Enqueues) - int(res.Dequeues); got != res.FinalPresent {
		t.Fatalf("present %d != enqueues-dequeues %d", res.FinalPresent, got)
	}
	if res.Ranks.N() != 10_000 {
		t.Fatalf("rank samples = %d", res.Ranks.N())
	}
}

// TestQueueSimTheorem71UnderAdversaries: the concurrent MultiQueue process
// keeps E[rank] = O(m) and tail O(m log m) under every adversary when the
// buffer is healthy — the claim of Theorem 7.1, measured directly.
func TestQueueSimTheorem71UnderAdversaries(t *testing.T) {
	n, m := 4, 32
	for _, adv := range []Adversary{
		&RoundRobin{}, NewUniform(5), &BlockStampede{}, &SlowPoke{Delay: 300},
	} {
		res := RunQueue(QueueSimConfig{
			N: n, M: m, Ops: 30_000, Seed: 6, Adversary: adv, Buffer: 64 * m,
		})
		if mean := res.Ranks.Mean(); mean > 4*float64(m) {
			t.Fatalf("%s: mean rank %v not O(m)", adv.Name(), mean)
		}
		if p999 := res.Ranks.Quantile(0.999); p999 > 4*float64(m)*log2(m) {
			t.Fatalf("%s: p99.9 rank %v not O(m log m)", adv.Name(), p999)
		}
	}
}

// TestQueueSimSequentialMatchesSeqProcessScale: with one thread the
// simulator should behave like the sequential process of [3] (same rank
// scale).
func TestQueueSimSequentialMatchesSeqProcessScale(t *testing.T) {
	m := 32
	res := RunQueue(QueueSimConfig{
		N: 1, M: m, Ops: 20_000, Seed: 7, Adversary: &RoundRobin{}, Buffer: 64 * m,
	})
	if res.WrongQueue != 0 {
		t.Fatalf("single-threaded run had %d wrong-queue deletions", res.WrongQueue)
	}
	if mean := res.Ranks.Mean(); mean > 2*float64(m) {
		t.Fatalf("sequential mean rank %v above 2m", mean)
	}
}

// TestQueueSimStalenessCausesWrongQueues: under concurrency the recorded
// heads go stale, so some deletions hit the queue that no longer holds the
// smaller head — the phenomenon Section 7 inherits from Section 6.
func TestQueueSimStalenessCausesWrongQueues(t *testing.T) {
	res := RunQueue(QueueSimConfig{
		N: 8, M: 16, Ops: 30_000, Seed: 8, Adversary: &BlockStampede{}, Buffer: 1024,
	})
	if res.WrongQueue == 0 {
		t.Fatal("no wrong-queue deletions under stampede; staleness model broken")
	}
	// Quality still holds.
	if mean := res.Ranks.Mean(); mean > 5*16 {
		t.Fatalf("mean rank %v degraded too far", mean)
	}
}

func TestQueueSimHeadGapBounded(t *testing.T) {
	m := 32
	res := RunQueue(QueueSimConfig{
		N: 4, M: m, Ops: 30_000, Seed: 9, Adversary: NewUniform(10), Buffer: 64 * m,
	})
	if res.MaxHeadGap > 8*m*int(log2(m)) {
		t.Fatalf("head gap rank %d beyond envelope", res.MaxHeadGap)
	}
}

func TestQueueSimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	RunQueue(QueueSimConfig{N: 0, M: 1, Adversary: &RoundRobin{}})
}
