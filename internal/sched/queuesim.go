package sched

import (
	"sort"

	"repro/internal/rng"
	"repro/internal/stats"
)

// QueueSim simulates the concurrent MultiQueue process of Section 7 under an
// oblivious adversarial scheduler, the queue counterpart of Run:
//
//   - enqueue operations take one scheduled step: insert the next label
//     (labels are handed out in arrival order, modeling the consistent
//     wall-clock timestamps of Algorithm 2) into a uniformly random queue;
//   - dequeue operations take two scheduled steps: a read step records the
//     head labels of two uniformly random queues; the update step deletes
//     the *current* head of the queue whose recorded head was smaller.
//     Between the two steps the adversary may schedule arbitrary other
//     operations, so the comparison may act on stale information and the
//     deleted element may differ from the one read — exactly the gap between
//     the sequential process of [3] and the concurrent structure that
//     Theorem 7.1 closes.
//
// Every completed dequeue's rank among the labels present is recorded, so
// the simulator measures the cost distribution of Theorem 7.1 under
// schedules that live hardware runs cannot produce.
type QueueSimConfig struct {
	N         int   // threads
	M         int   // queues
	Ops       int64 // completed dequeues to run
	Buffer    int   // labels inserted per dequeue-capable thread ahead of time
	Seed      uint64
	Adversary Adversary
	// EnqueueEvery makes each thread perform one enqueue between dequeues,
	// keeping the buffer steady (default 1; 0 disables refills).
	EnqueueEvery int
}

// QueueSimResult aggregates the simulation.
type QueueSimResult struct {
	Ranks        *stats.Sample // rank per completed dequeue (1 = exact minimum)
	WrongQueue   int64         // updates whose chosen queue no longer held the smaller head
	Dequeues     int64
	Enqueues     int64
	MaxHeadGap   int // max over sampled steps of the head-label rank gap
	FinalPresent int
}

type qThread struct {
	phase   Phase
	i, j    int
	hi, hj  uint64 // recorded head labels (maxUint64 = empty)
	pending bool   // dequeue in flight (false = next action enqueues)
	quota   int    // enqueues owed before the next dequeue
}

const emptyHead = ^uint64(0)

// queueState is m sorted label slices plus a Fenwick-free rank counter
// (bins are sorted; rank = sum of binary searches, as in balance.SeqMultiQueue).
type queueState struct {
	bins  [][]uint64
	count int
}

func (qs *queueState) head(i int) uint64 {
	if len(qs.bins[i]) == 0 {
		return emptyHead
	}
	return qs.bins[i][0]
}

func (qs *queueState) rankOf(label uint64) int {
	smaller := 0
	for _, b := range qs.bins {
		smaller += sort.Search(len(b), func(k int) bool { return b[k] >= label })
	}
	return smaller + 1
}

func (qs *queueState) headGapRank() (int, bool) {
	min, max := emptyHead, uint64(0)
	seen := 0
	for i := range qs.bins {
		h := qs.head(i)
		if h == emptyHead {
			continue
		}
		if h < min {
			min = h
		}
		if h > max {
			max = h
		}
		seen++
	}
	if seen < 2 {
		return 0, false
	}
	return qs.rankOf(max) - qs.rankOf(min), true
}

// RunQueue executes the MultiQueue simulation. Deterministic per config.
func RunQueue(cfg QueueSimConfig) QueueSimResult {
	if cfg.N <= 0 || cfg.M <= 0 {
		panic("sched: QueueSimConfig needs N > 0 and M > 0")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 16 * cfg.M
	}
	if cfg.EnqueueEvery == 0 {
		cfg.EnqueueEvery = 1
	}
	qs := &queueState{bins: make([][]uint64, cfg.M)}
	threads := make([]qThread, cfg.N)
	r := rng.NewXoshiro256(cfg.Seed)
	res := QueueSimResult{Ranks: stats.NewSample(int(cfg.Ops))}
	nextLabel := uint64(1)

	enqueue := func() {
		i := r.Intn(cfg.M)
		qs.bins[i] = append(qs.bins[i], nextLabel)
		nextLabel++
		qs.count++
		res.Enqueues++
	}
	// Prefill (sequential, before the clock starts).
	for k := 0; k < cfg.Buffer; k++ {
		enqueue()
	}

	view := &queueView{threads: threads, n: cfg.N}
	for res.Dequeues < cfg.Ops {
		t := cfg.Adversary.Next(view)
		if t < 0 || t >= cfg.N {
			panic("sched: adversary returned invalid thread id")
		}
		view.steps++
		th := &threads[t]
		// Owed enqueues execute as single steps.
		if !th.pending && th.quota > 0 {
			enqueue()
			th.quota--
			continue
		}
		if th.phase == PhaseRead {
			th.i, th.j = r.Intn(cfg.M), r.Intn(cfg.M)
			th.hi, th.hj = qs.head(th.i), qs.head(th.j)
			th.phase = PhaseUpdate
			th.pending = true
			continue
		}
		// Update step: delete the current head of the queue whose recorded
		// head was smaller (ties and double-empty go to i, matching
		// Algorithm 2's "if pi > pj: i = j").
		pick := th.i
		if th.hj < th.hi {
			pick = th.j
		}
		other := th.i + th.j - pick
		if qs.head(pick) > qs.head(other) {
			res.WrongQueue++
		}
		if len(qs.bins[pick]) > 0 {
			label := qs.bins[pick][0]
			res.Ranks.AddInt(qs.rankOf(label))
			qs.bins[pick] = qs.bins[pick][1:]
			qs.count--
			res.Dequeues++
			if res.Dequeues%1024 == 0 {
				if g, ok := qs.headGapRank(); ok && g > res.MaxHeadGap {
					res.MaxHeadGap = g
				}
			}
		}
		// An empty pick is a wasted dequeue attempt; the thread simply
		// retries with fresh choices (as the real structure does).
		th.phase = PhaseRead
		th.pending = false
		th.quota += cfg.EnqueueEvery
	}
	res.FinalPresent = qs.count
	return res
}

// queueView adapts the queue simulation to the Adversary's View interface.
type queueView struct {
	threads []qThread
	n       int
	steps   int64
}

func (v *queueView) N() int            { return v.n }
func (v *queueView) Steps() int64      { return v.steps }
func (v *queueView) Phase(t int) Phase { return v.threads[t].phase }
