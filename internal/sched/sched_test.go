package sched

import (
	"math"
	"testing"
)

func log2(m int) float64 { return math.Log2(float64(m)) }

func TestDeterministic(t *testing.T) {
	cfg := Config{N: 4, M: 64, Ops: 50_000, Seed: 1, Adversary: NewUniform(2), Alpha: 0.25, C: 4}
	a := Run(cfg)
	cfg.Adversary = NewUniform(2) // fresh adversary stream, same seed
	b := Run(cfg)
	if a.WrongChoices != b.WrongChoices || a.Final.Gap() != b.Final.Gap() {
		t.Fatal("same-seed simulations diverged")
	}
}

func TestSingleThreadIsSequential(t *testing.T) {
	// With one thread the read and update are adjacent: zero contention,
	// no wrong choices, and the gap matches the classic two-choice bound.
	res := Run(Config{N: 1, M: 64, Ops: 100_000, Seed: 3, Adversary: &RoundRobin{}, C: 4})
	if res.WrongChoices != 0 {
		t.Fatalf("sequential run had %d wrong choices", res.WrongChoices)
	}
	if res.BadOps != 0 {
		t.Fatalf("sequential run had %d bad ops", res.BadOps)
	}
	if g := res.Final.Gap(); g > 2*log2(64)+4 {
		t.Fatalf("sequential gap %v too large", g)
	}
	if !res.LemmaHolds {
		t.Fatal("Lemma 6.6 violated in sequential run")
	}
}

func TestRoundRobinConcurrent(t *testing.T) {
	// Round-robin with n threads gives every op contention exactly n-1
	// (n-1 other updates scheduled between its read and update).
	n := 8
	res := Run(Config{N: n, M: 8 * n, Ops: 100_000, Seed: 4, Adversary: &RoundRobin{}, C: 4})
	if !res.LemmaHolds {
		t.Fatal("Lemma 6.6 violated under round-robin")
	}
	if res.BadOps != 0 {
		t.Fatalf("round-robin should have no bad ops (contention n-1 << Cn), got %d", res.BadOps)
	}
	if g := res.Final.Gap(); g > 3*log2(8*n)+6 {
		t.Fatalf("round-robin gap %v too large", g)
	}
}

func TestUniformAdversaryBalanced(t *testing.T) {
	n, m := 4, 64
	res := Run(Config{N: n, M: m, Ops: 200_000, Seed: 5, Adversary: NewUniform(6), Alpha: 0.25, C: 4, SampleEvery: 10_000})
	if !res.LemmaHolds {
		t.Fatal("Lemma 6.6 violated under uniform adversary")
	}
	if g := res.Final.Gap(); g > 3*log2(m)+6 {
		t.Fatalf("uniform-adversary gap %v too large", g)
	}
	// Γ stays O(m).
	for _, s := range res.Samples {
		if s.Gamma > 60*float64(m) {
			t.Fatalf("Γ = %v not O(m) at step %d", s.Gamma, s.Step)
		}
	}
}

func TestBlockStampedeBiasedButBalanced(t *testing.T) {
	// The stampede schedule manufactures wrong choices (Section 6.1's bias
	// discussion) yet with m >= 8n the process stays balanced.
	n, m := 8, 64
	res := Run(Config{N: n, M: m, Ops: 200_000, Seed: 7, Adversary: &BlockStampede{}, C: 4})
	if res.WrongChoices == 0 {
		t.Fatal("stampede schedule produced no wrong choices; bias model broken")
	}
	if g := res.Final.Gap(); g > 4*log2(m)+8 {
		t.Fatalf("stampede gap %v too large", g)
	}
	if !res.LemmaHolds {
		t.Fatal("Lemma 6.6 violated under stampede")
	}
}

func TestStampedeWrongChoicesExceedUniform(t *testing.T) {
	n, m := 8, 64
	uni := Run(Config{N: n, M: m, Ops: 100_000, Seed: 8, Adversary: NewUniform(9), C: 4})
	sta := Run(Config{N: n, M: m, Ops: 100_000, Seed: 8, Adversary: &BlockStampede{}, C: 4})
	if sta.WrongChoices <= uni.WrongChoices {
		t.Fatalf("stampede wrong choices %d not above uniform %d",
			sta.WrongChoices, uni.WrongChoices)
	}
}

func TestSlowPokeCreatesBadOpsButLemmaHolds(t *testing.T) {
	// SlowPoke manufactures operations with contention > Cn. Lemma 6.6 is a
	// pigeonhole fact, so it must hold under *every* adversary.
	n, m, c := 4, 64, 4
	res := Run(Config{N: n, M: m, Ops: 100_000, Seed: 10,
		Adversary: &SlowPoke{Delay: 10 * c * n * 2}, C: c})
	if res.BadOps == 0 {
		t.Fatal("slow-poke adversary produced no bad ops; starvation model broken")
	}
	if !res.LemmaHolds {
		t.Fatalf("Lemma 6.6 violated: %d bad ops in a window of %d (n=%d)",
			res.MaxWindowBad, c*n, n)
	}
}

func TestLemma66AcrossAdversaries(t *testing.T) {
	n, m, c := 4, 64, 3
	advs := []Adversary{
		&RoundRobin{}, NewUniform(11), &BlockStampede{}, &SlowPoke{Delay: 500},
	}
	for _, adv := range advs {
		res := Run(Config{N: n, M: m, Ops: 50_000, Seed: 12, Adversary: adv, C: c})
		if !res.LemmaHolds {
			t.Fatalf("Lemma 6.6 violated under %s: MaxWindowBad=%d", adv.Name(), res.MaxWindowBad)
		}
	}
}

func TestContentionHistogramPopulated(t *testing.T) {
	res := Run(Config{N: 4, M: 32, Ops: 10_000, Seed: 13, Adversary: NewUniform(14), C: 4})
	if res.Contention.N() != res.CompletedOps {
		t.Fatalf("histogram has %d entries, want %d", res.Contention.N(), res.CompletedOps)
	}
}

func TestCompletedOpsAndSteps(t *testing.T) {
	res := Run(Config{N: 2, M: 16, Ops: 1000, Seed: 15, Adversary: &RoundRobin{}, C: 4})
	if res.CompletedOps != 1000 {
		t.Fatalf("CompletedOps = %d", res.CompletedOps)
	}
	// Every op takes exactly 2 steps; the last scheduled steps may include
	// an unfinished read.
	if res.ScheduledSteps < 2000 || res.ScheduledSteps > 2001 {
		t.Fatalf("ScheduledSteps = %d", res.ScheduledSteps)
	}
	if res.Final.Total() != 1000 {
		t.Fatalf("total weight %v", res.Final.Total())
	}
}

func TestSamplesTaken(t *testing.T) {
	res := Run(Config{N: 2, M: 16, Ops: 1000, Seed: 16, Adversary: &RoundRobin{}, C: 4, SampleEvery: 100})
	if len(res.Samples) != 11 {
		t.Fatalf("samples = %d, want 11", len(res.Samples))
	}
}

func TestGapGrowsWhenMTooSmall(t *testing.T) {
	// Section 9's conjecture territory: m < n under a hostile schedule
	// degrades balance relative to m >> n. We check the *relative* effect.
	n := 16
	small := Run(Config{N: n, M: 4, Ops: 100_000, Seed: 17, Adversary: &BlockStampede{}, C: 4})
	big := Run(Config{N: n, M: 16 * n, Ops: 100_000, Seed: 17, Adversary: &BlockStampede{}, C: 4})
	// Normalize by log m since the bound scales with it.
	if small.Final.Gap()/log2(4) <= big.Final.Gap()/log2(16*n) {
		t.Fatalf("m<n gap/log(m) %v not above m>>n %v",
			small.Final.Gap()/log2(4), big.Final.Gap()/log2(16*n))
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{N: 0, M: 1, Adversary: &RoundRobin{}},
		{N: 1, M: 0, Adversary: &RoundRobin{}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid config did not panic")
				}
			}()
			Run(cfg)
		}()
	}
}

func TestAdversaryNames(t *testing.T) {
	names := map[string]Adversary{
		"round-robin":    &RoundRobin{},
		"uniform":        NewUniform(1),
		"block-stampede": &BlockStampede{},
		"slow-poke":      &SlowPoke{Delay: 1},
	}
	for want, a := range names {
		if a.Name() != want {
			t.Fatalf("Name() = %q, want %q", a.Name(), want)
		}
	}
}
