package sched

import "repro/internal/rng"

// RoundRobin schedules threads cyclically — the benign schedule, equivalent
// to the sequential process when N = 1.
type RoundRobin struct {
	next int
}

// Next implements Adversary.
func (a *RoundRobin) Next(v View) int {
	t := a.next
	a.next = (a.next + 1) % v.N()
	return t
}

// Name implements Adversary.
func (a *RoundRobin) Name() string { return "round-robin" }

// Uniform schedules a uniformly random thread each step, from a PRNG stream
// independent of the threads' coin flips (the definition of obliviousness).
type Uniform struct {
	R *rng.Xoshiro256
}

// NewUniform returns a Uniform adversary with its own seeded stream.
func NewUniform(seed uint64) *Uniform { return &Uniform{R: rng.NewXoshiro256(seed)} }

// Next implements Adversary.
func (a *Uniform) Next(v View) int { return a.R.Intn(v.N()) }

// Name implements Adversary.
func (a *Uniform) Name() string { return "uniform" }

// BlockStampede realizes the bias construction from Section 6.1's
// discussion: it schedules all N read steps back to back (so every thread
// reads the same state), then releases all N updates one at a time before
// starting the next block. Each block makes the later updaters act on
// information that is up to N−1 updates stale and biased toward the same low
// bins ("stampeding"). The draining flag keeps the block structure: without
// it, the first thread to finish an update would immediately be re-scheduled
// for a read, degenerating into a sequential schedule that starves the rest.
type BlockStampede struct {
	draining bool
}

// Next implements Adversary.
func (a *BlockStampede) Next(v View) int {
	n := v.N()
	if !a.draining {
		for t := 0; t < n; t++ {
			if v.Phase(t) == PhaseRead {
				return t
			}
		}
		a.draining = true
	}
	for t := 0; t < n; t++ {
		if v.Phase(t) == PhaseUpdate {
			return t
		}
	}
	// Block fully drained; start the next block of reads.
	a.draining = false
	return 0
}

// Name implements Adversary.
func (a *BlockStampede) Name() string { return "block-stampede" }

// SlowPoke starves thread 0: after thread 0's read step it schedules Delay
// steps of the other threads before letting thread 0 update, manufacturing
// one long-running, high-contention (potentially "bad") operation per cycle.
// With Delay > C·N those operations exceed Lemma 6.3's good threshold; the
// pigeonhole bound of Lemma 6.6 still caps how many can land in any window,
// which the tests verify.
type SlowPoke struct {
	Delay int

	victimPending bool
	wait          int
	next          int // round-robin cursor over threads 1..N-1
}

// Next implements Adversary.
func (a *SlowPoke) Next(v View) int {
	n := v.N()
	if n == 1 {
		return 0
	}
	if !a.victimPending {
		if v.Phase(0) == PhaseRead {
			a.victimPending = true
			a.wait = 0
			return 0 // schedule the victim's read
		}
		return 0 // victim mid-operation at start; let it finish
	}
	if a.wait < a.Delay {
		a.wait++
		t := 1 + a.next%(n-1)
		a.next++
		return t
	}
	a.victimPending = false
	return 0 // release the victim's update
}

// Name implements Adversary.
func (a *SlowPoke) Name() string { return "slow-poke" }
