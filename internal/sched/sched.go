// Package sched simulates the concurrent two-choice process of Section 6.1
// under an oblivious adversarial scheduler.
//
// Go's runtime scheduler cannot be steered adversarially, so the analysis
// quantities of Section 6 — per-operation contention ℓ_t, good vs bad steps,
// wrong-bin updates, the potential Γ(t) — are not observable in live runs.
// This package reifies the paper's execution model instead: n simulated
// threads each repeatedly execute an increment operation consisting of two
// scheduled shared-memory steps,
//
//	read step:   draw bins i, j uniformly; record their current weights
//	             (the paper's footnote 3 collapses both reads to one point)
//	update step: increment the bin whose *recorded* weight was smaller
//
// and an Adversary chooses which thread takes its next step. Time is the
// number of scheduled steps, matching the paper's model. Obliviousness is
// enforced structurally: adversaries receive a View exposing only schedule
// facts (step count, thread phases), never bin weights or random choices.
package sched

import (
	"repro/internal/balance"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Phase is a simulated thread's position inside its current operation.
type Phase int

const (
	// PhaseRead means the thread's next step performs its reads.
	PhaseRead Phase = iota
	// PhaseUpdate means the thread's next step performs its increment.
	PhaseUpdate
)

// View is the schedule-only information an oblivious adversary may consult.
type View interface {
	// N returns the number of threads.
	N() int
	// Steps returns the number of steps scheduled so far.
	Steps() int64
	// Phase returns thread t's current phase.
	Phase(t int) Phase
}

// Adversary picks the next thread to schedule. Implementations must base
// decisions only on the View (obliviousness).
type Adversary interface {
	Next(v View) int
	Name() string
}

// Config describes a simulation.
type Config struct {
	N           int    // threads
	M           int    // bins
	Ops         int64  // total increment operations to complete
	Seed        uint64 // PRNG seed for the threads' random choices
	Adversary   Adversary
	Alpha       float64 // potential parameter α (0 disables Γ sampling)
	C           int     // the constant C for the Lemma 6.6 window check
	SampleEvery int64   // sample balance stats every this many completed ops
}

// Result aggregates the simulation's measurements.
type Result struct {
	Samples        []balance.SamplePoint // indexed by completed operations
	Final          *balance.State
	WrongChoices   int64           // updates that hit the more loaded bin at update time
	Contention     stats.Histogram // ℓ_t per completed operation
	MaxWindowBad   int             // max over all Cn-op windows of #(ops with ℓ > Cn)
	LemmaHolds     bool            // MaxWindowBad < N (Lemma 6.6)
	GoodOps        int64           // ops with ℓ <= Cn
	BadOps         int64           // ops with ℓ > Cn
	CompletedOps   int64
	ScheduledSteps int64
}

type opState struct {
	phase        Phase
	i, j         int
	vi, vj       float64
	startUpdates int64 // completed updates when the read step ran
}

type sim struct {
	cfg     Config
	st      *balance.State
	threads []opState
	r       *rng.Xoshiro256
	updates int64
	steps   int64
}

// N implements View.
func (s *sim) N() int { return s.cfg.N }

// Steps implements View.
func (s *sim) Steps() int64 { return s.steps }

// Phase implements View.
func (s *sim) Phase(t int) Phase { return s.threads[t].phase }

// Run executes the simulation. Deterministic for a fixed config.
func Run(cfg Config) Result {
	if cfg.N <= 0 || cfg.M <= 0 {
		panic("sched: Config needs N > 0 and M > 0")
	}
	if cfg.C <= 0 {
		cfg.C = 4
	}
	s := &sim{
		cfg:     cfg,
		st:      balance.NewState(cfg.M),
		threads: make([]opState, cfg.N),
		r:       rng.NewXoshiro256(cfg.Seed),
	}
	res := Result{LemmaHolds: true}

	// Sliding Lemma 6.6 window over completed ops: window size C·N, counting
	// ops whose contention exceeded C·N.
	window := cfg.C * cfg.N
	thresh := int64(cfg.C) * int64(cfg.N)
	ring := make([]bool, window) // bad-flag per op in the current window
	ringIdx, inWindowBad := 0, 0

	sample := func() {
		p := balance.SamplePoint{Step: s.updates, Gap: s.st.Gap()}
		min, max := s.st.MinMax()
		mu := s.st.Mean()
		p.MaxAboveMean = max - mu
		p.MeanAboveMin = mu - min
		if cfg.Alpha > 0 {
			_, _, p.Gamma = s.st.Potential(cfg.Alpha)
		}
		res.Samples = append(res.Samples, p)
	}

	for s.updates < cfg.Ops {
		t := cfg.Adversary.Next(s)
		if t < 0 || t >= cfg.N {
			panic("sched: adversary returned invalid thread id")
		}
		s.steps++
		op := &s.threads[t]
		if op.phase == PhaseRead {
			op.i, op.j = s.r.Intn(cfg.M), s.r.Intn(cfg.M)
			op.vi, op.vj = s.st.Weight(op.i), s.st.Weight(op.j)
			op.startUpdates = s.updates
			op.phase = PhaseUpdate
			continue
		}
		// Update step: act on the recorded (possibly stale) values.
		dest := op.i
		if op.vj < op.vi {
			dest = op.j
		}
		// Wrong choice: the chosen bin is strictly heavier than the
		// alternative at the moment of the update.
		other := op.i + op.j - dest
		if s.st.Weight(dest) > s.st.Weight(other) {
			res.WrongChoices++
		}
		s.st.Add(dest, 1)
		s.updates++
		op.phase = PhaseRead

		// Contention bookkeeping.
		l := s.updates - 1 - op.startUpdates
		res.Contention.Add(uint64(l))
		bad := l > thresh
		if bad {
			res.BadOps++
		} else {
			res.GoodOps++
		}
		if s.updates > int64(window) {
			if ring[ringIdx] {
				inWindowBad--
			}
		}
		ring[ringIdx] = bad
		if bad {
			inWindowBad++
		}
		ringIdx = (ringIdx + 1) % window
		if s.updates >= int64(window) && inWindowBad > res.MaxWindowBad {
			res.MaxWindowBad = inWindowBad
		}

		if cfg.SampleEvery > 0 && s.updates%cfg.SampleEvery == 0 {
			sample()
		}
	}
	sample()
	res.Final = s.st
	res.CompletedOps = s.updates
	res.ScheduledSteps = s.steps
	res.LemmaHolds = res.MaxWindowBad < cfg.N
	return res
}
