package sched

import "testing"

// stepParity is a custom adversary driving scheduling off the View's step
// counter — it exists to exercise the full View interface the way an
// external adversary implementation would.
type stepParity struct{}

func (stepParity) Next(v View) int {
	t := int(v.Steps()) % v.N()
	// Respect phases: if the chosen thread is mid-op, step it anyway (legal);
	// the phase accessor is consulted to exercise it.
	_ = v.Phase(t)
	return t
}

func (stepParity) Name() string { return "step-parity" }

func TestCustomAdversaryViaViewCounterSim(t *testing.T) {
	res := Run(Config{N: 4, M: 32, Ops: 20_000, Seed: 61, Adversary: stepParity{}, C: 4})
	if res.CompletedOps != 20_000 {
		t.Fatalf("CompletedOps = %d", res.CompletedOps)
	}
	if !res.LemmaHolds {
		t.Fatal("Lemma 6.6 violated under custom adversary")
	}
	if g := res.Final.Gap(); g > 3*log2(32)+6 {
		t.Fatalf("gap %v too large under custom adversary", g)
	}
}

func TestCustomAdversaryViaViewQueueSim(t *testing.T) {
	m := 16
	res := RunQueue(QueueSimConfig{
		N: 4, M: m, Ops: 10_000, Seed: 62, Adversary: stepParity{}, Buffer: 64 * m,
	})
	if res.Dequeues != 10_000 {
		t.Fatalf("dequeues = %d", res.Dequeues)
	}
	if mean := res.Ranks.Mean(); mean > 4*float64(m) {
		t.Fatalf("mean rank %v not O(m) under custom adversary", mean)
	}
}

func TestQueueSimNearEmptyBins(t *testing.T) {
	// A tiny buffer forces head() onto empty bins and wasted dequeue
	// attempts; conservation must still hold.
	res := RunQueue(QueueSimConfig{
		N: 2, M: 8, Ops: 2_000, Seed: 63, Adversary: &RoundRobin{}, Buffer: 1,
	})
	if res.Dequeues != 2_000 {
		t.Fatalf("dequeues = %d", res.Dequeues)
	}
	if got := int(res.Enqueues) - int(res.Dequeues); got != res.FinalPresent {
		t.Fatalf("conservation broken: present %d, enq-deq %d", res.FinalPresent, got)
	}
}
