package core

import "repro/internal/rng"

// affinityRotateEvery is R, the number of earned (window-expiry) candidate
// refreshes a handle's home stripe serves before rotating one stripe width
// around the shard ring; reroll-driven redraws do not advance the clock.
// Rotation bounds the worst-case imbalance of stripe-local choices: every
// shard spends the same fraction of refreshes inside each handle's stripe, so
// over (m/w)·R refreshes a lone handle's d−1 stripe candidates still cover
// the whole ring (the uniform escape candidate reaches everywhere from the
// first refresh). Smaller R tightens the single-handle drift bound at the
// price of colder stripes; 16 keeps the measured rank drift at the committed
// affinity settings within 1.5× of the uniform sampler (EXPERIMENTS.md §5)
// while a stripe still serves 16·max(s,k) operations between moves.
const affinityRotateEvery = 16

// Sampler is the sticky d-choice sampling policy shared by the MultiCounter
// and MultiQueue handles — the one place the repository implements the
// paper's choice process (Section 4's "d-sampling" step generalizing the
// two-choice rule of Algorithms 1 and 2).
//
// A Sampler owns a candidate set of d distinct shard indices and a
// stickiness window: the candidate set is re-used for up to window logical
// operations before d fresh indices are drawn, amortising the PRNG draws the
// way the sticky fast path requires (DESIGN.md §2). The paper's exact
// processes are the degenerate settings — window = 1 re-rolls every
// operation, d = 2 is the two-choice rule, and d = 1 is the divergent
// single-choice baseline of ablation A1.
//
// A Sampler draws either uniformly over all m shards (NewSampler, the
// paper's assumption) or shard-affine (NewAffineSampler): d−1 candidates
// from a per-handle home stripe of w contiguous indices plus one uniform
// "escape" candidate, the choice-locality policy of DESIGN.md §7.
//
// A Sampler is handle-local state: it must only be used by the single
// goroutine that owns the enclosing handle, with that handle's private
// generator.
type Sampler struct {
	m       int
	d       int
	window  int
	left    int
	reroll  bool
	rerolls uint64
	cand    []int

	// Reseed inputs: the requested d before the m-clamp, the affinity
	// fraction and the handle id, retained so a resize epoch can re-derive
	// the whole draw policy at the new m in place (Reseed) — the clamp, the
	// stripe width and the golden-ratio stripe center are all functions of
	// (d0, affinity, handle, m).
	d0       int
	affinity float64
	handle   uint64

	// Stripe (affinity) state. width == 0 selects the uniform draw; width
	// >= d is the home-stripe size w, base its current start on the [0, m)
	// ring, and refreshes counts refreshes since the last rotation.
	width     int
	base      int
	refreshes int
}

// NewSampler returns a sampler drawing d-element candidate sets uniformly
// from {0, …, m−1}, sticky across window logical operations. Candidate sets
// contain d distinct indices: collisions between the d draws are resampled
// at refresh time, so d-choice comparisons never pay redundant shard loads
// (d > m clamps to m, where distinctness forces every index). window < 1
// normalizes to 1 (fresh candidates every operation — the paper's
// unamortised process); d < 1 or m < 1 panic.
func NewSampler(m, d, window int) Sampler {
	if m < 1 {
		panic("core: NewSampler needs m >= 1")
	}
	if d < 1 {
		panic("core: NewSampler needs d >= 1")
	}
	d0 := d
	if d > m {
		d = m
	}
	if window < 1 {
		window = 1
	}
	// cand's capacity is the unclamped d0, so a later Reseed at a larger m
	// can widen the candidate set back toward d0 without allocating.
	return Sampler{m: m, d: d, d0: d0, window: window, cand: make([]int, d, d0)}
}

// NewAffineSampler returns a sampler biased toward a per-handle home stripe:
// each refresh draws d−1 candidates from a window of w = max(d, ⌈affinity·m⌉)
// contiguous shard indices owned by this handle and one uniform escape
// candidate from all of {0, …, m−1}, so no shard is ever unreachable and
// insert-side load still equalizes globally. The stripe rotates one width
// around the ring every affinityRotateEvery window-expiry refreshes,
// bounding worst-case imbalance (DESIGN.md §7).
//
// The stripe start is derived deterministically from handle: stripe centers
// are placed by golden-ratio multiplicative hashing, the n-free
// generalization of the id·m/n layout — for any number of handles with
// sequential ids the centers are low-discrepancy on the ring, so stripes
// tile the shards near-evenly without the structure knowing its handle
// count up front.
//
// affinity must lie in [0, 1]; 0 returns the uniform sampler of NewSampler
// (bit-for-bit: the draw path is shared), and d = 1 degenerates to uniform
// too, since the single candidate is the escape.
func NewAffineSampler(m, d, window int, affinity float64, handle uint64) Sampler {
	if !(affinity >= 0 && affinity <= 1) { // rejects NaN too
		panic("core: NewAffineSampler needs affinity in [0, 1]")
	}
	s := NewSampler(m, d, window)
	s.affinity = affinity
	s.handle = handle
	s.placeStripe()
	return s
}

// placeStripe derives the affinity stripe (width, base) from the sampler's
// current (m, d, affinity, handle), leaving the sampler uniform when
// affinity is 0 or the clamped d degenerates to 1. Shared by construction
// and Reseed so an epoch flip re-places the stripe by exactly the rule the
// constructor used.
func (s *Sampler) placeStripe() {
	s.width, s.base, s.refreshes = 0, 0, 0
	if s.affinity == 0 || s.d == 1 {
		return
	}
	m := s.m
	w := int(s.affinity * float64(m))
	if float64(w) < s.affinity*float64(m) {
		w++ // ceil
	}
	if w < s.d {
		w = s.d
	}
	if w > m {
		w = m
	}
	s.width = w
	// center = frac(handle·φ)·m: the top 32 bits of handle·φ form a 0.32
	// fixed-point fraction of the ring, which the multiply-then-shift
	// scales by m.
	center := int(((s.handle * 0x9e3779b97f4a7c15) >> 32) * uint64(m) >> 32)
	s.base = center - w/2
	if s.base < 0 {
		s.base += m
	}
}

// Reseed re-derives the sampler for a new shard count m — the stale-handle
// half of a resize epoch (DESIGN.md §11). The clamp d = min(d0, m), the
// stripe width and the golden-ratio stripe center are recomputed from the
// retained construction inputs; the candidate set and window budget are
// discarded (the old indices may exceed the new m or target sealed shards),
// so the next Candidates/Best call draws fresh indices at the new topology.
// The candidate slice is resized in place within its original capacity —
// Reseed never allocates, keeping the steady-state 0 allocs/op contract.
func (s *Sampler) Reseed(m int) {
	if m < 1 {
		panic("core: Reseed needs m >= 1")
	}
	s.m = m
	d := s.d0
	if d > m {
		d = m
	}
	s.d = d
	s.cand = s.cand[:d]
	s.placeStripe()
	s.left = 0
	s.reroll = false
}

// Choices returns d, the candidate set size (clamped to m).
func (s *Sampler) Choices() int { return s.d }

// Window returns the stickiness window (>= 1).
func (s *Sampler) Window() int { return s.window }

// Affine reports whether the sampler draws from a home stripe.
func (s *Sampler) Affine() bool { return s.width > 0 }

// Stripe returns the current home stripe as (base, width) on the [0, m)
// ring; width 0 means the sampler is uniform. Exposed for the occupancy
// tests and the quality tooling — the stripe rotates as refreshes accrue.
func (s *Sampler) Stripe() (base, width int) { return s.base, s.width }

// contains reports whether idx already occurs in cand.
func contains(cand []int, idx int) bool {
	for _, c := range cand {
		if c == idx {
			return true
		}
	}
	return false
}

// refresh draws a fresh candidate set. Uniform mode draws d indices in the
// pre-affinity sampler's PRNG call order, resampling any index that
// collides with an earlier one — d ≤ m guarantees termination, and the
// trace matches the PR 4 sampler bit-for-bit except on the ~d²/2m of
// refreshes that used to collide, where the resample consumes extra draws
// (the deliberate dedupe fix; TestSamplerAffinityZeroIdenticalToPR4 pins
// the collision-free equality). Affine mode fills cand[0 : d−1] from the
// home stripe and cand[d−1] with the uniform escape, deduped the same way
// (w ≥ d leaves room for d−1 distinct stripe indices plus the escape), and
// — when the refresh was earned by window expiry rather than a Reroll —
// advances the rotation schedule.
func (s *Sampler) refresh(r *rng.Xoshiro256, rotate bool) {
	if s.width == 0 {
		for i := range s.cand {
			idx := r.Intn(s.m)
			for contains(s.cand[:i], idx) {
				idx = r.Intn(s.m)
			}
			s.cand[i] = idx
		}
		return
	}
	if rotate {
		if s.refreshes++; s.refreshes >= affinityRotateEvery {
			s.refreshes = 0
			if s.base += s.width; s.base >= s.m {
				s.base -= s.m
			}
		}
	}
	for i := 0; i < s.d-1; i++ {
		idx := s.base + r.Intn(s.width)
		if idx >= s.m {
			idx -= s.m
		}
		for contains(s.cand[:i], idx) {
			if idx = s.base + r.Intn(s.width); idx >= s.m {
				idx -= s.m
			}
		}
		s.cand[i] = idx
	}
	idx := r.Intn(s.m)
	for contains(s.cand[:s.d-1], idx) {
		idx = r.Intn(s.m)
	}
	s.cand[s.d-1] = idx
}

// Candidates returns the current candidate index set, drawing d fresh
// indices from r when the remaining window cannot serve need more logical
// operations (or a Reroll was requested). A candidate set therefore serves
// at most max(window, need) operations: need is the whole batch in batched
// mode, so a batch is never split across candidate sets. The returned slice
// aliases the sampler's internal state — callers must not retain it across
// calls.
func (s *Sampler) Candidates(r *rng.Xoshiro256, need int) []int {
	if s.window <= 1 || s.left < need {
		s.refresh(r, true)
		s.left = s.window
		s.reroll = false
		return s.cand
	}
	if s.reroll {
		// A reroll-driven refresh does not advance the stripe rotation
		// clock: empty/contended outcomes can reroll every few microseconds
		// (TryDequeue rerolls per failed attempt), and letting them spin the
		// stripe around the ring would churn exactly the locality the
		// stripe exists to keep. Rotation paces by earned window expiries.
		s.refresh(r, false)
		s.reroll = false
	}
	return s.cand
}

// Best returns the candidate index minimizing load — the d-choice argmin
// rule both structures share (smallest counter value for the MultiCounter,
// smallest cached top for the MultiQueue). Like the paper's algorithms the
// loads are read one shard at a time with no synchronization, so the winner
// may be stale by the time the caller operates on it; that staleness is the
// relaxation the analysis bounds. d = 1 skips the load reads entirely.
// Best does not consume window budget; callers Charge what they actually
// used, so an aborted operation costs nothing.
func (s *Sampler) Best(r *rng.Xoshiro256, need int, load func(int) uint64) int {
	cand := s.Candidates(r, need)
	best := cand[0]
	if s.d == 1 {
		return best
	}
	bestV := load(best)
	for _, i := range cand[1:] {
		if v := load(i); v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// BestKeyed is Best returning the winning load value alongside the index,
// saving callers a re-read when they dispatch on the observed value — the
// MultiQueue skips stable-empty winners (cpq.TopKeyEmpty) without a second
// atomic load of the winner's top word. Unlike Best, d = 1 performs its
// single load too, since the caller consumes the value.
func (s *Sampler) BestKeyed(r *rng.Xoshiro256, need int, load func(int) uint64) (best int, bestV uint64) {
	cand := s.Candidates(r, need)
	best = cand[0]
	bestV = load(best)
	for _, i := range cand[1:] {
		if v := load(i); v < bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// Charge consumes n logical operations from the stickiness window. Charging
// per element (not per lock acquisition or flush) keeps the window — and so
// the measured relaxation cost — comparable across batch sizes.
func (s *Sampler) Charge(n int) { s.left -= n }

// Expire discards the current candidate set AND the remaining window budget:
// the next Candidates or Best call draws fresh indices and starts a full new
// window. Use it when the whole window is invalidated (the structure was
// reconfigured, a drain completed); for an empty or contended candidate that
// merely needs a different draw, Reroll keeps the budget accounting honest.
func (s *Sampler) Expire() { s.left = 0 }

// Reroll requests a fresh draw at the next Candidates or Best call while
// keeping the remaining window budget: the replacement candidates serve only
// the operations the expired ones had left, so an unlucky draw (refused
// try-lock, empty queue) does not grant itself a whole new stickiness window
// — rerolling charges nothing but also earns nothing. The queue handles use
// it on every empty/contended outcome; the semantics are pinned by
// TestSamplerRerollKeepsRemainingBudget.
func (s *Sampler) Reroll() {
	s.reroll = true
	s.rerolls++
}

// Rerolls returns the number of Reroll requests since creation — the
// empty/contended-outcome pressure signal the daemon's /metrics surfaces.
// Handle-local plain state: read it from the owning goroutine (or with the
// enclosing lease held), like every other Sampler method.
func (s *Sampler) Rerolls() uint64 { return s.rerolls }
