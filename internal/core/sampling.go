package core

import "repro/internal/rng"

// Sampler is the sticky d-choice sampling policy shared by the MultiCounter
// and MultiQueue handles — the one place the repository implements the
// paper's choice process (Section 4's "d-sampling" step generalizing the
// two-choice rule of Algorithms 1 and 2).
//
// A Sampler owns a candidate set of d uniformly random shard indices and a
// stickiness window: the candidate set is re-used for up to window logical
// operations before d fresh indices are drawn, amortising the PRNG draws the
// way the sticky fast path requires (DESIGN.md §2). The paper's exact
// processes are the degenerate settings — window = 1 re-rolls every
// operation, d = 2 is the two-choice rule, and d = 1 is the divergent
// single-choice baseline of ablation A1.
//
// A Sampler is handle-local state: it must only be used by the single
// goroutine that owns the enclosing handle, with that handle's private
// generator.
type Sampler struct {
	m      int
	d      int
	window int
	left   int
	cand   []int
}

// NewSampler returns a sampler drawing d-element candidate sets from
// {0, …, m−1}, sticky across window logical operations. window < 1
// normalizes to 1 (fresh candidates every operation — the paper's
// unamortised process); d < 1 or m < 1 panic.
func NewSampler(m, d, window int) Sampler {
	if m < 1 {
		panic("core: NewSampler needs m >= 1")
	}
	if d < 1 {
		panic("core: NewSampler needs d >= 1")
	}
	if window < 1 {
		window = 1
	}
	return Sampler{m: m, d: d, window: window, cand: make([]int, d)}
}

// Choices returns d, the candidate set size.
func (s *Sampler) Choices() int { return s.d }

// Window returns the stickiness window (>= 1).
func (s *Sampler) Window() int { return s.window }

// Candidates returns the current candidate index set, drawing d fresh
// uniform indices from r when the remaining window cannot serve need more
// logical operations. A candidate set therefore serves at most
// max(window, need) operations: need is the whole batch in batched mode, so
// a batch is never split across candidate sets. The returned slice aliases
// the sampler's internal state — callers must not retain it across calls.
func (s *Sampler) Candidates(r *rng.Xoshiro256, need int) []int {
	if s.window <= 1 || s.left < need {
		for i := range s.cand {
			s.cand[i] = r.Intn(s.m)
		}
		s.left = s.window
	}
	return s.cand
}

// Best returns the candidate index minimizing load — the d-choice argmin
// rule both structures share (smallest counter value for the MultiCounter,
// smallest cached top for the MultiQueue). Like the paper's algorithms the
// loads are read one shard at a time with no synchronization, so the winner
// may be stale by the time the caller operates on it; that staleness is the
// relaxation the analysis bounds. d = 1 skips the load reads entirely.
// Best does not consume window budget; callers Charge what they actually
// used, so an aborted operation costs nothing.
func (s *Sampler) Best(r *rng.Xoshiro256, need int, load func(int) uint64) int {
	cand := s.Candidates(r, need)
	best := cand[0]
	if s.d == 1 {
		return best
	}
	bestV := load(best)
	for _, i := range cand[1:] {
		if v := load(i); v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// BestKeyed is Best returning the winning load value alongside the index,
// saving callers a re-read when they dispatch on the observed value — the
// MultiQueue skips stable-empty winners (cpq.TopKeyEmpty) without a second
// atomic load of the winner's top word. Unlike Best, d = 1 performs its
// single load too, since the caller consumes the value.
func (s *Sampler) BestKeyed(r *rng.Xoshiro256, need int, load func(int) uint64) (best int, bestV uint64) {
	cand := s.Candidates(r, need)
	best = cand[0]
	bestV = load(best)
	for _, i := range cand[1:] {
		if v := load(i); v < bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// Charge consumes n logical operations from the stickiness window. Charging
// per element (not per lock acquisition or flush) keeps the window — and so
// the measured relaxation cost — comparable across batch sizes.
func (s *Sampler) Charge(n int) { s.left -= n }

// Expire discards the current candidate set so the next Candidates or Best
// call draws fresh indices. Handles call it when a candidate turned out
// empty or contended, abandoning a stale choice early.
func (s *Sampler) Expire() { s.left = 0 }
