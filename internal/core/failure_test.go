package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cpq"
)

// Failure-injection tests: the paper's model lets the adversary crash up to
// n−1 processes. The MultiCounter is built from lock-free primitives, so
// crashed threads cannot block others; the MultiQueue's per-queue locks are
// a real liveness hazard that the TryDequeue path is designed to route
// around. These tests pin both behaviours down.

// TestMultiCounterSurvivesCrashedThreads: workers that stop mid-stream (the
// crash model: simply never scheduled again) cannot affect other workers'
// progress or the counter's exactness for completed increments.
func TestMultiCounterSurvivesCrashedThreads(t *testing.T) {
	mc := NewMultiCounter(64)
	const healthy, crashed, per = 4, 4, 5000
	var wg sync.WaitGroup
	crashPoint := make(chan struct{})
	var crashedDone sync.WaitGroup

	// Crashed workers do a few increments then "crash" (return).
	crashedDone.Add(crashed)
	for w := 0; w < crashed; w++ {
		go func(w int) {
			defer crashedDone.Done()
			h := mc.NewHandle(uint64(w) + 100)
			for i := 0; i < 10; i++ {
				h.Increment()
			}
			<-crashPoint // parked forever from the algorithm's viewpoint
		}(w)
	}

	wg.Add(healthy)
	for w := 0; w < healthy; w++ {
		go func(w int) {
			defer wg.Done()
			h := mc.NewHandle(uint64(w) + 1)
			for i := 0; i < per; i++ {
				h.Increment()
			}
		}(w)
	}
	wg.Wait()
	// Healthy workers completed healthy*per increments; crashed workers
	// completed exactly 10 each before crashing.
	if got, want := mc.Exact(), uint64(healthy*per+crashed*10); got != want {
		t.Fatalf("Exact = %d, want %d", got, want)
	}
	close(crashPoint)
	crashedDone.Wait()
}

// TestMultiQueueTryDequeueRoutesAroundDeadLockHolder: if a thread crashes
// while holding one queue's lock, TryDequeue keeps making progress by
// re-drawing, as long as other queues hold elements.
func TestMultiQueueTryDequeueRoutesAroundDeadLockHolder(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 8, Seed: 1})
	h := q.NewHandle(2)
	for v := uint64(0); v < 800; v++ {
		h.Enqueue(v)
	}
	// Simulate a crashed lock holder on one internal queue by locking it
	// directly and never unlocking.
	victim := q.qs[3]
	locked := victim.LockForTest()
	if !locked {
		t.Fatal("could not acquire victim lock")
	}

	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := h.TryDequeue(32); ok {
			got++
			if got >= 300 { // plenty of progress despite the dead queue
				return
			}
		}
	}
	t.Fatalf("only %d dequeues succeeded with one dead queue", got)
}

// TestCPQTryOpsSkipHeldLock: the cpq building block's try-operations fail
// fast on a held lock instead of blocking.
func TestCPQTryOpsSkipHeldLock(t *testing.T) {
	pq := cpq.New(cpq.BackingBinary, 8, 1)
	pq.Add(1, 10)
	if !pq.LockForTest() {
		t.Fatal("setup lock failed")
	}
	if pq.TryAdd(2, 20) {
		t.Fatal("TryAdd succeeded on a held lock")
	}
	if _, _, acquired := pq.TryDeleteMin(); acquired {
		t.Fatal("TryDeleteMin acquired a held lock")
	}
	// ReadMin stays readable (lock-free cached top) — the property the
	// two-choice comparison depends on even when a lock holder is stalled.
	if pq.ReadMin() != 1 {
		t.Fatalf("ReadMin = %d under held lock", pq.ReadMin())
	}
	pq.UnlockForTest()
	if !pq.TryAdd(2, 20) {
		t.Fatal("TryAdd failed after unlock")
	}
}

func TestTimestampsMonotoneHandle(t *testing.T) {
	ts := NewTimestamps(32)
	// Advance via another handle concurrently to create sampling noise.
	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		h := ts.NewHandle(50)
		for {
			select {
			case <-stop:
				return
			default:
				h.Advance()
			}
		}
	}()
	m := ts.NewHandle(51).Monotone()
	prev := uint64(0)
	for i := 0; i < 20000; i++ {
		v := m.Sample()
		if v < prev {
			close(stop)
			t.Fatalf("monotone sample went backwards: %d < %d", v, prev)
		}
		prev = v
	}
	if v := m.Tick(); v < prev {
		close(stop)
		t.Fatalf("Tick went backwards")
	}
	close(stop)
	wg.Wait()
}
