package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dlin"
	"repro/internal/rng"
	"repro/internal/trace"
)

func TestMultiCounterSequentialExact(t *testing.T) {
	mc := NewMultiCounter(16)
	h := mc.NewHandle(1)
	const n = 10000
	for i := 0; i < n; i++ {
		h.Increment()
	}
	if mc.Exact() != n {
		t.Fatalf("Exact = %d, want %d", mc.Exact(), n)
	}
}

func TestMultiCounterConcurrentExact(t *testing.T) {
	mc := NewMultiCounter(64)
	const workers, per = 8, 20000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := mc.NewHandle(uint64(w) + 1)
			for i := 0; i < per; i++ {
				h.Increment()
			}
		}(w)
	}
	wg.Wait()
	if mc.Exact() != workers*per {
		t.Fatalf("Exact = %d, want %d (no lost updates allowed)", mc.Exact(), workers*per)
	}
}

func TestMultiCounterReadScaling(t *testing.T) {
	// Read returns m * (one counter); after k increments spread two-choice,
	// every counter is within the gap of k/m, so reads land within
	// m * gap of k.
	m := 64
	mc := NewMultiCounter(m)
	h := mc.NewHandle(2)
	const n = 100000
	for i := 0; i < n; i++ {
		h.Increment()
	}
	gap := float64(mc.Gap())
	for i := 0; i < 1000; i++ {
		v := float64(h.Read())
		if math.Abs(v-n) > float64(m)*gap+float64(m) {
			t.Fatalf("Read = %v deviates more than m*gap=%v from %d", v, float64(m)*gap, n)
		}
	}
}

func TestMultiCounterGapLogarithmic(t *testing.T) {
	// Theorem 6.1's engine: single-threaded (sequential process), the gap
	// stays O(log m).
	for _, m := range []int{16, 64, 256} {
		mc := NewMultiCounter(m)
		h := mc.NewHandle(3)
		for i := 0; i < 100000; i++ {
			h.Increment()
		}
		if g := float64(mc.Gap()); g > 2*math.Log2(float64(m))+4 {
			t.Fatalf("gap %v not O(log m) at m=%d", g, m)
		}
	}
}

func TestMultiCounterConcurrentGapBounded(t *testing.T) {
	// Live concurrency with m >= 8n: the deviation guarantee should hold
	// with a generous envelope (Theorem 6.1 under real scheduling).
	const workers = 4
	m := 16 * workers
	mc := NewMultiCounter(m)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := mc.NewHandle(uint64(w) + 10)
			for i := 0; i < 50000; i++ {
				h.Increment()
			}
		}(w)
	}
	wg.Wait()
	if g := float64(mc.Gap()); g > 4*math.Log2(float64(m))+8 {
		t.Fatalf("concurrent gap %v too large (m=%d)", g, m)
	}
}

func TestSingleChoiceWorseThanTwoChoice(t *testing.T) {
	// Ablation A1 at the data-structure level.
	m := 64
	d1 := NewMultiCounter(m, WithChoices(1))
	d2 := NewMultiCounter(m, WithChoices(2))
	h1, h2 := d1.NewHandle(4), d2.NewHandle(4)
	for i := 0; i < 200000; i++ {
		h1.Increment()
		h2.Increment()
	}
	if d1.Gap() < 4*d2.Gap() {
		t.Fatalf("d=1 gap %d not clearly above d=2 gap %d", d1.Gap(), d2.Gap())
	}
}

func TestFourChoiceTighterOrEqual(t *testing.T) {
	m := 64
	d2 := NewMultiCounter(m, WithChoices(2))
	d4 := NewMultiCounter(m, WithChoices(4))
	h2, h4 := d2.NewHandle(5), d4.NewHandle(5)
	for i := 0; i < 200000; i++ {
		h2.Increment()
		h4.Increment()
	}
	if d4.Gap() > d2.Gap()+2 {
		t.Fatalf("d=4 gap %d worse than d=2 gap %d", d4.Gap(), d2.Gap())
	}
}

func TestSnapshot(t *testing.T) {
	mc := NewMultiCounter(4)
	h := mc.NewHandle(6)
	for i := 0; i < 100; i++ {
		h.Increment()
	}
	snap := make([]uint64, 4)
	mc.Snapshot(snap)
	var sum uint64
	for _, v := range snap {
		sum += v
	}
	if sum != 100 {
		t.Fatalf("snapshot sum %d", sum)
	}
}

func TestMultiCounterPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewMultiCounter(0) did not panic")
			}
		}()
		NewMultiCounter(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("WithChoices(0) did not panic")
			}
		}()
		NewMultiCounter(4, WithChoices(0))
	}()
}

func TestHandleAccessors(t *testing.T) {
	mc := NewMultiCounter(8)
	h := mc.NewHandle(7)
	if h.Counter() != mc {
		t.Fatal("Counter() returned wrong counter")
	}
	if mc.M() != 8 {
		t.Fatalf("M = %d", mc.M())
	}
}

// TestDistributionalLinearizabilityCounter runs a live concurrent execution
// with tracing and replays it through the counter quantitative relaxation:
// the witness must exist (order check passes) and read costs must be within
// the O(m log m) envelope times a generous constant.
func TestDistributionalLinearizabilityCounter(t *testing.T) {
	const workers, per, m = 4, 10000, 64
	mc := NewMultiCounter(m)
	rec := trace.NewRecorder(workers, per+per/10+1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := mc.NewHandle(uint64(w) + 20)
			log := rec.Log(w)
			for i := 0; i < per; i++ {
				h.IncrementTraced(rec, log)
				if i%10 == 0 {
					h.ReadTraced(rec, log)
				}
			}
		}(w)
	}
	wg.Wait()
	events := rec.Merge()
	w, err := dlin.Replay(&dlin.CounterSpec{}, events)
	if err != nil {
		t.Fatalf("witness mapping failed: %v", err)
	}
	if w.Costs.N() == 0 {
		t.Fatal("no cost samples recorded")
	}
	envelope := dlin.Envelope(m)
	if max := w.Costs.Max(); max > 8*envelope {
		t.Fatalf("max read cost %v exceeds 8x envelope %v", max, envelope)
	}
	// The mean cost should be well below the envelope (Theorem 6.1 is a tail
	// bound; the expectation is O(m log m) with small constants).
	if mean := w.Costs.Mean(); mean > 2*envelope {
		t.Fatalf("mean read cost %v exceeds 2x envelope %v", mean, envelope)
	}
}

func TestTimestampsSampleAndTick(t *testing.T) {
	ts := NewTimestamps(32)
	h := ts.NewHandle(8)
	v0 := h.Sample()
	for i := 0; i < 3200; i++ {
		h.Tick()
	}
	v1 := h.Sample()
	if v1 <= v0 {
		t.Fatalf("timestamp did not advance: %d -> %d", v0, v1)
	}
	if ts.Counter().Exact() != 3200 {
		t.Fatalf("Exact = %d", ts.Counter().Exact())
	}
}

func TestTimestampsConcurrentSkewBounded(t *testing.T) {
	// Concurrent tickers; afterwards samples from any handle should be
	// within m*gap + m of the true count.
	const workers, per, m = 4, 20000, 64
	ts := NewTimestamps(m)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := ts.NewHandle(uint64(w) + 30)
			for i := 0; i < per; i++ {
				h.Tick()
			}
		}(w)
	}
	wg.Wait()
	true64 := float64(workers * per)
	gap := float64(ts.Counter().Gap())
	h := ts.NewHandle(99)
	for i := 0; i < 100; i++ {
		v := float64(h.Sample())
		if math.Abs(v-true64) > float64(m)*gap+float64(m) {
			t.Fatalf("sample %v deviates beyond m*gap from %v", v, true64)
		}
	}
}

func BenchmarkMultiCounterIncrement(b *testing.B) {
	mc := NewMultiCounter(256)
	h := mc.NewHandle(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Increment()
	}
}

func BenchmarkExactVsMultiCounterParallel(b *testing.B) {
	mc := NewMultiCounter(256)
	b.RunParallel(func(pb *testing.PB) {
		h := mc.NewHandle(rng.NewSplitMix64(uint64(b.N)).Next())
		for pb.Next() {
			h.Increment()
		}
	})
}
