package core

import "repro/internal/rng"

// Timestamps is the relaxed timestamping oracle of Section 8: a MultiCounter
// used as a scalable approximate global clock. Sample returns the current
// approximate time; Tick advances the clock by one relaxed increment and
// returns a fresh sample.
//
// The oracle's skew — the spread between values concurrent readers can
// observe — is bounded by the counter's O(m·log m) deviation (Theorem 6.1).
// Consumers that need timestamps to be safely orderable (the TL2 protocol)
// add a slack Δ exceeding the expected skew and write "in the future"; see
// internal/stm.
type Timestamps struct {
	mc *MultiCounter
}

// NewTimestamps returns an oracle over m shards. It is the fixed-m
// convenience form of NewTimestampsTopology.
func NewTimestamps(m int) *Timestamps {
	return NewTimestampsTopology(Topology{InitialM: m})
}

// NewTimestampsTopology returns an oracle whose backing counter sizes
// itself through the elastic Topology surface (DESIGN.md §11); resize the
// clock with Counter().Resize.
func NewTimestampsTopology(t Topology) *Timestamps {
	return &Timestamps{mc: NewMultiCounterConfig(MultiCounterConfig{Topology: t})}
}

// Counter exposes the backing MultiCounter (for skew instrumentation).
func (t *Timestamps) Counter() *MultiCounter { return t.mc }

// TSHandle is a per-goroutine handle onto the oracle.
type TSHandle struct {
	mc *MultiCounter
	r  *rng.Xoshiro256
}

// NewHandle returns a handle seeded with seed.
func (t *Timestamps) NewHandle(seed uint64) *TSHandle {
	return &TSHandle{mc: t.mc, r: rng.NewXoshiro256(seed)}
}

// Sample returns the current approximate time.
func (h *TSHandle) Sample() uint64 { return h.mc.Read(h.r) }

// Tick advances the clock by one relaxed increment and returns a fresh
// sample taken after the increment.
func (h *TSHandle) Tick() uint64 {
	h.mc.Increment(h.r)
	return h.mc.Read(h.r)
}

// Advance applies one relaxed increment without sampling. Consumers use it
// to push the clock forward when they are blocked waiting for time to pass
// (the TL2 helping rule; see internal/stm).
func (h *TSHandle) Advance() { h.mc.Increment(h.r) }

// Monotone wraps the handle so samples never decrease: the relaxed counter's
// raw reads bounce within the m·gap band, which is fine for TL2 (a low rv
// only causes extra aborts) but violates the expectations of consumers that
// treat timestamps as a per-thread monotone sequence. Monotone returns the
// running maximum of the raw samples, which stays within the same deviation
// envelope (the maximum of values each within O(m·log m) of the true count
// is itself within O(m·log m)).
type Monotone struct {
	h    *TSHandle
	last uint64
}

// Monotone returns a monotone view of this handle. Like the handle itself it
// is owned by one goroutine.
func (h *TSHandle) Monotone() *Monotone { return &Monotone{h: h} }

// Sample returns a non-decreasing approximate timestamp.
func (m *Monotone) Sample() uint64 {
	if v := m.h.Sample(); v > m.last {
		m.last = v
	}
	return m.last
}

// Tick advances the clock and returns a non-decreasing sample.
func (m *Monotone) Tick() uint64 {
	m.h.Advance()
	return m.Sample()
}
