// Package core implements the paper's primary contributions: the
// MultiCounter relaxed approximate counter (Algorithm 1), the MultiQueue
// relaxed priority/FIFO queue (Algorithm 2), and the relaxed timestamp
// oracle that plugs the MultiCounter into timestamp-based concurrency
// control (Section 8's TL2 experiment).
//
// Both structures follow the same recipe, which Section 6 proves sound under
// an oblivious adversary when the number of shards m is a sufficiently large
// constant multiple of the thread count n:
//
//   - state is spread over m independent linearizable shards (atomic
//     counters; lock-protected priority queues);
//   - updates that must be "small" (increments; dequeues) sample d shards
//     (the paper's default d = 2) and operate on the apparently better one —
//     the d-choice rule, implemented once as the shared Sampler;
//   - the structure is distributionally linearizable (Section 5) to a
//     sequential relaxed process whose per-operation cost is O(m·log m)
//     w.h.p.: counter reads deviate by at most O(m·log m) from the true
//     increment count (Theorem 6.1), dequeues return an element of rank
//     O(m) in expectation and O(m·log m) w.h.p. (Theorem 7.1).
//
// Random choices come from caller-owned generators: every worker obtains a
// Handle (one per goroutine) carrying its own rng stream, so the hot paths
// share no mutable state beyond the shards themselves.
//
// Beyond the paper, both structures support an amortised sticky/batched
// fast path configured through MultiCounterConfig and MultiQueueConfig
// (Choices, Stickiness, Batch): handles re-use their sampled candidates for
// a window of operations and move whole batches per shared synchronization
// step. The quality cost of any setting is measured — not assumed — by
// repro/internal/quality and the cmd/quality and cmd/benchall drivers; see
// DESIGN.md §2 for the handle lifecycle and the measured trade-offs.
//
// The exported facade for downstream users is the root package repro/dlz,
// which re-exports these types with a stable API.
package core
