package core

import (
	"math"
	"sync"
	"testing"
)

// Tests for the paper-extension features: weighted increments (Add) and
// d-choice dequeues (DequeueD).

func TestAddPreservesExactSum(t *testing.T) {
	mc := NewMultiCounter(16)
	h := mc.NewHandle(1)
	var want uint64
	for i := uint64(1); i <= 1000; i++ {
		delta := i % 7
		h.Add(delta)
		want += delta
	}
	if mc.Exact() != want {
		t.Fatalf("Exact = %d, want %d", mc.Exact(), want)
	}
}

func TestAddConcurrentExactSum(t *testing.T) {
	mc := NewMultiCounter(64)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := mc.NewHandle(uint64(w) + 1)
			for i := 0; i < per; i++ {
				h.Add(3)
			}
		}(w)
	}
	wg.Wait()
	if mc.Exact() != 3*workers*per {
		t.Fatalf("Exact = %d, want %d", mc.Exact(), 3*workers*per)
	}
}

func TestAddBoundedWeightsKeepGapSmall(t *testing.T) {
	// Weighted two-choice with bounded weights keeps the gap O(w_max log m).
	m := 64
	mc := NewMultiCounter(m)
	h := mc.NewHandle(2)
	for i := 0; i < 100000; i++ {
		h.Add(uint64(i%4) + 1) // weights 1..4
	}
	if g := float64(mc.Gap()); g > 4*(2*math.Log2(float64(m))+4) {
		t.Fatalf("weighted gap %v too large", g)
	}
}

func TestAddSingleChoiceDiverges(t *testing.T) {
	m := 64
	d1 := NewMultiCounter(m, WithChoices(1))
	d2 := NewMultiCounter(m, WithChoices(2))
	h1, h2 := d1.NewHandle(3), d2.NewHandle(3)
	for i := 0; i < 100000; i++ {
		h1.Add(2)
		h2.Add(2)
	}
	if d1.Gap() < 3*d2.Gap() {
		t.Fatalf("weighted d=1 gap %d not clearly above d=2 gap %d", d1.Gap(), d2.Gap())
	}
}

func TestDequeueDDrains(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		q := newMQ(8)
		h := q.NewHandle(4)
		for v := uint64(0); v < 500; v++ {
			h.Enqueue(v)
		}
		seen := map[uint64]bool{}
		for {
			it, ok := h.DequeueD(d)
			if !ok {
				break
			}
			if seen[it.Value] {
				t.Fatalf("d=%d: value %d dequeued twice", d, it.Value)
			}
			seen[it.Value] = true
		}
		if len(seen) != 500 {
			t.Fatalf("d=%d: drained %d", d, len(seen))
		}
	}
}

func TestDequeueDPanics(t *testing.T) {
	q := newMQ(4)
	h := q.NewHandle(5)
	defer func() {
		if recover() == nil {
			t.Fatal("DequeueD(0) did not panic")
		}
	}()
	h.DequeueD(0)
}

// TestDequeueDRankImprovesWithD: more choices, lower dequeue rank. Measured
// on the steady-state single-threaded process with a persistent buffer.
func TestDequeueDRankImprovesWithD(t *testing.T) {
	meanRank := func(d int) float64 {
		m := 32
		q := newMQ(m)
		h := q.NewHandle(6)
		const buffer, ops = 2048, 10000
		for i := 0; i < buffer; i++ {
			h.Enqueue(0)
		}
		// Estimate rank via the priority distance from the global minimum
		// proxy: track the sum of (dequeued priority - min enqueued not yet
		// dequeued) is complex; instead compare mean dequeued priority
		// *age*: lower d leaves old elements behind, raising the average
		// age of survivors. Simpler robust proxy: run pairs and measure the
		// mean priority of dequeued items; better policies dequeue older
		// (smaller) priorities sooner, so the running mean is lower.
		var sum float64
		for i := 0; i < ops; i++ {
			h.Enqueue(0)
			it, ok := h.DequeueD(d)
			if !ok {
				t.Fatal("dequeue failed")
			}
			sum += float64(it.Priority)
		}
		return sum / ops
	}
	r1, r2, r4 := meanRank(1), meanRank(2), meanRank(4)
	if !(r2 < r1) {
		t.Fatalf("two-choice mean dequeued priority %v not below single-choice %v", r2, r1)
	}
	if !(r4 <= r2+1) {
		t.Fatalf("four-choice %v worse than two-choice %v", r4, r2)
	}
}
