//go:build dlzfail

package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fail"
)

// TestRerollStormStillDequeues arms core/deq/reroll so a burst of d-choice
// draws is discarded as if every sampled queue were contended, and checks the
// dequeuer rides the sampler's reroll path to a successful removal anyway —
// for both the blocking and the try dequeue.
func TestRerollStormStillDequeues(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	q := NewMultiQueue(MultiQueueConfig{Queues: 4, Seed: 3})
	h := q.NewHandle(1)
	defer h.Close()
	for i := 0; i < 32; i++ {
		h.Enqueue(uint64(i))
	}

	fail.Arm(fail.SiteCoreReroll, fail.Policy{Kind: fail.KindError, Count: 5})
	before := h.Rerolls()
	if _, ok := h.Dequeue(); !ok {
		t.Fatal("Dequeue failed under a bounded reroll storm")
	}
	if h.Rerolls() <= before {
		t.Error("injected storm did not register as sampler rerolls")
	}

	fail.Arm(fail.SiteCoreReroll, fail.Policy{Kind: fail.KindError, Count: 5})
	if _, ok := h.TryDequeue(64); !ok {
		t.Fatal("TryDequeue failed under a bounded reroll storm")
	}
	if fail.Fires(fail.SiteCoreReroll) == 0 {
		t.Error("TryDequeue never hit the reroll failpoint")
	}
}

// TestFlushPanicKeepsBufferIntact pins the core/flush contract the dlzd
// repair ladder depends on: a panic interrupting the batch flush fires
// before any element publishes, leaving the insert buffer intact, so a
// recovering owner retries Flush and no element is lost or duplicated.
func TestFlushPanicKeepsBufferIntact(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	q := NewMultiQueue(MultiQueueConfig{Queues: 2, Batch: 16, Stickiness: 16, Seed: 7})
	h := q.NewHandle(1)
	const n = 5 // below Batch, so the elements sit in the insert buffer
	for i := 0; i < n; i++ {
		h.Enqueue(uint64(100 + i))
	}

	fail.Arm(fail.SiteCoreFlush, fail.Policy{Kind: fail.KindPanic, Count: 1})
	func() {
		defer func() {
			rec := recover()
			if rec == nil {
				t.Fatal("armed flush did not panic")
			}
			if site, ok := fail.IsInjectedPanic(rec); !ok || site != fail.SiteCoreFlush {
				t.Fatalf("unexpected panic value: %v", rec)
			}
		}()
		h.Flush()
	}()

	// The interrupted flush published nothing; the retry publishes everything.
	if got := q.Len(); got != 0 {
		t.Fatalf("interrupted flush published %d elements", got)
	}
	h.Flush()
	if got := q.Len(); got != n {
		t.Fatalf("retried flush published %d elements, want %d", got, n)
	}
	seen := map[uint64]bool{}
	for {
		it, ok := h.Dequeue()
		if !ok {
			break
		}
		if seen[it.Value] {
			t.Fatalf("element %d delivered twice", it.Value)
		}
		seen[it.Value] = true
	}
	if len(seen) != n {
		t.Fatalf("drained %d distinct elements, want %d", len(seen), n)
	}
	h.Close()
}

// TestResizeDrainDelayConservesUnderRacingPops arms core/resize/drain with a
// delay, widening the window in which a shrink's drained elements exist only
// in the resize frame, while racing dequeuers hammer the survivors. The
// dequeuers may observe the structure emptier than it is — exactly the
// relaxation the epoch protocol claims is the worst case — but once the
// donation lands, every element is accounted for: popped + resident equals
// admitted, exactly.
func TestResizeDrainDelayConservesUnderRacingPops(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	q := NewMultiQueue(MultiQueueConfig{Topology: Topology{InitialM: 16, MinM: 2, MaxM: 16}, Seed: 41})
	h := q.NewHandle(1)
	const n = 4096
	for i := 0; i < n; i++ {
		h.Enqueue(uint64(i))
	}

	fail.Arm(fail.SiteCoreResizeDrain, fail.Policy{Kind: fail.KindDelay, Delay: 10 * time.Millisecond})
	var popped atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			hd := q.NewHandle(uint64(id) + 10)
			defer hd.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, ok := hd.TryDequeue(4); ok {
					popped.Add(1)
				}
			}
		}(w)
	}
	q.Resize(2)  // shrink through the delayed drain window
	q.Resize(16) // grow back
	q.Resize(2)  // and shrink again: two delayed windows total
	close(stop)
	wg.Wait()

	if fail.Fires(fail.SiteCoreResizeDrain) == 0 {
		t.Fatal("shrink never hit the core/resize/drain failpoint")
	}
	rest := int64(0)
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
		rest++
	}
	if popped.Load()+rest != n {
		t.Fatalf("popped %d + resident %d != admitted %d — the delayed drain window lost elements",
			popped.Load(), rest, n)
	}
}

// TestResizeDrainStallPublishesBeforeDonation pins the shrink's ordering
// contract under the harshest schedule: a stall at core/resize/drain freezes
// the resize after the epoch word published and the victims drained, but
// before any donation. During the freeze the new topology is already live —
// M reports the shrunken count, fresh handles route into the survivors, and
// drained elements are temporarily invisible (the relaxed worst case). After
// release, conservation is exact.
func TestResizeDrainStallPublishesBeforeDonation(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	q := NewMultiQueue(MultiQueueConfig{Topology: Topology{InitialM: 8, MinM: 2, MaxM: 8}, Seed: 43})
	h := q.NewHandle(1)
	const n = 512
	for i := 0; i < n; i++ {
		h.Enqueue(uint64(i))
	}
	before := q.Len()
	if before != n {
		t.Fatalf("Len = %d before shrink, want %d", before, n)
	}

	fail.Arm(fail.SiteCoreResizeDrain, fail.Policy{Kind: fail.KindStall, Count: 1})
	done := make(chan int)
	go func() { done <- q.Resize(2) }()
	for fail.Fires(fail.SiteCoreResizeDrain) == 0 {
		time.Sleep(time.Millisecond)
	}

	// Mid-stall: the epoch word flipped first, so the shrunken topology is
	// already the one new operations see.
	if got := q.M(); got != 2 {
		t.Fatalf("M = %d mid-stall, want 2 (publish must precede drain)", got)
	}
	if got := q.Len(); got >= n {
		t.Fatalf("Len = %d mid-stall, want < %d (victims drained into the frozen frame)", got, n)
	}
	h2 := q.NewHandle(2)
	for i := 0; i < 64; i++ {
		h2.Enqueue(uint64(n + i)) // must route into the live range, not a victim
	}
	h2.Flush()

	fail.Release(fail.SiteCoreResizeDrain)
	if got := <-done; got != 2 {
		t.Fatalf("Resize returned %d, want 2", got)
	}
	if got := q.Len(); got != n+64 {
		t.Fatalf("Len = %d after release, want %d — donation lost or duplicated elements", got, n+64)
	}
	got := 0
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
		got++
	}
	if got != n+64 {
		t.Fatalf("drained %d, want %d", got, n+64)
	}
}
