//go:build dlzfail

package core

import (
	"testing"

	"repro/internal/fail"
)

// TestRerollStormStillDequeues arms core/deq/reroll so a burst of d-choice
// draws is discarded as if every sampled queue were contended, and checks the
// dequeuer rides the sampler's reroll path to a successful removal anyway —
// for both the blocking and the try dequeue.
func TestRerollStormStillDequeues(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	q := NewMultiQueue(MultiQueueConfig{Queues: 4, Seed: 3})
	h := q.NewHandle(1)
	defer h.Close()
	for i := 0; i < 32; i++ {
		h.Enqueue(uint64(i))
	}

	fail.Arm(fail.SiteCoreReroll, fail.Policy{Kind: fail.KindError, Count: 5})
	before := h.Rerolls()
	if _, ok := h.Dequeue(); !ok {
		t.Fatal("Dequeue failed under a bounded reroll storm")
	}
	if h.Rerolls() <= before {
		t.Error("injected storm did not register as sampler rerolls")
	}

	fail.Arm(fail.SiteCoreReroll, fail.Policy{Kind: fail.KindError, Count: 5})
	if _, ok := h.TryDequeue(64); !ok {
		t.Fatal("TryDequeue failed under a bounded reroll storm")
	}
	if fail.Fires(fail.SiteCoreReroll) == 0 {
		t.Error("TryDequeue never hit the reroll failpoint")
	}
}

// TestFlushPanicKeepsBufferIntact pins the core/flush contract the dlzd
// repair ladder depends on: a panic interrupting the batch flush fires
// before any element publishes, leaving the insert buffer intact, so a
// recovering owner retries Flush and no element is lost or duplicated.
func TestFlushPanicKeepsBufferIntact(t *testing.T) {
	fail.Reset()
	defer fail.Reset()
	q := NewMultiQueue(MultiQueueConfig{Queues: 2, Batch: 16, Stickiness: 16, Seed: 7})
	h := q.NewHandle(1)
	const n = 5 // below Batch, so the elements sit in the insert buffer
	for i := 0; i < n; i++ {
		h.Enqueue(uint64(100 + i))
	}

	fail.Arm(fail.SiteCoreFlush, fail.Policy{Kind: fail.KindPanic, Count: 1})
	func() {
		defer func() {
			rec := recover()
			if rec == nil {
				t.Fatal("armed flush did not panic")
			}
			if site, ok := fail.IsInjectedPanic(rec); !ok || site != fail.SiteCoreFlush {
				t.Fatalf("unexpected panic value: %v", rec)
			}
		}()
		h.Flush()
	}()

	// The interrupted flush published nothing; the retry publishes everything.
	if got := q.Len(); got != 0 {
		t.Fatalf("interrupted flush published %d elements", got)
	}
	h.Flush()
	if got := q.Len(); got != n {
		t.Fatalf("retried flush published %d elements, want %d", got, n)
	}
	seen := map[uint64]bool{}
	for {
		it, ok := h.Dequeue()
		if !ok {
			break
		}
		if seen[it.Value] {
			t.Fatalf("element %d delivered twice", it.Value)
		}
		seen[it.Value] = true
	}
	if len(seen) != n {
		t.Fatalf("drained %d distinct elements, want %d", len(seen), n)
	}
	h.Close()
}
