package core

import (
	"testing"

	"repro/internal/rng"
)

// Tests for the located-removal surface (ElemRef / EnqueuePriorityRef /
// Remove / RemoveBatch / Replace / DropPrefetched) that the mempool
// scenario's replace-by-fee and eviction policies are built on.

func newRemoveMQ(t *testing.T, batch int) (*MultiQueue, *MQHandle) {
	t.Helper()
	q := NewMultiQueue(MultiQueueConfig{
		Queues: 8, Seed: 11, Stickiness: 4, Batch: batch, Capacity: 256,
	})
	return q, q.NewHandle(7)
}

// TestRemoveExcludedFromLenSizesAndDequeue is the core-level half of the
// Len/Sizes satellite: a removed element must vanish from Len, from the
// per-queue Sizes snapshot, and from every subsequent dequeue, the moment
// Remove returns — before any pop physically reclaims the tombstone.
func TestRemoveExcludedFromLenSizesAndDequeue(t *testing.T) {
	q, h := newRemoveMQ(t, 1)
	refs := make([]ElemRef, 0, 64)
	for v := uint64(0); v < 64; v++ {
		refs = append(refs, h.EnqueuePriorityRef(1000+v, v))
	}
	if q.Len() != 64 {
		t.Fatalf("Len=%d, want 64", q.Len())
	}
	// Remove every fourth element.
	removed := map[uint64]bool{}
	for i := 0; i < len(refs); i += 4 {
		if !h.Remove(refs[i]) {
			t.Fatalf("Remove(%+v) returned false for a resident element", refs[i])
		}
		removed[refs[i].Value] = true
	}
	if q.Len() != 48 {
		t.Fatalf("Len=%d after 16 removals, want 48", q.Len())
	}
	sizes := make([]int, q.M())
	q.Sizes(sizes)
	sum := 0
	for _, n := range sizes {
		sum += n
	}
	if sum != 48 {
		t.Fatalf("Sizes sum=%d after removals, want 48 (tombstones must be excluded)", sum)
	}
	st := q.Stats()
	if st.Invalidations != 16 {
		t.Fatalf("Stats.Invalidations=%d, want 16", st.Invalidations)
	}
	got := 0
	for {
		it, ok := h.Dequeue()
		if !ok {
			break
		}
		if removed[it.Value] {
			t.Fatalf("dequeued removed element %d", it.Value)
		}
		got++
	}
	if got != 48 {
		t.Fatalf("drained %d elements, want 48", got)
	}
	if st := q.Stats(); st.Reclaimed != st.Invalidations {
		t.Fatalf("after full drain reclaimed=%d, invalidations=%d — tombstones leaked", st.Reclaimed, st.Invalidations)
	}
}

// TestRemoveBatchGroupsByQueue checks the batched removal path: refs spread
// over many queues and presented unsorted must all arm and disappear from
// dequeues, in per-op and batched handle modes alike.
func TestRemoveBatchGroupsByQueue(t *testing.T) {
	for _, batch := range []int{1, 8} {
		q, h := newRemoveMQ(t, batch)
		var refs []ElemRef
		for v := uint64(0); v < 100; v++ {
			refs = append(refs, h.EnqueuePriorityRef(v, v))
		}
		// Shuffle to exercise the in-place grouping sort.
		r := rng.NewXoshiro256(5)
		victims := append([]ElemRef(nil), refs[:40]...)
		for i := len(victims) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			victims[i], victims[j] = victims[j], victims[i]
		}
		if armed := h.RemoveBatch(victims); armed != 40 {
			t.Fatalf("batch=%d: RemoveBatch armed %d, want 40", batch, armed)
		}
		if q.Len() != 60 {
			t.Fatalf("batch=%d: Len=%d after RemoveBatch, want 60", batch, q.Len())
		}
		dead := map[uint64]bool{}
		for _, ref := range victims {
			dead[ref.Value] = true
		}
		got := 0
		for {
			it, ok := h.Dequeue()
			if !ok {
				break
			}
			if dead[it.Value] {
				t.Fatalf("batch=%d: dequeued batch-removed element %d", batch, it.Value)
			}
			got++
		}
		if got != 60 {
			t.Fatalf("batch=%d: drained %d, want 60", batch, got)
		}
	}
}

// TestRemoveBatchZeroAlloc pins the batched removal path at zero
// allocations: grouping happens by in-place sort and staging through the
// handle's fixed rmBuf, like the insert/prefetch buffers.
func TestRemoveBatchZeroAlloc(t *testing.T) {
	q, h := newRemoveMQ(t, 8)
	_ = q
	var next uint64
	refs := make([]ElemRef, 8)
	allocs := testing.AllocsPerRun(500, func() {
		for i := range refs {
			next++
			refs[i] = h.EnqueuePriorityRef(next, next)
		}
		if h.RemoveBatch(refs) != len(refs) {
			t.Fatal("RemoveBatch missed a resident element")
		}
	})
	if allocs != 0 {
		t.Fatalf("EnqueuePriorityRef+RemoveBatch allocated %.2f objects/op, want 0", allocs)
	}
}

// TestReplaceSwapsElement checks replace-by-fee's primitive: the old element
// never surfaces, the replacement does, and a second Replace of the same ref
// refuses without inserting while the tombstone is uncollected (the old
// element is interior — a live smaller element keeps it from being compacted
// out, so the dup check is deterministic).
func TestReplaceSwapsElement(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 1, Seed: 11, Capacity: 256})
	h := q.NewHandle(7)
	h.EnqueuePriorityRef(40, 0) // keeps (50,1)'s tombstone interior
	old := h.EnqueuePriorityRef(50, 1)
	h.EnqueuePriorityRef(60, 2)
	nref, ok := h.Replace(old, 45, 3)
	if !ok {
		t.Fatal("Replace of a resident element refused")
	}
	if nref.Priority != 45 || nref.Value != 3 {
		t.Fatalf("Replace returned ref %+v, want (45,3)", nref)
	}
	if q.Len() != 3 {
		t.Fatalf("Len=%d after Replace, want 3", q.Len())
	}
	if _, ok := h.Replace(old, 30, 4); ok {
		t.Fatal("Replace of an uncollected tombstoned ref succeeded; must refuse")
	}
	if q.Len() != 3 {
		t.Fatalf("Len=%d after refused Replace, want 3 (nothing inserted)", q.Len())
	}
	wantOrder := []uint64{0, 3, 2} // (40,0), (45,3), (60,2); (50,1) never
	for i, want := range wantOrder {
		it, ok := h.Dequeue()
		if !ok || it.Value != want {
			t.Fatalf("dequeue %d = (%+v, %v), want value %d", i, it, ok, want)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("structure not empty after draining the three live elements")
	}
}

// TestRemoveBatchRefusesUncollectedDuplicates pins the armed count when one
// batch names the same resident element twice: cpq.InvalidateBatch arms all
// tombstones before any compaction, so the duplicate is reliably refused.
func TestRemoveBatchRefusesUncollectedDuplicates(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 1, Seed: 3, Batch: 8, Capacity: 64})
	h := q.NewHandle(1)
	a := h.EnqueuePriorityRef(10, 1)
	b := h.EnqueuePriorityRef(20, 2)
	if armed := h.RemoveBatch([]ElemRef{a, b, a}); armed != 2 {
		t.Fatalf("RemoveBatch armed %d, want 2 (duplicate refused)", armed)
	}
	if q.Len() != 0 {
		t.Fatalf("Len=%d, want 0", q.Len())
	}
}

// TestDropPrefetched checks the prefetch escape hatch: an element staged in
// a handle's prefetch buffer is no longer resident in the shared structure,
// so a removal protocol drops it from the buffer instead; the remaining run
// keeps its order and conservation stays exact.
func TestDropPrefetched(t *testing.T) {
	// One internal queue, so the first batched dequeue deterministically
	// prefetches the whole run 1..8.
	q := NewMultiQueue(MultiQueueConfig{Queues: 1, Seed: 11, Batch: 8, Capacity: 256})
	h := q.NewHandle(7)
	for v := uint64(1); v <= 8; v++ {
		h.EnqueuePriorityRef(v, v)
	}
	it, ok := h.Dequeue() // refills the prefetch buffer with a batched run
	if !ok || it.Value != 1 {
		t.Fatalf("Dequeue = (%+v, %v), want (1,1)", it, ok)
	}
	pre := h.Prefetched()
	if pre != 7 {
		t.Fatalf("Prefetched=%d after the first batched dequeue, want 7", pre)
	}
	const target = uint64(8) // last element of the prefetch run
	if !h.DropPrefetched(target) {
		t.Fatalf("DropPrefetched(%d) missed a prefetched element", target)
	}
	if h.DropPrefetched(target) {
		t.Fatal("DropPrefetched dropped the same element twice")
	}
	if h.Prefetched() != pre-1 {
		t.Fatalf("Prefetched=%d after drop, want %d", h.Prefetched(), pre-1)
	}
	if h.DropPrefetched(it.Value) {
		t.Fatal("DropPrefetched claimed the already-delivered element")
	}
	// Remaining elements arrive in order, skipping the dropped one.
	var gotVals []uint64
	for {
		nit, ok := h.Dequeue()
		if !ok {
			break
		}
		gotVals = append(gotVals, nit.Value)
	}
	last := it.Value
	for _, v := range gotVals {
		if v == target {
			t.Fatalf("dropped element %d surfaced from Dequeue", target)
		}
		if v <= last {
			t.Fatalf("prefetch order broken after drop: %d after %d", v, last)
		}
		last = v
	}
	if len(gotVals) != 8-2 { // 8 admitted − 1 delivered − 1 dropped
		t.Fatalf("drained %d after drop, want 6", len(gotVals))
	}
	if q.Len() != 0 {
		t.Fatalf("Len=%d at end, want 0", q.Len())
	}
}
