package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cpq"
	"repro/internal/rng"
)

// elasticTopo is the test topology: start mid-range so both directions are
// reachable.
func elasticTopo(initial, min, max int) Topology {
	return Topology{InitialM: initial, MinM: min, MaxM: max}
}

// TestResizeClampAndEpochBookkeeping pins the epoch-word accounting: each
// effective Resize bumps Epoch and Resizes by one, requests outside
// [MinM, MaxM] clamp, a no-op request (already at the target) moves nothing,
// and a fixed topology (MinM == MaxM) never moves at all.
func TestResizeClampAndEpochBookkeeping(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Topology: elasticTopo(4, 2, 16), Seed: 1})
	if q.M() != 4 || q.Epoch() != 0 {
		t.Fatalf("fresh queue: M=%d Epoch=%d, want 4, 0", q.M(), q.Epoch())
	}
	if got := q.Resize(16); got != 16 {
		t.Fatalf("Resize(16) = %d", got)
	}
	if got := q.Resize(64); got != 16 {
		t.Fatalf("Resize(64) = %d, want clamp to MaxM 16", got)
	}
	if got := q.Resize(1); got != 2 {
		t.Fatalf("Resize(1) = %d, want clamp to MinM 2", got)
	}
	if got := q.Resize(2); got != 2 {
		t.Fatalf("no-op Resize(2) = %d", got)
	}
	// Three effective moves: 4→16, 16→16 (clamped no-op after the first
	// clamp already sat at 16 — not counted), 16→2. The clamped Resize(64)
	// lands on the current m and must not burn an epoch.
	st := q.Stats()
	if st.Resizes != 2 || st.Epoch != 2 || st.CurrentM != 2 {
		t.Fatalf("Stats = %+v, want Resizes 2, Epoch 2, CurrentM 2", st)
	}
	if topo := q.Topology(); topo.MinM != 2 || topo.MaxM != 16 || topo.InitialM != 4 {
		t.Fatalf("Topology = %+v mutated by Resize", topo)
	}

	fixed := NewMultiQueue(MultiQueueConfig{Queues: 8, Seed: 2})
	if got := fixed.Resize(32); got != 8 {
		t.Fatalf("fixed-m Resize(32) = %d, want pinned 8", got)
	}
	if fixed.Epoch() != 0 {
		t.Fatalf("fixed-m queue burned an epoch: %d", fixed.Epoch())
	}
}

// TestResizeConservationQuiescent is the conservation property the ISSUE
// demands, quiescent half: for every backing, elements enqueued across a
// grow → shrink → shrink-to-MinM staircase are all drained afterwards —
// no loss, no duplication — including elements admitted while the live m
// differed from both the initial and final counts.
func TestResizeConservationQuiescent(t *testing.T) {
	for _, b := range cpq.Backings() {
		for _, g := range stickyBatchGrid {
			t.Run(fmt.Sprintf("%v/s%d/k%d/a%v", b, g.stick, g.batch, g.affinity), func(t *testing.T) {
				const handles, per = 3, 500
				q := NewMultiQueue(MultiQueueConfig{
					Topology: elasticTopo(4, 1, 32), Backing: b, Seed: 99,
					Stickiness: g.stick, Batch: g.batch, Affinity: g.affinity,
				})
				hs := make([]*MQHandle, handles)
				for i := range hs {
					hs[i] = q.NewHandle(uint64(i) + 1)
				}
				want := make(map[uint64]int, 4*handles*per)
				phase := 0
				fill := func() {
					for i, h := range hs {
						for j := 0; j < per; j++ {
							v := uint64(phase<<20 | i<<16 | j)
							h.Enqueue(v)
							want[v]++
						}
					}
					phase++
				}
				fill()       // at m=4
				q.Resize(32) // grow: unseal parked tail
				fill()       // at m=32, lands in unsealed shards too
				q.Resize(3)  // deep shrink: 29 victims drain-and-donate
				fill()       // at m=3
				q.Resize(1)  // to MinM: everything funnels into qs[0]
				fill()       // at m=1
				for _, h := range hs {
					h.Flush()
				}
				if got, wantN := q.Len(), len(want); got != wantN {
					t.Fatalf("Len = %d after staircase, want %d", got, wantN)
				}
				drainer := q.NewHandle(77)
				got := make(map[uint64]int, len(want))
				for {
					it, ok := drainer.Dequeue()
					if !ok {
						break
					}
					got[it.Value]++
				}
				for v, n := range want {
					if got[v] != n {
						t.Fatalf("value %#x drained %d times, want %d", v, got[v], n)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("drained %d distinct values, want %d", len(got), len(want))
				}
				// Every forwarding entry must have been retired by the pops
				// that consumed the donated elements.
				if q.fwdCount.Load() != 0 {
					t.Fatalf("fwdCount = %d after full drain, want 0", q.fwdCount.Load())
				}
			})
		}
	}
}

// TestResizeConcurrentConservation is the racing half: workers enqueue and
// dequeue nonstop while the main goroutine staircases the live shard count
// between MinM and MaxM. At quiescence every admitted element is either
// dequeued or still resident — exact conservation under -race across the
// epoch flips, seal refusals and drain-and-donate hops.
func TestResizeConcurrentConservation(t *testing.T) {
	for _, b := range []cpq.Backing{cpq.BackingBinary, cpq.BackingSkiplist} {
		t.Run(fmt.Sprintf("%v", b), func(t *testing.T) {
			const workers, per = 4, 2000
			q := NewMultiQueue(MultiQueueConfig{
				Topology: elasticTopo(8, 1, 64), Backing: b, Seed: 5,
				Stickiness: 4, Batch: 4,
			})
			var enq, deq atomic.Int64
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(id int) {
					defer wg.Done()
					h := q.NewHandle(uint64(id) + 1)
					defer h.Close() // flushes the insert buffer, returns prefetches
					for j := 0; j < per; j++ {
						h.Enqueue(uint64(id)<<32 | uint64(j))
						enq.Add(1)
						if j%3 == 0 {
							if _, ok := h.TryDequeue(4); ok {
								deq.Add(1)
							}
						}
					}
				}(w)
			}
			for i := 0; i < 40; i++ {
				q.Resize([]int{64, 1, 16, 2, 32, 8}[i%6])
			}
			wg.Wait()
			q.Resize(1) // final funnel exercises one more full drain
			if got, want := int64(q.Len()), enq.Load()-deq.Load(); got != want {
				t.Fatalf("Len = %d at quiescence, want enq-deq = %d", got, want)
			}
			drainer := q.NewHandle(999)
			n := int64(0)
			for {
				if _, ok := drainer.Dequeue(); !ok {
					break
				}
				n++
			}
			if n != enq.Load()-deq.Load() {
				t.Fatalf("drained %d, want %d", n, enq.Load()-deq.Load())
			}
		})
	}
}

// TestResizeForwardsElemRefs checks the forwarding table end to end: refs
// issued before a deep shrink stay removable afterwards (the shrink moved
// their elements to survivors), a double hop (two consecutive shrinks)
// re-points the entry, and after the tombstones are physically reclaimed by
// a full drain Invalidations == Reclaimed — no tombstone leaks across epochs.
func TestResizeForwardsElemRefs(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Topology: elasticTopo(16, 1, 16), Seed: 11})
	h := q.NewHandle(1)
	const n = 256
	refs := make([]ElemRef, 0, n)
	for i := 0; i < n; i++ {
		refs = append(refs, h.EnqueuePriorityRef(uint64(i), uint64(1000+i)))
	}
	q.Resize(4) // first hop: 12 victims donate
	q.Resize(1) // second hop: donated elements move again; entries re-point
	for i, ref := range refs {
		if i%2 == 0 {
			continue // leave half for the drain
		}
		if !h.Remove(ref) {
			t.Fatalf("Remove(refs[%d]) failed after two shrink hops", i)
		}
	}
	if got, want := q.Len(), n/2; got != want {
		t.Fatalf("Len = %d after removing half, want %d", got, want)
	}
	got := 0
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
		got++
	}
	if got != n/2 {
		t.Fatalf("drained %d live elements, want %d", got, n/2)
	}
	st := q.Stats()
	if st.Invalidations != st.Reclaimed {
		t.Fatalf("Invalidations=%d Reclaimed=%d after full drain — tombstones leaked across resize epochs",
			st.Invalidations, st.Reclaimed)
	}
	if st.Invalidations != n/2 {
		t.Fatalf("Invalidations = %d, want %d", st.Invalidations, n/2)
	}
	if q.fwdCount.Load() != 0 {
		t.Fatalf("fwdCount = %d after drain, want 0", q.fwdCount.Load())
	}
}

// TestResizeStaleHandleReroutes pins the handle half of the epoch protocol:
// a handle whose cached epoch word predates a shrink must re-seed on its
// next operation and route every subsequent insert into the live range —
// no element may land in a sealed victim.
func TestResizeStaleHandleReroutes(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Topology: elasticTopo(8, 2, 8), Seed: 3, Affinity: 0.5})
	h := q.NewHandle(1)
	h.Enqueue(0) // handle now carries the epoch word for m=8
	if h.m != 8 {
		t.Fatalf("handle cached m = %d, want 8", h.m)
	}
	q.Resize(2)
	for i := uint64(1); i <= 64; i++ {
		h.Enqueue(i) // first call must observe the flip via syncEpoch
	}
	h.Flush()
	if h.m != 2 {
		t.Fatalf("handle cached m = %d after shrink, want 2", h.m)
	}
	live := q.qs[0].Len() + q.qs[1].Len()
	if live != q.Len() || live != 65 {
		t.Fatalf("live shards hold %d of Len %d (want all 65) — an insert landed in a sealed victim",
			live, q.Len())
	}

	// Grow back: the stale handle must widen its sampler to reach the
	// unsealed tail again.
	q.Resize(8)
	h.Enqueue(100)
	if h.m != 8 {
		t.Fatalf("handle cached m = %d after grow, want 8", h.m)
	}
}

// TestScalerDecide drives the pure controller function through dwell gating,
// doubling/halving, clamping and the disabled-shrink mode — the seeded unit
// behind both structures' AutoScaleTick.
func TestScalerDecide(t *testing.T) {
	topo := elasticTopo(4, 2, 16)
	as := AutoScale{GrowThreshold: 0.5, ShrinkThreshold: 0.05, Dwell: 2}

	t.Run("dwell gates and resets", func(t *testing.T) {
		s := scaler{as: as}
		if got := s.decide(topo, 4, 1.0); got != 4 {
			t.Fatalf("tick 1 stepped to %d before dwell elapsed", got)
		}
		if got := s.decide(topo, 4, 1.0); got != 4 {
			t.Fatalf("tick 2 stepped to %d before dwell elapsed", got)
		}
		if got := s.decide(topo, 4, 1.0); got != 8 {
			t.Fatalf("tick 3 = %d, want grow to 8", got)
		}
		// The step reset the clock: the next high-pressure tick must wait
		// out the dwell again.
		if got := s.decide(topo, 8, 1.0); got != 8 {
			t.Fatalf("tick after step moved to %d, dwell did not reset", got)
		}
	})

	t.Run("grow doubles and clamps", func(t *testing.T) {
		s := scaler{as: AutoScale{GrowThreshold: 0.5, ShrinkThreshold: 0.05, Dwell: 0}}
		// Dwell 0 still requires sinceStep > 0, which the first tick satisfies.
		cur := 2
		for _, want := range []int{4, 8, 16, 16} {
			if cur = s.decide(topo, cur, 0.9); cur != want {
				t.Fatalf("grow chain got %d, want %d", cur, want)
			}
		}
	})

	t.Run("shrink halves and clamps", func(t *testing.T) {
		s := scaler{as: AutoScale{GrowThreshold: 0.5, ShrinkThreshold: 0.05, Dwell: 0}}
		cur := 16
		for _, want := range []int{8, 4, 2, 2} {
			if cur = s.decide(topo, cur, 0.0); cur != want {
				t.Fatalf("shrink chain got %d, want %d", cur, want)
			}
		}
	})

	t.Run("mid pressure holds", func(t *testing.T) {
		s := scaler{as: AutoScale{GrowThreshold: 0.5, ShrinkThreshold: 0.05, Dwell: 0}}
		for i := 0; i < 5; i++ {
			if got := s.decide(topo, 8, 0.25); got != 8 {
				t.Fatalf("pressure 0.25 moved m to %d", got)
			}
		}
	})

	t.Run("negative shrink threshold disables shrink", func(t *testing.T) {
		s := scaler{as: AutoScale{GrowThreshold: 0.5, ShrinkThreshold: -1, Dwell: 0}}
		for i := 0; i < 5; i++ {
			if got := s.decide(topo, 16, 0.0); got != 16 {
				t.Fatalf("disabled shrink still moved m to %d", got)
			}
		}
	})
}

// TestAutoScaleTickGrowsUnderInjectedContentionShrinksWhenIdle drives the
// MultiQueue's contention-priced controller deterministically: the
// contention signal is injected by rolling back the controller's last-seen
// LockContended watermark (so the next tick prices a positive Δcontended
// against zero completed critical sections — the saturated branch,
// pressure 1), and idleness is the true zero-delta state. Grow must
// staircase to MaxM, idle ticks must walk it back to MinM, and elements are
// conserved throughout.
func TestAutoScaleTickGrowsUnderInjectedContentionShrinksWhenIdle(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{
		Topology: Topology{InitialM: 2, MinM: 2, MaxM: 16,
			AutoScale: &AutoScale{GrowThreshold: 0.5, ShrinkThreshold: 0.05, Dwell: 1}},
		Seed: 21,
	})
	h := q.NewHandle(1)
	const n = 200
	for i := 0; i < n; i++ {
		h.Enqueue(uint64(i))
	}
	if m, _ := q.AutoScaleTick(); m != 2 {
		t.Fatalf("baseline tick moved m to %d", m)
	}

	inject := func() {
		// Roll the watermark back so the next tick sees ΔLockContended = 8
		// with ΔCrit = 0 (no ops ran since the baseline): the saturated
		// branch prices that as pressure 1. uint64 wraparound in the delta
		// makes this exact even while the true counter is still 0.
		q.resizeMu.Lock()
		q.lastContended -= 8
		q.lastCrit = q.Stats().Elisions + q.Stats().Publications
		q.resizeMu.Unlock()
	}
	grown := []int{}
	for i := 0; i < 12 && q.M() < 16; i++ {
		inject()
		if m, resized := q.AutoScaleTick(); resized {
			grown = append(grown, m)
		}
	}
	if q.M() != 16 {
		t.Fatalf("injected contention grew m to %d, want MaxM 16 (steps %v)", q.M(), grown)
	}
	if fmt.Sprint(grown) != "[4 8 16]" {
		t.Fatalf("grow staircase %v, want [4 8 16]", grown)
	}

	// Idle: no operations between ticks → Δcrit = Δcontended = 0 →
	// pressure 0 → halve after each dwell.
	shrunk := []int{}
	for i := 0; i < 12 && q.M() > 2; i++ {
		if m, resized := q.AutoScaleTick(); resized {
			shrunk = append(shrunk, m)
		}
	}
	if q.M() != 2 {
		t.Fatalf("idle ticks shrank m to %d, want MinM 2 (steps %v)", q.M(), shrunk)
	}
	if fmt.Sprint(shrunk) != "[8 4 2]" {
		t.Fatalf("shrink staircase %v, want [8 4 2]", shrunk)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d after grow/shrink cycle, want %d", q.Len(), n)
	}

	// A queue without AutoScale never moves, whatever the watermarks say.
	fixed := NewMultiQueue(MultiQueueConfig{Topology: elasticTopo(4, 2, 16), Seed: 22})
	if m, resized := fixed.AutoScaleTick(); resized || m != 4 {
		t.Fatalf("nil-AutoScale tick returned (%d, %v)", m, resized)
	}
}

// TestMultiCounterResizeConservesExact checks the counter's releveling
// resize: Exact is conserved to the unit across shrink and grow, the
// redistributed cells are level (gap ≤ 1 at quiescence), and the
// caller-pressure AutoScaleTick walks the same staircase as the queue's.
func TestMultiCounterResizeConservesExact(t *testing.T) {
	mc := NewMultiCounterConfig(MultiCounterConfig{
		Topology: Topology{InitialM: 8, MinM: 1, MaxM: 32,
			AutoScale: &AutoScale{GrowThreshold: 0.5, ShrinkThreshold: 0.05, Dwell: 1}},
	})
	h := mc.NewHandle(1)
	const n = 100_003 // prime: the releveling remainder path is exercised
	for i := 0; i < n; i++ {
		h.Increment()
	}
	if mc.Exact() != n {
		t.Fatalf("Exact = %d before resize, want %d", mc.Exact(), n)
	}
	for _, m := range []int{32, 3, 1, 16} {
		if got := mc.Resize(m); got != m {
			t.Fatalf("Resize(%d) = %d", m, got)
		}
		if mc.Exact() != n {
			t.Fatalf("Exact = %d after Resize(%d), want %d", mc.Exact(), m, n)
		}
		if gap := mc.Gap(); gap > 1 {
			t.Fatalf("Gap = %d after releveling Resize(%d), want <= 1", gap, m)
		}
		snap := make([]uint64, mc.M())
		mc.Snapshot(snap)
		var sum uint64
		for _, v := range snap {
			sum += v
		}
		if sum != n {
			t.Fatalf("live cells sum %d after Resize(%d), want %d — weight stranded in a retired cell", sum, m, n)
		}
	}
	// Stale handle keeps counting correctly across the flips.
	for i := 0; i < 1000; i++ {
		h.Increment()
	}
	h.Flush()
	if mc.Exact() != n+1000 {
		t.Fatalf("Exact = %d after post-resize increments, want %d", mc.Exact(), n+1000)
	}

	// Caller-fed pressure: saturate → MaxM, idle → MinM.
	for i := 0; i < 12 && mc.M() < 32; i++ {
		mc.AutoScaleTick(1.0)
	}
	if mc.M() != 32 {
		t.Fatalf("pressure-1 ticks grew m to %d, want 32", mc.M())
	}
	for i := 0; i < 14 && mc.M() > 1; i++ {
		mc.AutoScaleTick(0.0)
	}
	if mc.M() != 1 {
		t.Fatalf("pressure-0 ticks shrank m to %d, want 1", mc.M())
	}
	if mc.Exact() != n+1000 {
		t.Fatalf("Exact = %d after autoscale staircase, want %d", mc.Exact(), n+1000)
	}
}

// TestSamplerReseed pins the stale-handle reseed contract: the clamp
// d = min(d0, m) re-applies in both directions, candidates after a reseed
// stay within the new range, the affine stripe is re-placed exactly as a
// fresh construction would place it, and the reseed itself never allocates.
func TestSamplerReseed(t *testing.T) {
	r := rng.NewXoshiro256(7)

	t.Run("reclamp both directions", func(t *testing.T) {
		s := NewSampler(16, 8, 4)
		s.Reseed(2) // m below d0: clamp to 2
		if s.Choices() != 2 {
			t.Fatalf("Choices = %d after Reseed(2), want 2", s.Choices())
		}
		for _, c := range s.Candidates(r, 2) {
			if c < 0 || c >= 2 {
				t.Fatalf("candidate %d outside [0, 2)", c)
			}
		}
		s.Reseed(64) // widen back toward d0
		if s.Choices() != 8 {
			t.Fatalf("Choices = %d after Reseed(64), want d0 8", s.Choices())
		}
		seen := false
		for i := 0; i < 50; i++ {
			for _, c := range s.Candidates(r, 8) {
				if c < 0 || c >= 64 {
					t.Fatalf("candidate %d outside [0, 64)", c)
				}
				if c >= 16 {
					seen = true
				}
			}
			s.Expire()
		}
		if !seen {
			t.Fatal("after Reseed(64) no candidate ever landed beyond the old m — sampler still draws from [0, 16)")
		}
	})

	t.Run("affine stripe re-placed like fresh construction", func(t *testing.T) {
		const handle = 42
		s := NewAffineSampler(32, 4, 8, 0.25, handle)
		s.Reseed(8)
		fresh := NewAffineSampler(8, 4, 8, 0.25, handle)
		gb, gw := s.Stripe()
		wb, ww := fresh.Stripe()
		if gb != wb || gw != ww {
			t.Fatalf("reseeded stripe (%d,%d) != fresh stripe (%d,%d)", gb, gw, wb, ww)
		}
	})

	t.Run("zero alloc", func(t *testing.T) {
		s := NewSampler(16, 8, 4)
		if allocs := testing.AllocsPerRun(100, func() {
			s.Reseed(2)
			s.Reseed(64)
		}); allocs != 0 {
			t.Fatalf("Reseed allocates %.1f/op, want 0", allocs)
		}
	})
}
