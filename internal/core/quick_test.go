package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cpq"
)

// Property tests (testing/quick) on the core structures' invariants.

// TestQuickMultiCounterExactness: for any sequence of increments and
// weighted adds, Exact equals the sum of applied deltas — the counter never
// loses or invents updates regardless of which shards the two-choice rule
// touched.
func TestQuickMultiCounterExactness(t *testing.T) {
	f := func(ops []uint8, seed uint64, mRaw uint8) bool {
		m := int(mRaw%63) + 2
		mc := NewMultiCounter(m)
		h := mc.NewHandle(seed)
		var want uint64
		for _, o := range ops {
			if o%2 == 0 {
				h.Increment()
				want++
			} else {
				delta := uint64(o % 9)
				h.Add(delta)
				want += delta
			}
		}
		return mc.Exact() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMultiCounterReadWithinGapBand: every read is m times some shard,
// so it must lie within [m*min, m*max] of the shard values — the structural
// fact behind the m·gap deviation bound.
func TestQuickMultiCounterReadWithinGapBand(t *testing.T) {
	f := func(nOps uint16, seed uint64) bool {
		m := 16
		mc := NewMultiCounter(m)
		h := mc.NewHandle(seed)
		for i := 0; i < int(nOps); i++ {
			h.Increment()
		}
		snap := make([]uint64, m)
		mc.Snapshot(snap)
		min, max := snap[0], snap[0]
		for _, v := range snap[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		for k := 0; k < 32; k++ {
			v := h.Read()
			if v < uint64(m)*min || v > uint64(m)*max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMultiQueueMultisetConservation: whatever multiset of values goes
// in comes out, exactly once each, for every backing.
func TestQuickMultiQueueMultisetConservation(t *testing.T) {
	backings := []cpq.Backing{cpq.BackingBinary, cpq.BackingPairing, cpq.BackingSkiplist}
	f := func(vals []uint16, seed uint64, pick uint8) bool {
		q := NewMultiQueue(MultiQueueConfig{
			Queues:  int(pick%7) + 2,
			Backing: backings[int(pick)%len(backings)],
			Seed:    seed,
		})
		h := q.NewHandle(seed + 1)
		want := map[uint64]int{}
		for _, v := range vals {
			h.Enqueue(uint64(v))
			want[uint64(v)]++
		}
		for {
			it, ok := h.Dequeue()
			if !ok {
				break
			}
			want[it.Value]--
			if want[it.Value] < 0 {
				return false
			}
			if want[it.Value] == 0 {
				delete(want, it.Value)
			}
		}
		return len(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMultiQueuePriorityOrderPerQueue: with a single internal queue
// (m = 1), the MultiQueue degenerates to an exact priority queue: dequeues
// come out in non-decreasing priority order.
func TestQuickMultiQueueExactWhenMIsOne(t *testing.T) {
	f := func(prios []uint16, seed uint64) bool {
		q := NewMultiQueue(MultiQueueConfig{Queues: 1, Seed: seed})
		h := q.NewHandle(seed + 1)
		for _, p := range prios {
			h.EnqueuePriority(uint64(p), 0)
		}
		prev := uint64(0)
		for {
			it, ok := h.Dequeue()
			if !ok {
				break
			}
			if it.Priority < prev {
				return false
			}
			prev = it.Priority
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTimestampsNeverExceedMTimesTotal: a sample is m times one shard,
// and no shard exceeds the total number of ticks, so samples are bounded by
// m times the tick count (and are never negative by construction).
func TestQuickTimestampsBounded(t *testing.T) {
	f := func(ticks uint8, seed uint64) bool {
		m := 8
		ts := NewTimestamps(m)
		h := ts.NewHandle(seed)
		for i := 0; i < int(ticks); i++ {
			h.Tick()
		}
		v := h.Sample()
		return v <= uint64(m)*uint64(ticks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
