package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestSamplerDedupesCandidates is the regression test for the duplicate-
// candidate waste fix: every candidate set must contain d distinct indices,
// so Best/BestKeyed never pay a redundant load of the same shard. Small m
// with d close to m makes collisions near-certain without the resampling.
func TestSamplerDedupesCandidates(t *testing.T) {
	for _, tc := range []struct{ m, d int }{{4, 4}, {4, 3}, {8, 4}, {2, 2}, {5, 2}} {
		s := NewSampler(tc.m, tc.d, 1)
		r := rng.NewXoshiro256(11)
		for i := 0; i < 2000; i++ {
			cand := s.Candidates(r, 1)
			seen := map[int]bool{}
			for _, c := range cand {
				if c < 0 || c >= tc.m {
					t.Fatalf("m=%d d=%d: index %d out of range", tc.m, tc.d, c)
				}
				if seen[c] {
					t.Fatalf("m=%d d=%d: duplicate candidate %d in %v", tc.m, tc.d, c, cand)
				}
				seen[c] = true
			}
			s.Charge(1)
		}
	}
	// d > m clamps to m (the m >= C·n assumption makes this a degenerate
	// configuration, but it must not loop forever hunting distinct indices).
	if s := NewSampler(3, 8, 1); s.Choices() != 3 {
		t.Fatalf("d > m clamped to %d, want 3", s.Choices())
	}
}

// TestSamplerAffineDedupes is the same distinctness invariant on the affine
// path, where the d−1 stripe draws and the uniform escape draw come from
// different domains and must still be pairwise distinct.
func TestSamplerAffineDedupes(t *testing.T) {
	s := NewAffineSampler(16, 4, 1, 0.25, 3) // w = max(4, 4) = 4: stripe draws must dedupe hard
	r := rng.NewXoshiro256(12)
	for i := 0; i < 2000; i++ {
		cand := s.Candidates(r, 1)
		seen := map[int]bool{}
		for _, c := range cand {
			if seen[c] {
				t.Fatalf("duplicate candidate %d in %v", c, cand)
			}
			seen[c] = true
		}
	}
}

// TestSamplerRerollKeepsRemainingBudget pins the Reroll semantics the
// queue's empty/contended path relies on: a reroll forces a fresh draw but
// the replacement candidates inherit only the remaining window budget —
// unlike Expire, which starts a whole new window. The sampler has window 10;
// after charging 3 and rerolling, the fresh set must expire after 7 more
// charges, not 10.
func TestSamplerRerollKeepsRemainingBudget(t *testing.T) {
	s := NewSampler(1<<20, 2, 10)
	r := rng.NewXoshiro256(21)
	first := append([]int(nil), s.Candidates(r, 1)...)
	s.Charge(3)
	s.Reroll()
	second := append([]int(nil), s.Candidates(r, 1)...)
	if first[0] == second[0] && first[1] == second[1] {
		t.Fatalf("Reroll did not force a fresh draw: %v", first)
	}
	// The rerolled set serves exactly the 7 remaining operations.
	for i := 0; i < 6; i++ {
		s.Charge(1)
		got := s.Candidates(r, 1)
		if got[0] != second[0] || got[1] != second[1] {
			t.Fatalf("rerolled set changed %d charges into its 7-op budget: %v vs %v", i+1, got, second)
		}
	}
	s.Charge(1) // 7th: budget exhausted
	third := s.Candidates(r, 1)
	if third[0] == second[0] && third[1] == second[1] {
		t.Fatalf("rerolled set survived past the inherited budget: %v", third)
	}
	// Contrast: Expire resets the whole window.
	s2 := NewSampler(1<<20, 2, 10)
	r2 := rng.NewXoshiro256(22)
	s2.Candidates(r2, 1)
	s2.Charge(3)
	s2.Expire()
	fresh := append([]int(nil), s2.Candidates(r2, 1)...)
	for i := 0; i < 9; i++ {
		s2.Charge(1)
		got := s2.Candidates(r2, 1)
		if got[0] != fresh[0] || got[1] != fresh[1] {
			t.Fatalf("Expire-refreshed set changed %d charges into its full 10-op window", i+1)
		}
	}
}

// pr4Sampler reimplements the PR 4 candidate draw — d independent uniform
// Intn(m) draws per refresh, duplicates allowed, no affinity — as the
// reference model for the identical-trace property below.
type pr4Sampler struct {
	m, d, window, left int
	cand               []int
}

func (s *pr4Sampler) candidates(r *rng.Xoshiro256, need int) []int {
	if s.window <= 1 || s.left < need {
		for i := range s.cand {
			s.cand[i] = r.Intn(s.m)
		}
		s.left = s.window
	}
	return s.cand
}

// TestSamplerAffinityZeroIdenticalToPR4 is the identical-trace property:
// with Affinity 0 the sampler consumes the same PRNG stream and produces
// bit-for-bit the same candidate sets as the PR 4 sampler, for every refresh
// in which the PR 4 draw had no internal collision (the deliberate dedupe
// fix resamples collisions, which is the only divergence — at m = 2^20 the
// fixed-seed horizon below is collision-free, so the traces match end to
// end, NewSampler and NewAffineSampler(…, 0, id) alike).
func TestSamplerAffinityZeroIdenticalToPR4(t *testing.T) {
	const m, d, window, horizon = 1 << 20, 2, 4, 4000
	model := &pr4Sampler{m: m, d: d, window: window, cand: make([]int, d)}
	uni := NewSampler(m, d, window)
	aff := NewAffineSampler(m, d, window, 0, 9)
	rm, ru, ra := rng.NewXoshiro256(33), rng.NewXoshiro256(33), rng.NewXoshiro256(33)
	for op := 0; op < horizon; op++ {
		need := 1 + op%3 // vary need so the batch-refresh branch is covered too
		want := model.candidates(rm, need)
		if want[0] == want[1] {
			t.Fatalf("op %d: PR 4 model drew a collision at m=2^20 — pick another seed", op)
		}
		gotU := uni.Candidates(ru, need)
		gotA := aff.Candidates(ra, need)
		for i := range want {
			if gotU[i] != want[i] || gotA[i] != want[i] {
				t.Fatalf("op %d: trace diverged from PR 4 model: model %v, uniform %v, affine-0 %v",
					op, want, gotU, gotA)
			}
		}
		model.left -= need
		uni.Charge(need)
		aff.Charge(need)
	}
}

// chiSquare computes the chi-square statistic of observed counts against a
// uniform expectation over len(obs) bins.
func chiSquare(obs []int, total int) float64 {
	expected := float64(total) / float64(len(obs))
	var x2 float64
	for _, o := range obs {
		diff := float64(o) - expected
		x2 += diff * diff / expected
	}
	return x2
}

// TestSamplerUniformOccupancyChiSquare checks the uniform sampler's draws
// are uniform over the m shards: the chi-square statistic over a fixed-seed
// sample must stay below a generous bound on the 99.9% quantile for m−1
// degrees of freedom (≈ 112 at m = 64; the run is deterministic, the slack
// guards against the mild dependence the within-set dedupe introduces).
func TestSamplerUniformOccupancyChiSquare(t *testing.T) {
	const m, d, refreshes = 64, 2, 20000
	s := NewSampler(m, d, 1)
	r := rng.NewXoshiro256(44)
	counts := make([]int, m)
	for i := 0; i < refreshes; i++ {
		for _, c := range s.Candidates(r, 1) {
			counts[c]++
		}
	}
	if x2 := chiSquare(counts, refreshes*d); x2 > 160 {
		t.Fatalf("uniform sampler chi-square %.1f > 160 over %d bins", x2, m)
	}
}

// TestSamplerAffineOccupancy checks the affine draw geometry: every one of
// the d−1 stripe candidates lands inside the current home stripe (so at
// least (d−1)/d of all draws are stripe-local by construction), the escape
// slot stays uniform over all m shards (chi-square, same bound as the
// uniform test), the stripe rotates exactly every affinityRotateEvery
// refreshes, and across a full rotation cycle every shard is reachable.
func TestSamplerAffineOccupancy(t *testing.T) {
	const m, d, refreshes = 64, 4, 20000
	const af = 0.25 // w = 16
	s := NewAffineSampler(m, d, 1, af, 5)
	if base, width := s.Stripe(); width != 16 {
		t.Fatalf("stripe width %d at affinity %.2f, want 16 (base %d)", width, af, base)
	}
	r := rng.NewXoshiro256(55)
	escape := make([]int, m)
	all := make([]int, m)
	prevBase, _ := s.Stripe()
	rotations := 0
	for i := 0; i < refreshes; i++ {
		cand := s.Candidates(r, 1)
		base, width := s.Stripe() // read after the refresh: rotation happens inside
		if base != prevBase {
			rotations++
			if want := (prevBase + width) % m; base != want {
				t.Fatalf("refresh %d: stripe moved %d -> %d, want %d", i, prevBase, base, want)
			}
			prevBase = base
		}
		for _, c := range cand[:d-1] {
			if off := ((c - base) + m) % m; off >= width {
				t.Fatalf("refresh %d: stripe candidate %d outside stripe [%d, %d)", i, c, base, base+width)
			}
		}
		escape[cand[d-1]]++
		for _, c := range cand {
			all[c]++
		}
	}
	if want := refreshes/affinityRotateEvery - 1; rotations < want {
		t.Fatalf("observed %d rotations, want >= %d", rotations, want)
	}
	if x2 := chiSquare(escape, refreshes); x2 > 160 {
		t.Fatalf("escape-slot chi-square %.1f > 160: escape candidate is not uniform", x2)
	}
	for i, n := range all {
		if n == 0 {
			t.Fatalf("shard %d never sampled across %d affine refreshes", i, refreshes)
		}
	}
}

// TestAffineStripesDeterministicAndSpread checks the handle-id threading:
// stripes are a pure function of (m, d, affinity, handle id), and the
// golden-ratio placement spreads distinct handles' stripe bases across the
// ring instead of piling them up.
func TestAffineStripesDeterministicAndSpread(t *testing.T) {
	const m = 256
	bases := map[int]bool{}
	for id := uint64(0); id < 8; id++ {
		a := NewAffineSampler(m, 2, 8, 0.125, id)
		b := NewAffineSampler(m, 2, 8, 0.125, id)
		ab, aw := a.Stripe()
		bb, bw := b.Stripe()
		if ab != bb || aw != bw {
			t.Fatalf("handle %d: stripe not deterministic: (%d,%d) vs (%d,%d)", id, ab, aw, bb, bw)
		}
		bases[ab] = true
	}
	if len(bases) < 7 {
		t.Fatalf("8 handles produced only %d distinct stripe bases", len(bases))
	}
	// And through the structures: handles created in the same order get the
	// same stripes run to run.
	q1 := NewMultiQueue(MultiQueueConfig{Queues: m, Affinity: 0.125, Seed: 1})
	q2 := NewMultiQueue(MultiQueueConfig{Queues: m, Affinity: 0.125, Seed: 1})
	for i := 0; i < 4; i++ {
		h1, h2 := q1.NewHandle(uint64(i)+1), q2.NewHandle(uint64(i)+1)
		if h1.ID() != uint64(i) || h2.ID() != uint64(i) {
			t.Fatalf("handle ids not creation-ordered: %d/%d, want %d", h1.ID(), h2.ID(), i)
		}
		b1, w1 := h1.deq.Stripe()
		b2, w2 := h2.deq.Stripe()
		if b1 != b2 || w1 != w2 {
			t.Fatalf("handle %d: queue stripes differ across identical runs", i)
		}
	}
	mc := NewMultiCounter(m, WithAffinity(0.125), WithStickiness(4))
	if got := mc.Affinity(); got != 0.125 {
		t.Fatalf("WithAffinity not applied: %v", got)
	}
	if h := mc.NewHandle(1); !h.smp.Affine() || h.ID() != 0 {
		t.Fatalf("counter handle not affine (id %d)", h.ID())
	}
}

// TestAffinityConfigValidation pins the config contract: out-of-range
// fractions panic on both structures and on the option, affinity 1 is
// accepted (whole-ring stripe), and d = 1 degenerates to uniform.
func TestAffinityConfigValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"queue-neg":   func() { NewMultiQueue(MultiQueueConfig{Queues: 4, Affinity: -0.1}) },
		"queue-big":   func() { NewMultiQueue(MultiQueueConfig{Queues: 4, Affinity: 1.1}) },
		"queue-nan":   func() { NewMultiQueue(MultiQueueConfig{Queues: 4, Affinity: math.NaN()}) },
		"counter-neg": func() { NewMultiCounterConfig(MultiCounterConfig{Counters: 4, Affinity: -0.1}) },
		"counter-big": func() { NewMultiCounterConfig(MultiCounterConfig{Counters: 4, Affinity: math.Inf(1)}) },
		"counter-nan": func() { NewMultiCounterConfig(MultiCounterConfig{Counters: 4, Affinity: math.NaN()}) },
		"option":      func() { WithAffinity(2) },
		"option-nan":  func() { WithAffinity(math.NaN()) },
		"sampler":     func() { NewAffineSampler(4, 2, 1, -1, 0) },
		"sampler-nan": func() { NewAffineSampler(4, 2, 1, math.NaN(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	if q := NewMultiQueue(MultiQueueConfig{Queues: 8, Affinity: 1}); q.Affinity() != 1 {
		t.Fatalf("Affinity() = %v, want 1", q.Affinity())
	}
	if s := NewAffineSampler(8, 1, 1, 0.5, 0); s.Affine() {
		t.Fatal("d = 1 affine sampler should degenerate to uniform (the single candidate is the escape)")
	}
}

// TestAffineDequeueDrainsWholeRing drives a single affine handle through a
// mixed enqueue/dequeue load and a full drain: the escape candidate plus
// stripe rotation must reach every queue, so the drain terminates with
// every element accounted for even though d−1 of d choices are stripe-local.
func TestAffineDequeueDrainsWholeRing(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 32, Affinity: 0.25, Stickiness: 8, Batch: 8, Seed: 3})
	h := q.NewHandle(1)
	const n = 4096
	seen := make(map[uint64]bool, n)
	for v := uint64(0); v < n; v++ {
		h.Enqueue(v)
		if v%2 == 1 {
			it, ok := h.Dequeue()
			if !ok {
				t.Fatalf("dequeue %d failed mid-load", v)
			}
			seen[it.Value] = true
		}
	}
	for {
		it, ok := h.Dequeue()
		if !ok {
			break
		}
		if seen[it.Value] {
			t.Fatalf("value %d dequeued twice", it.Value)
		}
		seen[it.Value] = true
	}
	if len(seen) != n {
		t.Fatalf("drained %d distinct values, want %d", len(seen), n)
	}
}
