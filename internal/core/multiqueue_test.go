package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/cpq"
	"repro/internal/dlin"
	"repro/internal/stats"
	"repro/internal/trace"
)

func newMQ(m int) *MultiQueue {
	return NewMultiQueue(MultiQueueConfig{Queues: m, Seed: 1})
}

func TestMultiQueueFIFOishSequential(t *testing.T) {
	q := newMQ(4)
	h := q.NewHandle(1)
	for v := uint64(0); v < 100; v++ {
		h.Enqueue(v)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		it, ok := h.Dequeue()
		if !ok {
			t.Fatalf("dequeue %d failed", i)
		}
		if seen[it.Value] {
			t.Fatalf("value %d dequeued twice", it.Value)
		}
		seen[it.Value] = true
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("dequeue on empty returned ok")
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty after drain")
	}
}

// TestMultiQueueChoicesConfig drives the configured d-choice dequeue across
// the d sweep: every setting must conserve elements through a full drain,
// and accessors must report the normalized configuration.
func TestMultiQueueChoicesConfig(t *testing.T) {
	for _, d := range []int{0, 1, 2, 4} {
		q := NewMultiQueue(MultiQueueConfig{Queues: 8, Seed: 3, Choices: d, Stickiness: 4, Batch: 4})
		wantD := d
		if wantD == 0 {
			wantD = 2
		}
		if q.Choices() != wantD {
			t.Fatalf("Choices() = %d, want %d", q.Choices(), wantD)
		}
		h := q.NewHandle(1)
		const n = 500
		for v := uint64(0); v < n; v++ {
			h.Enqueue(v)
		}
		seen := map[uint64]bool{}
		for {
			it, ok := h.Dequeue()
			if !ok {
				break
			}
			if seen[it.Value] {
				t.Fatalf("d=%d: value %d twice", d, it.Value)
			}
			seen[it.Value] = true
		}
		if len(seen) != n {
			t.Fatalf("d=%d: drained %d, want %d", d, len(seen), n)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Choices=-1 did not panic")
			}
		}()
		NewMultiQueue(MultiQueueConfig{Queues: 4, Choices: -1})
	}()
}

func TestMultiQueueTimestampsUnique(t *testing.T) {
	q := newMQ(4)
	h := q.NewHandle(2)
	seen := map[uint64]bool{}
	for v := uint64(0); v < 1000; v++ {
		p := h.Enqueue(v)
		if seen[p] {
			t.Fatalf("duplicate priority %d from tick clock", p)
		}
		seen[p] = true
	}
}

func TestMultiQueueConcurrentNoLossNoDup(t *testing.T) {
	const producers, per = 4, 5000
	q := newMQ(16)
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			h := q.NewHandle(uint64(p) + 10)
			for i := 0; i < per; i++ {
				h.Enqueue(uint64(p*per + i))
			}
		}(p)
	}
	wg.Wait()

	const consumers = 4
	out := make([][]uint64, consumers)
	wg.Add(consumers)
	for c := 0; c < consumers; c++ {
		go func(c int) {
			defer wg.Done()
			h := q.NewHandle(uint64(c) + 100)
			for {
				it, ok := h.Dequeue()
				if !ok {
					return
				}
				out[c] = append(out[c], it.Value)
			}
		}(c)
	}
	wg.Wait()

	seen := make(map[uint64]bool, producers*per)
	total := 0
	for _, vs := range out {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != producers*per {
		t.Fatalf("dequeued %d, want %d", total, producers*per)
	}
}

func TestMultiQueueRankErrorLinearInM(t *testing.T) {
	// Theorem 7.1 empirically, at the data-structure level, single thread
	// (the sequential relaxation): dequeue rank is O(m) in expectation.
	for _, m := range []int{8, 32} {
		q := newMQ(m)
		h := q.NewHandle(3)
		// Track present labels; compute the rank of each dequeue against a
		// Fenwick tree, like the dlin replay does.
		const buffer = 2000
		maxLabels := buffer + 20000 + 1
		fw := dlin.NewFenwick(maxLabels)
		for i := 0; i < buffer; i++ {
			fw.Add(int(h.Enqueue(0)), 1)
		}
		ranks := stats.NewSample(20000)
		for i := 0; i < 20000; i++ {
			fw.Add(int(h.Enqueue(0)), 1)
			it, ok := h.Dequeue()
			if !ok {
				t.Fatal("dequeue failed with non-empty buffer")
			}
			rank := fw.PrefixSum(int(it.Priority))
			fw.Add(int(it.Priority), -1)
			ranks.AddInt(int(rank))
		}
		if mean := ranks.Mean(); mean > 4*float64(m)+4 {
			t.Fatalf("mean dequeue rank %v not O(m) at m=%d", mean, m)
		}
		if p999 := ranks.Quantile(0.999); p999 > 4*float64(m)*math.Log2(float64(m))+8 {
			t.Fatalf("p99.9 rank %v not O(m log m) at m=%d", p999, m)
		}
	}
}

func TestMultiQueuePriorityMode(t *testing.T) {
	q := newMQ(4)
	h := q.NewHandle(4)
	// Insert priorities in reverse; dequeues should be strongly biased
	// toward low priorities: with a big buffer, the first dequeue must not
	// return anything near the top of the range.
	for p := uint64(1000); p >= 1; p-- {
		h.EnqueuePriority(p, p)
	}
	it, ok := h.Dequeue()
	if !ok {
		t.Fatal("dequeue failed")
	}
	if it.Priority > 100 {
		t.Fatalf("dequeue returned rank-%d-ish priority %d; relaxation too weak", it.Priority, it.Priority)
	}
}

func TestMultiQueueTryDequeue(t *testing.T) {
	q := newMQ(4)
	h := q.NewHandle(5)
	if _, ok := h.TryDequeue(8); ok {
		t.Fatal("TryDequeue on empty returned ok")
	}
	h.Enqueue(7)
	// With generous attempts the single element must be found.
	if it, ok := h.TryDequeue(64); !ok || it.Value != 7 {
		t.Fatalf("TryDequeue = %+v, %v", it, ok)
	}
}

func TestMultiQueueBackings(t *testing.T) {
	for _, b := range []cpq.Backing{cpq.BackingBinary, cpq.BackingPairing, cpq.BackingSkiplist} {
		q := NewMultiQueue(MultiQueueConfig{Queues: 8, Backing: b, Seed: 6})
		h := q.NewHandle(7)
		for v := uint64(0); v < 500; v++ {
			h.Enqueue(v)
		}
		count := 0
		for {
			if _, ok := h.Dequeue(); !ok {
				break
			}
			count++
		}
		if count != 500 {
			t.Fatalf("%v backing: drained %d, want 500", b, count)
		}
	}
}

func TestMultiQueueWallClock(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 4, Clock: clock.NewWall(), Seed: 8})
	h := q.NewHandle(9)
	for v := uint64(0); v < 100; v++ {
		h.Enqueue(v)
	}
	drained := 0
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
		drained++
	}
	if drained != 100 {
		t.Fatalf("drained %d", drained)
	}
}

func TestMultiQueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Queues=0 did not panic")
		}
	}()
	NewMultiQueue(MultiQueueConfig{Queues: 0})
}

func TestMultiQueueSizes(t *testing.T) {
	q := newMQ(4)
	h := q.NewHandle(30)
	const n = 4000
	for v := uint64(0); v < n; v++ {
		h.Enqueue(v)
	}
	sizes := make([]int, 4)
	q.Sizes(sizes)
	total := 0
	for _, s := range sizes {
		total += s
		// Uniform random placement: each queue holds ~n/4 ± a few sigma
		// (binomial sd ≈ 27; allow 8 sigma).
		if s < n/4-220 || s > n/4+220 {
			t.Fatalf("queue size %d far from uniform expectation %d", s, n/4)
		}
	}
	if total != n {
		t.Fatalf("sizes sum %d != %d", total, n)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Sizes with wrong length did not panic")
			}
		}()
		q.Sizes(make([]int, 3))
	}()
}

// TestDistributionalLinearizabilityQueue is experiment E9 for the queue: a
// live concurrent run is mapped onto the relaxed sequential queue process;
// the witness must exist and dequeue rank costs must respect the
// O(m log m) envelope.
func TestDistributionalLinearizabilityQueue(t *testing.T) {
	const workers, per, m = 4, 4000, 32
	q := newMQ(m)
	rec := trace.NewRecorder(workers, 2*per+1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle(uint64(w) + 50)
			log := rec.Log(w)
			// Phase 1: buffer, then steady-state enq+deq pairs.
			for i := 0; i < per/2; i++ {
				h.EnqueueTraced(uint64(i), rec, log)
			}
			for i := 0; i < per/2; i++ {
				h.EnqueueTraced(uint64(i), rec, log)
				h.DequeueTraced(rec, log)
			}
		}(w)
	}
	wg.Wait()
	events := rec.Merge()
	maxLabel := uint64(0)
	for _, e := range events {
		if e.Kind == trace.KindEnq && e.Arg > maxLabel {
			maxLabel = e.Arg
		}
	}
	w, err := dlin.Replay(dlin.NewQueueSpec(maxLabel), events)
	if err != nil {
		t.Fatalf("witness mapping failed: %v", err)
	}
	if w.Costs.N() == 0 {
		t.Fatal("no dequeue costs recorded")
	}
	envelope := dlin.Envelope(m)
	if mean := w.Costs.Mean(); mean > 2*envelope {
		t.Fatalf("mean dequeue rank cost %v exceeds 2x envelope %v", mean, envelope)
	}
}

func BenchmarkMultiQueueEnqDeq(b *testing.B) {
	q := newMQ(64)
	h := q.NewHandle(1)
	for i := 0; i < 4096; i++ {
		h.Enqueue(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Enqueue(uint64(i))
		h.Dequeue()
	}
}
