package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cpq"
)

// stickyBatchGrid is the (Stickiness, Batch, Affinity) sweep the property
// and stress tests cover: the per-op baseline, each knob alone, both
// together, a non-divisor batch size so partial flushes are exercised, and
// the shard-affine sampler at its committed fraction so conservation holds
// with stripe-local dequeue choices too.
var stickyBatchGrid = []struct {
	stick, batch int
	affinity     float64
}{
	{0, 0, 0}, // zero values normalize to 1/1: Algorithm 2 exactly
	{1, 1, 0},
	{4, 1, 0},
	{1, 4, 0},
	{4, 4, 0},
	{8, 7, 0}, // 7 never divides the op counts below: Flush moves a partial batch
	{4, 4, 0.25},
	{8, 7, 1}, // whole-ring stripe: affinity's degenerate uniform-width end
}

// TestPropertyQuiescentDrainExactMultiset is the conservation property the
// ISSUE demands: for every (Backing, Stickiness, Batch) combination, after
// all handles flush, a quiescent drain returns exactly the multiset of
// enqueued values — no loss, no duplication — and Len/Sizes agree with the
// element count before the drain and with zero after it.
func TestPropertyQuiescentDrainExactMultiset(t *testing.T) {
	backings := []cpq.Backing{cpq.BackingBinary, cpq.BackingPairing, cpq.BackingSkiplist}
	for _, b := range backings {
		for _, g := range stickyBatchGrid {
			t.Run(fmt.Sprintf("%v/s%d/k%d/a%v", b, g.stick, g.batch, g.affinity), func(t *testing.T) {
				const handles, per, m = 3, 1000, 8
				q := NewMultiQueue(MultiQueueConfig{
					Queues: m, Backing: b, Seed: 77,
					Stickiness: g.stick, Batch: g.batch, Affinity: g.affinity,
				})
				hs := make([]*MQHandle, handles)
				for i := range hs {
					hs[i] = q.NewHandle(uint64(i) + 1)
				}
				want := make(map[uint64]int, handles*per)
				for i, h := range hs {
					for j := 0; j < per; j++ {
						v := uint64(i*per + j)
						h.Enqueue(v)
						want[v]++
					}
				}
				for _, h := range hs {
					h.Flush()
					if h.Buffered() != 0 {
						t.Fatalf("Buffered = %d after Flush", h.Buffered())
					}
				}
				if q.Len() != handles*per {
					t.Fatalf("Len = %d after flush, want %d", q.Len(), handles*per)
				}
				sizes := make([]int, m)
				q.Sizes(sizes)
				sum := 0
				for _, s := range sizes {
					sum += s
				}
				if sum != q.Len() {
					t.Fatalf("Sizes sum %d != Len %d", sum, q.Len())
				}
				// Drain through a handle that did not enqueue anything.
				drainer := q.NewHandle(99)
				got := make(map[uint64]int, handles*per)
				for {
					it, ok := drainer.Dequeue()
					if !ok {
						break
					}
					got[it.Value]++
				}
				if len(got) != len(want) {
					t.Fatalf("drained %d distinct values, want %d", len(got), len(want))
				}
				for v, n := range want {
					if got[v] != n {
						t.Fatalf("value %d drained %d times, want %d", v, got[v], n)
					}
				}
				if q.Len() != 0 || drainer.Prefetched() != 0 {
					t.Fatalf("Len=%d Prefetched=%d after full drain", q.Len(), drainer.Prefetched())
				}
			})
		}
	}
}

// TestPropertySingleHandleDrainSeesOwnBuffer checks the fallback-sweep flush:
// a lone batched handle that enqueues fewer elements than its batch size and
// immediately drains must still observe every element, because Dequeue
// flushes the handle's own insert buffer before declaring emptiness.
func TestPropertySingleHandleDrainSeesOwnBuffer(t *testing.T) {
	for _, g := range stickyBatchGrid {
		q := NewMultiQueue(MultiQueueConfig{
			Queues: 4, Seed: 11, Stickiness: g.stick, Batch: g.batch, Affinity: g.affinity,
		})
		h := q.NewHandle(1)
		const n = 5 // below every batch size in the grid except 1 and 4
		for v := uint64(0); v < n; v++ {
			h.Enqueue(v)
		}
		seen := map[uint64]bool{}
		for {
			it, ok := h.Dequeue()
			if !ok {
				break
			}
			if seen[it.Value] {
				t.Fatalf("s=%d k=%d: value %d twice", g.stick, g.batch, it.Value)
			}
			seen[it.Value] = true
		}
		if len(seen) != n {
			t.Fatalf("s=%d k=%d: drained %d, want %d", g.stick, g.batch, len(seen), n)
		}
	}
}

// TestPropertyTryDequeueSeesOwnBuffer is the regression test for the
// batched TryDequeue gap: a lone handle whose enqueues are all still in its
// insert buffer must be able to get them back through TryDequeue alone —
// the variant flushes its own buffer and retries before reporting empty.
func TestPropertyTryDequeueSeesOwnBuffer(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 4, Seed: 13, Batch: 8})
	h := q.NewHandle(1)
	const n = 3 // strictly less than Batch: nothing is flushed yet
	for v := uint64(0); v < n; v++ {
		h.Enqueue(v)
	}
	if h.Buffered() != n {
		t.Fatalf("Buffered = %d, want %d", h.Buffered(), n)
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		it, ok := h.TryDequeue(64)
		if !ok {
			t.Fatalf("TryDequeue %d failed with %d elements buffered", i, n-i)
		}
		seen[it.Value] = true
	}
	if len(seen) != n {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), n)
	}
	if _, ok := h.TryDequeue(64); ok {
		t.Fatal("TryDequeue on drained queue returned ok")
	}
}

// TestPropertyTryDequeueBatchedRoutesAroundDeadLockHolder extends the
// per-op liveness test to the sticky/batched mode: with one internal
// queue's lock held by a simulated crashed thread, a batched TryDequeue —
// including its non-blocking buffer flush — must keep making progress and
// never block, because every step on the try path uses try-locks only.
func TestPropertyTryDequeueBatchedRoutesAroundDeadLockHolder(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 8, Seed: 1, Stickiness: 4, Batch: 4})
	h := q.NewHandle(2)
	for v := uint64(0); v < 800; v++ {
		h.Enqueue(v)
	}
	// Keep 3 elements in the insert buffer so the flush path is exercised.
	for v := uint64(800); v < 803; v++ {
		h.Enqueue(v)
	}
	if h.Buffered() == 0 {
		t.Fatal("expected a partial insert buffer")
	}
	victim := q.qs[3]
	if !victim.LockForTest() {
		t.Fatal("could not acquire victim lock")
	}
	defer victim.UnlockForTest()

	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := h.TryDequeue(32); ok {
			got++
			if got >= 300 {
				return
			}
		}
	}
	t.Fatalf("only %d batched dequeues succeeded with one dead queue", got)
}

// TestPropertyPriorityModeStickyBatched checks EnqueuePriority routes
// through the same sticky/batched insert path and respects ordering bias:
// after a flush, the global minimum must come out of an early dequeue.
func TestPropertyPriorityModeStickyBatched(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 4, Seed: 21, Stickiness: 4, Batch: 4})
	h := q.NewHandle(2)
	for p := uint64(1000); p >= 1; p-- {
		h.EnqueuePriority(p, p)
	}
	h.Flush()
	it, ok := h.Dequeue()
	if !ok {
		t.Fatal("dequeue failed")
	}
	if it.Priority > 100 {
		t.Fatalf("first dequeue returned priority %d; relaxation too weak", it.Priority)
	}
}

// counterGrid is the Choices × Stickiness × Batch × Affinity sweep the
// MultiCounter conservation properties cover: the paper's per-op two-choice
// default, the single-choice ablation, each amortisation knob alone, both
// together, a non-divisor batch size so partial flushes are exercised, and
// the shard-affine sampler so conservation holds with stripe-local choices.
var counterGrid = []struct {
	d, stick, batch int
	affinity        float64
}{
	{0, 0, 0, 0}, // zero values normalize to 2/1/1: Algorithm 1 exactly
	{1, 1, 1, 0},
	{2, 4, 1, 0},
	{2, 1, 4, 0},
	{2, 4, 4, 0},
	{4, 8, 8, 0},
	{2, 8, 7, 0}, // 7 never divides the op counts below: Flush moves a partial batch
	{2, 4, 4, 0.25},
	{4, 8, 8, 1}, // whole-ring stripe: affinity's degenerate uniform-width end
}

// TestPropertyMultiCounterConservation is the counter-side conservation
// property the ISSUE demands: for every Choices × Stickiness × Batch
// combination, the sum of flushed increments equals the observed counter
// total — while running, Exact plus each handle's BufferedWeight accounts
// for every issued update; after all handles flush, Exact alone does.
func TestPropertyMultiCounterConservation(t *testing.T) {
	for _, g := range counterGrid {
		g := g
		t.Run(fmt.Sprintf("d%d/s%d/k%d/a%v", g.d, g.stick, g.batch, g.affinity), func(t *testing.T) {
			const workers, per, m = 4, 5000, 16
			mc := NewMultiCounterConfig(MultiCounterConfig{
				Counters: m, Choices: g.d, Stickiness: g.stick, Batch: g.batch, Affinity: g.affinity,
			})
			var wg sync.WaitGroup
			handles := make([]*Handle, workers)
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					h := mc.NewHandle(uint64(w) + 1)
					handles[w] = h
					for i := 0; i < per; i++ {
						if i%3 == 0 {
							h.Add(2) // weighted path shares the buffer
						} else {
							h.Increment()
						}
					}
				}(w)
			}
			wg.Wait()
			// Issued weight per worker: per increments, every third of weight 2.
			perWeight := uint64(0)
			for i := 0; i < per; i++ {
				if i%3 == 0 {
					perWeight += 2
				} else {
					perWeight++
				}
			}
			want := uint64(workers) * perWeight
			var buffered uint64
			for _, h := range handles {
				buffered += h.BufferedWeight()
				if (h.Buffered() == 0) != (h.BufferedWeight() == 0) {
					t.Fatalf("Buffered=%d but BufferedWeight=%d", h.Buffered(), h.BufferedWeight())
				}
				if h.Buffered() >= mc.Batch() {
					t.Fatalf("Buffered=%d not below Batch=%d", h.Buffered(), mc.Batch())
				}
			}
			if got := mc.Exact() + buffered; got != want {
				t.Fatalf("Exact+buffered = %d, want %d issued", got, want)
			}
			for _, h := range handles {
				h.Flush()
				if h.Buffered() != 0 || h.BufferedWeight() != 0 {
					t.Fatalf("buffer not empty after Flush")
				}
				h.Flush() // idempotent on an empty buffer
			}
			if got := mc.Exact(); got != want {
				t.Fatalf("Exact = %d after all flushes, want %d", got, want)
			}
		})
	}
}

// TestPropertyMultiCounterBatchAutoFlush checks the batch boundary: the k-th
// buffered increment publishes the whole batch, so a lone handle's buffer
// occupancy cycles through 1..k-1, 0 and Exact advances in k-sized steps.
func TestPropertyMultiCounterBatchAutoFlush(t *testing.T) {
	const m, k = 8, 4
	mc := NewMultiCounterConfig(MultiCounterConfig{Counters: m, Batch: k})
	h := mc.NewHandle(1)
	for i := 1; i <= 3*k; i++ {
		h.Increment()
		if wantBuf := i % k; h.Buffered() != wantBuf {
			t.Fatalf("after %d increments Buffered = %d, want %d", i, h.Buffered(), wantBuf)
		}
		if wantExact := uint64(i - i%k); mc.Exact() != wantExact {
			t.Fatalf("after %d increments Exact = %d, want %d", i, mc.Exact(), wantExact)
		}
	}
}

// TestPropertyConcurrentStickyBatchedConservation runs the conservation
// property under real concurrency: producers and consumers in sticky/batched
// mode, then a quiescent flush + drain accounting for every element.
func TestPropertyConcurrentStickyBatchedConservation(t *testing.T) {
	for _, g := range stickyBatchGrid {
		g := g
		t.Run(fmt.Sprintf("s%d/k%d/a%v", g.stick, g.batch, g.affinity), func(t *testing.T) {
			const producers, consumers, per = 4, 2, 3000
			q := NewMultiQueue(MultiQueueConfig{
				Queues: 16, Seed: 31, Stickiness: g.stick, Batch: g.batch, Affinity: g.affinity,
			})
			var wg sync.WaitGroup
			prodHandles := make([]*MQHandle, producers)
			consHandles := make([]*MQHandle, consumers)
			consumed := make([][]uint64, consumers)
			wg.Add(producers + consumers)
			for p := 0; p < producers; p++ {
				go func(p int) {
					defer wg.Done()
					h := q.NewHandle(uint64(p) + 10)
					prodHandles[p] = h
					for i := 0; i < per; i++ {
						h.Enqueue(uint64(p*per + i))
					}
				}(p)
			}
			for c := 0; c < consumers; c++ {
				go func(c int) {
					defer wg.Done()
					h := q.NewHandle(uint64(c) + 100)
					consHandles[c] = h
					for len(consumed[c]) < per/2 {
						if it, ok := h.Dequeue(); ok {
							consumed[c] = append(consumed[c], it.Value)
						}
					}
				}(c)
			}
			wg.Wait()
			for _, h := range prodHandles {
				h.Flush()
			}
			drainer := q.NewHandle(999)
			seen := make(map[uint64]bool, producers*per)
			record := func(v uint64) {
				if seen[v] {
					t.Fatalf("value %d observed twice", v)
				}
				seen[v] = true
			}
			for _, run := range consumed {
				for _, v := range run {
					record(v)
				}
			}
			// A stopped consumer may still hold a prefetched run: those
			// elements left the shared structure and must be accounted here.
			for _, h := range consHandles {
				for h.Prefetched() > 0 {
					it, ok := h.Dequeue()
					if !ok {
						t.Fatal("Prefetched > 0 but Dequeue failed")
					}
					record(it.Value)
				}
			}
			for {
				it, ok := drainer.Dequeue()
				if !ok {
					break
				}
				record(it.Value)
			}
			if len(seen) != producers*per {
				t.Fatalf("accounted %d values, want %d", len(seen), producers*per)
			}
		})
	}
}
