package core

import (
	"sort"
	"testing"

	"repro/internal/heap"
)

// TestSnapshotElementsRoundTrip pins the durability snapshotter's core
// contract: SnapshotElements reports exactly the queue's contents, leaves
// every element in the structure (same multiset before and after), and a
// subsequent full dequeue still yields everything.
func TestSnapshotElementsRoundTrip(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 4, Batch: 4, Seed: 7})
	h := q.NewHandle(1)
	const n = 100
	for i := 0; i < n; i++ {
		h.EnqueuePriority(uint64(i%13), uint64(1000+i))
	}
	h.Flush()

	snap := q.SnapshotElements(nil)
	if len(snap) != n {
		t.Fatalf("snapshot captured %d of %d elements", len(snap), n)
	}
	if q.Len() != n {
		t.Fatalf("snapshot drained the structure: Len=%d", q.Len())
	}
	// Capture again: identical multiset.
	snap2 := q.SnapshotElements(nil)
	if !sameMultiset(snap, snap2) {
		t.Fatalf("second snapshot differs from first")
	}
	// Everything still dequeues.
	got := 0
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
		got++
	}
	if got != n {
		t.Fatalf("dequeued %d of %d after snapshot", got, n)
	}
}

// TestSnapshotElementsSkipsTombstones checks the capture excludes removed
// elements and consumes their tombstones (Invalidations == Reclaimed).
func TestSnapshotElementsSkipsTombstones(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 2, Seed: 3})
	h := q.NewHandle(1)
	var refs []ElemRef
	for i := 0; i < 20; i++ {
		refs = append(refs, h.EnqueuePriorityRef(uint64(i), uint64(i)))
	}
	for i := 0; i < 20; i += 2 {
		if !h.Remove(refs[i]) {
			t.Fatalf("Remove(%d) failed", i)
		}
	}
	snap := q.SnapshotElements(nil)
	if len(snap) != 10 {
		t.Fatalf("snapshot captured %d, want 10 live", len(snap))
	}
	st := q.Stats()
	if st.Invalidations != st.Reclaimed {
		t.Fatalf("tombstones not consumed: armed=%d reclaimed=%d", st.Invalidations, st.Reclaimed)
	}
}

// TestReturnPrefetched pins the lease-quiesce step: prefetched elements go
// back to the shared structure, the handle stays usable, and nothing is
// lost or duplicated.
func TestReturnPrefetched(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 2, Batch: 8, Seed: 5})
	h := q.NewHandle(1)
	for i := 0; i < 32; i++ {
		h.EnqueuePriority(uint64(i), uint64(i))
	}
	h.Flush()
	if _, ok := h.Dequeue(); !ok {
		t.Fatalf("Dequeue refused")
	}
	if h.Prefetched() == 0 {
		t.Fatalf("expected a prefetch remainder with Batch=8")
	}
	pre := h.Prefetched()
	if q.Len() != 31-pre {
		t.Fatalf("Len=%d with %d prefetched", q.Len(), pre)
	}
	h.ReturnPrefetched()
	if h.Prefetched() != 0 {
		t.Fatalf("prefetch not cleared")
	}
	if q.Len() != 31 {
		t.Fatalf("Len=%d after return, want 31", q.Len())
	}
	// Handle still works and total conservation holds.
	got := 0
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
		got++
	}
	if got != 31 {
		t.Fatalf("dequeued %d of 31 after ReturnPrefetched", got)
	}
}

func sameMultiset(a, b []heap.Item) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(it heap.Item) [2]uint64 { return [2]uint64{it.Priority, it.Value} }
	as, bs := append([]heap.Item(nil), a...), append([]heap.Item(nil), b...)
	less := func(s []heap.Item) func(i, j int) bool {
		return func(i, j int) bool {
			return key(s[i]) != key(s[j]) && (s[i].Priority < s[j].Priority ||
				(s[i].Priority == s[j].Priority && s[i].Value < s[j].Value))
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
