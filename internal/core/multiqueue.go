package core

import (
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/cpq"
	"repro/internal/fail"
	"repro/internal/heap"
	"repro/internal/rng"
	"repro/internal/trace"
)

// MultiQueue is the relaxed queue of Algorithm 2: m linearizable priority
// queues; Enqueue stamps the element with the current clock value and adds
// it to a random queue; Dequeue reads the heads of d random queues (the
// paper's default is d = 2) and deletes from the one with the smallest
// (oldest / highest-priority) head.
//
// Used with clock priorities it is a relaxed FIFO queue whose dequeues
// return one of the O(m·log m) oldest elements w.h.p.; used with explicit
// priorities (EnqueuePriority) it is the MultiQueue relaxed priority queue
// of Rihani, Sanders and Dementiev, with the buffer assumption Section 7
// states: analysis guarantees apply while no insertion carries a higher
// priority than an element already removed.
type MultiQueue struct {
	qs        []*cpq.Queue
	clk       clock.Clock
	blk       blockClock // non-nil when clk supports block reservation
	m         int
	d         int
	stick     int
	batch     int
	affinity  float64
	backing   cpq.Backing
	lockedTop bool
	nextID    atomic.Uint64 // handle ids, assigned at NewHandle
}

// blockClock is the optional fast path a clock can offer batched enqueuers:
// reserve n consecutive stamps with one shared atomic operation.
type blockClock interface {
	Block(n int) uint64
}

// MultiQueueConfig configures NewMultiQueue. The zero value of optional
// fields selects defaults.
type MultiQueueConfig struct {
	// Queues is m, the number of internal priority queues. Required.
	Queues int
	// Backing selects the per-queue sequential structure (default binary
	// heap; ablation A4 sweeps this).
	Backing cpq.Backing
	// Clock supplies enqueue timestamps (default: a fresh Tick clock, which
	// gives strictly unique, consistently ordered stamps).
	Clock clock.Clock
	// Capacity is the per-queue preallocation hint (default 1024).
	Capacity int
	// Seed feeds per-queue skiplist level generators.
	Seed uint64
	// Choices is d, the number of random queue heads a dequeue compares
	// before deleting from the smallest. 0 selects the paper's d = 2;
	// d = 1 is the divergent single-choice baseline (ablation A1); d > 2
	// tightens rank quality at the cost of extra ReadMin traffic. Negative
	// values panic. Enqueues always use one uniform choice, as in
	// Algorithm 2.
	Choices int
	// Stickiness is the operation-stickiness window s: a handle re-uses its
	// randomly chosen queue (for inserts) and queue pair (for removes) for
	// up to s consecutive operations before re-rolling. The window is
	// charged per element and a choice is dropped once a full batch no
	// longer fits, so a random choice serves max(s, Batch) consecutive
	// elements: batching already moves Batch elements per choice, and
	// stickiness only extends re-use beyond a single batch when s > Batch.
	// 0 or 1 means fresh random choices every operation (with Batch <= 1
	// this is Algorithm 2 exactly). Larger s amortises the RNG draws and
	// keeps a handle on warm cache lines at the cost of extra rank
	// relaxation (re-measure with cmd/quality -queue).
	Stickiness int
	// Batch is the batching factor k: handles buffer up to k enqueues and
	// flush them with one cpq.AddBatch, and prefetch up to k elements per
	// dequeue refill with one cpq.DeleteMinUpTo — one lock acquisition and
	// one cached-top publish per k elements instead of per element. 0 or 1
	// means per-operation locking. Buffered enqueues are invisible to other
	// handles until the batch flushes (call MQHandle.Flush at quiescence);
	// prefetched elements are already dequeued from the shared structure.
	Batch int
	// Affinity is the shard-affinity fraction a ∈ [0, 1] of the sticky
	// dequeue sampler (DESIGN.md §7): each handle owns a home stripe of
	// w = max(Choices, ⌈a·Queues⌉) contiguous queue indices, placed
	// deterministically from its handle id, and every candidate refresh
	// draws Choices−1 candidates from the stripe plus one uniform escape
	// candidate, rotating the stripe periodically so no region starves.
	// 0 (the default) keeps every draw uniform over all queues — the
	// paper's assumption, tracing identically to the pre-affinity sampler
	// except where the candidate dedupe resamples a collision (~d²/2m of
	// refreshes).
	// Enqueues always insert uniformly, so the insert-side load balance the
	// analysis needs is unaffected; the rank-drift cost of any setting is
	// measured by cmd/quality -queue -affinity. Values outside [0, 1] panic.
	Affinity float64
	// LockedTopRead disables the per-queue lock-free top cache (ablation
	// A5): every ReadMin in the d-choice comparison and the empty-queue
	// scan then takes the queue's lock and Peeks. Benchmarks use it to
	// measure what the cached read path is worth; leave it false otherwise.
	LockedTopRead bool
}

// NewMultiQueue returns a MultiQueue with the given configuration.
func NewMultiQueue(cfg MultiQueueConfig) *MultiQueue {
	if cfg.Queues <= 0 {
		panic("core: MultiQueueConfig.Queues must be > 0")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewTick()
	}
	if cfg.Choices < 0 {
		panic("core: MultiQueueConfig.Choices must be >= 0")
	}
	if cfg.Choices == 0 {
		cfg.Choices = 2
	}
	if cfg.Stickiness < 1 {
		cfg.Stickiness = 1
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if !(cfg.Affinity >= 0 && cfg.Affinity <= 1) { // rejects NaN too
		panic("core: MultiQueueConfig.Affinity must be in [0, 1]")
	}
	sm := rng.NewSplitMix64(cfg.Seed)
	mq := &MultiQueue{
		qs:        make([]*cpq.Queue, cfg.Queues),
		clk:       cfg.Clock,
		m:         cfg.Queues,
		d:         cfg.Choices,
		stick:     cfg.Stickiness,
		batch:     cfg.Batch,
		affinity:  cfg.Affinity,
		backing:   cfg.Backing,
		lockedTop: cfg.LockedTopRead,
	}
	if cfg.Batch > 1 {
		mq.blk, _ = cfg.Clock.(blockClock)
	}
	for i := range mq.qs {
		mq.qs[i] = cpq.New(cfg.Backing, cfg.Capacity, sm.Next())
		mq.qs[i].SetLockedRead(cfg.LockedTopRead)
	}
	return mq
}

// Choices returns the configured number of dequeue choices d (>= 1).
func (q *MultiQueue) Choices() int { return q.d }

// Stickiness returns the configured stickiness window s (>= 1).
func (q *MultiQueue) Stickiness() int { return q.stick }

// Batch returns the configured batching factor k (>= 1).
func (q *MultiQueue) Batch() int { return q.batch }

// Affinity returns the configured shard-affinity fraction (0 = uniform).
func (q *MultiQueue) Affinity() float64 { return q.affinity }

// Backing returns the configured per-queue sequential backing.
func (q *MultiQueue) Backing() cpq.Backing { return q.backing }

// LockedTopRead reports whether the lock-free top cache is disabled
// (ablation A5).
func (q *MultiQueue) LockedTopRead() bool { return q.lockedTop }

// M returns the number of internal queues.
func (q *MultiQueue) M() int { return q.m }

// Len returns the total number of stored elements (exact at quiescence).
// In batched mode, elements a handle still buffers (MQHandle.Buffered) are
// not counted until that handle flushes, and prefetched elements
// (MQHandle.Prefetched) are already excluded — flush all handles before a
// Len/Sizes audit.
func (q *MultiQueue) Len() int {
	n := 0
	for _, pq := range q.qs {
		n += pq.Len()
	}
	return n
}

// MQStats aggregates the per-queue event counters of cpq.QueueStats across
// all m internal queues — the publication-elision and lock-contention
// signals dlzd's /metrics exports per tenant. Counters are monotonic; the
// snapshot is racy under concurrency, which monitoring tolerates.
type MQStats struct {
	// Elisions counts critical sections that skipped the top-word publish
	// entirely (covered inserts, deletes on published-empty queues).
	Elisions uint64
	// Publications counts critical sections that republished a top word.
	Publications uint64
	// LockContended counts blocking lock acquisitions that entered the
	// spin-backoff slow path.
	LockContended uint64
	// Invalidations counts tombstones armed by Remove/RemoveBatch/Replace
	// across all queues; Reclaimed counts those physically compacted out by
	// later pops. Invalidations − Reclaimed is the live tombstone load the
	// structure currently carries.
	Invalidations uint64
	Reclaimed     uint64
}

// Stats sums the internal queues' event counters without taking any locks.
func (q *MultiQueue) Stats() MQStats {
	var s MQStats
	for _, pq := range q.qs {
		qs := pq.Stats()
		s.Elisions += qs.Elisions
		s.Publications += qs.Publications
		s.LockContended += qs.LockContended
		s.Invalidations += qs.Invalidations
		s.Reclaimed += qs.Reclaimed
	}
	return s
}

// Sizes copies the per-queue element counts into dst (len must equal M) —
// the queue counterpart of MultiCounter.Snapshot, used to observe how evenly
// the random-insert rule spreads elements. Exact at quiescence.
func (q *MultiQueue) Sizes(dst []int) {
	if len(dst) != q.m {
		panic("core: Sizes dst length mismatch")
	}
	for i, pq := range q.qs {
		dst[i] = pq.Len()
	}
}

// MQHandle binds a MultiQueue to one goroutine's private generator and, in
// sticky/batched mode, the handle-local fast-path state: the sticky samplers
// holding the current queue choices, the insert buffer awaiting its batch
// flush, and the prefetched dequeue run. A handle must be used by one
// goroutine at a time.
type MQHandle struct {
	q  *MultiQueue
	id uint64
	r  *rng.Xoshiro256

	// Sticky sampling state: one uniform choice for inserts (Algorithm 2's
	// enqueue), d choices for removals.
	enq Sampler
	deq Sampler

	// Batching state: pending inserts and the prefetched dequeue run. Both
	// slices are carved from one fixed backing array sized at NewHandle with
	// full-slice expressions capping them at Batch, so the steady-state hot
	// path never grows either and performs zero allocations per operation
	// (cpq.AddBatch reads at most len(inBuf) <= Batch items;
	// cpq.DeleteMinUpTo appends at most Batch items into cap-Batch outBuf).
	// BenchmarkMultiQueueHotPathAllocs and TestMQHandleHotPathZeroAlloc
	// enforce the invariant.
	inBuf  []heap.Item
	outBuf []heap.Item
	outPos int

	// rmBuf stages one per-queue run of a RemoveBatch as heap.Items for
	// cpq.InvalidateBatch; like inBuf/outBuf it is carved from the fixed
	// backing array, so batched removals allocate nothing.
	rmBuf []heap.Item

	// Block-reserved clock stamps (batched mode over a Tick clock).
	stampNext uint64
	stampLeft int

	// closed marks a handle retired by Close: its buffers are drained and
	// every further operation is a programming error.
	closed bool
}

// NewHandle returns a per-goroutine handle seeded with seed, inheriting the
// MultiQueue's choice count, stickiness window, batching factor and affinity
// fraction. Handles are numbered in creation order (MQHandle.ID); the id
// deterministically places the handle's home stripe when Affinity > 0, so a
// fixed creation order reproduces the same stripe layout run to run. The
// enqueue sampler stays uniform in every mode — Algorithm 2 inserts
// uniformly, and the insert-side balance is what the analysis leans on.
func (q *MultiQueue) NewHandle(seed uint64) *MQHandle {
	id := q.nextID.Add(1) - 1
	h := &MQHandle{
		q:   q,
		id:  id,
		r:   rng.NewXoshiro256(seed),
		enq: NewSampler(q.m, 1, q.stick),
		deq: NewAffineSampler(q.m, q.d, q.stick, q.affinity, id),
	}
	if q.batch > 1 {
		backing := make([]heap.Item, 3*q.batch)
		h.inBuf = backing[0:0:q.batch]
		h.outBuf = backing[q.batch : q.batch : 2*q.batch]
		h.rmBuf = backing[2*q.batch : 2*q.batch : 3*q.batch]
	}
	return h
}

// Queue returns the underlying MultiQueue.
func (h *MQHandle) Queue() *MultiQueue { return h.q }

// ID returns the handle's creation-order id (0 for the first handle), the
// value that seeds its home stripe when the queue runs with Affinity > 0.
func (h *MQHandle) ID() uint64 { return h.id }

// Buffered returns the number of enqueued elements held in this handle's
// insert buffer, not yet visible to other handles. Zero unless Batch > 1.
func (h *MQHandle) Buffered() int { return len(h.inBuf) }

// Rerolls returns the number of empty/contended dequeue outcomes that
// requested fresh sticky candidates (Sampler.Reroll) over this handle's
// lifetime — the sampler-pressure signal dlzd's /metrics aggregates.
func (h *MQHandle) Rerolls() uint64 { return h.deq.Rerolls() }

// Closed reports whether Close has retired this handle.
func (h *MQHandle) Closed() bool { return h.closed }

// Close retires the handle: buffered inserts are flushed to the shared
// structure, unconsumed prefetched elements are returned to it (they were
// already removed by a DeleteMinUpTo refill and would otherwise be lost
// with the handle — the abandoned-handle bug this contract fixes), and the
// handle is invalidated. After Close, Buffered and Prefetched are zero and
// any further operation panics; closing an already-closed handle is a no-op.
// Owners that cannot guarantee a final Flush (connection handlers, pools,
// lease managers like dlzd) must Close handles they abandon, or the
// structure silently loses the buffered elements.
func (h *MQHandle) Close() {
	if h.closed {
		return
	}
	h.Flush()
	if rest := h.outBuf[h.outPos:]; len(rest) > 0 {
		// Return the prefetch remainder through the same uniform sticky
		// insert rule as an enqueue batch: these elements are logically
		// still queued, they were only staged for this handle's consumption.
		h.q.qs[h.enqTarget(len(rest))].AddBatch(rest)
	}
	h.outBuf, h.outPos = h.outBuf[:0], 0
	h.closed = true
}

// checkOpen panics when the handle has been closed; every mutating
// entry point calls it (one predictable branch on the hot path).
func (h *MQHandle) checkOpen() {
	if h.closed {
		panic("core: operation on closed MQHandle")
	}
}

// Prefetched returns the number of already-dequeued elements this handle
// holds and will return from upcoming Dequeue calls. Zero unless Batch > 1.
func (h *MQHandle) Prefetched() int { return len(h.outBuf) - h.outPos }

// Flush publishes any buffered inserts to the shared structure with one
// batched add. Call at quiescence (before Len/Sizes audits or a drain by
// another handle); a handle with an empty buffer flushes for free.
func (h *MQHandle) Flush() {
	if len(h.inBuf) == 0 {
		return
	}
	if fail.Enabled {
		// Fires only with a non-empty buffer, before any element publishes:
		// a panic here interrupts the batch flush with inBuf fully intact,
		// so a recovering owner can retry Flush (or Close) without losing a
		// buffered element. The error outcome is ignored — Flush has no
		// refusal path.
		_ = fail.Inject(fail.SiteCoreFlush)
	}
	h.q.qs[h.enqTarget(len(h.inBuf))].AddBatch(h.inBuf)
	h.inBuf = h.inBuf[:0]
}

// enqTarget picks the insert queue through the sticky uniform sampler and
// charges n logical operations against the stickiness window. A choice
// serves at most max(stick, batch) elements — exactly stick when batch
// divides into it, one whole batch when batch exceeds the window (the
// sampler never splits a batch across choices).
func (h *MQHandle) enqTarget(n int) int {
	i := h.enq.Candidates(h.r, n)[0]
	h.enq.Charge(n)
	return i
}

// deqBest picks the d-choice removal target: the sticky candidate set's
// queue with the smallest cached top word, re-read fresh on every call
// exactly as Algorithm 2 compares possibly-stale heads — one atomic load per
// candidate, no locks. Queues whose word carries the mid-update sentinel
// rank behind every real minimum (their lock would refuse a try anyway), and
// stable-empty queues rank last; the winning key is returned alongside so
// callers skip known-empty winners without re-reading the word. The caller
// charges the window via deqCharge with the number of elements actually
// obtained; an empty or contended outcome should call deqReroll so the next
// draw abandons a stale candidate set early.
func (h *MQHandle) deqBest() (int, uint64) {
	return h.deq.BestKeyed(h.r, h.q.batch, h.readTop)
}

// readTop adapts the cached top word's comparison key to the sampler's load
// signature.
func (h *MQHandle) readTop(i int) uint64 { return h.q.qs[i].ReadTop().Key() }

// deqCharge consumes n logical operations from the sticky dequeue window.
func (h *MQHandle) deqCharge(n int) { h.deq.Charge(n) }

// deqReroll requests fresh sticky dequeue candidates for the next draw
// without granting them a new window: an empty or contended outcome charges
// nothing but only inherits the budget the abandoned candidates had left
// (Sampler.Reroll).
func (h *MQHandle) deqReroll() { h.deq.Reroll() }

// insert routes one stamped element through the batching layer: direct Add
// in per-op mode, or buffer-and-flush in batched mode.
func (h *MQHandle) insert(priority, value uint64) {
	if h.q.batch <= 1 {
		h.q.qs[h.enqTarget(1)].Add(priority, value)
		return
	}
	h.inBuf = append(h.inBuf, heap.Item{Priority: priority, Value: value})
	if len(h.inBuf) >= h.q.batch {
		h.Flush()
	}
}

// Enqueue implements Algorithm 2's Enqueue: stamp with the clock, insert
// into a uniformly random queue (sticky across the stickiness window, and
// buffered into one AddBatch per Batch elements in batched mode). It returns
// the priority assigned, which doubles as the element's unique label under a
// Tick clock. The stamp is taken at call time, so batching delays visibility
// but never reorders a handle's own elements.
func (h *MQHandle) Enqueue(value uint64) uint64 {
	h.checkOpen()
	p := h.stamp()
	h.insert(p, value)
	return p
}

// stamp draws the next enqueue timestamp: directly from the clock in per-op
// mode, or from a handle-owned block of Batch consecutive ticks reserved
// with one shared atomic operation when the clock supports it.
func (h *MQHandle) stamp() uint64 {
	if h.q.blk == nil {
		return h.q.clk.Now()
	}
	if h.stampLeft == 0 {
		h.stampNext = h.q.blk.Block(h.q.batch)
		h.stampLeft = h.q.batch
	}
	p := h.stampNext
	h.stampNext++
	h.stampLeft--
	return p
}

// EnqueuePriority inserts with an explicit priority (relaxed priority-queue
// mode), bypassing the clock but using the same sticky/batched insert path.
func (h *MQHandle) EnqueuePriority(priority, value uint64) {
	h.checkOpen()
	h.insert(priority, value)
}

// ElemRef locates one resident element for later Remove/Replace: the
// internal queue it was inserted into plus the exact (priority, value) pair.
// A ref is issued by EnqueuePriorityRef and stays valid until the element
// leaves the structure — by being dequeued, removed, or returned to a
// different queue by MQHandle.Close's prefetch give-back. Callers that need
// removal must therefore track element residency themselves (a map keyed by
// value, maintained at every dequeue, is the usual shape — see
// internal/mempool); handing a stale ref to Remove corrupts the structure's
// length accounting permanently, exactly as cpq.Queue.Invalidate documents.
type ElemRef struct {
	// Queue is the internal queue index the element resides in.
	Queue int
	// Priority and Value identify the element within that queue. Value must
	// be unique among the structure's live and tombstoned elements.
	Priority uint64
	Value    uint64
}

// EnqueuePriorityRef inserts with an explicit priority like EnqueuePriority
// but returns a reference locating the element, so the caller can later
// Remove or Replace it. Located inserts cannot ride the insert buffer — the
// target queue must be known when the ref is issued — so each call performs
// one immediate cpq.Add through the sticky uniform insert rule: same queue
// choice distribution as the batched path, one lock acquisition per element.
// Workloads that never remove should prefer EnqueuePriority.
func (h *MQHandle) EnqueuePriorityRef(priority, value uint64) ElemRef {
	h.checkOpen()
	i := h.enqTarget(1)
	h.q.qs[i].Add(priority, value)
	return ElemRef{Queue: i, Priority: priority, Value: value}
}

// Remove marks the referenced element dead in its queue (lazy tombstone,
// DESIGN.md §9): it never surfaces from a dequeue, Len/Sizes exclude it
// immediately, and a later pop physically reclaims it. Returns false if the
// element was already tombstoned. The caller must guarantee the ref is
// current (see ElemRef); in particular an element sitting in a handle's
// prefetch buffer is no longer resident — check DropPrefetched first.
func (h *MQHandle) Remove(ref ElemRef) bool {
	h.checkOpen()
	return h.q.qs[ref.Queue].Invalidate(ref.Priority, ref.Value)
}

// RemoveBatch removes a set of referenced elements, amortizing locks the way
// the bulk insert/dequeue paths do: refs are grouped by queue (an in-place
// insertion sort — batches are small and typically nearly sorted) and each
// group is staged through the handle's fixed removal buffer into one
// cpq.InvalidateBatch — one lock acquisition and at most one top-word
// publication per queue touched, zero allocations in batched mode. The slice
// is reordered in place. Returns the number of elements newly tombstoned.
// Per-op handles (Batch <= 1) fall back to one Remove per ref.
func (h *MQHandle) RemoveBatch(refs []ElemRef) int {
	h.checkOpen()
	if len(h.rmBuf) != 0 {
		panic("core: RemoveBatch re-entered") // rmBuf is always left empty
	}
	armed := 0
	if cap(h.rmBuf) == 0 {
		for _, ref := range refs {
			if h.q.qs[ref.Queue].Invalidate(ref.Priority, ref.Value) {
				armed++
			}
		}
		return armed
	}
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j-1].Queue > refs[j].Queue; j-- {
			refs[j-1], refs[j] = refs[j], refs[j-1]
		}
	}
	flush := func(queue int) {
		if len(h.rmBuf) > 0 {
			armed += h.q.qs[queue].InvalidateBatch(h.rmBuf)
			h.rmBuf = h.rmBuf[:0]
		}
	}
	for i, ref := range refs {
		if i > 0 && refs[i-1].Queue != ref.Queue {
			flush(refs[i-1].Queue)
		}
		if len(h.rmBuf) == cap(h.rmBuf) {
			flush(ref.Queue)
		}
		h.rmBuf = append(h.rmBuf, heap.Item{Priority: ref.Priority, Value: ref.Value})
	}
	if len(refs) > 0 {
		flush(refs[len(refs)-1].Queue)
	}
	return armed
}

// Replace atomically-enough swaps one element for another: the old ref is
// tombstoned and the replacement inserted with a fresh sticky queue choice,
// returning the new element's ref. The two steps are not one critical
// section — a concurrent dequeue may observe the gap where neither element
// is obtainable, which relaxed-queue callers already tolerate (it is
// indistinguishable from the element being held in another handle's
// prefetch). Returns ok=false without inserting when the old ref was already
// tombstoned — under the ElemRef residency contract that means a racing
// Replace won, and inserting would duplicate the value.
func (h *MQHandle) Replace(old ElemRef, priority, value uint64) (ElemRef, bool) {
	h.checkOpen()
	if !h.Remove(old) {
		return ElemRef{}, false
	}
	return h.EnqueuePriorityRef(priority, value), true
}

// DropPrefetched searches this handle's prefetch buffer for the element with
// the given value and, if present, removes it from the buffer, reporting
// whether it did. Prefetched elements were already dequeued from the shared
// structure, so a Remove aimed at one would arm a tombstone that nothing can
// ever reclaim; a removal protocol over batched handles must try
// DropPrefetched on every handle that might have prefetched the element
// before falling through to Remove. Order of the remaining prefetch run is
// preserved. O(Prefetched()) — the buffer holds at most Batch elements.
func (h *MQHandle) DropPrefetched(value uint64) bool {
	h.checkOpen()
	for i := h.outPos; i < len(h.outBuf); i++ {
		if h.outBuf[i].Value == value {
			h.outBuf = append(h.outBuf[:i], h.outBuf[i+1:]...)
			return true
		}
	}
	return false
}

// Dequeue implements Algorithm 2's Dequeue, generalized to the configured
// choice count: sample d random queues, compare their cached top words,
// DeleteMin on the apparently smallest. As in the paper, the comparison uses
// possibly stale information; the deletion itself is linearizable. A chosen
// queue whose word is stable-empty is skipped without touching its lock —
// the word's linearization argument (DESIGN.md §6) makes that observation as
// good as a locked Peek. If the chosen queue turns out empty the operation
// retries, and after 2·m fruitless draws it scans all queues once (flushing
// this handle's own insert buffer first, so a single-handle drain never
// misses its buffered elements); the scan likewise trusts stable-empty words
// and locks only queues that might hold elements, so a drain of an
// all-empty structure performs zero lock acquisitions; ok is false only when
// every queue was observed empty.
//
// In batched mode the winner is drained with DeleteMinUpTo(Batch) and the
// run beyond the first element is served from the handle's prefetch buffer
// by subsequent calls — one lock acquisition per Batch elements.
func (h *MQHandle) Dequeue() (it heap.Item, ok bool) {
	h.checkOpen()
	if h.outPos < len(h.outBuf) {
		it = h.outBuf[h.outPos]
		h.outPos++
		return it, true
	}
	for attempt := 0; attempt < 2*h.q.m; attempt++ {
		i, key := h.deqBest()
		if fail.Enabled && fail.Inject(fail.SiteCoreReroll) != nil {
			// Injected reroll storm: discard the draw as if its queue were
			// contended, exercising the sampler's reroll inheritance.
			h.deqReroll()
			continue
		}
		if key != cpq.TopKeyEmpty {
			if it, ok = h.deleteFrom(i); ok {
				return it, true
			}
		}
		h.deqReroll()
	}
	// Fallback sweep so that draining terminates deterministically. Our own
	// pending inserts are flushed first: they are logically enqueued and a
	// drain must observe them.
	h.Flush()
	for i := 0; i < h.q.m; i++ {
		if h.q.qs[i].ReadTop().StableEmpty() {
			continue
		}
		if it, ok = h.deleteFrom(i); ok {
			return it, true
		}
	}
	return heap.Item{}, false
}

// deleteFrom removes from queue i: a single DeleteMin in per-op mode, or a
// DeleteMinUpTo(Batch) refill in batched mode with the first element
// returned and the rest parked in the prefetch buffer.
func (h *MQHandle) deleteFrom(i int) (heap.Item, bool) {
	if h.q.batch <= 1 {
		it, ok := h.q.qs[i].DeleteMin()
		if ok {
			h.deqCharge(1)
		}
		return it, ok
	}
	h.outBuf = h.q.qs[i].DeleteMinUpTo(h.q.batch, h.outBuf[:0])
	if len(h.outBuf) == 0 {
		h.outPos = 0
		return heap.Item{}, false
	}
	h.deqCharge(len(h.outBuf))
	h.outPos = 1
	return h.outBuf[0], true
}

// DequeueD overrides the configured choice count for one operation: it
// reads the heads of d fresh (never sticky) random queues and deletes from
// the best. d = 1 is the divergent single-choice baseline (ablation A1 for
// queues); prefer MultiQueueConfig.Choices for a structure-wide setting —
// DequeueD exists for per-call sweeps. The retry/sweep structure matches
// Dequeue.
func (h *MQHandle) DequeueD(d int) (it heap.Item, ok bool) {
	if d < 1 {
		panic("core: DequeueD needs d >= 1")
	}
	h.checkOpen()
	if h.outPos < len(h.outBuf) {
		it = h.outBuf[h.outPos]
		h.outPos++
		return it, true
	}
	for attempt := 0; attempt < 2*h.q.m; attempt++ {
		best := h.r.Intn(h.q.m)
		bestTop := h.q.qs[best].ReadTop().Key()
		for k := 1; k < d; k++ {
			j := h.r.Intn(h.q.m)
			if top := h.q.qs[j].ReadTop().Key(); top < bestTop {
				best, bestTop = j, top
			}
		}
		if bestTop == cpq.TopKeyEmpty {
			// The winning key already encodes stable-empty; skip without
			// re-reading the word (a second load could disagree with the
			// one the comparison ranked).
			continue
		}
		if it, ok = h.q.qs[best].DeleteMin(); ok {
			return it, true
		}
	}
	h.Flush()
	for i := 0; i < h.q.m; i++ {
		if h.q.qs[i].ReadTop().StableEmpty() {
			continue
		}
		if it, ok = h.q.qs[i].DeleteMin(); ok {
			return it, true
		}
	}
	return heap.Item{}, false
}

// TryDequeue is the lock-avoiding variant used by throughput benchmarks:
// it compares the d sampled cached top words and only try-locks the winner,
// re-drawing on contention instead of spinning. attempts bounds the number
// of draws; ok is false if no element was obtained within the budget.
// Nothing on this path ever blocks on a queue lock, so it routes around
// dead or stalled lock holders in every mode. The comparison already ranks
// mid-update queues behind real minima, and a winner whose word is
// stable-empty is skipped before the try-lock — no CAS, no cache-line
// bounce — so spinning over an empty structure costs only atomic loads.
// Like Dequeue, a batched handle serves its prefetch buffer first, uses the
// sticky candidate set, refills with a try-locked DeleteMinUpTo, and before
// giving up attempts a non-blocking flush of its own insert buffer
// (TryAddBatch to random queues) and retries the budget once.
func (h *MQHandle) TryDequeue(attempts int) (it heap.Item, ok bool) {
	h.checkOpen()
	if h.outPos < len(h.outBuf) {
		it = h.outBuf[h.outPos]
		h.outPos++
		return it, true
	}
	for pass := 0; pass < 2; pass++ {
		for a := 0; a < attempts; a++ {
			i, key := h.deqBest()
			if fail.Enabled && fail.Inject(fail.SiteCoreReroll) != nil {
				h.deqReroll()
				continue
			}
			if key == cpq.TopKeyEmpty {
				h.deqReroll()
				continue
			}
			if h.q.batch <= 1 {
				if it, okPop, acquired := h.q.qs[i].TryDeleteMin(); acquired && okPop {
					h.deqCharge(1)
					return it, true
				}
			} else if out, acquired := h.q.qs[i].TryDeleteMinUpTo(h.q.batch, h.outBuf[:0]); acquired && len(out) > 0 {
				h.outBuf = out
				h.outPos = 1
				h.deqCharge(len(out))
				return out[0], true
			}
			// Contended or empty: abandon the sticky pair for a fresh draw.
			h.deqReroll()
		}
		if len(h.inBuf) == 0 {
			break
		}
		if !h.tryFlush(attempts) {
			break
		}
	}
	return heap.Item{}, false
}

// tryFlush attempts to publish the insert buffer without blocking: up to
// attempts random queues are offered the batch with TryAddBatch. Reports
// whether the buffer was published.
func (h *MQHandle) tryFlush(attempts int) bool {
	for a := 0; a < attempts; a++ {
		if h.q.qs[h.r.Intn(h.q.m)].TryAddBatch(h.inBuf) {
			h.inBuf = h.inBuf[:0]
			return true
		}
	}
	return false
}

// EnqueueTraced performs Enqueue and records the operation; the assigned
// priority is the element's label for the dlin queue-spec replay. In
// batched mode the linearization stamp is taken at buffering time, before
// the element is visible to other handles; the replay stays sound (the
// relaxed spec treats dequeue-empty as a zero-cost no-op and labels stay
// unique) but dequeue rank costs are then measured against all logically
// enqueued labels, including still-buffered ones — the same accounting as
// quality.MeasureDequeueRank.
func (h *MQHandle) EnqueueTraced(value uint64, rec *trace.Recorder, log *trace.ThreadLog) uint64 {
	start := rec.Stamp()
	p := h.Enqueue(value)
	lin := rec.Stamp()
	log.Record(trace.Event{Kind: trace.KindEnq, Start: start, Lin: lin, End: lin, Arg: p})
	return p
}

// DequeueTraced performs Dequeue and records the operation with the removed
// element's label.
func (h *MQHandle) DequeueTraced(rec *trace.Recorder, log *trace.ThreadLog) (heap.Item, bool) {
	start := rec.Stamp()
	it, ok := h.Dequeue()
	lin := rec.Stamp()
	log.Record(trace.Event{Kind: trace.KindDeq, Start: start, Lin: lin, End: lin, Ret: it.Priority, OK: ok})
	return it, ok
}
