package core

import (
	"repro/internal/clock"
	"repro/internal/cpq"
	"repro/internal/heap"
	"repro/internal/rng"
	"repro/internal/trace"
)

// MultiQueue is the relaxed queue of Algorithm 2: m linearizable priority
// queues; Enqueue stamps the element with the current clock value and adds
// it to a random queue; Dequeue reads the heads of two random queues and
// deletes from the one with the smaller (older / higher-priority) head.
//
// Used with clock priorities it is a relaxed FIFO queue whose dequeues
// return one of the O(m·log m) oldest elements w.h.p.; used with explicit
// priorities (EnqueuePriority) it is the MultiQueue relaxed priority queue
// of Rihani, Sanders and Dementiev, with the buffer assumption Section 7
// states: analysis guarantees apply while no insertion carries a higher
// priority than an element already removed.
type MultiQueue struct {
	qs  []*cpq.Queue
	clk clock.Clock
	m   int
}

// MultiQueueConfig configures NewMultiQueue. The zero value of optional
// fields selects defaults.
type MultiQueueConfig struct {
	// Queues is m, the number of internal priority queues. Required.
	Queues int
	// Backing selects the per-queue sequential structure (default binary
	// heap; ablation A4 sweeps this).
	Backing cpq.Backing
	// Clock supplies enqueue timestamps (default: a fresh Tick clock, which
	// gives strictly unique, consistently ordered stamps).
	Clock clock.Clock
	// Capacity is the per-queue preallocation hint (default 1024).
	Capacity int
	// Seed feeds per-queue skiplist level generators.
	Seed uint64
}

// NewMultiQueue returns a MultiQueue with the given configuration.
func NewMultiQueue(cfg MultiQueueConfig) *MultiQueue {
	if cfg.Queues <= 0 {
		panic("core: MultiQueueConfig.Queues must be > 0")
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewTick()
	}
	sm := rng.NewSplitMix64(cfg.Seed)
	mq := &MultiQueue{qs: make([]*cpq.Queue, cfg.Queues), clk: cfg.Clock, m: cfg.Queues}
	for i := range mq.qs {
		mq.qs[i] = cpq.New(cfg.Backing, cfg.Capacity, sm.Next())
	}
	return mq
}

// M returns the number of internal queues.
func (q *MultiQueue) M() int { return q.m }

// Len returns the total number of stored elements (exact at quiescence).
func (q *MultiQueue) Len() int {
	n := 0
	for _, pq := range q.qs {
		n += pq.Len()
	}
	return n
}

// Sizes copies the per-queue element counts into dst (len must equal M) —
// the queue counterpart of MultiCounter.Snapshot, used to observe how evenly
// the random-insert rule spreads elements. Exact at quiescence.
func (q *MultiQueue) Sizes(dst []int) {
	if len(dst) != q.m {
		panic("core: Sizes dst length mismatch")
	}
	for i, pq := range q.qs {
		dst[i] = pq.Len()
	}
}

// MQHandle binds a MultiQueue to one goroutine's private generator.
type MQHandle struct {
	q *MultiQueue
	r *rng.Xoshiro256
}

// NewHandle returns a per-goroutine handle seeded with seed.
func (q *MultiQueue) NewHandle(seed uint64) *MQHandle {
	return &MQHandle{q: q, r: rng.NewXoshiro256(seed)}
}

// Queue returns the underlying MultiQueue.
func (h *MQHandle) Queue() *MultiQueue { return h.q }

// Enqueue implements Algorithm 2's Enqueue: stamp with the clock, insert
// into a uniformly random queue. It returns the priority assigned, which
// doubles as the element's unique label under a Tick clock.
func (h *MQHandle) Enqueue(value uint64) uint64 {
	p := h.q.clk.Now()
	h.q.qs[h.r.Intn(h.q.m)].Add(p, value)
	return p
}

// EnqueuePriority inserts with an explicit priority (relaxed priority-queue
// mode), bypassing the clock.
func (h *MQHandle) EnqueuePriority(priority, value uint64) {
	h.q.qs[h.r.Intn(h.q.m)].Add(priority, value)
}

// Dequeue implements Algorithm 2's Dequeue: choose two random queues,
// compare their ReadMin priorities, DeleteMin on the apparently smaller.
// As in the paper, the comparison uses possibly stale information; the
// deletion itself is linearizable. If the chosen queue turns out empty the
// operation retries, and after 2·m fruitless draws it scans all queues once;
// ok is false only when every queue was observed empty.
func (h *MQHandle) Dequeue() (it heap.Item, ok bool) {
	for attempt := 0; attempt < 2*h.q.m; attempt++ {
		i, j := h.r.Intn(h.q.m), h.r.Intn(h.q.m)
		if h.q.qs[j].ReadMin() < h.q.qs[i].ReadMin() {
			i = j
		}
		if it, ok = h.q.qs[i].DeleteMin(); ok {
			return it, true
		}
	}
	// Fallback sweep so that draining terminates deterministically.
	for i := 0; i < h.q.m; i++ {
		if it, ok = h.q.qs[i].DeleteMin(); ok {
			return it, true
		}
	}
	return heap.Item{}, false
}

// DequeueD generalizes Dequeue to d random choices: it reads the heads of d
// random queues and deletes from the best. d = 1 is the divergent
// single-choice baseline (ablation A1 for queues); d > 2 tightens rank
// quality at the cost of extra ReadMin traffic. The retry/sweep structure
// matches Dequeue.
func (h *MQHandle) DequeueD(d int) (it heap.Item, ok bool) {
	if d < 1 {
		panic("core: DequeueD needs d >= 1")
	}
	for attempt := 0; attempt < 2*h.q.m; attempt++ {
		best := h.r.Intn(h.q.m)
		bestTop := h.q.qs[best].ReadMin()
		for k := 1; k < d; k++ {
			j := h.r.Intn(h.q.m)
			if top := h.q.qs[j].ReadMin(); top < bestTop {
				best, bestTop = j, top
			}
		}
		if it, ok = h.q.qs[best].DeleteMin(); ok {
			return it, true
		}
	}
	for i := 0; i < h.q.m; i++ {
		if it, ok = h.q.qs[i].DeleteMin(); ok {
			return it, true
		}
	}
	return heap.Item{}, false
}

// TryDequeue is the lock-avoiding variant used by throughput benchmarks:
// it compares two ReadMin values and only try-locks the winner, re-drawing
// on contention instead of spinning. attempts bounds the number of draws;
// ok is false if no element was obtained within the budget.
func (h *MQHandle) TryDequeue(attempts int) (it heap.Item, ok bool) {
	for a := 0; a < attempts; a++ {
		i, j := h.r.Intn(h.q.m), h.r.Intn(h.q.m)
		if h.q.qs[j].ReadMin() < h.q.qs[i].ReadMin() {
			i = j
		}
		if it, okPop, acquired := h.q.qs[i].TryDeleteMin(); acquired && okPop {
			return it, true
		}
	}
	return heap.Item{}, false
}

// EnqueueTraced performs Enqueue and records the operation; the assigned
// priority is the element's label for the dlin queue-spec replay.
func (h *MQHandle) EnqueueTraced(value uint64, rec *trace.Recorder, log *trace.ThreadLog) uint64 {
	start := rec.Stamp()
	p := h.Enqueue(value)
	lin := rec.Stamp()
	log.Record(trace.Event{Kind: trace.KindEnq, Start: start, Lin: lin, End: lin, Arg: p})
	return p
}

// DequeueTraced performs Dequeue and records the operation with the removed
// element's label.
func (h *MQHandle) DequeueTraced(rec *trace.Recorder, log *trace.ThreadLog) (heap.Item, bool) {
	start := rec.Stamp()
	it, ok := h.Dequeue()
	lin := rec.Stamp()
	log.Record(trace.Event{Kind: trace.KindDeq, Start: start, Lin: lin, End: lin, Ret: it.Priority, OK: ok})
	return it, ok
}
