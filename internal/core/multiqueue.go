package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/cpq"
	"repro/internal/fail"
	"repro/internal/heap"
	"repro/internal/pad"
	"repro/internal/rng"
	"repro/internal/trace"
)

// MultiQueue is the relaxed queue of Algorithm 2: m linearizable priority
// queues; Enqueue stamps the element with the current clock value and adds
// it to a random queue; Dequeue reads the heads of d random queues (the
// paper's default is d = 2) and deletes from the one with the smallest
// (oldest / highest-priority) head.
//
// Used with clock priorities it is a relaxed FIFO queue whose dequeues
// return one of the O(m·log m) oldest elements w.h.p.; used with explicit
// priorities (EnqueuePriority) it is the MultiQueue relaxed priority queue
// of Rihani, Sanders and Dementiev, with the buffer assumption Section 7
// states: analysis guarantees apply while no insertion carries a higher
// priority than an element already removed.
type MultiQueue struct {
	qs        []*cpq.Queue // len Topology.MaxM; slots >= live m are sealed
	clk       clock.Clock
	blk       blockClock // non-nil when clk supports block reservation
	topo      Topology
	d         int
	stick     int
	batch     int
	affinity  float64
	backing   cpq.Backing
	lockedTop bool
	nextID    atomic.Uint64 // handle ids, assigned at NewHandle

	// Elastic topology state (DESIGN.md §11). epoch publishes the pair
	// (resize epoch, live m) in one padded atomic word — the only load a
	// handle needs to notice a flip, and the linearization point of every
	// resize. resizeMu serializes Resize/AutoScaleTick against each other
	// (write side) and against the ref-based removal paths (read side);
	// the enqueue/dequeue paths take neither side and tolerate a racing
	// flip through sealed-queue refusals.
	epoch    pad.EpochWord
	resizeMu sync.RWMutex
	resizes  atomic.Uint64
	scal     scaler
	// Controller baselines: the cumulative counters at the previous
	// AutoScaleTick, so each tick prices only the interval's contention.
	lastContended uint64
	lastCrit      uint64

	// Forwarding table for ElemRefs displaced by a shrink: value -> where
	// the drain donated the element. Entries are recorded while the epoch
	// flips (under resizeMu) and consumed by the first pop or forwarded
	// Remove that touches the value, so the table only ever holds refs to
	// resident donated elements. fwdCount gates every hot-path lookup on
	// one atomic load — a structure that never shrank pays nothing else.
	fwdMu    sync.Mutex
	fwd      map[uint64]fwdRef
	fwdCount atomic.Int64
}

// fwdRef records where a shrink donated one displaced element: the survivor
// queue and the epoch of the donation (a Remove carrying an older ref epoch
// must be redirected; one carrying the same or newer epoch must not).
type fwdRef struct {
	queue int
	epoch uint32
}

// blockClock is the optional fast path a clock can offer batched enqueuers:
// reserve n consecutive stamps with one shared atomic operation.
type blockClock interface {
	Block(n int) uint64
}

// MultiQueueConfig configures NewMultiQueue. The zero value of optional
// fields selects defaults.
type MultiQueueConfig struct {
	// Queues is m, the number of internal priority queues.
	//
	// Deprecated: set Topology.InitialM instead. Queues is kept as the
	// legacy fixed-m form — when Topology is the zero value it behaves
	// exactly as before (MinM = MaxM = Queues, no resizing).
	Queues int
	// Topology is the redesigned capacity surface: initial, minimum and
	// maximum live shard counts plus the optional contention-driven
	// AutoScale controller (DESIGN.md §11). A zero InitialM adopts Queues.
	Topology Topology
	// Backing selects the per-queue sequential structure (default binary
	// heap; ablation A4 sweeps this).
	Backing cpq.Backing
	// Clock supplies enqueue timestamps (default: a fresh Tick clock, which
	// gives strictly unique, consistently ordered stamps).
	Clock clock.Clock
	// Capacity is the per-queue preallocation hint (default 1024).
	Capacity int
	// Seed feeds per-queue skiplist level generators.
	Seed uint64
	// Choices is d, the number of random queue heads a dequeue compares
	// before deleting from the smallest. 0 selects the paper's d = 2;
	// d = 1 is the divergent single-choice baseline (ablation A1); d > 2
	// tightens rank quality at the cost of extra ReadMin traffic. Negative
	// values panic. Enqueues always use one uniform choice, as in
	// Algorithm 2.
	Choices int
	// Stickiness is the operation-stickiness window s: a handle re-uses its
	// randomly chosen queue (for inserts) and queue pair (for removes) for
	// up to s consecutive operations before re-rolling. The window is
	// charged per element and a choice is dropped once a full batch no
	// longer fits, so a random choice serves max(s, Batch) consecutive
	// elements: batching already moves Batch elements per choice, and
	// stickiness only extends re-use beyond a single batch when s > Batch.
	// 0 or 1 means fresh random choices every operation (with Batch <= 1
	// this is Algorithm 2 exactly). Larger s amortises the RNG draws and
	// keeps a handle on warm cache lines at the cost of extra rank
	// relaxation (re-measure with cmd/quality -queue).
	Stickiness int
	// Batch is the batching factor k: handles buffer up to k enqueues and
	// flush them with one cpq.AddBatch, and prefetch up to k elements per
	// dequeue refill with one cpq.DeleteMinUpTo — one lock acquisition and
	// one cached-top publish per k elements instead of per element. 0 or 1
	// means per-operation locking. Buffered enqueues are invisible to other
	// handles until the batch flushes (call MQHandle.Flush at quiescence);
	// prefetched elements are already dequeued from the shared structure.
	Batch int
	// Affinity is the shard-affinity fraction a ∈ [0, 1] of the sticky
	// dequeue sampler (DESIGN.md §7): each handle owns a home stripe of
	// w = max(Choices, ⌈a·Queues⌉) contiguous queue indices, placed
	// deterministically from its handle id, and every candidate refresh
	// draws Choices−1 candidates from the stripe plus one uniform escape
	// candidate, rotating the stripe periodically so no region starves.
	// 0 (the default) keeps every draw uniform over all queues — the
	// paper's assumption, tracing identically to the pre-affinity sampler
	// except where the candidate dedupe resamples a collision (~d²/2m of
	// refreshes).
	// Enqueues always insert uniformly, so the insert-side load balance the
	// analysis needs is unaffected; the rank-drift cost of any setting is
	// measured by cmd/quality -queue -affinity. Values outside [0, 1] panic.
	Affinity float64
	// LockedTopRead disables the per-queue lock-free top cache (ablation
	// A5): every ReadMin in the d-choice comparison and the empty-queue
	// scan then takes the queue's lock and Peeks. Benchmarks use it to
	// measure what the cached read path is worth; leave it false otherwise.
	LockedTopRead bool
}

// NewMultiQueue returns a MultiQueue with the given configuration.
func NewMultiQueue(cfg MultiQueueConfig) *MultiQueue {
	topo := cfg.Topology.normalize(cfg.Queues, "MultiQueueConfig")
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewTick()
	}
	if cfg.Choices < 0 {
		panic("core: MultiQueueConfig.Choices must be >= 0")
	}
	if cfg.Choices == 0 {
		cfg.Choices = 2
	}
	if cfg.Stickiness < 1 {
		cfg.Stickiness = 1
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if !(cfg.Affinity >= 0 && cfg.Affinity <= 1) { // rejects NaN too
		panic("core: MultiQueueConfig.Affinity must be in [0, 1]")
	}
	sm := rng.NewSplitMix64(cfg.Seed)
	mq := &MultiQueue{
		qs:        make([]*cpq.Queue, topo.MaxM),
		clk:       cfg.Clock,
		topo:      topo,
		d:         cfg.Choices,
		stick:     cfg.Stickiness,
		batch:     cfg.Batch,
		affinity:  cfg.Affinity,
		backing:   cfg.Backing,
		lockedTop: cfg.LockedTopRead,
	}
	if cfg.Batch > 1 {
		mq.blk, _ = cfg.Clock.(blockClock)
	}
	for i := range mq.qs {
		mq.qs[i] = cpq.New(cfg.Backing, cfg.Capacity, sm.Next())
		mq.qs[i].SetLockedRead(cfg.LockedTopRead)
		if i >= topo.InitialM {
			// Parked tail slot: allocated so a grow never republishes the
			// shard slice, sealed so nothing lands in it until then.
			mq.qs[i].Seal()
		}
	}
	mq.epoch.Init(0, topo.InitialM)
	if topo.AutoScale != nil {
		mq.scal = scaler{as: *topo.AutoScale}
	}
	return mq
}

// Choices returns the configured number of dequeue choices d (>= 1).
func (q *MultiQueue) Choices() int { return q.d }

// Stickiness returns the configured stickiness window s (>= 1).
func (q *MultiQueue) Stickiness() int { return q.stick }

// Batch returns the configured batching factor k (>= 1).
func (q *MultiQueue) Batch() int { return q.batch }

// Affinity returns the configured shard-affinity fraction (0 = uniform).
func (q *MultiQueue) Affinity() float64 { return q.affinity }

// Backing returns the configured per-queue sequential backing.
func (q *MultiQueue) Backing() cpq.Backing { return q.backing }

// LockedTopRead reports whether the lock-free top cache is disabled
// (ablation A5).
func (q *MultiQueue) LockedTopRead() bool { return q.lockedTop }

// M returns the live number of internal queues — one atomic load of the
// epoch word, current as of that instant (a concurrent Resize may move it).
func (q *MultiQueue) M() int {
	_, m := pad.UnpackEpoch(q.epoch.Load())
	return m
}

// Topology returns the normalized capacity surface the queue was built with.
func (q *MultiQueue) Topology() Topology { return q.topo }

// Epoch returns the resize epoch counter (0 until the first Resize).
func (q *MultiQueue) Epoch() uint64 {
	e, _ := pad.UnpackEpoch(q.epoch.Load())
	return uint64(e)
}

// Len returns the total number of stored elements (exact at quiescence).
// In batched mode, elements a handle still buffers (MQHandle.Buffered) are
// not counted until that handle flushes, and prefetched elements
// (MQHandle.Prefetched) are already excluded — flush all handles before a
// Len/Sizes audit. The scan covers the full MaxM array, so elements mid-way
// through a shrink's drain-and-donate hop are never double- or un-counted at
// quiescence.
func (q *MultiQueue) Len() int {
	n := 0
	for _, pq := range q.qs {
		n += pq.Len()
	}
	return n
}

// MQStats aggregates the per-queue event counters of cpq.QueueStats across
// all m internal queues — the publication-elision and lock-contention
// signals dlzd's /metrics exports per tenant. Counters are monotonic; the
// snapshot is racy under concurrency, which monitoring tolerates.
type MQStats struct {
	// Elisions counts critical sections that skipped the top-word publish
	// entirely (covered inserts, deletes on published-empty queues).
	Elisions uint64
	// Publications counts critical sections that republished a top word.
	Publications uint64
	// LockContended counts blocking lock acquisitions that entered the
	// spin-backoff slow path.
	LockContended uint64
	// Invalidations counts tombstones armed by Remove/RemoveBatch/Replace
	// across all queues; Reclaimed counts those physically compacted out by
	// later pops. Invalidations − Reclaimed is the live tombstone load the
	// structure currently carries.
	Invalidations uint64
	Reclaimed     uint64
	// CurrentM is the live shard count at snapshot time, Epoch the resize
	// epoch counter, and Resizes the number of completed resize epochs —
	// the elasticity signals dlzd's /metrics and benchall's elastic axis
	// export.
	CurrentM int
	Epoch    uint64
	Resizes  uint64
}

// Stats sums the internal queues' event counters without taking any locks.
// Counters cover the full MaxM array, so work done in shards a shrink later
// retired stays visible.
func (q *MultiQueue) Stats() MQStats {
	var s MQStats
	for _, pq := range q.qs {
		qs := pq.Stats()
		s.Elisions += qs.Elisions
		s.Publications += qs.Publications
		s.LockContended += qs.LockContended
		s.Invalidations += qs.Invalidations
		s.Reclaimed += qs.Reclaimed
	}
	e, m := pad.UnpackEpoch(q.epoch.Load())
	s.CurrentM = m
	s.Epoch = uint64(e)
	s.Resizes = q.resizes.Load()
	return s
}

// Sizes copies the per-queue element counts into dst (len must equal M) —
// the queue counterpart of MultiCounter.Snapshot, used to observe how evenly
// the random-insert rule spreads elements. Exact at quiescence; call at
// quiescence only, since a racing Resize changes M.
func (q *MultiQueue) Sizes(dst []int) {
	if len(dst) != q.M() {
		panic("core: Sizes dst length mismatch")
	}
	for i := range dst {
		dst[i] = q.qs[i].Len()
	}
}

// Resize moves the live shard count to m (clamped to [MinM, MaxM]) and
// returns the count actually in effect. Growing unseals parked tail slots
// and then publishes the new epoch word — handles re-seed their samplers on
// the first operation that observes the flip. Shrinking publishes the new
// (smaller) word first — the linearization point, after which no current
// handle targets a victim — then seals and drains each victim shard
// [m, old m) through the zero-alloc bulk path and donates the drained
// elements round-robin to the survivors, recording a forwarding entry per
// element so outstanding ElemRefs (mempool Remove/Replace) survive the hop.
// Concurrent enqueues that lose the race to a sealing victim are refused by
// the seal and retried by the handle against the new topology; concurrent
// dequeues at worst observe a victim as empty, which relaxed semantics
// already tolerate. Element conservation is exact: every element admitted
// before the resize is in a survivor (or a caller's prefetch buffer)
// afterwards.
func (q *MultiQueue) Resize(m int) int {
	q.resizeMu.Lock()
	defer q.resizeMu.Unlock()
	return q.resizeLocked(m)
}

func (q *MultiQueue) resizeLocked(m int) int {
	m = q.topo.clamp(m)
	epoch, cur := pad.UnpackEpoch(q.epoch.Load())
	if m == cur {
		return cur
	}
	if m > cur {
		// Grow: open the new slots before any handle can target them.
		for i := cur; i < m; i++ {
			q.qs[i].Unseal()
		}
		q.epoch.Store(epoch+1, m)
		q.resizes.Add(1)
		return m
	}
	// Shrink. Publish first so new operations route within [0, m); then
	// retire the victims. SealAndDrain atomically seals each victim and
	// empties it under one lock hold, so an insert that raced the publish
	// either landed before the drain (and is donated) or is refused.
	q.epoch.Store(epoch+1, m)
	q.resizes.Add(1)
	newEpoch := epoch + 1
	var drained []heap.Item
	for v := m; v < cur; v++ {
		drained = q.qs[v].SealAndDrain(drained)
	}
	if fail.Enabled {
		// Between drain and donation: the displaced elements exist only in
		// this frame. A delay here widens the not-yet-donated window for the
		// chaos suite; panics are not armed at this site (they would lose
		// the frame).
		_ = fail.Inject(fail.SiteCoreResizeDrain)
	}
	if len(drained) > 0 {
		q.donateLocked(drained, m, newEpoch)
	}
	return m
}

// donateLocked hands a shrink's drained elements to the survivors in
// round-robin chunks, recording a forwarding entry per element before its
// chunk publishes, so any pop or forwarded Remove that can see the element
// also sees its entry. Caller holds resizeMu (write).
func (q *MultiQueue) donateLocked(drained []heap.Item, m int, newEpoch uint32) {
	q.fwdMu.Lock()
	defer q.fwdMu.Unlock()
	if q.fwd == nil {
		q.fwd = make(map[uint64]fwdRef, len(drained))
	}
	chunk := q.batch
	if chunk < 16 {
		chunk = 16
	}
	target := 0
	for off := 0; off < len(drained); off += chunk {
		end := off + chunk
		if end > len(drained) {
			end = len(drained)
		}
		part := drained[off:end]
		added := 0
		for _, it := range part {
			if _, dup := q.fwd[it.Value]; !dup {
				added++
			}
			// Overwrite on re-donation: a second shrink moving an element
			// again must point the ref at its newest home.
			q.fwd[it.Value] = fwdRef{queue: target, epoch: newEpoch}
		}
		// Count before publishing the chunk: a pop that sees an element
		// must see a non-zero gate, or its entry would linger.
		q.fwdCount.Add(int64(added))
		q.qs[target].AddBatch(part) // survivors are never sealed here
		target = (target + 1) % m
	}
}

// SnapshotElements captures the structure's full contents into dst and
// puts every element straight back, returning dst extended with the capture
// in shard-drain order — the point-in-time read the durability snapshotter
// needs. It holds the resize lock for the whole capture, so no resize or
// autoscale tick can interleave, and drains each live shard without sealing
// it (cpq.Drain): a shard is never in a refusing state, so a racing insert
// fallback cannot lose elements. The capture is only a consistent cut if
// the caller has quiesced concurrent mutators (dlzd's snapshotter holds
// every tenant's operation gate and flushes every lease first); tombstoned
// elements are excluded and their tombstones consumed. Elements re-enter
// round-robin across the live shards, which strands stale forwarding
// entries — callers holding outstanding ElemRefs must not snapshot.
func (q *MultiQueue) SnapshotElements(dst []heap.Item) []heap.Item {
	q.resizeMu.Lock()
	defer q.resizeMu.Unlock()
	_, m := pad.UnpackEpoch(q.epoch.Load())
	start := len(dst)
	for i := 0; i < m; i++ {
		dst = q.qs[i].Drain(dst)
	}
	drained := dst[start:]
	chunk := q.batch
	if chunk < 16 {
		chunk = 16
	}
	target := 0
	for off := 0; off < len(drained); off += chunk {
		end := off + chunk
		if end > len(drained) {
			end = len(drained)
		}
		q.qs[target].AddBatch(drained[off:end]) // live shards are never sealed here
		target = (target + 1) % m
	}
	return dst
}

// AutoScaleTick advances the contention-driven controller one tick: it
// prices the interval since the previous tick as
// ΔLockContended / Δ(Elisions+Publications) — the fraction of critical
// sections whose lock acquisition entered the spin-backoff slow path — and
// applies the AutoScale policy (double at GrowThreshold, halve at
// ShrinkThreshold, after the dwell). Returns the live shard count and
// whether this tick resized. A queue built without Topology.AutoScale
// never moves. Call from one goroutine (dlzd's janitor, a benchmark's
// pacer); the tick itself is cheap — a lock-free Stats scan.
func (q *MultiQueue) AutoScaleTick() (m int, resized bool) {
	q.resizeMu.Lock()
	defer q.resizeMu.Unlock()
	_, cur := pad.UnpackEpoch(q.epoch.Load())
	if q.topo.AutoScale == nil {
		return cur, false
	}
	st := q.Stats()
	crit := st.Elisions + st.Publications
	dCrit := crit - q.lastCrit
	dCont := st.LockContended - q.lastContended
	q.lastCrit, q.lastContended = crit, st.LockContended
	var pressure float64
	if dCrit > 0 {
		pressure = float64(dCont) / float64(dCrit)
	} else if dCont > 0 {
		// Waiters escalated but no critical section completed: saturated.
		pressure = 1
	}
	next := q.scal.decide(q.topo, cur, pressure)
	if next == cur {
		return cur, false
	}
	return q.resizeLocked(next), true
}

// consumeFwd1 retires the forwarding entry for one popped value, if any.
// The fwdCount gate keeps the no-shrink hot path at a single atomic load.
func (q *MultiQueue) consumeFwd1(value uint64) {
	if q.fwdCount.Load() == 0 {
		return
	}
	q.fwdMu.Lock()
	if _, ok := q.fwd[value]; ok {
		delete(q.fwd, value)
		q.fwdCount.Add(-1)
	}
	q.fwdMu.Unlock()
}

// consumeFwd retires forwarding entries for a popped run.
func (q *MultiQueue) consumeFwd(items []heap.Item) {
	if len(items) == 0 || q.fwdCount.Load() == 0 {
		return
	}
	q.fwdMu.Lock()
	n := 0
	for _, it := range items {
		if _, ok := q.fwd[it.Value]; ok {
			delete(q.fwd, it.Value)
			n++
		}
	}
	if n > 0 {
		q.fwdCount.Add(int64(-n))
	}
	q.fwdMu.Unlock()
}

// MQHandle binds a MultiQueue to one goroutine's private generator and, in
// sticky/batched mode, the handle-local fast-path state: the sticky samplers
// holding the current queue choices, the insert buffer awaiting its batch
// flush, and the prefetched dequeue run. A handle must be used by one
// goroutine at a time.
type MQHandle struct {
	q  *MultiQueue
	id uint64
	r  *rng.Xoshiro256

	// Cached copy of the queue's epoch word and the live m it encodes.
	// syncEpoch compares one atomic load against epochWord at operation
	// entry; on a mismatch the handle re-seeds both samplers for the new m
	// (stripe re-placement included) before proceeding. Steady state this
	// is one load and one predictable branch.
	epochWord uint64
	m         int

	// Sticky sampling state: one uniform choice for inserts (Algorithm 2's
	// enqueue), d choices for removals.
	enq Sampler
	deq Sampler

	// Batching state: pending inserts and the prefetched dequeue run. Both
	// slices are carved from one fixed backing array sized at NewHandle with
	// full-slice expressions capping them at Batch, so the steady-state hot
	// path never grows either and performs zero allocations per operation
	// (cpq.AddBatch reads at most len(inBuf) <= Batch items;
	// cpq.DeleteMinUpTo appends at most Batch items into cap-Batch outBuf).
	// BenchmarkMultiQueueHotPathAllocs and TestMQHandleHotPathZeroAlloc
	// enforce the invariant.
	inBuf  []heap.Item
	outBuf []heap.Item
	outPos int

	// rmBuf stages one per-queue run of a RemoveBatch as heap.Items for
	// cpq.InvalidateBatch; like inBuf/outBuf it is carved from the fixed
	// backing array, so batched removals allocate nothing.
	rmBuf []heap.Item

	// Block-reserved clock stamps (batched mode over a Tick clock).
	stampNext uint64
	stampLeft int

	// closed marks a handle retired by Close: its buffers are drained and
	// every further operation is a programming error.
	closed bool
}

// NewHandle returns a per-goroutine handle seeded with seed, inheriting the
// MultiQueue's choice count, stickiness window, batching factor and affinity
// fraction. Handles are numbered in creation order (MQHandle.ID); the id
// deterministically places the handle's home stripe when Affinity > 0, so a
// fixed creation order reproduces the same stripe layout run to run. The
// enqueue sampler stays uniform in every mode — Algorithm 2 inserts
// uniformly, and the insert-side balance is what the analysis leans on.
func (q *MultiQueue) NewHandle(seed uint64) *MQHandle {
	id := q.nextID.Add(1) - 1
	w := q.epoch.Load()
	_, m := pad.UnpackEpoch(w)
	h := &MQHandle{
		q:         q,
		id:        id,
		r:         rng.NewXoshiro256(seed),
		epochWord: w,
		m:         m,
		enq:       NewSampler(m, 1, q.stick),
		deq:       NewAffineSampler(m, q.d, q.stick, q.affinity, id),
	}
	if q.batch > 1 {
		backing := make([]heap.Item, 3*q.batch)
		h.inBuf = backing[0:0:q.batch]
		h.outBuf = backing[q.batch : q.batch : 2*q.batch]
		h.rmBuf = backing[2*q.batch : 2*q.batch : 3*q.batch]
	}
	return h
}

// Queue returns the underlying MultiQueue.
func (h *MQHandle) Queue() *MultiQueue { return h.q }

// ID returns the handle's creation-order id (0 for the first handle), the
// value that seeds its home stripe when the queue runs with Affinity > 0.
func (h *MQHandle) ID() uint64 { return h.id }

// Buffered returns the number of enqueued elements held in this handle's
// insert buffer, not yet visible to other handles. Zero unless Batch > 1.
func (h *MQHandle) Buffered() int { return len(h.inBuf) }

// Rerolls returns the number of empty/contended dequeue outcomes that
// requested fresh sticky candidates (Sampler.Reroll) over this handle's
// lifetime — the sampler-pressure signal dlzd's /metrics aggregates.
func (h *MQHandle) Rerolls() uint64 { return h.deq.Rerolls() }

// Closed reports whether Close has retired this handle.
func (h *MQHandle) Closed() bool { return h.closed }

// Close retires the handle: buffered inserts are flushed to the shared
// structure, unconsumed prefetched elements are returned to it (they were
// already removed by a DeleteMinUpTo refill and would otherwise be lost
// with the handle — the abandoned-handle bug this contract fixes), and the
// handle is invalidated. After Close, Buffered and Prefetched are zero and
// any further operation panics; closing an already-closed handle is a no-op.
// Owners that cannot guarantee a final Flush (connection handlers, pools,
// lease managers like dlzd) must Close handles they abandon, or the
// structure silently loses the buffered elements.
func (h *MQHandle) Close() {
	if h.closed {
		return
	}
	h.Flush()
	if rest := h.outBuf[h.outPos:]; len(rest) > 0 {
		// Return the prefetch remainder through the same uniform sticky
		// insert rule as an enqueue batch: these elements are logically
		// still queued, they were only staged for this handle's consumption.
		h.addBatchRetrying(rest)
	}
	h.outBuf, h.outPos = h.outBuf[:0], 0
	h.closed = true
}

// checkOpen panics when the handle has been closed; every mutating
// entry point calls it (one predictable branch on the hot path).
func (h *MQHandle) checkOpen() {
	if h.closed {
		panic("core: operation on closed MQHandle")
	}
}

// syncEpoch folds a published resize into the handle: one atomic load
// against the cached word, and on a flip both samplers re-seed in place for
// the new m (golden-ratio stripe re-placement, no allocation).
func (h *MQHandle) syncEpoch() {
	if w := h.q.epoch.Load(); w != h.epochWord {
		h.reseed(w)
	}
}

func (h *MQHandle) reseed(w uint64) {
	h.epochWord = w
	_, m := pad.UnpackEpoch(w)
	h.m = m
	h.enq.Reseed(m)
	h.deq.Reseed(m)
}

// sealedRetryLimit bounds insert retries against sealing shards before the
// deterministic fallback to queue 0 (never sealed: MinM >= 1 and shrink
// victims are always the top of the range). Each refusal implies a resize
// published since the handle's last sync — Go atomics are sequentially
// consistent and the seal writes behind the victim's lock after the epoch
// store — so in practice one re-sync resolves it; the bound only matters
// under a pathological resize storm.
const sealedRetryLimit = 8

// refusedSealed re-syncs the handle after a sealed-shard refusal, or
// re-rolls the insert choice if the epoch word has not moved yet.
func (h *MQHandle) refusedSealed() {
	if w := h.q.epoch.Load(); w != h.epochWord {
		h.reseed(w)
		return
	}
	h.enq.Reroll()
}

// addRetrying inserts one element through the sticky uniform rule, retrying
// past sealed-shard refusals; returns the queue the element landed in.
func (h *MQHandle) addRetrying(priority, value uint64) int {
	for attempt := 0; attempt < sealedRetryLimit; attempt++ {
		i := h.enqTarget(1)
		if h.q.qs[i].Add(priority, value) {
			return i
		}
		h.refusedSealed()
	}
	h.q.qs[0].Add(priority, value)
	return 0
}

// addBatchRetrying publishes one insert batch, retrying past sealed-shard
// refusals with the same fallback.
func (h *MQHandle) addBatchRetrying(items []heap.Item) {
	for attempt := 0; attempt < sealedRetryLimit; attempt++ {
		if h.q.qs[h.enqTarget(len(items))].AddBatch(items) {
			return
		}
		h.refusedSealed()
	}
	h.q.qs[0].AddBatch(items)
}

// Prefetched returns the number of already-dequeued elements this handle
// holds and will return from upcoming Dequeue calls. Zero unless Batch > 1.
func (h *MQHandle) Prefetched() int { return len(h.outBuf) - h.outPos }

// Flush publishes any buffered inserts to the shared structure with one
// batched add. Call at quiescence (before Len/Sizes audits or a drain by
// another handle); a handle with an empty buffer flushes for free.
func (h *MQHandle) Flush() {
	if len(h.inBuf) == 0 {
		return
	}
	if fail.Enabled {
		// Fires only with a non-empty buffer, before any element publishes:
		// a panic here interrupts the batch flush with inBuf fully intact,
		// so a recovering owner can retry Flush (or Close) without losing a
		// buffered element. The error outcome is ignored — Flush has no
		// refusal path.
		_ = fail.Inject(fail.SiteCoreFlush)
	}
	h.syncEpoch()
	h.addBatchRetrying(h.inBuf)
	h.inBuf = h.inBuf[:0]
}

// ReturnPrefetched hands the handle's unconsumed prefetched elements back
// to the shared structure without retiring the handle — the quiesce step a
// durability snapshot runs on every live lease so the capture sees those
// elements (they were physically removed by a DeleteMinUpTo refill but are
// logically still queued). The handle stays open; its next Dequeue simply
// refills. Pair with Flush for a full quiesce of both buffers.
func (h *MQHandle) ReturnPrefetched() {
	h.checkOpen()
	if rest := h.outBuf[h.outPos:]; len(rest) > 0 {
		h.syncEpoch()
		h.addBatchRetrying(rest)
	}
	h.outBuf, h.outPos = h.outBuf[:0], 0
}

// enqTarget picks the insert queue through the sticky uniform sampler and
// charges n logical operations against the stickiness window. A choice
// serves at most max(stick, batch) elements — exactly stick when batch
// divides into it, one whole batch when batch exceeds the window (the
// sampler never splits a batch across choices).
func (h *MQHandle) enqTarget(n int) int {
	i := h.enq.Candidates(h.r, n)[0]
	h.enq.Charge(n)
	return i
}

// deqBest picks the d-choice removal target: the sticky candidate set's
// queue with the smallest cached top word, re-read fresh on every call
// exactly as Algorithm 2 compares possibly-stale heads — one atomic load per
// candidate, no locks. Queues whose word carries the mid-update sentinel
// rank behind every real minimum (their lock would refuse a try anyway), and
// stable-empty queues rank last; the winning key is returned alongside so
// callers skip known-empty winners without re-reading the word. The caller
// charges the window via deqCharge with the number of elements actually
// obtained; an empty or contended outcome should call deqReroll so the next
// draw abandons a stale candidate set early.
func (h *MQHandle) deqBest() (int, uint64) {
	return h.deq.BestKeyed(h.r, h.q.batch, h.readTop)
}

// readTop adapts the cached top word's comparison key to the sampler's load
// signature.
func (h *MQHandle) readTop(i int) uint64 { return h.q.qs[i].ReadTop().Key() }

// deqCharge consumes n logical operations from the sticky dequeue window.
func (h *MQHandle) deqCharge(n int) { h.deq.Charge(n) }

// deqReroll requests fresh sticky dequeue candidates for the next draw
// without granting them a new window: an empty or contended outcome charges
// nothing but only inherits the budget the abandoned candidates had left
// (Sampler.Reroll).
func (h *MQHandle) deqReroll() { h.deq.Reroll() }

// insert routes one stamped element through the batching layer: direct Add
// in per-op mode, or buffer-and-flush in batched mode.
func (h *MQHandle) insert(priority, value uint64) {
	if h.q.batch <= 1 {
		h.syncEpoch()
		h.addRetrying(priority, value)
		return
	}
	h.inBuf = append(h.inBuf, heap.Item{Priority: priority, Value: value})
	if len(h.inBuf) >= h.q.batch {
		h.Flush()
	}
}

// Enqueue implements Algorithm 2's Enqueue: stamp with the clock, insert
// into a uniformly random queue (sticky across the stickiness window, and
// buffered into one AddBatch per Batch elements in batched mode). It returns
// the priority assigned, which doubles as the element's unique label under a
// Tick clock. The stamp is taken at call time, so batching delays visibility
// but never reorders a handle's own elements.
func (h *MQHandle) Enqueue(value uint64) uint64 {
	h.checkOpen()
	p := h.stamp()
	h.insert(p, value)
	return p
}

// stamp draws the next enqueue timestamp: directly from the clock in per-op
// mode, or from a handle-owned block of Batch consecutive ticks reserved
// with one shared atomic operation when the clock supports it.
func (h *MQHandle) stamp() uint64 {
	if h.q.blk == nil {
		return h.q.clk.Now()
	}
	if h.stampLeft == 0 {
		h.stampNext = h.q.blk.Block(h.q.batch)
		h.stampLeft = h.q.batch
	}
	p := h.stampNext
	h.stampNext++
	h.stampLeft--
	return p
}

// EnqueuePriority inserts with an explicit priority (relaxed priority-queue
// mode), bypassing the clock but using the same sticky/batched insert path.
func (h *MQHandle) EnqueuePriority(priority, value uint64) {
	h.checkOpen()
	h.insert(priority, value)
}

// ElemRef locates one resident element for later Remove/Replace: the
// internal queue it was inserted into, the resize epoch it was issued under,
// and the exact (priority, value) pair. A ref is issued by
// EnqueuePriorityRef and stays valid until the element leaves the structure
// — by being dequeued, removed, or returned to a different queue by
// MQHandle.Close's prefetch give-back. A shrink epoch that retires the ref's
// queue does NOT invalidate the ref: the drain donates the element to a
// survivor and records a forwarding entry, and Remove/Replace follow it.
// Callers that need removal must still track element residency themselves
// (a map keyed by value, maintained at every dequeue, is the usual shape —
// see internal/mempool); handing a stale ref to Remove corrupts the
// structure's length accounting permanently, exactly as cpq.Queue.Invalidate
// documents.
type ElemRef struct {
	// Queue is the internal queue index the element resided in when the ref
	// was issued.
	Queue int
	// Epoch is the resize epoch the ref was issued under; Remove uses it to
	// decide whether the forwarding table must be consulted.
	Epoch uint32
	// Priority and Value identify the element within that queue. Value must
	// be unique among the structure's live and tombstoned elements.
	Priority uint64
	Value    uint64
}

// EnqueuePriorityRef inserts with an explicit priority like EnqueuePriority
// but returns a reference locating the element, so the caller can later
// Remove or Replace it. Located inserts cannot ride the insert buffer — the
// target queue must be known when the ref is issued — so each call performs
// one immediate cpq.Add through the sticky uniform insert rule: same queue
// choice distribution as the batched path, one lock acquisition per element.
// Workloads that never remove should prefer EnqueuePriority.
func (h *MQHandle) EnqueuePriorityRef(priority, value uint64) ElemRef {
	h.checkOpen()
	h.syncEpoch()
	i := h.addRetrying(priority, value)
	epoch, _ := pad.UnpackEpoch(h.epochWord)
	return ElemRef{Queue: i, Epoch: epoch, Priority: priority, Value: value}
}

// Remove marks the referenced element dead in its queue (lazy tombstone,
// DESIGN.md §9): it never surfaces from a dequeue, Len/Sizes exclude it
// immediately, and a later pop physically reclaims it. Returns false if the
// element was already tombstoned. The caller must guarantee the ref is
// current (see ElemRef); in particular an element sitting in a handle's
// prefetch buffer is no longer resident — check DropPrefetched first.
//
// Removal takes the resize lock's read side, freezing the topology for the
// duration: a ref issued under the current epoch invalidates directly (its
// queue cannot seal mid-operation), and a ref from an older epoch follows
// the forwarding table to the survivor a shrink donated its element to.
func (h *MQHandle) Remove(ref ElemRef) bool {
	h.checkOpen()
	q := h.q
	q.resizeMu.RLock()
	ok := q.removeRLocked(ref)
	q.resizeMu.RUnlock()
	return ok
}

// removeRLocked performs one ref-directed invalidation; caller holds
// resizeMu (read), so live m, seal states and the forwarding table are
// stable underneath it.
func (q *MultiQueue) removeRLocked(ref ElemRef) bool {
	epoch, m := pad.UnpackEpoch(q.epoch.Load())
	if ref.Epoch == epoch {
		return q.qs[ref.Queue].Invalidate(ref.Priority, ref.Value)
	}
	// Stale epoch: a shrink may have moved the element. The forwarding
	// entry, if present and newer than the ref, names its current home and
	// is retired here (the tombstone now tracks it in place).
	if q.fwdCount.Load() != 0 {
		q.fwdMu.Lock()
		if e, ok := q.fwd[ref.Value]; ok && e.epoch > ref.Epoch {
			delete(q.fwd, ref.Value)
			q.fwdCount.Add(-1)
			q.fwdMu.Unlock()
			return q.qs[e.queue].Invalidate(ref.Priority, ref.Value)
		}
		q.fwdMu.Unlock()
	}
	// No forwarding entry: the element never moved (grow-only epochs, or a
	// shrink that didn't touch its queue). Its home must still be live.
	if ref.Queue < m {
		return q.qs[ref.Queue].Invalidate(ref.Priority, ref.Value)
	}
	return false
}

// RemoveBatch removes a set of referenced elements, amortizing locks the way
// the bulk insert/dequeue paths do: refs are grouped by queue (an in-place
// insertion sort — batches are small and typically nearly sorted) and each
// group is staged through the handle's fixed removal buffer into one
// cpq.InvalidateBatch — one lock acquisition and at most one top-word
// publication per queue touched, zero allocations in batched mode. The slice
// is reordered in place. Returns the number of elements newly tombstoned.
// Per-op handles (Batch <= 1) fall back to one Remove per ref.
func (h *MQHandle) RemoveBatch(refs []ElemRef) int {
	h.checkOpen()
	if len(h.rmBuf) != 0 {
		panic("core: RemoveBatch re-entered") // rmBuf is always left empty
	}
	q := h.q
	q.resizeMu.RLock()
	defer q.resizeMu.RUnlock()
	armed := 0
	if cap(h.rmBuf) == 0 {
		for _, ref := range refs {
			if q.removeRLocked(ref) {
				armed++
			}
		}
		return armed
	}
	curEpoch, _ := pad.UnpackEpoch(q.epoch.Load())
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j-1].Queue > refs[j].Queue; j-- {
			refs[j-1], refs[j] = refs[j], refs[j-1]
		}
	}
	bufQueue := -1
	flush := func() {
		if len(h.rmBuf) > 0 {
			armed += q.qs[bufQueue].InvalidateBatch(h.rmBuf)
			h.rmBuf = h.rmBuf[:0]
		}
	}
	for _, ref := range refs {
		if ref.Epoch != curEpoch {
			// Stale ref: may need forwarding — take the per-ref path and
			// leave the staged run for its own queue intact.
			if q.removeRLocked(ref) {
				armed++
			}
			continue
		}
		if len(h.rmBuf) > 0 && (bufQueue != ref.Queue || len(h.rmBuf) == cap(h.rmBuf)) {
			flush()
		}
		bufQueue = ref.Queue
		h.rmBuf = append(h.rmBuf, heap.Item{Priority: ref.Priority, Value: ref.Value})
	}
	flush()
	return armed
}

// Replace atomically-enough swaps one element for another: the old ref is
// tombstoned and the replacement inserted with a fresh sticky queue choice,
// returning the new element's ref. The two steps are not one critical
// section — a concurrent dequeue may observe the gap where neither element
// is obtainable, which relaxed-queue callers already tolerate (it is
// indistinguishable from the element being held in another handle's
// prefetch). Returns ok=false without inserting when the old ref was already
// tombstoned — under the ElemRef residency contract that means a racing
// Replace won, and inserting would duplicate the value.
func (h *MQHandle) Replace(old ElemRef, priority, value uint64) (ElemRef, bool) {
	h.checkOpen()
	if !h.Remove(old) {
		return ElemRef{}, false
	}
	return h.EnqueuePriorityRef(priority, value), true
}

// DropPrefetched searches this handle's prefetch buffer for the element with
// the given value and, if present, removes it from the buffer, reporting
// whether it did. Prefetched elements were already dequeued from the shared
// structure, so a Remove aimed at one would arm a tombstone that nothing can
// ever reclaim; a removal protocol over batched handles must try
// DropPrefetched on every handle that might have prefetched the element
// before falling through to Remove. Order of the remaining prefetch run is
// preserved. O(Prefetched()) — the buffer holds at most Batch elements.
func (h *MQHandle) DropPrefetched(value uint64) bool {
	h.checkOpen()
	for i := h.outPos; i < len(h.outBuf); i++ {
		if h.outBuf[i].Value == value {
			h.outBuf = append(h.outBuf[:i], h.outBuf[i+1:]...)
			return true
		}
	}
	return false
}

// Dequeue implements Algorithm 2's Dequeue, generalized to the configured
// choice count: sample d random queues, compare their cached top words,
// DeleteMin on the apparently smallest. As in the paper, the comparison uses
// possibly stale information; the deletion itself is linearizable. A chosen
// queue whose word is stable-empty is skipped without touching its lock —
// the word's linearization argument (DESIGN.md §6) makes that observation as
// good as a locked Peek. If the chosen queue turns out empty the operation
// retries, and after 2·m fruitless draws it scans all queues once (flushing
// this handle's own insert buffer first, so a single-handle drain never
// misses its buffered elements); the scan likewise trusts stable-empty words
// and locks only queues that might hold elements, so a drain of an
// all-empty structure performs zero lock acquisitions; ok is false only when
// every queue was observed empty.
//
// In batched mode the winner is drained with DeleteMinUpTo(Batch) and the
// run beyond the first element is served from the handle's prefetch buffer
// by subsequent calls — one lock acquisition per Batch elements.
func (h *MQHandle) Dequeue() (it heap.Item, ok bool) {
	h.checkOpen()
	if h.outPos < len(h.outBuf) {
		it = h.outBuf[h.outPos]
		h.outPos++
		return it, true
	}
	h.syncEpoch()
	for attempt := 0; attempt < 2*h.m; attempt++ {
		i, key := h.deqBest()
		if fail.Enabled && fail.Inject(fail.SiteCoreReroll) != nil {
			// Injected reroll storm: discard the draw as if its queue were
			// contended, exercising the sampler's reroll inheritance.
			h.deqReroll()
			continue
		}
		if key != cpq.TopKeyEmpty {
			if it, ok = h.deleteFrom(i); ok {
				return it, true
			}
		}
		h.deqReroll()
	}
	// Fallback sweep so that draining terminates deterministically. Our own
	// pending inserts are flushed first: they are logically enqueued and a
	// drain must observe them.
	h.Flush()
	h.syncEpoch()
	for i := 0; i < h.m; i++ {
		if h.q.qs[i].ReadTop().StableEmpty() {
			continue
		}
		if it, ok = h.deleteFrom(i); ok {
			return it, true
		}
	}
	return heap.Item{}, false
}

// deleteFrom removes from queue i: a single DeleteMin in per-op mode, or a
// DeleteMinUpTo(Batch) refill in batched mode with the first element
// returned and the rest parked in the prefetch buffer.
func (h *MQHandle) deleteFrom(i int) (heap.Item, bool) {
	if h.q.batch <= 1 {
		it, ok := h.q.qs[i].DeleteMin()
		if ok {
			h.deqCharge(1)
			h.q.consumeFwd1(it.Value)
		}
		return it, ok
	}
	h.outBuf = h.q.qs[i].DeleteMinUpTo(h.q.batch, h.outBuf[:0])
	if len(h.outBuf) == 0 {
		h.outPos = 0
		return heap.Item{}, false
	}
	h.deqCharge(len(h.outBuf))
	h.q.consumeFwd(h.outBuf)
	h.outPos = 1
	return h.outBuf[0], true
}

// DequeueD overrides the configured choice count for one operation: it
// reads the heads of d fresh (never sticky) random queues and deletes from
// the best. d = 1 is the divergent single-choice baseline (ablation A1 for
// queues); prefer MultiQueueConfig.Choices for a structure-wide setting —
// DequeueD exists for per-call sweeps. The retry/sweep structure matches
// Dequeue.
func (h *MQHandle) DequeueD(d int) (it heap.Item, ok bool) {
	if d < 1 {
		panic("core: DequeueD needs d >= 1")
	}
	h.checkOpen()
	if h.outPos < len(h.outBuf) {
		it = h.outBuf[h.outPos]
		h.outPos++
		return it, true
	}
	h.syncEpoch()
	for attempt := 0; attempt < 2*h.m; attempt++ {
		best := h.r.Intn(h.m)
		bestTop := h.q.qs[best].ReadTop().Key()
		for k := 1; k < d; k++ {
			j := h.r.Intn(h.m)
			if top := h.q.qs[j].ReadTop().Key(); top < bestTop {
				best, bestTop = j, top
			}
		}
		if bestTop == cpq.TopKeyEmpty {
			// The winning key already encodes stable-empty; skip without
			// re-reading the word (a second load could disagree with the
			// one the comparison ranked).
			continue
		}
		if it, ok = h.q.qs[best].DeleteMin(); ok {
			h.q.consumeFwd1(it.Value)
			return it, true
		}
	}
	h.Flush()
	h.syncEpoch()
	for i := 0; i < h.m; i++ {
		if h.q.qs[i].ReadTop().StableEmpty() {
			continue
		}
		if it, ok = h.q.qs[i].DeleteMin(); ok {
			h.q.consumeFwd1(it.Value)
			return it, true
		}
	}
	return heap.Item{}, false
}

// TryDequeue is the lock-avoiding variant used by throughput benchmarks:
// it compares the d sampled cached top words and only try-locks the winner,
// re-drawing on contention instead of spinning. attempts bounds the number
// of draws; ok is false if no element was obtained within the budget.
// Nothing on this path ever blocks on a queue lock, so it routes around
// dead or stalled lock holders in every mode. The comparison already ranks
// mid-update queues behind real minima, and a winner whose word is
// stable-empty is skipped before the try-lock — no CAS, no cache-line
// bounce — so spinning over an empty structure costs only atomic loads.
// Like Dequeue, a batched handle serves its prefetch buffer first, uses the
// sticky candidate set, refills with a try-locked DeleteMinUpTo, and before
// giving up attempts a non-blocking flush of its own insert buffer
// (TryAddBatch to random queues) and retries the budget once.
func (h *MQHandle) TryDequeue(attempts int) (it heap.Item, ok bool) {
	h.checkOpen()
	if h.outPos < len(h.outBuf) {
		it = h.outBuf[h.outPos]
		h.outPos++
		return it, true
	}
	h.syncEpoch()
	for pass := 0; pass < 2; pass++ {
		for a := 0; a < attempts; a++ {
			i, key := h.deqBest()
			if fail.Enabled && fail.Inject(fail.SiteCoreReroll) != nil {
				h.deqReroll()
				continue
			}
			if key == cpq.TopKeyEmpty {
				h.deqReroll()
				continue
			}
			if h.q.batch <= 1 {
				if it, okPop, acquired := h.q.qs[i].TryDeleteMin(); acquired && okPop {
					h.deqCharge(1)
					h.q.consumeFwd1(it.Value)
					return it, true
				}
			} else if out, acquired := h.q.qs[i].TryDeleteMinUpTo(h.q.batch, h.outBuf[:0]); acquired && len(out) > 0 {
				h.outBuf = out
				h.outPos = 1
				h.deqCharge(len(out))
				h.q.consumeFwd(out)
				return out[0], true
			}
			// Contended or empty: abandon the sticky pair for a fresh draw.
			h.deqReroll()
		}
		if len(h.inBuf) == 0 {
			break
		}
		if !h.tryFlush(attempts) {
			break
		}
	}
	return heap.Item{}, false
}

// tryFlush attempts to publish the insert buffer without blocking: up to
// attempts random queues are offered the batch with TryAddBatch. Reports
// whether the buffer was published.
func (h *MQHandle) tryFlush(attempts int) bool {
	h.syncEpoch()
	for a := 0; a < attempts; a++ {
		if h.q.qs[h.r.Intn(h.m)].TryAddBatch(h.inBuf) {
			h.inBuf = h.inBuf[:0]
			return true
		}
	}
	return false
}

// EnqueueTraced performs Enqueue and records the operation; the assigned
// priority is the element's label for the dlin queue-spec replay. In
// batched mode the linearization stamp is taken at buffering time, before
// the element is visible to other handles; the replay stays sound (the
// relaxed spec treats dequeue-empty as a zero-cost no-op and labels stay
// unique) but dequeue rank costs are then measured against all logically
// enqueued labels, including still-buffered ones — the same accounting as
// quality.MeasureDequeueRank.
func (h *MQHandle) EnqueueTraced(value uint64, rec *trace.Recorder, log *trace.ThreadLog) uint64 {
	start := rec.Stamp()
	p := h.Enqueue(value)
	lin := rec.Stamp()
	log.Record(trace.Event{Kind: trace.KindEnq, Start: start, Lin: lin, End: lin, Arg: p})
	return p
}

// DequeueTraced performs Dequeue and records the operation with the removed
// element's label.
func (h *MQHandle) DequeueTraced(rec *trace.Recorder, log *trace.ThreadLog) (heap.Item, bool) {
	start := rec.Stamp()
	it, ok := h.Dequeue()
	lin := rec.Stamp()
	log.Record(trace.Event{Kind: trace.KindDeq, Start: start, Lin: lin, End: lin, Ret: it.Priority, OK: ok})
	return it, ok
}
