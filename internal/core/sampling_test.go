package core

import (
	"testing"

	"repro/internal/rng"
)

func TestSamplerFreshEveryOpWhenWindowOne(t *testing.T) {
	s := NewSampler(1024, 2, 1)
	r := rng.NewXoshiro256(1)
	a := append([]int(nil), s.Candidates(r, 1)...)
	s.Charge(1)
	b := append([]int(nil), s.Candidates(r, 1)...)
	if a[0] == b[0] && a[1] == b[1] {
		t.Fatalf("window=1 re-used candidates %v", a)
	}
}

func TestSamplerSticksForWindow(t *testing.T) {
	s := NewSampler(1024, 2, 5)
	r := rng.NewXoshiro256(2)
	first := append([]int(nil), s.Candidates(r, 1)...)
	s.Charge(1)
	for i := 0; i < 4; i++ {
		got := s.Candidates(r, 1)
		s.Charge(1)
		if got[0] != first[0] || got[1] != first[1] {
			t.Fatalf("candidates changed inside window at op %d: %v vs %v", i, got, first)
		}
	}
	// Window exhausted: the next draw must be allowed to change (with m=1024
	// a repeat of both indices is vanishingly unlikely).
	next := s.Candidates(r, 1)
	if next[0] == first[0] && next[1] == first[1] {
		t.Fatalf("candidates unchanged after window expiry: %v", next)
	}
}

func TestSamplerNeverSplitsABatch(t *testing.T) {
	// With window 4 and batches of 3, each draw must serve exactly one whole
	// batch: 3 does not divide 4, and the sampler re-rolls rather than split.
	s := NewSampler(1024, 1, 4)
	r := rng.NewXoshiro256(3)
	a := s.Candidates(r, 3)[0]
	s.Charge(3)
	b := s.Candidates(r, 3)[0] // 1 slot left < 3 needed: must re-roll
	if a == b {
		t.Fatalf("sampler split a batch across an expired window (index %d twice)", a)
	}
}

func TestSamplerExpire(t *testing.T) {
	s := NewSampler(1024, 2, 100)
	r := rng.NewXoshiro256(4)
	a := append([]int(nil), s.Candidates(r, 1)...)
	s.Expire()
	b := s.Candidates(r, 1)
	if a[0] == b[0] && a[1] == b[1] {
		t.Fatalf("Expire did not force a fresh draw: %v", a)
	}
}

func TestSamplerBestPicksArgmin(t *testing.T) {
	loads := []uint64{9, 3, 7, 1, 8, 2, 6, 4}
	s := NewSampler(len(loads), 4, 1)
	r := rng.NewXoshiro256(5)
	for i := 0; i < 100; i++ {
		best := s.Best(r, 1, func(i int) uint64 { return loads[i] })
		s.Charge(1)
		cand := s.cand
		for _, c := range cand {
			if loads[c] < loads[best] {
				t.Fatalf("Best returned %d (load %d) but candidate %d has load %d",
					best, loads[best], c, loads[c])
			}
		}
	}
}

func TestSamplerSingleChoiceSkipsLoads(t *testing.T) {
	s := NewSampler(16, 1, 1)
	r := rng.NewXoshiro256(6)
	// load must never be called for d=1; a panicking load proves it.
	i := s.Best(r, 1, func(int) uint64 { panic("load read for d=1") })
	if i < 0 || i >= 16 {
		t.Fatalf("index %d out of range", i)
	}
}

func TestSamplerPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"m=0": func() { NewSampler(0, 2, 1) },
		"d=0": func() { NewSampler(4, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSampler %s did not panic", name)
				}
			}()
			fn()
		}()
	}
	// window < 1 normalizes instead of panicking.
	if s := NewSampler(4, 2, 0); s.Window() != 1 {
		t.Fatalf("window 0 normalized to %d, want 1", s.Window())
	}
	if s := NewSampler(4, 3, 7); s.Choices() != 3 || s.Window() != 7 {
		t.Fatalf("accessors returned d=%d w=%d", s.Choices(), s.Window())
	}
}
