package core

// Topology is the shared capacity surface of both relaxed structures — the
// redesigned "how many shards" API that replaces the frozen constructor
// argument m (DESIGN.md §11). InitialM is the live shard count at
// construction; MinM and MaxM bound the range Resize (and the optional
// AutoScale controller) may move it within. The full MaxM shard array is
// allocated up front — grow and shrink only move the live boundary — so a
// resize epoch never republishes the shard slice and lock-free readers keep
// their one-atomic-load entry.
//
// The zero value of every field defaults sensibly against the structure's
// legacy m: InitialM 0 adopts the deprecated Queues/Counters field, and
// MinM/MaxM 0 pin to InitialM (a fixed-m structure, exactly the pre-epoch
// behavior). Explicit values must satisfy 1 ≤ MinM ≤ InitialM ≤ MaxM.
type Topology struct {
	// InitialM is the live shard count at construction. 0 adopts the
	// enclosing config's deprecated fixed-m field.
	InitialM int
	// MinM is the smallest live shard count a shrink may reach (0 = InitialM).
	MinM int
	// MaxM is the largest live shard count a grow may reach, and the size of
	// the backing shard array (0 = InitialM).
	MaxM int
	// AutoScale enables the contention-driven controller; nil leaves the
	// shard count under manual Resize control only.
	AutoScale *AutoScale
}

// AutoScale configures the contention-driven resize controller. The
// controller is pull-style: each AutoScaleTick call folds the contention
// signal accrued since the previous tick into one pressure number and moves
// the live shard count one step (double toward MaxM, halve toward MinM) when
// the pressure crosses a threshold and the dwell has elapsed. For the
// MultiQueue the pressure is internal — the fraction of critical sections
// whose lock acquisition entered the spin-backoff slow path
// (ΔLockContended / Δ(Elisions+Publications)); the MultiCounter's updates
// are wait-free and expose no internal contention, so its tick accepts the
// caller's pressure signal (dlzd feeds it the paired queue's).
type AutoScale struct {
	// GrowThreshold is the pressure at or above which the live shard count
	// doubles (clamped to MaxM). 0 defaults to 0.5.
	GrowThreshold float64
	// ShrinkThreshold is the pressure at or below which the live shard count
	// halves (clamped to MinM). 0 defaults to 0.05; negative disables
	// shrinking.
	ShrinkThreshold float64
	// Dwell is the minimum number of ticks between steps, damping
	// oscillation. 0 defaults to 2.
	Dwell int
}

// defaults for the AutoScale zero value.
const (
	defaultGrowThreshold   = 0.5
	defaultShrinkThreshold = 0.05
	defaultDwell           = 2
)

// normalized returns a copy with zero values resolved: GrowThreshold 0.5,
// ShrinkThreshold 0.05, Dwell 2.
func (a AutoScale) normalized() AutoScale {
	if a.GrowThreshold == 0 {
		a.GrowThreshold = defaultGrowThreshold
	}
	if a.ShrinkThreshold == 0 {
		a.ShrinkThreshold = defaultShrinkThreshold
	}
	if a.Dwell <= 0 {
		a.Dwell = defaultDwell
	}
	return a
}

// normalize resolves the Topology against a config's deprecated fixed-m
// field and validates the result, panicking (like every config constructor
// in this package) on an unsatisfiable range. name labels the panic message
// with the enclosing config.
func (t Topology) normalize(legacy int, name string) Topology {
	if t.InitialM == 0 {
		t.InitialM = legacy
	}
	if t.InitialM <= 0 {
		panic("core: " + name + " needs a positive shard count (Topology.InitialM or the deprecated fixed-m field)")
	}
	if t.MinM == 0 {
		t.MinM = t.InitialM
	}
	if t.MaxM == 0 {
		t.MaxM = t.InitialM
	}
	if t.MinM < 1 || t.MinM > t.InitialM || t.InitialM > t.MaxM {
		panic("core: " + name + " needs 1 <= MinM <= InitialM <= MaxM")
	}
	if t.AutoScale != nil {
		as := t.AutoScale.normalized()
		t.AutoScale = &as
	}
	return t
}

// clamp bounds a requested live shard count to [MinM, MaxM].
func (t Topology) clamp(m int) int {
	if m < t.MinM {
		return t.MinM
	}
	if m > t.MaxM {
		return t.MaxM
	}
	return m
}

// scaler is the per-structure controller state, guarded by the structure's
// resize mutex. The decision rule is a pure function of (current m,
// pressure, ticks since the last step) so the seeded controller tests can
// drive it deterministically.
type scaler struct {
	as        AutoScale
	sinceStep int
}

// decide advances the controller one tick and returns the shard count the
// structure should move to (cur when no step is due). A step requires more
// than Dwell ticks since the previous step (or since construction), so a
// transient spike shorter than the dwell never moves m, and each step
// resets the clock.
func (s *scaler) decide(t Topology, cur int, pressure float64) int {
	s.sinceStep++
	if s.sinceStep <= s.as.Dwell {
		return cur
	}
	next := cur
	switch {
	case pressure >= s.as.GrowThreshold:
		next = t.clamp(cur * 2)
	case s.as.ShrinkThreshold >= 0 && pressure <= s.as.ShrinkThreshold:
		next = t.clamp(cur / 2)
	}
	if next != cur {
		s.sinceStep = 0
	}
	return next
}
