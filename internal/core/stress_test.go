package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stressDuration boxes each race-detector stress run. The full suite sweeps
// several configurations; keeping each box short keeps `go test -race ./...`
// under the ISSUE's two-minute budget, and testing.Short() shrinks it
// further for quick iteration.
func stressDuration() time.Duration {
	if testing.Short() {
		return 20 * time.Millisecond
	}
	return 150 * time.Millisecond
}

// stressWorkers oversubscribes the machine slightly so the race detector
// sees real interleaving even on small CPU counts.
func stressWorkers() int {
	w := 2 * runtime.GOMAXPROCS(0)
	if w < 4 {
		w = 4
	}
	return w
}

// TestStressMultiQueueStickyBatched hammers the sticky/batched MultiQueue
// fast path from concurrently enqueueing and dequeueing goroutines, under
// every knob combination, and then audits conservation: every value that
// went in is either consumed, still prefetched by a worker, or drained at
// quiescence — exactly once.
func TestStressMultiQueueStickyBatched(t *testing.T) {
	for _, g := range stickyBatchGrid {
		g := g
		t.Run(fmt.Sprintf("s%d/k%d/a%v", g.stick, g.batch, g.affinity), func(t *testing.T) {
			workers := stressWorkers()
			q := NewMultiQueue(MultiQueueConfig{
				Queues: 2 * workers, Seed: 41,
				Stickiness: g.stick, Batch: g.batch, Affinity: g.affinity,
			})
			var stop atomic.Bool
			var next atomic.Uint64 // unique value source across workers
			handles := make([]*MQHandle, workers)
			outs := make([][]uint64, workers)
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					h := q.NewHandle(uint64(w) + 1)
					handles[w] = h
					for !stop.Load() {
						h.Enqueue(next.Add(1))
						if it, ok := h.Dequeue(); ok {
							outs[w] = append(outs[w], it.Value)
						}
					}
				}(w)
			}
			time.Sleep(stressDuration())
			stop.Store(true)
			wg.Wait()

			seen := make(map[uint64]bool, next.Load())
			record := func(v uint64) {
				if seen[v] {
					t.Fatalf("value %d observed twice", v)
				}
				seen[v] = true
			}
			for _, run := range outs {
				for _, v := range run {
					record(v)
				}
			}
			for _, h := range handles {
				for h.Prefetched() > 0 {
					it, _ := h.Dequeue()
					record(it.Value)
				}
				h.Flush()
			}
			drainer := q.NewHandle(9999)
			for {
				it, ok := drainer.Dequeue()
				if !ok {
					break
				}
				record(it.Value)
			}
			if got, want := uint64(len(seen)), next.Load(); got != want {
				t.Fatalf("accounted %d values, want %d", got, want)
			}
			if q.Len() != 0 {
				t.Fatalf("Len = %d after drain", q.Len())
			}
		})
	}
}

// TestStressMultiQueueMixedOps exercises every dequeue variant (Dequeue,
// DequeueD, TryDequeue) concurrently against batched enqueues — the variants
// share the prefetch buffer, so the race detector must see a consistent
// handle-local protocol.
func TestStressMultiQueueMixedOps(t *testing.T) {
	workers := stressWorkers()
	q := NewMultiQueue(MultiQueueConfig{
		Queues: 2 * workers, Seed: 43, Stickiness: 8, Batch: 8,
	})
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle(uint64(w) + 1)
			var n uint64
			for !stop.Load() {
				h.Enqueue(n)
				n++
				switch n % 3 {
				case 0:
					h.Dequeue()
				case 1:
					h.DequeueD(3)
				default:
					h.TryDequeue(8)
				}
			}
		}(w)
	}
	time.Sleep(stressDuration())
	stop.Store(true)
	wg.Wait()
}

// TestStressMultiCounterStickyBatched hammers the counter's amortised fast
// path from concurrent handles across the Choices × Stickiness × Batch grid
// and audits conservation at quiescence: published weight plus each handle's
// remaining buffer must equal the number of completed increments exactly.
func TestStressMultiCounterStickyBatched(t *testing.T) {
	for _, g := range counterGrid {
		g := g
		t.Run(fmt.Sprintf("d%d/s%d/k%d/a%v", g.d, g.stick, g.batch, g.affinity), func(t *testing.T) {
			workers := stressWorkers()
			mc := NewMultiCounterConfig(MultiCounterConfig{
				Counters: 8 * workers, Choices: g.d,
				Stickiness: g.stick, Batch: g.batch, Affinity: g.affinity,
			})
			var stop atomic.Bool
			var done atomic.Uint64
			handles := make([]*Handle, workers)
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					h := mc.NewHandle(uint64(w) + 1)
					handles[w] = h
					var n uint64
					for !stop.Load() {
						h.Increment()
						n++
						if n%64 == 0 {
							h.Read()
						}
					}
					done.Add(n)
				}(w)
			}
			time.Sleep(stressDuration())
			stop.Store(true)
			wg.Wait()
			for _, h := range handles {
				h.Flush()
			}
			if got, want := mc.Exact(), done.Load(); got != want {
				t.Fatalf("Exact = %d after flush, want %d completed increments", got, want)
			}
		})
	}
}

// TestStressMultiCounter hammers the MultiCounter's increment/add/read paths
// and checks the exact sum at quiescence: every completed increment must be
// visible.
func TestStressMultiCounter(t *testing.T) {
	workers := stressWorkers()
	mc := NewMultiCounter(8 * workers)
	var stop atomic.Bool
	var done atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := mc.NewHandle(uint64(w) + 1)
			var n uint64
			for !stop.Load() {
				h.Increment()
				n++
				if n%64 == 0 {
					h.Read()
				}
			}
			done.Add(n)
		}(w)
	}
	time.Sleep(stressDuration())
	stop.Store(true)
	wg.Wait()
	if got, want := mc.Exact(), done.Load(); got != want {
		t.Fatalf("Exact() = %d, want %d completed increments", got, want)
	}
}
