package core

import (
	"testing"

	"repro/internal/cpq"
)

// TestMQHandleHotPathZeroAlloc pins the batched MultiQueue hot path at zero
// allocations per operation: after warm-up, an enqueue+dequeue pair must
// reuse the handle's fixed-capacity batch and prefetch buffers and the
// per-queue heap's preallocated array — no growth anywhere. Run for every
// backing so a future backing cannot silently reintroduce churn (the pairing
// heap recycles nodes; the skiplist is exempt because its insert genuinely
// allocates a node).
func TestMQHandleHotPathZeroAlloc(t *testing.T) {
	for _, backing := range []cpq.Backing{cpq.BackingBinary, cpq.BackingDAry, cpq.BackingPairing} {
		t.Run(backing.String(), func(t *testing.T) {
			q := NewMultiQueue(MultiQueueConfig{
				Queues: 16, Backing: backing, Seed: 3, Stickiness: 8, Batch: 8,
				Capacity: 4096,
			})
			h := q.NewHandle(4)
			for i := 0; i < 4096; i++ {
				h.Enqueue(uint64(i))
				h.Dequeue()
			}
			allocs := testing.AllocsPerRun(2000, func() {
				h.Enqueue(1)
				h.Dequeue()
			})
			if allocs != 0 {
				t.Fatalf("steady-state enqueue+dequeue allocated %.2f objects/op, want 0", allocs)
			}
		})
	}
}

// TestMCHandleHotPathZeroAlloc pins the batched MultiCounter hot path the
// same way: a steady-state increment buffers locally and publishes through
// the sticky sampler's preallocated candidate set, allocating nothing.
func TestMCHandleHotPathZeroAlloc(t *testing.T) {
	mc := NewMultiCounterConfig(MultiCounterConfig{
		Counters: 16, Choices: 2, Stickiness: 8, Batch: 8,
	})
	h := mc.NewHandle(5)
	for i := 0; i < 4096; i++ {
		h.Increment()
	}
	allocs := testing.AllocsPerRun(2000, func() { h.Increment() })
	if allocs != 0 {
		t.Fatalf("steady-state increment allocated %.2f objects/op, want 0", allocs)
	}
}
