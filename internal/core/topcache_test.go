package core

import (
	"testing"
	"time"
)

// TestEmptyScanTakesNoLocks pins the tentpole's acceptance criterion: once a
// MultiQueue is (observed) empty, Dequeue's d-choice comparison, its
// fallback sweep, TryDequeue's whole budget and DequeueD must perform zero
// lock acquisitions — they read cached top words only. The proof is by
// construction: every internal queue's lock is held by a simulated crashed
// holder (LockForTest takes the lock without marking the word mid-update,
// exactly like a thread that died between acquiring and mutating), so any
// lock acquisition on the scan path would block forever; and every word's
// publication sequence is compared before/after, so any mutating critical
// section would be counted. The watchdog converts a deadlock into a failure
// instead of a test timeout.
func TestEmptyScanTakesNoLocks(t *testing.T) {
	for _, batch := range []int{1, 8} {
		q := NewMultiQueue(MultiQueueConfig{Queues: 16, Seed: 3, Stickiness: 4, Batch: batch})
		h := q.NewHandle(5)
		// Give every word a non-trivial history, then drain to empty.
		for i := 0; i < 256; i++ {
			h.Enqueue(uint64(i))
		}
		h.Flush()
		for {
			if _, ok := h.Dequeue(); !ok {
				break
			}
		}

		seqs := make([]uint64, q.M())
		for i, pq := range q.qs {
			w := pq.ReadTop()
			if !w.StableEmpty() {
				t.Fatalf("batch=%d: queue %d word not stable-empty after drain", batch, i)
			}
			seqs[i] = w.Seq()
		}
		for i, pq := range q.qs {
			if !pq.LockForTest() {
				t.Fatalf("batch=%d: could not seize lock %d", batch, i)
			}
		}

		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, ok := h.Dequeue(); ok {
				t.Errorf("batch=%d: Dequeue found an element in an empty structure", batch)
			}
			if _, ok := h.TryDequeue(64); ok {
				t.Errorf("batch=%d: TryDequeue found an element in an empty structure", batch)
			}
			if _, ok := h.DequeueD(2); ok {
				t.Errorf("batch=%d: DequeueD found an element in an empty structure", batch)
			}
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("batch=%d: empty scan blocked on a held queue lock", batch)
		}

		for _, pq := range q.qs {
			pq.UnlockForTest()
		}
		for i, pq := range q.qs {
			if got := pq.ReadTop().Seq(); got != seqs[i] {
				t.Fatalf("batch=%d: queue %d mutation counter moved %d -> %d during the empty scan",
					batch, i, seqs[i], got)
			}
		}
	}
}

// TestLockedTopReadAblation pins ablation A5's wiring: with LockedTopRead
// the structure still works (elements round-trip) while every top read goes
// through the lock — so the same all-locks-held construction that proves the
// cached path lock-free would deadlock, which we avoid re-proving and
// instead check the flag's visible behavior and accessor.
func TestLockedTopReadAblation(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 4, Seed: 9, LockedTopRead: true})
	if !q.LockedTopRead() {
		t.Fatal("LockedTopRead accessor lost the flag")
	}
	h := q.NewHandle(1)
	for i := 0; i < 100; i++ {
		h.Enqueue(uint64(i))
	}
	seen := make(map[uint64]bool, 100)
	for n := 0; n < 100; n++ {
		it, ok := h.Dequeue()
		if !ok {
			t.Fatalf("drained only %d of 100", n)
		}
		if seen[it.Value] {
			t.Fatalf("value %d dequeued twice", it.Value)
		}
		seen[it.Value] = true
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("extra element after full drain")
	}
}
