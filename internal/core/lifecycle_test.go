package core

import (
	"testing"

	"repro/internal/cpq"
)

// TestHandleDropWithoutFlushDetectable pins the abandoned-handle bug the
// Close contract fixes: a batched counter handle that is dropped without
// Flush holds increments no audit can see — but the loss is now detectable
// (Buffered/BufferedWeight stay nonzero) and Close drains it to zero.
func TestHandleDropWithoutFlushDetectable(t *testing.T) {
	mc := NewMultiCounterConfig(MultiCounterConfig{Counters: 8, Batch: 16})
	h := mc.NewHandle(1)
	for i := 0; i < 10; i++ {
		h.Add(2)
	}
	// Simulated abandon: the handle goes out of use with a partial batch.
	if h.Buffered() != 10 || h.BufferedWeight() != 20 {
		t.Fatalf("abandoned handle should hold its partial batch: Buffered=%d BufferedWeight=%d",
			h.Buffered(), h.BufferedWeight())
	}
	if got := mc.Exact(); got != 0 {
		t.Fatalf("buffered increments leaked into Exact: %d", got)
	}
	h.Close()
	if h.Buffered() != 0 || h.BufferedWeight() != 0 {
		t.Fatalf("Close must drain the buffer: Buffered=%d BufferedWeight=%d",
			h.Buffered(), h.BufferedWeight())
	}
	if got := mc.Exact(); got != 20 {
		t.Fatalf("Close must publish the buffered weight: Exact=%d want 20", got)
	}
	h.Close() // idempotent
	if got := mc.Exact(); got != 20 {
		t.Fatalf("second Close must be a no-op: Exact=%d want 20", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add on a closed Handle must panic")
		}
	}()
	h.Add(1)
}

// TestMQHandleCloseDrainsBuffersAndPrefetch verifies the queue side of the
// Close contract: buffered inserts are flushed, unconsumed prefetched
// elements are returned to the shared structure, and the element count is
// conserved exactly.
func TestMQHandleCloseDrainsBuffersAndPrefetch(t *testing.T) {
	for _, backing := range cpq.Backings() {
		q := NewMultiQueue(MultiQueueConfig{Queues: 4, Batch: 8, Stickiness: 8, Backing: backing, Seed: 3})
		h := q.NewHandle(1)
		const n = 40
		for i := 0; i < n; i++ {
			h.Enqueue(uint64(i))
		}
		// Partial batch still buffered plus a prefetch run parked: the two
		// places an abandoned handle loses elements.
		h.Enqueue(100)
		consumed := 0
		if _, ok := h.Dequeue(); ok {
			consumed++
		}
		if h.Buffered() == 0 && h.Prefetched() == 0 {
			t.Fatalf("%v: test setup should leave handle-local elements", backing)
		}
		h.Close()
		if h.Buffered() != 0 || h.Prefetched() != 0 {
			t.Fatalf("%v: Close must drain handle-local state: Buffered=%d Prefetched=%d",
				backing, h.Buffered(), h.Prefetched())
		}
		if got, want := q.Len(), n+1-consumed; got != want {
			t.Fatalf("%v: conservation after Close: Len=%d want %d", backing, got, want)
		}
		if !h.Closed() {
			t.Fatalf("%v: Closed() should report true", backing)
		}
		h.Close() // idempotent
		if got, want := q.Len(), n+1-consumed; got != want {
			t.Fatalf("%v: second Close must be a no-op: Len=%d want %d", backing, got, want)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%v: Dequeue on a closed MQHandle must panic", backing)
				}
			}()
			h.Dequeue()
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%v: Enqueue on a closed MQHandle must panic", backing)
				}
			}()
			h.Enqueue(1)
		}()
	}
}

// TestMQHandleClosePreservesFullResolutionPriorities drains a queue through
// Close's AddBatch give-back with priorities straddling the 2^48 top-word
// truncation boundary, so the returned prefetch cannot be re-ranked by a
// truncated word.
func TestMQHandleClosePreservesFullResolutionPriorities(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 1, Batch: 4})
	h := q.NewHandle(1)
	base := uint64(1) << 48
	prios := []uint64{base + 2, 3, base - 1, base, 7, base + 1, base - 2, 5}
	for _, p := range prios {
		h.EnqueuePriority(p, p)
	}
	h.Flush()
	// Prefetch a run, consume one element, abandon the rest via Close.
	if _, ok := h.Dequeue(); !ok {
		t.Fatal("expected an element")
	}
	h.Close()
	h2 := q.NewHandle(2)
	var got []uint64
	for {
		it, ok := h2.Dequeue()
		if !ok {
			break
		}
		got = append(got, it.Priority)
	}
	if len(got) != len(prios)-1 {
		t.Fatalf("drained %d elements, want %d", len(got), len(prios)-1)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("m=1 drain must be exactly sorted at full resolution: %v", got)
		}
	}
}

// TestMQStatsCounters checks the monitoring counters the daemon exports:
// elisions and publications move under batched traffic and rerolls count
// empty-outcome redraws.
func TestMQStatsCounters(t *testing.T) {
	q := NewMultiQueue(MultiQueueConfig{Queues: 2, Batch: 4, Stickiness: 4, Seed: 9})
	h := q.NewHandle(1)
	if s := q.Stats(); s.Elisions != 0 || s.Publications != 0 || s.LockContended != 0 {
		t.Fatalf("fresh queue should have zero counters: %+v", s)
	}
	for i := 0; i < 256; i++ {
		h.Enqueue(uint64(i))
	}
	h.Flush()
	s := q.Stats()
	if s.Publications == 0 {
		t.Fatalf("batched enqueues should have published at least once: %+v", s)
	}
	if s.Elisions == 0 {
		t.Fatalf("monotone-stamp batched enqueues should elide publications: %+v", s)
	}
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
	}
	// Dequeue-on-empty forces rerolls (every attempt abandons its sticky
	// candidates) before the fallback sweep returns false.
	if h.Rerolls() == 0 {
		t.Fatal("draining past empty should have requested sampler rerolls")
	}
	if s2 := q.Stats(); s2.Publications < s.Publications {
		t.Fatalf("counters must be monotonic: %+v then %+v", s, s2)
	}
}
