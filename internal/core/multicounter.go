package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/counters"
	"repro/internal/pad"
	"repro/internal/rng"
	"repro/internal/trace"
)

// MultiCounter is the relaxed approximate counter of Algorithm 1: m atomic
// counters; Increment applies the d-choice rule (read d random counters,
// increment the one that appeared smallest; the paper's default is d = 2);
// Read samples one counter and scales by m to keep the magnitude of the true
// total.
//
// With m ≥ C·n for the analysis constant C, Theorem 6.1 shows the value
// returned by Read is within O(m·log m) of the number of completed
// increments, in expectation and w.h.p., at every point of every execution
// under an oblivious scheduler.
//
// Beyond the paper, MultiCounterConfig{Choices, Stickiness, Batch} enables
// the same amortised fast path the MultiQueue carries: handles stick to
// their sampled shard candidates for a window of operations and accumulate
// increments locally, publishing a whole batch with one shared atomic add
// (DESIGN.md §2). cmd/quality and cmd/benchall audit the deviation cost of
// any setting against the m·log₂m envelope.
type MultiCounter struct {
	shards   *counters.Sharded // sized Topology.MaxM; cells >= live m idle at 0
	topo     Topology
	d        int
	stick    int
	batch    int
	affinity float64
	nextID   atomic.Uint64 // handle ids, assigned at NewHandle

	// Elastic topology state, mirroring the MultiQueue's (DESIGN.md §11):
	// epoch publishes (resize epoch, live m) in one padded atomic word.
	// Counter cells need no sealing — a straggler increment landing in a
	// retired cell is swept up by the next resize's re-level and still
	// counted by Exact, which sums the full MaxM array.
	epoch    pad.EpochWord
	resizeMu sync.Mutex
	resizes  atomic.Uint64
	scal     scaler
}

// MultiCounterConfig configures NewMultiCounter. The zero value of optional
// fields selects the paper's defaults (two fresh choices per increment, no
// batching — Algorithm 1 exactly).
type MultiCounterConfig struct {
	// Counters is m, the number of atomic counters (Algorithm 1's bins).
	// For Theorem 6.1's guarantees m should be a large constant multiple of
	// the thread count; m ≈ 4–8× threads balances well in practice
	// (Figure 1a).
	//
	// Deprecated: set Topology.InitialM instead. Counters is kept as the
	// legacy fixed-m form — when Topology is the zero value it behaves
	// exactly as before (MinM = MaxM = Counters, no resizing).
	Counters int
	// Topology is the redesigned capacity surface: initial, minimum and
	// maximum live shard counts plus the optional AutoScale controller
	// (DESIGN.md §11). A zero InitialM adopts Counters.
	Topology Topology
	// Choices is d, the number of random counters an increment samples
	// before incrementing the smallest. 0 selects the paper's d = 2;
	// d = 1 is the divergent single-choice process (ablation A1); d > 2
	// trades extra shared reads for a tighter gap. Negative values panic.
	Choices int
	// Stickiness is the operation-stickiness window s: a handle re-uses its
	// d sampled shard candidates for up to s consecutive increments before
	// re-rolling, charged per increment, exactly like the MultiQueue's
	// window (a candidate set serves max(s, Batch) increments — a batch is
	// never split). 0 or 1 means fresh choices every operation. Larger s
	// amortises PRNG draws at the cost of extra deviation (re-measure with
	// cmd/quality).
	Stickiness int
	// Batch is the batching factor k: handles accumulate up to k increments
	// (or Add weights) in a private buffer and publish the sum with one
	// shared atomic add — one d-choice sample and one coherence miss per k
	// increments instead of per increment. 0 or 1 means per-operation
	// publishing. Buffered increments are invisible to Read/Exact/Gap until
	// the batch flushes; call Handle.Flush at quiescence.
	Batch int
	// Affinity is the shard-affinity fraction a ∈ [0, 1] of the sticky
	// d-choice sampler (DESIGN.md §7): each handle owns a home stripe of
	// w = max(Choices, ⌈a·Counters⌉) contiguous shard indices, placed
	// deterministically from its handle id, and every candidate refresh
	// draws Choices−1 candidates from the stripe plus one uniform escape
	// candidate, rotating the stripe periodically so no shard starves.
	// 0 (the default) keeps every draw uniform — the paper's assumption and
	// tracing identically to the pre-affinity sampler except where the
	// candidate dedupe resamples a collision (~d²/2m of refreshes). The
	// deviation cost of any setting is measured by cmd/quality -affinity.
	// Values outside [0, 1] panic.
	Affinity float64
}

// MultiCounterOption is a functional option for the NewMultiCounter
// convenience constructor; options edit the MultiCounterConfig before the
// counter is built.
type MultiCounterOption func(*MultiCounterConfig)

// WithChoices sets MultiCounterConfig.Choices, the number of random choices
// d per increment (default 2). d = 1 degenerates to the divergent
// single-choice process and exists for ablation A1; d > 2 trades extra reads
// for tighter balance. d < 1 panics.
func WithChoices(d int) MultiCounterOption {
	if d < 1 {
		panic("core: WithChoices needs d >= 1")
	}
	return func(cfg *MultiCounterConfig) { cfg.Choices = d }
}

// WithStickiness sets MultiCounterConfig.Stickiness, the sticky sampling
// window s (values below 1 normalize to 1: fresh choices every increment).
func WithStickiness(s int) MultiCounterOption {
	return func(cfg *MultiCounterConfig) { cfg.Stickiness = s }
}

// WithBatch sets MultiCounterConfig.Batch, the number of increments a handle
// buffers per shared atomic publish (values below 1 normalize to 1:
// per-operation publishing, Algorithm 1 exactly).
func WithBatch(k int) MultiCounterOption {
	return func(cfg *MultiCounterConfig) { cfg.Batch = k }
}

// WithAffinity sets MultiCounterConfig.Affinity, the shard-affinity fraction
// a ∈ [0, 1] biasing each handle's sticky d-choice sampler toward its home
// stripe of max(Choices, ⌈a·m⌉) contiguous shards (0, the default, keeps
// every draw uniform — Algorithm 1 exactly). Values outside [0, 1] panic.
func WithAffinity(a float64) MultiCounterOption {
	if !(a >= 0 && a <= 1) { // rejects NaN too
		panic("core: WithAffinity needs a in [0, 1]")
	}
	return func(cfg *MultiCounterConfig) { cfg.Affinity = a }
}

// WithTopology sets MultiCounterConfig.Topology, the elastic capacity
// surface (DESIGN.md §11). Passing a Topology whose InitialM is 0 keeps the
// constructor's m argument as the initial live shard count while still
// widening the [MinM, MaxM] resize range.
func WithTopology(t Topology) MultiCounterOption {
	return func(cfg *MultiCounterConfig) { cfg.Topology = t }
}

// WithAutoScale bounds the live shard count to [minM, maxM] and enables the
// contention-driven controller with policy as (zero-value fields take the
// AutoScale defaults). Shorthand for WithTopology with an AutoScale set.
func WithAutoScale(minM, maxM int, as AutoScale) MultiCounterOption {
	return func(cfg *MultiCounterConfig) {
		cfg.Topology.MinM = minM
		cfg.Topology.MaxM = maxM
		cfg.Topology.AutoScale = &as
	}
}

// NewMultiCounter returns a MultiCounter over m atomic counters with the
// paper's per-operation two-choice defaults, adjusted by opts. It is the
// convenience form of NewMultiCounterConfig.
func NewMultiCounter(m int, opts ...MultiCounterOption) *MultiCounter {
	cfg := MultiCounterConfig{Counters: m}
	for _, o := range opts {
		o(&cfg)
	}
	return NewMultiCounterConfig(cfg)
}

// NewMultiCounterConfig returns a MultiCounter with the given configuration,
// normalizing zero-valued optional fields to the paper's defaults (Choices 2,
// Stickiness 1, Batch 1 — Algorithm 1 exactly).
func NewMultiCounterConfig(cfg MultiCounterConfig) *MultiCounter {
	topo := cfg.Topology.normalize(cfg.Counters, "MultiCounterConfig")
	if cfg.Choices < 0 {
		panic("core: MultiCounterConfig.Choices must be >= 0")
	}
	if cfg.Choices == 0 {
		cfg.Choices = 2
	}
	if cfg.Stickiness < 1 {
		cfg.Stickiness = 1
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if !(cfg.Affinity >= 0 && cfg.Affinity <= 1) { // rejects NaN too
		panic("core: MultiCounterConfig.Affinity must be in [0, 1]")
	}
	mc := &MultiCounter{
		shards:   counters.NewSharded(topo.MaxM),
		topo:     topo,
		d:        cfg.Choices,
		stick:    cfg.Stickiness,
		batch:    cfg.Batch,
		affinity: cfg.Affinity,
	}
	mc.epoch.Init(0, topo.InitialM)
	if topo.AutoScale != nil {
		mc.scal = scaler{as: *topo.AutoScale}
	}
	return mc
}

// M returns the live number of underlying counters — one atomic load of the
// epoch word, current as of that instant (a concurrent Resize may move it).
func (c *MultiCounter) M() int {
	_, m := pad.UnpackEpoch(c.epoch.Load())
	return m
}

// Topology returns the normalized capacity surface the counter was built
// with.
func (c *MultiCounter) Topology() Topology { return c.topo }

// Epoch returns the resize epoch counter (0 until the first Resize).
func (c *MultiCounter) Epoch() uint64 {
	e, _ := pad.UnpackEpoch(c.epoch.Load())
	return uint64(e)
}

// MCStats carries the MultiCounter's elasticity signals — the counter
// counterpart of the MQStats resize fields (counter updates are wait-free,
// so there are no contention counters to aggregate).
type MCStats struct {
	// CurrentM is the live shard count at snapshot time, Epoch the resize
	// epoch counter, and Resizes the number of completed resize epochs.
	CurrentM int
	Epoch    uint64
	Resizes  uint64
}

// Stats snapshots the elasticity signals without taking any locks.
func (c *MultiCounter) Stats() MCStats {
	e, m := pad.UnpackEpoch(c.epoch.Load())
	return MCStats{CurrentM: m, Epoch: uint64(e), Resizes: c.resizes.Load()}
}

// Resize moves the live shard count to m (clamped to [MinM, MaxM]) and
// returns the count actually in effect. The new epoch word publishes first,
// routing new d-choice updates into the new live range; then every cell of
// the full MaxM array is swapped to zero and the collected weight is spread
// evenly over the new range (remainder on the lowest cells). Exact is
// conserved to the unit: a racing increment lands either before its cell's
// swap (collected and redistributed) or after (it stays in the cell, which
// Exact's full-array sum still covers — a straggler in a retired cell is
// folded back in by the next resize). Read's scaling uses the live m from
// the same epoch word, so approximate reads stay consistent with the
// re-leveled cells.
func (c *MultiCounter) Resize(m int) int {
	c.resizeMu.Lock()
	defer c.resizeMu.Unlock()
	return c.resizeLocked(m)
}

func (c *MultiCounter) resizeLocked(m int) int {
	m = c.topo.clamp(m)
	epoch, cur := pad.UnpackEpoch(c.epoch.Load())
	if m == cur {
		return cur
	}
	c.epoch.Store(epoch+1, m)
	c.resizes.Add(1)
	var w uint64
	for i := 0; i < c.topo.MaxM; i++ {
		w += c.shards.Swap(i, 0)
	}
	per := w / uint64(m)
	rem := w % uint64(m)
	for i := 0; i < m; i++ {
		add := per
		if uint64(i) < rem {
			add++
		}
		if add > 0 {
			c.shards.Add(i, add)
		}
	}
	return m
}

// AutoScaleTick advances the contention-driven controller one tick using the
// caller-supplied pressure signal and returns the live shard count plus
// whether this tick resized. The counter's own updates are wait-free and
// expose no internal contention, so the pressure comes from outside — dlzd
// feeds each tenant's counter the pressure of its paired queue; standalone
// users can derive one from whatever saturation signal they have. A counter
// built without Topology.AutoScale never moves.
func (c *MultiCounter) AutoScaleTick(pressure float64) (m int, resized bool) {
	c.resizeMu.Lock()
	defer c.resizeMu.Unlock()
	_, cur := pad.UnpackEpoch(c.epoch.Load())
	if c.topo.AutoScale == nil {
		return cur, false
	}
	next := c.scal.decide(c.topo, cur, pressure)
	if next == cur {
		return cur, false
	}
	return c.resizeLocked(next), true
}

// Choices returns the configured number of random choices d (>= 1).
func (c *MultiCounter) Choices() int { return c.d }

// Stickiness returns the configured stickiness window s (>= 1).
func (c *MultiCounter) Stickiness() int { return c.stick }

// Batch returns the configured batching factor k (>= 1).
func (c *MultiCounter) Batch() int { return c.batch }

// Affinity returns the configured shard-affinity fraction (0 = uniform).
func (c *MultiCounter) Affinity() float64 { return c.affinity }

// Increment applies one unamortised d-choice increment using the
// caller-owned generator r — Algorithm 1's increment, ignoring the
// stickiness and batching configuration (handles carry that state; see
// Handle.Increment). Reads and the update are separate atomic steps, exactly
// as in the paper — the value read may be stale by the time of the
// increment, which is the concurrency the analysis covers.
func (c *MultiCounter) Increment(r *rng.Xoshiro256) { c.apply(r, 1) }

// Add applies one unamortised d-choice update of weight delta — the weighted
// balls-into-bins extension (Talwar–Wieder; Berenbrink et al., discussed in
// the paper's related work). Theorem 7.1's potential argument covers weight
// distributions with bounded moment generating functions, which includes any
// fixed bounded delta; keep deltas small relative to the O(log m) gap scale
// or the guarantee constants degrade.
func (c *MultiCounter) Add(r *rng.Xoshiro256, delta uint64) { c.apply(r, delta) }

// apply is the shared unamortised d-choice update.
func (c *MultiCounter) apply(r *rng.Xoshiro256, delta uint64) {
	m := c.M()
	if c.d == 1 {
		c.shards.Add(r.Intn(m), delta)
		return
	}
	best := r.Intn(m)
	bestV := c.shards.Read(best)
	for k := 1; k < c.d; k++ {
		i := r.Intn(m)
		if v := c.shards.Read(i); v < bestV {
			best, bestV = i, v
		}
	}
	c.shards.Add(best, delta)
}

// Read returns m times the value of a uniformly random counter — the
// approximate total (Algorithm 1's read, whose deviation Theorem 6.1
// bounds by O(m·log m)). Both the sample and the scale use the live m from
// one epoch-word load.
func (c *MultiCounter) Read(r *rng.Xoshiro256) uint64 {
	m := c.M()
	return uint64(m) * c.shards.Read(r.Intn(m))
}

// Exact returns the sum of all counters. At quiescence (all handles flushed)
// this equals the total published weight; under concurrency it is a lower
// bound at the instant the scan ends. Increments still buffered by batched
// handles are not included until those handles flush.
func (c *MultiCounter) Exact() uint64 { return c.shards.Sum() }

// Gap returns the current max − min over the counters (the quantity whose
// O(log m) bound drives Theorem 6.1). Non-atomic scan; for monitoring and
// quality experiments.
func (c *MultiCounter) Gap() uint64 {
	min, max := c.shards.MinMaxRange(0, c.M())
	return max - min
}

// Snapshot copies the live per-counter values into dst (len must equal M)
// for the quality experiment's bin-distribution traces (Figure 1b). Call at
// quiescence only, since a racing Resize changes M.
func (c *MultiCounter) Snapshot(dst []uint64) {
	if len(dst) != c.M() {
		panic("core: Snapshot dst length mismatch")
	}
	c.shards.SnapshotRange(dst, 0)
}

// Handle binds a MultiCounter to one goroutine's private generator and, in
// sticky/batched mode, the handle-local fast-path state: the sticky d-choice
// sampler and the increment buffer awaiting its batch flush. All hot paths
// go through handles so no PRNG state is shared. A handle must be used by
// one goroutine at a time.
type Handle struct {
	c   *MultiCounter
	id  uint64
	r   *rng.Xoshiro256
	smp Sampler

	// Cached epoch word; syncEpoch re-seeds the sampler for the new live m
	// on the first publish after a resize flip (one atomic load otherwise).
	epochWord uint64

	// Batching state: buffered operation count and summed weight.
	bufOps    int
	bufWeight uint64

	// closed marks a handle retired by Close: its buffer is drained and
	// every further update is a programming error.
	closed bool
}

// NewHandle returns a handle whose random stream is derived from seed,
// inheriting the counter's Choices, Stickiness, Batch and Affinity
// configuration. Handles are numbered in creation order (Handle.ID); the id
// deterministically places the handle's home stripe when Affinity > 0.
// Distinct workers must use distinct seeds (or rng.Streams).
func (c *MultiCounter) NewHandle(seed uint64) *Handle {
	id := c.nextID.Add(1) - 1
	w := c.epoch.Load()
	_, m := pad.UnpackEpoch(w)
	return &Handle{
		c:         c,
		id:        id,
		r:         rng.NewXoshiro256(seed),
		epochWord: w,
		smp:       NewAffineSampler(m, c.d, c.stick, c.affinity, id),
	}
}

// syncEpoch folds a published resize into the handle: one atomic load
// against the cached word, and on a flip the sampler re-seeds in place for
// the new m (stripe re-placement included, no allocation).
func (h *Handle) syncEpoch() {
	if w := h.c.epoch.Load(); w != h.epochWord {
		h.epochWord = w
		_, m := pad.UnpackEpoch(w)
		h.smp.Reseed(m)
	}
}

// Increment applies one relaxed increment: an immediate sticky d-choice
// update in per-op mode, or a buffered one in batched mode (published by the
// k-th buffered operation or an explicit Flush).
func (h *Handle) Increment() { h.Add(1) }

// Add applies one relaxed update of weight delta through the same
// sticky/batched path as Increment (the weighted extension; see
// MultiCounter.Add for the analysis caveats).
func (h *Handle) Add(delta uint64) {
	if h.closed {
		panic("core: operation on closed Handle")
	}
	if h.c.batch <= 1 {
		h.syncEpoch()
		i := h.smp.Best(h.r, 1, h.c.shards.Read)
		h.smp.Charge(1)
		h.c.shards.Add(i, delta)
		return
	}
	h.bufOps++
	h.bufWeight += delta
	if h.bufOps >= h.c.batch {
		h.Flush()
	}
}

// Buffered returns the number of increments (Add calls) held in this
// handle's buffer, not yet visible to Read/Exact/Gap. Zero unless Batch > 1.
func (h *Handle) Buffered() int { return h.bufOps }

// BufferedWeight returns the summed weight of the buffered increments — the
// amount Exact is currently short by on this handle's account. Zero unless
// Batch > 1.
func (h *Handle) BufferedWeight() uint64 { return h.bufWeight }

// Flush publishes any buffered increments with one sticky d-choice atomic
// add, charging the stickiness window per buffered operation. Call at
// quiescence (before Exact/Gap/Snapshot audits); a handle with an empty
// buffer flushes for free.
func (h *Handle) Flush() {
	if h.bufOps == 0 {
		return
	}
	h.syncEpoch()
	i := h.smp.Best(h.r, h.bufOps, h.c.shards.Read)
	h.smp.Charge(h.bufOps)
	h.c.shards.Add(i, h.bufWeight)
	h.bufOps, h.bufWeight = 0, 0
}

// Read returns the approximate counter value (Algorithm 1's read). This
// handle's own buffered increments are not yet reflected; Flush first if the
// caller needs them counted.
func (h *Handle) Read() uint64 { return h.c.Read(h.r) }

// Rerolls returns the number of Sampler.Reroll requests over this handle's
// lifetime. The counter path never rerolls on its own (there is no
// empty/contended outcome to abandon), so this is zero today; it exists so
// the two handle types expose the same observability surface.
func (h *Handle) Rerolls() uint64 { return h.smp.Rerolls() }

// Closed reports whether Close has retired this handle.
func (h *Handle) Closed() bool { return h.closed }

// Close retires the handle: buffered increments are flushed with one final
// d-choice publish and the handle is invalidated. After Close, Buffered and
// BufferedWeight are zero and any further Increment/Add panics; closing an
// already-closed handle is a no-op. Owners that cannot guarantee a final
// Flush (connection handlers, pools, lease managers like dlzd) must Close
// handles they abandon, or the counter silently loses the buffered weight —
// the abandoned-handle bug this contract fixes.
func (h *Handle) Close() {
	if h.closed {
		return
	}
	h.Flush()
	h.closed = true
}

// Counter returns the underlying MultiCounter.
func (h *Handle) Counter() *MultiCounter { return h.c }

// ID returns the handle's creation-order id (0 for the first handle), the
// value that seeds its home stripe when the counter runs with Affinity > 0.
func (h *Handle) ID() uint64 { return h.id }

// IncrementTraced performs an unamortised increment and records the
// operation in log with stamps from rec; the linearization stamp is taken
// adjacent to the atomic increment. Traced operations always use the per-op
// path (never the handle's batch buffer) so the stamp brackets the shared
// memory step the dlin replay orders. Used by the dlcheck tool and the
// distributional-linearizability integration tests.
func (h *Handle) IncrementTraced(rec *trace.Recorder, log *trace.ThreadLog) {
	start := rec.Stamp()
	h.c.Increment(h.r)
	lin := rec.Stamp()
	log.Record(trace.Event{Kind: trace.KindInc, Start: start, Lin: lin, End: lin})
}

// ReadTraced performs Read and records the operation with its returned
// value.
func (h *Handle) ReadTraced(rec *trace.Recorder, log *trace.ThreadLog) uint64 {
	start := rec.Stamp()
	v := h.c.Read(h.r)
	lin := rec.Stamp()
	log.Record(trace.Event{Kind: trace.KindRead, Start: start, Lin: lin, End: lin, Ret: v})
	return v
}
