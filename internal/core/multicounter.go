package core

import (
	"sync/atomic"

	"repro/internal/counters"
	"repro/internal/rng"
	"repro/internal/trace"
)

// MultiCounter is the relaxed approximate counter of Algorithm 1: m atomic
// counters; Increment applies the d-choice rule (read d random counters,
// increment the one that appeared smallest; the paper's default is d = 2);
// Read samples one counter and scales by m to keep the magnitude of the true
// total.
//
// With m ≥ C·n for the analysis constant C, Theorem 6.1 shows the value
// returned by Read is within O(m·log m) of the number of completed
// increments, in expectation and w.h.p., at every point of every execution
// under an oblivious scheduler.
//
// Beyond the paper, MultiCounterConfig{Choices, Stickiness, Batch} enables
// the same amortised fast path the MultiQueue carries: handles stick to
// their sampled shard candidates for a window of operations and accumulate
// increments locally, publishing a whole batch with one shared atomic add
// (DESIGN.md §2). cmd/quality and cmd/benchall audit the deviation cost of
// any setting against the m·log₂m envelope.
type MultiCounter struct {
	shards   *counters.Sharded
	m        int
	d        int
	stick    int
	batch    int
	affinity float64
	nextID   atomic.Uint64 // handle ids, assigned at NewHandle
}

// MultiCounterConfig configures NewMultiCounter. The zero value of optional
// fields selects the paper's defaults (two fresh choices per increment, no
// batching — Algorithm 1 exactly).
type MultiCounterConfig struct {
	// Counters is m, the number of atomic counters (Algorithm 1's bins).
	// Required. For Theorem 6.1's guarantees m should be a large constant
	// multiple of the thread count; m ≈ 4–8× threads balances well in
	// practice (Figure 1a).
	Counters int
	// Choices is d, the number of random counters an increment samples
	// before incrementing the smallest. 0 selects the paper's d = 2;
	// d = 1 is the divergent single-choice process (ablation A1); d > 2
	// trades extra shared reads for a tighter gap. Negative values panic.
	Choices int
	// Stickiness is the operation-stickiness window s: a handle re-uses its
	// d sampled shard candidates for up to s consecutive increments before
	// re-rolling, charged per increment, exactly like the MultiQueue's
	// window (a candidate set serves max(s, Batch) increments — a batch is
	// never split). 0 or 1 means fresh choices every operation. Larger s
	// amortises PRNG draws at the cost of extra deviation (re-measure with
	// cmd/quality).
	Stickiness int
	// Batch is the batching factor k: handles accumulate up to k increments
	// (or Add weights) in a private buffer and publish the sum with one
	// shared atomic add — one d-choice sample and one coherence miss per k
	// increments instead of per increment. 0 or 1 means per-operation
	// publishing. Buffered increments are invisible to Read/Exact/Gap until
	// the batch flushes; call Handle.Flush at quiescence.
	Batch int
	// Affinity is the shard-affinity fraction a ∈ [0, 1] of the sticky
	// d-choice sampler (DESIGN.md §7): each handle owns a home stripe of
	// w = max(Choices, ⌈a·Counters⌉) contiguous shard indices, placed
	// deterministically from its handle id, and every candidate refresh
	// draws Choices−1 candidates from the stripe plus one uniform escape
	// candidate, rotating the stripe periodically so no shard starves.
	// 0 (the default) keeps every draw uniform — the paper's assumption and
	// tracing identically to the pre-affinity sampler except where the
	// candidate dedupe resamples a collision (~d²/2m of refreshes). The
	// deviation cost of any setting is measured by cmd/quality -affinity.
	// Values outside [0, 1] panic.
	Affinity float64
}

// MultiCounterOption is a functional option for the NewMultiCounter
// convenience constructor; options edit the MultiCounterConfig before the
// counter is built.
type MultiCounterOption func(*MultiCounterConfig)

// WithChoices sets MultiCounterConfig.Choices, the number of random choices
// d per increment (default 2). d = 1 degenerates to the divergent
// single-choice process and exists for ablation A1; d > 2 trades extra reads
// for tighter balance. d < 1 panics.
func WithChoices(d int) MultiCounterOption {
	if d < 1 {
		panic("core: WithChoices needs d >= 1")
	}
	return func(cfg *MultiCounterConfig) { cfg.Choices = d }
}

// WithStickiness sets MultiCounterConfig.Stickiness, the sticky sampling
// window s (values below 1 normalize to 1: fresh choices every increment).
func WithStickiness(s int) MultiCounterOption {
	return func(cfg *MultiCounterConfig) { cfg.Stickiness = s }
}

// WithBatch sets MultiCounterConfig.Batch, the number of increments a handle
// buffers per shared atomic publish (values below 1 normalize to 1:
// per-operation publishing, Algorithm 1 exactly).
func WithBatch(k int) MultiCounterOption {
	return func(cfg *MultiCounterConfig) { cfg.Batch = k }
}

// WithAffinity sets MultiCounterConfig.Affinity, the shard-affinity fraction
// a ∈ [0, 1] biasing each handle's sticky d-choice sampler toward its home
// stripe of max(Choices, ⌈a·m⌉) contiguous shards (0, the default, keeps
// every draw uniform — Algorithm 1 exactly). Values outside [0, 1] panic.
func WithAffinity(a float64) MultiCounterOption {
	if !(a >= 0 && a <= 1) { // rejects NaN too
		panic("core: WithAffinity needs a in [0, 1]")
	}
	return func(cfg *MultiCounterConfig) { cfg.Affinity = a }
}

// NewMultiCounter returns a MultiCounter over m atomic counters with the
// paper's per-operation two-choice defaults, adjusted by opts. It is the
// convenience form of NewMultiCounterConfig.
func NewMultiCounter(m int, opts ...MultiCounterOption) *MultiCounter {
	cfg := MultiCounterConfig{Counters: m}
	for _, o := range opts {
		o(&cfg)
	}
	return NewMultiCounterConfig(cfg)
}

// NewMultiCounterConfig returns a MultiCounter with the given configuration,
// normalizing zero-valued optional fields to the paper's defaults (Choices 2,
// Stickiness 1, Batch 1 — Algorithm 1 exactly).
func NewMultiCounterConfig(cfg MultiCounterConfig) *MultiCounter {
	if cfg.Counters <= 0 {
		panic("core: MultiCounterConfig.Counters must be > 0")
	}
	if cfg.Choices < 0 {
		panic("core: MultiCounterConfig.Choices must be >= 0")
	}
	if cfg.Choices == 0 {
		cfg.Choices = 2
	}
	if cfg.Stickiness < 1 {
		cfg.Stickiness = 1
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if !(cfg.Affinity >= 0 && cfg.Affinity <= 1) { // rejects NaN too
		panic("core: MultiCounterConfig.Affinity must be in [0, 1]")
	}
	return &MultiCounter{
		shards:   counters.NewSharded(cfg.Counters),
		m:        cfg.Counters,
		d:        cfg.Choices,
		stick:    cfg.Stickiness,
		batch:    cfg.Batch,
		affinity: cfg.Affinity,
	}
}

// M returns the number of underlying counters.
func (c *MultiCounter) M() int { return c.m }

// Choices returns the configured number of random choices d (>= 1).
func (c *MultiCounter) Choices() int { return c.d }

// Stickiness returns the configured stickiness window s (>= 1).
func (c *MultiCounter) Stickiness() int { return c.stick }

// Batch returns the configured batching factor k (>= 1).
func (c *MultiCounter) Batch() int { return c.batch }

// Affinity returns the configured shard-affinity fraction (0 = uniform).
func (c *MultiCounter) Affinity() float64 { return c.affinity }

// Increment applies one unamortised d-choice increment using the
// caller-owned generator r — Algorithm 1's increment, ignoring the
// stickiness and batching configuration (handles carry that state; see
// Handle.Increment). Reads and the update are separate atomic steps, exactly
// as in the paper — the value read may be stale by the time of the
// increment, which is the concurrency the analysis covers.
func (c *MultiCounter) Increment(r *rng.Xoshiro256) { c.apply(r, 1) }

// Add applies one unamortised d-choice update of weight delta — the weighted
// balls-into-bins extension (Talwar–Wieder; Berenbrink et al., discussed in
// the paper's related work). Theorem 7.1's potential argument covers weight
// distributions with bounded moment generating functions, which includes any
// fixed bounded delta; keep deltas small relative to the O(log m) gap scale
// or the guarantee constants degrade.
func (c *MultiCounter) Add(r *rng.Xoshiro256, delta uint64) { c.apply(r, delta) }

// apply is the shared unamortised d-choice update.
func (c *MultiCounter) apply(r *rng.Xoshiro256, delta uint64) {
	if c.d == 1 {
		c.shards.Add(r.Intn(c.m), delta)
		return
	}
	best := r.Intn(c.m)
	bestV := c.shards.Read(best)
	for k := 1; k < c.d; k++ {
		i := r.Intn(c.m)
		if v := c.shards.Read(i); v < bestV {
			best, bestV = i, v
		}
	}
	c.shards.Add(best, delta)
}

// Read returns m times the value of a uniformly random counter — the
// approximate total (Algorithm 1's read, whose deviation Theorem 6.1
// bounds by O(m·log m)).
func (c *MultiCounter) Read(r *rng.Xoshiro256) uint64 {
	return uint64(c.m) * c.shards.Read(r.Intn(c.m))
}

// Exact returns the sum of all counters. At quiescence (all handles flushed)
// this equals the total published weight; under concurrency it is a lower
// bound at the instant the scan ends. Increments still buffered by batched
// handles are not included until those handles flush.
func (c *MultiCounter) Exact() uint64 { return c.shards.Sum() }

// Gap returns the current max − min over the counters (the quantity whose
// O(log m) bound drives Theorem 6.1). Non-atomic scan; for monitoring and
// quality experiments.
func (c *MultiCounter) Gap() uint64 {
	min, max := c.shards.MinMax()
	return max - min
}

// Snapshot copies the per-counter values into dst (len must equal M) for the
// quality experiment's bin-distribution traces (Figure 1b).
func (c *MultiCounter) Snapshot(dst []uint64) { c.shards.Snapshot(dst) }

// Handle binds a MultiCounter to one goroutine's private generator and, in
// sticky/batched mode, the handle-local fast-path state: the sticky d-choice
// sampler and the increment buffer awaiting its batch flush. All hot paths
// go through handles so no PRNG state is shared. A handle must be used by
// one goroutine at a time.
type Handle struct {
	c   *MultiCounter
	id  uint64
	r   *rng.Xoshiro256
	smp Sampler

	// Batching state: buffered operation count and summed weight.
	bufOps    int
	bufWeight uint64

	// closed marks a handle retired by Close: its buffer is drained and
	// every further update is a programming error.
	closed bool
}

// NewHandle returns a handle whose random stream is derived from seed,
// inheriting the counter's Choices, Stickiness, Batch and Affinity
// configuration. Handles are numbered in creation order (Handle.ID); the id
// deterministically places the handle's home stripe when Affinity > 0.
// Distinct workers must use distinct seeds (or rng.Streams).
func (c *MultiCounter) NewHandle(seed uint64) *Handle {
	id := c.nextID.Add(1) - 1
	return &Handle{
		c:   c,
		id:  id,
		r:   rng.NewXoshiro256(seed),
		smp: NewAffineSampler(c.m, c.d, c.stick, c.affinity, id),
	}
}

// Increment applies one relaxed increment: an immediate sticky d-choice
// update in per-op mode, or a buffered one in batched mode (published by the
// k-th buffered operation or an explicit Flush).
func (h *Handle) Increment() { h.Add(1) }

// Add applies one relaxed update of weight delta through the same
// sticky/batched path as Increment (the weighted extension; see
// MultiCounter.Add for the analysis caveats).
func (h *Handle) Add(delta uint64) {
	if h.closed {
		panic("core: operation on closed Handle")
	}
	if h.c.batch <= 1 {
		i := h.smp.Best(h.r, 1, h.c.shards.Read)
		h.smp.Charge(1)
		h.c.shards.Add(i, delta)
		return
	}
	h.bufOps++
	h.bufWeight += delta
	if h.bufOps >= h.c.batch {
		h.Flush()
	}
}

// Buffered returns the number of increments (Add calls) held in this
// handle's buffer, not yet visible to Read/Exact/Gap. Zero unless Batch > 1.
func (h *Handle) Buffered() int { return h.bufOps }

// BufferedWeight returns the summed weight of the buffered increments — the
// amount Exact is currently short by on this handle's account. Zero unless
// Batch > 1.
func (h *Handle) BufferedWeight() uint64 { return h.bufWeight }

// Flush publishes any buffered increments with one sticky d-choice atomic
// add, charging the stickiness window per buffered operation. Call at
// quiescence (before Exact/Gap/Snapshot audits); a handle with an empty
// buffer flushes for free.
func (h *Handle) Flush() {
	if h.bufOps == 0 {
		return
	}
	i := h.smp.Best(h.r, h.bufOps, h.c.shards.Read)
	h.smp.Charge(h.bufOps)
	h.c.shards.Add(i, h.bufWeight)
	h.bufOps, h.bufWeight = 0, 0
}

// Read returns the approximate counter value (Algorithm 1's read). This
// handle's own buffered increments are not yet reflected; Flush first if the
// caller needs them counted.
func (h *Handle) Read() uint64 { return h.c.Read(h.r) }

// Rerolls returns the number of Sampler.Reroll requests over this handle's
// lifetime. The counter path never rerolls on its own (there is no
// empty/contended outcome to abandon), so this is zero today; it exists so
// the two handle types expose the same observability surface.
func (h *Handle) Rerolls() uint64 { return h.smp.Rerolls() }

// Closed reports whether Close has retired this handle.
func (h *Handle) Closed() bool { return h.closed }

// Close retires the handle: buffered increments are flushed with one final
// d-choice publish and the handle is invalidated. After Close, Buffered and
// BufferedWeight are zero and any further Increment/Add panics; closing an
// already-closed handle is a no-op. Owners that cannot guarantee a final
// Flush (connection handlers, pools, lease managers like dlzd) must Close
// handles they abandon, or the counter silently loses the buffered weight —
// the abandoned-handle bug this contract fixes.
func (h *Handle) Close() {
	if h.closed {
		return
	}
	h.Flush()
	h.closed = true
}

// Counter returns the underlying MultiCounter.
func (h *Handle) Counter() *MultiCounter { return h.c }

// ID returns the handle's creation-order id (0 for the first handle), the
// value that seeds its home stripe when the counter runs with Affinity > 0.
func (h *Handle) ID() uint64 { return h.id }

// IncrementTraced performs an unamortised increment and records the
// operation in log with stamps from rec; the linearization stamp is taken
// adjacent to the atomic increment. Traced operations always use the per-op
// path (never the handle's batch buffer) so the stamp brackets the shared
// memory step the dlin replay orders. Used by the dlcheck tool and the
// distributional-linearizability integration tests.
func (h *Handle) IncrementTraced(rec *trace.Recorder, log *trace.ThreadLog) {
	start := rec.Stamp()
	h.c.Increment(h.r)
	lin := rec.Stamp()
	log.Record(trace.Event{Kind: trace.KindInc, Start: start, Lin: lin, End: lin})
}

// ReadTraced performs Read and records the operation with its returned
// value.
func (h *Handle) ReadTraced(rec *trace.Recorder, log *trace.ThreadLog) uint64 {
	start := rec.Stamp()
	v := h.c.Read(h.r)
	lin := rec.Stamp()
	log.Record(trace.Event{Kind: trace.KindRead, Start: start, Lin: lin, End: lin, Ret: v})
	return v
}
