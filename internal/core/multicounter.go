package core

import (
	"repro/internal/counters"
	"repro/internal/rng"
	"repro/internal/trace"
)

// MultiCounter is the relaxed approximate counter of Algorithm 1: m atomic
// counters; Increment applies the two-choice rule (read two random counters,
// increment the one that appeared smaller); Read samples one counter and
// scales by m to keep the magnitude of the true total.
//
// With m ≥ C·n for the analysis constant C, Theorem 6.1 shows the value
// returned by Read is within O(m·log m) of the number of completed
// increments, in expectation and w.h.p., at every point of every execution
// under an oblivious scheduler.
type MultiCounter struct {
	shards *counters.Sharded
	m      int
	d      int
}

// MultiCounterOption configures NewMultiCounter.
type MultiCounterOption func(*MultiCounter)

// WithChoices sets the number of random choices d per increment (default 2).
// d = 1 degenerates to the divergent single-choice process and exists for
// ablation A1; d > 2 trades extra reads for tighter balance.
func WithChoices(d int) MultiCounterOption {
	return func(c *MultiCounter) {
		if d < 1 {
			panic("core: WithChoices needs d >= 1")
		}
		c.d = d
	}
}

// NewMultiCounter returns a MultiCounter over m atomic counters.
func NewMultiCounter(m int, opts ...MultiCounterOption) *MultiCounter {
	if m <= 0 {
		panic("core: NewMultiCounter needs m > 0")
	}
	c := &MultiCounter{shards: counters.NewSharded(m), m: m, d: 2}
	for _, o := range opts {
		o(c)
	}
	return c
}

// M returns the number of underlying counters.
func (c *MultiCounter) M() int { return c.m }

// Increment applies one two-choice (generally d-choice) increment using the
// caller-owned generator r. Reads and the update are separate atomic steps,
// exactly as in Algorithm 1 — the value read may be stale by the time of the
// increment, which is the concurrency the paper analyzes.
func (c *MultiCounter) Increment(r *rng.Xoshiro256) {
	if c.d == 1 {
		c.shards.Inc(r.Intn(c.m))
		return
	}
	best := r.Intn(c.m)
	bestV := c.shards.Read(best)
	for k := 1; k < c.d; k++ {
		i := r.Intn(c.m)
		if v := c.shards.Read(i); v < bestV {
			best, bestV = i, v
		}
	}
	c.shards.Inc(best)
}

// Add applies one two-choice update of weight delta — the weighted
// balls-into-bins extension (Talwar–Wieder; Berenbrink et al., discussed in
// the paper's related work). Theorem 7.1's potential argument covers weight
// distributions with bounded moment generating functions, which includes any
// fixed bounded delta; keep deltas small relative to the O(log m) gap scale
// or the guarantee constants degrade.
func (c *MultiCounter) Add(r *rng.Xoshiro256, delta uint64) {
	if c.d == 1 {
		c.shards.Add(r.Intn(c.m), delta)
		return
	}
	best := r.Intn(c.m)
	bestV := c.shards.Read(best)
	for k := 1; k < c.d; k++ {
		i := r.Intn(c.m)
		if v := c.shards.Read(i); v < bestV {
			best, bestV = i, v
		}
	}
	c.shards.Add(best, delta)
}

// Read returns m times the value of a uniformly random counter — the
// approximate total (Algorithm 1's read).
func (c *MultiCounter) Read(r *rng.Xoshiro256) uint64 {
	return uint64(c.m) * c.shards.Read(r.Intn(c.m))
}

// Exact returns the sum of all counters. At quiescence this equals the
// number of completed increments; under concurrency it is a lower bound at
// the instant the scan ends.
func (c *MultiCounter) Exact() uint64 { return c.shards.Sum() }

// Gap returns the current max − min over the counters (the quantity whose
// O(log m) bound drives Theorem 6.1). Non-atomic scan; for monitoring and
// quality experiments.
func (c *MultiCounter) Gap() uint64 {
	min, max := c.shards.MinMax()
	return max - min
}

// Snapshot copies the per-counter values into dst (len must equal M) for the
// quality experiment's bin-distribution traces.
func (c *MultiCounter) Snapshot(dst []uint64) { c.shards.Snapshot(dst) }

// Handle binds a MultiCounter to one goroutine's private generator. All hot
// paths go through handles so no PRNG state is shared.
type Handle struct {
	c *MultiCounter
	r *rng.Xoshiro256
}

// NewHandle returns a handle whose random stream is derived from seed.
// Distinct workers must use distinct seeds (or rng.Streams).
func (c *MultiCounter) NewHandle(seed uint64) *Handle {
	return &Handle{c: c, r: rng.NewXoshiro256(seed)}
}

// Increment applies one relaxed increment.
func (h *Handle) Increment() { h.c.Increment(h.r) }

// Add applies one relaxed update of weight delta.
func (h *Handle) Add(delta uint64) { h.c.Add(h.r, delta) }

// Read returns the approximate counter value.
func (h *Handle) Read() uint64 { return h.c.Read(h.r) }

// Counter returns the underlying MultiCounter.
func (h *Handle) Counter() *MultiCounter { return h.c }

// IncrementTraced performs Increment and records the operation in log with
// stamps from rec; the linearization stamp is taken adjacent to the atomic
// increment. Used by the dlcheck tool and the distributional-linearizability
// integration tests.
func (h *Handle) IncrementTraced(rec *trace.Recorder, log *trace.ThreadLog) {
	start := rec.Stamp()
	h.c.Increment(h.r)
	lin := rec.Stamp()
	log.Record(trace.Event{Kind: trace.KindInc, Start: start, Lin: lin, End: lin})
}

// ReadTraced performs Read and records the operation with its returned
// value.
func (h *Handle) ReadTraced(rec *trace.Recorder, log *trace.ThreadLog) uint64 {
	start := rec.Stamp()
	v := h.c.Read(h.r)
	lin := rec.Stamp()
	log.Record(trace.Event{Kind: trace.KindRead, Start: start, Lin: lin, End: lin, Ret: v})
	return v
}
