package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func naiveMeanVar(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

func TestStreamBasics(t *testing.T) {
	var s Stream
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Var() != 2.5 {
		t.Fatalf("Var = %v", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Fatal("empty stream should report zeros")
	}
}

func TestStreamMatchesNaiveQuick(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		var s Stream
		for i, v := range raw {
			xs[i] = float64(v)
			s.Add(xs[i])
		}
		m, v := naiveMeanVar(xs)
		return almostEq(s.Mean(), m, 1e-9) && almostEq(s.Var(), v, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamMergeEquivalentQuick(t *testing.T) {
	f := func(a, b []int16) bool {
		var whole, left, right Stream
		for _, v := range a {
			whole.Add(float64(v))
			left.Add(float64(v))
		}
		for _, v := range b {
			whole.Add(float64(v))
			right.Add(float64(v))
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			almostEq(left.Mean(), whole.Mean(), 1e-9) &&
			almostEq(left.Var(), whole.Var(), 1e-9) &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamMergeEmpty(t *testing.T) {
	var a, b Stream
	a.Add(1)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 {
		t.Fatal("merge with empty changed N")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 1 {
		t.Fatal("merge into empty failed")
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.AddInt(i)
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
	if q := s.Quantile(0.5); math.Abs(q-50.5) > 1e-9 {
		t.Fatalf("median = %v", q)
	}
	if q := s.Quantile(0.99); math.Abs(q-99.01) > 1e-9 {
		t.Fatalf("p99 = %v", q)
	}
	if s.Max() != 100 {
		t.Fatalf("Max = %v", s.Max())
	}
	if m := s.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(4)
	if s.Quantile(0.5) != 0 || s.Max() != 0 || s.Mean() != 0 || s.TailFraction(1) != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSampleTailFraction(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 10; i++ {
		s.AddInt(i)
	}
	if f := s.TailFraction(7); math.Abs(f-0.3) > 1e-9 {
		t.Fatalf("TailFraction(7) = %v", f)
	}
	if f := s.TailFraction(10); f != 0 {
		t.Fatalf("TailFraction(max) = %v", f)
	}
	if f := s.TailFraction(0); f != 1 {
		t.Fatalf("TailFraction(0) = %v", f)
	}
}

func TestSampleMerge(t *testing.T) {
	a, b := NewSample(0), NewSample(0)
	a.Add(1)
	b.Add(3)
	a.Merge(b)
	if a.N() != 2 || a.Max() != 3 {
		t.Fatal("merge failed")
	}
}

func TestSampleQuantileAfterAdd(t *testing.T) {
	// Adding after a quantile query must re-sort.
	s := NewSample(0)
	s.Add(5)
	_ = s.Quantile(0.5)
	s.Add(1)
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("quantile after Add = %v, want 1", q)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(1)
	h.Add(2)
	h.Add(3)
	h.Add(1024)
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	out := h.String()
	for _, want := range []string{"[0,1): 1", "[1,2): 1", "[2,4): 2", "[1024,2048): 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram output %q missing %q", out, want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(5)
	b.Add(5)
	b.Add(100)
	a.Merge(&b)
	if a.N() != 3 {
		t.Fatalf("merged N = %d", a.N())
	}
}

func TestBitLen(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, math.MaxUint64: 64}
	for v, want := range cases {
		if g := bitLen(v); g != want {
			t.Fatalf("bitLen(%d) = %d, want %d", v, g, want)
		}
	}
}

func TestThroughput(t *testing.T) {
	if v := Throughput(2_000_000, 2); v != 1 {
		t.Fatalf("Throughput = %v", v)
	}
	if v := Throughput(100, 0); v != 0 {
		t.Fatalf("Throughput with zero time = %v", v)
	}
}
