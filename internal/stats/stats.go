// Package stats provides the small statistical toolkit shared by the
// experiment harness: streaming moments, quantiles, histograms, and the
// gap/deviation trackers that the paper's quality plots report.
//
// Everything here is single-writer; concurrent experiments aggregate
// per-worker instances after the measurement window closes rather than
// sharing a collector, keeping the measured code paths free of extra
// synchronization.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stream accumulates count, mean and variance using Welford's algorithm,
// plus min and max. The zero value is an empty stream.
type Stream struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds x into the stream.
func (s *Stream) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds another stream into s (parallel Welford merge).
func (s *Stream) Merge(o *Stream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// N returns the number of samples.
func (s *Stream) N() int64 { return s.n }

// Mean returns the sample mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest sample (0 for an empty stream).
func (s *Stream) Max() float64 { return s.max }

// String renders a one-line summary.
func (s *Stream) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g", s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Sample collects raw values for exact quantiles. It is meant for bounded
// sample counts (quality traces, rank errors), not unbounded throughput data.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a Sample with capacity hint n.
func NewSample(n int) *Sample { return &Sample{xs: make([]float64, 0, n)} }

// Add appends a value.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x); s.sorted = false }

// AddInt appends an integer value.
func (s *Sample) AddInt(x int) { s.Add(float64(x)) }

// Merge appends all values from another sample.
func (s *Sample) Merge(o *Sample) { s.xs = append(s.xs, o.xs...); s.sorted = false }

// N returns the number of samples.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
// It returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Max returns the largest sample (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// TailFraction returns the fraction of samples strictly greater than x.
func (s *Sample) TailFraction(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	// First index with value > x.
	i := sort.Search(len(s.xs), func(i int) bool { return s.xs[i] > x })
	return float64(len(s.xs)-i) / float64(len(s.xs))
}

// Histogram is a power-of-two bucketed histogram for non-negative integer
// observations such as rank errors and contention counts. Bucket i counts
// values in [2^(i-1), 2^i) with bucket 0 holding the zeros.
type Histogram struct {
	buckets [65]int64
	n       int64
}

// Add records a value.
func (h *Histogram) Add(v uint64) {
	h.buckets[bitLen(v)]++
	h.n++
}

// Merge folds another histogram into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.n += o.n
}

// N returns the number of recorded values.
func (h *Histogram) N() int64 { return h.n }

// bitLen returns the number of bits needed to represent v (0 for 0).
func bitLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// String renders the non-empty buckets as "range: count" lines.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		fmt.Fprintf(&b, "[%d,%d): %d\n", lo, hi, c)
	}
	return b.String()
}

func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 1
	}
	return 1 << uint(i-1), 1 << uint(i)
}

// Throughput converts an operation count over an elapsed duration in seconds
// into millions of operations per second, the unit of the paper's figures.
func Throughput(ops int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(ops) / seconds / 1e6
}
