//go:build dlzfail

package fail

import (
	"sync"
	"sync/atomic"
	"time"
)

// Enabled reports whether the failpoint layer is compiled in. In this build
// it is true; call sites guard every Inject with `if fail.Enabled` so the
// default build removes them entirely.
const Enabled = true

// site is one named injection point's runtime state. The hot disarmed path
// touches only the two atomics; everything else is guarded by mu.
type site struct {
	hits  atomic.Uint64 // every Inject call, armed or not
	armed atomic.Bool

	mu    sync.Mutex
	p     Policy
	seen  uint64 // hits observed while armed (After/Every operate on this)
	fires uint64
	prng  uint64        // splitmix64 state, seeded at Arm
	stall chan struct{} // live stall gate for KindStall, nil when none
}

var (
	registry sync.Map // site name -> *site
	seedWord atomic.Uint64
)

// lookup returns the site record for name, creating it on first use so hit
// counters exist for every wired site even before it is armed.
func lookup(name string) *site {
	if v, ok := registry.Load(name); ok {
		return v.(*site)
	}
	v, _ := registry.LoadOrStore(name, &site{})
	return v.(*site)
}

// splitmix64 advances one splitmix64 step.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hashName folds a site name into a 64-bit stream selector (FNV-1a).
func hashName(name string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}

// SetSeed sets the global schedule seed. Each site armed afterwards draws
// its Prob decisions from a private splitmix64 stream seeded with
// seed ^ hash(site), so a fixed seed reproduces each site's fire pattern
// given the same per-site hit order. Call before Arm.
func SetSeed(seed uint64) { seedWord.Store(seed) }

// Arm installs (or replaces) the policy for a named site, resetting its
// armed-hit and fire counters and reseeding its PRNG stream. Releases any
// goroutine stalled on the site's previous policy.
func Arm(name string, p Policy) {
	s := lookup(name)
	s.mu.Lock()
	s.p = p
	s.seen, s.fires = 0, 0
	s.prng = splitmix64(seedWord.Load() ^ hashName(name))
	if s.stall != nil {
		close(s.stall)
		s.stall = nil
	}
	s.armed.Store(true)
	s.mu.Unlock()
}

// Disarm deactivates a site, releasing any goroutine stalled on it. Hit
// counters (Hits) survive; the armed-period counters reset at the next Arm.
func Disarm(name string) {
	s := lookup(name)
	s.mu.Lock()
	s.armed.Store(false)
	if s.stall != nil {
		close(s.stall)
		s.stall = nil
	}
	s.mu.Unlock()
}

// Release unblocks every goroutine currently stalled on a KindStall site
// without disarming it (a later eligible hit stalls again on a fresh gate).
func Release(name string) {
	s := lookup(name)
	s.mu.Lock()
	if s.stall != nil {
		close(s.stall)
		s.stall = nil
	}
	s.mu.Unlock()
}

// Reset disarms every site, releases all stalls and zeroes all counters —
// the between-tests clean slate.
func Reset() {
	registry.Range(func(k, v any) bool {
		s := v.(*site)
		s.mu.Lock()
		s.armed.Store(false)
		if s.stall != nil {
			close(s.stall)
			s.stall = nil
		}
		s.seen, s.fires = 0, 0
		s.mu.Unlock()
		s.hits.Store(0)
		return true
	})
}

// Hits returns the number of Inject calls the named site has observed since
// process start (or the last Reset), armed or not — the wiring proof the
// coverage tests read.
func Hits(name string) uint64 { return lookup(name).hits.Load() }

// Fires returns the number of times the named site's policy actually fired
// since it was last armed.
func Fires(name string) uint64 {
	s := lookup(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fires
}

// Inject evaluates the named site. Disarmed sites count the hit and return
// nil (two atomic operations). Armed sites apply their policy's schedule
// gates (After, Every, Prob, Count) and fire the configured fault: return
// an error (KindError), panic (KindPanic), sleep (KindDelay) or block until
// released (KindStall). The error return is the only outcome a caller must
// handle; delay and stall return nil when they resume.
func Inject(name string) error {
	s := lookup(name)
	s.hits.Add(1)
	if !s.armed.Load() {
		return nil
	}
	s.mu.Lock()
	if !s.armed.Load() { // lost a race with Disarm
		s.mu.Unlock()
		return nil
	}
	p := s.p
	s.seen++
	if s.seen <= p.After {
		s.mu.Unlock()
		return nil
	}
	if p.Every > 1 && (s.seen-p.After)%p.Every != 0 {
		s.mu.Unlock()
		return nil
	}
	if p.Count > 0 && s.fires >= p.Count {
		s.mu.Unlock()
		return nil
	}
	if p.Prob > 0 && p.Prob < 1 {
		s.prng = splitmix64(s.prng)
		// Top 53 bits as a [0,1) fraction.
		if float64(s.prng>>11)/float64(1<<53) >= p.Prob {
			s.mu.Unlock()
			return nil
		}
	}
	s.fires++
	var gate chan struct{}
	if p.Kind == KindStall {
		if s.stall == nil {
			s.stall = make(chan struct{})
		}
		gate = s.stall
	}
	s.mu.Unlock()

	switch p.Kind {
	case KindError:
		if p.Err != nil {
			return p.Err
		}
		return ErrInjected
	case KindPanic:
		panic(InjectedPanic{Site: name})
	case KindDelay:
		time.Sleep(p.Delay)
		return nil
	case KindStall:
		<-gate
		return nil
	}
	return nil
}
