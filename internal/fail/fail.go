// Package fail is the repository's deterministic failpoint layer: named
// injection sites compiled into the stack's fault-sensitive code paths, each
// governed at runtime by a per-site Policy (inject an error, panic, delay, or
// stall until released) with a seeded PRNG schedule and hit counters.
//
// The layer has two builds:
//
//   - Default (no build tag): Enabled is the constant false, every function
//     is a no-op, and every call site of the form
//
//     if fail.Enabled { _ = fail.Inject(fail.SiteX) }
//
//     is removed by the compiler's constant-branch elimination — the
//     failpoints cost literally nothing: no branch, no call, no allocation
//     (the zero-alloc hot-path tests and the benchall quick gate enforce
//     this stays true).
//
//   - `-tags dlzfail`: Enabled is true and Inject consults the site
//     registry. Sites are cheap when disarmed (one lock-free map load plus
//     two atomics) so a chaos build can run the full test suite; armed sites
//     apply their policy under a per-site mutex with a per-site splitmix64
//     stream seeded from SetSeed's global seed and the site name, so a fixed
//     seed reproduces the same probabilistic fire schedule given the same
//     per-site hit order.
//
// The wired sites (taxonomy in DESIGN.md §10):
//
//	pad/lock/acquire   before a blocking SpinLock acquisition (delay/stall
//	                   here piles up waiters — forced contention)
//	pad/lock/hold      just after a blocking acquisition succeeds (delay
//	                   here stretches the critical section, forcing other
//	                   lockers into backoff escalation)
//	cpq/top/publish    inside a publishing critical section, between the
//	                   top word going mid-update and the republish (delay
//	                   here makes readers see in-flight words)
//	cpq/try/refuse     head of every cpq try-path (an error policy forces
//	                   the refusal outcome: TryAdd/TryDeleteMin and their
//	                   batch variants report the lock contended)
//	core/deq/reroll    after each d-choice draw in Dequeue/TryDequeue (an
//	                   error policy discards the draw and rerolls — a
//	                   sampler reroll storm)
//	core/flush         head of MQHandle.Flush with the insert buffer intact
//	                   (panic/delay interrupt the batch flush before any
//	                   element publishes; the error outcome is ignored)
//	core/resize/drain  inside a shrink epoch between draining the victim
//	                   shards and donating the drained elements to the
//	                   survivors (delay widens the in-flight window where
//	                   displaced elements are invisible to dequeuers; panics
//	                   are not armed here — they would lose the drained
//	                   frame; the error outcome is ignored)
//	dlzd/handler/pre   after a request is admitted, before its handler runs
//	dlzd/handler/post  after a mutating handler applied its operations,
//	                   before the response is written
//	dlzd/enqueue/item  between items of an enqueue-batch apply loop (panic
//	                   here is the mid-batch handler fault; an error aborts
//	                   the batch cleanly with the partial count committed)
//	dlzd/janitor/expire  in the expiry sweep between delinking a stale
//	                   lease and closing it (delay widens the expiry race)
//	dlzd/lease/close   inside the lease retirement ladder, before the
//	                   handles close (each ladder attempt passes it again,
//	                   so Count-bounded panic policies converge)
//	wal/append         head of wal.Log.Append, before any bytes reach the
//	                   segment (an error refuses the append with the journal
//	                   intact — the acked request then fails without a
//	                   record, exercising the journal-unavailable 500 path)
//	wal/fsync          immediately before an fsync of the active segment
//	                   (delay here widens the window where acked records
//	                   sit in the page cache — the SIGKILL-mid-fsync race
//	                   the kill-restart soak targets; the error outcome is
//	                   ignored: write(2) already made the record crash-safe
//	                   against process kill)
//
// Policies injecting panics must only be armed at sites that are panic-safe
// by design — the sites above are all outside spinlock critical sections
// except cpq/top/publish, which therefore only honors delay policies.
package fail

import (
	"errors"
	"time"
)

// Wired site names. Call sites reference these constants so a typo is a
// compile error rather than a silently dead failpoint; the package comment
// documents what each site interrupts.
const (
	SitePadLockAcquire  = "pad/lock/acquire"
	SitePadLockHold     = "pad/lock/hold"
	SiteCPQTopPublish   = "cpq/top/publish"
	SiteCPQTryRefuse    = "cpq/try/refuse"
	SiteCoreReroll      = "core/deq/reroll"
	SiteCoreFlush       = "core/flush"
	SiteCoreResizeDrain = "core/resize/drain"
	SiteDlzdHandlerPre  = "dlzd/handler/pre"
	SiteDlzdHandlerPost = "dlzd/handler/post"
	SiteDlzdEnqueueItem = "dlzd/enqueue/item"
	SiteDlzdJanitor     = "dlzd/janitor/expire"
	SiteDlzdLeaseClose  = "dlzd/lease/close"
	SiteWALAppend       = "wal/append"
	SiteWALFsync        = "wal/fsync"
)

// Kind selects a policy's fault outcome.
type Kind int

const (
	// KindError makes Inject return Policy.Err (ErrInjected when nil). Call
	// sites map the error to their natural refusal outcome: a refused
	// try-lock, a rerolled draw, an aborted batch.
	KindError Kind = iota
	// KindPanic makes Inject panic with an InjectedPanic carrying the site
	// name; recovery paths identify it with IsInjectedPanic.
	KindPanic
	// KindDelay makes Inject sleep for Policy.Delay and return nil.
	KindDelay
	// KindStall makes Inject block until Release(site), Disarm(site) or
	// Reset() — the descheduled-holder / hung-handler fault. Arm it with
	// Count: 1 for the classic stall-once.
	KindStall
)

// Policy configures one armed site. The zero value fires KindError with
// ErrInjected on every hit.
type Policy struct {
	// Kind is the fault outcome.
	Kind Kind
	// Prob is the per-hit fire probability in (0, 1]; 0 means always fire.
	// Decisions are drawn from the site's seeded splitmix64 stream, so a
	// fixed SetSeed reproduces the schedule for a fixed per-site hit order.
	Prob float64
	// Every fires on every Every-th eligible hit (counted from arming);
	// 0 disables the modulus. Combines with Prob (both must pass).
	Every uint64
	// After skips the first After hits observed while armed.
	After uint64
	// Count caps the total fires; 0 means unlimited. A Count-bounded panic
	// policy is what makes retry ladders (lease repair) converge
	// deterministically.
	Count uint64
	// Delay is the sleep for KindDelay.
	Delay time.Duration
	// Err overrides ErrInjected for KindError.
	Err error
}

// ErrInjected is the default error a KindError policy injects.
var ErrInjected = errors.New("fail: injected fault")

// InjectedPanic is the value a KindPanic policy panics with.
type InjectedPanic struct {
	// Site is the failpoint that fired.
	Site string
}

// Error makes an InjectedPanic printable wherever recovered values are
// formatted as errors.
func (p InjectedPanic) Error() string { return "fail: injected panic at " + p.Site }

// IsInjectedPanic reports whether a recovered value is a failpoint panic,
// returning the originating site. Recovery paths use it to distinguish
// injected chaos from genuine bugs (which they re-report, not absorb).
func IsInjectedPanic(rec any) (site string, ok bool) {
	if p, isInj := rec.(InjectedPanic); isInj {
		return p.Site, true
	}
	return "", false
}
