//go:build dlzfail

package fail

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestErrorPolicyFiresAndCounts(t *testing.T) {
	Reset()
	const site = "test/error"
	if err := Inject(site); err != nil {
		t.Fatalf("disarmed site injected: %v", err)
	}
	Arm(site, Policy{Kind: KindError})
	for i := 0; i < 5; i++ {
		if err := Inject(site); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
		}
	}
	if got := Hits(site); got != 6 {
		t.Errorf("Hits = %d, want 6 (1 disarmed + 5 armed)", got)
	}
	if got := Fires(site); got != 5 {
		t.Errorf("Fires = %d, want 5", got)
	}
	custom := errors.New("custom")
	Arm(site, Policy{Kind: KindError, Err: custom})
	if err := Inject(site); !errors.Is(err, custom) {
		t.Errorf("custom err = %v", err)
	}
	Disarm(site)
	if err := Inject(site); err != nil {
		t.Errorf("disarmed site injected: %v", err)
	}
}

func TestScheduleGates(t *testing.T) {
	Reset()
	const site = "test/gates"
	// After skips the first 2 hits; Count caps at 3 fires; Every 2 fires on
	// every second eligible hit.
	Arm(site, Policy{Kind: KindError, After: 2, Every: 2, Count: 3})
	var fired []int
	for i := 0; i < 16; i++ {
		if Inject(site) != nil {
			fired = append(fired, i)
		}
	}
	// Eligible hits are 2,3,4,...; (seen-After)%Every==0 fires on seen=4,6,8
	// (0-indexed hits 3,5,7), capped at 3 fires.
	want := []int{3, 5, 7}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestProbDeterministicUnderSeed(t *testing.T) {
	const site = "test/prob"
	pattern := func(seed uint64) []bool {
		Reset()
		SetSeed(seed)
		Arm(site, Policy{Kind: KindError, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Inject(site) != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Errorf("Prob 0.5 fired %d/%d times — schedule not probabilistic", fires, len(a))
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
	Reset()
}

func TestPanicPolicyIsIdentifiable(t *testing.T) {
	Reset()
	const site = "test/panic"
	Arm(site, Policy{Kind: KindPanic, Count: 1})
	func() {
		defer func() {
			rec := recover()
			if rec == nil {
				t.Fatal("panic policy did not panic")
			}
			from, ok := IsInjectedPanic(rec)
			if !ok || from != site {
				t.Fatalf("IsInjectedPanic(%v) = %q, %v", rec, from, ok)
			}
		}()
		_ = Inject(site)
	}()
	// Count exhausted: further hits are clean.
	if err := Inject(site); err != nil {
		t.Errorf("count-exhausted site injected: %v", err)
	}
	if _, ok := IsInjectedPanic(errors.New("other")); ok {
		t.Error("IsInjectedPanic accepted a non-failpoint value")
	}
}

func TestDelayPolicySleeps(t *testing.T) {
	Reset()
	const site = "test/delay"
	Arm(site, Policy{Kind: KindDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Inject(site); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("delay slept %v, want >= 20ms", d)
	}
}

func TestStallBlocksUntilRelease(t *testing.T) {
	Reset()
	const site = "test/stall"
	Arm(site, Policy{Kind: KindStall, Count: 1})
	entered := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(entered)
		_ = Inject(site)
		close(done)
	}()
	<-entered
	select {
	case <-done:
		t.Fatal("stall did not block")
	case <-time.After(30 * time.Millisecond):
	}
	Release(site)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Release did not unblock the stalled goroutine")
	}
	// Count 1 exhausted: the site no longer stalls.
	if err := Inject(site); err != nil {
		t.Errorf("stall-once site re-fired: %v", err)
	}
}

func TestResetReleasesStalls(t *testing.T) {
	Reset()
	const site = "test/stall-reset"
	Arm(site, Policy{Kind: KindStall})
	done := make(chan struct{})
	go func() {
		_ = Inject(site)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	Reset()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Reset did not release the stalled goroutine")
	}
	if got := Hits(site); got != 0 {
		t.Errorf("Hits after Reset = %d, want 0", got)
	}
}

func TestConcurrentInjectIsSafe(t *testing.T) {
	Reset()
	const site = "test/concurrent"
	Arm(site, Policy{Kind: KindError, Prob: 0.5})
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = Inject(site)
			}
		}()
	}
	wg.Wait()
	if got := Hits(site); got != workers*per {
		t.Errorf("Hits = %d, want %d", got, workers*per)
	}
	Reset()
}
