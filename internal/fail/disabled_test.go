//go:build !dlzfail

package fail

import "testing"

// TestDisabledBuildIsInert pins the default-build contract: Enabled is the
// constant false and the whole API is a no-op, so guarded call sites cost
// nothing and un-guarded administrative calls (a stray Arm in shared test
// helpers) cannot fault a production binary.
func TestDisabledBuildIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the dlzfail tag")
	}
	SetSeed(7)
	Arm(SiteCoreFlush, Policy{Kind: KindPanic})
	if err := Inject(SiteCoreFlush); err != nil {
		t.Fatalf("Inject on a no-op build returned %v", err)
	}
	if Hits(SiteCoreFlush) != 0 || Fires(SiteCoreFlush) != 0 {
		t.Error("no-op build reported counters")
	}
	Release(SiteCoreFlush)
	Disarm(SiteCoreFlush)
	Reset()
	if _, ok := IsInjectedPanic("not a failpoint"); ok {
		t.Error("IsInjectedPanic accepted an arbitrary value")
	}
}
