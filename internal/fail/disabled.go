//go:build !dlzfail

package fail

// Enabled reports whether the failpoint layer is compiled in. In the default
// build it is the constant false: every call site guards its Inject with
// `if fail.Enabled { ... }`, so the compiler's constant-branch elimination
// removes the failpoints entirely — no branch, no call, no registry. The
// zero-alloc hot-path tests and the benchall quick gate run against this
// build and would catch any regression of that guarantee.
const Enabled = false

// Inject is a no-op in the default build; it exists so guarded call sites
// still type-check.
func Inject(string) error { return nil }

// SetSeed is a no-op in the default build.
func SetSeed(uint64) {}

// Arm is a no-op in the default build.
func Arm(string, Policy) {}

// Disarm is a no-op in the default build.
func Disarm(string) {}

// Release is a no-op in the default build.
func Release(string) {}

// Reset is a no-op in the default build.
func Reset() {}

// Hits always reports 0 in the default build.
func Hits(string) uint64 { return 0 }

// Fires always reports 0 in the default build.
func Fires(string) uint64 { return 0 }
