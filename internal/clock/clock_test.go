package clock

import (
	"sync"
	"testing"
)

func TestTickUniqueAndMonotone(t *testing.T) {
	c := NewTick()
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		v := c.Now()
		if v <= prev {
			t.Fatalf("tick %d not strictly increasing after %d", v, prev)
		}
		prev = v
	}
	if c.Peek() != prev {
		t.Fatalf("Peek = %d, want %d", c.Peek(), prev)
	}
}

func TestTickConcurrentUnique(t *testing.T) {
	c := NewTick()
	const workers, per = 8, 10000
	out := make([][]uint64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			vals := make([]uint64, per)
			for i := range vals {
				vals[i] = c.Now()
			}
			out[w] = vals
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*per)
	for w := range out {
		prev := uint64(0)
		for _, v := range out[w] {
			if v <= prev {
				t.Fatal("per-thread tick sequence not increasing")
			}
			prev = v
			if seen[v] {
				t.Fatalf("duplicate tick %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("got %d unique ticks, want %d", len(seen), workers*per)
	}
}

func TestWallMonotone(t *testing.T) {
	w := NewWall()
	prev := uint64(0)
	for i := 0; i < 10000; i++ {
		v := w.Now()
		if v < prev {
			t.Fatalf("wall clock went backwards: %d < %d", v, prev)
		}
		prev = v
	}
}

func TestSkewedOffset(t *testing.T) {
	base := NewTick()
	s := Skewed{Base: base, Offset: 100}
	v1 := base.Now() // consumes tick 1
	v2 := s.Now()    // tick 2 + 100
	if v2 != v1+1+100 {
		t.Fatalf("skewed reading %d, want %d", v2, v1+1+100)
	}
}

func TestClockInterface(t *testing.T) {
	for _, c := range []Clock{NewTick(), NewWall(), Skewed{Base: NewTick(), Offset: 5}} {
		a, b := c.Now(), c.Now()
		if b < a {
			t.Fatalf("%T not monotone", c)
		}
	}
}
