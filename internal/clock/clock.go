// Package clock provides the timestamp sources Algorithm 2's enqueue path
// reads. The paper assumes per-processor clocks that are "consistent amongst
// all the processors": if processor i reads before processor j in the
// linearization, i's value is smaller — the contract Intel's RDTSC provides
// within a socket.
//
// Commodity Go exposes no RDTSC, so two substitutes are provided (see
// DESIGN.md §2):
//
//   - Tick: a single atomic fetch-and-increment cell. It provides strictly
//     unique, totally ordered timestamps — a consistency contract at least
//     as strong as the paper assumes. It serializes enqueues through one
//     cache line, which is acceptable because Algorithm 2's scalability
//     target is the *dequeue* side.
//   - Wall: Go's monotonic wall clock, nanosecond granularity, no shared
//     state. Readings may tie across threads; MultiQueue breaks ties with a
//     per-thread low-order suffix.
//
// Skewed wraps any Clock with a fixed per-handle offset so tests can inject
// the bounded clock skew that the TL2 Δ rule must absorb.
package clock

import (
	"time"

	"repro/internal/pad"
)

// Clock yields 64-bit monotone timestamps.
type Clock interface {
	// Now returns the current timestamp. Successive calls observe
	// non-decreasing values; implementations document uniqueness.
	Now() uint64
}

// Tick is a global atomic counter clock with strictly increasing, unique
// timestamps. The zero value is ready to use.
type Tick struct {
	c pad.Uint64
}

// NewTick returns a fresh tick clock starting at 1.
func NewTick() *Tick { return &Tick{} }

// Now returns the next tick. Values are unique across all callers.
func (t *Tick) Now() uint64 { return t.c.Add(1) }

// Block reserves n consecutive ticks with one atomic fetch-and-add and
// returns the first; the caller owns [first, first+n). Batched enqueuers use
// it to pay one shared-cache-line hit per batch instead of per element. A
// reserved tick may be assigned after another thread draws a larger one —
// bounded extra relaxation of the same kind the insert buffer already
// introduces (at most n stamps per handle).
func (t *Tick) Block(n int) uint64 { return t.c.Add(uint64(n)) - uint64(n) + 1 }

// Peek returns the last issued tick without advancing the clock.
func (t *Tick) Peek() uint64 { return t.c.Load() }

// Wall reads Go's monotonic clock, offset so that readings start near zero.
// Values are non-decreasing but may repeat across concurrent callers.
type Wall struct {
	start time.Time
}

// NewWall returns a wall clock anchored at the current instant.
func NewWall() *Wall { return &Wall{start: time.Now()} }

// Now returns elapsed nanoseconds since the clock was created.
func (w *Wall) Now() uint64 { return uint64(time.Since(w.start)) }

// Skewed shifts a base clock by a fixed offset, modeling one thread's view
// of an imperfectly synchronized clock. Build one per simulated thread.
type Skewed struct {
	// Base is the underlying clock.
	Base Clock
	// Offset is added to every reading.
	Offset uint64
}

// Now returns Base.Now() + Offset.
func (s Skewed) Now() uint64 { return s.Base.Now() + s.Offset }
