package quality

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mempool"
)

// poolQueueConfig is the acceptance configuration the fee-loss gate runs at:
// the paper's quality-safe sticky/batched window (s=8, k=8) over m=256
// queues.
func poolQueueConfig() mempool.Config {
	return mempool.Config{
		Queue: core.MultiQueueConfig{
			Queues: 256, Choices: 2, Stickiness: 8, Batch: 8, Seed: 5, Capacity: 4096,
		},
		Seed: 9,
	}
}

func TestMeasureMempoolRevenueDefaultsWithinLimit(t *testing.T) {
	// The headline gate: at the default workload and the (s=8, k=8, m=256)
	// configuration, the relaxed pool forgoes at most 5% of the exact
	// head-greedy builder's trace revenue. Measured values are in fact
	// NEGATIVE (the relaxed pool banks MORE: popping by global fee parks
	// high-fee mid-chain transactions early, a chain lookahead the myopic
	// head-greedy reference lacks), so the gate also sanity-bounds the
	// advantage — a loss outside (−50%, +5%) means the accounting broke.
	q, err := MeasureMempoolRevenue(poolQueueConfig(), mempool.WorkloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if q.ComparedPops == 0 {
		t.Fatal("no deliveries compared")
	}
	if math.IsNaN(q.FeeLossFrac) {
		t.Fatal("fee loss is NaN")
	}
	if q.FeeLossFrac > 0.05 || q.FeeLossFrac < -0.5 {
		t.Fatalf("fee loss %.4f outside (−0.5, 0.05] at the default configuration", q.FeeLossFrac)
	}
	if q.RevenueExact == 0 || q.RevenueRelaxed == 0 {
		t.Fatalf("degenerate revenues %d/%d", q.RevenueRelaxed, q.RevenueExact)
	}
	if q.ComparedPops > q.PoppedRelaxed || q.ComparedPops > q.PoppedExact {
		t.Fatalf("compared prefix %d longer than a pool's deliveries (%d, %d)",
			q.ComparedPops, q.PoppedRelaxed, q.PoppedExact)
	}
	// Seeded single-threaded replay: the measurement must be reproducible.
	q2, err := MeasureMempoolRevenue(poolQueueConfig(), mempool.WorkloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if q2 != q {
		t.Fatalf("measurement not deterministic: %+v vs %+v", q, q2)
	}
}

func TestMeasureMempoolRevenueUnderCapacityPressure(t *testing.T) {
	// With a tight capacity the two pools' resident sets diverge through
	// different eviction victims; conservation must still audit clean on
	// both sides and the comparison must stay well-formed.
	cfg := poolQueueConfig()
	cfg.Capacity = 512
	q, err := MeasureMempoolRevenue(cfg, mempool.WorkloadConfig{Ops: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if q.StatsRelaxed.Evicted == 0 || q.StatsExact.Evicted == 0 {
		t.Fatalf("capacity 512 produced no evictions (%d, %d) — pressure regime not exercised",
			q.StatsRelaxed.Evicted, q.StatsExact.Evicted)
	}
	if math.IsNaN(q.FeeLossFrac) || q.FeeLossFrac > 0.05 {
		t.Fatalf("fee loss %.4f under capacity pressure", q.FeeLossFrac)
	}
	if q.StatsRelaxed.Resident > 512 || q.StatsExact.Resident > 512 {
		t.Fatalf("resident beyond capacity: %d/%d", q.StatsRelaxed.Resident, q.StatsExact.Resident)
	}
}
