package quality

import (
	"repro/internal/mempool"
)

// MempoolQuality is the result of MeasureMempoolRevenue: how much fee
// revenue the relaxed mempool's delivery order loses against the exact
// sequential reference on the same intent trace. The comparison is taken at
// ComparedPops — the shorter of the two pools' trace delivery counts — so
// both revenue figures price the same number of delivered transactions;
// the tail a fuller pool would deliver later is not the relaxation cost,
// the lower-fee choices inside the shared prefix are.
type MempoolQuality struct {
	// ComparedPops is the delivery-prefix length both revenues are taken at.
	ComparedPops uint64
	// RevenueRelaxed and RevenueExact are the cumulative delivered fees of
	// the two pools after ComparedPops trace deliveries each.
	RevenueRelaxed uint64
	RevenueExact   uint64
	// FeeLossFrac is 1 − RevenueRelaxed/RevenueExact: the fraction of the
	// exact builder's revenue the relaxed pool forgoes by delivering
	// lower-fee heads first. Negative values are possible once bumps or
	// evictions make the two pools' resident sets diverge (the relaxed pool
	// can stumble into a richer state); 0 when the exact revenue is 0.
	FeeLossFrac float64
	// PoppedRelaxed and PoppedExact are the full trace delivery counts
	// (they differ only through divergent rejection/eviction histories).
	PoppedRelaxed uint64
	PoppedExact   uint64
	// StatsRelaxed and StatsExact are the end-of-trace ledgers, before any
	// drain — Resident, Evicted and Replaced give the divergence context
	// for the revenue figures.
	StatsRelaxed mempool.Stats
	StatsExact   mempool.Stats
}

// MeasureMempoolRevenue generates one seeded intent trace and replays it
// against a relaxed pool (mempool.New over cfg.Queue) and the exact
// sequential reference (mempool.NewSeq), comparing cumulative delivered fee
// revenue over the trace — the mempool counterpart of MeasureDequeueRank,
// pricing rank relaxation in the fee units a block builder cares about
// rather than in rank positions. Replay is single-threaded for the same
// reason the paper measures quality single-threaded: concurrent delivery
// steps have no canonical order to compare against.
//
// Only deliveries occurring during the trace are priced. A full drain would
// make the two revenues equal by conservation whenever admissions agree —
// the interesting signal is which fees each pool banked while the pools
// were still under load, not the eventual total.
//
// Both pools are conservation-audited after the trace; a violation is
// returned as the error alongside the (still fully populated) measurement.
func MeasureMempoolRevenue(cfg mempool.Config, wcfg mempool.WorkloadConfig) (MempoolQuality, error) {
	num, den := cfg.BumpNum, cfg.BumpDen
	if num == 0 || den == 0 {
		num, den = 110, 100
	}
	ops := mempool.GenOps(wcfg)
	relaxed := mempool.New(cfg)
	h := relaxed.NewHandle(wcfg.Seed*2 + 1)
	defer h.Close()
	exact := mempool.NewSeq(cfg)

	cumR := traceRevenue(h, ops, num, den)
	cumE := traceRevenue(exact, ops, num, den)

	q := MempoolQuality{
		PoppedRelaxed: uint64(len(cumR)),
		PoppedExact:   uint64(len(cumE)),
		StatsRelaxed:  relaxed.Stats(),
		StatsExact:    exact.Stats(),
	}
	k := len(cumR)
	if len(cumE) < k {
		k = len(cumE)
	}
	q.ComparedPops = uint64(k)
	if k > 0 {
		q.RevenueRelaxed = cumR[k-1]
		q.RevenueExact = cumE[k-1]
	}
	if q.RevenueExact > 0 {
		q.FeeLossFrac = 1 - float64(q.RevenueRelaxed)/float64(q.RevenueExact)
	}
	if err := relaxed.CheckConservation(); err != nil {
		return q, err
	}
	return q, exact.CheckConservation()
}

// traceRevenue replays ops against p and returns the cumulative delivered
// fee after each successful trace delivery.
func traceRevenue(p mempool.PoolAPI, ops []mempool.Op, bumpNum, bumpDen uint64) []uint64 {
	cum := make([]uint64, 0, len(ops))
	var sum uint64
	for _, op := range ops {
		ap := mempool.Apply(p, op, bumpNum, bumpDen)
		if ap.Kind == mempool.OpPop && ap.OK {
			sum += ap.Tx.Fee
			cum = append(cum, sum)
		}
	}
	return cum
}
