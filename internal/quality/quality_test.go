package quality

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dlin"
)

func TestMeasureDequeueRankPerOpBaseline(t *testing.T) {
	// The per-op baseline at m=32 must show mean rank error O(m), the same
	// bound TestMultiQueueRankErrorLinearInM asserts at the core layer.
	const m = 32
	q := core.NewMultiQueue(core.MultiQueueConfig{Queues: m, Seed: 3})
	sample := MeasureDequeueRank(q.NewHandle(4), 64*m, 20_000)
	if sample.N() != 20_000 {
		t.Fatalf("sample has %d entries, want 20000", sample.N())
	}
	if mean := sample.Mean(); mean > 4*float64(m)+4 {
		t.Fatalf("baseline mean rank error %v not O(m) at m=%d", mean, m)
	}
}

func TestMeasureDequeueRankBatchedStaysMeasurable(t *testing.T) {
	// The batched mode's rank cost grows with the batch but must stay a
	// well-formed distribution (no negative ranks, no lost dequeues) and
	// inside the envelope for a quality-safe window at large enough m.
	const m = 128
	q := core.NewMultiQueue(core.MultiQueueConfig{
		Queues: m, Seed: 5, Stickiness: 8, Batch: 8,
	})
	sample := MeasureDequeueRank(q.NewHandle(6), 64*m, 20_000)
	if sample.N() != 20_000 {
		t.Fatalf("sample has %d entries, want 20000", sample.N())
	}
	if min := sample.Quantile(0); min < 0 {
		t.Fatalf("negative rank error %v", min)
	}
	if mean, env := sample.Mean(), dlin.Envelope(m); mean > env {
		t.Fatalf("s=8 k=8 mean %v exceeds envelope %v at m=%d", mean, env, m)
	}
}

func TestMoreChoicesTightenDequeueRank(t *testing.T) {
	// Ablation A1 at the queue level: the divergent single-choice process
	// must show clearly worse mean rank error than d-choice sampling, and
	// d = 4 must not be worse than the paper's d = 2. Single-threaded with a
	// fixed seed, so the measurement is deterministic.
	const m = 32
	meanFor := func(d int) float64 {
		q := core.NewMultiQueue(core.MultiQueueConfig{Queues: m, Seed: 9, Choices: d})
		return MeasureDequeueRank(q.NewHandle(10), 64*m, 20_000).Mean()
	}
	m1, m2, m4 := meanFor(1), meanFor(2), meanFor(4)
	if m1 < 2*m2 {
		t.Fatalf("single-choice mean %v not clearly above two-choice mean %v", m1, m2)
	}
	if m4 > m2 {
		t.Fatalf("d=4 mean %v worse than d=2 mean %v", m4, m2)
	}
}

func TestMeasureCounterDeviationPerOp(t *testing.T) {
	// Figure 1(b): the per-op two-choice counter at m=64 stays well inside
	// the m·log m envelope single-threaded.
	const m = 64
	mc := core.NewMultiCounter(m)
	dev := MeasureCounterDeviation(mc.NewHandle(11), 200_000, 50, nil)
	if env := dlin.Envelope(m); float64(dev.MaxAbsError) > env {
		t.Fatalf("per-op max deviation %d exceeds envelope %v", dev.MaxAbsError, env)
	}
	if dev.MaxGap == 0 && dev.MaxAbsError == 0 {
		t.Fatal("deviation audit measured nothing")
	}
	if dev.MeanAbsError > float64(dev.MaxAbsError) {
		t.Fatalf("mean %v above max %d", dev.MeanAbsError, dev.MaxAbsError)
	}
}

func TestMeasureCounterDeviationBatchedChargesBuffer(t *testing.T) {
	// The batched counter's deviation includes its unflushed buffer. For a
	// quality-safe setting the MEAN deviation must sit inside the envelope
	// (the same statistic the benchall gate scores, mirroring the MultiQueue
	// rank gate); the max runs above the mean because flushes land weight in
	// k-sized lumps, which is exactly why the audit reports both. d = 2 at
	// (s=8, k=8, m=64) measures right at the envelope edge, so this asserts
	// the d = 4 setting, which holds with 2x margin.
	const m = 64
	mc := core.NewMultiCounterConfig(core.MultiCounterConfig{
		Counters: m, Choices: 4, Stickiness: 8, Batch: 8,
	})
	dev := MeasureCounterDeviation(mc.NewHandle(12), 200_000, 50, nil)
	if env := dlin.Envelope(m); dev.MeanAbsError > env {
		t.Fatalf("batched mean deviation %v exceeds envelope %v", dev.MeanAbsError, env)
	}
	if dev.MaxAbsError < uint64(dev.MeanAbsError) {
		t.Fatalf("max %d below mean %v", dev.MaxAbsError, dev.MeanAbsError)
	}
}

func TestMoreChoicesTightenCounterDeviation(t *testing.T) {
	// The d-choice payoff in amortised mode: at the same (s=8, k=8) window,
	// d = 4 must show clearly tighter mean deviation than d = 2 — the extra
	// choices buy back part of the batching relaxation. Deterministic
	// (single-threaded, fixed seed).
	const m = 128
	devFor := func(d int) float64 {
		mc := core.NewMultiCounterConfig(core.MultiCounterConfig{
			Counters: m, Choices: d, Stickiness: 8, Batch: 8,
		})
		return MeasureCounterDeviation(mc.NewHandle(13), 200_000, 50, nil).MeanAbsError
	}
	d2, d4 := devFor(2), devFor(4)
	if d4 > d2 {
		t.Fatalf("d=4 mean deviation %v not below d=2's %v at s=8 k=8", d4, d2)
	}
}
