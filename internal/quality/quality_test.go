package quality

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dlin"
)

func TestMeasureDequeueRankPerOpBaseline(t *testing.T) {
	// The per-op baseline at m=32 must show mean rank error O(m), the same
	// bound TestMultiQueueRankErrorLinearInM asserts at the core layer.
	const m = 32
	q := core.NewMultiQueue(core.MultiQueueConfig{Queues: m, Seed: 3})
	sample := MeasureDequeueRank(q.NewHandle(4), 64*m, 20_000)
	if sample.N() != 20_000 {
		t.Fatalf("sample has %d entries, want 20000", sample.N())
	}
	if mean := sample.Mean(); mean > 4*float64(m)+4 {
		t.Fatalf("baseline mean rank error %v not O(m) at m=%d", mean, m)
	}
}

func TestMeasureDequeueRankBatchedStaysMeasurable(t *testing.T) {
	// The batched mode's rank cost grows with the batch but must stay a
	// well-formed distribution (no negative ranks, no lost dequeues) and
	// inside the envelope for a quality-safe window at large enough m.
	const m = 128
	q := core.NewMultiQueue(core.MultiQueueConfig{
		Queues: m, Seed: 5, Stickiness: 8, Batch: 8,
	})
	sample := MeasureDequeueRank(q.NewHandle(6), 64*m, 20_000)
	if sample.N() != 20_000 {
		t.Fatalf("sample has %d entries, want 20000", sample.N())
	}
	if min := sample.Quantile(0); min < 0 {
		t.Fatalf("negative rank error %v", min)
	}
	if mean, env := sample.Mean(), dlin.Envelope(m); mean > env {
		t.Fatalf("s=8 k=8 mean %v exceeds envelope %v at m=%d", mean, env, m)
	}
}
