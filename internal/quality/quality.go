// Package quality holds the live-structure quality measurements shared by
// the cmd/ tools — the experiments that drive a real MultiQueue and score
// it against the paper's theory scales. It sits above internal/core (the
// structures) and internal/dlin (the spec framework) so that core's own
// tests can keep importing dlin without a cycle.
package quality

import (
	"repro/internal/core"
	"repro/internal/dlin"
	"repro/internal/stats"
)

// MeasureDequeueRank is the single-threaded steady-state rank-error
// measurement shared by cmd/quality, cmd/benchall and cmd/multiqueue-bench:
// drive the handle through a standing buffer of buffer elements, then ops
// enqueue+dequeue pairs, computing each dequeue's rank against a Fenwick
// tree over the logically enqueued labels (the same accounting as the
// dlin.QueueSpec replay). The returned sample holds one rank error per
// dequeue (0 = exact minimum).
//
// The queue must use the default Tick clock (labels dense from 1) and the
// handle must be fresh; measurement stops early if a dequeue comes up empty.
func MeasureDequeueRank(h *core.MQHandle, buffer, ops int) *stats.Sample {
	fw := dlin.NewFenwick(buffer + ops + h.Queue().Batch() + 2)
	for i := 0; i < buffer; i++ {
		fw.Add(int(h.Enqueue(0)), 1)
	}
	sample := stats.NewSample(ops)
	for i := 0; i < ops; i++ {
		fw.Add(int(h.Enqueue(0)), 1)
		it, ok := h.Dequeue()
		if !ok {
			break
		}
		rank := fw.PrefixSum(int(it.Priority))
		fw.Add(int(it.Priority), -1)
		sample.AddInt(int(rank - 1))
	}
	return sample
}
