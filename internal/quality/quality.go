// Package quality holds the live-structure quality measurements shared by
// the cmd/ tools — the experiments that drive a real MultiCounter or
// MultiQueue and score it against the paper's theory scales (the rank-error
// audit for Theorem 7.1, the read-deviation audit for Theorem 6.1). It sits
// above internal/core (the structures) and internal/dlin (the spec
// framework) so that core's own tests can keep importing dlin without a
// cycle.
package quality

import (
	"repro/internal/core"
	"repro/internal/dlin"
	"repro/internal/stats"
)

// MeasureDequeueRank is the single-threaded steady-state rank-error
// measurement shared by cmd/quality, cmd/benchall and cmd/multiqueue-bench:
// drive the handle through a standing buffer of buffer elements, then ops
// enqueue+dequeue pairs, computing each dequeue's rank against a Fenwick
// tree over the logically enqueued labels (the same accounting as the
// dlin.QueueSpec replay). The returned sample holds one rank error per
// dequeue (0 = exact minimum).
//
// The queue must use the default Tick clock (labels dense from 1) and the
// handle must be fresh; measurement stops early if a dequeue comes up empty.
func MeasureDequeueRank(h *core.MQHandle, buffer, ops int) *stats.Sample {
	fw := dlin.NewFenwick(buffer + ops + h.Queue().Batch() + 2)
	for i := 0; i < buffer; i++ {
		fw.Add(int(h.Enqueue(0)), 1)
	}
	sample := stats.NewSample(ops)
	for i := 0; i < ops; i++ {
		fw.Add(int(h.Enqueue(0)), 1)
		it, ok := h.Dequeue()
		if !ok {
			break
		}
		rank := fw.PrefixSum(int(it.Priority))
		fw.Add(int(it.Priority), -1)
		sample.AddInt(int(rank - 1))
	}
	return sample
}

// CounterDeviation is the result of MeasureCounterDeviation: the Figure 1(b)
// quality metrics for one MultiCounter configuration, scored by cmd/quality
// and attached per setting to cmd/benchall's BENCH_multicounter.json.
type CounterDeviation struct {
	// MaxAbsError is the largest |Read − issued increments| observed across
	// the sample points — the max-deviation the Theorem 6.1 envelope bounds.
	// In batched mode this includes the handle's not-yet-flushed increments,
	// so the audit charges the batching delay honestly.
	MaxAbsError uint64
	// MeanAbsError is the mean |Read − issued| over the sample points.
	MeanAbsError float64
	// MaxGap is the largest max−min bin imbalance observed (the O(log m)
	// quantity driving the deviation bound).
	MaxGap uint64
}

// MeasureCounterDeviation is the single-threaded steady-state deviation
// measurement shared by cmd/quality and cmd/benchall — the counter
// counterpart of MeasureDequeueRank. It drives the handle through incs
// increments, sampling Read and Gap at samples evenly spaced points, and
// reports the deviation of the sampled reads from the true issued count
// (Figure 1b's y-axes). The paper measures quality single-threaded because
// concurrent read steps have no canonical order; cmd/dlcheck provides the
// concurrent counterpart via explicit linearization stamps.
//
// A non-nil onSample receives every sample point (issued increments, read
// value, |read − issued|, current gap) — cmd/quality tabulates the Figure
// 1(b) time series through it, so the interactive table and the benchall
// gate can never diverge on the statistic they score.
//
// The handle must be fresh and is NOT flushed at the end: buffered
// increments held by a batched handle count against the measured deviation,
// which is exactly the amortisation cost the audit exists to price.
func MeasureCounterDeviation(h *core.Handle, incs, samples int, onSample func(issued, read, absErr, gap uint64)) CounterDeviation {
	if samples < 1 {
		samples = 1
	}
	every := incs / samples
	if every == 0 {
		every = 1
	}
	var dev CounterDeviation
	var sumErr float64
	var n int
	for i := 1; i <= incs; i++ {
		h.Increment()
		if i%every != 0 {
			continue
		}
		v := h.Read()
		issued := uint64(i)
		e := v - issued
		if v < issued {
			e = issued - v
		}
		if e > dev.MaxAbsError {
			dev.MaxAbsError = e
		}
		sumErr += float64(e)
		n++
		g := h.Counter().Gap()
		if g > dev.MaxGap {
			dev.MaxGap = g
		}
		if onSample != nil {
			onSample(issued, v, e, g)
		}
	}
	if n > 0 {
		dev.MeanAbsError = sumErr / float64(n)
	}
	return dev
}
