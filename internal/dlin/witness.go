package dlin

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Witness is the result of mapping a concurrent history onto a quantitative
// path of the relaxed sequential process (Definition 5.2): the per-operation
// costs in linearization order, plus the order-preservation audit.
type Witness struct {
	// Costs holds one entry per cost-bearing operation (reads for the
	// counter spec, successful dequeues for the queue spec), in
	// linearization order.
	Costs *stats.Sample
	// PathCost is the running sum of all transition costs (the monotone
	// path cost function pcost of Section 5, instantiated as the sum fold).
	PathCost float64
	// Ops is the total number of transitions replayed.
	Ops int
}

// methodOf translates a recorded event into a spec method label.
func methodOf(ev trace.Event) Method {
	switch ev.Kind {
	case trace.KindInc:
		return Method{Name: "inc"}
	case trace.KindRead:
		return Method{Name: "read", Ret: ev.Ret}
	case trace.KindEnq:
		return Method{Name: "enq", Arg: ev.Arg}
	case trace.KindDeq:
		return Method{Name: "deq", Ret: ev.Ret, OK: ev.OK}
	default:
		return Method{Name: "unknown"}
	}
}

// costBearing reports whether the event contributes a cost sample.
func costBearing(ev trace.Event) bool {
	return ev.Kind == trace.KindRead || (ev.Kind == trace.KindDeq && ev.OK)
}

// CheckRealTimeOrder verifies that the linearization order (the order of
// events, which Merge sorts by Lin stamp) respects the real-time order of
// non-overlapping operations, and that every linearization point lies within
// its operation's execution window. This is the structural half of
// Definition 5.2; the cost half is Replay.
//
// Because events arrive sorted by Lin, it suffices to check that no later
// event *started* after an earlier event *ended* with the pair ordered the
// other way around — equivalently, that Lin stamps within [Start, End]
// windows can never invert a non-overlapping pair. The scan keeps the
// maximum End seen so far among events whose windows are fully in the past.
func CheckRealTimeOrder(events []trace.Event) error {
	var prevLin uint64
	for k, ev := range events {
		if ev.Lin < ev.Start || ev.Lin > ev.End {
			return fmt.Errorf("dlin: event %d: linearization stamp %d outside window [%d, %d]",
				k, ev.Lin, ev.Start, ev.End)
		}
		if k > 0 && ev.Lin < prevLin {
			return fmt.Errorf("dlin: events %d and %d not sorted by linearization stamp", k-1, k)
		}
		prevLin = ev.Lin
	}
	// With all Lin stamps inside their windows and the sequence sorted by
	// Lin, a non-overlapping pair (a ends before b starts) satisfies
	// a.Lin <= a.End < b.Start <= b.Lin, so a precedes b. A direct O(n²)
	// audit is available in tests; here we additionally verify per-thread
	// program order, which must also hold (a thread's operations never
	// overlap each other).
	lastEnd := map[int32]uint64{}
	for k, ev := range events {
		if end, seen := lastEnd[ev.Th]; seen && ev.Start < end {
			return fmt.Errorf("dlin: event %d violates thread %d program order (start %d < previous end %d)",
				k, ev.Th, ev.Start, end)
		}
		lastEnd[ev.Th] = ev.End
	}
	return nil
}

// Replay maps the history onto the relaxed sequential process defined by
// spec and returns the witness. Events must be in linearization order
// (trace.Recorder.Merge provides this). Replay fails if the history cannot
// be mapped — e.g. a dequeue returns a label that was never enqueued, which
// would mean the concurrent structure violated even the *relaxed* sequential
// specification, not just incurred cost.
func Replay(spec Spec, events []trace.Event) (*Witness, error) {
	if err := CheckRealTimeOrder(events); err != nil {
		return nil, err
	}
	spec.Reset()
	w := &Witness{Costs: stats.NewSample(len(events))}
	for k, ev := range events {
		cost, err := spec.Apply(methodOf(ev))
		if err != nil {
			return nil, fmt.Errorf("dlin: event %d: %w", k, err)
		}
		w.PathCost += cost
		w.Ops++
		if costBearing(ev) {
			w.Costs.Add(cost)
		}
	}
	return w, nil
}

// Envelope returns m·log2(m), the scale of the paper's high-probability
// deviation bounds (Theorem 6.1's O(m·log m) counter deviation and
// Theorem 7.1's O(m·log m) rank bound). Experiments report costs normalized
// by this envelope.
func Envelope(m int) float64 {
	if m < 2 {
		return 1
	}
	l := 0.0
	for v := m; v > 1; v >>= 1 {
		l++
	}
	return float64(m) * l
}

// TailPoint is one point of the empirical cost tail: the fraction of
// cost-bearing operations whose cost exceeded R times the envelope.
type TailPoint struct {
	R    float64
	Frac float64
}

// Tail evaluates the witness's empirical complement CDF at multiples R of
// the m·log m envelope. Lemma 6.8 bounds the corresponding probability by
// m^(−Ω(R)); a sound implementation therefore shows a steeply decaying
// sequence. This is the "tail bounds on the cost distributions induced by
// all possible schedules" that Section 5's remark 2 promises.
func (w *Witness) Tail(m int, rs ...float64) []TailPoint {
	env := Envelope(m)
	out := make([]TailPoint, len(rs))
	for i, r := range rs {
		out[i] = TailPoint{R: r, Frac: w.Costs.TailFraction(r * env)}
	}
	return out
}
