package dlin

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestFenwickBasics(t *testing.T) {
	f := NewFenwick(10)
	if f.Len() != 10 {
		t.Fatalf("Len = %d", f.Len())
	}
	f.Add(3, 1)
	f.Add(7, 2)
	if f.PrefixSum(2) != 0 || f.PrefixSum(3) != 1 || f.PrefixSum(10) != 3 {
		t.Fatal("prefix sums wrong")
	}
	if f.Get(7) != 2 || f.Get(6) != 0 {
		t.Fatal("Get wrong")
	}
	if f.Total() != 3 {
		t.Fatalf("Total = %d", f.Total())
	}
	f.Add(7, -2)
	if f.Total() != 1 || f.Get(7) != 0 {
		t.Fatal("negative Add failed")
	}
	f.Reset()
	if f.Total() != 0 || f.PrefixSum(10) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestFenwickMatchesNaiveQuick(t *testing.T) {
	f := func(deltas []uint8) bool {
		n := 64
		fw := NewFenwick(n)
		naive := make([]int64, n+1)
		for _, d := range deltas {
			pos := int(d%uint8(n)) + 1
			fw.Add(pos, int64(d%5))
			naive[pos] += int64(d % 5)
		}
		var run int64
		for i := 1; i <= n; i++ {
			run += naive[i]
			if fw.PrefixSum(i) != run {
				return false
			}
			if fw.Get(i) != naive[i] {
				return false
			}
		}
		return fw.PrefixSum(n+100) == run // clamped overflow query
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFenwickPanics(t *testing.T) {
	f := NewFenwick(4)
	for _, pos := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Add(%d) did not panic", pos)
				}
			}()
			f.Add(pos, 1)
		}()
	}
}

func TestCounterSpec(t *testing.T) {
	var c CounterSpec
	cost, err := c.Apply(Method{Name: "inc"})
	if err != nil || cost != 0 {
		t.Fatalf("inc: cost=%v err=%v", cost, err)
	}
	// One increment applied; a read returning 5 costs |5-1| = 4.
	cost, err = c.Apply(Method{Name: "read", Ret: 5})
	if err != nil || cost != 4 {
		t.Fatalf("read: cost=%v err=%v", cost, err)
	}
	// Reads below the true count also cost.
	c.Apply(Method{Name: "inc"})
	c.Apply(Method{Name: "inc"})
	cost, _ = c.Apply(Method{Name: "read", Ret: 0})
	if cost != 3 {
		t.Fatalf("low read cost = %v", cost)
	}
	if c.Count() != 3 {
		t.Fatalf("Count = %d", c.Count())
	}
	if _, err := c.Apply(Method{Name: "bogus"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestQueueSpecRanks(t *testing.T) {
	q := NewQueueSpec(10)
	for _, l := range []uint64{1, 2, 3, 4, 5} {
		if _, err := q.Apply(Method{Name: "enq", Arg: l}); err != nil {
			t.Fatal(err)
		}
	}
	if q.Size() != 5 {
		t.Fatalf("Size = %d", q.Size())
	}
	// Dequeue the exact minimum: cost 0.
	cost, err := q.Apply(Method{Name: "deq", Ret: 1, OK: true})
	if err != nil || cost != 0 {
		t.Fatalf("deq(1): cost=%v err=%v", cost, err)
	}
	// Dequeue label 4: present are {2,3,4,5}, rank 3, cost 2.
	cost, err = q.Apply(Method{Name: "deq", Ret: 4, OK: true})
	if err != nil || cost != 2 {
		t.Fatalf("deq(4): cost=%v err=%v", cost, err)
	}
	// Dequeue absent label: error (violates even the relaxed spec).
	if _, err := q.Apply(Method{Name: "deq", Ret: 4, OK: true}); err == nil {
		t.Fatal("dequeue of absent label accepted")
	}
	// Unsuccessful dequeue: free.
	cost, err = q.Apply(Method{Name: "deq", OK: false})
	if err != nil || cost != 0 {
		t.Fatalf("empty deq: cost=%v err=%v", cost, err)
	}
	// Out-of-range labels rejected.
	if _, err := q.Apply(Method{Name: "enq", Arg: 11}); err == nil {
		t.Fatal("out-of-range enqueue accepted")
	}
	if _, err := q.Apply(Method{Name: "enq", Arg: 0}); err == nil {
		t.Fatal("zero label accepted")
	}
}

func ev(kind trace.Kind, start, lin, end uint64, th int32) trace.Event {
	return trace.Event{Kind: kind, Start: start, Lin: lin, End: end, Th: th}
}

func TestCheckRealTimeOrderValid(t *testing.T) {
	events := []trace.Event{
		ev(trace.KindInc, 1, 2, 3, 0),
		ev(trace.KindInc, 2, 4, 6, 1), // overlaps the first; fine
		ev(trace.KindInc, 7, 8, 9, 0),
	}
	if err := CheckRealTimeOrder(events); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRealTimeOrderRejectsBadWindow(t *testing.T) {
	events := []trace.Event{ev(trace.KindInc, 5, 2, 7, 0)} // lin before start
	if err := CheckRealTimeOrder(events); err == nil {
		t.Fatal("lin outside window accepted")
	}
	events = []trace.Event{ev(trace.KindInc, 1, 9, 7, 0)} // lin after end
	if err := CheckRealTimeOrder(events); err == nil {
		t.Fatal("lin outside window accepted")
	}
}

func TestCheckRealTimeOrderRejectsUnsorted(t *testing.T) {
	events := []trace.Event{
		ev(trace.KindInc, 1, 5, 6, 0),
		ev(trace.KindInc, 1, 3, 6, 1),
	}
	if err := CheckRealTimeOrder(events); err == nil {
		t.Fatal("unsorted events accepted")
	}
}

func TestCheckRealTimeOrderRejectsProgramOrderViolation(t *testing.T) {
	events := []trace.Event{
		ev(trace.KindInc, 1, 2, 10, 0),
		ev(trace.KindInc, 5, 6, 7, 0), // same thread, starts before prior end
	}
	if err := CheckRealTimeOrder(events); err == nil {
		t.Fatal("program-order violation accepted")
	}
}

// TestSortedByLinImpliesRealTimeOrder is the O(n²) audit backing the fast
// check: any window-respecting, Lin-sorted history preserves the order of
// non-overlapping operations.
func TestSortedByLinImpliesRealTimeOrder(t *testing.T) {
	f := func(raw []uint8) bool {
		// Build events with random windows on one thread each (avoiding
		// program-order complications), sorted by Lin.
		var events []trace.Event
		var stamp uint64 = 1
		for i, r := range raw {
			width := uint64(r%7) + 1
			e := ev(trace.KindInc, stamp, stamp+uint64(r)%width, stamp+width, int32(i))
			if e.Lin < e.Start {
				e.Lin = e.Start
			}
			events = append(events, e)
			stamp += uint64(r%3) + 1
		}
		// sort by Lin
		for i := 1; i < len(events); i++ {
			for j := i; j > 0 && events[j].Lin < events[j-1].Lin; j-- {
				events[j], events[j-1] = events[j-1], events[j]
			}
		}
		if err := CheckRealTimeOrder(events); err != nil {
			return true // fast check rejected it; nothing to audit
		}
		// O(n²) audit: no pair may violate real-time order.
		for a := range events {
			for b := a + 1; b < len(events); b++ {
				if events[b].End < events[a].Start {
					return false // b entirely before a but linearized after
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayCounterHistory(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindInc, Start: 1, Lin: 1, End: 1, Th: 0},
		{Kind: trace.KindInc, Start: 2, Lin: 2, End: 2, Th: 1},
		{Kind: trace.KindRead, Start: 3, Lin: 3, End: 3, Th: 0, Ret: 4},
		{Kind: trace.KindInc, Start: 4, Lin: 4, End: 4, Th: 1},
		{Kind: trace.KindRead, Start: 5, Lin: 5, End: 5, Th: 0, Ret: 3},
	}
	w, err := Replay(&CounterSpec{}, events)
	if err != nil {
		t.Fatal(err)
	}
	if w.Ops != 5 {
		t.Fatalf("Ops = %d", w.Ops)
	}
	// First read: |4-2| = 2; second: |3-3| = 0. Path cost 2.
	if w.PathCost != 2 {
		t.Fatalf("PathCost = %v", w.PathCost)
	}
	if w.Costs.N() != 2 || w.Costs.Max() != 2 {
		t.Fatalf("Costs: n=%d max=%v", w.Costs.N(), w.Costs.Max())
	}
}

func TestReplayQueueHistory(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindEnq, Start: 1, Lin: 1, End: 1, Arg: 1},
		{Kind: trace.KindEnq, Start: 2, Lin: 2, End: 2, Arg: 2},
		{Kind: trace.KindEnq, Start: 3, Lin: 3, End: 3, Arg: 3},
		{Kind: trace.KindDeq, Start: 4, Lin: 4, End: 4, Ret: 2, OK: true}, // rank 2: cost 1
		{Kind: trace.KindDeq, Start: 5, Lin: 5, End: 5, Ret: 1, OK: true}, // rank 1: cost 0
	}
	w, err := Replay(NewQueueSpec(3), events)
	if err != nil {
		t.Fatal(err)
	}
	if w.PathCost != 1 {
		t.Fatalf("PathCost = %v", w.PathCost)
	}
}

func TestReplayRejectsInvalidHistory(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindDeq, Start: 1, Lin: 1, End: 1, Ret: 1, OK: true},
	}
	if _, err := Replay(NewQueueSpec(3), events); err == nil {
		t.Fatal("dequeue-before-enqueue accepted")
	}
	if _, err := Replay(NewQueueSpec(3), []trace.Event{ev(trace.KindInc, 5, 2, 7, 0)}); err == nil || !strings.Contains(err.Error(), "linearization") {
		t.Fatalf("order violation not reported: %v", err)
	}
}

func TestEnvelope(t *testing.T) {
	if Envelope(1) != 1 {
		t.Fatal("Envelope(1)")
	}
	if Envelope(64) != 64*6 {
		t.Fatalf("Envelope(64) = %v", Envelope(64))
	}
	if Envelope(100) != 100*6 { // floor(log2(100)) = 6
		t.Fatalf("Envelope(100) = %v", Envelope(100))
	}
}

func TestWitnessTail(t *testing.T) {
	// Build a witness via Replay on a small counter history.
	var events []trace.Event
	stamp := uint64(1)
	addEvent := func(kind trace.Kind, ret uint64) {
		events = append(events, trace.Event{Kind: kind, Start: stamp, Lin: stamp, End: stamp, Ret: ret})
		stamp++
	}
	// 4 increments, then reads with costs 0, 4, 8, 16 relative to count 4.
	for i := 0; i < 4; i++ {
		addEvent(trace.KindInc, 0)
	}
	for _, v := range []uint64{4, 8, 12, 20} {
		addEvent(trace.KindRead, v)
	}
	ww, err := Replay(&CounterSpec{}, events)
	if err != nil {
		t.Fatal(err)
	}
	// m = 4: envelope = 4*2 = 8. Costs are 0, 4, 8, 16.
	tail := ww.Tail(4, 0.5, 1, 2)
	// > 4: two costs (8, 16) -> 0.5 ; > 8: one cost -> 0.25 ; > 16: none.
	if tail[0].Frac != 0.5 || tail[1].Frac != 0.25 || tail[2].Frac != 0 {
		t.Fatalf("tail = %+v", tail)
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Frac > tail[i-1].Frac {
			t.Fatal("tail not monotone non-increasing")
		}
	}
}
