package dlin

import (
	"testing"
	"testing/quick"
)

func TestBoundedCounterLTSAccepts(t *testing.T) {
	l := BoundedCounterLTS(3, 3)
	cases := []struct {
		trace []Label
		want  bool
	}{
		{[]Label{}, true},
		{[]Label{{Name: "inc"}}, true},
		{[]Label{{Name: "inc"}, {Name: "read", Ret: 1}}, true},
		{[]Label{{Name: "read", Ret: 0}}, true},
		{[]Label{{Name: "read", Ret: 1}}, false},                                     // wrong value in state 0
		{[]Label{{Name: "inc"}, {Name: "inc"}, {Name: "inc"}, {Name: "inc"}}, false}, // beyond bound
		{[]Label{{Name: "inc"}, {Name: "read", Ret: 0}}, false},
	}
	for i, c := range cases {
		if got := l.Accepts(c.trace); got != c.want {
			t.Fatalf("case %d: Accepts = %v, want %v", i, got, c.want)
		}
	}
}

// TestCounterSpecMatchesExplicitLTS is the defining property of a
// quantitative relaxation (Section 5, step 2): the executable CounterSpec
// assigns cost 0 to a transition exactly when the explicit LTS contains it.
func TestCounterSpecMatchesExplicitLTS(t *testing.T) {
	const bound = 12
	l := BoundedCounterLTS(bound, bound)
	f := func(ops []uint8) bool {
		spec := &CounterSpec{}
		q := 0
		incs := 0
		for _, o := range ops {
			var lab Label
			if o%3 == 0 && incs < bound {
				lab = Label{Name: "inc"}
				incs++
			} else {
				lab = Label{Name: "read", Ret: uint64(o % (bound + 1))}
			}
			m := Method{Name: lab.Name, Ret: lab.Ret}
			cost, err := spec.Apply(m)
			if err != nil {
				return false
			}
			next, inLTS := l.Step(q, lab)
			if (cost == 0) != inLTS {
				return false // relaxation property violated
			}
			if inLTS {
				q = next
			} else if lab.Name == "inc" {
				q++ // completion advances the count anyway
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedQueueLTSAccepts(t *testing.T) {
	l := BoundedQueueLTS(4)
	enq := func(x uint64) Label { return Label{Name: "enq", Arg: x} }
	deq := func(x uint64) Label { return Label{Name: "deq", Ret: x, OK: true} }
	cases := []struct {
		trace []Label
		want  bool
	}{
		{[]Label{enq(1), deq(1)}, true},
		{[]Label{enq(2), enq(1), deq(1), deq(2)}, true},
		{[]Label{enq(2), enq(1), deq(2)}, false}, // not the minimum
		{[]Label{deq(1)}, false},                 // empty
		{[]Label{{Name: "deq", OK: false}}, true},
		{[]Label{enq(1), enq(1)}, false}, // duplicate label
	}
	for i, c := range cases {
		if got := l.Accepts(c.trace); got != c.want {
			t.Fatalf("case %d: Accepts = %v, want %v", i, got, c.want)
		}
	}
}

// TestQueueSpecMatchesExplicitLTS: QueueSpec's zero-cost transitions are
// exactly the explicit queue LTS's transitions (dequeue of the minimum).
func TestQueueSpecMatchesExplicitLTS(t *testing.T) {
	const maxLabel = 8
	l := BoundedQueueLTS(maxLabel)
	f := func(ops []uint8) bool {
		spec := NewQueueSpec(maxLabel)
		q := 0
		present := map[uint64]bool{}
		for _, o := range ops {
			lab := uint64(o%maxLabel) + 1
			if o%2 == 0 && !present[lab] {
				cost, err := spec.Apply(Method{Name: "enq", Arg: lab})
				if err != nil || cost != 0 {
					return false
				}
				next, ok := l.Step(q, Label{Name: "enq", Arg: lab})
				if !ok {
					return false
				}
				q = next
				present[lab] = true
				continue
			}
			if present[lab] {
				cost, err := spec.Apply(Method{Name: "deq", Ret: lab, OK: true})
				if err != nil {
					return false
				}
				next, inLTS := l.Step(q, Label{Name: "deq", Ret: lab, OK: true})
				if (cost == 0) != inLTS {
					return false // zero cost iff dequeued the minimum
				}
				if inLTS {
					q = next
				} else {
					// Completion: remove the label from the explicit state
					// by hand to keep the two machines aligned.
					q = q &^ (1 << uint(lab-1))
				}
				delete(present, lab)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitLTSPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"NewExplicitLTS 0":  func() { NewExplicitLTS(0) },
		"AddTransition oob": func() { NewExplicitLTS(2).AddTransition(0, Label{}, 5) },
		"BoundedQueue big":  func() { BoundedQueueLTS(20) },
		"CompletedCost":     func() { BoundedCounterLTS(1, 1).CompletedCost(0, Label{Name: "read", Ret: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLabelString(t *testing.T) {
	l := Label{Name: "enq", Arg: 3}
	if l.String() != "enq(arg=3,ret=0,ok=false)" {
		t.Fatalf("String = %q", l.String())
	}
}

// TestPrefixClosure: S is prefix-closed (definition of a sequential data
// structure); every prefix of an accepted trace is accepted.
func TestPrefixClosure(t *testing.T) {
	l := BoundedCounterLTS(6, 6)
	trace := []Label{
		{Name: "inc"}, {Name: "read", Ret: 1}, {Name: "inc"}, {Name: "inc"},
		{Name: "read", Ret: 3}, {Name: "inc"},
	}
	if !l.Accepts(trace) {
		t.Fatal("full trace rejected")
	}
	for k := 0; k <= len(trace); k++ {
		if !l.Accepts(trace[:k]) {
			t.Fatalf("prefix of length %d rejected", k)
		}
	}
}
