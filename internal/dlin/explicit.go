package dlin

import "fmt"

// This file renders Definition 5.1 literally: a finite labeled transition
// system LTS(S) = (Q, Σ, →, q0) over explicit states, together with the
// completed transition system and its cost function (steps 1–2 of the
// randomized quantitative relaxation). The executable Specs in lts.go are
// the unbounded, efficient form; the explicit form exists so tests can
// verify the correspondence — cost zero in the executable spec exactly when
// the transition is present in LTS(S) — on bounded instances, which is the
// defining property of a quantitative relaxation ("cost(q, m, q') = 0 if and
// only if q →m q' in LTS(S)").

// Label is an element of Σ: a method with its input/output values rendered
// as a comparable value.
type Label struct {
	Name string
	Arg  uint64
	Ret  uint64
	OK   bool
}

// String renders the label.
func (l Label) String() string {
	return fmt.Sprintf("%s(arg=%d,ret=%d,ok=%v)", l.Name, l.Arg, l.Ret, l.OK)
}

// ExplicitLTS is a finite LTS with states indexed 0..|Q|-1 and a transition
// partial function. State 0 is q0.
type ExplicitLTS struct {
	numStates int
	// delta maps (state, label) to the successor state; absence means no
	// transition with that label.
	delta map[int]map[Label]int
}

// NewExplicitLTS returns an LTS with n states and no transitions.
func NewExplicitLTS(n int) *ExplicitLTS {
	if n <= 0 {
		panic("dlin: NewExplicitLTS needs n > 0")
	}
	return &ExplicitLTS{numStates: n, delta: make(map[int]map[Label]int)}
}

// AddTransition installs q →label q'.
func (l *ExplicitLTS) AddTransition(q int, label Label, qNext int) {
	if q < 0 || q >= l.numStates || qNext < 0 || qNext >= l.numStates {
		panic("dlin: AddTransition state out of range")
	}
	if l.delta[q] == nil {
		l.delta[q] = make(map[Label]int)
	}
	l.delta[q][label] = qNext
}

// Step returns the successor of q under label, with ok reporting whether the
// transition exists in LTS(S).
func (l *ExplicitLTS) Step(q int, label Label) (int, bool) {
	next, ok := l.delta[q][label]
	return next, ok
}

// Accepts reports whether the trace is in the set of traces of q0 — i.e.
// whether the sequential history belongs to the specification S (the paper:
// "u ∈ S iff q0 →u").
func (l *ExplicitLTS) Accepts(tr []Label) bool {
	q := 0
	for _, lab := range tr {
		next, ok := l.Step(q, lab)
		if !ok {
			return false
		}
		q = next
	}
	return true
}

// CompletedCost evaluates one transition of the *completed* LTS (step 1 of
// the relaxation: transitions from any state to any state by any method)
// under the given cost function, advancing the state greedily to the target
// the cost function designates. It returns the per-transition cost: zero
// exactly when the transition is in LTS(S).
//
// For the bounded counter below, the completion semantics are: "inc" always
// advances the true count; "read" returning v leaves the state unchanged and
// costs |v − count|. This mirrors CounterSpec.
func (l *ExplicitLTS) CompletedCost(q int, label Label) (qNext int, cost float64) {
	if next, ok := l.Step(q, label); ok {
		return next, 0
	}
	// Completion: the transition exists with a cost. The generic explicit
	// form has no structure to derive costs from, so the bounded-instance
	// constructors attach them via closure; see BoundedCounterLTS.
	panic("dlin: CompletedCost on a label with no completion rule; use a constructor-provided evaluator")
}

// BoundedCounterLTS builds LTS(S) for a counter that performs at most
// maxCount increments: states are the counter values 0..maxCount, "inc"
// moves k→k+1, and "read" returning exactly k loops at k. This is the
// sequential specification S of Section 5 instantiated for the counter, with
// Σ restricted to reads returning values 0..maxRead.
func BoundedCounterLTS(maxCount, maxRead uint64) *ExplicitLTS {
	l := NewExplicitLTS(int(maxCount) + 1)
	for k := uint64(0); k <= maxCount; k++ {
		if k < maxCount {
			l.AddTransition(int(k), Label{Name: "inc"}, int(k)+1)
		}
		// The only zero-cost read in state k returns k.
		if k <= maxRead {
			l.AddTransition(int(k), Label{Name: "read", Ret: k}, int(k))
		}
	}
	return l
}

// BoundedQueueLTS builds LTS(S) for a priority-ordered queue over labels
// 1..maxLabel: states are subsets of present labels (bitmask over maxLabel
// bits, so keep maxLabel small — tests use ≤ 12), "enq l" inserts an absent
// label, and "deq" removing the *minimum* present label is the only
// zero-cost dequeue. Unsuccessful dequeues loop on the empty set.
func BoundedQueueLTS(maxLabel int) *ExplicitLTS {
	if maxLabel < 1 || maxLabel > 16 {
		panic("dlin: BoundedQueueLTS needs 1 <= maxLabel <= 16")
	}
	n := 1 << uint(maxLabel)
	l := NewExplicitLTS(n)
	for set := 0; set < n; set++ {
		for lab := 1; lab <= maxLabel; lab++ {
			bit := 1 << uint(lab-1)
			if set&bit == 0 {
				l.AddTransition(set, Label{Name: "enq", Arg: uint64(lab)}, set|bit)
			}
		}
		if set == 0 {
			l.AddTransition(0, Label{Name: "deq", OK: false}, 0)
			continue
		}
		// Minimum present label.
		min := 0
		for lab := 1; lab <= maxLabel; lab++ {
			if set&(1<<uint(lab-1)) != 0 {
				min = lab
				break
			}
		}
		l.AddTransition(set, Label{Name: "deq", Ret: uint64(min), OK: true}, set&^(1<<uint(min-1)))
	}
	return l
}
