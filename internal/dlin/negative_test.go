package dlin

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// recordQueueHistory runs a live concurrent MultiQueue workload and returns
// its merged history plus the largest enqueue label — the raw material the
// corruption tests mutate. The uncorrupted history must replay cleanly, so
// every rejection below is attributable to the injected corruption alone.
func recordQueueHistory(t *testing.T, workers, per int) ([]trace.Event, uint64) {
	t.Helper()
	q := core.NewMultiQueue(core.MultiQueueConfig{Queues: 8, Seed: 3})
	rec := trace.NewRecorder(workers, 2*per+1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle(uint64(w) + 7)
			log := rec.Log(w)
			for i := 0; i < per; i++ {
				h.EnqueueTraced(uint64(i), rec, log)
				if i%2 == 1 {
					h.DequeueTraced(rec, log)
				}
			}
		}(w)
	}
	wg.Wait()
	events := rec.Merge()
	var maxLabel uint64
	for _, e := range events {
		if e.Kind == trace.KindEnq && e.Arg > maxLabel {
			maxLabel = e.Arg
		}
	}
	if _, err := Replay(NewQueueSpec(maxLabel), events); err != nil {
		t.Fatalf("uncorrupted history rejected: %v", err)
	}
	return events, maxLabel
}

// cloneEvents deep-copies a history so each corruption starts from the same
// clean baseline.
func cloneEvents(events []trace.Event) []trace.Event {
	out := make([]trace.Event, len(events))
	copy(out, events)
	return out
}

// findNonOverlapping returns indices a < b of two events from different
// threads where a ends strictly before b starts.
func findNonOverlapping(t *testing.T, events []trace.Event) (int, int) {
	t.Helper()
	for a := range events {
		for b := a + 1; b < len(events); b++ {
			if events[a].Th != events[b].Th && events[a].End < events[b].Start {
				return a, b
			}
		}
	}
	t.Fatal("history has no non-overlapping pair across threads")
	return 0, 0
}

func TestNegativeSwapLinOfNonOverlappingOps(t *testing.T) {
	events, _ := recordQueueHistory(t, 4, 500)
	a, b := findNonOverlapping(t, events)

	// Variant 1: swap the Lin stamps in place. The sequence is no longer
	// sorted by linearization stamp, which CheckRealTimeOrder must flag.
	bad := cloneEvents(events)
	bad[a].Lin, bad[b].Lin = bad[b].Lin, bad[a].Lin
	if err := CheckRealTimeOrder(bad); err == nil {
		t.Fatal("swapped Lin stamps (unsorted) accepted")
	}

	// Variant 2: swap and re-sort, as a checker fed by Merge would see it.
	// Now each stamp sits outside its operation's [Start, End] window:
	// accepting it would linearize b before a although a finished first.
	resorted := cloneEvents(bad)
	sort.Slice(resorted, func(i, j int) bool { return resorted[i].Lin < resorted[j].Lin })
	err := CheckRealTimeOrder(resorted)
	if err == nil {
		t.Fatal("swapped+resorted Lin stamps accepted")
	}
	if !strings.Contains(err.Error(), "outside window") {
		t.Fatalf("unexpected rejection reason: %v", err)
	}
}

func TestNegativeLinOutsideInvocationWindow(t *testing.T) {
	events, maxLabel := recordQueueHistory(t, 4, 500)
	for name, mutate := range map[string]func(*trace.Event){
		"after-end":    func(ev *trace.Event) { ev.Lin = ev.End + 1_000_000 },
		"before-start": func(ev *trace.Event) { ev.Lin = ev.Start - 1 },
	} {
		bad := cloneEvents(events)
		// Corrupt a mid-history event with a non-degenerate window start.
		k := len(bad) / 2
		for bad[k].Start == 0 {
			k++
		}
		mutate(&bad[k])
		sort.Slice(bad, func(i, j int) bool { return bad[i].Lin < bad[j].Lin })
		if err := CheckRealTimeOrder(bad); err == nil {
			t.Fatalf("%s: linearization point outside window accepted", name)
		}
		// Replay must refuse the same history before touching the spec.
		if _, err := Replay(NewQueueSpec(maxLabel), bad); err == nil {
			t.Fatalf("%s: Replay accepted unlinearizable history", name)
		}
	}
}

func TestNegativeDroppedEnqueue(t *testing.T) {
	events, maxLabel := recordQueueHistory(t, 4, 500)
	// Find a successful dequeue and delete its matching enqueue: the history
	// then dequeues a label that was never inserted, violating even the
	// relaxed specification.
	deq := -1
	for k, ev := range events {
		if ev.Kind == trace.KindDeq && ev.OK {
			deq = k
			break
		}
	}
	if deq < 0 {
		t.Fatal("history has no successful dequeue")
	}
	label := events[deq].Ret
	bad := make([]trace.Event, 0, len(events)-1)
	for _, ev := range events {
		if ev.Kind == trace.KindEnq && ev.Arg == label {
			continue
		}
		bad = append(bad, ev)
	}
	if len(bad) != len(events)-1 {
		t.Fatalf("expected exactly one enqueue of label %d", label)
	}
	_, err := Replay(NewQueueSpec(maxLabel), bad)
	if err == nil {
		t.Fatal("history with dropped enqueue accepted")
	}
	if !strings.Contains(err.Error(), "absent label") {
		t.Fatalf("unexpected rejection reason: %v", err)
	}
}

func TestNegativeDuplicateDequeue(t *testing.T) {
	events, maxLabel := recordQueueHistory(t, 4, 500)
	deq := -1
	for k, ev := range events {
		if ev.Kind == trace.KindDeq && ev.OK {
			deq = k
			break
		}
	}
	if deq < 0 {
		t.Fatal("history has no successful dequeue")
	}
	// Append a second dequeue of the same label in a fresh window after all
	// recorded activity; it is well-formed order-wise but removes an element
	// that is no longer present.
	last := events[len(events)-1]
	dup := events[deq]
	dup.Start = last.End + 1
	dup.Lin = last.End + 2
	dup.End = last.End + 3
	bad := append(cloneEvents(events), dup)
	if err := CheckRealTimeOrder(bad); err != nil {
		t.Fatalf("structurally valid duplicate rejected for the wrong reason: %v", err)
	}
	if _, err := Replay(NewQueueSpec(maxLabel), bad); err == nil {
		t.Fatal("duplicate dequeue accepted")
	}
}

func TestNegativeProgramOrderViolation(t *testing.T) {
	events, _ := recordQueueHistory(t, 4, 500)
	// Give one thread two overlapping operations: a thread cannot invoke an
	// operation before its previous one returned.
	bad := cloneEvents(events)
	th := bad[0].Th
	first, second := -1, -1
	for k := range bad {
		if bad[k].Th != th {
			continue
		}
		if first < 0 {
			first = k
		} else {
			second = k
			break
		}
	}
	if second < 0 {
		t.Fatal("thread has fewer than two events")
	}
	// Moving the second invocation backwards to inside the first's window
	// cannot disturb the Lin sort or the window containment (Start only
	// shrinks, Lin and End are untouched), so the *only* new defect is the
	// program-order overlap.
	bad[second].Start = bad[first].End - 1
	err := CheckRealTimeOrder(bad)
	if err == nil {
		t.Fatal("program-order violation accepted")
	}
	if !strings.Contains(err.Error(), "program order") {
		t.Fatalf("unexpected rejection reason: %v", err)
	}
}

// TestNegativeCounterUnknownMethod covers the spec-level rejection path for
// the counter: a history event that maps to no spec method must fail Replay
// rather than silently costing zero.
func TestNegativeCounterUnknownMethod(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindInc, Start: 1, Lin: 1, End: 1, Th: 0},
		{Kind: trace.KindEnq, Arg: 1, Start: 2, Lin: 2, End: 2, Th: 0}, // queue op in a counter history
	}
	if _, err := Replay(&CounterSpec{}, events); err == nil {
		t.Fatal("counter spec accepted an enqueue event")
	}
}
