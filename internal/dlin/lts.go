// Package dlin implements the distributional linearizability framework of
// Section 5: sequential specifications as labeled transition systems,
// their randomized quantitative relaxations (completion + cost function +
// path cost + cost distribution), and the witness mapping that takes a
// recorded concurrent history onto a quantitative path of the relaxed
// sequential process, checking that outputs and the order of non-overlapping
// operations are preserved and extracting the empirical cost distribution.
package dlin

import "fmt"

// Method is a label in Σ: a method name together with its input and output
// values, as in Definition 5.1.
type Method struct {
	Name string
	Arg  uint64
	Ret  uint64
	OK   bool
}

// Spec is an executable sequential specification with quantitative
// relaxation: the completed LTS of Section 5 steps 1–3, folded into a state
// machine. Apply performs the transition labelled m from the current state
// and returns its cost; the cost is zero exactly when the transition exists
// in LTS(S) (step 2's condition). Path cost is the caller's fold over the
// returned per-step costs (monotone under any of the paper's aggregation
// choices, since costs are non-negative).
type Spec interface {
	// Reset returns the machine to the initial state q0.
	Reset()
	// Apply executes one transition and returns its cost.
	Apply(m Method) (cost float64, err error)
}

// CounterSpec is the sequential specification of a counter with methods
// inc and read. The relaxation cost of a read returning v in a state with k
// completed increments is |v − k| — the deviation Theorem 6.1 bounds by
// O(m·log m). Increments always cost zero (the MultiCounter relaxes only
// the values reads observe, not the increment count itself).
type CounterSpec struct {
	count uint64
}

// Reset implements Spec.
func (c *CounterSpec) Reset() { c.count = 0 }

// Apply implements Spec. Methods: "inc" (Ret ignored), "read" (Ret = value).
func (c *CounterSpec) Apply(m Method) (float64, error) {
	switch m.Name {
	case "inc":
		c.count++
		return 0, nil
	case "read":
		k := c.count
		if m.Ret >= k {
			return float64(m.Ret - k), nil
		}
		return float64(k - m.Ret), nil
	default:
		return 0, fmt.Errorf("dlin: counter spec has no method %q", m.Name)
	}
}

// Count returns the current state (number of applied increments).
func (c *CounterSpec) Count() uint64 { return c.count }

// QueueSpec is the sequential specification of a queue with priority-ordered
// removal (the relaxed priority queue of Section 7). Labels are the unique
// uint64 priorities assigned at enqueue. The relaxation cost of a dequeue
// returning label x is rank(x) − 1 among the labels present: an exact queue
// always removes rank 1 at cost 0, and Theorem 7.1 bounds the relaxed cost
// by O(m) in expectation and O(m·log m) w.h.p.
//
// Rank queries use a Fenwick tree over the label space, so a history with E
// enqueues replays in O(E·log E).
type QueueSpec struct {
	present *Fenwick
	maxL    uint64
}

// NewQueueSpec returns a queue spec able to hold labels in [1, maxLabel].
func NewQueueSpec(maxLabel uint64) *QueueSpec {
	return &QueueSpec{present: NewFenwick(int(maxLabel)), maxL: maxLabel}
}

// Reset implements Spec.
func (q *QueueSpec) Reset() { q.present.Reset() }

// Apply implements Spec. Methods: "enq" (Arg = label), "deq" (Ret = label,
// OK = found).
func (q *QueueSpec) Apply(m Method) (float64, error) {
	switch m.Name {
	case "enq":
		if m.Arg == 0 || m.Arg > q.maxL {
			return 0, fmt.Errorf("dlin: enqueue label %d out of range [1,%d]", m.Arg, q.maxL)
		}
		q.present.Add(int(m.Arg), 1)
		return 0, nil
	case "deq":
		if !m.OK {
			// An unsuccessful dequeue is a zero-cost no-op transition; the
			// relaxed spec permits returning empty when the chosen queues
			// are empty.
			return 0, nil
		}
		if m.Ret == 0 || m.Ret > q.maxL {
			return 0, fmt.Errorf("dlin: dequeue label %d out of range [1,%d]", m.Ret, q.maxL)
		}
		if q.present.Get(int(m.Ret)) == 0 {
			return 0, fmt.Errorf("dlin: dequeue of absent label %d", m.Ret)
		}
		rank := q.present.PrefixSum(int(m.Ret)) // labels <= Ret present
		q.present.Add(int(m.Ret), -1)
		return float64(rank - 1), nil
	default:
		return 0, fmt.Errorf("dlin: queue spec has no method %q", m.Name)
	}
}

// Size returns the number of labels currently present.
func (q *QueueSpec) Size() int64 { return q.present.Total() }
