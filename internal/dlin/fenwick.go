package dlin

// Fenwick is a binary indexed tree over positions 1..n used for O(log n)
// rank queries when replaying queue histories. Values are multiplicities
// (0 or 1 in the queue spec, but the structure supports counts).
type Fenwick struct {
	t     []int64
	total int64
}

// NewFenwick returns a tree over positions 1..n.
func NewFenwick(n int) *Fenwick {
	if n < 0 {
		panic("dlin: NewFenwick needs n >= 0")
	}
	return &Fenwick{t: make([]int64, n+1)}
}

// Len returns the position-space size n.
func (f *Fenwick) Len() int { return len(f.t) - 1 }

// Reset zeroes the tree.
func (f *Fenwick) Reset() {
	for i := range f.t {
		f.t[i] = 0
	}
	f.total = 0
}

// Add adds delta at position i (1-based).
func (f *Fenwick) Add(i int, delta int64) {
	if i <= 0 || i >= len(f.t) {
		panic("dlin: Fenwick.Add position out of range")
	}
	f.total += delta
	for ; i < len(f.t); i += i & (-i) {
		f.t[i] += delta
	}
}

// PrefixSum returns the sum of positions 1..i.
func (f *Fenwick) PrefixSum(i int) int64 {
	if i >= len(f.t) {
		i = len(f.t) - 1
	}
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += f.t[i]
	}
	return s
}

// Get returns the value at position i.
func (f *Fenwick) Get(i int) int64 { return f.PrefixSum(i) - f.PrefixSum(i-1) }

// Total returns the sum over all positions.
func (f *Fenwick) Total() int64 { return f.total }
