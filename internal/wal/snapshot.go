package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// snapMagic heads every snapshot payload so a stray file can never be
// mistaken for one.
var snapMagic = []byte("DLZSNAP1")

// maxSnapTenants bounds the decoded tenant count (dlzd caps namespaces far
// below this); maxSnapItems bounds one tenant's element count to keep a
// corrupt snapshot from driving a huge allocation before its CRC would
// have failed anyway.
const (
	maxSnapTenants = 1 << 16
	maxSnapItems   = 1 << 28
)

// TenantState is one tenant's logical durable state: everything needed to
// rebuild its namespace as if every lease had been flushed and closed.
// Items are sorted by (priority, value) so equal logical states encode
// identically — the determinism tests diff these byte-for-byte.
type TenantState struct {
	Name string
	// M is the shard count to restore (0 = server default, never resized).
	M int
	// Items is the full queue contents, sorted.
	Items []Item
	// CounterSum is the relaxed counter's exact value.
	CounterSum uint64
	// Ledger counters (the conservation contract of DESIGN.md §9).
	OpsEnqueued     uint64
	OpsDequeued     uint64
	OpsCounterAdds  uint64
	CounterDeltaSum uint64
	OpsMetered      uint64
}

// SortItems sorts ts.Items into the canonical (priority, value) order.
func (ts *TenantState) SortItems() {
	sort.Slice(ts.Items, func(i, j int) bool {
		a, b := ts.Items[i], ts.Items[j]
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
		return a.Value < b.Value
	})
}

// Snapshot is a point-in-time capture of every tenant at a single cut LSN:
// replaying records with LSN > CutLSN on top of it reproduces the journal
// head state.
type Snapshot struct {
	CutLSN  uint64
	Tenants []TenantState
}

func encodeSnapshot(s *Snapshot) []byte {
	p := append([]byte(nil), snapMagic...)
	p = binary.LittleEndian.AppendUint64(p, s.CutLSN)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(s.Tenants)))
	for i := range s.Tenants {
		t := &s.Tenants[i]
		p = appendShortString(p, t.Name)
		p = binary.LittleEndian.AppendUint32(p, uint32(t.M))
		p = binary.LittleEndian.AppendUint64(p, t.CounterSum)
		p = binary.LittleEndian.AppendUint64(p, t.OpsEnqueued)
		p = binary.LittleEndian.AppendUint64(p, t.OpsDequeued)
		p = binary.LittleEndian.AppendUint64(p, t.OpsCounterAdds)
		p = binary.LittleEndian.AppendUint64(p, t.CounterDeltaSum)
		p = binary.LittleEndian.AppendUint64(p, t.OpsMetered)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(t.Items)))
		for _, it := range t.Items {
			p = binary.LittleEndian.AppendUint64(p, it.Priority)
			p = binary.LittleEndian.AppendUint64(p, it.Value)
		}
	}
	return p
}

// DecodeSnapshot parses a snapshot payload (strict, like the record codec:
// trailing bytes are an error). It never panics on arbitrary input.
func DecodeSnapshot(p []byte) (*Snapshot, error) {
	if len(p) < len(snapMagic)+12 || string(p[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("wal: not a snapshot payload")
	}
	p = p[len(snapMagic):]
	s := &Snapshot{CutLSN: binary.LittleEndian.Uint64(p)}
	n := binary.LittleEndian.Uint32(p[8:])
	p = p[12:]
	if n > maxSnapTenants {
		return nil, fmt.Errorf("wal: snapshot tenant count %d exceeds cap", n)
	}
	for i := uint32(0); i < n; i++ {
		var t TenantState
		var err error
		if t.Name, p, err = cutShortString(p); err != nil {
			return nil, fmt.Errorf("wal: snapshot tenant name: %w", err)
		}
		if len(p) < 4+6*8+4 {
			return nil, fmt.Errorf("wal: snapshot tenant %q truncated", t.Name)
		}
		t.M = int(binary.LittleEndian.Uint32(p))
		t.CounterSum = binary.LittleEndian.Uint64(p[4:])
		t.OpsEnqueued = binary.LittleEndian.Uint64(p[12:])
		t.OpsDequeued = binary.LittleEndian.Uint64(p[20:])
		t.OpsCounterAdds = binary.LittleEndian.Uint64(p[28:])
		t.CounterDeltaSum = binary.LittleEndian.Uint64(p[36:])
		t.OpsMetered = binary.LittleEndian.Uint64(p[44:])
		items := binary.LittleEndian.Uint32(p[52:])
		p = p[56:]
		if items > maxSnapItems || uint64(len(p)) < uint64(items)*16 {
			return nil, fmt.Errorf("wal: snapshot tenant %q item count %d exceeds payload", t.Name, items)
		}
		if items > 0 {
			t.Items = make([]Item, items)
			for j := range t.Items {
				t.Items[j].Priority = binary.LittleEndian.Uint64(p)
				t.Items[j].Value = binary.LittleEndian.Uint64(p[8:])
				p = p[16:]
			}
		}
		s.Tenants = append(s.Tenants, t)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("wal: %d trailing snapshot bytes", len(p))
	}
	return s, nil
}

// WriteSnapshot persists s atomically (tmp + rename + directory sync),
// records its cut, resets the bytes-since-snapshot gauge, and truncates
// segments and snapshots the new snapshot makes dead. The caller guarantees
// s captures all state through s.CutLSN (dlzd's snapshotter quiesces
// mutators, flushes leases, and reads Head() before releasing them).
func (l *Log) WriteSnapshot(s *Snapshot) error {
	payload := encodeSnapshot(s)
	buf := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)

	final := filepath.Join(l.opt.Dir, snapName(s.CutLSN))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err = f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if d, derr := os.Open(l.opt.Dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	l.snapCut.Store(s.CutLSN)
	l.sinceSnap.Store(0)
	l.truncateObsolete(s.CutLSN)
	return nil
}

// loadSnapshotFile reads and decodes one snapshot file; a nil error means
// the snapshot is fully intact (magic, CRC, canonical payload).
func loadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < frameHeader {
		return nil, fmt.Errorf("wal: snapshot file too short")
	}
	plen := int(binary.LittleEndian.Uint32(data))
	crc := binary.LittleEndian.Uint32(data[4:])
	if plen != len(data)-frameHeader {
		return nil, fmt.Errorf("wal: snapshot length field %d != %d payload bytes", plen, len(data)-frameHeader)
	}
	payload := data[frameHeader:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	return DecodeSnapshot(payload)
}

// truncateObsolete removes segments whose every record is at or before cut
// (the active segment is always kept) and snapshots older than cut. Removal
// failures are ignored: a leftover dead file is re-derived as dead on the
// next recovery.
func (l *Log) truncateObsolete(cut uint64) {
	entries, err := os.ReadDir(l.opt.Dir)
	if err != nil {
		return
	}
	l.mu.Lock()
	active := l.segName
	l.mu.Unlock()

	type seg struct {
		first uint64
		name  string
	}
	var segs []seg
	for _, e := range entries {
		name := e.Name()
		if first, ok := parseSeq(name, "wal-", ".seg"); ok {
			segs = append(segs, seg{first, name})
		} else if c, ok := parseSeq(name, "snap-", ".snap"); ok && c < cut {
			_ = os.Remove(filepath.Join(l.opt.Dir, name))
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	// A segment is dead when its successor starts at or before cut+1: every
	// record it holds is then ≤ cut and covered by the snapshot.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].first <= cut+1 && segs[i].name != active {
			_ = os.Remove(filepath.Join(l.opt.Dir, segs[i].name))
		}
	}
}
