package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func testOpen(t *testing.T, dir string, opt Options) (*Log, *Recovered) {
	t.Helper()
	opt.Dir = dir
	l, rec, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func mustAppend(t *testing.T, l *Log, r Record) uint64 {
	t.Helper()
	lsn, err := l.Append(&r)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return lsn
}

func sampleRecords() []Record {
	return []Record{
		{Type: RecEnqueue, Tenant: "acme", Session: "s1",
			Items: []Item{{5, 50}, {3, 30}}, Metered: 2},
		{Type: RecCounterAdd, Tenant: "acme", Session: "s1", Count: 3, Weight: 12, Metered: 3},
		{Type: RecDeleteMin, Tenant: "acme", Session: "s2", Items: []Item{{3, 30}}, Metered: 1},
		{Type: RecResize, Tenant: "acme", M: 8},
		{Type: RecSessionClose, Tenant: "acme", Session: "s1"},
		{Type: RecEnqueue, Tenant: "globex", Session: "g", Items: nil, Metered: 0},
	}
}

// recordsEqual ignores LSN-independent slice identity quirks (nil vs empty).
func recordsEqual(a, b Record) bool {
	if len(a.Items) == 0 && len(b.Items) == 0 {
		a.Items, b.Items = nil, nil
	}
	return reflect.DeepEqual(a, b)
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := testOpen(t, dir, Options{})
	if rec.Head != 0 || len(rec.Records) != 0 || rec.Snapshot != nil {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	want := sampleRecords()
	for i := range want {
		lsn := mustAppend(t, l, want[i])
		if lsn != uint64(i+1) {
			t.Fatalf("lsn %d for record %d", lsn, i)
		}
	}
	if l.Head() != uint64(len(want)) {
		t.Fatalf("Head %d", l.Head())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Append(&Record{Type: RecSessionClose, Tenant: "x"}); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}

	l2, rec2 := testOpen(t, dir, Options{})
	defer l2.Close()
	if rec2.Head != uint64(len(want)) || rec2.TornBytes != 0 {
		t.Fatalf("recovered head=%d torn=%d", rec2.Head, rec2.TornBytes)
	}
	if len(rec2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
	}
	for i, got := range rec2.Records {
		exp := want[i]
		exp.LSN = uint64(i + 1)
		if !recordsEqual(got, exp) {
			t.Fatalf("record %d: got %+v want %+v", i, got, exp)
		}
	}
	// Appends continue from the recovered head.
	if lsn := mustAppend(t, l2, Record{Type: RecSessionClose, Tenant: "y"}); lsn != uint64(len(want)+1) {
		t.Fatalf("post-recovery lsn %d", lsn)
	}
}

func TestSegmentRollAndRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, Options{SegmentBytes: 256})
	const n = 100
	for i := 0; i < n; i++ {
		mustAppend(t, l, Record{Type: RecEnqueue, Tenant: "t", Session: "s",
			Items: []Item{{uint64(i), uint64(i)}}, Metered: 1})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	_, rec := testOpenAndClose(t, dir)
	if len(rec.Records) != n || rec.Head != n {
		t.Fatalf("recovered %d records head %d", len(rec.Records), rec.Head)
	}
	for i, r := range rec.Records {
		if r.LSN != uint64(i+1) || r.Items[0].Priority != uint64(i) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
}

func testOpenAndClose(t *testing.T, dir string) (*Log, *Recovered) {
	t.Helper()
	l, rec := testOpen(t, dir, Options{})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return l, rec
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		mustAppend(t, l, Record{Type: RecEnqueue, Tenant: "t", Session: "s",
			Items: []Item{{uint64(i), 1}}, Metered: 1})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record in half.
	if err := os.WriteFile(seg, data[:len(data)-13], 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := testOpenAndClose(t, dir)
	if len(rec.Records) != 4 || rec.Head != 4 {
		t.Fatalf("after tear: %d records head %d", len(rec.Records), rec.Head)
	}
	if rec.TornBytes == 0 {
		t.Fatalf("torn bytes not reported")
	}
	// The repair pass must leave the file frame-clean: a second recovery
	// sees no tear.
	_, rec2 := testOpenAndClose(t, dir)
	if rec2.TornBytes != 0 || len(rec2.Records) != 4 {
		t.Fatalf("repair did not truncate: %+v", rec2)
	}
}

func TestBitFlipStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, Options{})
	for i := 0; i < 6; i++ {
		mustAppend(t, l, Record{Type: RecEnqueue, Tenant: "t", Session: "s",
			Items: []Item{{uint64(i), 1}}, Metered: 1})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40 // corrupt a middle record
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := testOpenAndClose(t, dir)
	if len(rec.Records) >= 6 {
		t.Fatalf("corrupt record replayed: %d records", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("replay not a prefix: record %d has LSN %d", i, r.LSN)
		}
	}
}

func TestDuplicateSegmentSuffixDropped(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, Options{})
	for i := 0; i < 4; i++ {
		mustAppend(t, l, Record{Type: RecEnqueue, Tenant: "t", Session: "s",
			Items: []Item{{uint64(i), 1}}, Metered: 1})
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Duplicate the segment under a later first-LSN name: its first record
	// claims LSN 1, contradicting the name, so recovery must not replay it.
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(5)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := testOpenAndClose(t, dir)
	if len(rec.Records) != 4 || rec.Head != 4 {
		t.Fatalf("duplicate suffix changed replay: %d records head %d", len(rec.Records), rec.Head)
	}
}

func TestSnapshotTruncatesAndCleanCloseReplaysZero(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		mustAppend(t, l, Record{Type: RecEnqueue, Tenant: "t", Session: "s",
			Items: []Item{{uint64(i), uint64(100 + i)}}, Metered: 1})
	}
	snap := &Snapshot{
		CutLSN: l.Head(),
		Tenants: []TenantState{{
			Name: "t", M: 4,
			Items:       []Item{{1, 101}, {2, 102}},
			OpsEnqueued: 20, OpsMetered: 20,
		}},
	}
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if l.BytesSinceSnapshot() != 0 || l.SnapshotCut() != 20 {
		t.Fatalf("snapshot bookkeeping: since=%d cut=%d", l.BytesSinceSnapshot(), l.SnapshotCut())
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("dead segments not truncated: %v", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec := testOpen(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 0 {
		t.Fatalf("clean restart replayed %d records", len(rec.Records))
	}
	if rec.Snapshot == nil || rec.SnapshotCut != 20 || rec.Head != 20 {
		t.Fatalf("snapshot not recovered: %+v", rec)
	}
	ts := rec.Snapshot.Tenants
	if len(ts) != 1 || ts[0].Name != "t" || ts[0].M != 4 || len(ts[0].Items) != 2 {
		t.Fatalf("snapshot state: %+v", ts)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		mustAppend(t, l, Record{Type: RecEnqueue, Tenant: "t", Session: "s",
			Items: []Item{{uint64(i), 1}}, Metered: 1})
	}
	if err := l.WriteSnapshot(&Snapshot{CutLSN: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the snapshot: recovery must fall back to full journal replay.
	path := filepath.Join(dir, snapName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := testOpenAndClose(t, dir)
	if rec.Snapshot != nil {
		t.Fatalf("corrupt snapshot decoded")
	}
	if len(rec.Records) != 3 || rec.Head != 3 {
		t.Fatalf("fallback replay: %d records head %d", len(rec.Records), rec.Head)
	}
}

func TestRebuildTwoPassCompensation(t *testing.T) {
	recs := []Record{
		// The dequeue of (9,9) is journaled before any enqueue of it — the
		// racing-session interleaving Rebuild compensates for.
		{LSN: 1, Type: RecDeleteMin, Tenant: "a", Items: []Item{{9, 9}}, Metered: 1},
		{LSN: 2, Type: RecEnqueue, Tenant: "a", Items: []Item{{1, 10}, {2, 20}}, Metered: 2},
		{LSN: 3, Type: RecDeleteMin, Tenant: "a", Items: []Item{{1, 10}}, Metered: 1},
		{LSN: 4, Type: RecCounterAdd, Tenant: "a", Count: 2, Weight: 7, Metered: 2},
		{LSN: 5, Type: RecResize, Tenant: "a", M: 16},
		{LSN: 6, Type: RecEnqueue, Tenant: "b", Items: []Item{{5, 5}}, Metered: 1},
	}
	out := Rebuild(nil, recs)
	if len(out) != 2 || out[0].Name != "a" || out[1].Name != "b" {
		t.Fatalf("tenants: %+v", out)
	}
	a := out[0]
	if !reflect.DeepEqual(a.Items, []Item{{2, 20}}) {
		t.Fatalf("a items: %+v", a.Items)
	}
	// unmatched dequeue of (9,9) credits a compensating enqueue: 2+1 = 3.
	if a.OpsEnqueued != 3 || a.OpsDequeued != 2 {
		t.Fatalf("a ledger: enq=%d deq=%d", a.OpsEnqueued, a.OpsDequeued)
	}
	if int(a.OpsEnqueued-a.OpsDequeued) != len(a.Items) {
		t.Fatalf("conservation violated: %d != %d", a.OpsEnqueued-a.OpsDequeued, len(a.Items))
	}
	if a.CounterSum != 7 || a.CounterDeltaSum != 7 || a.OpsCounterAdds != 2 {
		t.Fatalf("a counter: %+v", a)
	}
	if a.OpsMetered != 6 || a.M != 16 {
		t.Fatalf("a metered/m: %+v", a)
	}
}

func TestRebuildOnSnapshotBase(t *testing.T) {
	snap := &Snapshot{
		CutLSN: 10,
		Tenants: []TenantState{{
			Name: "a", M: 8, Items: []Item{{1, 1}, {2, 2}},
			CounterSum: 5, OpsEnqueued: 4, OpsDequeued: 2,
			OpsCounterAdds: 1, CounterDeltaSum: 5, OpsMetered: 7,
		}},
	}
	recs := []Record{
		{LSN: 11, Type: RecDeleteMin, Tenant: "a", Items: []Item{{1, 1}}, Metered: 1},
		{LSN: 12, Type: RecEnqueue, Tenant: "a", Items: []Item{{3, 3}}, Metered: 1},
	}
	out := Rebuild(snap, recs)
	if len(out) != 1 {
		t.Fatalf("tenants: %+v", out)
	}
	a := out[0]
	if !reflect.DeepEqual(a.Items, []Item{{2, 2}, {3, 3}}) {
		t.Fatalf("items: %+v", a.Items)
	}
	if a.OpsEnqueued != 5 || a.OpsDequeued != 3 || a.OpsMetered != 9 || a.M != 8 {
		t.Fatalf("ledger: %+v", a)
	}
}

func TestRebuildDeterministic(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, Options{SegmentBytes: 200})
	for i := 0; i < 50; i++ {
		mustAppend(t, l, Record{Type: RecEnqueue, Tenant: "t", Session: "s",
			Items: []Item{{uint64(i % 7), uint64(i)}}, Metered: 1})
		if i%3 == 0 {
			mustAppend(t, l, Record{Type: RecDeleteMin, Tenant: "t", Session: "s",
				Items: []Item{{uint64(i % 7), uint64(i)}}, Metered: 1})
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st1, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	b1 := encodeSnapshot(&Snapshot{Tenants: st1})
	b2 := encodeSnapshot(&Snapshot{Tenants: st2})
	if !bytes.Equal(b1, b2) {
		t.Fatalf("double replay diverged")
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("double replay states differ")
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, Options{Policy: FsyncAlways})
	const (
		workers = 8
		each    = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r := Record{Type: RecEnqueue, Tenant: "t", Session: "s",
					Items: []Item{{uint64(w), uint64(i)}}, Metered: 1}
				if _, err := l.Append(&r); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}
	if got := l.Head(); got != workers*each {
		t.Fatalf("head %d, want %d", got, workers*each)
	}
	if l.Fsyncs() == 0 {
		t.Fatalf("FsyncAlways issued no fsyncs")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := testOpenAndClose(t, dir)
	if len(rec.Records) != workers*each {
		t.Fatalf("recovered %d of %d", len(rec.Records), workers*each)
	}
	seen := make(map[uint64]bool)
	for _, r := range rec.Records {
		if seen[r.LSN] {
			t.Fatalf("duplicate LSN %d", r.LSN)
		}
		seen[r.LSN] = true
	}
}

func TestIntervalFlusher(t *testing.T) {
	dir := t.TempDir()
	l, _ := testOpen(t, dir, Options{Policy: FsyncInterval, Interval: time.Millisecond})
	mustAppend(t, l, Record{Type: RecSessionClose, Tenant: "t"})
	deadline := time.Now().Add(2 * time.Second)
	for l.Fsyncs() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if l.Fsyncs() == 0 {
		t.Fatalf("interval flusher never synced")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCodecCanonical(t *testing.T) {
	for i, r := range sampleRecords() {
		r.LSN = uint64(i + 1)
		frame := appendFrame(nil, &r)
		recs, good := DecodeSegment(frame, r.LSN)
		if good != len(frame) || len(recs) != 1 {
			t.Fatalf("record %d: decode consumed %d of %d", i, good, len(frame))
		}
		if !recordsEqual(recs[0], r) {
			t.Fatalf("record %d round trip: %+v != %+v", i, recs[0], r)
		}
		re := appendFrame(nil, &recs[0])
		if !bytes.Equal(re, frame) {
			t.Fatalf("record %d not canonical", i)
		}
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"never", FsyncNever}, {"Interval", FsyncInterval}, {" always ", FsyncAlways}} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() == "" {
			t.Fatalf("empty String for %v", got)
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Fatalf("bogus policy accepted")
	}
}
