// Package wal is a segmented, CRC32C-framed write-ahead journal with
// point-in-time snapshots, built for dlzd's optional durability rung
// (DESIGN.md §12).
//
// The write path is a single-writer append log: Append frames one record
// (length + CRC32C + canonical payload), writes it to the active segment
// with one write(2), and hands back its log sequence number. A record that
// reached write(2) survives SIGKILL of the process — fsync only matters for
// machine crashes — so the fsync policy trades machine-crash durability
// against latency: FsyncNever leaves syncing to segment seals, FsyncInterval
// runs a background flusher, FsyncAlways group-commits (every waiter blocks
// until a sync covering its LSN completes, but concurrent waiters share one
// fsync).
//
// Segments are named wal-%016x.seg by the first LSN they hold; snapshots
// snap-%016x.snap by their cut LSN. Recovery (Open) picks the newest
// decodable snapshot, replays the chained segment tail behind it, truncates
// the first torn or corrupt frame, drops unreachable later segments, and
// reports everything it did in Recovered. Rebuild turns a snapshot plus
// replayed records back into per-tenant logical state.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fail"
)

// FsyncPolicy selects when appended records are fsynced to stable storage.
type FsyncPolicy int

const (
	// FsyncNever syncs only when a segment seals (roll or Close). Records
	// still survive process SIGKILL once written; a machine crash can lose
	// the unsynced tail.
	FsyncNever FsyncPolicy = iota
	// FsyncInterval runs a background flusher that syncs the active segment
	// every Options.Interval, bounding machine-crash loss to one interval.
	FsyncInterval
	// FsyncAlways group-commits: every Append blocks until an fsync covering
	// its record completes. Concurrent appenders share one fsync (the
	// batching flusher), so throughput degrades to one sync per batch, not
	// one per record.
	FsyncAlways
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncNever:
		return "never"
	case FsyncInterval:
		return "interval"
	case FsyncAlways:
		return "always"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses the flag spellings "never", "interval", "always".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "never":
		return FsyncNever, nil
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want never, interval or always)", s)
}

// Options configures Open.
type Options struct {
	// Dir is the journal directory; created if absent.
	Dir string
	// Policy is the fsync policy (default FsyncNever).
	Policy FsyncPolicy
	// Interval is the FsyncInterval flusher period (default 100ms).
	Interval time.Duration
	// SegmentBytes rolls the active segment when it would exceed this size
	// (default 4MiB). Oversized single records still append whole.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// ErrClosed is returned by Append after Close, and sticks after an
// unrecoverable write failure left the active segment in an unknown state.
var ErrClosed = fmt.Errorf("wal: log closed")

// Log is the append side of the journal. Safe for concurrent use.
type Log struct {
	opt Options

	mu       sync.Mutex // guards f, head, segBytes, dirty, err, scratch
	f        *os.File
	segName  string
	segBytes int64
	head     uint64 // last assigned LSN
	dirty    bool   // unsynced bytes in the active segment
	err      error  // sticky: closed or broken
	scratch  []byte

	// Group-commit state for FsyncAlways.
	fmu        sync.Mutex
	fcond      *sync.Cond
	flushedLSN uint64
	flushing   bool
	ferr       error

	headWord   atomic.Uint64
	bytesTotal atomic.Uint64
	fsyncs     atomic.Uint64
	sinceSnap  atomic.Int64
	snapCut    atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

func segName(first uint64) string { return fmt.Sprintf("wal-%016x.seg", first) }
func snapName(cut uint64) string  { return fmt.Sprintf("snap-%016x.snap", cut) }
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 16 {
		return 0, false
	}
	var v uint64
	if _, err := fmt.Sscanf(mid, "%016x", &v); err != nil {
		return 0, false
	}
	return v, true
}

// Open recovers the journal in opt.Dir (truncating any torn tail), starts a
// fresh active segment at head+1, and returns the writable log plus what
// recovery found. The caller replays Recovered into its in-memory state
// before serving traffic.
func Open(opt Options) (*Log, *Recovered, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec, err := recoverDir(opt.Dir, true)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{opt: opt, head: rec.Head}
	l.fcond = sync.NewCond(&l.fmu)
	l.headWord.Store(rec.Head)
	l.flushedLSN = rec.Head // on-disk state is as durable as it will get
	l.snapCut.Store(rec.SnapshotCut)
	l.sinceSnap.Store(rec.TailBytes)
	if err := l.openSegment(rec.Head + 1); err != nil {
		return nil, nil, err
	}
	if opt.Policy == FsyncInterval {
		l.stop = make(chan struct{})
		l.wg.Add(1)
		go l.flushLoop()
	}
	return l, rec, nil
}

func (l *Log) openSegment(first uint64) error {
	name := segName(first)
	f, err := os.OpenFile(filepath.Join(l.opt.Dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.segName = name
	l.segBytes = 0
	return nil
}

// Append assigns the next LSN to r, frames it, and writes it to the active
// segment. On return with a nil error the record has reached write(2) — it
// survives a SIGKILL — and, under FsyncAlways, an fsync as well. A refused
// append (failpoint, write error) leaves the journal exactly as it was: the
// record gets no LSN and recovery will never see it.
func (l *Log) Append(r *Record) (uint64, error) {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	if fail.Enabled {
		if err := fail.Inject(fail.SiteWALAppend); err != nil {
			l.mu.Unlock()
			return 0, err
		}
	}
	lsn := l.head + 1
	r.LSN = lsn
	l.scratch = appendFrame(l.scratch[:0], r)
	frame := l.scratch
	if l.segBytes > 0 && l.segBytes+int64(len(frame)) > l.opt.SegmentBytes {
		if err := l.rollLocked(lsn); err != nil {
			l.mu.Unlock()
			return 0, err
		}
	}
	n, werr := l.f.Write(frame)
	if werr != nil || n != len(frame) {
		// Claw the partial frame back so the segment stays frame-aligned;
		// if even that fails the log is broken and refuses further appends.
		if terr := l.f.Truncate(l.segBytes); terr != nil {
			l.err = ErrClosed
		}
		l.mu.Unlock()
		if werr == nil {
			werr = fmt.Errorf("wal: short write (%d of %d bytes)", n, len(frame))
		}
		return 0, werr
	}
	l.head = lsn
	l.headWord.Store(lsn)
	l.segBytes += int64(n)
	l.dirty = true
	l.bytesTotal.Add(uint64(n))
	l.sinceSnap.Add(int64(n))
	l.mu.Unlock()

	if l.opt.Policy == FsyncAlways {
		if err := l.fsyncWait(lsn); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// rollLocked seals the active segment (sync + close) and opens a fresh one
// whose name records the LSN about to be written. Called with l.mu held.
func (l *Log) rollLocked(first uint64) error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment(first)
}

// syncLocked fsyncs the active segment if it has unsynced bytes. Called
// with l.mu held.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if fail.Enabled {
		_ = fail.Inject(fail.SiteWALFsync)
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.fsyncs.Add(1)
	return nil
}

// fsyncWait implements group commit: it returns once a sync covering lsn
// has completed. Exactly one waiter performs the sync; the rest block on
// the condition variable and are released in a batch.
func (l *Log) fsyncWait(lsn uint64) error {
	l.fmu.Lock()
	for {
		if l.ferr != nil {
			err := l.ferr
			l.fmu.Unlock()
			return err
		}
		if l.flushedLSN >= lsn {
			l.fmu.Unlock()
			return nil
		}
		if !l.flushing {
			l.flushing = true
			l.fmu.Unlock()

			l.mu.Lock()
			target := l.head
			serr := l.err
			if serr == nil {
				serr = l.syncLocked()
			}
			l.mu.Unlock()

			l.fmu.Lock()
			l.flushing = false
			if serr != nil {
				l.ferr = serr
			} else if target > l.flushedLSN {
				l.flushedLSN = target
			}
			l.fcond.Broadcast()
			continue
		}
		l.fcond.Wait()
	}
}

// flushLoop is the FsyncInterval background flusher.
func (l *Log) flushLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.err == nil {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Head returns the last assigned LSN.
func (l *Log) Head() uint64 { return l.headWord.Load() }

// Fsyncs returns the number of fsyncs issued against segment files.
func (l *Log) Fsyncs() uint64 { return l.fsyncs.Load() }

// BytesAppended returns the total framed bytes appended since Open.
func (l *Log) BytesAppended() uint64 { return l.bytesTotal.Load() }

// BytesSinceSnapshot returns the journal bytes accumulated since the last
// snapshot (seeded at Open with the replayed tail size), the signal the
// auto-snapshot trigger watches.
func (l *Log) BytesSinceSnapshot() int64 { return l.sinceSnap.Load() }

// SnapshotCut returns the cut LSN of the newest snapshot written or
// recovered.
func (l *Log) SnapshotCut() uint64 { return l.snapCut.Load() }

// Close seals the journal: stops the flusher, syncs and closes the active
// segment, and makes further Appends fail with ErrClosed. A journal closed
// cleanly after a final snapshot replays zero records on the next Open.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		l.wg.Wait()
		l.stop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.err = ErrClosed
	l.fmu.Lock()
	if l.ferr == nil {
		l.ferr = ErrClosed
	}
	l.fcond.Broadcast()
	l.fmu.Unlock()
	return err
}
