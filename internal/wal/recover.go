package wal

import (
	"os"
	"path/filepath"
	"sort"
)

// Recovered reports what Open found on disk.
type Recovered struct {
	// Snapshot is the newest decodable snapshot, nil if none.
	Snapshot *Snapshot
	// SnapshotCut is Snapshot.CutLSN (0 without a snapshot).
	SnapshotCut uint64
	// Records are the journal records replayed on top of the snapshot, in
	// LSN order, all with LSN > SnapshotCut.
	Records []Record
	// Head is the last valid LSN on disk; Open's fresh segment starts at
	// Head+1.
	Head uint64
	// TornBytes counts bytes truncated off segment tails (a partially
	// written final record from a crash mid-append, or trailing garbage).
	TornBytes int64
	// SegmentsDropped counts whole segment files discarded because they sat
	// behind a torn frame or an LSN gap and were therefore unreachable.
	SegmentsDropped int
	// TailBytes is the byte size of the valid journal tail behind the
	// snapshot — the initial bytes-since-snapshot reading.
	TailBytes int64
}

// recoverDir scans dir and reconstructs the durable state: newest valid
// snapshot, chained segment replay, torn-tail detection. With repair set it
// also truncates torn files and removes unreachable segments so the
// directory is left frame-clean; recovery itself is read-only otherwise
// (used by tests to re-replay the same journal). Corruption is never an
// error — the scan stops at the first invalid frame, exactly like the
// recovery state machine in DESIGN.md §12. Only I/O failures return errors.
func recoverDir(dir string, repair bool) (*Recovered, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return &Recovered{}, nil
		}
		return nil, err
	}

	type seg struct {
		first uint64
		path  string
	}
	var segs []seg
	var snaps []seg // first = cut LSN
	for _, e := range entries {
		name := e.Name()
		if first, ok := parseSeq(name, "wal-", ".seg"); ok {
			segs = append(segs, seg{first, filepath.Join(dir, name)})
		} else if cut, ok := parseSeq(name, "snap-", ".snap"); ok {
			snaps = append(snaps, seg{cut, filepath.Join(dir, name)})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].first > snaps[j].first })

	rec := &Recovered{}
	for _, sn := range snaps {
		if s, err := loadSnapshotFile(sn.path); err == nil {
			rec.Snapshot = s
			rec.SnapshotCut = s.CutLSN
			break
		}
		// An undecodable snapshot (torn write before the rename discipline,
		// bit rot) is skipped; an older one or the raw journal still works.
	}
	cut := rec.SnapshotCut
	rec.Head = cut

	// Find the first live segment: the last one starting at or before
	// cut+1. Everything before it holds only snapshotted records.
	start := 0
	for i := range segs {
		if segs[i].first <= cut+1 {
			start = i
		}
	}

	for i := start; i < len(segs); i++ {
		s := segs[i]
		if s.first > rec.Head+1 {
			// LSN gap: this segment and everything after it are unreachable
			// from the durable prefix.
			rec.SegmentsDropped += len(segs) - i
			if repair {
				for _, d := range segs[i:] {
					_ = os.Remove(d.path)
				}
			}
			break
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return nil, err
		}
		recs, good := DecodeSegment(data, s.first)
		for _, r := range recs {
			if r.LSN > cut {
				rec.Records = append(rec.Records, r)
				rec.TailBytes += int64(frameHeader + payloadLen(&r))
			}
			rec.Head = r.LSN
		}
		if good < len(data) {
			// Torn or corrupt frame: truncate it away and drop the
			// unreachable successors.
			rec.TornBytes += int64(len(data) - good)
			rec.SegmentsDropped += len(segs) - i - 1
			if repair {
				if err := os.Truncate(s.path, int64(good)); err != nil {
					return nil, err
				}
				for _, d := range segs[i+1:] {
					_ = os.Remove(d.path)
				}
			}
			break
		}
	}
	return rec, nil
}

// payloadLen returns the encoded payload size of r without materializing
// the frame (used for tail-size accounting during recovery).
func payloadLen(r *Record) int {
	n := 1 + 8 + 1 + min255(len(r.Tenant)) + 1 + min255(len(r.Session))
	switch r.Type {
	case RecEnqueue, RecDeleteMin:
		n += 4 + 16*len(r.Items) + 8
	case RecCounterAdd:
		n += 24
	case RecResize:
		n += 4
	}
	return n
}

func min255(n int) int {
	if n > 255 {
		return 255
	}
	return n
}

// Rebuild folds a snapshot plus its replayed journal tail into per-tenant
// logical state, sorted by tenant name. It is a pure function of its
// inputs, so replaying the same journal twice yields identical output —
// the determinism guarantee the recovery tests diff.
//
// Replay is two-pass over a multiset of elements. Pass one applies every
// enqueue, counter add, and resize; pass two matches delete-min records
// against the multiset. A delete whose element has no matching enqueue
// (the element was enqueued and dequeued by racing sessions and only the
// dequeue record made it out before the crash — append order is per-record,
// not per-element) is compensated by also crediting the missing enqueue, so
// the recovered ledger still satisfies
//
//	QueueLen == OpsEnqueued - OpsDequeued
//
// exactly, and the element itself is (correctly) absent from the queue.
func Rebuild(snap *Snapshot, records []Record) []TenantState {
	type acc struct {
		st        TenantState
		multiset  map[Item]int64
		unmatched uint64
	}
	accs := make(map[string]*acc)
	get := func(name string) *acc {
		a := accs[name]
		if a == nil {
			a = &acc{st: TenantState{Name: name}, multiset: make(map[Item]int64)}
			accs[name] = a
		}
		return a
	}
	if snap != nil {
		for i := range snap.Tenants {
			t := &snap.Tenants[i]
			a := get(t.Name)
			a.st = *t
			for _, it := range t.Items {
				a.multiset[it]++
			}
			a.st.Items = nil
		}
	}
	for i := range records {
		r := &records[i]
		a := get(r.Tenant)
		switch r.Type {
		case RecEnqueue:
			for _, it := range r.Items {
				a.multiset[it]++
			}
			a.st.OpsEnqueued += uint64(len(r.Items))
			a.st.OpsMetered += r.Metered
		case RecCounterAdd:
			a.st.OpsCounterAdds += r.Count
			a.st.CounterDeltaSum += r.Weight
			a.st.CounterSum += r.Weight
			a.st.OpsMetered += r.Metered
		case RecResize:
			a.st.M = r.M
		}
	}
	for i := range records {
		r := &records[i]
		if r.Type != RecDeleteMin {
			continue
		}
		a := get(r.Tenant)
		for _, it := range r.Items {
			if a.multiset[it] > 0 {
				a.multiset[it]--
			} else {
				a.unmatched++
			}
		}
		a.st.OpsDequeued += uint64(len(r.Items))
		a.st.OpsMetered += r.Metered
	}
	out := make([]TenantState, 0, len(accs))
	for _, a := range accs {
		a.st.OpsEnqueued += a.unmatched
		for it, n := range a.multiset {
			for ; n > 0; n-- {
				a.st.Items = append(a.st.Items, it)
			}
		}
		a.st.SortItems()
		out = append(out, a.st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Replay re-runs recovery on a directory without repairing it and rebuilds
// the tenant states — the read-only "replay the same journal twice" probe
// the determinism tests use.
func Replay(dir string) ([]TenantState, *Recovered, error) {
	rec, err := recoverDir(dir, false)
	if err != nil {
		return nil, nil, err
	}
	return Rebuild(rec.Snapshot, rec.Records), rec, nil
}
