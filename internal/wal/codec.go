package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Frame layout (all integers little-endian):
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//
// The CRC uses the Castagnoli polynomial. payloadLen is capped at
// MaxPayload, so a corrupt length prefix can never drive a huge
// allocation; a frame whose length field exceeds the remaining bytes is a
// torn tail, not an error to propagate. Payload layout:
//
//	u8 type | u64 lsn | u8 len|tenant | u8 len|session | per-type body
//
// Per-type bodies:
//
//	enqueue/deletemin: u32 n | n x (u64 priority, u64 value) | u64 metered
//	counter-add:       u64 count | u64 weight | u64 metered
//	resize:            u32 m
//	session-close:     (empty)
//
// The codec is canonical: decode rejects any leftover bytes, so
// encode(decode(p)) == p for every accepted payload. That property is what
// lets the fuzz target cross-check the decoder against the encoder.

// MaxPayload bounds a single record payload. The largest legitimate record
// is an enqueue/delete batch of MaxWireBatch (4096) items: ~64KiB. 1MiB
// leaves generous slack without letting a corrupt length prefix allocate
// unbounded memory during replay.
const MaxPayload = 1 << 20

// frameHeader is the fixed prefix of every frame: length plus CRC.
const frameHeader = 8

// maxBatchItems caps the decoded item count of one record, matching the
// wire-level batch cap in dlzd (MaxWireBatch = 4096) with slack.
const maxBatchItems = 1 << 16

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Item is one priority-queue element as journaled: the same (priority,
// value) pair the wire protocol carries.
type Item struct {
	Priority uint64
	Value    uint64
}

// RecordType discriminates journal records. Values are part of the on-disk
// format; never renumber.
type RecordType uint8

const (
	// RecEnqueue journals the items an enqueue-batch request applied.
	RecEnqueue RecordType = 1
	// RecDeleteMin journals the items a delete-min-up-to request delivered.
	RecDeleteMin RecordType = 2
	// RecCounterAdd journals the count and weight a counter/add-batch
	// request applied.
	RecCounterAdd RecordType = 3
	// RecResize journals a topology resize (explicit or autoscale) with the
	// new shard count.
	RecResize RecordType = 4
	// RecSessionClose journals a session retirement. Replay ignores it
	// (leases are not recovered) but it keeps the journal a complete
	// operation history for offline checkers.
	RecSessionClose RecordType = 5
)

// Record is one journal entry. LSN is assigned by Log.Append; the remaining
// fields are set by the caller according to Type:
//
//   - RecEnqueue:    Items = applied elements, Metered = quota ops charged
//   - RecDeleteMin:  Items = delivered elements, Metered = quota ops charged
//   - RecCounterAdd: Count = deltas applied, Weight = their sum, Metered as above
//   - RecResize:     M = new shard count
//   - RecSessionClose: identification fields only
type Record struct {
	LSN     uint64
	Type    RecordType
	Tenant  string
	Session string
	Items   []Item
	Count   uint64
	Weight  uint64
	M       int
	Metered uint64
}

// appendFrame appends the framed encoding of r to dst and returns the
// extended slice.
func appendFrame(dst []byte, r *Record) []byte {
	head := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc placeholders
	dst = appendPayload(dst, r)
	payload := dst[head+frameHeader:]
	binary.LittleEndian.PutUint32(dst[head:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[head+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

func appendPayload(dst []byte, r *Record) []byte {
	dst = append(dst, byte(r.Type))
	dst = binary.LittleEndian.AppendUint64(dst, r.LSN)
	dst = appendShortString(dst, r.Tenant)
	dst = appendShortString(dst, r.Session)
	switch r.Type {
	case RecEnqueue, RecDeleteMin:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Items)))
		for _, it := range r.Items {
			dst = binary.LittleEndian.AppendUint64(dst, it.Priority)
			dst = binary.LittleEndian.AppendUint64(dst, it.Value)
		}
		dst = binary.LittleEndian.AppendUint64(dst, r.Metered)
	case RecCounterAdd:
		dst = binary.LittleEndian.AppendUint64(dst, r.Count)
		dst = binary.LittleEndian.AppendUint64(dst, r.Weight)
		dst = binary.LittleEndian.AppendUint64(dst, r.Metered)
	case RecResize:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r.M))
	case RecSessionClose:
	}
	return dst
}

// appendShortString appends a u8 length prefix plus up to 255 bytes of s.
// Tenant names are validated to 64 bytes upstream; session tokens are
// client-chosen and journaled for history only, so truncation is safe.
func appendShortString(dst []byte, s string) []byte {
	if len(s) > 255 {
		s = s[:255]
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

// decodePayload parses one record payload. It is strict: unknown types,
// short bodies, oversized batches, and leftover trailing bytes are all
// errors, making the accepted encoding canonical.
func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 1+8 {
		return r, fmt.Errorf("wal: payload too short (%d bytes)", len(p))
	}
	r.Type = RecordType(p[0])
	r.LSN = binary.LittleEndian.Uint64(p[1:])
	p = p[9:]
	var err error
	if r.Tenant, p, err = cutShortString(p); err != nil {
		return r, fmt.Errorf("wal: tenant: %w", err)
	}
	if r.Session, p, err = cutShortString(p); err != nil {
		return r, fmt.Errorf("wal: session: %w", err)
	}
	switch r.Type {
	case RecEnqueue, RecDeleteMin:
		if len(p) < 4 {
			return r, fmt.Errorf("wal: truncated item count")
		}
		n := binary.LittleEndian.Uint32(p)
		p = p[4:]
		if n > maxBatchItems {
			return r, fmt.Errorf("wal: item count %d exceeds cap", n)
		}
		if uint64(len(p)) != uint64(n)*16+8 {
			return r, fmt.Errorf("wal: item body length %d != %d items", len(p), n)
		}
		if n > 0 {
			r.Items = make([]Item, n)
			for i := range r.Items {
				r.Items[i].Priority = binary.LittleEndian.Uint64(p)
				r.Items[i].Value = binary.LittleEndian.Uint64(p[8:])
				p = p[16:]
			}
		}
		r.Metered = binary.LittleEndian.Uint64(p)
		p = p[8:]
	case RecCounterAdd:
		if len(p) != 24 {
			return r, fmt.Errorf("wal: counter body length %d", len(p))
		}
		r.Count = binary.LittleEndian.Uint64(p)
		r.Weight = binary.LittleEndian.Uint64(p[8:])
		r.Metered = binary.LittleEndian.Uint64(p[16:])
		p = p[24:]
	case RecResize:
		if len(p) != 4 {
			return r, fmt.Errorf("wal: resize body length %d", len(p))
		}
		r.M = int(binary.LittleEndian.Uint32(p))
		p = p[4:]
	case RecSessionClose:
	default:
		return r, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	if len(p) != 0 {
		return r, fmt.Errorf("wal: %d trailing payload bytes", len(p))
	}
	return r, nil
}

func cutShortString(p []byte) (string, []byte, error) {
	if len(p) < 1 {
		return "", nil, fmt.Errorf("missing length byte")
	}
	n := int(p[0])
	if len(p) < 1+n {
		return "", nil, fmt.Errorf("length %d exceeds %d remaining bytes", n, len(p)-1)
	}
	return string(p[1 : 1+n]), p[1+n:], nil
}

// DecodeSegment scans one segment image and returns every valid record up
// to the first invalid or torn frame. goodLen is the byte offset of that
// frame (== len(data) when the whole segment is valid); recovery truncates
// the file there. wantFirst, when nonzero, pins the required LSN of the
// first record (segments are named by it); every subsequent record must
// extend the sequence by exactly one — a skip, repeat, or regression is
// treated as corruption at that frame. The scanner never panics on
// arbitrary input.
func DecodeSegment(data []byte, wantFirst uint64) (recs []Record, goodLen int) {
	next := wantFirst
	pinned := wantFirst != 0
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, off // torn header
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen > MaxPayload || len(data)-off-frameHeader < plen {
			return recs, off // absurd or torn length
		}
		payload := data[off+frameHeader : off+frameHeader+plen]
		if crc32.Checksum(payload, castagnoli) != crc {
			return recs, off
		}
		r, err := decodePayload(payload)
		if err != nil {
			return recs, off
		}
		if pinned && r.LSN != next {
			return recs, off // LSN discontinuity: duplicated or spliced frames
		}
		pinned = true
		next = r.LSN + 1
		recs = append(recs, r)
		off += frameHeader + plen
	}
	return recs, off
}
