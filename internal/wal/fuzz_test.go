package wal

import (
	"bytes"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the segment decoder: torn tails,
// bit-flipped CRCs, truncated length prefixes, spliced duplicate suffixes.
// The decoder must never panic, must stop at the first invalid frame, and —
// because the codec is canonical — re-encoding what it accepted must
// reproduce exactly the bytes it consumed.
func FuzzWALReplay(f *testing.F) {
	// Seed with valid segment images and targeted corruptions of them.
	var seedFrames []byte
	for i, r := range sampleFuzzRecords() {
		r.LSN = uint64(i + 1)
		seedFrames = appendFrame(seedFrames, &r)
	}
	f.Add(seedFrames)
	f.Add([]byte{})
	f.Add(seedFrames[:len(seedFrames)-5]) // torn tail
	flip := append([]byte(nil), seedFrames...)
	flip[len(flip)/3] ^= 0x10 // bit flip mid-record
	f.Add(flip)
	f.Add(seedFrames[:3])                                            // truncated length prefix
	f.Add(append(append([]byte(nil), seedFrames...), seedFrames...)) // duplicate suffix: LSNs restart
	huge := append([]byte(nil), seedFrames...)
	huge[0] = 0xff // absurd length field
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good := DecodeSegment(data, 0)
		if good < 0 || good > len(data) {
			t.Fatalf("goodLen %d out of range [0,%d]", good, len(data))
		}
		// Canonical re-encode: the accepted prefix must round-trip
		// byte-for-byte.
		var re []byte
		for i := range recs {
			re = appendFrame(re, &recs[i])
		}
		if !bytes.Equal(re, data[:good]) {
			t.Fatalf("re-encode mismatch: %d records, goodLen %d", len(recs), good)
		}
		// LSNs must be contiguous after the first.
		for i := 1; i < len(recs); i++ {
			if recs[i].LSN != recs[i-1].LSN+1 {
				t.Fatalf("non-contiguous LSNs %d -> %d", recs[i-1].LSN, recs[i].LSN)
			}
		}
	})
}

// FuzzSnapshotDecode makes sure an arbitrary snapshot payload can never
// panic the decoder, and that accepted payloads are canonical.
func FuzzSnapshotDecode(f *testing.F) {
	valid := encodeSnapshot(&Snapshot{
		CutLSN: 42,
		Tenants: []TenantState{
			{Name: "a", M: 4, Items: []Item{{1, 1}, {2, 2}}, CounterSum: 3,
				OpsEnqueued: 2, OpsDequeued: 0, OpsCounterAdds: 1,
				CounterDeltaSum: 3, OpsMetered: 3},
			{Name: "b"},
		},
	})
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)-3])
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x01
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeSnapshot(s), data) {
			t.Fatalf("accepted snapshot payload not canonical")
		}
	})
}

func sampleFuzzRecords() []Record {
	return []Record{
		{Type: RecEnqueue, Tenant: "acme", Session: "s1",
			Items: []Item{{5, 50}, {3, 30}}, Metered: 2},
		{Type: RecCounterAdd, Tenant: "acme", Session: "s1", Count: 3, Weight: 12, Metered: 3},
		{Type: RecDeleteMin, Tenant: "acme", Session: "s2", Items: []Item{{3, 30}}, Metered: 1},
		{Type: RecResize, Tenant: "acme", M: 8},
		{Type: RecSessionClose, Tenant: "acme", Session: "s1"},
	}
}
