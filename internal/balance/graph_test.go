package balance

import (
	"testing"

	"repro/internal/rng"
)

func TestGraphConstructors(t *testing.T) {
	c := CycleGraph(8)
	if c.M() != 8 || c.NumEdges() != 8 {
		t.Fatalf("cycle: m=%d edges=%d", c.M(), c.NumEdges())
	}
	k := CompleteGraph(4)
	// C(4,2) + 4 self-loops = 10.
	if k.NumEdges() != 10 {
		t.Fatalf("complete: edges=%d", k.NumEdges())
	}
	h := HypercubeGraph(3)
	if h.M() != 8 || h.NumEdges() != 12 { // 8 vertices * 3 / 2
		t.Fatalf("hypercube: m=%d edges=%d", h.M(), h.NumEdges())
	}
	rr := RandomRegularish(16, 4, 1)
	if rr.NumEdges() != 16*4/2 {
		t.Fatalf("regular: edges=%d", rr.NumEdges())
	}
	// Degree check for the configuration model.
	deg := make([]int, 16)
	for _, e := range rr.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for v, d := range deg {
		if d != 4 {
			t.Fatalf("vertex %d degree %d, want 4", v, d)
		}
	}
}

func TestGraphPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"NewGraph m=0":        func() { NewGraph(0, [][2]int{{0, 0}}) },
		"NewGraph no edges":   func() { NewGraph(2, nil) },
		"NewGraph bad edge":   func() { NewGraph(2, [][2]int{{0, 5}}) },
		"CycleGraph small":    func() { CycleGraph(2) },
		"CompleteGraph small": func() { CompleteGraph(1) },
		"Hypercube dim0":      func() { HypercubeGraph(0) },
		"Regular odd":         func() { RandomRegularish(3, 3, 1) },
		"GraphChoice size":    func() { GraphChoice{G: CycleGraph(4)}.Pick(NewState(8), rng.NewXoshiro256(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestCompleteGraphMatchesTwoChoiceScale: allocation on K_m + self-loops is
// the two-choice process; gaps should be on the same small scale.
func TestCompleteGraphMatchesTwoChoiceScale(t *testing.T) {
	m := 32
	gc := Run(RunConfig{M: m, Steps: 100_000, Seed: 31, Process: GraphChoice{G: CompleteGraph(m)}})
	tc := Run(RunConfig{M: m, Steps: 100_000, Seed: 31, Process: DChoice{D: 2}})
	if gc.Final.Gap() > tc.Final.Gap()+3 {
		t.Fatalf("complete-graph gap %v far above two-choice %v", gc.Final.Gap(), tc.Final.Gap())
	}
}

// TestGraphSparsityOrdersGaps reproduces the Peres–Talwar–Wieder hierarchy:
// the cycle balances worse than the hypercube, which balances worse than (or
// close to) the complete graph; all stay bounded.
func TestGraphSparsityOrdersGaps(t *testing.T) {
	const dim = 6 // m = 64
	m := 1 << dim
	steps := int64(200_000)
	cyc := Run(RunConfig{M: m, Steps: steps, Seed: 32, Process: GraphChoice{G: CycleGraph(m)}})
	hyp := Run(RunConfig{M: m, Steps: steps, Seed: 32, Process: GraphChoice{G: HypercubeGraph(dim)}})
	com := Run(RunConfig{M: m, Steps: steps, Seed: 32, Process: GraphChoice{G: CompleteGraph(m)}})
	if !(cyc.Final.Gap() > hyp.Final.Gap()) {
		t.Fatalf("cycle gap %v not above hypercube gap %v", cyc.Final.Gap(), hyp.Final.Gap())
	}
	if hyp.Final.Gap() > 3*com.Final.Gap()+6 {
		t.Fatalf("hypercube gap %v too far above complete %v", hyp.Final.Gap(), com.Final.Gap())
	}
	// Even the cycle stays polylogarithmic-small at this scale.
	if cyc.Final.Gap() > 12*log2(m) {
		t.Fatalf("cycle gap %v suspiciously large", cyc.Final.Gap())
	}
}

func TestRandomRegularBounded(t *testing.T) {
	m := 64
	for _, d := range []int{2, 4, 8} {
		g := RandomRegularish(m, d, 33)
		res := Run(RunConfig{M: m, Steps: 100_000, Seed: 34, Process: GraphChoice{G: g}})
		if res.Final.Gap() > 16*log2(m) {
			t.Fatalf("d=%d regular gap %v too large", d, res.Final.Gap())
		}
	}
}

func TestGraphChoiceName(t *testing.T) {
	p := GraphChoice{G: CycleGraph(4)}
	if p.Name() != "graphical[m=4,edges=4]" {
		t.Fatalf("Name = %q", p.Name())
	}
}
