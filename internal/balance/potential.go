package balance

import (
	"math"
	"sort"
)

// This file computes E[Γ(t+1) | y(t)] *exactly* for one step of an
// allocation process given by a sorted-bin probability vector, which lets
// the tests check the paper's potential-step inequalities (Lemmas 6.4 and
// 6.5, and Theorem 3.1 of Peres–Talwar–Wieder that Lemma 6.4 leans on) as
// numeric facts on concrete states instead of trusting the algebra.
//
// Adding a unit ball to bin i shifts the mean by 1/m, so every y_j moves by
// −1/m and y_i additionally by +1:
//
//	Φ' = e^{−α/m}·(Φ + Φ_i(e^{α} − 1))
//	Ψ' = e^{+α/m}·(Ψ + Ψ_i(e^{−α} − 1))
//
// and the expectation is the probs-weighted sum over the sorted bins.

// WorstCaseProbs returns the probability vector of the fully adversarial
// "bad" step from Lemma 6.5: the ball goes to the *more* loaded of two
// uniform choices, so the i-th least loaded bin receives with probability
// (2i−1)/m².
func WorstCaseProbs(m int) []float64 {
	p := make([]float64, m)
	mm := float64(m) * float64(m)
	for i := 1; i <= m; i++ {
		p[i-1] = (2*float64(i) - 1) / mm
	}
	return p
}

// TwoChoiceProbs returns the probability vector of the exact two-choice
// process: the i-th least loaded bin receives with probability (2(m−i)+1)/m².
func TwoChoiceProbs(m int) []float64 {
	p := make([]float64, m)
	mm := float64(m) * float64(m)
	for i := 1; i <= m; i++ {
		p[i-1] = (2*float64(m-i) + 1) / mm
	}
	return p
}

// ExpectedGammaAfterStep returns E[Γ(t+1) | y(t)] exactly for a unit-weight
// step under the given sorted-bin probability vector: probs[k] is the
// probability that the (k+1)-th least loaded bin receives the ball.
// len(probs) must equal s.M().
func ExpectedGammaAfterStep(s *State, probs []float64, alpha float64) float64 {
	m := s.M()
	if len(probs) != m {
		panic("balance: ExpectedGammaAfterStep probs length mismatch")
	}
	// Rank bins by weight (ascending), tie-broken by index: the sorted-bin
	// probability vectors of the paper are defined on this order.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	w := s.Weights()
	sort.SliceStable(order, func(a, b int) bool { return w[order[a]] < w[order[b]] })

	mu := s.Mean()
	phis := make([]float64, m)
	psis := make([]float64, m)
	var phi, psi float64
	for i := 0; i < m; i++ {
		y := w[i] - mu
		phis[i] = math.Exp(alpha * y)
		psis[i] = math.Exp(-alpha * y)
		phi += phis[i]
		psi += psis[i]
	}
	eA := math.Exp(alpha)
	eAm := math.Exp(alpha / float64(m))
	var exp float64
	for k, p := range probs {
		i := order[k]
		phiNew := (phi + phis[i]*(eA-1)) / eAm
		psiNew := (psi + psis[i]*(1/eA-1)) * eAm
		exp += p * (phiNew + psiNew)
	}
	return exp
}

// Majorization transfer (Theorem 3.1 of Peres–Talwar–Wieder, used verbatim
// in Lemma 6.4's proof): if p majorizes q on the sorted bins, then the
// expected potential after a p-step is at most the expected potential after
// a q-step, for every state. The tests verify this numerically by calling
// ExpectedGammaAfterStep with both vectors; no code is needed here beyond
// the exact evaluator, but the helper below packages the comparison.

// StepDominates reports whether a step under probs p yields expected
// potential no larger than a step under probs q on state s (up to eps).
func StepDominates(s *State, p, q []float64, alpha, eps float64) bool {
	return ExpectedGammaAfterStep(s, p, alpha) <= ExpectedGammaAfterStep(s, q, alpha)+eps
}
