// Package balance implements the load-balancing processes that the paper's
// analysis lives in: the classic greedy d-choice process, the (1+β)-choice
// relaxation of Peres–Talwar–Wieder, corrupted and stale variants modeling
// adversarial concurrency, and the sequential MultiQueue rank process of
// Alistarh et al. [3]. It also computes the paper's potential functions
// Φ, Ψ, Γ (Section 6.2), which the tests and the balance-sim tool use to
// check E[Γ(t)] = O(m) empirically.
//
// These processes are the sequential randomized relaxations R that the
// concurrent data structures in internal/core are distributionally
// linearizable *to*; internal/dlin performs the mapping.
package balance

import "math"

// State is a vector of m bin weights. Weights are float64 so the same engine
// serves unit balls (MultiCounter) and Exponential(1) weighted balls
// (Theorem 7.1).
type State struct {
	w     []float64
	total float64
}

// NewState returns m empty bins.
func NewState(m int) *State {
	if m <= 0 {
		panic("balance: NewState needs m > 0")
	}
	return &State{w: make([]float64, m)}
}

// M returns the number of bins.
func (s *State) M() int { return len(s.w) }

// Weight returns the weight of bin i.
func (s *State) Weight(i int) float64 { return s.w[i] }

// Weights exposes the raw weight slice (read-only by convention) for
// snapshotting.
func (s *State) Weights() []float64 { return s.w }

// Add places weight w into bin i.
func (s *State) Add(i int, w float64) {
	s.w[i] += w
	s.total += w
}

// Total returns the total inserted weight.
func (s *State) Total() float64 { return s.total }

// Mean returns the average bin weight µ(t).
func (s *State) Mean() float64 { return s.total / float64(len(s.w)) }

// MinMax returns the smallest and largest bin weights.
func (s *State) MinMax() (min, max float64) {
	min, max = s.w[0], s.w[0]
	for _, v := range s.w[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Gap returns max - min, the quantity Lemma 6.8 bounds by O(log m).
func (s *State) Gap() float64 {
	min, max := s.MinMax()
	return max - min
}

// Potential returns Φ(t) = Σ exp(α·y_i), Ψ(t) = Σ exp(−α·y_i) and
// Γ(t) = Φ(t) + Ψ(t), where y_i = x_i − µ(t) (Section 6.2).
func (s *State) Potential(alpha float64) (phi, psi, gamma float64) {
	mu := s.Mean()
	for _, v := range s.w {
		y := v - mu
		phi += math.Exp(alpha * y)
		psi += math.Exp(-alpha * y)
	}
	return phi, psi, phi + psi
}

// LessLoaded returns the index of the lighter of bins i and j (ties go to i,
// matching the paper's "tie broken arbitrarily").
func (s *State) LessLoaded(i, j int) int {
	if s.w[j] < s.w[i] {
		return j
	}
	return i
}

// MoreLoaded returns the index of the heavier of bins i and j.
func (s *State) MoreLoaded(i, j int) int {
	if s.w[j] > s.w[i] {
		return j
	}
	return i
}
