package balance

import (
	"fmt"

	"repro/internal/rng"
)

// Graph is an undirected multigraph on the bins, used by the graphical
// allocation process of Peres, Talwar and Wieder ("Graphical balanced
// allocations and the (1+β)-choice process") — the framework Section 6's
// analysis extends. In graphical allocation a uniformly random *edge* is
// drawn and the ball goes to its lighter endpoint; the classic two-choice
// process is the complete graph (plus self-loops), and sparser graphs give
// weaker but still logarithmic balance, degrading as the graph's expansion
// shrinks.
type Graph struct {
	m     int
	edges [][2]int
}

// NewGraph returns a graph over m bins with the given edges. Edges may
// repeat (multigraph) and self-loops are allowed (a self-loop degenerates to
// a single-choice step for that draw).
func NewGraph(m int, edges [][2]int) *Graph {
	if m <= 0 {
		panic("balance: NewGraph needs m > 0")
	}
	if len(edges) == 0 {
		panic("balance: NewGraph needs at least one edge")
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= m || e[1] < 0 || e[1] >= m {
			panic("balance: NewGraph edge endpoint out of range")
		}
	}
	return &Graph{m: m, edges: edges}
}

// M returns the number of vertices (bins).
func (g *Graph) M() int { return g.m }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// CycleGraph returns the m-cycle: the sparsest connected 2-regular graph,
// the hardest of the standard graphical-allocation instances.
func CycleGraph(m int) *Graph {
	if m < 3 {
		panic("balance: CycleGraph needs m >= 3")
	}
	edges := make([][2]int, m)
	for i := 0; i < m; i++ {
		edges[i] = [2]int{i, (i + 1) % m}
	}
	return NewGraph(m, edges)
}

// CompleteGraph returns K_m plus one self-loop per vertex, which makes edge
// sampling exactly equivalent to drawing two independent uniform bins — the
// classic two-choice process.
func CompleteGraph(m int) *Graph {
	if m < 2 {
		panic("balance: CompleteGraph needs m >= 2")
	}
	var edges [][2]int
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ { // j == i adds the self-loop
			edges = append(edges, [2]int{i, j})
		}
	}
	return NewGraph(m, edges)
}

// HypercubeGraph returns the k-dimensional hypercube on m = 2^k vertices — a
// standard expander-like instance between the cycle and the complete graph.
func HypercubeGraph(dim int) *Graph {
	if dim < 1 || dim > 20 {
		panic("balance: HypercubeGraph needs 1 <= dim <= 20")
	}
	m := 1 << uint(dim)
	var edges [][2]int
	for v := 0; v < m; v++ {
		for b := 0; b < dim; b++ {
			u := v ^ (1 << uint(b))
			if v < u {
				edges = append(edges, [2]int{v, u})
			}
		}
	}
	return NewGraph(m, edges)
}

// RandomRegularish returns a random multigraph where every vertex has degree
// d, built with the configuration model (random perfect matching on d
// half-edges per vertex). Self-loops and parallel edges are kept — standard
// for the configuration model, and harmless for allocation.
func RandomRegularish(m, d int, seed uint64) *Graph {
	if m < 2 || d < 1 {
		panic("balance: RandomRegularish needs m >= 2, d >= 1")
	}
	if m*d%2 != 0 {
		panic("balance: RandomRegularish needs m*d even")
	}
	r := rng.NewXoshiro256(seed)
	stubs := make([]int, 0, m*d)
	for v := 0; v < m; v++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, v)
		}
	}
	// Fisher–Yates, then pair consecutive stubs.
	for i := len(stubs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	edges := make([][2]int, 0, len(stubs)/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		edges = append(edges, [2]int{stubs[i], stubs[i+1]})
	}
	return NewGraph(m, edges)
}

// GraphChoice is the graphical allocation process: draw a uniform edge,
// insert into its lighter endpoint.
type GraphChoice struct {
	G *Graph
}

// Pick implements Process.
func (p GraphChoice) Pick(s *State, r *rng.Xoshiro256) int {
	if p.G.m != s.M() {
		panic("balance: GraphChoice graph size mismatch")
	}
	e := p.G.edges[r.Intn(len(p.G.edges))]
	return s.LessLoaded(e[0], e[1])
}

// Name implements Process.
func (p GraphChoice) Name() string {
	return fmt.Sprintf("graphical[m=%d,edges=%d]", p.G.m, len(p.G.edges))
}
