package balance

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// randomReachableState evolves a two-choice process for a random number of
// steps so potential tests run on realistic (reachable) weight vectors.
func randomReachableState(m int, steps int64, seed uint64) *State {
	res := Run(RunConfig{M: m, Steps: steps, Seed: seed, Process: DChoice{D: 2}})
	return res.Final
}

func TestProbVectorsWellFormed(t *testing.T) {
	for _, m := range []int{2, 7, 64} {
		for name, v := range map[string][]float64{
			"worst": WorstCaseProbs(m), "two-choice": TwoChoiceProbs(m),
		} {
			var sum float64
			for _, p := range v {
				if p < 0 {
					t.Fatalf("%s m=%d: negative prob", name, m)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s m=%d: sum %v", name, m, sum)
			}
		}
	}
}

func TestTwoChoiceProbsMatchOneBetaAtBetaOne(t *testing.T) {
	m := 16
	tc := TwoChoiceProbs(m)
	ob := OneBetaProbs(m, 1)
	for i := range tc {
		if math.Abs(tc[i]-ob[i]) > 1e-12 {
			t.Fatalf("index %d: %v vs %v", i, tc[i], ob[i])
		}
	}
}

// TestExpectedGammaExactAgainstBruteForce cross-checks the closed-form step
// evaluator against direct recomputation of Γ for every possible
// destination bin.
func TestExpectedGammaExactAgainstBruteForce(t *testing.T) {
	m, alpha := 8, 0.3
	s := randomReachableState(m, 1000, 41)
	probs := TwoChoiceProbs(m)

	// Brute force: for each sorted bin k, add the ball, recompute Γ fully.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	// replicate the evaluator's ordering (stable ascending by weight)
	for i := 1; i < m; i++ {
		for j := i; j > 0 && s.Weight(order[j]) < s.Weight(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var brute float64
	for k, p := range probs {
		i := order[k]
		cp := NewState(m)
		for b := 0; b < m; b++ {
			cp.Add(b, s.Weight(b))
		}
		cp.Add(i, 1)
		_, _, gamma := cp.Potential(alpha)
		brute += p * gamma
	}
	got := ExpectedGammaAfterStep(s, probs, alpha)
	if math.Abs(got-brute) > 1e-9*brute {
		t.Fatalf("closed form %v vs brute force %v", got, brute)
	}
}

// TestTheorem31Majorization is the numeric form of PTW Theorem 3.1 as used
// by Lemma 6.4: on every reachable state, the good(γ)-step vector (which
// majorizes the (1+2γ)-vector) yields expected potential no larger.
func TestTheorem31Majorization(t *testing.T) {
	m, alpha := 32, 0.25
	for seed := uint64(0); seed < 20; seed++ {
		s := randomReachableState(m, int64(500+seed*700), 100+seed)
		for _, gamma := range []float64{0.05, 0.15, 0.35} {
			p := GoodStepProbs(m, 0.5+gamma)
			q := OneBetaProbs(m, 2*gamma)
			if !StepDominates(s, p, q, alpha, 1e-9) {
				t.Fatalf("seed %d γ=%v: good step exceeded (1+β) step", seed, gamma)
			}
		}
	}
}

// TestTwoChoiceBeatsWorstCase: the exact two-choice vector always yields
// expected potential no larger than the adversarial worst-case vector.
func TestTwoChoiceBeatsWorstCase(t *testing.T) {
	m, alpha := 32, 0.25
	for seed := uint64(0); seed < 20; seed++ {
		s := randomReachableState(m, int64(1000+seed*300), 200+seed)
		if !StepDominates(s, TwoChoiceProbs(m), WorstCaseProbs(m), alpha, 1e-9) {
			t.Fatalf("seed %d: two-choice exceeded worst-case", seed)
		}
	}
}

// TestLemma65Bound verifies the Lemma 6.5 inequality numerically: for a bad
// step (worst-case vector), E[Γ(t+1)|y(t)] ≤ (1 + (2/m)(α + S·α²))·Γ(t),
// with S = 1 valid for α ≤ 1/2 (the paper's constant-setting).
func TestLemma65Bound(t *testing.T) {
	m, alpha := 32, 0.25
	probs := WorstCaseProbs(m)
	for seed := uint64(0); seed < 30; seed++ {
		s := randomReachableState(m, int64(200+seed*500), 300+seed)
		_, _, gamma := s.Potential(alpha)
		bound := (1 + 2/float64(m)*(alpha+alpha*alpha)) * gamma
		if got := ExpectedGammaAfterStep(s, probs, alpha); got > bound*(1+1e-9) {
			t.Fatalf("seed %d: E[Γ'] = %v exceeds Lemma 6.5 bound %v (Γ=%v)",
				seed, got, bound, gamma)
		}
	}
}

// TestGoodStepDecreasesLargeGamma mirrors Lemma 6.4's drift direction: on a
// state with large imbalance (hence large Γ), an exact two-choice step
// strictly decreases the expected potential.
func TestGoodStepDecreasesLargeGamma(t *testing.T) {
	m, alpha := 16, 0.25
	// Build a deliberately skewed state: one bin far above the rest.
	s := NewState(m)
	for i := 0; i < m; i++ {
		s.Add(i, float64(i%4))
	}
	s.Add(0, 40)
	_, _, gamma := s.Potential(alpha)
	if got := ExpectedGammaAfterStep(s, TwoChoiceProbs(m), alpha); got >= gamma {
		t.Fatalf("two-choice step did not decrease Γ on skewed state: %v >= %v", got, gamma)
	}
}

// TestWorstCaseIncreasesBounded: even on skewed states the bad step's
// relative increase stays within the Lemma 6.5 multiplicative envelope.
func TestWorstCaseIncreasesBounded(t *testing.T) {
	m, alpha := 16, 0.25
	s := NewState(m)
	s.Add(3, 20)
	_, _, gamma := s.Potential(alpha)
	got := ExpectedGammaAfterStep(s, WorstCaseProbs(m), alpha)
	bound := (1 + 2/float64(m)*(alpha+alpha*alpha)) * gamma
	if got > bound {
		t.Fatalf("bad step increase %v above envelope %v", got, bound)
	}
}

func TestExpectedGammaPanics(t *testing.T) {
	s := NewState(4)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	ExpectedGammaAfterStep(s, make([]float64, 3), 0.2)
}

// TestStepEvaluatorUsedByProcesses: simulate many two-choice steps and check
// the empirical average next-Γ approaches the exact expectation (Monte Carlo
// agreement, tying the evaluator to the actual process dynamics).
func TestStepEvaluatorMonteCarloAgreement(t *testing.T) {
	m, alpha := 8, 0.3
	s := randomReachableState(m, 2000, 55)
	exact := ExpectedGammaAfterStep(s, TwoChoiceProbs(m), alpha)
	r := rng.NewXoshiro256(56)
	const trials = 200_000
	var sum float64
	for tr := 0; tr < trials; tr++ {
		i, j := r.Intn(m), r.Intn(m)
		dest := s.LessLoaded(i, j)
		// Recompute Γ with the ball placed, without mutating s.
		cp := NewState(m)
		for b := 0; b < m; b++ {
			cp.Add(b, s.Weight(b))
		}
		cp.Add(dest, 1)
		_, _, g := cp.Potential(alpha)
		sum += g
	}
	mc := sum / trials
	if math.Abs(mc-exact) > 0.01*exact {
		t.Fatalf("Monte Carlo %v vs exact %v", mc, exact)
	}
}
