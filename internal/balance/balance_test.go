package balance

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func log2(m int) float64 { return math.Log2(float64(m)) }

func TestStateBasics(t *testing.T) {
	s := NewState(4)
	if s.M() != 4 {
		t.Fatalf("M = %d", s.M())
	}
	s.Add(0, 2)
	s.Add(1, 6)
	if s.Total() != 8 || s.Mean() != 2 {
		t.Fatalf("Total/Mean = %v/%v", s.Total(), s.Mean())
	}
	min, max := s.MinMax()
	if min != 0 || max != 6 {
		t.Fatalf("MinMax = %v/%v", min, max)
	}
	if s.Gap() != 6 {
		t.Fatalf("Gap = %v", s.Gap())
	}
}

func TestStatePotentialByHand(t *testing.T) {
	// Weights [0, 2], mean 1, y = [-1, +1]. With α = 1:
	// Φ = e^{-1} + e^{1}, Ψ = e^{1} + e^{-1}, Γ = 2(e + 1/e).
	s := NewState(2)
	s.Add(1, 2)
	phi, psi, gamma := s.Potential(1)
	want := math.E + 1/math.E
	if math.Abs(phi-want) > 1e-12 || math.Abs(psi-want) > 1e-12 {
		t.Fatalf("Φ=%v Ψ=%v, want both %v", phi, psi, want)
	}
	if math.Abs(gamma-2*want) > 1e-12 {
		t.Fatalf("Γ=%v", gamma)
	}
}

func TestLessMoreLoaded(t *testing.T) {
	s := NewState(3)
	s.Add(1, 5)
	if s.LessLoaded(0, 1) != 0 || s.LessLoaded(1, 0) != 0 {
		t.Fatal("LessLoaded wrong")
	}
	if s.MoreLoaded(0, 1) != 1 || s.MoreLoaded(1, 0) != 1 {
		t.Fatal("MoreLoaded wrong")
	}
	// Tie goes to the first argument for LessLoaded.
	if s.LessLoaded(0, 2) != 0 {
		t.Fatal("tie breaking wrong")
	}
}

func TestProbVectorsSumToOne(t *testing.T) {
	f := func(mRaw uint8, rhoRaw, betaRaw uint16) bool {
		m := int(mRaw%200) + 2
		rho := 0.5 + 0.5*float64(rhoRaw)/65535 // [0.5, 1]
		beta := float64(betaRaw) / 65535       // [0, 1]
		sum := func(xs []float64) float64 {
			var s float64
			for _, x := range xs {
				s += x
			}
			return s
		}
		return math.Abs(sum(GoodStepProbs(m, rho))-1) < 1e-9 &&
			math.Abs(sum(OneBetaProbs(m, beta))-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLemma64Majorization numerically verifies the core claim of Lemma 6.4:
// the probability vector of a good(γ) step majorizes the (1+β)-choice
// vector with β = 2γ.
func TestLemma64Majorization(t *testing.T) {
	for _, m := range []int{4, 16, 64, 256, 1024} {
		for _, gamma := range []float64{0.01, 0.05, 0.1, 0.2, 0.5} {
			rho := 0.5 + gamma
			p := GoodStepProbs(m, rho)
			q := OneBetaProbs(m, 2*gamma)
			if !Majorizes(p, q) {
				t.Fatalf("good(%v) step does not majorize (1+%v)-choice at m=%d", gamma, 2*gamma, m)
			}
		}
	}
}

// TestLemma64MajorizationTight confirms the relation is tight: β beyond 2γ
// breaks majorization, so the lemma's β = 2γ is the best constant of this
// form.
func TestLemma64MajorizationTight(t *testing.T) {
	m, gamma := 64, 0.1
	p := GoodStepProbs(m, 0.5+gamma)
	q := OneBetaProbs(m, 3*gamma)
	if Majorizes(p, q) {
		t.Fatal("majorization unexpectedly holds for beta = 3*gamma")
	}
}

func TestTwoChoiceGapLogarithmic(t *testing.T) {
	// Heavily loaded two-choice: gap stays O(log m) — in fact O(log log m),
	// so 2·log2(m) is a generous deterministic-looking envelope for a fixed
	// seed.
	for _, m := range []int{16, 64, 256} {
		res := Run(RunConfig{M: m, Steps: 200_000, Seed: 11, Process: DChoice{D: 2}, SampleEvery: 10_000})
		if g := res.MaxGap(); g > 2*log2(m)+4 {
			t.Fatalf("two-choice gap %v exceeds O(log m) envelope at m=%d", g, m)
		}
	}
}

func TestSingleChoiceDiverges(t *testing.T) {
	// d=1 has gap Θ(sqrt(t·log m / m)); at t=200k, m=64 that is far above
	// the two-choice gap. The ratio is the ablation A1 headline.
	m := 64
	one := Run(RunConfig{M: m, Steps: 200_000, Seed: 12, Process: DChoice{D: 1}, SampleEvery: 0})
	two := Run(RunConfig{M: m, Steps: 200_000, Seed: 12, Process: DChoice{D: 2}, SampleEvery: 0})
	if one.Final.Gap() < 4*two.Final.Gap() {
		t.Fatalf("single-choice gap %v not clearly above two-choice gap %v",
			one.Final.Gap(), two.Final.Gap())
	}
}

func TestThreeChoiceNoWorseThanTwo(t *testing.T) {
	m := 64
	two := Run(RunConfig{M: m, Steps: 200_000, Seed: 13, Process: DChoice{D: 2}})
	three := Run(RunConfig{M: m, Steps: 200_000, Seed: 13, Process: DChoice{D: 3}})
	if three.Final.Gap() > two.Final.Gap()+2 {
		t.Fatalf("three-choice gap %v worse than two-choice %v", three.Final.Gap(), two.Final.Gap())
	}
}

func TestOneBetaGapBounded(t *testing.T) {
	// (1+β) gap is Θ(log m / β) w.h.p.
	m := 64
	for _, beta := range []float64{0.25, 0.5, 1.0} {
		res := Run(RunConfig{M: m, Steps: 200_000, Seed: 14, Process: OneBeta{Beta: beta}, SampleEvery: 10_000})
		bound := 6*log2(m)/beta + 6
		if g := res.MaxGap(); g > bound {
			t.Fatalf("(1+%v) gap %v exceeds %v", beta, g, bound)
		}
	}
}

func TestOneBetaFullBetaMatchesTwoChoice(t *testing.T) {
	m := 64
	ob := Run(RunConfig{M: m, Steps: 100_000, Seed: 15, Process: OneBeta{Beta: 1}})
	tc := Run(RunConfig{M: m, Steps: 100_000, Seed: 15, Process: DChoice{D: 2}})
	if math.Abs(ob.Final.Gap()-tc.Final.Gap()) > 4 {
		t.Fatalf("β=1 gap %v far from two-choice gap %v", ob.Final.Gap(), tc.Final.Gap())
	}
}

func TestCorruptedProcessStillBalanced(t *testing.T) {
	// Lemma 6.5/6.7's message: a bounded fraction of adversarially wrong
	// steps cannot destroy balance. 10% wrong steps keep the gap small.
	m := 64
	res := Run(RunConfig{M: m, Steps: 200_000, Seed: 16,
		Process: Corrupted{WrongProb: 0.1, Rho: 1}, SampleEvery: 10_000})
	if g := res.MaxGap(); g > 4*log2(m)+8 {
		t.Fatalf("corrupted(0.1) gap %v too large", g)
	}
}

func TestCorruptedDegradesWithWrongProb(t *testing.T) {
	m := 64
	low := Run(RunConfig{M: m, Steps: 200_000, Seed: 17, Process: Corrupted{WrongProb: 0.05, Rho: 1}})
	high := Run(RunConfig{M: m, Steps: 200_000, Seed: 17, Process: Corrupted{WrongProb: 0.45, Rho: 1}})
	if high.Final.Gap() < low.Final.Gap() {
		t.Fatalf("more corruption should not improve balance: %v vs %v",
			high.Final.Gap(), low.Final.Gap())
	}
}

func TestStaleProcessBounded(t *testing.T) {
	// Batch/bulletin-board staleness (Berenbrink et al.): refresh period m
	// keeps the gap O(log m).
	m := 64
	res := Run(RunConfig{M: m, Steps: 200_000, Seed: 18, Process: &Stale{Refresh: m}, SampleEvery: 10_000})
	if g := res.MaxGap(); g > 5*log2(m)+8 {
		t.Fatalf("stale(T=m) gap %v too large", g)
	}
}

func TestStaleRefreshOneMatchesTwoChoice(t *testing.T) {
	m := 32
	st := Run(RunConfig{M: m, Steps: 100_000, Seed: 19, Process: &Stale{Refresh: 1}})
	tc := Run(RunConfig{M: m, Steps: 100_000, Seed: 19, Process: DChoice{D: 2}})
	if st.Final.Gap() != tc.Final.Gap() {
		t.Fatalf("stale(T=1) gap %v != two-choice gap %v (same seed)", st.Final.Gap(), tc.Final.Gap())
	}
}

func TestWeightedExponentialBounded(t *testing.T) {
	// Theorem 7.1's step: exponential weights of mean 1 preserve the O(log m)
	// gap under two-choice.
	m := 64
	res := Run(RunConfig{M: m, Steps: 200_000, Seed: 20, Process: DChoice{D: 2},
		Weight: func(r *rng.Xoshiro256) float64 { return r.Exp() }, SampleEvery: 10_000})
	if g := res.MaxGap(); g > 5*log2(m)+10 {
		t.Fatalf("weighted two-choice gap %v too large", g)
	}
}

// TestGammaLinearInM is the empirical Theorem 6.2 / Lemma 6.7 check:
// E[Γ(t)] = O(m), uniformly in t.
func TestGammaLinearInM(t *testing.T) {
	alpha := 0.25
	for _, m := range []int{16, 64, 256} {
		res := Run(RunConfig{M: m, Steps: 100_000, Seed: 21, Process: DChoice{D: 2},
			Alpha: alpha, SampleEvery: 5_000})
		if g := res.MaxGamma(); g > 40*float64(m) {
			t.Fatalf("Γ max %v not O(m) at m=%d", g, m)
		}
		// Stability in t: late Γ within 4x of mid-run Γ (no upward drift).
		n := len(res.Samples)
		mid, late := res.Samples[n/2].Gamma, res.Samples[n-1].Gamma
		if late > 4*mid+float64(m) {
			t.Fatalf("Γ drifting upward: mid=%v late=%v at m=%d", mid, late, m)
		}
	}
}

func TestGammaCorruptedStaysLinear(t *testing.T) {
	// Lemma 6.7's endgame: even with bad steps interleaved, Γ returns to
	// O(m) at window boundaries.
	m, alpha := 64, 0.25
	res := Run(RunConfig{M: m, Steps: 100_000, Seed: 22,
		Process: Corrupted{WrongProb: 0.1, Rho: 0.9}, Alpha: alpha, SampleEvery: 5_000})
	if g := res.MaxGamma(); g > 80*float64(m) {
		t.Fatalf("corrupted Γ max %v not O(m)", g)
	}
}

func TestRunSampling(t *testing.T) {
	res := Run(RunConfig{M: 8, Steps: 1000, Seed: 23, Process: DChoice{D: 2}, SampleEvery: 100})
	// 10 periodic samples plus the final sample.
	if len(res.Samples) != 11 {
		t.Fatalf("samples = %d, want 11", len(res.Samples))
	}
	if res.Samples[len(res.Samples)-1].Step != 1000 {
		t.Fatal("final sample at wrong step")
	}
	if res.Final.Total() != 1000 {
		t.Fatalf("total weight %v, want 1000", res.Final.Total())
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := RunConfig{M: 16, Steps: 50_000, Seed: 24, Process: DChoice{D: 2}, Alpha: 0.3, SampleEvery: 1000}
	a, b := Run(cfg), Run(cfg)
	if a.Final.Gap() != b.Final.Gap() || a.MaxGamma() != b.MaxGamma() {
		t.Fatal("same-seed runs diverged")
	}
}

func TestProcessNames(t *testing.T) {
	cases := map[string]Process{
		"greedy[d=2]":                    DChoice{D: 2},
		"(1+beta)[beta=0.500]":           OneBeta{Beta: 0.5},
		"corrupted[wrong=0.10,rho=0.90]": Corrupted{WrongProb: 0.1, Rho: 0.9},
		"stale[T=8]":                     &Stale{Refresh: 8},
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Fatalf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

func TestNewStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewState(0) did not panic")
		}
	}()
	NewState(0)
}
