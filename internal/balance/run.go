package balance

import "repro/internal/rng"

// WeightFn draws the weight of the next ball. Nil means unit weights.
// Theorem 7.1 uses Exponential(1) weights via (*rng.Xoshiro256).Exp.
type WeightFn func(r *rng.Xoshiro256) float64

// SamplePoint records the balance statistics at one sampled step.
type SamplePoint struct {
	Step         int64   // number of insertions so far
	Gap          float64 // max − min bin weight
	MaxAboveMean float64 // max − µ
	MeanAboveMin float64 // µ − min
	Gamma        float64 // Γ(t) at the configured α
}

// RunConfig describes a sequential process execution.
type RunConfig struct {
	M           int     // number of bins
	Steps       int64   // number of insertions
	Seed        uint64  // PRNG seed
	Process     Process // insertion policy
	Weight      WeightFn
	Alpha       float64 // potential parameter α (0 disables Γ sampling)
	SampleEvery int64   // sampling period in steps (0: only final state)
}

// Result carries the trajectory and final state of a run.
type Result struct {
	Samples []SamplePoint
	Final   *State
}

// Run executes the process for cfg.Steps insertions and returns sampled
// balance statistics. Deterministic for a fixed config.
func Run(cfg RunConfig) Result {
	st := NewState(cfg.M)
	r := rng.NewXoshiro256(cfg.Seed)
	var samples []SamplePoint
	sample := func(step int64) {
		p := SamplePoint{Step: step, Gap: st.Gap()}
		min, max := st.MinMax()
		mu := st.Mean()
		p.MaxAboveMean = max - mu
		p.MeanAboveMin = mu - min
		if cfg.Alpha > 0 {
			_, _, p.Gamma = st.Potential(cfg.Alpha)
		}
		samples = append(samples, p)
	}
	for t := int64(1); t <= cfg.Steps; t++ {
		i := cfg.Process.Pick(st, r)
		w := 1.0
		if cfg.Weight != nil {
			w = cfg.Weight(r)
		}
		st.Add(i, w)
		if cfg.SampleEvery > 0 && t%cfg.SampleEvery == 0 {
			sample(t)
		}
	}
	sample(cfg.Steps)
	return Result{Samples: samples, Final: st}
}

// MaxGap returns the largest gap observed across the run's samples.
func (r Result) MaxGap() float64 {
	var g float64
	for _, s := range r.Samples {
		if s.Gap > g {
			g = s.Gap
		}
	}
	return g
}

// MaxGamma returns the largest Γ observed across the run's samples.
func (r Result) MaxGamma() float64 {
	var g float64
	for _, s := range r.Samples {
		if s.Gamma > g {
			g = s.Gamma
		}
	}
	return g
}
