package balance

import (
	"sort"

	"repro/internal/rng"
)

// SeqMultiQueue is the sequential producer–consumer process of Alistarh,
// Kopinsky, Li and Nadiradze ("The power of choice in priority scheduling",
// reference [3]): balls labelled 1, 2, 3, … are inserted uniformly at random
// into m bins, each bin keeping its balls sorted; removals pick two uniform
// bins and delete the lower-labelled (higher-priority) of the two heads.
//
// This process is the sequential randomized relaxation QR that Theorem 7.1
// linearizes the concurrent MultiQueue to; its guarantee — the rank of a
// removed label among labels still present is O(m) in expectation and
// O(m log m) w.h.p. — is the cost distribution the concurrent structure
// inherits. The DeleteTwoChoice method returns the exact rank so experiments
// can compare the empirical distribution against the concurrent runs.
type SeqMultiQueue struct {
	bins  [][]uint64 // each bin ascending; head is bins[i][0]
	next  uint64     // next label to insert
	count int        // total balls present
}

// NewSeqMultiQueue returns the process with m empty bins.
func NewSeqMultiQueue(m int) *SeqMultiQueue {
	if m <= 0 {
		panic("balance: NewSeqMultiQueue needs m > 0")
	}
	return &SeqMultiQueue{bins: make([][]uint64, m), next: 1}
}

// M returns the number of bins.
func (q *SeqMultiQueue) M() int { return len(q.bins) }

// Len returns the number of balls currently present.
func (q *SeqMultiQueue) Len() int { return q.count }

// Insert places the next sequential label into a uniformly random bin.
// Labels are inserted in increasing order, so appending keeps bins sorted.
func (q *SeqMultiQueue) Insert(r *rng.Xoshiro256) uint64 {
	i := r.Intn(len(q.bins))
	label := q.next
	q.next++
	q.bins[i] = append(q.bins[i], label)
	q.count++
	return label
}

// DeleteTwoChoice removes the lower-labelled of two random bins' heads and
// returns the removed label together with its rank among all labels present
// at removal time (rank 1 = the global minimum; an exact priority queue
// always removes rank 1). ok is false if both chosen bins were empty.
func (q *SeqMultiQueue) DeleteTwoChoice(r *rng.Xoshiro256) (label uint64, rank int, ok bool) {
	i, j := r.Intn(len(q.bins)), r.Intn(len(q.bins))
	bi, bj := q.bins[i], q.bins[j]
	pick := -1
	switch {
	case len(bi) == 0 && len(bj) == 0:
		return 0, 0, false
	case len(bi) == 0:
		pick = j
	case len(bj) == 0:
		pick = i
	case bi[0] <= bj[0]:
		pick = i
	default:
		pick = j
	}
	label = q.bins[pick][0]
	rank = q.rankOf(label)
	q.bins[pick] = q.bins[pick][1:]
	q.count--
	return label, rank, true
}

// rankOf counts the labels present that are strictly smaller than label,
// plus one. Bins are sorted, so each contributes a prefix found by binary
// search; total cost O(m log(b/m)).
func (q *SeqMultiQueue) rankOf(label uint64) int {
	smaller := 0
	for _, b := range q.bins {
		smaller += sort.Search(len(b), func(k int) bool { return b[k] >= label })
	}
	return smaller + 1
}

// HeadGapRank returns the rank gap between the smallest and largest head
// labels across non-empty bins — the O(log m) quantity from Section 7's
// analysis ("the rank gap between the smallest timestamp head element of any
// queue and the largest timestamp head element"). ok is false when fewer
// than two bins are non-empty.
func (q *SeqMultiQueue) HeadGapRank() (gap int, ok bool) {
	var minHead, maxHead uint64
	seen := 0
	for _, b := range q.bins {
		if len(b) == 0 {
			continue
		}
		h := b[0]
		if seen == 0 {
			minHead, maxHead = h, h
		} else {
			if h < minHead {
				minHead = h
			}
			if h > maxHead {
				maxHead = h
			}
		}
		seen++
	}
	if seen < 2 {
		return 0, false
	}
	return q.rankOf(maxHead) - q.rankOf(minHead), true
}
