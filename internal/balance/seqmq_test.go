package balance

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestSeqMultiQueueInsertDrain(t *testing.T) {
	q := NewSeqMultiQueue(8)
	r := rng.NewXoshiro256(1)
	const n = 1000
	for i := 0; i < n; i++ {
		q.Insert(r)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d", q.Len())
	}
	removed := map[uint64]bool{}
	for q.Len() > 0 {
		label, rank, ok := q.DeleteTwoChoice(r)
		if !ok {
			continue // both sampled bins empty; retry
		}
		if removed[label] {
			t.Fatalf("label %d removed twice", label)
		}
		if rank < 1 {
			t.Fatalf("rank %d < 1", rank)
		}
		removed[label] = true
	}
	if len(removed) != n {
		t.Fatalf("removed %d labels, want %d", len(removed), n)
	}
}

func TestSeqMultiQueueRankOfIsExact(t *testing.T) {
	// Cross-check rankOf against a brute-force count over bin contents.
	q := NewSeqMultiQueue(4)
	r := rng.NewXoshiro256(2)
	for i := 0; i < 200; i++ {
		q.Insert(r)
	}
	// Remove a few to create holes.
	for i := 0; i < 50; i++ {
		q.DeleteTwoChoice(r)
	}
	for _, label := range []uint64{1, 10, 100, 150, 200} {
		naive := 1
		for _, b := range q.bins {
			for _, v := range b {
				if v < label {
					naive++
				}
			}
		}
		if got := q.rankOf(label); got != naive {
			t.Fatalf("rankOf(%d) = %d, naive %d", label, got, naive)
		}
	}
}

// TestSeqMultiQueueRankLinearInM is the empirical Theorem 7.1 / [3] check:
// steady-state expected dequeue rank is O(m) and the tail is O(m log m).
func TestSeqMultiQueueRankLinearInM(t *testing.T) {
	for _, m := range []int{8, 32, 128} {
		q := NewSeqMultiQueue(m)
		r := rng.NewXoshiro256(3)
		// Prefill a large buffer so removals never exhaust the bins
		// (Section 7's buffer assumption).
		for i := 0; i < 50*m; i++ {
			q.Insert(r)
		}
		ranks := stats.NewSample(10_000)
		for i := 0; i < 10_000; i++ {
			q.Insert(r)
			if _, rank, ok := q.DeleteTwoChoice(r); ok {
				ranks.AddInt(rank)
			}
		}
		mean := ranks.Mean()
		if mean > 4*float64(m) {
			t.Fatalf("mean rank %v not O(m) at m=%d", mean, m)
		}
		if p999 := ranks.Quantile(0.999); p999 > 4*float64(m)*log2(m) {
			t.Fatalf("p99.9 rank %v not O(m log m) at m=%d", p999, m)
		}
	}
}

func TestSeqMultiQueueBeatsRandomRemoval(t *testing.T) {
	// Sanity: two-choice removal has much lower rank than removing the head
	// of one random bin would (which is what one-choice removal does). We
	// compare against m·H_m/2-ish by checking the two-choice mean is below
	// 2m while a single random head has expected rank about m.
	m := 64
	q := NewSeqMultiQueue(m)
	r := rng.NewXoshiro256(4)
	for i := 0; i < 50*m; i++ {
		q.Insert(r)
	}
	ranks := stats.NewSample(5000)
	for i := 0; i < 5000; i++ {
		q.Insert(r)
		if _, rank, ok := q.DeleteTwoChoice(r); ok {
			ranks.AddInt(rank)
		}
	}
	if ranks.Mean() >= 2*float64(m) {
		t.Fatalf("two-choice mean rank %v >= 2m", ranks.Mean())
	}
}

func TestHeadGapRank(t *testing.T) {
	q := NewSeqMultiQueue(4)
	r := rng.NewXoshiro256(5)
	if _, ok := q.HeadGapRank(); ok {
		t.Fatal("HeadGapRank on empty should be !ok")
	}
	for i := 0; i < 400; i++ {
		q.Insert(r)
	}
	gap, ok := q.HeadGapRank()
	if !ok {
		t.Fatal("HeadGapRank not ok with populated bins")
	}
	if gap < 0 || gap > q.Len() {
		t.Fatalf("gap %d out of range", gap)
	}
}

// TestHeadGapRankStaysLogarithmic checks Section 7's head-gap claim: the
// rank gap between the smallest and largest head is O(log m)·const in steady
// state (we use a generous constant envelope).
func TestHeadGapRankStaysLogarithmic(t *testing.T) {
	m := 64
	q := NewSeqMultiQueue(m)
	r := rng.NewXoshiro256(6)
	for i := 0; i < 100*m; i++ {
		q.Insert(r)
	}
	var maxGap int
	for i := 0; i < 20_000; i++ {
		q.Insert(r)
		q.DeleteTwoChoice(r)
		if i%500 == 0 {
			if g, ok := q.HeadGapRank(); ok && g > maxGap {
				maxGap = g
			}
		}
	}
	if maxGap > 4*m*int(log2(m)) {
		t.Fatalf("head gap rank %d blew past O(m log m) envelope (m=%d)", maxGap, m)
	}
}

func TestSeqMultiQueueEmptyPair(t *testing.T) {
	q := NewSeqMultiQueue(2)
	r := rng.NewXoshiro256(7)
	if _, _, ok := q.DeleteTwoChoice(r); ok {
		t.Fatal("delete from empty process returned ok")
	}
}

func TestSeqMultiQueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSeqMultiQueue(0) did not panic")
		}
	}()
	NewSeqMultiQueue(0)
}
