package balance

import (
	"fmt"

	"repro/internal/rng"
)

// Process selects the bin that receives the next ball.
type Process interface {
	// Pick returns the destination bin for the next insertion.
	Pick(s *State, r *rng.Xoshiro256) int
	// Name labels the process in experiment output.
	Name() string
}

// DChoice is the greedy d-choice process: sample d bins uniformly with
// replacement, insert into the least loaded. d = 1 is the divergent
// single-choice process; d = 2 is the classic two-choice process underlying
// the MultiCounter.
type DChoice struct {
	D int
}

// Pick implements Process.
func (p DChoice) Pick(s *State, r *rng.Xoshiro256) int {
	if p.D < 1 {
		panic("balance: DChoice needs D >= 1")
	}
	best := r.Intn(s.M())
	for k := 1; k < p.D; k++ {
		c := r.Intn(s.M())
		if s.w[c] < s.w[best] {
			best = c
		}
	}
	return best
}

// Name implements Process.
func (p DChoice) Name() string { return fmt.Sprintf("greedy[d=%d]", p.D) }

// OneBeta is the (1+β)-choice process of Peres, Talwar and Wieder: with
// probability Beta insert two-choice, otherwise uniformly. Lemma 6.4 shows a
// good(γ) concurrent step majorizes this process with β = 2γ, which is why it
// appears throughout the tests as the comparison envelope.
type OneBeta struct {
	Beta float64
}

// Pick implements Process.
func (p OneBeta) Pick(s *State, r *rng.Xoshiro256) int {
	if r.Bernoulli(p.Beta) {
		return s.LessLoaded(r.Intn(s.M()), r.Intn(s.M()))
	}
	return r.Intn(s.M())
}

// Name implements Process.
func (p OneBeta) Name() string { return fmt.Sprintf("(1+beta)[beta=%.3f]", p.Beta) }

// Corrupted is the adversarially corrupted two-choice process from the
// paper's techniques discussion: with probability WrongProb the step is
// "corrupted" and deterministically inserts into the MORE loaded of its two
// choices (the worst case Lemma 6.5 charges for); otherwise it behaves as a
// good step that inserts into the less loaded bin with probability Rho
// (Rho = 1 reproduces the exact two-choice process; Lemma 6.3's good steps
// have Rho >= 1/2 + γ).
type Corrupted struct {
	WrongProb float64
	Rho       float64
}

// Pick implements Process.
func (p Corrupted) Pick(s *State, r *rng.Xoshiro256) int {
	i, j := r.Intn(s.M()), r.Intn(s.M())
	if r.Bernoulli(p.WrongProb) {
		return s.MoreLoaded(i, j)
	}
	if r.Bernoulli(p.Rho) {
		return s.LessLoaded(i, j)
	}
	return s.MoreLoaded(i, j)
}

// Name implements Process.
func (p Corrupted) Name() string {
	return fmt.Sprintf("corrupted[wrong=%.2f,rho=%.2f]", p.WrongProb, p.Rho)
}

// Stale is the bulletin-board model (Mitzenmacher; Berenbrink et al.):
// two-choice decisions are made against a snapshot of the weights refreshed
// only every Refresh insertions, modeling reads that are up to Refresh steps
// out of date. Refresh = 1 degenerates to the exact two-choice process.
type Stale struct {
	Refresh int

	snapshot []float64
	since    int
}

// Pick implements Process.
func (p *Stale) Pick(s *State, r *rng.Xoshiro256) int {
	if p.Refresh < 1 {
		panic("balance: Stale needs Refresh >= 1")
	}
	if p.snapshot == nil || len(p.snapshot) != s.M() {
		p.snapshot = make([]float64, s.M())
		copy(p.snapshot, s.w)
		p.since = 0
	}
	if p.since >= p.Refresh {
		copy(p.snapshot, s.w)
		p.since = 0
	}
	p.since++
	i, j := r.Intn(s.M()), r.Intn(s.M())
	if p.snapshot[j] < p.snapshot[i] {
		return j
	}
	return i
}

// Name implements Process.
func (p *Stale) Name() string { return fmt.Sprintf("stale[T=%d]", p.Refresh) }

// GoodStepProbs returns the probability vector p of a good(γ) step from the
// proof of Lemma 6.4: inserting into the i-th least loaded bin (1-based i)
// with probability
//
//	p_i = ρ·2(m−i)/m² + 1/m² + (1−ρ)·2(i−1)/m²
//
// where ρ ≥ 1/2 + γ is the probability the operation adds to the lesser
// loaded of its two choices.
func GoodStepProbs(m int, rho float64) []float64 {
	p := make([]float64, m)
	mm := float64(m) * float64(m)
	for i := 1; i <= m; i++ {
		p[i-1] = rho*2*float64(m-i)/mm + 1/mm + (1-rho)*2*float64(i-1)/mm
	}
	return p
}

// OneBetaProbs returns the probability vector q of the (1+β)-choice process:
//
//	q_i = (1−β)/m + β·(2(m−i)+1)/m²
func OneBetaProbs(m int, beta float64) []float64 {
	q := make([]float64, m)
	mm := float64(m) * float64(m)
	for i := 1; i <= m; i++ {
		q[i-1] = (1-beta)/float64(m) + beta*(2*float64(m-i)+1)/mm
	}
	return q
}

// Majorizes reports whether p majorizes q: every prefix sum of p is at least
// the corresponding prefix sum of q (both vectors ordered from least to most
// loaded bin, as in the paper). A small epsilon absorbs float rounding.
func Majorizes(p, q []float64) bool {
	const eps = 1e-12
	var sp, sq float64
	for k := range p {
		sp += p[k]
		sq += q[k]
		if sp+eps < sq {
			return false
		}
	}
	return true
}
