// Package benchfmt defines the machine-readable benchmark report schema the
// cmd/ tools share: the JSON shapes committed as BENCH_multiqueue.json and
// BENCH_multicounter.json, so the performance trajectory is tracked across
// PRs instead of living in scrollback. cmd/benchall writes both reports;
// cmd/multicounter-bench emits the counter report standalone. Keeping the
// types in one package guarantees the tools cannot drift apart on flag or
// schema shape again (they did after PR 1), and gives the schema a single
// version number.
package benchfmt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// SchemaVersion identifies the report layout. Bump it whenever a field is
// added, renamed or re-scored, so downstream consumers of the committed
// BENCH_*.json files can dispatch on "schema".
//
// Version history:
//
//	1 — PR 1: MultiQueue sweep with rank audits; MultiCounter throughput-only.
//	2 — PR 2: schema field added; MultiCounter sweep gains the
//	    Choices × Stickiness × Batch grid, per-setting max-deviation audits,
//	    and a gated summary symmetric to the MultiQueue's.
//	3 — PR 3: MQPoint gains the backing label (ablation A4 joins the sweep)
//	    and both point types gain allocs_per_op (single-threaded steady-state
//	    allocation audit; the batched hot paths gate at 0). MQSummary gains
//	    the per-backing within-envelope bests and the d-ary gate against the
//	    PR 2 committed baseline.
//	4 — PR 4: MQPoint gains the topcache axis (true = lock-free top-word
//	    reads, false = the locked-ReadMin ablation A5). The per-backing
//	    within-envelope bests cover cached points only and gate against the
//	    PR 3 committed per-backing speedups, replacing the single d-ary
//	    gate; MQSummary records the locked-read bests alongside for the
//	    cached-vs-locked comparison, and reports gain Validate/ValidateFile
//	    so CI can round-trip them.
//	5 — PR 5: both point types gain the affinity axis (the shard-affine
//	    sticky sampler's stripe fraction; 0 = uniform, the paper's
//	    assumption), RankQuality gains rank_error_max, and both summaries
//	    gain the affine-vs-uniform gate: the best Affinity > 0 point at the
//	    headline (s=8, k=8) setting must match the uniform counterpart's
//	    throughput (within the AffineMatchTolerance measurement band) while
//	    its measured mean AND max quality drift ratios stay within
//	    AffineDriftLimit (affine_drift_ratio / affine_max_drift_ratio).
//	6 — PR 7: third report shape added (MempoolBench/MempoolReport: the
//	    fee-revenue quality of the relaxed mempool against the exact
//	    head-greedy reference on one intent trace, gated at
//	    MempoolFeeLossLimit). The MQ/MC shapes are unchanged, so committed
//	    v5 reports remain valid: ValidateFile now accepts any schema in
//	    [MinSchemaVersion, SchemaVersion].
//	7 — PR 9: MQPoint gains the optional elastic axis (MQElasticity: the
//	    topology bounds, controller mode and final shard count of a point
//	    measured under resize epochs — cmd/benchall's fixed-m vs autoscale
//	    comparison under ramping-goroutine load). The field is omitted for
//	    fixed-m points, so committed v5/v6 reports remain byte-identical on
//	    round-trip; ValidateMQ checks CurrentM ∈ [MinM, MaxM] when present.
const SchemaVersion = 7

// MinSchemaVersion is the oldest schema ValidateFile still accepts. v6 and
// v7 only added a new report shape and an optional point field, so the
// committed v5 BENCH_*.json need no regeneration; bump this alongside
// SchemaVersion whenever an EXISTING shape changes.
const MinSchemaVersion = 5

// MempoolFeeLossLimit bounds the fee-revenue fraction the relaxed mempool
// may forgo against the exact head-greedy reference on the default trace
// (quality.MeasureMempoolRevenue's FeeLossFrac) — the PR 7 acceptance gate
// at the (s=8, k=8, m=256) configuration. Measured values run negative (the
// relaxed pool's global-fee pops act as chain lookahead the myopic
// reference lacks), so the gate is an upper bound only.
const MempoolFeeLossLimit = 0.05

// AffineMatchTolerance is the fraction of the uniform counterpart's speedup
// an affine point must reach for the affine-vs-uniform gate ("matches or
// beats, modulo shared-host measurement noise"): best-of-reps still leaves a
// few percent of flap between two equal configurations on a loaded machine.
const AffineMatchTolerance = 0.95

// AffineDriftLimit bounds the quality drift an affine point may show over
// its uniform counterpart at the same grid coordinates: measured rank-error
// mean and max (queue) or mean and max absolute deviation (counter) at most
// 1.5× the uniform point's — the envelope multiple ISSUE 5 budgets for
// choice locality.
const AffineDriftLimit = 1.5

// DriftRatio scores an affine quality statistic against its uniform twin:
// the ratio must stay within AffineDriftLimit. A zero uniform value has no
// meaningful ratio and passes vacuously (ratio 0): treat it as a degenerate
// audit, not a gate signal — full sweeps never measure zero (the standing
// buffers and 200k-increment audits always accumulate error), and only the
// mean statistic carries its own absolute within-envelope bound. It is the
// single definition both cmd/benchall's gates and cmd/quality's interactive
// drift verdict read, so the two audits cannot disagree on the same
// measurement.
func DriftRatio(affine, uniform float64) (ratio float64, ok bool) {
	if uniform == 0 {
		return 0, true
	}
	ratio = affine / uniform
	return ratio, ratio <= AffineDriftLimit
}

// Env captures the machine context a JSON report was produced on.
type Env struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"numcpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Generated  string `json:"generated"`
}

// CaptureEnv returns the Env of the current process, stamped now.
func CaptureEnv() Env {
	return Env{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
}

// RankQuality is the single-threaded dequeue rank-error audit of one
// (m, stickiness, batch) MultiQueue setting against Theorem 7.1's O(m·log m)
// envelope — the same measurement cmd/quality -queue reports interactively.
type RankQuality struct {
	RankErrorMean float64 `json:"rank_error_mean"`
	// RankErrorMax is the largest single-dequeue rank error observed during
	// the audit — the max-cost statistic the affine gate's
	// AffineMaxDriftRatio compares alongside the mean (schema v5).
	RankErrorMax   float64 `json:"rank_error_max"`
	Envelope       float64 `json:"envelope_m_log_m"`
	WithinEnvelope bool    `json:"within_envelope"`
}

// MQPoint is one MultiQueue sweep measurement.
type MQPoint struct {
	Threads    int    `json:"threads"`
	M          int    `json:"m"`
	Backing    string `json:"backing"`
	Stickiness int    `json:"stickiness"`
	Batch      int    `json:"batch"`
	// Affinity is the shard-affine sticky sampler's stripe fraction for this
	// point (MultiQueueConfig.Affinity): 0 = uniform choices, the paper's
	// assumption and the pre-v5 behavior.
	Affinity float64 `json:"affinity"`
	Ops      int64   `json:"ops"`
	Seconds  float64 `json:"seconds"`
	Mops     float64 `json:"mops"`
	// Speedup is Mops over the (Backing=binary, Stickiness=1, Batch=1)
	// baseline at the same (Threads, M) — one shared denominator so backings
	// compare against each other as well as against the per-op baseline;
	// 1.0 for the baseline itself.
	Speedup float64     `json:"speedup_vs_baseline"`
	Quality RankQuality `json:"quality"`
	// TopCache reports which ReadMin path the point measured: true for the
	// lock-free top-word cache (the production path), false for the
	// locked-read ablation A5, where every d-choice comparison and empty
	// probe takes the queue lock.
	TopCache bool `json:"topcache"`
	// AllocsPerOp is the single-threaded steady-state allocation count of one
	// enqueue+dequeue pair at this (m, backing, stickiness, batch) setting —
	// 0 for every heap-array backing once the handle buffers are warm.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Elastic reports the elastic-topology outcome of a point measured under
	// resize epochs (schema v7). Omitted for fixed-m points, so committed
	// v5/v6 reports keep round-tripping byte-identically. For elastic points
	// M and the quality audit are taken at the final (post-resize) shard
	// count, which Elastic.CurrentM repeats alongside the topology bounds.
	Elastic *MQElasticity `json:"elastic,omitempty"`
}

// MQElasticity is the elastic axis of one MQPoint: the Topology bounds the
// queue ran under, whether the contention-driven controller was live, and
// where the shard count ended up.
type MQElasticity struct {
	// InitialM/MinM/MaxM mirror core.Topology: the shard count the queue
	// started at and the clamp range every resize honors.
	InitialM int `json:"initial_m"`
	MinM     int `json:"min_m"`
	MaxM     int `json:"max_m"`
	// AutoScale reports whether the contention-driven controller was ticked
	// during the measurement (false = the fixed-m comparator, which pins
	// MinM == MaxM and can never move).
	AutoScale bool `json:"autoscale"`
	// CurrentM is the live shard count after the measurement (and the forced
	// grow/shrink conservation cycle the sweep appends); Resizes counts the
	// completed resize epochs, controller-driven plus forced.
	CurrentM int    `json:"current_m"`
	Resizes  uint64 `json:"resizes"`
}

// MQSummary is the headline the MultiQueue perf trajectory tracks.
type MQSummary struct {
	// GateThreads is the thread count the summary gates at: 8, or the
	// largest swept count when -maxthreads is below 8 (so small sweeps
	// still produce a meaningful summary instead of a guaranteed failure).
	GateThreads int `json:"gate_threads"`
	// BestSpeedup is the largest baseline-relative speedup observed at
	// Threads >= GateThreads, and Best the point that achieved it (the
	// throughput ceiling, whatever its rank quality).
	BestSpeedup float64 `json:"best_speedup_at_gate_threads"`
	Best        MQPoint `json:"best_point"`
	// BestWithinEnvelope restricts the same search to points whose measured
	// rank-error mean stays inside the m·log m envelope — speedup that keeps
	// Theorem 7.1's quality guarantee.
	BestWithinEnvelopeSpeedup float64 `json:"best_within_envelope_speedup"`
	BestWithinEnvelope        MQPoint `json:"best_within_envelope_point"`
	// MeetsTarget reports BestWithinEnvelopeSpeedup >= 1.5, the floor this
	// pipeline gates: the fast path must win without giving up the envelope.
	MeetsTarget bool `json:"meets_1_5x_target_within_envelope"`
	// BestWithinEnvelopeSpeedupByBacking is the per-backing within-envelope
	// best at Threads >= GateThreads over topcache points only — the
	// ablation-A4 comparison the committed-speedup gates read.
	BestWithinEnvelopeSpeedupByBacking map[string]float64 `json:"best_within_envelope_speedup_by_backing,omitempty"`
	// LockedReadBestByBacking is the same statistic over the locked-ReadMin
	// ablation points (topcache false) — the A5 cached-vs-locked comparison
	// EXPERIMENTS.md tabulates. Only swept backings appear.
	LockedReadBestByBacking map[string]float64 `json:"locked_read_best_within_envelope_speedup_by_backing,omitempty"`
	// CommittedByBacking echoes the PR 3 committed per-backing
	// within-envelope speedups (binary 1.80, dary 1.77 at s=8, k=8, m=128)
	// that the cached read path must keep meeting.
	CommittedByBacking map[string]float64 `json:"pr3_committed_within_envelope_by_backing,omitempty"`
	// MeetsCommitted reports the top-cache gate: every backing listed in
	// CommittedByBacking reached at least its committed within-envelope
	// speedup on the cached path.
	MeetsCommitted bool `json:"topcache_meets_pr3_committed"`
	// AffineBestSpeedup is the speedup of the fastest gate-passing
	// Affinity > 0 top-cache point at Threads >= GateThreads with the
	// headline (s=8, k=8) amortisation (or the fastest affine point overall
	// when none passes — MeetsAffine then reports false), and AffineBest
	// the point it quotes — the affine side of the schema v5
	// affine-vs-uniform gate.
	AffineBestSpeedup float64 `json:"affine_best_speedup"`
	AffineBest        MQPoint `json:"affine_best_point"`
	// AffineUniformSpeedup is the uniform (Affinity = 0) speedup at
	// AffineBest's (threads, m, backing, stickiness, batch) grid
	// coordinates — the counterpart the affine point must match.
	AffineUniformSpeedup float64 `json:"affine_uniform_counterpart_speedup"`
	// AffineDriftRatio is AffineBest's measured rank-error mean over its
	// uniform counterpart's at the same coordinates — the quality price of
	// stripe-local choices, gated at AffineDriftLimit.
	AffineDriftRatio float64 `json:"affine_drift_ratio"`
	// AffineMaxDriftRatio is the same comparison on the measured max rank
	// cost (RankErrorMax), gated at AffineDriftLimit alongside the mean —
	// the ISSUE 5 acceptance criterion's max-cost contract.
	AffineMaxDriftRatio float64 `json:"affine_max_drift_ratio"`
	// MeetsAffine reports the affine gate: some Affinity > 0 setting
	// reached at least AffineMatchTolerance × the uniform counterpart's
	// speedup while its mean and max drift ratios stayed within
	// AffineDriftLimit and its own rank mean stayed inside the m·log m
	// envelope. False when the sweep carried no affine points (quick smoke
	// runs are ungated).
	MeetsAffine bool `json:"affine_matches_uniform_within_drift"`
}

// MQReport is the BENCH_multiqueue.json schema.
type MQReport struct {
	Bench   string    `json:"bench"`
	Schema  int       `json:"schema"`
	Env     Env       `json:"env"`
	DurMS   int64     `json:"dur_ms"`
	Points  []MQPoint `json:"points"`
	Summary MQSummary `json:"summary"`
}

// CounterQuality is the single-threaded deviation audit of one
// (m, choices, stickiness, batch) MultiCounter setting against Theorem 6.1's
// O(m·log m) envelope — the same measurement cmd/quality reports
// interactively. MaxAbsDeviation is the max-deviation audit the trajectory
// records; WithinEnvelope scores the mean (the statistic the MultiQueue gate
// also uses), since batched flushes land weight in k-sized lumps that spike
// the max far above the steady state.
type CounterQuality struct {
	MaxAbsDeviation  uint64  `json:"max_abs_deviation"`
	MeanAbsDeviation float64 `json:"mean_abs_deviation"`
	MaxGap           uint64  `json:"max_gap"`
	Envelope         float64 `json:"envelope_m_log_m"`
	WithinEnvelope   bool    `json:"within_envelope"`
}

// MCPoint is one MultiCounter sweep measurement. The exact fetch-and-add
// baseline is recorded with Variant "exact-faa" and zero M/Choices/…; the
// relaxed counter uses Variant "multicounter".
type MCPoint struct {
	Threads    int    `json:"threads"`
	Variant    string `json:"variant"`
	M          int    `json:"m,omitempty"`
	Choices    int    `json:"choices,omitempty"`
	Stickiness int    `json:"stickiness,omitempty"`
	Batch      int    `json:"batch,omitempty"`
	// Affinity is the shard-affine sticky sampler's stripe fraction for this
	// point (MultiCounterConfig.Affinity): 0 = uniform choices, the paper's
	// assumption and the pre-v5 behavior (always 0 for exact-faa).
	Affinity float64 `json:"affinity"`
	Ops      int64   `json:"ops"`
	Seconds  float64 `json:"seconds"`
	Mops     float64 `json:"mops"`
	// Speedup is Mops over the per-op two-choice baseline
	// (Choices=2, Stickiness=1, Batch=1) at the same (Threads, M); 1.0 for
	// the baseline itself and 0 for the exact-faa reference, which is not a
	// relaxed-counter configuration.
	Speedup float64         `json:"speedup_vs_baseline,omitempty"`
	Quality *CounterQuality `json:"quality,omitempty"`
	// AllocsPerOp is the single-threaded steady-state allocation count of one
	// increment at this setting — 0 for every configuration (absent for the
	// exact-faa reference, which is trivially allocation-free).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// MCSummary is the headline the MultiCounter perf trajectory tracks,
// symmetric to MQSummary: best amortised speedup over the per-op baseline at
// the gate thread count, restricted to settings whose deviation audit stays
// within the envelope, gated at 1.5x.
type MCSummary struct {
	GateThreads               int     `json:"gate_threads"`
	BestSpeedup               float64 `json:"best_speedup_at_gate_threads"`
	Best                      MCPoint `json:"best_point"`
	BestWithinEnvelopeSpeedup float64 `json:"best_within_envelope_speedup"`
	BestWithinEnvelope        MCPoint `json:"best_within_envelope_point"`
	MeetsTarget               bool    `json:"meets_1_5x_target_within_envelope"`
	// AffineBestSpeedup / AffineBest quote the fastest gate-passing
	// Affinity > 0 point at Threads >= GateThreads with the headline
	// (s=8, k=8) amortisation (or the fastest overall when none passes and
	// MeetsAffine is false) — the counter side of the schema v5
	// affine-vs-uniform gate, symmetric to MQSummary's.
	AffineBestSpeedup float64 `json:"affine_best_speedup"`
	AffineBest        MCPoint `json:"affine_best_point"`
	// AffineUniformSpeedup is the uniform (Affinity = 0) speedup at
	// AffineBest's (threads, m, choices, stickiness, batch) coordinates.
	AffineUniformSpeedup float64 `json:"affine_uniform_counterpart_speedup"`
	// AffineDriftRatio is AffineBest's mean absolute deviation over its
	// uniform counterpart's, gated at AffineDriftLimit.
	AffineDriftRatio float64 `json:"affine_drift_ratio"`
	// AffineMaxDriftRatio is the same comparison on the measured max
	// absolute deviation, gated at AffineDriftLimit alongside the mean.
	AffineMaxDriftRatio float64 `json:"affine_max_drift_ratio"`
	// MeetsAffine mirrors MQSummary.MeetsAffine for the counter sweep.
	MeetsAffine bool `json:"affine_matches_uniform_within_drift"`
}

// MCReport is the BENCH_multicounter.json schema. Summary is nil for
// points-only reports (cmd/multicounter-bench's figure sweep), so a report
// that never ran the gate cannot be misread as a failed one.
type MCReport struct {
	Bench   string     `json:"bench"`
	Schema  int        `json:"schema"`
	Env     Env        `json:"env"`
	DurMS   int64      `json:"dur_ms"`
	Points  []MCPoint  `json:"points"`
	Summary *MCSummary `json:"summary,omitempty"`
}

// WriteFile marshals a report as indented JSON (with a trailing newline, so
// the committed files stay diff-friendly) and writes it to path.
func WriteFile(path string, v any) error {
	data, err := marshal(v)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("benchfmt: %w", err)
	}
	return nil
}

// marshal renders a report in the canonical on-disk form WriteFile commits
// and ValidateFile round-trips against.
func marshal(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return append(data, '\n'), nil
}

// Bench names distinguishing the report shapes in their "bench" field.
const (
	MQBench      = "multiqueue-sticky-batched"
	MCBench      = "multicounter-sticky-batched"
	MempoolBench = "mempool-fee-quality"
)

// MempoolPoint is one mempool fee-quality measurement: the relaxed pool and
// the exact head-greedy reference replay the same seeded intent trace, and
// the point records the cumulative delivered fee of both at the shared
// delivery-prefix length (schema v6; cmd/mempool-sim -json emits these).
type MempoolPoint struct {
	// MultiQueue configuration under the relaxed pool.
	M          int    `json:"m"`
	Choices    int    `json:"choices"`
	Stickiness int    `json:"stickiness"`
	Batch      int    `json:"batch"`
	Backing    string `json:"backing"`
	// Pool policy: resident capacity (0 = unbounded).
	Capacity int `json:"capacity"`
	// Workload shape (mempool.WorkloadConfig, after defaults).
	TxOps   int     `json:"tx_ops"`
	Senders int     `json:"senders"`
	Theta   float64 `json:"theta"`
	PopFrac float64 `json:"pop_frac"`
	Seed    uint64  `json:"seed"`
	// ComparedPops is the delivery-prefix length both revenues are taken
	// at; RevenueRelaxed/RevenueExact are the cumulative delivered fees
	// there, and FeeLossFrac = 1 − relaxed/exact (negative = the relaxed
	// pool banked more).
	ComparedPops   uint64  `json:"compared_pops"`
	RevenueRelaxed uint64  `json:"revenue_relaxed"`
	RevenueExact   uint64  `json:"revenue_exact"`
	FeeLossFrac    float64 `json:"fee_loss_frac"`
	// EvictedRelaxed/EvictedExact give the divergence context under a
	// capacity bound (different eviction victims separate the pools).
	EvictedRelaxed uint64 `json:"evicted_relaxed"`
	EvictedExact   uint64 `json:"evicted_exact"`
	// WithinLimit reports FeeLossFrac <= MempoolFeeLossLimit.
	WithinLimit bool `json:"within_limit"`
}

// MempoolReport is the mempool fee-quality JSON schema (schema v6).
type MempoolReport struct {
	Bench  string         `json:"bench"`
	Schema int            `json:"schema"`
	Env    Env            `json:"env"`
	DurMS  int64          `json:"dur_ms"`
	Points []MempoolPoint `json:"points"`
}

// ValidateFile reads a BENCH_*.json, dispatches on its "bench" field,
// strict-decodes it against the current schema (unknown fields are errors,
// the schema number must match SchemaVersion), runs the structural checks
// of ValidateMQ/ValidateMC, and finally re-marshals the decoded report and
// compares it byte-for-byte with the file — so a report that silently lost
// or drifted a field anywhere between the sweep and the commit fails in CI
// instead of at analysis time. It returns the bench name for logging.
func ValidateFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("benchfmt: %w", err)
	}
	var probe struct {
		Bench  string `json:"bench"`
		Schema int    `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	if probe.Schema < MinSchemaVersion || probe.Schema > SchemaVersion {
		return probe.Bench, fmt.Errorf("benchfmt: %s: schema %d, want %d..%d", path, probe.Schema, MinSchemaVersion, SchemaVersion)
	}
	var report any
	switch probe.Bench {
	case MQBench:
		rep := new(MQReport)
		if err := strictDecode(data, rep); err != nil {
			return probe.Bench, fmt.Errorf("benchfmt: %s: %w", path, err)
		}
		if err := ValidateMQ(rep); err != nil {
			return probe.Bench, fmt.Errorf("benchfmt: %s: %w", path, err)
		}
		report = rep
	case MCBench:
		rep := new(MCReport)
		if err := strictDecode(data, rep); err != nil {
			return probe.Bench, fmt.Errorf("benchfmt: %s: %w", path, err)
		}
		if err := ValidateMC(rep); err != nil {
			return probe.Bench, fmt.Errorf("benchfmt: %s: %w", path, err)
		}
		report = rep
	case MempoolBench:
		rep := new(MempoolReport)
		if err := strictDecode(data, rep); err != nil {
			return probe.Bench, fmt.Errorf("benchfmt: %s: %w", path, err)
		}
		if err := ValidateMempool(rep); err != nil {
			return probe.Bench, fmt.Errorf("benchfmt: %s: %w", path, err)
		}
		report = rep
	default:
		return probe.Bench, fmt.Errorf("benchfmt: %s: unknown bench %q", path, probe.Bench)
	}
	remarshaled, err := marshal(report)
	if err != nil {
		return probe.Bench, err
	}
	if !bytes.Equal(data, remarshaled) {
		return probe.Bench, fmt.Errorf("benchfmt: %s: round-trip drift — file bytes differ from the canonical re-marshal", path)
	}
	return probe.Bench, nil
}

// strictDecode unmarshals JSON rejecting unknown fields and trailing data.
func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra any
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("trailing data after the report object")
	}
	return nil
}

// ValidateMQ checks an MQReport's structural invariants: a populated sweep,
// sane per-point fields, and a summary whose gate is computable.
func ValidateMQ(r *MQReport) error {
	if r.Bench != MQBench {
		return fmt.Errorf("bench %q, want %q", r.Bench, MQBench)
	}
	if len(r.Points) == 0 {
		return fmt.Errorf("no sweep points")
	}
	for i, pt := range r.Points {
		if pt.Threads < 1 || pt.M < 1 || pt.Stickiness < 1 || pt.Batch < 1 {
			return fmt.Errorf("point %d: non-positive grid coordinates %+v", i, pt)
		}
		if pt.Backing == "" {
			return fmt.Errorf("point %d: missing backing label", i)
		}
		if !(pt.Affinity >= 0 && pt.Affinity <= 1) { // rejects NaN too
			return fmt.Errorf("point %d: affinity %v outside [0, 1]", i, pt.Affinity)
		}
		if pt.Seconds <= 0 || pt.Ops < 0 || pt.Mops < 0 || pt.Speedup < 0 {
			return fmt.Errorf("point %d: implausible measurements (ops %d in %.3fs)", i, pt.Ops, pt.Seconds)
		}
		if e := pt.Elastic; e != nil {
			if !(1 <= e.MinM && e.MinM <= e.CurrentM && e.CurrentM <= e.MaxM) {
				return fmt.Errorf("point %d: elastic current_m %d outside [%d, %d]", i, e.CurrentM, e.MinM, e.MaxM)
			}
			if e.InitialM < e.MinM || e.InitialM > e.MaxM {
				return fmt.Errorf("point %d: elastic initial_m %d outside [%d, %d]", i, e.InitialM, e.MinM, e.MaxM)
			}
		}
	}
	if r.Summary.GateThreads < 1 {
		return fmt.Errorf("summary gate_threads %d", r.Summary.GateThreads)
	}
	return nil
}

// ValidateMempool checks a MempoolReport's structural invariants. The shape
// first exists at schema v6, so older schema numbers are rejected here even
// though ValidateFile's range check would admit them for the MQ/MC shapes.
func ValidateMempool(r *MempoolReport) error {
	if r.Bench != MempoolBench {
		return fmt.Errorf("bench %q, want %q", r.Bench, MempoolBench)
	}
	if r.Schema < 6 {
		return fmt.Errorf("schema %d predates the mempool report (v6)", r.Schema)
	}
	if len(r.Points) == 0 {
		return fmt.Errorf("no measurement points")
	}
	for i, pt := range r.Points {
		if pt.M < 1 || pt.Choices < 1 || pt.Stickiness < 1 || pt.Batch < 1 {
			return fmt.Errorf("point %d: non-positive queue configuration %+v", i, pt)
		}
		if pt.Backing == "" {
			return fmt.Errorf("point %d: missing backing label", i)
		}
		if pt.TxOps < 1 || pt.Senders < 1 {
			return fmt.Errorf("point %d: empty workload (%d ops, %d senders)", i, pt.TxOps, pt.Senders)
		}
		if pt.Capacity < 0 {
			return fmt.Errorf("point %d: negative capacity %d", i, pt.Capacity)
		}
		if !(pt.FeeLossFrac >= -1 && pt.FeeLossFrac <= 1) { // rejects NaN too
			return fmt.Errorf("point %d: fee_loss_frac %v outside [-1, 1]", i, pt.FeeLossFrac)
		}
		if pt.ComparedPops == 0 || pt.RevenueExact == 0 {
			return fmt.Errorf("point %d: degenerate comparison (%d pops, exact revenue %d)", i, pt.ComparedPops, pt.RevenueExact)
		}
		if pt.WithinLimit != (pt.FeeLossFrac <= MempoolFeeLossLimit) {
			return fmt.Errorf("point %d: within_limit %v inconsistent with fee_loss_frac %v", i, pt.WithinLimit, pt.FeeLossFrac)
		}
	}
	return nil
}

// ValidateMC checks an MCReport's structural invariants; Summary may be nil
// (points-only figure sweeps).
func ValidateMC(r *MCReport) error {
	if r.Bench != MCBench {
		return fmt.Errorf("bench %q, want %q", r.Bench, MCBench)
	}
	if len(r.Points) == 0 {
		return fmt.Errorf("no sweep points")
	}
	for i, pt := range r.Points {
		switch pt.Variant {
		case "exact-faa":
			if pt.Affinity != 0 {
				return fmt.Errorf("point %d: exact-faa carries affinity %v", i, pt.Affinity)
			}
		case "multicounter":
			if pt.M < 1 || pt.Choices < 1 || pt.Stickiness < 1 || pt.Batch < 1 {
				return fmt.Errorf("point %d: non-positive grid coordinates %+v", i, pt)
			}
			if !(pt.Affinity >= 0 && pt.Affinity <= 1) { // rejects NaN too
				return fmt.Errorf("point %d: affinity %v outside [0, 1]", i, pt.Affinity)
			}
		default:
			return fmt.Errorf("point %d: unknown variant %q", i, pt.Variant)
		}
		if pt.Seconds <= 0 || pt.Ops < 0 || pt.Mops < 0 {
			return fmt.Errorf("point %d: implausible measurements (ops %d in %.3fs)", i, pt.Ops, pt.Seconds)
		}
	}
	if r.Summary != nil && r.Summary.GateThreads < 1 {
		return fmt.Errorf("summary gate_threads %d", r.Summary.GateThreads)
	}
	return nil
}
