package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleMQ returns a minimal structurally valid MQReport carrying both a
// uniform and an affine point.
func sampleMQ() *MQReport {
	rep := &MQReport{Bench: MQBench, Schema: SchemaVersion, Env: CaptureEnv(), DurMS: 1}
	base := MQPoint{
		Threads: 8, M: 128, Backing: "binary", Stickiness: 8, Batch: 8,
		Ops: 1000, Seconds: 0.5, Mops: 2, Speedup: 1,
		Quality:  RankQuality{RankErrorMean: 10, RankErrorMax: 40, Envelope: 896, WithinEnvelope: true},
		TopCache: true,
	}
	affine := base
	affine.Affinity = 0.25
	rep.Points = []MQPoint{base, affine}
	rep.Summary.GateThreads = 8
	return rep
}

// sampleMC returns a minimal structurally valid MCReport.
func sampleMC() *MCReport {
	rep := &MCReport{Bench: MCBench, Schema: SchemaVersion, Env: CaptureEnv(), DurMS: 1,
		Summary: &MCSummary{GateThreads: 8}}
	q := &CounterQuality{MeanAbsDeviation: 10, Envelope: 896, WithinEnvelope: true}
	rep.Points = []MCPoint{
		{Threads: 8, Variant: "exact-faa", Ops: 10, Seconds: 0.5, Mops: 1},
		{Threads: 8, Variant: "multicounter", M: 128, Choices: 2, Stickiness: 8, Batch: 8,
			Affinity: 0.25, Ops: 10, Seconds: 0.5, Mops: 1, Speedup: 1, Quality: q},
	}
	return rep
}

// sampleMempool returns a minimal structurally valid MempoolReport.
func sampleMempool() *MempoolReport {
	return &MempoolReport{
		Bench: MempoolBench, Schema: SchemaVersion, Env: CaptureEnv(), DurMS: 1,
		Points: []MempoolPoint{{
			M: 256, Choices: 2, Stickiness: 8, Batch: 8, Backing: "binary",
			TxOps: 10000, Senders: 256, Theta: 0.9, PopFrac: 0.4, Seed: 1,
			ComparedPops: 4022, RevenueRelaxed: 4157245, RevenueExact: 4062555,
			FeeLossFrac: -0.0233, WithinLimit: true,
		}},
	}
}

// TestValidateFileRoundTripV5 writes all report shapes and round-trips them
// through ValidateFile — the check the benchall -validate CI step runs on
// the committed BENCH_*.json.
func TestValidateFileRoundTripV5(t *testing.T) {
	dir := t.TempDir()
	for name, rep := range map[string]any{
		"mq.json":      sampleMQ(),
		"mc.json":      sampleMC(),
		"mempool.json": sampleMempool(),
	} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, rep); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		if _, err := ValidateFile(path); err != nil {
			t.Fatalf("%s: validate: %v", name, err)
		}
	}
}

// TestValidateRejectsAffinityDrift pins the v5 failure modes: an affinity
// outside [0, 1], an exact-faa point carrying affinity, a stale schema
// number, and byte-level round-trip drift (a field silently dropped from
// the file) must all fail validation.
func TestValidateRejectsAffinityDrift(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep any) string {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, rep); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		return path
	}

	bad := sampleMQ()
	bad.Points[1].Affinity = 1.5
	if _, err := ValidateFile(write("mq-range.json", bad)); err == nil || !strings.Contains(err.Error(), "affinity") {
		t.Fatalf("affinity 1.5 not rejected: %v", err)
	}

	badMC := sampleMC()
	badMC.Points[0].Affinity = 0.5 // exact-faa has no sampler
	if _, err := ValidateFile(write("mc-faa.json", badMC)); err == nil || !strings.Contains(err.Error(), "affinity") {
		t.Fatalf("exact-faa affinity not rejected: %v", err)
	}

	stale := sampleMQ()
	stale.Schema = MinSchemaVersion - 1
	if _, err := ValidateFile(write("mq-stale.json", stale)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("stale schema not rejected: %v", err)
	}

	// v5 MQ/MC reports must STILL validate (MinSchemaVersion keeps the
	// committed files valid across the v6 bump), but a mempool report
	// claiming v5 must not — the shape first exists at v6.
	v5 := sampleMQ()
	v5.Schema = 5
	if _, err := ValidateFile(write("mq-v5.json", v5)); err != nil {
		t.Fatalf("v5 MQ report rejected after the v6 bump: %v", err)
	}
	oldPool := sampleMempool()
	oldPool.Schema = 5
	if _, err := ValidateFile(write("mempool-v5.json", oldPool)); err == nil || !strings.Contains(err.Error(), "predates") {
		t.Fatalf("v5 mempool report not rejected: %v", err)
	}

	// Mempool structural checks: an out-of-range loss and an inconsistent
	// verdict (NaN cannot be round-tripped here — json.Marshal refuses it —
	// but the same `>= -1 && <= 1` comparison rejects it by construction).
	outOfRange := sampleMempool()
	outOfRange.Points[0].FeeLossFrac = 1.5
	if _, err := ValidateFile(write("mempool-range.json", outOfRange)); err == nil || !strings.Contains(err.Error(), "fee_loss_frac") {
		t.Fatalf("out-of-range fee loss not rejected: %v", err)
	}
	liar := sampleMempool()
	liar.Points[0].FeeLossFrac = 0.2
	if _, err := ValidateFile(write("mempool-liar.json", liar)); err == nil || !strings.Contains(err.Error(), "within_limit") {
		t.Fatalf("inconsistent within_limit not rejected: %v", err)
	}

	// Round-trip drift: strip the affinity key out of the on-disk bytes the
	// way a hand-edited or pre-v5 tool-written file would lose it; the
	// canonical re-marshal comparison must catch the difference.
	path := write("mq-drift.json", sampleMQ())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, pt := range raw["points"].([]any) {
		delete(pt.(map[string]any), "affinity")
	}
	stripped, err := json.MarshalIndent(raw, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(stripped, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateFile(path); err == nil {
		t.Fatal("dropped affinity field survived the round-trip comparison")
	}
}
