package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleMQ returns a minimal structurally valid MQReport carrying both a
// uniform and an affine point.
func sampleMQ() *MQReport {
	rep := &MQReport{Bench: MQBench, Schema: SchemaVersion, Env: CaptureEnv(), DurMS: 1}
	base := MQPoint{
		Threads: 8, M: 128, Backing: "binary", Stickiness: 8, Batch: 8,
		Ops: 1000, Seconds: 0.5, Mops: 2, Speedup: 1,
		Quality:  RankQuality{RankErrorMean: 10, RankErrorMax: 40, Envelope: 896, WithinEnvelope: true},
		TopCache: true,
	}
	affine := base
	affine.Affinity = 0.25
	rep.Points = []MQPoint{base, affine}
	rep.Summary.GateThreads = 8
	return rep
}

// sampleMC returns a minimal structurally valid MCReport.
func sampleMC() *MCReport {
	rep := &MCReport{Bench: MCBench, Schema: SchemaVersion, Env: CaptureEnv(), DurMS: 1,
		Summary: &MCSummary{GateThreads: 8}}
	q := &CounterQuality{MeanAbsDeviation: 10, Envelope: 896, WithinEnvelope: true}
	rep.Points = []MCPoint{
		{Threads: 8, Variant: "exact-faa", Ops: 10, Seconds: 0.5, Mops: 1},
		{Threads: 8, Variant: "multicounter", M: 128, Choices: 2, Stickiness: 8, Batch: 8,
			Affinity: 0.25, Ops: 10, Seconds: 0.5, Mops: 1, Speedup: 1, Quality: q},
	}
	return rep
}

// TestValidateFileRoundTripV5 writes both report shapes with the v5
// affinity fields and round-trips them through ValidateFile — the check the
// benchall -validate CI step runs on the committed BENCH_*.json.
func TestValidateFileRoundTripV5(t *testing.T) {
	dir := t.TempDir()
	for name, rep := range map[string]any{
		"mq.json": sampleMQ(),
		"mc.json": sampleMC(),
	} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, rep); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		if _, err := ValidateFile(path); err != nil {
			t.Fatalf("%s: validate: %v", name, err)
		}
	}
}

// TestValidateRejectsAffinityDrift pins the v5 failure modes: an affinity
// outside [0, 1], an exact-faa point carrying affinity, a stale schema
// number, and byte-level round-trip drift (a field silently dropped from
// the file) must all fail validation.
func TestValidateRejectsAffinityDrift(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep any) string {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, rep); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		return path
	}

	bad := sampleMQ()
	bad.Points[1].Affinity = 1.5
	if _, err := ValidateFile(write("mq-range.json", bad)); err == nil || !strings.Contains(err.Error(), "affinity") {
		t.Fatalf("affinity 1.5 not rejected: %v", err)
	}

	badMC := sampleMC()
	badMC.Points[0].Affinity = 0.5 // exact-faa has no sampler
	if _, err := ValidateFile(write("mc-faa.json", badMC)); err == nil || !strings.Contains(err.Error(), "affinity") {
		t.Fatalf("exact-faa affinity not rejected: %v", err)
	}

	stale := sampleMQ()
	stale.Schema = SchemaVersion - 1
	if _, err := ValidateFile(write("mq-stale.json", stale)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("stale schema not rejected: %v", err)
	}

	// Round-trip drift: strip the affinity key out of the on-disk bytes the
	// way a hand-edited or pre-v5 tool-written file would lose it; the
	// canonical re-marshal comparison must catch the difference.
	path := write("mq-drift.json", sampleMQ())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, pt := range raw["points"].([]any) {
		delete(pt.(map[string]any), "affinity")
	}
	stripped, err := json.MarshalIndent(raw, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(stripped, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateFile(path); err == nil {
		t.Fatal("dropped affinity field survived the round-trip comparison")
	}
}
